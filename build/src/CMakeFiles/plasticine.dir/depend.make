# Empty dependencies file for plasticine.
# This may be replaced when dependencies are built.
