
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/bfs.cpp" "src/CMakeFiles/plasticine.dir/apps/bfs.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/apps/bfs.cpp.o.d"
  "/root/repo/src/apps/blackscholes.cpp" "src/CMakeFiles/plasticine.dir/apps/blackscholes.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/apps/blackscholes.cpp.o.d"
  "/root/repo/src/apps/cnn.cpp" "src/CMakeFiles/plasticine.dir/apps/cnn.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/apps/cnn.cpp.o.d"
  "/root/repo/src/apps/gda.cpp" "src/CMakeFiles/plasticine.dir/apps/gda.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/apps/gda.cpp.o.d"
  "/root/repo/src/apps/gemm.cpp" "src/CMakeFiles/plasticine.dir/apps/gemm.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/apps/gemm.cpp.o.d"
  "/root/repo/src/apps/innerproduct.cpp" "src/CMakeFiles/plasticine.dir/apps/innerproduct.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/apps/innerproduct.cpp.o.d"
  "/root/repo/src/apps/kmeans.cpp" "src/CMakeFiles/plasticine.dir/apps/kmeans.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/apps/kmeans.cpp.o.d"
  "/root/repo/src/apps/logreg.cpp" "src/CMakeFiles/plasticine.dir/apps/logreg.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/apps/logreg.cpp.o.d"
  "/root/repo/src/apps/outerproduct.cpp" "src/CMakeFiles/plasticine.dir/apps/outerproduct.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/apps/outerproduct.cpp.o.d"
  "/root/repo/src/apps/pagerank.cpp" "src/CMakeFiles/plasticine.dir/apps/pagerank.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/apps/pagerank.cpp.o.d"
  "/root/repo/src/apps/registry.cpp" "src/CMakeFiles/plasticine.dir/apps/registry.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/apps/registry.cpp.o.d"
  "/root/repo/src/apps/sgd.cpp" "src/CMakeFiles/plasticine.dir/apps/sgd.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/apps/sgd.cpp.o.d"
  "/root/repo/src/apps/smdv.cpp" "src/CMakeFiles/plasticine.dir/apps/smdv.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/apps/smdv.cpp.o.d"
  "/root/repo/src/apps/tpchq6.cpp" "src/CMakeFiles/plasticine.dir/apps/tpchq6.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/apps/tpchq6.cpp.o.d"
  "/root/repo/src/arch/config.cpp" "src/CMakeFiles/plasticine.dir/arch/config.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/arch/config.cpp.o.d"
  "/root/repo/src/arch/disasm.cpp" "src/CMakeFiles/plasticine.dir/arch/disasm.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/arch/disasm.cpp.o.d"
  "/root/repo/src/arch/geometry.cpp" "src/CMakeFiles/plasticine.dir/arch/geometry.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/arch/geometry.cpp.o.d"
  "/root/repo/src/arch/opcodes.cpp" "src/CMakeFiles/plasticine.dir/arch/opcodes.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/arch/opcodes.cpp.o.d"
  "/root/repo/src/arch/params.cpp" "src/CMakeFiles/plasticine.dir/arch/params.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/arch/params.cpp.o.d"
  "/root/repo/src/base/logging.cpp" "src/CMakeFiles/plasticine.dir/base/logging.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/base/logging.cpp.o.d"
  "/root/repo/src/base/stats.cpp" "src/CMakeFiles/plasticine.dir/base/stats.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/base/stats.cpp.o.d"
  "/root/repo/src/compiler/mapper.cpp" "src/CMakeFiles/plasticine.dir/compiler/mapper.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/compiler/mapper.cpp.o.d"
  "/root/repo/src/compiler/partition.cpp" "src/CMakeFiles/plasticine.dir/compiler/partition.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/compiler/partition.cpp.o.d"
  "/root/repo/src/compiler/vleaf.cpp" "src/CMakeFiles/plasticine.dir/compiler/vleaf.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/compiler/vleaf.cpp.o.d"
  "/root/repo/src/fpga/fpga_model.cpp" "src/CMakeFiles/plasticine.dir/fpga/fpga_model.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/fpga/fpga_model.cpp.o.d"
  "/root/repo/src/model/area.cpp" "src/CMakeFiles/plasticine.dir/model/area.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/model/area.cpp.o.d"
  "/root/repo/src/model/asic.cpp" "src/CMakeFiles/plasticine.dir/model/asic.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/model/asic.cpp.o.d"
  "/root/repo/src/model/power.cpp" "src/CMakeFiles/plasticine.dir/model/power.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/model/power.cpp.o.d"
  "/root/repo/src/model/tuning.cpp" "src/CMakeFiles/plasticine.dir/model/tuning.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/model/tuning.cpp.o.d"
  "/root/repo/src/pir/builder.cpp" "src/CMakeFiles/plasticine.dir/pir/builder.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/pir/builder.cpp.o.d"
  "/root/repo/src/pir/eval.cpp" "src/CMakeFiles/plasticine.dir/pir/eval.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/pir/eval.cpp.o.d"
  "/root/repo/src/pir/validate.cpp" "src/CMakeFiles/plasticine.dir/pir/validate.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/pir/validate.cpp.o.d"
  "/root/repo/src/runtime/runner.cpp" "src/CMakeFiles/plasticine.dir/runtime/runner.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/runtime/runner.cpp.o.d"
  "/root/repo/src/sim/ctrlbox.cpp" "src/CMakeFiles/plasticine.dir/sim/ctrlbox.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/sim/ctrlbox.cpp.o.d"
  "/root/repo/src/sim/dram.cpp" "src/CMakeFiles/plasticine.dir/sim/dram.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/sim/dram.cpp.o.d"
  "/root/repo/src/sim/fabric.cpp" "src/CMakeFiles/plasticine.dir/sim/fabric.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/sim/fabric.cpp.o.d"
  "/root/repo/src/sim/fuexec.cpp" "src/CMakeFiles/plasticine.dir/sim/fuexec.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/sim/fuexec.cpp.o.d"
  "/root/repo/src/sim/memsys.cpp" "src/CMakeFiles/plasticine.dir/sim/memsys.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/sim/memsys.cpp.o.d"
  "/root/repo/src/sim/pcu.cpp" "src/CMakeFiles/plasticine.dir/sim/pcu.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/sim/pcu.cpp.o.d"
  "/root/repo/src/sim/pmu.cpp" "src/CMakeFiles/plasticine.dir/sim/pmu.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/sim/pmu.cpp.o.d"
  "/root/repo/src/sim/scratchpad.cpp" "src/CMakeFiles/plasticine.dir/sim/scratchpad.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/sim/scratchpad.cpp.o.d"
  "/root/repo/src/sim/unitcommon.cpp" "src/CMakeFiles/plasticine.dir/sim/unitcommon.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/sim/unitcommon.cpp.o.d"
  "/root/repo/src/sim/wavefront.cpp" "src/CMakeFiles/plasticine.dir/sim/wavefront.cpp.o" "gcc" "src/CMakeFiles/plasticine.dir/sim/wavefront.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
