file(REMOVE_RECURSE
  "libplasticine.a"
)
