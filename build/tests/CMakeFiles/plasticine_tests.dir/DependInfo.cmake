
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_apps.cpp" "tests/CMakeFiles/plasticine_tests.dir/test_apps.cpp.o" "gcc" "tests/CMakeFiles/plasticine_tests.dir/test_apps.cpp.o.d"
  "/root/repo/tests/test_base.cpp" "tests/CMakeFiles/plasticine_tests.dir/test_base.cpp.o" "gcc" "tests/CMakeFiles/plasticine_tests.dir/test_base.cpp.o.d"
  "/root/repo/tests/test_chain.cpp" "tests/CMakeFiles/plasticine_tests.dir/test_chain.cpp.o" "gcc" "tests/CMakeFiles/plasticine_tests.dir/test_chain.cpp.o.d"
  "/root/repo/tests/test_compiler.cpp" "tests/CMakeFiles/plasticine_tests.dir/test_compiler.cpp.o" "gcc" "tests/CMakeFiles/plasticine_tests.dir/test_compiler.cpp.o.d"
  "/root/repo/tests/test_ctrlbox.cpp" "tests/CMakeFiles/plasticine_tests.dir/test_ctrlbox.cpp.o" "gcc" "tests/CMakeFiles/plasticine_tests.dir/test_ctrlbox.cpp.o.d"
  "/root/repo/tests/test_dram.cpp" "tests/CMakeFiles/plasticine_tests.dir/test_dram.cpp.o" "gcc" "tests/CMakeFiles/plasticine_tests.dir/test_dram.cpp.o.d"
  "/root/repo/tests/test_e2e.cpp" "tests/CMakeFiles/plasticine_tests.dir/test_e2e.cpp.o" "gcc" "tests/CMakeFiles/plasticine_tests.dir/test_e2e.cpp.o.d"
  "/root/repo/tests/test_eval.cpp" "tests/CMakeFiles/plasticine_tests.dir/test_eval.cpp.o" "gcc" "tests/CMakeFiles/plasticine_tests.dir/test_eval.cpp.o.d"
  "/root/repo/tests/test_fabric.cpp" "tests/CMakeFiles/plasticine_tests.dir/test_fabric.cpp.o" "gcc" "tests/CMakeFiles/plasticine_tests.dir/test_fabric.cpp.o.d"
  "/root/repo/tests/test_fuexec.cpp" "tests/CMakeFiles/plasticine_tests.dir/test_fuexec.cpp.o" "gcc" "tests/CMakeFiles/plasticine_tests.dir/test_fuexec.cpp.o.d"
  "/root/repo/tests/test_geometry.cpp" "tests/CMakeFiles/plasticine_tests.dir/test_geometry.cpp.o" "gcc" "tests/CMakeFiles/plasticine_tests.dir/test_geometry.cpp.o.d"
  "/root/repo/tests/test_mapper.cpp" "tests/CMakeFiles/plasticine_tests.dir/test_mapper.cpp.o" "gcc" "tests/CMakeFiles/plasticine_tests.dir/test_mapper.cpp.o.d"
  "/root/repo/tests/test_memsys.cpp" "tests/CMakeFiles/plasticine_tests.dir/test_memsys.cpp.o" "gcc" "tests/CMakeFiles/plasticine_tests.dir/test_memsys.cpp.o.d"
  "/root/repo/tests/test_models.cpp" "tests/CMakeFiles/plasticine_tests.dir/test_models.cpp.o" "gcc" "tests/CMakeFiles/plasticine_tests.dir/test_models.cpp.o.d"
  "/root/repo/tests/test_pcu.cpp" "tests/CMakeFiles/plasticine_tests.dir/test_pcu.cpp.o" "gcc" "tests/CMakeFiles/plasticine_tests.dir/test_pcu.cpp.o.d"
  "/root/repo/tests/test_pmu.cpp" "tests/CMakeFiles/plasticine_tests.dir/test_pmu.cpp.o" "gcc" "tests/CMakeFiles/plasticine_tests.dir/test_pmu.cpp.o.d"
  "/root/repo/tests/test_printers.cpp" "tests/CMakeFiles/plasticine_tests.dir/test_printers.cpp.o" "gcc" "tests/CMakeFiles/plasticine_tests.dir/test_printers.cpp.o.d"
  "/root/repo/tests/test_runner.cpp" "tests/CMakeFiles/plasticine_tests.dir/test_runner.cpp.o" "gcc" "tests/CMakeFiles/plasticine_tests.dir/test_runner.cpp.o.d"
  "/root/repo/tests/test_scratchpad.cpp" "tests/CMakeFiles/plasticine_tests.dir/test_scratchpad.cpp.o" "gcc" "tests/CMakeFiles/plasticine_tests.dir/test_scratchpad.cpp.o.d"
  "/root/repo/tests/test_stream.cpp" "tests/CMakeFiles/plasticine_tests.dir/test_stream.cpp.o" "gcc" "tests/CMakeFiles/plasticine_tests.dir/test_stream.cpp.o.d"
  "/root/repo/tests/test_stream_scheme.cpp" "tests/CMakeFiles/plasticine_tests.dir/test_stream_scheme.cpp.o" "gcc" "tests/CMakeFiles/plasticine_tests.dir/test_stream_scheme.cpp.o.d"
  "/root/repo/tests/test_unitcommon.cpp" "tests/CMakeFiles/plasticine_tests.dir/test_unitcommon.cpp.o" "gcc" "tests/CMakeFiles/plasticine_tests.dir/test_unitcommon.cpp.o.d"
  "/root/repo/tests/test_validate.cpp" "tests/CMakeFiles/plasticine_tests.dir/test_validate.cpp.o" "gcc" "tests/CMakeFiles/plasticine_tests.dir/test_validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/plasticine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
