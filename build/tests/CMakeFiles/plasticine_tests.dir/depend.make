# Empty dependencies file for plasticine_tests.
# This may be replaced when dependencies are built.
