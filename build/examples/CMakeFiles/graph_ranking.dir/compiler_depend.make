# Empty compiler generated dependencies file for graph_ranking.
# This may be replaced when dependencies are built.
