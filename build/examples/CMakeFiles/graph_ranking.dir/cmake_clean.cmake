file(REMOVE_RECURSE
  "CMakeFiles/graph_ranking.dir/graph_ranking.cpp.o"
  "CMakeFiles/graph_ranking.dir/graph_ranking.cpp.o.d"
  "graph_ranking"
  "graph_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
