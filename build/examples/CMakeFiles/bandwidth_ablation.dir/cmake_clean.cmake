file(REMOVE_RECURSE
  "CMakeFiles/bandwidth_ablation.dir/bandwidth_ablation.cpp.o"
  "CMakeFiles/bandwidth_ablation.dir/bandwidth_ablation.cpp.o.d"
  "bandwidth_ablation"
  "bandwidth_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bandwidth_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
