/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrate itself:
 * DRAM channel scheduling, scratchpad banking, PCU pipeline stepping
 * and the end-to-end compile path. These guard the simulator's own
 * performance (host seconds per simulated cycle), not modelled
 * hardware performance.
 */

#include <benchmark/benchmark.h>

#include "apps/apps.hpp"
#include "compiler/mapper.hpp"
#include "sim/dram.hpp"
#include "sim/scratchpad.hpp"

using namespace plast;

static void
BM_DramChannel(benchmark::State &state)
{
    DramParams params;
    DramChannel ch(params, 0);
    std::vector<DramReq> done;
    uint64_t addr = 0, tag = 0;
    Cycles now = 0;
    for (auto _ : state) {
        if (ch.canSubmit())
            ch.submit({(addr += 64), false, ++tag}, now);
        done.clear();
        ch.step(++now, done);
        benchmark::DoNotOptimize(done.size());
    }
}
BENCHMARK(BM_DramChannel);

static void
BM_ScratchpadConflict(benchmark::State &state)
{
    Scratchpad sp;
    ScratchCfg cfg;
    cfg.sizeWords = 4096;
    sp.configure(cfg, 16, 65536);
    std::vector<uint32_t> addrs;
    for (uint32_t i = 0; i < 16; ++i)
        addrs.push_back(i * 17);
    for (auto _ : state)
        benchmark::DoNotOptimize(sp.conflictCycles(addrs));
}
BENCHMARK(BM_ScratchpadConflict);

static void
BM_CompileInnerProduct(benchmark::State &state)
{
    setVerbose(false);
    for (auto _ : state) {
        apps::AppInstance app =
            apps::makeInnerProduct(apps::Scale::kTiny, 2);
        auto res = compiler::compileProgram(
            app.prog, ArchParams::plasticineFinal());
        benchmark::DoNotOptimize(res.report.pcusUsed);
    }
}
BENCHMARK(BM_CompileInnerProduct);

static void
BM_SimulateInnerProduct(benchmark::State &state)
{
    setVerbose(false);
    for (auto _ : state) {
        apps::AppInstance app =
            apps::makeInnerProduct(apps::Scale::kTiny, 2);
        Runner r(app.prog);
        app.load(r);
        auto res = r.run();
        benchmark::DoNotOptimize(res.cycles);
    }
}
BENCHMARK(BM_SimulateInnerProduct);

BENCHMARK_MAIN();
