/**
 * @file
 * Compile-pipeline QoR benchmark: maps the 13 evaluation benchmarks
 * with both routers — the legacy one-shot greedy BFS and the
 * negotiated-congestion (PathFinder) default — and reports compile
 * time, routed hop counts and switch-track utilization side by side.
 *
 * The negotiated router must never be worse on hops: uncongested
 * multicast trees are source-shortest by construction, so a regression
 * here means a router bug, and the run exits nonzero.
 *
 *   bench_mapper [--tiny] [--stats-json=PATH]
 */

#include <chrono>
#include <cstdio>
#include <cstring>

#include "apps/apps.hpp"
#include "base/logging.hpp"
#include "base/stats.hpp"
#include "common.hpp"
#include "compiler/mapper.hpp"

using namespace plast;

namespace
{

struct CompileSample
{
    compiler::MapResult map;
    double micros = 0;
};

CompileSample
compileWith(const pir::Program &prog, const ArchParams &params,
            compiler::RouterMode mode)
{
    compiler::CompileOptions opts;
    opts.router = mode;
    auto t0 = std::chrono::steady_clock::now();
    CompileSample s;
    s.map = compiler::compileProgram(prog, params, {}, opts);
    auto dt = std::chrono::steady_clock::now() - t0;
    s.micros = std::chrono::duration_cast<std::chrono::microseconds>(dt)
                   .count();
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    bool tiny = bench::argPresent(argc, argv, "--tiny");
    std::string json_path = bench::statsJsonPath(argc, argv);
    apps::Scale scale = tiny ? apps::Scale::kTiny : apps::Scale::kDefault;
    ArchParams params = ArchParams::plasticineFinal();
    StatSet json_stats;

    std::printf("=== Mapper QoR: greedy BFS vs negotiated congestion "
                "===\n");
    std::printf("%-14s | %9s %9s | %7s %7s | %6s | %5s %5s %5s\n",
                "benchmark", "greedy_us", "negot_us", "g_hops",
                "n_hops", "rounds", "vec%", "scl%", "ctl%");

    int regressions = 0;
    for (const auto &spec : apps::allApps()) {
        apps::AppInstance app = spec.make(scale);
        CompileSample g = compileWith(app.prog, params,
                                      compiler::RouterMode::kGreedy);
        CompileSample n = compileWith(app.prog, params,
                                      compiler::RouterMode::kNegotiated);
        fatal_if(!g.map.report.ok, "%s: greedy compile failed: %s",
                 app.name.c_str(), g.map.report.error.c_str());
        fatal_if(!n.map.report.ok, "%s: negotiated compile failed: %s",
                 app.name.c_str(), n.map.report.error.c_str());
        const auto &gd = g.map.report;
        const auto &nd = n.map.report;

        if (nd.routedHops > gd.routedHops) {
            std::printf("%s: REGRESSION — negotiated %llu hops > "
                        "greedy %llu\n",
                        app.name.c_str(),
                        static_cast<unsigned long long>(nd.routedHops),
                        static_cast<unsigned long long>(gd.routedHops));
            ++regressions;
        }

        std::printf("%-14s | %9.0f %9.0f | %7llu %7llu | %6u | %5.1f "
                    "%5.1f %5.1f\n",
                    app.name.c_str(), g.micros, n.micros,
                    static_cast<unsigned long long>(gd.routedHops),
                    static_cast<unsigned long long>(nd.routedHops),
                    nd.diag.routeRounds,
                    100.0 * nd.diag.vectorTrackUtil,
                    100.0 * nd.diag.scalarTrackUtil,
                    100.0 * nd.diag.controlTrackUtil);

        if (!json_path.empty()) {
            auto put = [&](const std::string &k, uint64_t v) {
                json_stats.set(app.name + "." + k, v);
            };
            put("greedy.compileUs",
                static_cast<uint64_t>(g.micros));
            put("negotiated.compileUs",
                static_cast<uint64_t>(n.micros));
            put("greedy.routedHops", gd.routedHops);
            put("negotiated.routedHops", nd.routedHops);
            put("negotiated.routeRounds", nd.diag.routeRounds);
            put("negotiated.placementAttempts",
                nd.diag.placementAttempts);
            // Utilizations as basis points (StatSet holds integers).
            put("negotiated.vectorTrackBp",
                static_cast<uint64_t>(nd.diag.vectorTrackUtil * 1e4));
            put("negotiated.scalarTrackBp",
                static_cast<uint64_t>(nd.diag.scalarTrackUtil * 1e4));
            put("negotiated.controlTrackBp",
                static_cast<uint64_t>(nd.diag.controlTrackUtil * 1e4));
        }
    }

    std::printf("\nNotes: both compiles run the full pipeline; hops "
                "are summed routed switch-to-switch links. The "
                "negotiated router is hop-optimal per multicast "
                "terminal when uncongested, so n_hops <= g_hops must "
                "hold on every benchmark.\n");
    bench::writeStatsJson(json_path, json_stats, "mapper", params);
    return regressions == 0 ? 0 : 1;
}
