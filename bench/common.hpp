/**
 * @file
 * Shared plumbing for the bench_* drivers: uniform flag parsing and
 * the one provenance-stamped stats-JSON writer every driver emits
 * through (previously copy-pasted per driver). The output is the flat
 * key/value document bench_compare diffs and CI gates on:
 *
 *   {
 *     "meta.arch":   "<ArchParams::describe()>",   (string: ungated)
 *     "meta.bench":  "scheduler",
 *     "meta.schema": "plast.bench-stats.v1",
 *     "<counter>":   <number>,                      (sorted, gated)
 *     ...
 *   }
 *
 * String-valued "meta.*" provenance fields identify what produced the
 * numbers; bench_compare skips non-numeric values, so stamping them
 * never perturbs the gate.
 */

#ifndef PLAST_BENCH_COMMON_HPP
#define PLAST_BENCH_COMMON_HPP

#include <string>

#include "arch/params.hpp"
#include "base/stats.hpp"

namespace plast::bench
{

inline constexpr const char *kStatsSchema = "plast.bench-stats.v1";

/** Value of a `--name=value` flag in argv, or "" when absent. */
std::string argValue(int argc, char **argv, const char *name);

/** True when `--name` appears in argv (exact match). */
bool argPresent(int argc, char **argv, const char *name);

/** The `--stats-json=PATH` flag every driver supports ("" = absent). */
std::string statsJsonPath(int argc, char **argv);

/** Write the provenance-stamped stats JSON; no-op when `path` is
 *  empty, fatal when the file cannot be opened. Prints the path. */
void writeStatsJson(const std::string &path, const StatSet &stats,
                    const std::string &benchName,
                    const ArchParams &params = ArchParams::plasticineFinal());

/** Scaled capture for model outputs: stores round(value * scale) so
 *  fractional model numbers (mm^2, ratios) survive the uint64 StatSet. */
void setScaled(StatSet &stats, const std::string &name, double value,
               double scale = 1000.0);

} // namespace plast::bench

#endif // PLAST_BENCH_COMMON_HPP
