/**
 * @file
 * Serve-daemon throughput bench: the same seeded, duplicate-heavy
 * traffic (serve/traffic.hpp) through three legs —
 *
 *   serial   every job on a fresh Runner, no caches (the pre-daemon
 *            cost model: each submission pays compile + simulate)
 *   cached1  the daemon with 1 worker (cache win, no parallelism)
 *   serveN   the daemon at --workers=N (default 8)
 *
 * and reports jobs/sec, cache hit rates and the speedup of serveN
 * over serial. Cache hit/miss/eviction counters and job counts are
 * bit-deterministic (seeded traffic, content-addressed caches) and
 * gate exactly under bench_compare; wall-clock keys carry the _us
 * suffix so the gate applies its relative tolerance.
 *
 *   bench_serve --stats-json=out.json
 *   bench_serve --workers=8 --min-speedup=4 --min-hit-rate=0.5
 *
 * Exit status: 0 ok, 1 when a --min-* gate fails or any job fails.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "base/logging.hpp"
#include "base/profile.hpp"
#include "common.hpp"
#include "fuzz/diff.hpp"
#include "runtime/runner.hpp"
#include "serve/server.hpp"
#include "serve/traffic.hpp"

using namespace plast;

namespace
{

uint64_t
flagOr(int argc, char **argv, const char *name, uint64_t dflt)
{
    std::string v = bench::argValue(argc, argv, name);
    return v.empty() ? dflt : std::strtoull(v.c_str(), nullptr, 0);
}

double
flagOrF(int argc, char **argv, const char *name, double dflt)
{
    std::string v = bench::argValue(argc, argv, name);
    return v.empty() ? dflt : std::strtod(v.c_str(), nullptr);
}

struct Leg
{
    uint64_t wallUs = 0;
    uint64_t ok = 0;
    uint64_t cycles = 0;
};

Leg
runServerLeg(const std::vector<serve::JobSpec> &specs,
             serve::ServeOptions o, serve::CacheStats *cfgOut,
             serve::CacheStats *resOut)
{
    serve::Server server(o);
    uint64_t t0 = HostProfiler::instance().nowUs();
    server.start();
    for (const serve::JobSpec &s : specs)
        server.submit(s);
    server.drain();
    Leg leg;
    leg.wallUs = HostProfiler::instance().nowUs() - t0;
    for (const serve::JobResult &r : server.results()) {
        if (r.outcome && r.outcome->outcome == "ok")
            ++leg.ok;
        if (r.outcome)
            leg.cycles += r.outcome->cycles;
    }
    if (cfgOut)
        *cfgOut = server.configCacheStats();
    if (resOut)
        *resOut = server.resultCacheStats();
    return leg;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    HostProfiler::instance().setEnabled(false); // bench its own clock

    serve::TrafficOptions t;
    t.seed = flagOr(argc, argv, "seed", 1);
    t.uniques = flagOr(argc, argv, "uniques", 12);
    t.jobs = flagOr(argc, argv, "jobs", 96);
    uint32_t workers =
        static_cast<uint32_t>(flagOr(argc, argv, "workers", 8));
    double minSpeedup = flagOrF(argc, argv, "min-speedup", 0.0);
    double minHitRate = flagOrF(argc, argv, "min-hit-rate", 0.0);

    std::vector<serve::JobSpec> specs = serve::makeTraffic(t);

    // Leg 1: serial, uncached — every submission pays in full.
    Leg serial;
    {
        uint64_t t0 = HostProfiler::instance().nowUs();
        for (const serve::JobSpec &spec : specs) {
            Runner r(spec.prog, spec.params, SimOptions{});
            if (spec.load)
                spec.load(r);
            else
                fuzz::fillInputs(r, spec.prog);
            Runner::Result res;
            Status st = r.tryRun(res, spec.maxCycles
                                          ? spec.maxCycles
                                          : 500'000'000ull);
            if (st.ok())
                ++serial.ok;
            serial.cycles += res.cycles;
        }
        serial.wallUs = HostProfiler::instance().nowUs() - t0;
    }

    // Leg 2: the daemon, 1 worker — isolates the cache win.
    serve::ServeOptions o1;
    o1.workers = 1;
    o1.logAccesses = false;
    Leg cached1 = runServerLeg(specs, o1, nullptr, nullptr);

    // Leg 3: the daemon at full width.
    serve::ServeOptions oN = o1;
    oN.workers = workers;
    serve::CacheStats cfg, res;
    Leg serveN = runServerLeg(specs, oN, &cfg, &res);

    auto jobsPerSec = [&](const Leg &l) {
        return l.wallUs
                   ? 1e6 * static_cast<double>(specs.size()) /
                         static_cast<double>(l.wallUs)
                   : 0.0;
    };
    double speedup =
        serveN.wallUs ? static_cast<double>(serial.wallUs) /
                            static_cast<double>(serveN.wallUs)
                      : 0.0;
    double hitRate =
        res.hits + res.misses
            ? static_cast<double>(res.hits) /
                  static_cast<double>(res.hits + res.misses)
            : 0.0;

    std::printf("traffic: %zu jobs over %zu uniques (seed %llu)\n",
                t.jobs, t.uniques,
                static_cast<unsigned long long>(t.seed));
    std::printf("serial   : %8.1f jobs/s (%.3f s)\n",
                jobsPerSec(serial),
                static_cast<double>(serial.wallUs) / 1e6);
    std::printf("cached x1: %8.1f jobs/s (%.3f s)\n",
                jobsPerSec(cached1),
                static_cast<double>(cached1.wallUs) / 1e6);
    std::printf("cached x%u: %7.1f jobs/s (%.3f s)  -> %.1fx serial\n",
                workers, jobsPerSec(serveN),
                static_cast<double>(serveN.wallUs) / 1e6, speedup);
    std::printf("result cache: %.0f%% hit rate (%llu/%llu), config "
                "misses %llu\n",
                hitRate * 100,
                static_cast<unsigned long long>(res.hits),
                static_cast<unsigned long long>(res.hits + res.misses),
                static_cast<unsigned long long>(cfg.misses));

    StatSet stats;
    stats.set("traffic.jobs", t.jobs);
    stats.set("traffic.uniques", t.uniques);
    stats.set("serve.workers", workers);
    stats.set("serial.ok", serial.ok);
    stats.set("serial.cycles_total", serial.cycles);
    stats.set("serial.wall_us", serial.wallUs);
    stats.set("cached1.ok", cached1.ok);
    stats.set("cached1.cycles_total", cached1.cycles);
    stats.set("cached1.wall_us", cached1.wallUs);
    stats.set("serve.ok", serveN.ok);
    stats.set("serve.cycles_total", serveN.cycles);
    stats.set("serve.wall_us", serveN.wallUs);
    stats.set("serve.cache.config.hits", cfg.hits);
    stats.set("serve.cache.config.misses", cfg.misses);
    stats.set("serve.cache.config.evictions", cfg.evictions);
    stats.set("serve.cache.result.hits", res.hits);
    stats.set("serve.cache.result.misses", res.misses);
    stats.set("serve.cache.result.evictions", res.evictions);
    bench::writeStatsJson(bench::statsJsonPath(argc, argv), stats,
                          "serve");

    bool failed = false;
    if (serial.ok != specs.size() || cached1.ok != specs.size() ||
        serveN.ok != specs.size()) {
        std::fprintf(stderr, "bench_serve: some jobs failed\n");
        failed = true;
    }
    if (minSpeedup > 0 && speedup < minSpeedup) {
        std::fprintf(stderr,
                     "bench_serve: speedup %.2fx below gate %.2fx\n",
                     speedup, minSpeedup);
        failed = true;
    }
    if (minHitRate > 0 && hitRate < minHitRate) {
        std::fprintf(stderr,
                     "bench_serve: hit rate %.2f below gate %.2f\n",
                     hitRate, minHitRate);
        failed = true;
    }
    return failed ? 1 : 0;
}
