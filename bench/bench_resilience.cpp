/**
 * @file
 * Cost of the resilience machinery: per-app checkpoint save/restore
 * throughput (the word tape captures the full architectural state,
 * DRAM image included), the end-to-end slowdown of running with a
 * periodic checkpoint ring enabled, and the analytical area/power
 * overhead of SECDED ECC on scratchpads and DRAM (39/32 on SRAM
 * capacity, 72/64 on the DRAM interface, plus encoder/decoder logic).
 */

#include <chrono>
#include <cstdio>
#include <cstring>

#include "apps/apps.hpp"
#include "base/logging.hpp"
#include "common.hpp"
#include "model/area.hpp"
#include "model/power.hpp"

using namespace plast;

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    bool tiny = bench::argPresent(argc, argv, "--tiny");
    std::string json_path = bench::statsJsonPath(argc, argv);
    StatSet json_stats;
    apps::Scale scale = tiny ? apps::Scale::kTiny : apps::Scale::kDefault;
    ArchParams params = ArchParams::plasticineFinal();

    std::printf("=== Checkpoint save/restore throughput and periodic-"
                "checkpoint overhead ===\n");
    std::printf("%-14s | %10s %9s | %9s %9s %9s | %8s\n", "benchmark",
                "cycles", "tape_kw", "save_us", "restore_us", "MW/s",
                "ckpt_ovh");

    constexpr int kReps = 20;
    for (const auto &spec : apps::allApps()) {
        // Baseline run (also the fabric we snapshot).
        apps::AppInstance app = spec.make(scale);
        Runner r(app.prog, params);
        app.load(r);
        auto t0 = std::chrono::steady_clock::now();
        Runner::Result res = r.run();
        double base_s = secondsSince(t0);

        Fabric *fab = r.mutableFabric();
        FabricCheckpoint cp;
        t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < kReps; ++i)
            cp = fab->saveCheckpoint();
        double save_s = secondsSince(t0) / kReps;
        t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < kReps; ++i)
            fatal_if(!fab->restoreCheckpoint(cp).ok(),
                     "restore failed");
        double restore_s = secondsSince(t0) / kReps;

        // Same app with a live checkpoint ring (every 1/10 of the run).
        apps::AppInstance app2 = spec.make(scale);
        SimOptions so;
        so.checkpointEvery = std::max<Cycles>(1, res.cycles / 10);
        so.keepCheckpoints = 4;
        Runner r2(app2.prog, params, so);
        app2.load(r2);
        t0 = std::chrono::steady_clock::now();
        Runner::Result res2 = r2.run();
        double ckpt_s = secondsSince(t0);
        fatal_if(res2.cycles != res.cycles,
                 "%s: checkpointing perturbed the run (%llu vs %llu)",
                 spec.name.c_str(), (unsigned long long)res2.cycles,
                 (unsigned long long)res.cycles);

        double words = static_cast<double>(cp.tape.size());
        std::printf(
            "%-14s | %10llu %9.1f | %9.1f %9.1f %9.1f | %7.2f%%\n",
            spec.name.c_str(), (unsigned long long)res.cycles,
            words / 1e3, save_s * 1e6, restore_s * 1e6,
            words / save_s / 1e6, (ckpt_s / base_s - 1.0) * 100.0);
        json_stats.set(spec.name + ".cycles", res.cycles);
        json_stats.set(spec.name + ".tapeWords",
                       static_cast<uint64_t>(words));
        bench::setScaled(json_stats, spec.name + ".save_us",
                         save_s * 1e6, 1.0);
        bench::setScaled(json_stats, spec.name + ".restore_us",
                         restore_s * 1e6, 1.0);
    }

    std::printf("\n=== SECDED ECC overhead (analytical models) ===\n");
    model::AreaModel area;
    model::PowerModel power;
    ArchParams off = params, on = params;
    off.pmu.ecc = off.dram.ecc = false;
    on.pmu.ecc = on.dram.ecc = true;
    double a_off = area.chipArea(off), a_on = area.chipArea(on);
    double p_off = power.peak(off), p_on = power.peak(on);
    std::printf("%-22s | %10s %10s | %8s\n", "metric", "ecc_off",
                "ecc_on", "delta");
    std::printf("%-22s | %10.3f %10.3f | %+7.2f%%\n", "PMU area (mm^2)",
                area.pmuArea(off.pmu), area.pmuArea(on.pmu),
                (area.pmuArea(on.pmu) / area.pmuArea(off.pmu) - 1.0) *
                    100.0);
    std::printf("%-22s | %10.1f %10.1f | %+7.2f%%\n", "chip area (mm^2)",
                a_off, a_on, (a_on / a_off - 1.0) * 100.0);
    std::printf("%-22s | %10.2f %10.2f | %+7.2f%%\n", "peak power (W)",
                p_off, p_on, (p_on / p_off - 1.0) * 100.0);
    bench::setScaled(json_stats, "ecc.chipAreaRatioMilli", a_on / a_off);
    bench::setScaled(json_stats, "ecc.peakPowerRatioMilli",
                     p_on / p_off);
    bench::writeStatsJson(json_path, json_stats, "resilience", params);
    return 0;
}
