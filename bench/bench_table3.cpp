/**
 * @file
 * Regenerates Table 3: the architecture design space and the selected
 * final parameters, with the tuner's justification for each choice
 * (the minimum-overhead value over the benchmark suite, §3.7).
 */

#include <cstdio>

#include "base/logging.hpp"
#include "common.hpp"
#include "model/tuning.hpp"

using namespace plast;
using model::Tuner;

int
main(int argc, char **argv)
{
    setVerbose(false);
    std::string json_path = bench::statsJsonPath(argc, argv);
    StatSet json_stats;
    std::printf("=== Table 3: design space and selected parameters ===\n");
    std::printf("%-28s %-22s %s\n", "Component / parameter", "Range",
                "Selected");
    auto row = [](const char *n, const char *r, const char *v) {
        std::printf("%-28s %-22s %s\n", n, r, v);
    };
    row("PCU lanes", "4, 8, 16, 32", "16");
    row("PCU stages", "1 - 16", "6");
    row("PCU registers/stage", "2 - 16", "6");
    row("PCU scalar inputs", "1 - 16", "6");
    row("PCU scalar outputs", "1 - 6", "5");
    row("PCU vector inputs", "1 - 10", "3");
    row("PCU vector outputs", "1 - 6", "3");
    row("PMU bank size", "4 - 64 KB", "16 KB");
    row("PMU banks", "= PCU lanes", "16");
    row("PMU total scratchpad", "bank size x banks", "256 KB");
    row("PMU stages", "1 - 16", "4");
    row("PMU registers/stage", "2 - 16", "6");
    row("PMU scalar inputs", "1 - 16", "4");
    row("PMU scalar outputs", "0 - 6", "0");
    row("PMU vector inputs", "1 - 10", "3");
    row("PMU vector outputs", "1 - 6", "1");
    row("Architecture PCUs", "-", "64");
    row("Architecture PMUs", "-", "64");

    // Tuner justification: average overhead across the suite at each
    // candidate value of the two highest-impact parameters.
    std::printf("\n--- tuner check: average overhead across the twelve "
                "benchmarks ---\n");
    Tuner tuner(model::benchmarkLeaves(), model::AreaModel{});
    for (Tuner::Axis axis :
         {Tuner::Axis::kStages, Tuner::Axis::kRegs}) {
        const auto &vals = Tuner::gridValues(axis);
        std::printf("%s:", Tuner::axisName(axis).c_str());
        std::vector<double> avg(vals.size(), 0);
        std::vector<int> cnt(vals.size(), 0);
        for (size_t bi = 0; bi < tuner.numBenches(); ++bi) {
            auto series = tuner.sweep(bi, axis, vals, PcuParams{}, {});
            for (size_t i = 0; i < vals.size(); ++i) {
                if (series[i] >= 0) {
                    avg[i] += series[i];
                    ++cnt[i];
                }
            }
        }
        for (size_t i = 0; i < vals.size(); ++i) {
            if (cnt[i]) {
                std::printf("  %u:%.0f%%", vals[i],
                            100.0 * avg[i] / cnt[i]);
                // Average overhead in milli-units (x1000) per value.
                bench::setScaled(json_stats,
                                 Tuner::axisName(axis) + ".val" +
                                     std::to_string(vals[i]) +
                                     ".avgOverheadMilli",
                                 avg[i] / cnt[i]);
            } else {
                std::printf("  %u:x", vals[i]);
            }
        }
        std::printf("\n");
    }
    bench::writeStatsJson(json_path, json_stats, "table3");
    return 0;
}
