/**
 * @file
 * The perf-regression gate: diffs two stats-JSON / manifest files and
 * exits nonzero when the current run regressed past the noise
 * thresholds. This is what turns the committed BENCH_*.json baselines
 * from decoration into a contract — a PR that slows a gated metric
 * fails CI instead of silently rotting the perf trajectory.
 *
 *   bench_compare BASELINE.json CURRENT.json [options]
 *     --tol=F            relative slack for deterministic counters
 *                        (default 0: cycle counts and op counters must
 *                        match the baseline exactly)
 *     --time-tol=F       relative slack for wall-clock keys
 *                        (default 2.0: up to 3x slower still passes —
 *                        CI machines are noisy; catch order-of-
 *                        magnitude rot, not jitter)
 *     --time-slack-us=N  absolute wall-clock slack added on top
 *                        (default 50000: microsecond-scale phases are
 *                        pure noise)
 *     --verbose          print every compared key
 *
 * Inputs are JSON objects; nested objects flatten with '.' (so run
 * manifests diff as naturally as flat bench stats). String/bool/null
 * values and arrays are provenance, not measurements — skipped. A key
 * is wall-clock-like when it contains "wall", "seconds" or "_us";
 * everything else is deterministic. Only keys present in BOTH files
 * are gated; disappeared keys are reported (a metric silently vanishing
 * is itself suspicious) but do not fail the gate, since baselines
 * predating a schema addition must keep working.
 *
 * Exit codes: 0 pass, 1 regression(s), 2 usage / parse error.
 */

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

namespace
{

// ---- minimal JSON reader (objects, numbers; rest skipped) -----------

struct Parser
{
    const std::string &text;
    size_t pos = 0;
    std::string error;

    explicit Parser(const std::string &t) : text(t) {}

    bool
    fail(const std::string &msg)
    {
        if (error.empty())
            error = msg + " at offset " + std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    expect(char c)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != '"')
            return fail("expected string");
        ++pos;
        out.clear();
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c == '\\' && pos < text.size()) {
                char e = text[pos++];
                switch (e) {
                  case 'n': out.push_back('\n'); break;
                  case 't': out.push_back('\t'); break;
                  case 'u':
                    // \uXXXX: keep the raw escape; keys never use it.
                    out += "\\u";
                    break;
                  default: out.push_back(e); break;
                }
            } else {
                out.push_back(c);
            }
        }
        if (pos >= text.size())
            return fail("unterminated string");
        ++pos;
        return true;
    }

    /** Parse any value; numeric leaves land in `out` under `prefix`. */
    bool
    parseValue(const std::string &prefix,
               std::map<std::string, double> &out)
    {
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        if (c == '{')
            return parseObject(prefix, out);
        if (c == '[') {
            // Arrays are structure, not gateable scalars: skip.
            ++pos;
            int depth = 1;
            bool inStr = false;
            while (pos < text.size() && depth > 0) {
                char a = text[pos++];
                if (inStr) {
                    if (a == '\\')
                        ++pos;
                    else if (a == '"')
                        inStr = false;
                } else if (a == '"') {
                    inStr = true;
                } else if (a == '[') {
                    ++depth;
                } else if (a == ']') {
                    --depth;
                }
            }
            return depth == 0 || fail("unterminated array");
        }
        if (c == '"') {
            std::string s;
            return parseString(s); // provenance: skipped
        }
        if (std::strncmp(text.c_str() + pos, "true", 4) == 0) {
            pos += 4;
            return true;
        }
        if (std::strncmp(text.c_str() + pos, "false", 5) == 0) {
            pos += 5;
            return true;
        }
        if (std::strncmp(text.c_str() + pos, "null", 4) == 0) {
            pos += 4;
            return true;
        }
        // Number.
        size_t start = pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '-' || text[pos] == '+' ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E'))
            ++pos;
        if (pos == start)
            return fail("expected value");
        try {
            out[prefix] = std::stod(text.substr(start, pos - start));
        } catch (...) {
            return fail("bad number");
        }
        return true;
    }

    bool
    parseObject(const std::string &prefix,
                std::map<std::string, double> &out)
    {
        if (!expect('{'))
            return false;
        skipWs();
        if (pos < text.size() && text[pos] == '}') {
            ++pos;
            return true;
        }
        for (;;) {
            std::string key;
            if (!parseString(key))
                return false;
            if (!expect(':'))
                return false;
            std::string full =
                prefix.empty() ? key : prefix + "." + key;
            if (!parseValue(full, out))
                return false;
            skipWs();
            if (pos < text.size() && text[pos] == ',') {
                ++pos;
                continue;
            }
            return expect('}');
        }
    }
};

bool
loadFlat(const char *path, std::map<std::string, double> &out,
         std::string &err)
{
    std::ifstream is(path);
    if (!is) {
        err = std::string("cannot open ") + path;
        return false;
    }
    std::stringstream ss;
    ss << is.rdbuf();
    std::string text = ss.str();
    Parser p(text);
    if (!p.parseObject("", out)) {
        err = std::string(path) + ": " + p.error;
        return false;
    }
    return true;
}

bool
isTimeKey(const std::string &key)
{
    return key.find("wall") != std::string::npos ||
           key.find("seconds") != std::string::npos ||
           key.find("_us") != std::string::npos ||
           key.find("timings_us") != std::string::npos;
}

double
flagValue(int argc, char **argv, const char *name, double dflt)
{
    size_t n = std::strlen(name);
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], name, n) == 0 && argv[i][n] == '=')
            return std::atof(argv[i] + n + 1);
    }
    return dflt;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: bench_compare BASELINE.json CURRENT.json "
                     "[--tol=F] [--time-tol=F] [--time-slack-us=N] "
                     "[--verbose]\n");
        return 2;
    }
    double tol = flagValue(argc, argv, "--tol", 0.0);
    double timeTol = flagValue(argc, argv, "--time-tol", 2.0);
    double timeSlackUs = flagValue(argc, argv, "--time-slack-us", 50000);
    bool verbose = false;
    for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--verbose") == 0)
            verbose = true;
    }

    std::map<std::string, double> base, cur;
    std::string err;
    if (!loadFlat(argv[1], base, err) || !loadFlat(argv[2], cur, err)) {
        std::fprintf(stderr, "bench_compare: %s\n", err.c_str());
        return 2;
    }
    if (base.empty()) {
        // An empty baseline means the trajectory starts now: pass, so
        // the first CI run after committing a stub baseline succeeds.
        std::printf("baseline %s is empty; nothing to gate\n", argv[1]);
        return 0;
    }

    int regressions = 0, improved = 0, compared = 0, missing = 0;
    for (const auto &[key, bval] : base) {
        auto it = cur.find(key);
        if (it == cur.end()) {
            std::printf("MISSING   %s (baseline %.0f, absent now)\n",
                        key.c_str(), bval);
            ++missing;
            continue;
        }
        double cval = it->second;
        ++compared;
        bool timey = isTimeKey(key);
        double relTol = timey ? timeTol : tol;
        double slack = timey ? timeSlackUs : 0.0;
        double limit = bval * (1.0 + relTol) + slack;
        if (cval > limit) {
            std::printf("REGRESSION %s: %.0f -> %.0f (limit %.0f, "
                        "%+.1f%%)\n",
                        key.c_str(), bval, cval, limit,
                        bval > 0 ? 100.0 * (cval - bval) / bval : 0.0);
            ++regressions;
        } else if (cval < bval) {
            ++improved;
            if (verbose)
                std::printf("improved  %s: %.0f -> %.0f\n", key.c_str(),
                            bval, cval);
        } else if (verbose) {
            std::printf("ok        %s: %.0f -> %.0f\n", key.c_str(),
                        bval, cval);
        }
    }

    std::printf("bench_compare: %d compared, %d regressions, "
                "%d improved, %d missing (tol=%g, time-tol=%g, "
                "time-slack-us=%g)\n",
                compared, regressions, improved, missing, tol, timeTol,
                timeSlackUs);
    return regressions ? 1 : 0;
}
