/**
 * @file
 * Ablations of the design choices DESIGN.md calls out (§3.2-§3.5 of
 * the paper):
 *
 *   1. banking modes: duplication vs strided scratchpads under
 *      conflicting parallel random reads,
 *   2. coarse-grained pipelining: metapipelined vs sequential tile
 *      loops (tokens + N-buffering at work),
 *   3. the coalescing cache: sparse gather performance vs the number
 *      of merge entries.
 */

#include <cstdio>
#include <memory>

#include "apps/apps.hpp"
#include "base/logging.hpp"
#include "common.hpp"
#include "pir/builder.hpp"
#include "sim/pmu.hpp"

using namespace plast;
using namespace plast::pir;

namespace
{

// ---- 1. banking-mode ablation (unit level) --------------------------

Cycles
gatherCycles(BankingMode mode)
{
    ArchParams params;
    PmuCfg cfg;
    cfg.used = true;
    cfg.scratch.mode = mode;
    cfg.scratch.sizeWords = 1024;
    CounterCfg cc;
    cc.vectorized = true;
    cc.max = 64 * 16;
    cfg.read.enabled = true;
    cfg.read.chain.ctrs = {cc};
    cfg.read.addrVecIn = 0;
    cfg.read.dataVecOut = 0;
    PmuSim pmu(params, 0, cfg);
    VectorStream addrs("a", 1, 256), out("o", 1, 256);
    pmu.ports.vecIn[0].stream = &addrs;
    pmu.ports.vecOut[0].sinks.push_back(&out);

    // Worst-case conflicts: all lanes hit the same bank.
    Cycles now = 0;
    int pushed = 0, popped = 0;
    while (popped < 64 && now < 100000) {
        if (pushed < 64 && addrs.canPush()) {
            Vec v;
            for (uint32_t l = 0; l < 16; ++l) {
                v.lane[l] = l * 16; // same bank in strided mode
                v.setValid(l);
            }
            addrs.push(v);
            ++pushed;
        }
        pmu.step(now);
        addrs.tick(now);
        out.tick(now);
        while (out.canPop()) {
            out.pop();
            ++popped;
        }
        ++now;
    }
    return now;
}

// ---- 2. control-scheme ablation (program level) ----------------------

Cycles
tilePipeline(CtrlScheme scheme)
{
    const int64_t tiles = 8, tw = 512;
    Builder b(scheme == CtrlScheme::kMetapipe ? "meta" : "seq");
    MemId in = b.dram("in", tiles * tw), out = b.dram("out", tiles * tw);
    MemId sa = b.sram("tin", tw), sb = b.sram("tout", tw);
    NodeId root = b.outer("root", CtrlScheme::kSequential, {}, kNone);
    CtrId t = b.ctr("t", 0, tiles);
    NodeId loop = b.outer("loop", scheme, {t}, root);
    ExprId base = b.imul(b.ctrE(t), b.immI(static_cast<int32_t>(tw)));
    b.loadTile("ld", loop, in, sa, base, 1, tw, 0);
    CtrId i = b.ctr("i", 0, tw, 1, true);
    ExprId v = b.fmul(b.load(sa, b.ctrE(i)), b.immF(3.0f));
    b.compute("scale", loop, {i}, {}, {},
              {Builder::storeSram(sb, b.ctrE(i), v)});
    b.storeTile("st", loop, out, sb, base, 1, tw, 0);

    Runner r(b.finish(root));
    auto &data = r.dram(in);
    for (size_t k = 0; k < data.size(); ++k)
        data[k] = floatToWord(static_cast<float>(k));
    return r.runValidated().cycles;
}

// ---- 3. coalescing-cache ablation ------------------------------------

Cycles
smdvWithCache(uint32_t lines)
{
    ArchParams params;
    params.coalescerCacheLines = lines;
    apps::AppInstance app = apps::makeSmdv(apps::Scale::kTiny);
    Runner r(app.prog, params);
    app.load(r);
    return r.run().cycles;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    std::string json_path = bench::statsJsonPath(argc, argv);
    StatSet json_stats;

    std::printf("=== ablation 1: scratchpad banking under conflicting "
                "parallel reads ===\n");
    Cycles strided = gatherCycles(BankingMode::kStrided);
    Cycles dup = gatherCycles(BankingMode::kDup);
    std::printf("  strided (16-way conflict): %6llu cycles\n",
                static_cast<unsigned long long>(strided));
    std::printf("  duplication mode:          %6llu cycles  (%.1fx)\n",
                static_cast<unsigned long long>(dup),
                static_cast<double>(strided) / dup);
    json_stats.set("banking.strided.cycles", strided);
    json_stats.set("banking.dup.cycles", dup);

    std::printf("\n=== ablation 2: coarse-grained pipelining of a tile "
                "loop (load -> compute -> store) ===\n");
    Cycles seq = tilePipeline(CtrlScheme::kSequential);
    Cycles meta = tilePipeline(CtrlScheme::kMetapipe);
    std::printf("  sequential:  %6llu cycles\n",
                static_cast<unsigned long long>(seq));
    std::printf("  metapipe:    %6llu cycles  (%.2fx, via tokens + "
                "N-buffered tiles)\n",
                static_cast<unsigned long long>(meta),
                static_cast<double>(seq) / meta);
    json_stats.set("pipelining.sequential.cycles", seq);
    json_stats.set("pipelining.metapipe.cycles", meta);

    std::printf("\n=== ablation 3: coalescing-cache size on SMDV "
                "gathers ===\n");
    for (uint32_t lines : {1u, 4u, 32u}) {
        Cycles c = smdvWithCache(lines);
        std::printf("  %2u merge entries: %6llu cycles\n", lines,
                    static_cast<unsigned long long>(c));
        json_stats.set("coalescer.lines" + std::to_string(lines) +
                           ".cycles",
                       c);
    }
    bench::writeStatsJson(json_path, json_stats, "ablation");
    return 0;
}
