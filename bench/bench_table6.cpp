/**
 * @file
 * Regenerates Table 6: estimated successive (and cumulative) area
 * overheads of generalizing application-specific designs into the
 * homogeneous Plasticine fabric — ASIC -> heterogeneous reconfigurable
 * units -> homogeneous PMUs -> homogeneous PCUs -> PMU/PCU parameters
 * generalized across all applications.
 */

#include <cmath>
#include <cstdio>

#include "apps/apps.hpp"
#include "base/logging.hpp"
#include "common.hpp"
#include "model/asic.hpp"

using namespace plast;

int
main(int argc, char **argv)
{
    setVerbose(false);
    std::string json_path = bench::statsJsonPath(argc, argv);
    StatSet json_stats;
    ArchParams params = ArchParams::plasticineFinal();
    model::AreaModel area;

    std::printf("=== Table 6: successive (cumulative) area overheads "
                "===\n");
    std::printf("%-14s %8s %14s %14s %14s %14s\n", "benchmark",
                "a.hetero", "b.homoPMU", "c.homoPCU", "d.genPMU",
                "e.genPCU");

    double ga = 1, gb = 1, gc = 1, gd = 1, ge = 1;
    int n = 0;
    for (const auto &spec : apps::allApps()) {
        if (spec.name == "CNN")
            continue; // Table 6 lists the other twelve
        apps::AppInstance app = spec.make(apps::Scale::kTiny);
        model::GeneralityRow row = model::estimateGenerality(
            spec.name, app.prog, area, params);
        std::printf("%-14s %8.2f %6.2f (%5.2f) %6.2f (%5.2f) %6.2f "
                    "(%5.2f) %6.2f (%5.2f)\n",
                    row.name.c_str(), row.aRatio(), row.bRatio(),
                    row.homoPmu / row.asic, row.cRatio(),
                    row.homoPcu / row.asic, row.dRatio(),
                    row.genPmu / row.asic, row.eRatio(),
                    row.cumulative());
        ga *= row.aRatio();
        gb *= row.bRatio();
        gc *= row.cRatio();
        gd *= row.dRatio();
        ge *= row.eRatio();
        ++n;
        bench::setScaled(json_stats, row.name + ".cumulativeMilli",
                         row.cumulative());
    }
    auto geo = [&](double p) { return std::pow(p, 1.0 / n); };
    std::printf("%-14s %8.2f %6.2f %14.2f %14.2f %14.2f\n", "GeoMean",
                geo(ga), geo(gb), geo(gc), geo(gd), geo(ge));
    std::printf("\nPaper geomeans: a 2.77, b 1.41, c 2.32, d 1.21, "
                "e 1.04 (cumulative 11.5)\n");
    bench::setScaled(json_stats, "geomean.aMilli", geo(ga));
    bench::setScaled(json_stats, "geomean.bMilli", geo(gb));
    bench::setScaled(json_stats, "geomean.cMilli", geo(gc));
    bench::setScaled(json_stats, "geomean.dMilli", geo(gd));
    bench::setScaled(json_stats, "geomean.eMilli", geo(ge));
    bench::writeStatsJson(json_path, json_stats, "table6");
    return 0;
}
