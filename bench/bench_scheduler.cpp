/**
 * @file
 * Host-side cost of the simulation core: runs every Table 4 benchmark
 * end to end under three engine combinations — dense tick +
 * interpreter, activity scheduling + interpreter, and activity
 * scheduling + specialized execution plans — and reports the
 * wall-clock speedups of the *simulation phase* (compile, place &
 * route and input loading are engine-independent and timed
 * separately). All combinations produce bit-identical cycle results
 * (enforced here fatally and by the test suite); the activity win
 * comes from not ticking blocked units, and the specialization win
 * from flat pre-resolved stage plans, monomorphic vectorized kernels
 * and elided dead machinery (DESIGN.md §13).
 *
 * `--paper` additionally runs InnerProduct at the paper's dataset size
 * (768 M elements, Table 7) under the specialized engine — the run the
 * interpretive simulator could not complete in reasonable wall-clock.
 */

#include <chrono>
#include <cstdio>
#include <cstring>

#include "apps/apps.hpp"
#include "base/logging.hpp"
#include "common.hpp"

using namespace plast;

namespace
{

struct ModeRun
{
    double setupSeconds = 0; ///< compile + place-and-route + load
    double simSeconds = 0;   ///< Runner::run() only
    Cycles cycles = 0;
};

ModeRun
timeApp(const apps::AppSpec &spec, apps::Scale scale, SimOptions opts,
        StatSet *statsOut = nullptr)
{
    auto t0 = std::chrono::steady_clock::now();
    apps::AppInstance app = spec.make(scale);
    Runner runner(std::move(app.prog), ArchParams::plasticineFinal(),
                  opts);
    app.load(runner);
    auto t1 = std::chrono::steady_clock::now();
    Runner::Result res = runner.run();
    auto t2 = std::chrono::steady_clock::now();

    if (statsOut) {
        for (const auto &[name, value] : res.stats.all())
            statsOut->set(spec.name + "." + name, value);
    }
    ModeRun out;
    out.setupSeconds = std::chrono::duration<double>(t1 - t0).count();
    out.simSeconds = std::chrono::duration<double>(t2 - t1).count();
    out.cycles = res.cycles;
    return out;
}

void
runPaperScaleInnerProduct()
{
    std::printf("\n=== Paper-scale InnerProduct (768 M elements, "
                "Table 7) — activity + specialized ===\n");
    auto t0 = std::chrono::steady_clock::now();
    apps::AppInstance app =
        apps::makeInnerProduct(apps::Scale::kPaper);
    SimOptions opts;
    opts.simMode = SimMode::kSpecialized;
    Runner runner(std::move(app.prog), ArchParams::plasticineFinal(),
                  opts);
    app.load(runner);
    auto t1 = std::chrono::steady_clock::now();
    Runner::Result res = runner.run();
    auto t2 = std::chrono::steady_clock::now();
    double setup = std::chrono::duration<double>(t1 - t0).count();
    double sim = std::chrono::duration<double>(t2 - t1).count();
    std::printf("completed: %llu cycles | setup %.1f s | sim %.1f s "
                "(%.2f Mcycles/s)\n",
                (unsigned long long)res.cycles, setup, sim,
                static_cast<double>(res.cycles) / sim / 1e6);
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    bool tiny = bench::argPresent(argc, argv, "--tiny");
    bool paper = bench::argPresent(argc, argv, "--paper");
    std::string json_path = bench::statsJsonPath(argc, argv);
    apps::Scale scale = tiny ? apps::Scale::kTiny : apps::Scale::kDefault;

    SimOptions dense;
    dense.mode = SimOptions::Mode::kDense;
    SimOptions activity; // default: activity scheduler, interpreter
    SimOptions specialized;
    specialized.simMode = SimMode::kSpecialized;

    std::printf("=== Simulation-phase cost: dense+interp vs "
                "activity+interp vs activity+specialized ===\n");
    std::printf("%-14s | %10s | %8s | %9s %9s %9s | %7s %7s\n",
                "benchmark", "cycles", "setup_s", "dense_s", "activ_s",
                "spec_s", "act_x", "spec_x");

    StatSet json_stats;
    double dense_total = 0, act_total = 0, spec_total = 0;
    for (const auto &spec : apps::allApps()) {
        ModeRun d = timeApp(spec, scale, dense);
        ModeRun a = timeApp(spec, scale, activity);
        ModeRun s = timeApp(spec, scale, specialized,
                            json_path.empty() ? nullptr : &json_stats);
        fatal_if(d.cycles != a.cycles,
                 "%s: scheduler cycle mismatch (%llu vs %llu)",
                 spec.name.c_str(), (unsigned long long)d.cycles,
                 (unsigned long long)a.cycles);
        fatal_if(s.cycles != a.cycles,
                 "%s: datapath cycle mismatch (%llu vs %llu)",
                 spec.name.c_str(), (unsigned long long)s.cycles,
                 (unsigned long long)a.cycles);
        dense_total += d.simSeconds;
        act_total += a.simSeconds;
        spec_total += s.simSeconds;
        std::printf("%-14s | %10llu | %8.4f | %9.4f %9.4f %9.4f | "
                    "%6.2fx %6.2fx\n",
                    spec.name.c_str(), (unsigned long long)d.cycles,
                    s.setupSeconds, d.simSeconds, a.simSeconds,
                    s.simSeconds, d.simSeconds / a.simSeconds,
                    d.simSeconds / s.simSeconds);
        if (!json_path.empty()) {
            json_stats.set(spec.name + ".wall_us.setup",
                           (uint64_t)(s.setupSeconds * 1e6));
            json_stats.set(spec.name + ".wall_us.dense_interp",
                           (uint64_t)(d.simSeconds * 1e6));
            json_stats.set(spec.name + ".wall_us.activity_interp",
                           (uint64_t)(a.simSeconds * 1e6));
            json_stats.set(spec.name + ".wall_us.activity_specialized",
                           (uint64_t)(s.simSeconds * 1e6));
        }
    }
    std::printf("%-14s | %10s | %8s | %9.4f %9.4f %9.4f | %6.2fx "
                "%6.2fx\n",
                "total", "", "", dense_total, act_total, spec_total,
                dense_total / act_total, dense_total / spec_total);
    bench::writeStatsJson(json_path, json_stats, "scheduler");
    if (paper)
        runPaperScaleInnerProduct();
    return 0;
}
