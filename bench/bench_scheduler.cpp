/**
 * @file
 * Host-side cost of the simulation core: runs every Table 4 benchmark
 * end to end (compile, load, simulate) under the dense-tick loop and
 * under the activity-driven scheduler, and reports the wall-clock
 * speedup. Both modes produce bit-identical cycle results (enforced by
 * the test suite); the win comes from not ticking blocked units,
 * committing only dirty streams, and fast-forwarding idle regions.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "apps/apps.hpp"
#include "base/logging.hpp"

using namespace plast;

namespace
{

struct ModeRun
{
    double wallSeconds = 0;
    Cycles cycles = 0;
};

ModeRun
timeApp(const apps::AppSpec &spec, apps::Scale scale, SimOptions opts,
        StatSet *statsOut = nullptr)
{
    auto t0 = std::chrono::steady_clock::now();
    apps::AppInstance app = spec.make(scale);
    Runner runner(std::move(app.prog), ArchParams::plasticineFinal(),
                  opts);
    app.load(runner);
    Runner::Result res = runner.run();
    auto t1 = std::chrono::steady_clock::now();

    if (statsOut) {
        for (const auto &[name, value] : res.stats.all())
            statsOut->set(spec.name + "." + name, value);
    }
    ModeRun out;
    out.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
    out.cycles = res.cycles;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    bool tiny = false;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--tiny") == 0)
            tiny = true;
        else if (std::strncmp(argv[i], "--stats-json=", 13) == 0)
            json_path = argv[i] + 13;
    }
    apps::Scale scale = tiny ? apps::Scale::kTiny : apps::Scale::kDefault;

    SimOptions dense;
    dense.mode = SimOptions::Mode::kDense;
    SimOptions activity; // default

    std::printf("=== Simulation-core cost: dense tick vs activity "
                "scheduling (end-to-end per app) ===\n");
    std::printf("%-14s | %10s | %10s %10s | %8s\n", "benchmark",
                "cycles", "dense_s", "activity_s", "speedup");

    StatSet json_stats;
    double dense_total = 0, act_total = 0;
    for (const auto &spec : apps::allApps()) {
        ModeRun d = timeApp(spec, scale, dense);
        ModeRun a = timeApp(spec, scale, activity,
                            json_path.empty() ? nullptr : &json_stats);
        fatal_if(d.cycles != a.cycles,
                 "%s: mode cycle mismatch (%llu vs %llu)",
                 spec.name.c_str(), (unsigned long long)d.cycles,
                 (unsigned long long)a.cycles);
        dense_total += d.wallSeconds;
        act_total += a.wallSeconds;
        std::printf("%-14s | %10llu | %10.4f %10.4f | %7.2fx\n",
                    spec.name.c_str(), (unsigned long long)d.cycles,
                    d.wallSeconds, a.wallSeconds,
                    d.wallSeconds / a.wallSeconds);
    }
    std::printf("%-14s | %10s | %10.4f %10.4f | %7.2fx\n", "total", "",
                dense_total, act_total, dense_total / act_total);
    if (!json_path.empty()) {
        std::ofstream os(json_path);
        fatal_if(!os, "cannot open %s", json_path.c_str());
        json_stats.dumpJson(os);
        std::printf("stats: %s\n", json_path.c_str());
    }
    return 0;
}
