#include "common.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "base/logging.hpp"

namespace plast::bench
{

std::string
argValue(int argc, char **argv, const char *name)
{
    size_t n = std::strlen(name);
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], name, n) == 0 && argv[i][n] == '=')
            return argv[i] + n + 1;
    }
    return "";
}

bool
argPresent(int argc, char **argv, const char *name)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0)
            return true;
    }
    return false;
}

std::string
statsJsonPath(int argc, char **argv)
{
    return argValue(argc, argv, "--stats-json");
}

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out += strfmt("\\u%04x", c);
        } else {
            out.push_back(c);
        }
    }
    return out;
}

} // namespace

void
writeStatsJson(const std::string &path, const StatSet &stats,
               const std::string &benchName, const ArchParams &params)
{
    if (path.empty())
        return;
    std::ofstream os(path);
    fatal_if(!os, "cannot open %s", path.c_str());
    os << "{\n";
    os << "  \"meta.arch\": \"" << jsonEscape(params.describe())
       << "\",\n";
    os << "  \"meta.bench\": \"" << jsonEscape(benchName) << "\",\n";
    os << "  \"meta.schema\": \"" << kStatsSchema << "\"";
    for (const auto &[name, value] : stats.all())
        os << ",\n  \"" << name << "\": " << value;
    os << "\n}\n";
    std::printf("stats: %s\n", path.c_str());
}

void
setScaled(StatSet &stats, const std::string &name, double value,
          double scale)
{
    stats.set(name, static_cast<uint64_t>(std::llround(value * scale)));
}

} // namespace plast::bench
