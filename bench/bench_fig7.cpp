/**
 * @file
 * Regenerates Figure 7 (a-f): normalized PCU area overhead
 * (AreaPCU / MinPCU - 1) per benchmark while sweeping one parameter,
 * minimizing over the rest of the space; infeasible values print "x".
 * Axes are swept in the paper's order, fixing each tuned value before
 * the next sweep (6 stages, 6 registers, 6 scalar ins, ...).
 */

#include <cstdio>
#include <vector>

#include "base/logging.hpp"
#include "model/tuning.hpp"

using namespace plast;
using model::Tuner;

namespace
{

void
panel(const Tuner &tuner, char label, Tuner::Axis axis,
      const std::vector<uint32_t> &values, const PcuParams &base,
      const std::vector<Tuner::Axis> &fixed)
{
    std::printf("\n--- Figure 7%c: overhead vs %s per PCU ---\n", label,
                Tuner::axisName(axis).c_str());
    std::printf("%-14s", "benchmark");
    for (uint32_t v : values)
        std::printf(" %6u", v);
    std::printf("\n");
    for (size_t bi = 0; bi < tuner.numBenches(); ++bi) {
        auto series = tuner.sweep(bi, axis, values, base, fixed);
        std::printf("%-14s", tuner.benchName(bi).c_str());
        for (double o : series) {
            if (o < 0)
                std::printf("      x");
            else
                std::printf(" %5.0f%%", 100.0 * o);
        }
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    setVerbose(false);
    Tuner tuner(model::benchmarkLeaves(), model::AreaModel{});

    PcuParams base; // final values pinned as the sweep progresses

    panel(tuner, 'a', Tuner::Axis::kStages,
          {4, 5, 6, 7, 8, 10, 12, 16}, base, {});
    panel(tuner, 'b', Tuner::Axis::kRegs, {2, 4, 6, 8, 12, 16}, base,
          {Tuner::Axis::kStages});
    panel(tuner, 'c', Tuner::Axis::kScalarIns, {1, 2, 4, 6, 8, 10},
          base, {Tuner::Axis::kStages, Tuner::Axis::kRegs});
    panel(tuner, 'd', Tuner::Axis::kScalarOuts, {1, 2, 3, 4, 5, 6},
          base,
          {Tuner::Axis::kStages, Tuner::Axis::kRegs,
           Tuner::Axis::kScalarIns});
    panel(tuner, 'e', Tuner::Axis::kVectorIns, {1, 2, 3, 4, 6, 8, 10},
          base,
          {Tuner::Axis::kStages, Tuner::Axis::kRegs,
           Tuner::Axis::kScalarIns, Tuner::Axis::kScalarOuts});
    panel(tuner, 'f', Tuner::Axis::kVectorOuts, {1, 2, 3, 4, 5, 6},
          base,
          {Tuner::Axis::kStages, Tuner::Axis::kRegs,
           Tuner::Axis::kScalarIns, Tuner::Axis::kScalarOuts,
           Tuner::Axis::kVectorIns});

    std::printf("\nSelected (Table 3): 6 stages, 6 registers, 6 scalar "
                "ins, 5 scalar outs, 3 vector ins, 3 vector outs\n");
    return 0;
}
