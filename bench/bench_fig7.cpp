/**
 * @file
 * Regenerates Figure 7 (a-f): normalized PCU area overhead
 * (AreaPCU / MinPCU - 1) per benchmark while sweeping one parameter,
 * minimizing over the rest of the space; infeasible values print "x".
 * Axes are swept in the paper's order, fixing each tuned value before
 * the next sweep (6 stages, 6 registers, 6 scalar ins, ...).
 */

#include <cstdio>
#include <vector>

#include "base/logging.hpp"
#include "common.hpp"
#include "model/tuning.hpp"

using namespace plast;
using model::Tuner;

namespace
{

void
panel(const Tuner &tuner, char label, Tuner::Axis axis,
      const std::vector<uint32_t> &values, const PcuParams &base,
      const std::vector<Tuner::Axis> &fixed, StatSet &json_stats)
{
    std::printf("\n--- Figure 7%c: overhead vs %s per PCU ---\n", label,
                Tuner::axisName(axis).c_str());
    std::printf("%-14s", "benchmark");
    for (uint32_t v : values)
        std::printf(" %6u", v);
    std::printf("\n");
    for (size_t bi = 0; bi < tuner.numBenches(); ++bi) {
        auto series = tuner.sweep(bi, axis, values, base, fixed);
        std::printf("%-14s", tuner.benchName(bi).c_str());
        for (size_t i = 0; i < series.size(); ++i) {
            double o = series[i];
            if (o < 0) {
                std::printf("      x");
            } else {
                std::printf(" %5.0f%%", 100.0 * o);
                bench::setScaled(
                    json_stats,
                    tuner.benchName(bi) + "." +
                        Tuner::axisName(axis) + ".val" +
                        std::to_string(values[i]) + ".overheadMilli",
                    o);
            }
        }
        std::printf("\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    std::string json_path = bench::statsJsonPath(argc, argv);
    StatSet json_stats;
    Tuner tuner(model::benchmarkLeaves(), model::AreaModel{});

    PcuParams base; // final values pinned as the sweep progresses

    panel(tuner, 'a', Tuner::Axis::kStages,
          {4, 5, 6, 7, 8, 10, 12, 16}, base, {}, json_stats);
    panel(tuner, 'b', Tuner::Axis::kRegs, {2, 4, 6, 8, 12, 16}, base,
          {Tuner::Axis::kStages}, json_stats);
    panel(tuner, 'c', Tuner::Axis::kScalarIns, {1, 2, 4, 6, 8, 10},
          base, {Tuner::Axis::kStages, Tuner::Axis::kRegs}, json_stats);
    panel(tuner, 'd', Tuner::Axis::kScalarOuts, {1, 2, 3, 4, 5, 6},
          base,
          {Tuner::Axis::kStages, Tuner::Axis::kRegs,
           Tuner::Axis::kScalarIns},
          json_stats);
    panel(tuner, 'e', Tuner::Axis::kVectorIns, {1, 2, 3, 4, 6, 8, 10},
          base,
          {Tuner::Axis::kStages, Tuner::Axis::kRegs,
           Tuner::Axis::kScalarIns, Tuner::Axis::kScalarOuts},
          json_stats);
    panel(tuner, 'f', Tuner::Axis::kVectorOuts, {1, 2, 3, 4, 5, 6},
          base,
          {Tuner::Axis::kStages, Tuner::Axis::kRegs,
           Tuner::Axis::kScalarIns, Tuner::Axis::kScalarOuts,
           Tuner::Axis::kVectorIns},
          json_stats);

    std::printf("\nSelected (Table 3): 6 stages, 6 registers, 6 scalar "
                "ins, 5 scalar outs, 3 vector ins, 3 vector outs\n");
    bench::writeStatsJson(json_path, json_stats, "fig7");
    return 0;
}
