/**
 * @file
 * Regenerates Table 7: utilization, power, performance and
 * performance-per-Watt of Plasticine versus the Stratix V FPGA
 * baseline over the 13 benchmarks.
 *
 * Plasticine numbers are measured: every benchmark is compiled by the
 * full stack and executed on the cycle simulator at 1 GHz (results are
 * checked bit-exactly against the reference model by the test suite;
 * workload sizes are scaled as documented in EXPERIMENTS.md). FPGA
 * numbers come from the resource-constraint model in src/fpga,
 * calibrated with the paper's published per-benchmark device
 * utilizations. The paper's measured ratios are printed alongside for
 * shape comparison.
 */

#include <cstdio>
#include <cstring>

#include "apps/apps.hpp"
#include "common.hpp"
#include "fpga/fpga_model.hpp"
#include "base/logging.hpp"
#include "model/power.hpp"

using namespace plast;

namespace
{

struct PaperRow
{
    const char *name;
    double perf; ///< Plasticine / FPGA performance (Table 7)
    double perfPerWatt;
};

const PaperRow kPaper[] = {
    {"InnerProduct", 1.4, 1.6}, {"OuterProduct", 6.7, 6.1},
    {"BlackScholes", 5.1, 5.8}, {"TPCHQ6", 1.4, 1.5},
    {"GEMM", 33.0, 24.4},       {"GDA", 40.0, 25.9},
    {"LogReg", 11.4, 9.2},      {"SGD", 6.7, 15.9},
    {"Kmeans", 6.1, 11.3},      {"CNN", 95.1, 76.9},
    {"SMDV", 8.3, 9.3},         {"PageRank", 14.2, 18.2},
    {"BFS", 7.3, 11.4},
};

PaperRow
paperRow(const std::string &name)
{
    for (const auto &r : kPaper) {
        if (name == r.name)
            return r;
    }
    return {"?", 0, 0};
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    bool tiny = bench::argPresent(argc, argv, "--tiny");
    std::string json_path = bench::statsJsonPath(argc, argv);
    apps::Scale scale = tiny ? apps::Scale::kTiny : apps::Scale::kDefault;
    StatSet json_stats;

    ArchParams params = ArchParams::plasticineFinal();
    model::PowerModel power;

    std::printf("=== Table 7: Plasticine vs FPGA "
                "(measured cycle sim vs baseline model) ===\n");
    std::printf("%-14s | %5s %5s %5s %5s | %6s %6s | %9s %9s | %9s "
                "%7s | %7s %7s\n",
                "benchmark", "PCU%", "PMU%", "AG%", "FU%", "fpgaW",
                "plasW", "fpga_s", "plas_s", "perf", "paper", "perf/W",
                "paper");

    for (const auto &spec : apps::allApps()) {
        apps::AppInstance app = spec.make(scale);
        Runner runner(app.prog, params);
        app.load(runner);
        Runner::Result res = runner.run();
        const auto &rep = runner.report();
        if (!json_path.empty()) {
            for (const auto &[k, v] : res.stats.all())
                json_stats.set(app.name + "." + k, v);
        }

        double cycles = static_cast<double>(res.cycles);
        double plas_s = cycles / 1e9;
        // FU utilization: lane-ops per cycle over provisioned FU-lanes.
        double fu_util = 0;
        double lane_ops = 0;
        for (const auto &[k, v] : res.stats.all()) {
            if (k.find("laneOps") != std::string::npos)
                lane_ops += static_cast<double>(v);
        }
        fu_util = rep.pcusUsed
                      ? lane_ops / (cycles * rep.pcusUsed *
                                    params.pcu.lanes * params.pcu.stages)
                      : 0;

        double plas_w = power.estimate(res.stats, rep, params);
        fpga::FpgaEstimate fe = fpga::estimateFpga(app);
        PaperRow pr = paperRow(app.name);

        double perf = fe.seconds / plas_s;
        double ppw = perf * fe.watts / plas_w;
        std::printf("%-14s | %5.1f %5.1f %5.1f %5.1f | %6.1f %6.1f | "
                    "%9.2e %9.2e | %8.1fx %8.1fx | %6.1fx %6.1fx\n",
                    app.name.c_str(),
                    100.0 * rep.pcusUsed / params.numPcus(),
                    100.0 * rep.pmusUsed / params.numPmus(),
                    100.0 * rep.agsUsed / params.numAgs,
                    100.0 * fu_util, fe.watts, plas_w, fe.seconds,
                    plas_s, perf, pr.perf, ppw, pr.perfPerWatt);
    }

    std::printf("\nNotes: workloads are scaled to run locally "
                "(EXPERIMENTS.md); the paper's ratios are shown for "
                "shape comparison. Utilizations are the mapper's unit "
                "counts over the 64+64-unit fabric; FU%% is measured "
                "lane occupancy.\n");
    bench::writeStatsJson(json_path, json_stats, "table7", params);
    return 0;
}
