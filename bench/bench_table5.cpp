/**
 * @file
 * Regenerates Table 5: the component-wise area breakdown of the final
 * Plasticine architecture (paper: 112.8 mm^2 at 28 nm, PCU 0.849 mm^2,
 * PMU 0.532 mm^2, interconnect 16.7%, memory controller 5%).
 */

#include <cstdio>

#include "common.hpp"
#include "model/area.hpp"
#include "model/power.hpp"

using namespace plast;

int
main(int argc, char **argv)
{
    std::string json_path = bench::statsJsonPath(argc, argv);
    ArchParams params = ArchParams::plasticineFinal();
    model::AreaModel area;
    model::AreaModel::Breakdown b = area.chipBreakdown(params);

    std::printf("=== Table 5: Plasticine area breakdown (28 nm) ===\n");
    std::printf("%s\n", params.describe().c_str());
    std::printf("%s", b.table().c_str());

    std::printf("\nPaper reference points: PCU 0.849 mm^2, PMU 0.532 "
                "mm^2, chip 112.8 mm^2\n");
    std::printf("Model:                  PCU %.3f mm^2, PMU %.3f mm^2, "
                "chip %.1f mm^2\n",
                b.pcuEach, b.pmuEach, b.chip);

    model::PowerModel power;
    std::printf("\nPeak power at 1 GHz: %.1f W (paper: 49 W)\n",
                power.peak(params));
    double tflops = static_cast<double>(params.numPcus()) *
                    params.pcu.lanes * params.pcu.stages * 2.0 / 1e3;
    std::printf("Peak FP throughput: %.1f GFLOPS-equivalent lanes "
                "(paper: 12.3 TFLOPS peak)\n",
                tflops);
    std::printf("On-chip scratchpad: %.1f MB (paper: 16 MB)\n",
                params.numPmus() * params.pmu.totalBytes() / 1.0e6);

    // Model outputs in milli-units (mm^2, W x1000) so the area/power
    // trajectory is gateable alongside the measured benches.
    StatSet json_stats;
    bench::setScaled(json_stats, "area.pcuMilliMm2", b.pcuEach);
    bench::setScaled(json_stats, "area.pmuMilliMm2", b.pmuEach);
    bench::setScaled(json_stats, "area.chipMilliMm2", b.chip);
    bench::setScaled(json_stats, "power.peakMilliW", power.peak(params));
    bench::writeStatsJson(json_path, json_stats, "table5", params);
    return 0;
}
