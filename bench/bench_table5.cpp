/**
 * @file
 * Regenerates Table 5: the component-wise area breakdown of the final
 * Plasticine architecture (paper: 112.8 mm^2 at 28 nm, PCU 0.849 mm^2,
 * PMU 0.532 mm^2, interconnect 16.7%, memory controller 5%).
 */

#include <cstdio>

#include "model/area.hpp"
#include "model/power.hpp"

using namespace plast;

int
main()
{
    ArchParams params = ArchParams::plasticineFinal();
    model::AreaModel area;
    model::AreaModel::Breakdown b = area.chipBreakdown(params);

    std::printf("=== Table 5: Plasticine area breakdown (28 nm) ===\n");
    std::printf("%s\n", params.describe().c_str());
    std::printf("%s", b.table().c_str());

    std::printf("\nPaper reference points: PCU 0.849 mm^2, PMU 0.532 "
                "mm^2, chip 112.8 mm^2\n");
    std::printf("Model:                  PCU %.3f mm^2, PMU %.3f mm^2, "
                "chip %.1f mm^2\n",
                b.pcuEach, b.pmuEach, b.chip);

    model::PowerModel power;
    std::printf("\nPeak power at 1 GHz: %.1f W (paper: 49 W)\n",
                power.peak(params));
    double tflops = static_cast<double>(params.numPcus()) *
                    params.pcu.lanes * params.pcu.stages * 2.0 / 1e3;
    std::printf("Peak FP throughput: %.1f GFLOPS-equivalent lanes "
                "(paper: 12.3 TFLOPS peak)\n",
                tflops);
    std::printf("On-chip scratchpad: %.1f MB (paper: 16 MB)\n",
                params.numPmus() * params.pmu.totalBytes() / 1.0e6);
    return 0;
}
