/**
 * @file
 * The persistent-config-store robustness battery (DESIGN.md §17):
 * record codec round trips over the full app suite, adversarial
 * record images (truncation at every header byte, bit flips in
 * payload and checksum, empty files, version skew) proving
 * quarantine-not-crash, the atomic-publish fault seam (short write,
 * EIO, fsync/rename failure, crash-before-rename and
 * crash-after-temp-write), the single-writer lock with stale-owner
 * takeover, graceful degradation on unusable directories, size-cap
 * eviction, and the in-process warm-restart proof: a restarted server
 * over the same store dir serves bit-identical results with zero
 * recompiles. Runs under ThreadSanitizer in CI like the rest of the
 * serve battery.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "arch/cfgio.hpp"
#include "compiler/mapper.hpp"
#include "runtime/manifest.hpp"
#include "serve/server.hpp"
#include "serve/store.hpp"
#include "serve/traffic.hpp"

using namespace plast;
using namespace plast::serve;

namespace
{

namespace fs = std::filesystem;

/** Fresh scratch directory, removed on scope exit. */
struct TempDir
{
    std::string path;
    TempDir()
    {
        char tmpl[] = "/tmp/plast-store-XXXXXX";
        char *d = mkdtemp(tmpl);
        EXPECT_NE(d, nullptr);
        path = d ? d : "";
    }
    ~TempDir()
    {
        if (!path.empty()) {
            std::error_code ec;
            fs::remove_all(path, ec);
        }
    }
    std::string sub(const std::string &name) const
    {
        return path + "/" + name;
    }
};

compiler::MapResult
compileApp(const apps::AppInstance &inst, const ArchParams &params)
{
    compiler::MapResult mr = compiler::compileProgram(inst.prog, params);
    EXPECT_TRUE(mr.report.ok) << inst.name << ": " << mr.report.error;
    return mr;
}

StoredConfig
storedFor(const apps::AppInstance &inst, const ArchParams &params)
{
    compiler::MapResult mr = compileApp(inst, params);
    return makeStoredConfig(hashProgram(inst.prog), hashArch(params), mr);
}

std::string
readAll(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << path;
    std::stringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

void
writeAll(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(os.good()) << path;
}

size_t
countFiles(const std::string &dir, const std::string &prefix)
{
    size_t n = 0;
    if (!fs::exists(dir))
        return 0;
    for (const auto &e : fs::directory_iterator(dir))
        if (e.path().filename().string().rfind(prefix, 0) == 0)
            ++n;
    return n;
}

} // namespace

// ---- record codec ----------------------------------------------------

TEST(StoreCodec, RoundTripsEveryAppInTheSuite)
{
    // The payload embeds the cfgio text serialization, whose
    // encode/decode fixpoint the cfgio tests already prove; this test
    // proves the *record* layer (header, checksum, drambase, report
    // counters) loses nothing for any real compiled config.
    ArchParams params;
    for (const apps::AppSpec &spec : apps::allApps()) {
        apps::AppInstance inst = spec.make(apps::Scale::kTiny);
        StoredConfig rec = storedFor(inst, params);
        std::string bytes = encodeRecord(rec);

        StoredConfig back;
        Status st = decodeRecord(bytes, back);
        ASSERT_TRUE(st.ok()) << inst.name << ": " << st.toString();
        EXPECT_EQ(back.pirHash, rec.pirHash) << inst.name;
        EXPECT_EQ(back.archHash, rec.archHash) << inst.name;
        EXPECT_EQ(back.dramBase, rec.dramBase) << inst.name;
        EXPECT_TRUE(back.report.ok) << inst.name;
        EXPECT_EQ(back.report.pcusUsed, rec.report.pcusUsed);
        EXPECT_EQ(back.report.pmusUsed, rec.report.pmusUsed);
        EXPECT_EQ(back.report.agsUsed, rec.report.agsUsed);
        EXPECT_EQ(back.report.boxesUsed, rec.report.boxesUsed);
        EXPECT_EQ(back.report.channels, rec.report.channels);
        EXPECT_EQ(back.report.routedHops, rec.report.routedHops);
        EXPECT_EQ(back.report.stagesUsed, rec.report.stagesUsed);
        EXPECT_EQ(back.report.regsUsed, rec.report.regsUsed);
        EXPECT_EQ(back.report.sramWordsUsed, rec.report.sramWordsUsed);
        EXPECT_EQ(back.report.fuActive, rec.report.fuActive);
        // Bit-identical config: the text serialization is the
        // authoritative equality.
        EXPECT_EQ(configToText(back.fabric), configToText(rec.fabric))
            << inst.name;
    }
}

TEST(StoreCodec, TruncationAtEveryHeaderByteIsTypedCorrupt)
{
    ArchParams params;
    apps::AppInstance inst = apps::makeInnerProduct(apps::Scale::kTiny);
    std::string bytes = encodeRecord(storedFor(inst, params));
    ASSERT_GT(bytes.size(), RecordHeader::kSize);

    // Every header-boundary truncation, including the empty file, must
    // come back kCorrupt — never a crash, never a success.
    for (size_t len = 0; len <= RecordHeader::kSize; ++len) {
        StoredConfig out;
        Status st = decodeRecord(bytes.substr(0, len), out);
        EXPECT_EQ(st.code(), StatusCode::kCorrupt) << "len=" << len;
    }
    // A torn payload (header intact, payload short) is caught by the
    // declared-length check before the checksum even runs.
    for (size_t cut = 1; cut <= 3; ++cut) {
        StoredConfig out;
        Status st = decodeRecord(bytes.substr(0, bytes.size() - cut), out);
        EXPECT_EQ(st.code(), StatusCode::kCorrupt) << "cut=" << cut;
    }
}

TEST(StoreCodec, SingleBitFlipsAnywhereAreTypedCorrupt)
{
    ArchParams params;
    apps::AppInstance inst = apps::makeInnerProduct(apps::Scale::kTiny);
    std::string bytes = encodeRecord(storedFor(inst, params));

    // A sample of byte positions spanning magic, version, flags,
    // length, checksum and payload (every byte would be O(size*8)
    // decodes); each single-bit flip must be rejected as corrupt.
    std::vector<size_t> positions = {0,  3,  7,  8,  11, 12,
                                     15, 16, 23, 24, 31};
    for (size_t p = RecordHeader::kSize; p < bytes.size();
         p += bytes.size() / 37 + 1)
        positions.push_back(p);
    for (size_t pos : positions) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string mutated = bytes;
            mutated[pos] = static_cast<char>(
                static_cast<uint8_t>(mutated[pos]) ^ (1u << bit));
            StoredConfig out;
            Status st = decodeRecord(mutated, out);
            EXPECT_EQ(st.code(), StatusCode::kCorrupt)
                << "pos=" << pos << " bit=" << bit;
        }
    }
}

TEST(StoreCodec, VersionSkewAndReservedFlagsAreRejected)
{
    ArchParams params;
    apps::AppInstance inst = apps::makeInnerProduct(apps::Scale::kTiny);
    std::string bytes = encodeRecord(storedFor(inst, params));

    std::string v2 = bytes;
    v2[8] = 2; // version field, little-endian low byte
    StoredConfig out;
    Status st = decodeRecord(v2, out);
    EXPECT_EQ(st.code(), StatusCode::kCorrupt);
    EXPECT_NE(st.toString().find("version"), std::string::npos)
        << st.toString();

    std::string flagged = bytes;
    flagged[12] = 1; // reserved flags must be zero in v1
    st = decodeRecord(flagged, out);
    EXPECT_EQ(st.code(), StatusCode::kCorrupt);
}

// ---- store lifecycle -------------------------------------------------

TEST(Store, PersistLoadAcrossReopenIsBitIdentical)
{
    TempDir td;
    ArchParams params;
    apps::AppInstance inst = apps::makeGemm(apps::Scale::kTiny);
    compiler::MapResult mr = compileApp(inst, params);
    uint64_t pir = hashProgram(inst.prog);
    uint64_t arch = hashArch(params);
    std::string want = configToText(mr.fabric);

    {
        StoreOptions o;
        o.dir = td.sub("store");
        auto st = ConfigStore::open(o);
        ASSERT_EQ(st->mode(), StoreMode::kReadWrite);
        st->persist(pir, arch,
                    std::make_shared<compiler::MapResult>(mr));
        st->flush();
        EXPECT_EQ(st->stats().writes, 1u);
        EXPECT_EQ(st->stats().records, 1u);
    } // orderly close releases the LOCK

    StoreOptions o;
    o.dir = td.sub("store");
    Status why;
    auto st = ConfigStore::open(o, &why);
    ASSERT_EQ(st->mode(), StoreMode::kReadWrite) << why.toString();
    StoredConfig rec;
    Status got = st->load(pir, arch, rec);
    ASSERT_TRUE(got.ok()) << got.toString();
    EXPECT_EQ(configToText(rec.fabric), want);
    EXPECT_EQ(rec.dramBase, mr.dramBase);
    EXPECT_EQ(st->stats().hits, 1u);

    // And the frozen MapResult a cache adoption needs is well-formed.
    auto adopted = toMapResult(std::move(rec));
    EXPECT_TRUE(adopted->report.ok);
    EXPECT_EQ(configToText(adopted->fabric), want);

    Status miss = st->load(pir + 1, arch, rec);
    EXPECT_EQ(miss.code(), StatusCode::kNotFound);
    EXPECT_EQ(st->stats().misses, 1u);
}

TEST(Store, RecoveryQuarantinesCorruptAndMisnamedRecords)
{
    TempDir td;
    ArchParams params;
    apps::AppInstance inst = apps::makeInnerProduct(apps::Scale::kTiny);
    compiler::MapResult mr = compileApp(inst, params);
    uint64_t pir = hashProgram(inst.prog);
    uint64_t arch = hashArch(params);

    std::string dir = td.sub("store");
    {
        StoreOptions o;
        o.dir = dir;
        auto st = ConfigStore::open(o);
        st->persist(pir, arch,
                    std::make_shared<compiler::MapResult>(mr));
        st->flush();
    }

    // Plant the full corruption zoo next to the one good record:
    // a bit-flipped copy under a different (valid-shape) name, a
    // truncated record, junk bytes, and a tmp- crash leftover.
    std::string good;
    std::string goodName;
    for (const auto &e : fs::directory_iterator(dir)) {
        if (e.path().filename().string() == "LOCK")
            continue;
        goodName = e.path().filename().string();
        good = readAll(e.path().string());
    }
    ASSERT_FALSE(good.empty());
    std::string flipped = good;
    flipped[flipped.size() / 2] ^= 0x10;
    writeAll(dir + "/cc-00000000000000aa-00000000000000bb.pcc", flipped);
    writeAll(dir + "/cc-00000000000000cc-00000000000000dd.pcc",
             good.substr(0, good.size() / 3));
    writeAll(dir + "/cc-00000000000000ee-00000000000000ff.pcc",
             "not a record at all");
    writeAll(dir + "/tmp-cc-dead.pcc.123.9", "torn temp");

    StoreOptions o;
    o.dir = dir;
    auto st = ConfigStore::open(o);
    ASSERT_EQ(st->mode(), StoreMode::kReadWrite);
    StoreStats ss = st->stats();
    // The bit-flipped copy fails its checksum; the truncated one its
    // length check; the junk its magic. All three quarantined, the
    // temp reclaimed, the good record still served.
    EXPECT_EQ(ss.corruptQuarantined, 3u);
    EXPECT_EQ(ss.tmpReclaimed, 1u);
    EXPECT_EQ(ss.records, 1u);
    EXPECT_EQ(countFiles(dir + "/quarantine", "cc-"), 3u);
    EXPECT_EQ(countFiles(dir, "tmp-"), 0u);

    StoredConfig rec;
    EXPECT_TRUE(st->load(pir, arch, rec).ok());
    (void)goodName;
}

TEST(Store, RenamedRecordCannotAliasAnotherKey)
{
    TempDir td;
    ArchParams params;
    apps::AppInstance inst = apps::makeInnerProduct(apps::Scale::kTiny);
    compiler::MapResult mr = compileApp(inst, params);
    std::string dir = td.sub("store");
    {
        StoreOptions o;
        o.dir = dir;
        auto st = ConfigStore::open(o);
        st->persist(hashProgram(inst.prog), hashArch(params),
                    std::make_shared<compiler::MapResult>(mr));
        st->flush();
    }
    // Rename the (internally valid) record to claim a different
    // content address: the embedded address wins and the file is
    // quarantined at the next open — a store can't be tricked into
    // serving config X for key Y.
    std::string victim;
    for (const auto &e : fs::directory_iterator(dir))
        if (e.path().filename().string().rfind("cc-", 0) == 0)
            victim = e.path().string();
    ASSERT_FALSE(victim.empty());
    std::string alias =
        dir + "/cc-1111111111111111-2222222222222222.pcc";
    ASSERT_EQ(::rename(victim.c_str(), alias.c_str()), 0);

    StoreOptions o;
    o.dir = dir;
    auto st = ConfigStore::open(o);
    EXPECT_EQ(st->stats().corruptQuarantined, 1u);
    EXPECT_EQ(st->stats().records, 0u);
    StoredConfig rec;
    EXPECT_EQ(st->load(0x1111111111111111ull, 0x2222222222222222ull, rec)
                  .code(),
              StatusCode::kNotFound);
}

TEST(Store, SecondOpenerDegradesToReadOnlyAndStaleLockIsReclaimed)
{
    TempDir td;
    ArchParams params;
    apps::AppInstance inst = apps::makeInnerProduct(apps::Scale::kTiny);
    compiler::MapResult mr = compileApp(inst, params);
    uint64_t pir = hashProgram(inst.prog);
    uint64_t arch = hashArch(params);
    std::string dir = td.sub("store");

    StoreOptions o;
    o.dir = dir;
    auto owner = ConfigStore::open(o);
    ASSERT_EQ(owner->mode(), StoreMode::kReadWrite);
    owner->persist(pir, arch,
                   std::make_shared<compiler::MapResult>(mr));
    owner->flush();

    // A second live daemon: read-only. Probes are served (published
    // records are immutable-by-rename), writes are dropped + counted.
    Status why;
    auto second = ConfigStore::open(o, &why);
    EXPECT_EQ(second->mode(), StoreMode::kReadOnly);
    EXPECT_EQ(why.code(), StatusCode::kUnavailable) << why.toString();
    StoredConfig rec;
    EXPECT_TRUE(second->load(pir, arch, rec).ok());
    second->persist(pir + 1, arch,
                    std::make_shared<compiler::MapResult>(mr));
    second->flush();
    EXPECT_GE(second->stats().fallback, 1u);
    EXPECT_EQ(countFiles(dir, "cc-"), 1u);
    second.reset();

    // Simulate a SIGKILLed owner: a LOCK naming a pid that is
    // genuinely dead (forked child, exited and reaped, so the pid is
    // not recycled yet). The next opener must detect it and take over.
    owner.reset();
    pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0)
        _exit(0);
    int wstatus = 0;
    ASSERT_EQ(waitpid(child, &wstatus, 0), child);
    {
        std::ofstream lk(dir + "/LOCK", std::ios::trunc);
        lk << "pid " << static_cast<long>(child) << "\n";
    }
    auto heir = ConfigStore::open(o, &why);
    EXPECT_EQ(heir->mode(), StoreMode::kReadWrite) << why.toString();
    EXPECT_TRUE(heir->load(pir, arch, rec).ok());
}

TEST(Store, UnusableDirectoryDegradesToDisabledTypedNoOps)
{
    TempDir td;
    // The path is a regular file: mkdir fails, stat says !dir.
    writeAll(td.sub("not-a-dir"), "occupied");
    StoreOptions o;
    o.dir = td.sub("not-a-dir");
    Status why;
    auto st = ConfigStore::open(o, &why);
    ASSERT_NE(st, nullptr); // never fails hard
    EXPECT_EQ(st->mode(), StoreMode::kDisabled);
    EXPECT_EQ(why.code(), StatusCode::kUnavailable);

    StoredConfig rec;
    EXPECT_EQ(st->load(1, 2, rec).code(), StatusCode::kUnavailable);
    st->persist(1, 2, nullptr);
    st->flush(); // must not hang with no writer thread
    EXPECT_GE(st->stats().fallback, 2u);

    // Missing parent directory: same degradation.
    StoreOptions deep;
    deep.dir = td.sub("no/such/parent");
    auto st2 = ConfigStore::open(deep, &why);
    EXPECT_EQ(st2->mode(), StoreMode::kDisabled);
}

// ---- fault seam ------------------------------------------------------

namespace
{

/** Synchronous-publish store + one compiled config for fault tests. */
struct FaultRig
{
    TempDir td;
    ArchParams params;
    compiler::MapResult mr;
    uint64_t pir = 0, arch = 0;
    std::unique_ptr<ConfigStore> st;

    FaultRig()
    {
        apps::AppInstance inst =
            apps::makeInnerProduct(apps::Scale::kTiny);
        mr = compileApp(inst, params);
        pir = hashProgram(inst.prog);
        arch = hashArch(params);
        StoreOptions o;
        o.dir = td.sub("store");
        o.writeBehind = false; // deterministic: persist() == publish()
        st = ConfigStore::open(o);
        EXPECT_EQ(st->mode(), StoreMode::kReadWrite);
    }
    void persistOnce()
    {
        st->persist(pir, arch,
                    std::make_shared<compiler::MapResult>(mr));
    }
    std::string dir() const { return td.sub("store"); }
};

} // namespace

TEST(StoreFaults, ShortWriteLeavesTornTempThatRecoveryReclaims)
{
    FaultRig rig;
    StoreFaultPlan plan;
    plan.kind = StoreFault::kShortWrite;
    plan.shortBytes = 40;
    rig.st->setFaultPlan(plan);
    rig.persistOnce();
    StoreStats ss = rig.st->stats();
    EXPECT_EQ(ss.writes, 0u);
    EXPECT_EQ(ss.writeFailures, 1u);
    // The torn temp is exactly what a crash mid-write leaves; it must
    // never be visible under a final name.
    EXPECT_EQ(countFiles(rig.dir(), "cc-"), 0u);
    EXPECT_EQ(countFiles(rig.dir(), "tmp-"), 1u);

    // The one-shot plan has fired: the retry succeeds.
    rig.persistOnce();
    EXPECT_EQ(rig.st->stats().writes, 1u);
    StoredConfig rec;
    EXPECT_TRUE(rig.st->load(rig.pir, rig.arch, rec).ok());

    // Reopen reclaims the torn temp.
    rig.st.reset();
    StoreOptions o;
    o.dir = rig.dir();
    auto st = ConfigStore::open(o);
    EXPECT_EQ(st->stats().tmpReclaimed, 1u);
    EXPECT_EQ(countFiles(rig.dir(), "tmp-"), 0u);
    EXPECT_EQ(st->stats().records, 1u);
}

TEST(StoreFaults, WriteFsyncRenameFailuresAreCountedAndClean)
{
    for (StoreFault f : {StoreFault::kEioWrite, StoreFault::kFailFsync,
                         StoreFault::kFailRename}) {
        FaultRig rig;
        StoreFaultPlan plan;
        plan.kind = f;
        rig.st->setFaultPlan(plan);
        rig.persistOnce();
        StoreStats ss = rig.st->stats();
        EXPECT_EQ(ss.writes, 0u) << static_cast<int>(f);
        EXPECT_EQ(ss.writeFailures, 1u) << static_cast<int>(f);
        // Failed publishes clean their temp and publish nothing.
        EXPECT_EQ(countFiles(rig.dir(), "cc-"), 0u);
        EXPECT_EQ(countFiles(rig.dir(), "tmp-"), 0u);
        StoredConfig rec;
        EXPECT_EQ(rig.st->load(rig.pir, rig.arch, rec).code(),
                  StatusCode::kNotFound);
        // The store stays serviceable after the fault.
        rig.persistOnce();
        EXPECT_EQ(rig.st->stats().writes, 1u);
    }
}

TEST(StoreFaults, CrashBeforeRenameIsInvisibleAndReclaimed)
{
    // Both crash points leave only a tmp- file — fully staged
    // (crash-before-rename) or torn (crash-after-temp-write) — and
    // neither is ever served: publish-by-rename means a record either
    // appears whole under its final name or not at all.
    for (StoreFault f : {StoreFault::kCrashBeforeRename,
                         StoreFault::kCrashAfterTempWrite}) {
        FaultRig rig;
        StoreFaultPlan plan;
        plan.kind = f;
        rig.st->setFaultPlan(plan);
        rig.persistOnce();
        EXPECT_EQ(countFiles(rig.dir(), "cc-"), 0u)
            << static_cast<int>(f);
        EXPECT_EQ(countFiles(rig.dir(), "tmp-"), 1u)
            << static_cast<int>(f);
        StoredConfig rec;
        EXPECT_EQ(rig.st->load(rig.pir, rig.arch, rec).code(),
                  StatusCode::kNotFound);

        rig.st.reset(); // the "restart"
        StoreOptions o;
        o.dir = rig.dir();
        auto st = ConfigStore::open(o);
        EXPECT_EQ(st->stats().tmpReclaimed, 1u);
        EXPECT_EQ(st->stats().records, 0u);
        EXPECT_EQ(st->load(rig.pir, rig.arch, rec).code(),
                  StatusCode::kNotFound);
    }
}

TEST(Store, SizeCapEvictsOldestButNeverTheNewest)
{
    TempDir td;
    ArchParams params;
    apps::AppInstance inst = apps::makeInnerProduct(apps::Scale::kTiny);
    compiler::MapResult mr = compileApp(inst, params);
    uint64_t arch = hashArch(params);

    StoreOptions o;
    o.dir = td.sub("store");
    o.writeBehind = false;
    // Roughly two records' worth: the third publish evicts the first.
    o.maxBytes = 2 * encodeRecord(makeStoredConfig(1, arch, mr)).size() +
                 64;
    auto st = ConfigStore::open(o);
    for (uint64_t k = 1; k <= 3; ++k)
        st->persist(k, arch, std::make_shared<compiler::MapResult>(mr));
    StoreStats ss = st->stats();
    EXPECT_EQ(ss.writes, 3u);
    EXPECT_EQ(ss.evicted, 1u);
    EXPECT_EQ(ss.records, 2u);
    EXPECT_LE(ss.bytes, o.maxBytes);
    StoredConfig rec;
    EXPECT_EQ(st->load(1, arch, rec).code(), StatusCode::kNotFound);
    EXPECT_TRUE(st->load(2, arch, rec).ok());
    EXPECT_TRUE(st->load(3, arch, rec).ok());

    // A cap smaller than one record still serves the newest rather
    // than thrashing an empty store.
    StoreOptions tiny;
    tiny.dir = td.sub("tiny");
    tiny.writeBehind = false;
    tiny.maxBytes = 128;
    auto st2 = ConfigStore::open(tiny);
    st2->persist(7, arch, std::make_shared<compiler::MapResult>(mr));
    EXPECT_EQ(st2->stats().records, 1u);
    EXPECT_TRUE(st2->load(7, arch, rec).ok());
}

// ---- warm restart through the server ---------------------------------

TEST(StoreServe, WarmRestartServesBitIdenticalWithZeroRecompiles)
{
    TempDir td;
    TrafficOptions topts;
    topts.jobs = 24;
    topts.uniques = 6;
    ServeOptions sopts;
    sopts.workers = 4;
    sopts.storeDir = td.sub("store");
    sopts.storeSync = false; // keep the test fast; fsync is the CI job

    std::map<std::string, uint64_t> coldHashes;
    {
        Server server(sopts);
        ASSERT_NE(server.store(), nullptr);
        server.start();
        for (JobSpec &s : makeTraffic(topts))
            server.submit(std::move(s));
        server.drain();
        for (const JobResult &r : server.results()) {
            ASSERT_TRUE(r.outcome) << r.source;
            EXPECT_EQ(r.outcome->outcome, "ok") << r.source;
            coldHashes[r.source] = r.outcome->resultHash;
        }
        StoreStats ss = server.store()->stats();
        EXPECT_EQ(ss.hits, 0u);
        EXPECT_EQ(ss.writes, topts.uniques); // one per unique identity
    } // drain() flushed; destruction releases the LOCK

    // The restarted daemon: every unique config comes off disk, the
    // compiler is never invoked, and every result hash matches the
    // cold run bit for bit.
    Server server(sopts);
    ASSERT_NE(server.store(), nullptr);
    server.start();
    for (JobSpec &s : makeTraffic(topts))
        server.submit(std::move(s));
    server.drain();
    for (const JobResult &r : server.results()) {
        ASSERT_TRUE(r.outcome) << r.source;
        EXPECT_EQ(r.outcome->outcome, "ok") << r.source;
        EXPECT_EQ(r.outcome->resultHash, coldHashes[r.source])
            << r.source;
    }
    StoreStats ss = server.store()->stats();
    EXPECT_EQ(ss.hits, topts.uniques);
    EXPECT_EQ(ss.misses, 0u); // zero recompiles for persisted keys
    EXPECT_EQ(ss.writes, 0u);
}

TEST(StoreServe, CorruptRecordIsQuarantinedRecompiledAndRepaired)
{
    TempDir td;
    TrafficOptions topts;
    topts.jobs = 12;
    topts.uniques = 3;
    ServeOptions sopts;
    sopts.workers = 2;
    sopts.storeDir = td.sub("store");
    sopts.storeSync = false;

    std::map<std::string, uint64_t> coldHashes;
    {
        Server server(sopts);
        server.start();
        for (JobSpec &s : makeTraffic(topts))
            server.submit(std::move(s));
        server.drain();
        for (const JobResult &r : server.results())
            coldHashes[r.source] = r.outcome ? r.outcome->resultHash : 0;
    }

    // Flip one bit in one published record.
    std::string victim;
    for (const auto &e : fs::directory_iterator(td.sub("store")))
        if (e.path().filename().string().rfind("cc-", 0) == 0)
            victim = e.path().string();
    ASSERT_FALSE(victim.empty());
    std::string bytes = readAll(victim);
    bytes[bytes.size() - 9] ^= 0x04;
    writeAll(victim, bytes);

    // Restart: the damaged record is quarantined at the recovery
    // scan, its jobs recompile (a miss, not a failure), the fresh
    // compile re-persists, and every result is still bit-identical.
    Server server(sopts);
    server.start();
    for (JobSpec &s : makeTraffic(topts))
        server.submit(std::move(s));
    server.drain();
    for (const JobResult &r : server.results()) {
        ASSERT_TRUE(r.outcome) << r.source;
        EXPECT_EQ(r.outcome->outcome, "ok") << r.source;
        EXPECT_EQ(r.outcome->resultHash, coldHashes[r.source])
            << r.source;
    }
    StoreStats ss = server.store()->stats();
    EXPECT_EQ(ss.corruptQuarantined, 1u);
    EXPECT_EQ(ss.hits, topts.uniques - 1);
    EXPECT_EQ(ss.misses, 1u);
    EXPECT_EQ(ss.writes, 1u); // the repair
    EXPECT_EQ(countFiles(td.sub("store") + "/quarantine", "cc-"), 1u);
}

TEST(StoreServe, DisabledStoreKeepsServingFromMemory)
{
    // --store-dir pointing at a file must not take the daemon down:
    // kDisabled store, in-memory serving exactly as before.
    TempDir td;
    writeAll(td.sub("occupied"), "not a directory");
    TrafficOptions topts;
    topts.jobs = 8;
    topts.uniques = 2;
    ServeOptions sopts;
    sopts.workers = 2;
    sopts.storeDir = td.sub("occupied");

    Server server(sopts);
    ASSERT_NE(server.store(), nullptr);
    EXPECT_EQ(server.store()->mode(), StoreMode::kDisabled);
    EXPECT_EQ(server.storeStatus().code(), StatusCode::kUnavailable);
    server.start();
    for (JobSpec &s : makeTraffic(topts))
        server.submit(std::move(s));
    server.drain();
    for (const JobResult &r : server.results())
        EXPECT_EQ(r.outcome ? r.outcome->outcome : "lost", "ok");
    EXPECT_GE(server.store()->stats().fallback, 1u);
}
