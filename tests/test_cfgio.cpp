/** @file FabricConfig text serialization: write -> read -> write is a
 *  string fixpoint, and a reloaded config disassembles identically —
 *  the "bitstream" can be archived and replayed. */

#include <gtest/gtest.h>

#include <sstream>

#include "apps/apps.hpp"
#include "arch/cfgio.hpp"
#include "arch/disasm.hpp"
#include "base/logging.hpp"
#include "compiler/mapper.hpp"

using namespace plast;

namespace
{

FabricConfig
compiledConfig(const apps::AppInstance &app)
{
    compiler::MapResult res = compiler::compileProgram(
        app.prog, ArchParams::plasticineFinal());
    EXPECT_TRUE(res.report.ok) << app.name << ": " << res.report.error;
    return res.fabric;
}

void
expectRoundTrip(const FabricConfig &cfg, const std::string &what)
{
    std::string t1 = configToText(cfg);
    std::istringstream is(t1);
    FabricConfig back;
    std::string err;
    ASSERT_TRUE(readConfig(is, back, &err)) << what << ": " << err;
    // String fixpoint: every serialized field survived the parse.
    EXPECT_EQ(configToText(back), t1) << what;
    // And the reloaded config describes the identical fabric.
    EXPECT_EQ(disasmFabric(back), disasmFabric(cfg)) << what;
}

} // namespace

TEST(CfgIo, InnerProductRoundTrips)
{
    setVerbose(false);
    expectRoundTrip(
        compiledConfig(apps::makeInnerProduct(apps::Scale::kTiny)),
        "innerproduct");
}

TEST(CfgIo, TpchQ6RoundTrips)
{
    setVerbose(false);
    expectRoundTrip(compiledConfig(apps::makeTpchQ6(apps::Scale::kTiny)),
                    "tpchq6");
}

TEST(CfgIo, GemmRoundTrips)
{
    setVerbose(false);
    expectRoundTrip(compiledConfig(apps::makeGemm(apps::Scale::kTiny)),
                    "gemm");
}

TEST(CfgIo, RejectsGarbage)
{
    std::istringstream is("not a config\n");
    FabricConfig cfg;
    std::string err;
    EXPECT_FALSE(readConfig(is, cfg, &err));
    EXPECT_FALSE(err.empty());
}

TEST(CfgIo, RejectsTruncatedDocument)
{
    // Serialize a real config, drop the trailing 'end', expect a
    // diagnostic instead of a silent partial parse.
    setVerbose(false);
    FabricConfig cfg =
        compiledConfig(apps::makeInnerProduct(apps::Scale::kTiny));
    std::string text = configToText(cfg);
    size_t cut = text.rfind("end");
    ASSERT_NE(cut, std::string::npos);
    std::istringstream is(text.substr(0, cut));
    FabricConfig back;
    std::string err;
    EXPECT_FALSE(readConfig(is, back, &err));
    EXPECT_FALSE(err.empty());
}
