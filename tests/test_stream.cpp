/** @file Routed-stream semantics: latency, capacity backpressure,
 *  two-phase visibility, token preloading. */

#include <gtest/gtest.h>

#include "sim/stream.hpp"

using namespace plast;

TEST(Stream, LatencyDelaysArrival)
{
    ScalarStream s("t", /*latency=*/3, /*capacity=*/4);
    Cycles now = 0;
    s.push(42);
    for (int i = 0; i < 3; ++i) {
        s.tick(now++);
        if (i < 2) {
            EXPECT_FALSE(s.canPop()) << "arrived early at tick " << i;
        }
    }
    ASSERT_TRUE(s.canPop());
    EXPECT_EQ(s.front(), 42u);
}

TEST(Stream, SustainsOneElementPerCycle)
{
    ScalarStream s("t", 2, 4);
    Cycles now = 0;
    int pushed = 0, popped = 0;
    for (int c = 0; c < 100; ++c) {
        if (s.canPush()) {
            s.push(static_cast<Word>(pushed));
            ++pushed;
        }
        if (s.canPop()) {
            EXPECT_EQ(s.front(), static_cast<Word>(popped));
            s.pop();
            ++popped;
        }
        s.tick(now++);
    }
    EXPECT_GE(popped, 95) << "stream throughput below ~1/cycle";
}

TEST(Stream, BackpressureWhenNotDrained)
{
    ScalarStream s("t", 1, 2);
    Cycles now = 0;
    int accepted = 0;
    for (int c = 0; c < 10; ++c) {
        if (s.canPush()) {
            s.push(1);
            ++accepted;
        }
        s.tick(now++);
    }
    // latency(1) + capacity(2) elements fit; no more.
    EXPECT_EQ(accepted, 3);
}

TEST(Stream, TwoPhase_PushInvisibleSameCycle)
{
    ScalarStream s("t", 1, 4);
    s.push(5);
    EXPECT_FALSE(s.canPop()); // not before tick
}

TEST(Stream, TwoPhase_PopCountsBeforeCommit)
{
    ScalarStream s("t", 1, 4);
    Cycles now = 0;
    s.push(1);
    s.push(2);
    s.tick(now++);
    s.tick(now++);
    ASSERT_TRUE(s.canPop());
    s.pop();
    // The staged pop hides the first element immediately.
    ASSERT_TRUE(s.canPop());
    EXPECT_EQ(s.front(), 2u);
}

TEST(Stream, PreloadTokensAvailableImmediately)
{
    ControlStream s("credits", 1, 8);
    s.preload(Token{});
    s.preload(Token{});
    EXPECT_TRUE(s.canPop());
    EXPECT_EQ(s.available(), 2u);
    s.pop();
    s.pop();
    EXPECT_FALSE(s.canPop());
}

TEST(Stream, QuiescentTracksContents)
{
    VectorStream s("v", 2, 4);
    EXPECT_TRUE(s.quiescent());
    s.push(Vec::broadcast(1, 16));
    EXPECT_FALSE(s.quiescent());
    Cycles now = 0;
    for (int i = 0; i < 4; ++i)
        s.tick(now++);
    EXPECT_FALSE(s.quiescent()); // still queued at receiver
    s.pop();
    s.tick(now++);
    EXPECT_TRUE(s.quiescent());
}

TEST(Stream, VectorPayloadIntact)
{
    VectorStream s("v", 1, 2);
    Vec v;
    for (uint32_t l = 0; l < 16; ++l) {
        v.lane[l] = l * l;
        v.setValid(l);
    }
    v.clearValid(7);
    s.push(v);
    Cycles now = 0;
    s.tick(now++);
    ASSERT_TRUE(s.canPop());
    const Vec &got = s.front();
    EXPECT_EQ(got.mask, v.mask);
    for (uint32_t l = 0; l < 16; ++l)
        EXPECT_EQ(got.lane[l], l * l);
}

/** Property sweep: total delivered never exceeds pushed; order kept. */
class StreamParams
    : public ::testing::TestWithParam<std::pair<uint32_t, uint32_t>>
{
};

TEST_P(StreamParams, FifoOrderPreserved)
{
    auto [latency, capacity] = GetParam();
    ScalarStream s("p", latency, capacity);
    Cycles now = 0;
    Word next_push = 0, next_pop = 0;
    for (int c = 0; c < 300; ++c) {
        if ((c % 3) != 0 && s.canPush())
            s.push(next_push++);
        if ((c % 2) == 0 && s.canPop()) {
            EXPECT_EQ(s.front(), next_pop);
            s.pop();
            ++next_pop;
        }
        s.tick(now++);
    }
    EXPECT_LE(next_pop, next_push);
    EXPECT_GT(next_pop, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    LatencyCapacity, StreamParams,
    ::testing::Values(std::make_pair(1u, 1u), std::make_pair(1u, 16u),
                      std::make_pair(4u, 2u), std::make_pair(8u, 8u),
                      std::make_pair(16u, 1u)));
