/** @file Observability: trace-sink mechanics, Chrome-JSON export,
 *  per-unit cycle-accounting invariants, stats export and the
 *  bottleneck report. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "base/trace.hpp"
#include "runtime/bottleneck.hpp"
#include "runtime/runner.hpp"

using namespace plast;

namespace
{

// ---- minimal JSON syntax checker ----------------------------------
// Validates full JSON syntax (the CI job cross-checks with python3);
// returns false on any violation.

struct JsonChecker
{
    const std::string &s;
    size_t i = 0;

    explicit JsonChecker(const std::string &text) : s(text) {}

    void
    ws()
    {
        while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
    }

    bool
    literal(const char *lit)
    {
        size_t n = std::strlen(lit);
        if (s.compare(i, n, lit) != 0)
            return false;
        i += n;
        return true;
    }

    bool
    string()
    {
        if (i >= s.size() || s[i] != '"')
            return false;
        ++i;
        while (i < s.size() && s[i] != '"') {
            if (s[i] == '\\') {
                ++i;
                if (i >= s.size())
                    return false;
            }
            ++i;
        }
        if (i >= s.size())
            return false;
        ++i; // closing quote
        return true;
    }

    bool
    number()
    {
        size_t start = i;
        if (i < s.size() && s[i] == '-')
            ++i;
        while (i < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[i])) ||
                s[i] == '.' || s[i] == 'e' || s[i] == 'E' || s[i] == '+' ||
                s[i] == '-'))
            ++i;
        return i > start;
    }

    bool
    value()
    {
        ws();
        if (i >= s.size())
            return false;
        char c = s[i];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        if (c == 't')
            return literal("true");
        if (c == 'f')
            return literal("false");
        if (c == 'n')
            return literal("null");
        return number();
    }

    bool
    object()
    {
        if (s[i] != '{')
            return false;
        ++i;
        ws();
        if (i < s.size() && s[i] == '}') {
            ++i;
            return true;
        }
        while (true) {
            ws();
            if (!string())
                return false;
            ws();
            if (i >= s.size() || s[i] != ':')
                return false;
            ++i;
            if (!value())
                return false;
            ws();
            if (i < s.size() && s[i] == ',') {
                ++i;
                continue;
            }
            break;
        }
        ws();
        if (i >= s.size() || s[i] != '}')
            return false;
        ++i;
        return true;
    }

    bool
    array()
    {
        if (s[i] != '[')
            return false;
        ++i;
        ws();
        if (i < s.size() && s[i] == ']') {
            ++i;
            return true;
        }
        while (true) {
            if (!value())
                return false;
            ws();
            if (i < s.size() && s[i] == ',') {
                ++i;
                continue;
            }
            break;
        }
        ws();
        if (i >= s.size() || s[i] != ']')
            return false;
        ++i;
        return true;
    }

    bool
    document()
    {
        bool ok = value();
        ws();
        return ok && i == s.size();
    }
};

bool
jsonWellFormed(const std::string &text)
{
    JsonChecker c(text);
    return c.document();
}

size_t
countOccurrences(const std::string &hay, const std::string &needle)
{
    size_t n = 0;
    for (size_t p = hay.find(needle); p != std::string::npos;
         p = hay.find(needle, p + needle.size()))
        ++n;
    return n;
}

struct AppRun
{
    Cycles cycles = 0;    ///< root-completion cycle (Result.cycles)
    Cycles simCycles = 0; ///< fabric clock incl. post-completion drain
    StatSet stats;
    std::string traceJson;
    std::string utilCsv;
    std::vector<TraceSink::Event> events;
    std::vector<std::string> tracks;
    std::vector<std::pair<std::string, CycleAcct>> accts;
    BottleneckReport report;
};

const apps::AppSpec &
appByName(const std::string &name)
{
    for (const auto &s : apps::allApps()) {
        if (s.name == name)
            return s;
    }
    ADD_FAILURE() << "unknown app " << name;
    return apps::allApps()[0];
}

AppRun
runTraced(const std::string &name, SimOptions::Mode mode,
          bool tracing = true)
{
    setVerbose(false);
    const apps::AppSpec &spec = appByName(name);
    apps::AppInstance app = spec.make(apps::Scale::kTiny);
    SimOptions opts;
    opts.mode = mode;
    opts.trace.enabled = tracing;
    Runner runner(app.prog, ArchParams::plasticineFinal(), opts);
    app.load(runner);
    Runner::Result res = runner.run();

    AppRun out;
    out.cycles = res.cycles;
    out.stats = res.stats;
    const Fabric *fab = runner.fabric();
    out.simCycles = fab->now();
    if (tracing && kTracingCompiled) {
        std::ostringstream os, csv;
        fab->writeTrace(os);
        out.traceJson = os.str();
        fab->writeUtilizationCsv(csv);
        out.utilCsv = csv.str();
        fab->trace()->forEach(
            [&](const TraceSink::Event &e) { out.events.push_back(e); });
        out.tracks = fab->trace()->tracks();
        out.report = analyzeBottlenecks(*fab);
    }
    // Unused fabric slots have no sim object; collect only live units.
    const FabricConfig &cfg = fab->config();
    for (size_t i = 0; i < cfg.pcus.size(); ++i) {
        if (const auto *u = fab->pcuPtr(static_cast<uint32_t>(i)))
            out.accts.emplace_back("pcu" + std::to_string(i), u->acct());
    }
    for (size_t i = 0; i < cfg.pmus.size(); ++i) {
        if (const auto *u = fab->pmuPtr(static_cast<uint32_t>(i)))
            out.accts.emplace_back("pmu" + std::to_string(i), u->acct());
    }
    for (size_t i = 0; i < cfg.ags.size(); ++i) {
        if (const auto *u = fab->agPtr(static_cast<uint32_t>(i)))
            out.accts.emplace_back("ag" + std::to_string(i), u->acct());
    }
    for (size_t i = 0; i < cfg.boxes.size(); ++i) {
        if (const auto *u = fab->boxPtr(static_cast<uint32_t>(i)))
            out.accts.emplace_back("box" + std::to_string(i), u->acct());
    }
    EXPECT_FALSE(out.accts.empty());
    return out;
}

/** active + every stall class + idle + asleep must tile totalCycles. */
void
checkAccounting(const AppRun &run, const std::string &ctx)
{
    for (const auto &[label, a] : run.accts) {
        uint64_t by_sum = 0, slept_sum = 0;
        for (size_t c = 0; c < kNumCycleClasses; ++c) {
            by_sum += a.by[c];
            slept_sum += a.sleptBy[c];
        }
        EXPECT_EQ(by_sum, a.stepped)
            << ctx << " " << label << ": every evaluated cycle classified";
        EXPECT_EQ(slept_sum, a.slept)
            << ctx << " " << label << ": every slept cycle attributed";
        ASSERT_LE(a.stepped + a.slept, run.simCycles)
            << ctx << " " << label;
        uint64_t asleep = run.simCycles - a.stepped - a.slept;
        EXPECT_EQ(by_sum + slept_sum + asleep, run.simCycles)
            << ctx << " " << label
            << ": active + stalls + idle + asleep == total";
    }
}

void
checkSpansNest(const AppRun &run, const std::string &ctx)
{
    // Complete ("X") spans on one track must not overlap — that is the
    // contract that lets viewers nest them by containment.
    std::map<uint16_t, std::vector<std::pair<Cycles, Cycles>>> per_track;
    for (const auto &e : run.events) {
        if (e.kind == TraceSink::Kind::kSpan)
            per_track[e.track].emplace_back(e.ts, e.ts + e.aux);
    }
    for (auto &[track, spans] : per_track) {
        std::sort(spans.begin(), spans.end());
        for (size_t i = 0; i + 1 < spans.size(); ++i) {
            EXPECT_LE(spans[i].second, spans[i + 1].first)
                << ctx << ": overlapping spans on track " << track << " ("
                << run.tracks[track] << ")";
        }
        for (const auto &[b, e] : spans)
            EXPECT_LT(b, e) << ctx << ": empty/negative span";
    }
}

} // namespace

// ---- TraceSink mechanics ------------------------------------------

TEST(TraceSink, RingWrapsAndCountsDrops)
{
    TraceSink sink(4);
    uint16_t t = sink.addTrack("t");
    for (Cycles c = 0; c < 10; ++c)
        sink.instant(t, TraceName::kTokens, c);
    EXPECT_EQ(sink.size(), 4u);
    EXPECT_EQ(sink.dropped(), 6u);
    std::vector<Cycles> ts;
    sink.forEach([&](const TraceSink::Event &e) { ts.push_back(e.ts); });
    ASSERT_EQ(ts.size(), 4u);
    EXPECT_EQ(ts.front(), 6u) << "oldest retained";
    EXPECT_EQ(ts.back(), 9u) << "newest retained";
}

TEST(TraceSink, ChromeJsonWellFormed)
{
    TraceSink sink(64);
    uint16_t a = sink.addTrack("unit a");
    uint16_t b = sink.addTrack("stream \"b\"\\x");
    sink.span(a, TraceName::kRun, 5, 17);
    sink.async(a, TraceName::kWavefront, 6, 9, 1);
    sink.async(a, TraceName::kWavefront, 7, 12, 2);
    sink.instant(a, TraceName::kDone, 17);
    sink.counter(b, TraceName::kOccupancy, 3, 7);
    std::ostringstream os;
    sink.writeChromeJson(os);
    std::string json = os.str();
    EXPECT_TRUE(jsonWellFormed(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    // Track names are escaped, not emitted raw.
    EXPECT_EQ(json.find("stream \"b\""), std::string::npos);
}

TEST(TraceSink, EmitHelpersNullSafe)
{
    traceSpan(nullptr, 0, TraceName::kRun, 0, 1);
    traceAsync(nullptr, 0, TraceName::kWavefront, 0, 1, 1);
    traceInstant(nullptr, 0, TraceName::kDone, 0);
    traceCounter(nullptr, 0, TraceName::kOccupancy, 0, 0);
}

// ---- end-to-end observability on the benchmark apps ----------------

class TracedApp : public ::testing::TestWithParam<const char *>
{
};

TEST_P(TracedApp, AccountingInvariantActivityMode)
{
    AppRun run = runTraced(GetParam(), SimOptions::Mode::kActivity);
    checkAccounting(run, std::string(GetParam()) + "/activity");
}

TEST_P(TracedApp, AccountingInvariantDenseMode)
{
    AppRun run = runTraced(GetParam(), SimOptions::Mode::kDense);
    checkAccounting(run, std::string(GetParam()) + "/dense");
    // Dense mode evaluates every unit every cycle: nothing sleeps.
    for (const auto &[label, a] : run.accts) {
        EXPECT_EQ(a.slept, 0u) << label;
        EXPECT_EQ(a.stepped, run.simCycles) << label;
    }
}

TEST_P(TracedApp, TraceJsonAndSpans)
{
    if (!kTracingCompiled)
        GTEST_SKIP() << "built with PLAST_TRACING=0";
    AppRun run = runTraced(GetParam(), SimOptions::Mode::kActivity);
    EXPECT_TRUE(jsonWellFormed(run.traceJson)) << GetParam();
    EXPECT_FALSE(run.events.empty());
    EXPECT_GT(countOccurrences(run.traceJson, "\"ph\":\"X\""), 0u)
        << "unit run spans present";
    checkSpansNest(run, GetParam());
    for (const auto &e : run.events)
        ASSERT_LT(e.track, run.tracks.size()) << "event on unknown track";
}

TEST_P(TracedApp, TracingDoesNotPerturbCycles)
{
    AppRun off = runTraced(GetParam(), SimOptions::Mode::kActivity,
                           /*tracing=*/false);
    AppRun on = runTraced(GetParam(), SimOptions::Mode::kActivity,
                          /*tracing=*/true);
    EXPECT_EQ(off.cycles, on.cycles) << GetParam();
}

TEST_P(TracedApp, UtilizationCsvAndReport)
{
    if (!kTracingCompiled)
        GTEST_SKIP() << "built with PLAST_TRACING=0";
    AppRun run = runTraced(GetParam(), SimOptions::Mode::kActivity);
    ASSERT_FALSE(run.utilCsv.empty());
    EXPECT_EQ(run.utilCsv.rfind("cycle,active,", 0), 0u)
        << "CSV header first";
    EXPECT_GT(countOccurrences(run.utilCsv, "\n"), 1u) << "data rows";

    EXPECT_EQ(run.report.cycles, run.simCycles);
    EXPECT_FALSE(run.report.units.empty());
    EXPECT_FALSE(run.report.blamePath.empty());
    EXPECT_FALSE(run.report.critical.empty());
    std::string rendered = run.report.render();
    EXPECT_NE(rendered.find("Critical:"), std::string::npos);
    EXPECT_NE(rendered.find("Blame path:"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Apps, TracedApp,
                         ::testing::Values("InnerProduct", "GEMM",
                                           "PageRank", "Kmeans"));

// ---- stats export --------------------------------------------------

TEST(Stats, DumpJsonWellFormed)
{
    AppRun run =
        runTraced("InnerProduct", SimOptions::Mode::kActivity, false);
    std::ostringstream os;
    run.stats.dumpJson(os);
    EXPECT_TRUE(jsonWellFormed(os.str())) << os.str();
    EXPECT_NE(os.str().find("\"cycles\""), std::string::npos);
}

TEST(Stats, DumpStatsIdempotent)
{
    setVerbose(false);
    const apps::AppSpec &spec = appByName("InnerProduct");
    apps::AppInstance app = spec.make(apps::Scale::kTiny);
    Runner runner(app.prog);
    app.load(runner);
    runner.run();
    const Fabric *fab = runner.fabric();
    ASSERT_NE(fab, nullptr);
    StatSet twice, once;
    fab->dumpStats(twice);
    fab->dumpStats(twice); // second dump must not double-count anything
    fab->dumpStats(once);
    EXPECT_EQ(twice.all(), once.all());
}
