/** @file Area / power / tuning / FPGA models: calibration against the
 *  paper's published numbers and structural properties. */

#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "fpga/fpga_model.hpp"
#include "model/area.hpp"
#include "model/asic.hpp"
#include "model/power.hpp"
#include "model/tuning.hpp"

using namespace plast;
using namespace plast::model;

TEST(AreaModel, CalibratedToTable5)
{
    AreaModel area;
    ArchParams p;
    auto b = area.chipBreakdown(p);
    EXPECT_NEAR(b.pcuEach, 0.849, 0.05);       // paper: 0.849 mm^2
    EXPECT_NEAR(b.pmuEach, 0.532, 0.03);       // paper: 0.532 mm^2
    EXPECT_NEAR(b.chip, 112.8, 5.0);           // paper: 112.8 mm^2
    EXPECT_NEAR(b.interconnect / b.chip, 0.167, 0.02);
    EXPECT_NEAR(b.memController / b.chip, 0.05, 0.01);
}

TEST(AreaModel, MonotoneInEveryParameter)
{
    AreaModel area;
    PcuParams base;
    double a0 = area.pcuArea(base);
    for (auto bump : {&PcuParams::stages, &PcuParams::regsPerStage,
                      &PcuParams::scalarIns, &PcuParams::vectorIns,
                      &PcuParams::vectorOuts}) {
        PcuParams p = base;
        p.*bump += 4;
        EXPECT_GT(area.pcuArea(p), a0);
    }
    PmuParams pm;
    double m0 = area.pmuArea(pm);
    pm.bankKilobytes *= 2;
    EXPECT_GT(area.pmuArea(pm), m0);
}

TEST(PowerModel, PeakNearPaperBudget)
{
    PowerModel power;
    EXPECT_NEAR(power.peak(ArchParams{}), 49.0, 8.0); // paper: 49 W
}

TEST(PowerModel, RuntimePowerWithinEnvelope)
{
    setVerbose(false);
    apps::AppInstance app = apps::makeGemm(apps::Scale::kTiny);
    Runner r(std::move(app.prog));
    app.load(r);
    Runner::Result res = r.run();
    PowerModel power;
    double w = power.estimate(res.stats, r.report(), ArchParams{});
    EXPECT_GT(w, 3.0);
    EXPECT_LT(w, 49.0);
}

TEST(Tuner, LooserParametersNeverBecomeInfeasible)
{
    auto benches = benchmarkLeaves();
    Tuner tuner(benches, AreaModel{});
    for (size_t bi = 0; bi < tuner.numBenches(); ++bi) {
        PcuParams tight; // final architecture
        PcuParams loose = tight;
        loose.stages = 16;
        loose.regsPerStage = 16;
        loose.scalarIns = 16;
        loose.scalarOuts = 6;
        loose.vectorIns = 10;
        loose.vectorOuts = 6;
        Tuner::Score st = tuner.evaluate(bi, tight);
        Tuner::Score sl = tuner.evaluate(bi, loose);
        EXPECT_TRUE(sl.feasible) << tuner.benchName(bi);
        if (st.feasible) {
            EXPECT_LE(sl.pcus, st.pcus)
                << "more resources cannot need more PCUs for "
                << tuner.benchName(bi);
        }
    }
}

TEST(Tuner, FinalArchitectureFeasibleForEveryBenchmark)
{
    auto benches = benchmarkLeaves();
    Tuner tuner(benches, AreaModel{});
    for (size_t bi = 0; bi < tuner.numBenches(); ++bi) {
        Tuner::Score s = tuner.evaluate(bi, PcuParams{});
        EXPECT_TRUE(s.feasible) << tuner.benchName(bi);
        EXPECT_GT(s.pcus, 0u);
    }
}

TEST(Tuner, SweepMarksTinyScalarInsInfeasibleSomewhere)
{
    // Figure 7c shows x marks at 1 scalar input for several apps.
    auto benches = benchmarkLeaves();
    Tuner tuner(benches, AreaModel{});
    int infeasible = 0;
    for (size_t bi = 0; bi < tuner.numBenches(); ++bi) {
        auto s = tuner.sweep(bi, Tuner::Axis::kScalarIns, {1},
                             PcuParams{}, {});
        infeasible += s[0] < 0;
    }
    EXPECT_GT(infeasible, 0);
}

TEST(Table6, GeneralityChainIsOrderedAndPlausible)
{
    setVerbose(false);
    apps::AppInstance app = apps::makeGemm(apps::Scale::kTiny);
    GeneralityRow row = estimateGenerality(
        "GEMM", app.prog, AreaModel{}, ArchParams::plasticineFinal());
    EXPECT_GT(row.asic, 0.0);
    EXPECT_GT(row.hetero, row.asic) << "reconfigurability costs area";
    EXPECT_GE(row.homoPmu, row.hetero * 0.999);
    EXPECT_GE(row.homoPcu, row.homoPmu * 0.999);
    EXPECT_GT(row.aRatio(), 1.5);
    EXPECT_LT(row.cumulative(), 50.0);
}

TEST(FpgaModel, StreamingAppsAreMemoryBound)
{
    setVerbose(false);
    apps::AppInstance ip = apps::makeInnerProduct(apps::Scale::kTiny, 2);
    fpga::FpgaEstimate e = fpga::estimateFpga(ip);
    EXPECT_FALSE(e.computeBound);
    // Bandwidth-limited time: bytes / (0.8 * 37.5 GB/s).
    EXPECT_NEAR(e.seconds, ip.dramBytes / (0.8 * 37.5e9),
                e.seconds * 0.01);
}

TEST(FpgaModel, SparseAppsPayRandomAccessPenalty)
{
    setVerbose(false);
    apps::AppInstance smdv = apps::makeSmdv(apps::Scale::kTiny);
    apps::AppInstance dense =
        apps::makeInnerProduct(apps::Scale::kTiny, 2);
    fpga::FpgaEstimate es = fpga::estimateFpga(smdv);
    fpga::FpgaEstimate ed = fpga::estimateFpga(dense);
    double bw_sparse = smdv.dramBytes / es.seconds;
    double bw_dense = dense.dramBytes / ed.seconds;
    EXPECT_LT(bw_sparse, bw_dense / 3.0);
}

TEST(FpgaModel, PowerTracksPublishedRange)
{
    setVerbose(false);
    for (const auto &spec : apps::allApps()) {
        apps::AppInstance app = spec.make(apps::Scale::kTiny);
        fpga::FpgaEstimate e = fpga::estimateFpga(app);
        EXPECT_GT(e.watts, 20.0) << spec.name;
        EXPECT_LT(e.watts, 36.0) << spec.name; // paper: 21.5 - 34.4 W
    }
}
