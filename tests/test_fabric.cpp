/** @file Fabric-level integration with hand-written configurations:
 *  channel wiring, host constants, argOut capture, control boxes
 *  driving token-gated units, and deadlock-free termination. */

#include <gtest/gtest.h>

#include "arch/disasm.hpp"
#include "sim/fabric.hpp"

using namespace plast;

namespace
{

/**
 * Minimal hand-mapped design: a root box runs a 3-iteration loop; per
 * iteration one PCU squares the exported loop index (a host constant
 * provides an offset) and sends it to argOut 0.
 *
 *   box0: for t in [0,3): export t; start pcu0
 *   pcu0: out = (t + C)^2, scalar out -> host
 */
FabricConfig
handDesign(Word offset)
{
    FabricConfig fab;
    fab.params = ArchParams::plasticineFinal();
    fab.pcus.resize(fab.params.numPcus());
    fab.pmus.resize(fab.params.numPmus());
    fab.ags.resize(fab.params.numAgs);
    fab.boxes.resize(fab.params.switchCols() * fab.params.switchRows());

    PcuCfg &pcu = fab.pcus[0];
    pcu.used = true;
    pcu.name = "square";
    // Empty chain: one wavefront per run.
    StageCfg add;
    add.op = FuOp::kIAdd;
    add.a = Operand::scalarIn(0); // exported t
    add.b = Operand::scalarIn(1); // host constant
    add.dstReg = 0;
    StageCfg mul;
    mul.op = FuOp::kIMul;
    mul.a = Operand::reg(0);
    mul.b = Operand::reg(0);
    mul.dstReg = 1;
    pcu.stages = {add, mul};
    pcu.scalOuts.resize(fab.params.pcu.scalarOuts);
    pcu.scalOuts[0].enabled = true;
    pcu.scalOuts[0].srcReg = 1;
    pcu.scalOuts[0].cond = EmitCond::lastAtLevel(0);
    pcu.vecOuts.resize(fab.params.pcu.vectorOuts);
    pcu.ctrl.tokenIns = {0};
    pcu.ctrl.doneOuts = {0};

    ControlBoxCfg &box = fab.boxes[0];
    box.used = true;
    box.name = "loop";
    box.scheme = CtrlScheme::kSequential;
    CounterCfg t;
    t.max = 3;
    box.chain.ctrs = {t};
    box.depth = 1;
    box.childStartOuts = {0};
    box.childDoneIns = {0};
    box.exports = {{0, 0}};
    fab.rootBox = 0;
    fab.hostArgOuts = 1;

    UnitRef pcuRef{UnitClass::kPcu, 0};
    UnitRef boxRef{UnitClass::kBox, 0};
    // start token, done token, export scalar, result scalar.
    fab.channels.push_back(
        {NetKind::kControl, {boxRef, 0}, {pcuRef, 0}, 3, 0, 16, 1});
    fab.channels.push_back(
        {NetKind::kControl, {pcuRef, 0}, {boxRef, 0}, 3, 0, 16, 1});
    fab.channels.push_back(
        {NetKind::kScalar, {boxRef, 0}, {pcuRef, 0}, 3, 0, 16, 1});
    fab.channels.push_back(
        {NetKind::kScalar, {pcuRef, 0}, {UnitRef{UnitClass::kHost, 0}, 0},
         3, 0, 16, 1});
    fab.constants.push_back({{pcuRef, 1}, offset});
    return fab;
}

} // namespace

TEST(Fabric, HandMappedLoopProducesAllIterations)
{
    Fabric fab(handDesign(intToWord(10)));
    Cycles done = fab.run(100000);
    EXPECT_GT(done, 0u);
    const auto &out = fab.argOut(0);
    ASSERT_EQ(out.size(), 3u); // one result per iteration
    EXPECT_EQ(wordToInt(out[0]), 100); // (0+10)^2
    EXPECT_EQ(wordToInt(out[1]), 121);
    EXPECT_EQ(wordToInt(out[2]), 144);
}

TEST(Fabric, HostConstantsAreSticky)
{
    // The constant is read on every run without being consumed.
    Fabric fab(handDesign(intToWord(2)));
    fab.run(100000);
    const auto &out = fab.argOut(0);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(wordToInt(out[2]), 16); // (2+2)^2
}

TEST(Fabric, StatsReportRunsAndCycles)
{
    Fabric fab(handDesign(0));
    fab.run(100000);
    StatSet stats;
    fab.dumpStats(stats);
    EXPECT_EQ(stats.get("pcu00.runs"), 3u);
    EXPECT_GT(stats.get("cycles"), 0u);
}

TEST(FabricDeath, DeadlockIsDiagnosedNotHung)
{
    // The PCU waits for a token that never arrives (no channel).
    FabricConfig fab = handDesign(0);
    fab.channels.erase(fab.channels.begin()); // drop the start token
    EXPECT_EXIT(
        {
            Fabric f(fab);
            f.run(10'000'000);
        },
        ::testing::ExitedWithCode(1), "deadlock");
}

TEST(Disasm, RendersEveryConfiguredStructure)
{
    FabricConfig fab = handDesign(intToWord(5));
    std::string text = disasmFabric(fab);
    EXPECT_NE(text.find("square"), std::string::npos);
    EXPECT_NE(text.find("imul"), std::string::npos);
    EXPECT_NE(text.find("loop"), std::string::npos);
    EXPECT_NE(text.find("sequential"), std::string::npos);
    EXPECT_NE(text.find("export"), std::string::npos);
    EXPECT_NE(text.find("channels:"), std::string::npos);
    EXPECT_NE(text.find("scalar: box0.0 -> pcu0.0"), std::string::npos);
}

TEST(Disasm, MappedBenchmarkMentionsEveryUsedUnit)
{
    setVerbose(false);
    // Use the hand design (fast) plus spot-check name presence.
    FabricConfig fab = handDesign(0);
    std::string text = disasmFabric(fab);
    // Exactly one PCU and one box section.
    EXPECT_EQ(text.find("pcu0"), text.rfind("pcu0  "));
    EXPECT_NE(text.find("box0"), std::string::npos);
}
