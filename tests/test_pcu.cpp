/** @file PCU pipeline: SIMD stages, reduction tree, accumulators,
 *  FlatMap coalescing, token gating, and backpressure stalls. */

#include <gtest/gtest.h>

#include <memory>

#include "sim/pcu.hpp"

using namespace plast;

namespace
{

struct PcuHarness
{
    ArchParams params;
    std::unique_ptr<PcuSim> pcu;
    std::vector<std::unique_ptr<VectorStream>> vecOuts, vecIns;
    std::vector<std::unique_ptr<ScalarStream>> scalOuts;
    std::unique_ptr<ControlStream> token, done;
    Cycles now = 0;

    explicit PcuHarness(PcuCfg cfg, uint32_t outCapacity = 64,
                        SimMode simMode = SimMode::kInterp)
    {
        cfg.used = true;
        cfg.vecOuts.resize(params.pcu.vectorOuts);
        cfg.scalOuts.resize(params.pcu.scalarOuts);
        pcu = std::make_unique<PcuSim>(params, 0, cfg, simMode);
        (void)outCapacity;
    }

    VectorStream *
    bindVecOut(int port, uint32_t capacity = 64)
    {
        vecOuts.push_back(
            std::make_unique<VectorStream>("vo", 1, capacity));
        pcu->ports.vecOut[port].sinks.push_back(vecOuts.back().get());
        return vecOuts.back().get();
    }

    VectorStream *
    bindVecIn(int port)
    {
        vecIns.push_back(std::make_unique<VectorStream>("vi", 1, 64));
        pcu->ports.vecIn[port].stream = vecIns.back().get();
        return vecIns.back().get();
    }

    ScalarStream *
    bindScalOut(int port)
    {
        scalOuts.push_back(std::make_unique<ScalarStream>("so", 1, 64));
        pcu->ports.scalOut[port].sinks.push_back(scalOuts.back().get());
        return scalOuts.back().get();
    }

    void
    step(int cycles = 1)
    {
        for (int i = 0; i < cycles; ++i) {
            pcu->evaluate(now);
            for (auto &s : vecOuts)
                s->tick(now);
            for (auto &s : vecIns)
                s->tick(now);
            for (auto &s : scalOuts)
                s->tick(now);
            if (token)
                token->tick(now);
            if (done)
                done->tick(now);
            ++now;
        }
    }
};

/** cfg: one vectorized counter 0..n, one map stage on the counter. */
PcuCfg
mapSquareCfg(int64_t n)
{
    PcuCfg cfg;
    CounterCfg cc;
    cc.max = n;
    cc.vectorized = true;
    cfg.chain.ctrs = {cc};
    StageCfg st;
    st.op = FuOp::kIMul;
    st.a = Operand::ctr(0);
    st.b = Operand::ctr(0);
    st.dstReg = 0;
    cfg.stages = {st};
    return cfg;
}

} // namespace

TEST(Pcu, MapEmitsOneVectorPerWavefront)
{
    PcuCfg cfg = mapSquareCfg(40);
    cfg.vecOuts.resize(3);
    cfg.vecOuts[0].enabled = true;
    cfg.vecOuts[0].srcReg = 0;
    cfg.vecOuts[0].cond = EmitCond::everyWavefront();
    PcuHarness h(cfg);
    VectorStream *out = h.bindVecOut(0);

    std::vector<Word> got;
    for (int c = 0; c < 200 && got.size() < 40; ++c) {
        h.step();
        while (out->canPop()) {
            const Vec &v = out->front();
            for (uint32_t l = 0; l < 16; ++l) {
                if (v.valid(l))
                    got.push_back(v.lane[l]);
            }
            out->pop();
        }
    }
    ASSERT_EQ(got.size(), 40u);
    for (uint32_t i = 0; i < 40; ++i)
        EXPECT_EQ(got[i], i * i);
    EXPECT_EQ(h.pcu->stats().wavefronts, 3u); // ceil(40/16)
    EXPECT_EQ(h.pcu->stats().runs, 1u);
}

TEST(Pcu, ReduceTreePlusAccumulatorComputesSum)
{
    // fold over i<100 of i -> 4950, emitted once at chain end.
    PcuCfg cfg;
    CounterCfg cc;
    cc.max = 100;
    cc.vectorized = true;
    cfg.chain.ctrs = {cc};
    StageCfg move;
    move.op = FuOp::kNop;
    move.a = Operand::ctr(0);
    move.dstReg = 0;
    cfg.stages = {move};
    for (uint32_t dist = 1; dist < 16; dist *= 2) {
        StageCfg red;
        red.kind = StageKind::kReduceStep;
        red.op = FuOp::kIAdd;
        red.a = Operand::reg(0);
        red.dstReg = 0;
        red.reduceDist = static_cast<uint8_t>(dist);
        cfg.stages.push_back(red);
    }
    StageCfg acc;
    acc.kind = StageKind::kAccum;
    acc.op = FuOp::kIAdd;
    acc.a = Operand::reg(0);
    acc.dstReg = 1;
    acc.accLevel = 0;
    cfg.stages.push_back(acc);
    ASSERT_EQ(cfg.stages.size(), 6u); // exactly the paper's PCU depth
    cfg.scalOuts.resize(5);
    cfg.scalOuts[0].enabled = true;
    cfg.scalOuts[0].srcReg = 1;
    cfg.scalOuts[0].cond = EmitCond::lastAtLevel(0);

    PcuHarness h(cfg);
    ScalarStream *out = h.bindScalOut(0);
    h.step(100);
    ASSERT_TRUE(out->canPop());
    EXPECT_EQ(wordToInt(out->front()), 4950);
    out->pop();
    EXPECT_FALSE(out->canPop()) << "fold must emit exactly once";
}

TEST(Pcu, MaskedTailLanesDoNotContribute)
{
    // Sum over 17 elements: the second wavefront has one valid lane.
    PcuCfg cfg;
    CounterCfg cc;
    cc.max = 17;
    cc.vectorized = true;
    cfg.chain.ctrs = {cc};
    StageCfg one;
    one.op = FuOp::kNop;
    one.a = Operand::immInt(1);
    one.dstReg = 0;
    cfg.stages = {one};
    for (uint32_t dist = 1; dist < 16; dist *= 2) {
        StageCfg red;
        red.kind = StageKind::kReduceStep;
        red.op = FuOp::kIAdd;
        red.a = Operand::reg(0);
        red.dstReg = 0;
        red.reduceDist = static_cast<uint8_t>(dist);
        cfg.stages.push_back(red);
    }
    StageCfg acc;
    acc.kind = StageKind::kAccum;
    acc.op = FuOp::kIAdd;
    acc.a = Operand::reg(0);
    acc.dstReg = 1;
    cfg.stages.push_back(acc);
    cfg.scalOuts.resize(5);
    cfg.scalOuts[0].enabled = true;
    cfg.scalOuts[0].srcReg = 1;
    cfg.scalOuts[0].cond = EmitCond::lastAtLevel(0);

    PcuHarness h(cfg);
    ScalarStream *out = h.bindScalOut(0);
    h.step(100);
    ASSERT_TRUE(out->canPop());
    EXPECT_EQ(wordToInt(out->front()), 17);
}

TEST(Pcu, FlatMapCoalescesValidWordsAndCounts)
{
    // Keep multiples of 3 among 0..47 -> 16 values (exactly one vector).
    PcuCfg cfg;
    CounterCfg cc;
    cc.max = 48;
    cc.vectorized = true;
    cfg.chain.ctrs = {cc};
    StageCfg pred;
    pred.op = FuOp::kIEq;
    pred.a = Operand::none();
    pred.kind = StageKind::kMap;
    // pred = (i % 3 == 0)
    StageCfg mod;
    mod.op = FuOp::kIMod;
    mod.a = Operand::ctr(0);
    mod.b = Operand::immInt(3);
    mod.dstReg = 0;
    StageCfg eq;
    eq.op = FuOp::kIEq;
    eq.a = Operand::reg(0);
    eq.b = Operand::immInt(0);
    eq.dstReg = 1;
    StageCfg mask;
    mask.op = FuOp::kNop;
    mask.a = Operand::reg(1);
    mask.dstReg = 2;
    mask.setsMask = true;
    StageCfg val;
    val.op = FuOp::kNop;
    val.a = Operand::ctr(0);
    val.dstReg = 3;
    cfg.stages = {mod, eq, mask, val};
    cfg.vecOuts.resize(3);
    cfg.vecOuts[0].enabled = true;
    cfg.vecOuts[0].srcReg = 3;
    cfg.vecOuts[0].cond = EmitCond::everyWavefront();
    cfg.vecOuts[0].coalesce = true;
    cfg.scalOuts.resize(5);
    cfg.scalOuts[0].enabled = true;
    cfg.scalOuts[0].countOfVecOut = 0;

    PcuHarness h(cfg);
    VectorStream *out = h.bindVecOut(0);
    ScalarStream *cnt = h.bindScalOut(0);
    h.step(100);

    std::vector<Word> got;
    while (out->canPop()) {
        const Vec &v = out->front();
        for (uint32_t l = 0; l < 16; ++l) {
            if (v.valid(l))
                got.push_back(v.lane[l]);
        }
        out->pop();
    }
    ASSERT_EQ(got.size(), 16u);
    for (uint32_t i = 0; i < 16; ++i)
        EXPECT_EQ(got[i], i * 3);
    ASSERT_TRUE(cnt->canPop());
    EXPECT_EQ(cnt->front(), 16u);
}

TEST(Pcu, TokenGatingRunsExactlyOncePerToken)
{
    PcuCfg cfg = mapSquareCfg(16);
    cfg.ctrl.tokenIns = {0};
    cfg.ctrl.doneOuts = {0};
    PcuHarness h(cfg);
    h.token = std::make_unique<ControlStream>("tok", 1, 8);
    h.done = std::make_unique<ControlStream>("done", 1, 8);
    h.pcu->ports.ctlIn[0].stream = h.token.get();
    h.pcu->ports.ctlOut[0].sinks.push_back(h.done.get());

    h.step(20);
    EXPECT_EQ(h.pcu->stats().runs, 0u) << "must not self-start";
    h.token->preload(Token{});
    h.token->preload(Token{});
    h.step(60);
    EXPECT_EQ(h.pcu->stats().runs, 2u);
    EXPECT_EQ(h.done->available(), 2u);
}

TEST(Pcu, StallsWhenOutputBlocked)
{
    PcuCfg cfg = mapSquareCfg(160);
    cfg.vecOuts.resize(3);
    cfg.vecOuts[0].enabled = true;
    cfg.vecOuts[0].srcReg = 0;
    cfg.vecOuts[0].cond = EmitCond::everyWavefront();
    PcuHarness h(cfg);
    VectorStream *out = h.bindVecOut(0, /*capacity=*/2);
    h.step(50); // no one pops
    EXPECT_GT(h.pcu->acct().blocked(CycleClass::kOutputBackpressure), 10u);
    // Drain and confirm everything still arrives in order.
    std::vector<Word> got;
    for (int c = 0; c < 400 && got.size() < 160; ++c) {
        while (out->canPop()) {
            const Vec &v = out->front();
            for (uint32_t l = 0; l < 16; ++l) {
                if (v.valid(l))
                    got.push_back(v.lane[l]);
            }
            out->pop();
        }
        h.step();
    }
    ASSERT_EQ(got.size(), 160u);
    for (uint32_t i = 0; i < 160; ++i)
        EXPECT_EQ(got[i], i * i);
}

TEST(Pcu, VectorInputConsumedPerWavefront)
{
    // out = in * 2 over 32 elements (2 vectors).
    PcuCfg cfg;
    CounterCfg cc;
    cc.max = 32;
    cc.vectorized = true;
    cfg.chain.ctrs = {cc};
    StageCfg st;
    st.op = FuOp::kIAdd;
    st.a = Operand::vectorIn(0);
    st.b = Operand::vectorIn(0);
    st.dstReg = 0;
    cfg.stages = {st};
    cfg.vecOuts.resize(3);
    cfg.vecOuts[0].enabled = true;
    cfg.vecOuts[0].srcReg = 0;
    cfg.vecOuts[0].cond = EmitCond::everyWavefront();
    PcuHarness h(cfg);
    VectorStream *in = h.bindVecIn(0);
    VectorStream *out = h.bindVecOut(0);

    h.step(10);
    EXPECT_GT(h.pcu->acct().blocked(CycleClass::kInputStarved), 0u)
        << "waits for data";
    for (int i = 0; i < 2; ++i) {
        Vec v;
        for (uint32_t l = 0; l < 16; ++l) {
            v.lane[l] = i * 16 + l;
            v.setValid(l);
        }
        in->push(v);
        h.step(2);
    }
    h.step(30);
    std::vector<Word> got;
    while (out->canPop()) {
        const Vec &v = out->front();
        for (uint32_t l = 0; l < 16; ++l)
            got.push_back(v.lane[l]);
        out->pop();
    }
    ASSERT_EQ(got.size(), 32u);
    for (uint32_t i = 0; i < 32; ++i)
        EXPECT_EQ(got[i], 2 * i);
}

namespace
{

/** Full reduce tree + accumulator summing i over i < n, emitted once. */
PcuCfg
reduceSumCfg(int64_t n)
{
    PcuCfg cfg;
    CounterCfg cc;
    cc.max = n;
    cc.vectorized = true;
    cfg.chain.ctrs = {cc};
    StageCfg move;
    move.op = FuOp::kNop;
    move.a = Operand::ctr(0);
    move.dstReg = 0;
    cfg.stages = {move};
    for (uint32_t dist = 1; dist < 16; dist *= 2) {
        StageCfg red;
        red.kind = StageKind::kReduceStep;
        red.op = FuOp::kIAdd;
        red.a = Operand::reg(0);
        red.dstReg = 0;
        red.reduceDist = static_cast<uint8_t>(dist);
        cfg.stages.push_back(red);
    }
    StageCfg acc;
    acc.kind = StageKind::kAccum;
    acc.op = FuOp::kIAdd;
    acc.a = Operand::reg(0);
    acc.dstReg = 1;
    acc.accLevel = 0;
    cfg.stages.push_back(acc);
    cfg.scalOuts.resize(5);
    cfg.scalOuts[0].enabled = true;
    cfg.scalOuts[0].srcReg = 1;
    cfg.scalOuts[0].cond = EmitCond::lastAtLevel(0);
    return cfg;
}

} // namespace

/** Cross-lane reduce trees at non-power-of-two active lane counts, in
 *  both datapath engines: tail wavefronts with 1..15 valid lanes must
 *  not pull stale or pool-recycled junk into the tree. */
class ReduceTails
    : public ::testing::TestWithParam<std::tuple<SimMode, int64_t>>
{
};

TEST_P(ReduceTails, PartialWavefrontSumsExactly)
{
    auto [simMode, n] = GetParam();
    PcuHarness h(reduceSumCfg(n), 64, simMode);
    ScalarStream *out = h.bindScalOut(0);
    h.step(static_cast<int>(n) + 50);
    ASSERT_TRUE(out->canPop());
    EXPECT_EQ(wordToInt(out->front()), n * (n - 1) / 2);
    out->pop();
    EXPECT_FALSE(out->canPop()) << "fold must emit exactly once";
}

INSTANTIATE_TEST_SUITE_P(
    BothEngines, ReduceTails,
    ::testing::Combine(::testing::Values(SimMode::kInterp,
                                         SimMode::kSpecialized),
                       ::testing::Values<int64_t>(1, 3, 7, 15, 17, 23,
                                                  31, 33, 100)),
    [](const ::testing::TestParamInfo<std::tuple<SimMode, int64_t>>
           &info) {
        return std::string(simModeName(std::get<0>(info.param))) + "_" +
               std::to_string(std::get<1>(info.param));
    });
