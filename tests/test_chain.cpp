/** @file Counter-chain runtime: trips, vectorized masking, and the
 *  first/last boundary flags — verified against naive enumeration. */

#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "sim/wavefront.hpp"

using namespace plast;

namespace
{

ChainCfg
chain3(int64_t a, int64_t b, int64_t c, bool vec)
{
    ChainCfg cfg;
    cfg.ctrs.push_back({0, 1, a, false, -1, 1});
    cfg.ctrs.push_back({0, 1, b, false, -1, 1});
    cfg.ctrs.push_back({0, 1, c, vec, -1, 1});
    return cfg;
}

} // namespace

TEST(Chain, ScalarTripCount)
{
    ChainState cs;
    cs.configure(chain3(2, 3, 4, false), 16);
    cs.reset({2, 3, 4});
    int n = 0;
    while (!cs.done()) {
        Wavefront wf;
        cs.issueInto(wf);
        ++n;
    }
    EXPECT_EQ(n, 2 * 3 * 4);
}

TEST(Chain, VectorizedTripCountRoundsUp)
{
    ChainState cs;
    ChainCfg cfg;
    cfg.ctrs.push_back({0, 1, 37, true, -1, 1});
    cs.configure(cfg, 16);
    cs.reset({37});
    int n = 0;
    uint32_t last_mask = 0;
    while (!cs.done()) {
        Wavefront wf;
        cs.issueInto(wf);
        last_mask = wf.mask;
        ++n;
    }
    EXPECT_EQ(n, 3); // ceil(37/16)
    EXPECT_EQ(__builtin_popcount(last_mask), 37 - 32);
}

TEST(Chain, VectorizedLaneValues)
{
    ChainState cs;
    ChainCfg cfg;
    cfg.ctrs.push_back({0, 1, 20, true, -1, 1});
    cs.configure(cfg, 16);
    cs.reset({20});
    Wavefront wf;
    cs.issueInto(wf);
    for (uint32_t l = 0; l < 16; ++l)
        EXPECT_EQ(wf.ctrLane(0, l), static_cast<int64_t>(l));
    cs.issueInto(wf);
    EXPECT_EQ(wf.ctrLane(0, 0), 16);
    EXPECT_EQ(wf.ctrLane(0, 3), 19);
    EXPECT_FALSE(wf.valid(4)); // 20..35 masked beyond bound
}

TEST(Chain, FirstLastFlagsExactOnce)
{
    ChainState cs;
    cs.configure(chain3(2, 3, 2, false), 16);
    cs.reset({2, 3, 2});
    int firsts0 = 0, lasts0 = 0, firsts1 = 0, lasts1 = 0;
    while (!cs.done()) {
        Wavefront wf;
        cs.issueInto(wf);
        firsts0 += wf.firstAtLevel(0);
        lasts0 += wf.lastAtLevel(0);
        firsts1 += wf.firstAtLevel(1);
        lasts1 += wf.lastAtLevel(1);
    }
    EXPECT_EQ(firsts0, 1); // whole chain starts once
    EXPECT_EQ(lasts0, 1);  // ends once
    EXPECT_EQ(firsts1, 2); // once per outer iteration
    EXPECT_EQ(lasts1, 2);
}

TEST(Chain, ZeroTripIsDoneImmediately)
{
    ChainState cs;
    ChainCfg cfg;
    cfg.ctrs.push_back({0, 1, 0, true, -1, 1});
    cs.configure(cfg, 16);
    cs.reset({0});
    EXPECT_TRUE(cs.done());
}

TEST(Chain, EmptyChainIssuesExactlyOnce)
{
    ChainState cs;
    cs.configure(ChainCfg{}, 16);
    cs.reset({});
    EXPECT_FALSE(cs.done());
    Wavefront wf;
    cs.issueInto(wf);
    EXPECT_TRUE(cs.done());
    EXPECT_TRUE(wf.firstAtLevel(0));
    EXPECT_TRUE(wf.lastAtLevel(0));
    EXPECT_EQ(wf.mask, 1u);
}

TEST(Chain, NonUnitStep)
{
    ChainState cs;
    ChainCfg cfg;
    cfg.ctrs.push_back({4, 3, 20, false, -1, 1}); // 4,7,10,13,16,19
    cs.configure(cfg, 16);
    cs.reset({20});
    std::vector<int64_t> seen;
    while (!cs.done()) {
        Wavefront wf;
        cs.issueInto(wf);
        seen.push_back(wf.ctr[0]);
    }
    EXPECT_EQ(seen, (std::vector<int64_t>{4, 7, 10, 13, 16, 19}));
}

/** Property: wavefront count and per-level boundary flags agree with
 *  direct enumeration for random chains. */
class RandomChains : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomChains, MatchesNaiveEnumeration)
{
    Rng rng(GetParam());
    ChainCfg cfg;
    size_t depth = 1 + rng.nextBounded(3);
    std::vector<int64_t> bounds;
    int64_t expect = 1;
    for (size_t i = 0; i < depth; ++i) {
        int64_t max = 1 + static_cast<int64_t>(rng.nextBounded(9));
        bool vec = (i == depth - 1) && (rng.nextBounded(2) == 0);
        cfg.ctrs.push_back({0, 1, max, vec, -1, 1});
        bounds.push_back(max);
        expect *= vec ? (max + 15) / 16 : max;
    }
    ChainState cs;
    cs.configure(cfg, 16);
    cs.reset(bounds);
    int64_t n = 0;
    int innermost_firsts = 0;
    while (!cs.done()) {
        Wavefront wf;
        cs.issueInto(wf);
        ++n;
        innermost_firsts +=
            wf.firstAtLevel(static_cast<uint8_t>(depth - 1));
        ASSERT_LT(n, 10000);
    }
    EXPECT_EQ(n, expect);
    // The innermost level restarts once per enclosing iteration.
    int64_t outer = 1;
    for (size_t i = 0; i + 1 < depth; ++i)
        outer *= bounds[i];
    EXPECT_EQ(innermost_firsts, outer);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChains,
                         ::testing::Range<uint64_t>(1, 25));

TEST(Chain, BoundScaleMultipliesDynamicBound)
{
    // resolveBounds path is exercised in unitcommon; here check the
    // CounterCfg::trips helper used by sizing code.
    CounterCfg cc;
    cc.vectorized = true;
    EXPECT_EQ(cc.trips(32, 16), 2);
    EXPECT_EQ(cc.trips(33, 16), 3);
    cc.vectorized = false;
    cc.step = 4;
    EXPECT_EQ(cc.trips(16, 16), 4);
    EXPECT_EQ(cc.trips(0, 16), 0);
}
