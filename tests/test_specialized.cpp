/** @file Specialized datapath engine (sim/execplan.hpp): bit-exact
 *  parity against the interpreter on every benchmark — completion
 *  cycle, argOut streams, DRAM images and architectural counters —
 *  plus plan-construction invariants (dead-port elision, kernel
 *  coverage) and the interaction with the dense scheduler. */

#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "sim/execplan.hpp"
#include "sim/fabric.hpp"

using namespace plast;

namespace
{

SimOptions
withEngine(SimMode simMode,
           SimOptions::Mode mode = SimOptions::Mode::kActivity)
{
    SimOptions o;
    o.mode = mode;
    o.simMode = simMode;
    return o;
}

struct ModeResult
{
    Cycles cycles = 0;
    std::vector<std::deque<Word>> argOuts;
    std::vector<std::vector<Word>> dramBufs;
    StatSet stats;
    uint64_t laneOps = 0;
};

ModeResult
runApp(const apps::AppSpec &spec, SimOptions opts)
{
    setVerbose(false);
    apps::AppInstance app = spec.make(apps::Scale::kTiny);
    Runner r(std::move(app.prog), ArchParams::plasticineFinal(), opts);
    app.load(r);
    Runner::Result res = r.run();

    ModeResult out;
    out.cycles = res.cycles;
    out.argOuts = res.argOuts;
    out.stats = res.stats;
    out.laneOps = r.fabric()->totalLaneOps();
    for (size_t m = 0; m < r.program().mems.size(); ++m) {
        if (r.program().mems[m].kind == pir::MemKind::kDram)
            out.dramBufs.push_back(
                r.readDram(static_cast<pir::MemId>(m)));
    }
    return out;
}

void
expectBitExact(const ModeResult &interp, const ModeResult &spec)
{
    EXPECT_EQ(interp.cycles, spec.cycles) << "completion cycle";
    EXPECT_EQ(interp.stats.get("cycles"), spec.stats.get("cycles"))
        << "post-drain cycle count";
    EXPECT_EQ(interp.laneOps, spec.laneOps) << "FU lane-op count";

    ASSERT_EQ(interp.argOuts.size(), spec.argOuts.size());
    for (size_t s = 0; s < interp.argOuts.size(); ++s)
        EXPECT_EQ(interp.argOuts[s], spec.argOuts[s])
            << "argOut slot " << s;

    ASSERT_EQ(interp.dramBufs.size(), spec.dramBufs.size());
    for (size_t m = 0; m < interp.dramBufs.size(); ++m)
        EXPECT_EQ(interp.dramBufs[m], spec.dramBufs[m])
            << "DRAM buffer " << m;

    // Every architectural activity counter must agree: specialization
    // may only change host wall-clock, never the simulated machine.
    // Per-unit host accounting (".cycles." stepped/asleep split) is
    // excluded: it is scheduler-dependent, not engine-dependent, and
    // this helper also serves the cross-scheduler combination.
    for (const auto &[name, value] : interp.stats.all()) {
        bool unitWork = (name.rfind("pcu", 0) == 0 ||
                         name.rfind("pmu", 0) == 0 ||
                         name.rfind("ag", 0) == 0 ||
                         name.rfind("box", 0) == 0) &&
                        name.find(".cycles.") == std::string::npos;
        if (name.rfind("stream.", 0) == 0 || name.rfind("net.", 0) == 0 ||
            name.rfind("mem.", 0) == 0 || name.rfind("dram", 0) == 0 ||
            unitWork) {
            EXPECT_EQ(value, spec.stats.get(name)) << name;
        }
    }
}

} // namespace

/** Interp and specialized engines must be indistinguishable at the
 *  architectural level on every benchmark. */
class SpecializedParity : public ::testing::TestWithParam<std::string>
{
  protected:
    const apps::AppSpec &
    spec() const
    {
        for (const auto &s : apps::allApps()) {
            if (s.name == GetParam())
                return s;
        }
        ADD_FAILURE() << "unknown benchmark";
        return apps::allApps().front();
    }
};

TEST_P(SpecializedParity, MatchesInterpBitExactly)
{
    ModeResult interp = runApp(spec(), withEngine(SimMode::kInterp));
    ModeResult specd = runApp(spec(), withEngine(SimMode::kSpecialized));
    expectBitExact(interp, specd);
}

/** The engine axis is orthogonal to the scheduler axis: specialized
 *  under the dense scheduler matches interp under activity. */
TEST_P(SpecializedParity, DenseSpecializedMatchesActivityInterp)
{
    ModeResult interp = runApp(spec(), withEngine(SimMode::kInterp));
    ModeResult specd = runApp(
        spec(),
        withEngine(SimMode::kSpecialized, SimOptions::Mode::kDense));
    expectBitExact(interp, specd);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, SpecializedParity,
    ::testing::Values("InnerProduct", "OuterProduct", "Black-Scholes",
                      "TPC-H Query 6", "GEMM", "GDA", "LogReg", "SGD",
                      "Kmeans", "CNN", "SMDV", "PageRank", "BFS"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string n = info.param;
        for (char &c : n) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return n;
    });

/** The specialized fabric still validates bit-exactly against the
 *  golden reference evaluator end to end. */
TEST(Specialized, ValidatedAgainstReference)
{
    setVerbose(false);
    apps::AppInstance app = apps::makeInnerProduct(apps::Scale::kTiny);
    Runner r(std::move(app.prog), ArchParams::plasticineFinal(),
             withEngine(SimMode::kSpecialized));
    app.load(r);
    Runner::Result res = r.runValidated();
    EXPECT_GT(res.cycles, 0u);
}

/** Runner::setSimMode selects the engine before the fabric exists. */
TEST(Specialized, RunnerSetSimMode)
{
    setVerbose(false);
    apps::AppInstance app = apps::makeInnerProduct(apps::Scale::kTiny);

    apps::AppInstance ref = apps::makeInnerProduct(apps::Scale::kTiny);
    Runner rref(std::move(ref.prog));
    ref.load(rref);
    Cycles want = rref.run().cycles;

    Runner r(std::move(app.prog));
    r.setSimMode(SimMode::kSpecialized);
    app.load(r);
    EXPECT_EQ(r.run().cycles, want);
}

// --------------------------------------------------------------------
// Plan-construction invariants
// --------------------------------------------------------------------

namespace
{

PcuCfg
twoStageCfg()
{
    const ArchParams params = ArchParams::plasticineFinal();
    PcuCfg cfg;
    cfg.used = true;
    cfg.name = "planned";
    StageCfg mul;
    mul.kind = StageKind::kMap;
    mul.op = FuOp::kFMul;
    mul.a = Operand::vectorIn(0);
    mul.b = Operand::vectorIn(1);
    mul.dstReg = 2;
    StageCfg red;
    red.kind = StageKind::kReduceStep;
    red.op = FuOp::kFAdd;
    red.a = Operand::reg(2);
    red.dstReg = 2;
    red.reduceDist = 1;
    cfg.stages = {mul, red};
    cfg.vecOuts.resize(params.pcu.vectorOuts);
    cfg.scalOuts.resize(params.pcu.scalarOuts);
    cfg.scalOuts[0].enabled = true;
    cfg.scalOuts[0].srcReg = 2;
    return cfg;
}

} // namespace

TEST(ExecPlan, ResolvesStagesAndElidesDeadPorts)
{
    PcuExecPlan plan = buildPcuPlan(twoStageCfg());

    ASSERT_EQ(plan.stages.size(), 2u);
    EXPECT_EQ(plan.stages[0].kind, StageKind::kMap);
    EXPECT_NE(plan.stages[0].kernel, nullptr)
        << "kFMul gets a monomorphic kernel";
    EXPECT_EQ(plan.stages[0].arity, 2u);
    EXPECT_EQ(plan.stages[1].kind, StageKind::kReduceStep);
    EXPECT_EQ(plan.stages[1].identity, floatToWord(0.0f))
        << "kFAdd reduction identity";

    // Only reg 2 is ever touched -> pool recycling zeroes one register.
    EXPECT_EQ(plan.touchedRegs, 1u << 2);

    // One live scalar out, zero live vector outs, no coalescing: the
    // retire loops skip every disabled port without testing it.
    EXPECT_TRUE(plan.liveVecOuts.empty());
    ASSERT_EQ(plan.liveScalOuts.size(), 1u);
    EXPECT_EQ(plan.liveScalOuts[0], 0u);
    EXPECT_TRUE(plan.countScalOuts.empty());
    EXPECT_FALSE(plan.anyCoalesce);
}

TEST(ExecPlan, TranscendentalsFallBackToGenericExec)
{
    // Plans never inline libm-backed ops; those stages run through the
    // dynamic dispatcher so every engine shares one libm call site.
    EXPECT_EQ(mapKernelFor(FuOp::kFExp), nullptr);
    EXPECT_EQ(mapKernelFor(FuOp::kFLog), nullptr);
    EXPECT_EQ(mapKernelFor(FuOp::kFSqrt), nullptr);
    EXPECT_EQ(mapKernelFor(FuOp::kFRecip), nullptr);
    // Everything else is monomorphic.
    EXPECT_NE(mapKernelFor(FuOp::kIAdd), nullptr);
    EXPECT_NE(mapKernelFor(FuOp::kFMA), nullptr);
    EXPECT_NE(mapKernelFor(FuOp::kMux), nullptr);
}
