/** @file End-to-end: every Table 4 benchmark compiles, runs on the
 *  cycle simulator, and produces results bit-identical to the
 *  reference evaluator — plus scaling/parallelization invariants. */

#include <gtest/gtest.h>

#include "apps/apps.hpp"

using namespace plast;

namespace
{

Runner::Result
runValidated(apps::AppInstance app)
{
    setVerbose(false);
    Runner r(std::move(app.prog));
    app.load(r);
    return r.runValidated();
}

} // namespace

class EndToEnd : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EndToEnd, FabricMatchesReferenceBitExactly)
{
    for (const auto &spec : apps::allApps()) {
        if (spec.name != GetParam())
            continue;
        Runner::Result res = runValidated(spec.make(apps::Scale::kTiny));
        EXPECT_GT(res.cycles, 0u);
        return;
    }
    FAIL() << "unknown benchmark";
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, EndToEnd,
    ::testing::Values("InnerProduct", "OuterProduct", "Black-Scholes",
                      "TPC-H Query 6", "GEMM", "GDA", "LogReg", "SGD",
                      "Kmeans", "CNN", "SMDV", "PageRank", "BFS"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string n = info.param;
        for (char &c : n) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return n;
    });

/** Parallelizing a fold must not change its (tree-ordered) result of
 *  each partial, and the combined result is the same combine tree —
 *  verified against the evaluator at every factor. */
class InnerProductPar : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(InnerProductPar, ValidatesAtEveryUnrollFactor)
{
    Runner::Result res =
        runValidated(apps::makeInnerProduct(apps::Scale::kTiny,
                                            GetParam()));
    EXPECT_GT(res.cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(Factors, InnerProductPar,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(EndToEndExtra, MoreParallelismIsNotSlower)
{
    setVerbose(false);
    auto run = [](uint32_t par) {
        apps::AppInstance app =
            apps::makeTpchQ6(apps::Scale::kTiny, par);
        Runner r(std::move(app.prog));
        app.load(r);
        return r.run().cycles;
    };
    Cycles c1 = run(1), c4 = run(4);
    // At tiny scale, startup overheads allow a small regression.
    EXPECT_LE(c4, c1 + c1 / 3)
        << "unrolling a bandwidth-bound filter must not hurt";
}

TEST(EndToEndExtra, StreamingHitsMostOfPeakBandwidth)
{
    setVerbose(false);
    apps::AppInstance app =
        apps::makeInnerProduct(apps::Scale::kTiny, 4);
    double bytes = app.dramBytes;
    Runner r(std::move(app.prog));
    app.load(r);
    Runner::Result res = r.run();
    double peak = ArchParams{}.dram.peakBytesPerCycle();
    double achieved = bytes / static_cast<double>(res.cycles);
    EXPECT_GT(achieved, 0.5 * peak)
        << "streaming fold should be memory-bound near peak";
}

TEST(EndToEndExtra, SparseCoalescingObserved)
{
    setVerbose(false);
    apps::AppInstance app = apps::makeSmdv(apps::Scale::kTiny);
    Runner r(std::move(app.prog));
    app.load(r);
    Runner::Result res = r.run();
    EXPECT_GT(res.stats.get("mem.coalescedLanes"), 0u)
        << "the coalescing cache should merge same-line gather lanes";
}

TEST(EndToEndExtra, BfsVisitsExactlyTheReachableLayers)
{
    setVerbose(false);
    apps::AppInstance app = apps::makeBfs(apps::Scale::kTiny);
    Runner r(std::move(app.prog));
    app.load(r);
    r.runValidated();
    // Distances: layer l nodes reachable from node 0 get value l.
    std::vector<Word> dist = r.readDram(1); // "dist" is MemId 1
    EXPECT_EQ(wordToInt(dist[0]), 0);
    int visited = 0, unvisited = 0;
    for (Word w : dist)
        (wordToInt(w) >= 0 ? visited : unvisited)++;
    EXPECT_GT(visited, 1) << "the traversal must expand";
}

TEST(EndToEndExtra, GemmAgainstNaiveMatmul)
{
    // Independent check that the whole stack computes a real matmul
    // (not merely agreeing with the evaluator).
    setVerbose(false);
    apps::AppInstance app = apps::makeGemm(apps::Scale::kTiny);
    const int64_t m = 32, n = 64, p = 32;
    Runner r(std::move(app.prog));
    app.load(r);
    std::vector<float> A(m * n), B(n * p);
    for (int64_t i = 0; i < m * n; ++i)
        A[i] = wordToFloat(r.dram(0)[i]);
    for (int64_t i = 0; i < n * p; ++i)
        B[i] = wordToFloat(r.dram(1)[i]);
    r.run();
    std::vector<Word> C = r.readDram(2);
    // Compare with tolerance: the fabric accumulates in tree order.
    for (int64_t i = 0; i < m; i += 7) {
        for (int64_t j = 0; j < p; j += 5) {
            double ref = 0;
            for (int64_t k = 0; k < n; ++k)
                ref += static_cast<double>(A[i * n + k]) * B[k * p + j];
            EXPECT_NEAR(wordToFloat(C[i * p + j]), ref, 1e-3)
                << "C[" << i << "][" << j << "]";
        }
    }
}
