/** @file Compiler front half: access classification, leaf lowering,
 *  and the virtual-PCU partitioner's resource guarantees. */

#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "compiler/partition.hpp"
#include "compiler/vleaf.hpp"
#include "base/logging.hpp"
#include "pir/builder.hpp"

using namespace plast;
using namespace plast::pir;
using namespace plast::compiler;

namespace
{

/** Build a leaf with the given addr expr and classify its access. */
AccessClass
classifyIn(std::function<ExprId(Builder &, CtrId, CtrId, MemId)> mk)
{
    Builder b("cls");
    MemId m = b.sram("m", 1024);
    MemId out = b.sram("o", 1024);
    NodeId root = b.outer("root", CtrlScheme::kSequential, {}, kNone);
    CtrId i = b.ctr("i", 0, 8);
    CtrId j = b.ctr("j", 0, 16, 1, true);
    ExprId addr = mk(b, i, j, m);
    ExprId v = b.load(m, addr);
    b.compute("leaf", root, {i, j}, {}, {},
              {Builder::storeSram(out, b.ctrE(j), v)});
    Program p = b.finish(root);
    // The load expression is `addr`'s parent; classify its address.
    const Node &leaf = p.nodes[p.root == 0 ? 1 : p.root + 1];
    (void)leaf;
    for (const Node &n : p.nodes) {
        if (n.kind != NodeKind::kCompute)
            continue;
        // Classify the outermost load of m (created last): indirect
        // tests nest an inner (linear) load as the address.
        for (auto it = p.exprs.rbegin(); it != p.exprs.rend(); ++it) {
            if (it->kind == ExprKind::kLoadSram && it->mem == m)
                return classifyAddr(p, n, it->addr);
        }
    }
    return AccessClass::kGather;
}

} // namespace

TEST(Classify, LaneLinearAddress)
{
    EXPECT_EQ(classifyIn([](Builder &b, CtrId i, CtrId j, MemId) {
                  return b.ima(b.ctrE(i), b.immI(16), b.ctrE(j));
              }),
              AccessClass::kVecLinear);
}

TEST(Classify, BroadcastAddress)
{
    EXPECT_EQ(classifyIn([](Builder &b, CtrId i, CtrId, MemId) {
                  return b.imul(b.ctrE(i), b.immI(4));
              }),
              AccessClass::kBroadcast);
}

TEST(Classify, StridedLaneAddressIsGather)
{
    EXPECT_EQ(classifyIn([](Builder &b, CtrId, CtrId j, MemId) {
                  return b.imul(b.ctrE(j), b.immI(2));
              }),
              AccessClass::kGather);
}

TEST(Classify, DataDependentAddressIsGather)
{
    EXPECT_EQ(classifyIn([](Builder &b, CtrId, CtrId j, MemId m) {
                  return b.load(m, b.ctrE(j));
              }),
              AccessClass::kGather);
}

namespace
{

/** A leaf with `nops` chained float adds folded cross-lane. */
VirtualLeaf
chainLeaf(int nops)
{
    Builder b("chain");
    MemId in = b.dram("in", 1024);
    int32_t out = b.argOut();
    NodeId root = b.outer("root", CtrlScheme::kSequential, {}, kNone);
    CtrId i = b.ctr("i", 0, 256, 1, true);
    ExprId v = b.streamRef(0);
    for (int k = 0; k < nops; ++k)
        v = b.fadd(v, b.immF(static_cast<float>(k)));
    b.compute("leaf", root, {i}, {StreamIn{in, b.ctrE(i)}}, {},
              {Builder::fold(FuOp::kFAdd, v, i, out)});
    Program p = b.finish(root);
    for (size_t n = 0; n < p.nodes.size(); ++n) {
        if (p.nodes[n].kind == NodeKind::kCompute)
            return lowerLeaf(p, static_cast<NodeId>(n), 16);
    }
    return {};
}

} // namespace

TEST(Lower, FoldExpandsToTreePlusAccumulator)
{
    VirtualLeaf vl = chainLeaf(1);
    // 1 add + 4 reduce steps + 1 accumulator.
    int reduce = 0, accum = 0, map = 0;
    for (const VOp &op : vl.ops) {
        reduce += op.kind == StageKind::kReduceStep;
        accum += op.kind == StageKind::kAccum;
        map += op.kind == StageKind::kMap;
    }
    EXPECT_EQ(reduce, 4); // log2(16)
    EXPECT_EQ(accum, 1);
    EXPECT_EQ(map, 1);
    ASSERT_EQ(vl.emissions.size(), 1u);
    EXPECT_EQ(vl.emissions[0].kind, VEmission::Kind::kScalOut);
    EXPECT_FALSE(vl.emissions[0].cond.always);
}

TEST(Partition, SingleChunkWhenItFits)
{
    VirtualLeaf vl = chainLeaf(1); // 6 ops == 6 stages
    PcuParams p;
    PartitionResult pr = partitionLeaf(vl, p);
    ASSERT_TRUE(pr.ok);
    EXPECT_EQ(pr.numChunks(), 1u);
    EXPECT_LE(pr.chunks[0].metrics.stages, p.stages);
}

TEST(Partition, DeepPipelinesSplitAcrossPcus)
{
    VirtualLeaf vl = chainLeaf(40); // ~45 stages
    PcuParams p;
    PartitionResult pr = partitionLeaf(vl, p);
    ASSERT_TRUE(pr.ok);
    EXPECT_GE(pr.numChunks(), 7u);
    for (const Chunk &c : pr.chunks) {
        EXPECT_LE(c.metrics.stages, p.stages);
        EXPECT_LE(c.metrics.regs, p.regsPerStage);
        EXPECT_LE(c.metrics.scalarIns, p.scalarIns);
        EXPECT_LE(c.metrics.scalarOuts, p.scalarOuts);
        EXPECT_LE(c.metrics.vectorIns, p.vectorIns);
        EXPECT_LE(c.metrics.vectorOuts, p.vectorOuts);
    }
}

TEST(Partition, InfeasibleWhenScalarOutsExhausted)
{
    VirtualLeaf vl = chainLeaf(4);
    PcuParams p;
    p.scalarOuts = 0; // the fold's scalar emission cannot map
    PartitionResult pr = partitionLeaf(vl, p);
    EXPECT_FALSE(pr.ok);
    EXPECT_FALSE(pr.error.empty());
}

TEST(Partition, CounterDepthLimitEnforced)
{
    Builder b("deep");
    MemId out = b.sram("o", 16);
    NodeId root = b.outer("root", CtrlScheme::kSequential, {}, kNone);
    std::vector<CtrId> ctrs;
    for (int k = 0; k < 5; ++k)
        ctrs.push_back(b.ctr(strfmt("c%d", k), 0, 2, 1, k == 4));
    b.compute("leaf", root, ctrs, {}, {},
              {Builder::storeSram(out, b.ctrE(ctrs[4]), b.immI(1))});
    Program p = b.finish(root);
    VirtualLeaf vl;
    for (size_t n = 0; n < p.nodes.size(); ++n) {
        if (p.nodes[n].kind == NodeKind::kCompute)
            vl = lowerLeaf(p, static_cast<NodeId>(n), 16);
    }
    PartitionResult pr = partitionLeaf(vl, PcuParams{});
    EXPECT_FALSE(pr.ok) << "5 counters exceed the 4-deep chain";
}

/** Property: for random chain lengths, every chunk respects every
 *  resource bound and chunks tile the op list exactly. */
class PartitionSweep
    : public ::testing::TestWithParam<std::tuple<int, uint32_t, uint32_t>>
{
};

TEST_P(PartitionSweep, ChunksRespectBoundsAndTile)
{
    auto [nops, stages, regs] = GetParam();
    VirtualLeaf vl = chainLeaf(nops);
    PcuParams p;
    p.stages = stages;
    p.regsPerStage = regs;
    PartitionResult pr = partitionLeaf(vl, p);
    if (!pr.ok)
        return; // infeasibility is a valid outcome for tight params
    int32_t expect = 0;
    for (const Chunk &c : pr.chunks) {
        EXPECT_EQ(c.firstOp, expect);
        expect = c.lastOp + 1;
        EXPECT_LE(c.metrics.stages, stages);
        EXPECT_LE(c.metrics.regs, regs);
        EXPECT_LE(c.metrics.vectorIns, p.vectorIns);
        EXPECT_LE(c.metrics.vectorOuts, p.vectorOuts);
    }
    EXPECT_EQ(expect, static_cast<int32_t>(vl.ops.size()));
    // chunkOfOp agrees with the tiling.
    for (size_t i = 0; i < vl.ops.size(); ++i) {
        int32_t c = chunkOfOp(pr, static_cast<int32_t>(i));
        EXPECT_GE(static_cast<int32_t>(i), pr.chunks[c].firstOp);
        EXPECT_LE(static_cast<int32_t>(i), pr.chunks[c].lastOp);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PartitionSweep,
    ::testing::Combine(::testing::Values(1, 3, 8, 20, 40, 80),
                       ::testing::Values(4u, 6u, 8u, 16u),
                       ::testing::Values(2u, 6u, 16u)));
