/** @file DRAM timing model: row locality, bandwidth ceilings, channel
 *  interleaving, and the memory image. */

#include <gtest/gtest.h>

#include "sim/dram.hpp"

using namespace plast;

TEST(Dram, SequentialStreamApproachesPeak)
{
    DramParams p;
    DramChannel ch(p, 0);
    // 16 row-hitting bursts: steady state one burst per tBurst.
    Cycles now = 0;
    std::vector<DramReq> done;
    uint64_t tag = 0;
    Addr addr = 0;
    while (done.size() < 64 && now < 100000) {
        if (ch.canSubmit()) {
            ch.submit({addr, false, tag++}, now);
            addr += p.burstBytes * p.channels; // stay on this channel
        }
        ch.step(now++, done);
    }
    ASSERT_EQ(done.size(), 64u);
    // 64 bursts x tBurst=5 = 320 cycles of data; allow startup slack.
    EXPECT_LT(now, 64 * p.tBurst + 120);
    EXPECT_GT(ch.stats().rowHits, 40u);
}

TEST(Dram, RandomRowsMuchSlowerThanSequential)
{
    DramParams p;
    DramChannel seq(p, 0), rnd(p, 0);
    Cycles now = 0;
    std::vector<DramReq> done;
    uint64_t tag = 0;
    // Sequential: row hits back to back.
    for (uint64_t i = 0; i < 32; ++i) {
        while (!seq.canSubmit())
            seq.step(now++, done);
        seq.submit({i * p.burstBytes * p.channels, false, tag++}, now);
    }
    while (done.size() < 32 && now < 1'000'000)
        seq.step(now++, done);
    Cycles t_seq = now;
    // Random: same bank, different rows every time (worst case).
    std::vector<DramReq> done2;
    now = 0;
    for (uint64_t i = 0; i < 32; ++i) {
        while (!rnd.canSubmit())
            rnd.step(now++, done2);
        Addr a = i * p.rowBytes * p.banksPerChannel * p.channels;
        rnd.submit({a, false, tag++}, now);
    }
    while (done2.size() < 32 && now < 1'000'000)
        rnd.step(now++, done2);
    Cycles t_rnd = now;
    EXPECT_GT(t_rnd, t_seq * 2)
        << "row conflicts should cost far more than streaming";
    EXPECT_GT(rnd.stats().rowConflicts + rnd.stats().rowMisses, 20u);
}

TEST(Dram, ChannelInterleavesAtBurstGranularity)
{
    DramParams p;
    DramModel m(p);
    std::set<uint32_t> seen;
    for (Addr line = 0; line < 8; ++line)
        seen.insert(m.channelOf(line * p.burstBytes));
    EXPECT_EQ(seen.size(), p.channels);
    EXPECT_EQ(m.channelOf(0), m.channelOf(p.burstBytes * p.channels));
}

TEST(Dram, QueueBoundRespected)
{
    DramParams p;
    DramChannel ch(p, 0);
    Cycles now = 0;
    uint32_t accepted = 0;
    for (uint32_t i = 0; i < p.queueDepth + 10; ++i) {
        if (ch.canSubmit()) {
            ch.submit({i * 64, false, i}, now);
            ++accepted;
        }
    }
    EXPECT_EQ(accepted, p.queueDepth);
}

TEST(Dram, ImageReadWrite)
{
    DramModel m(DramParams{});
    m.reserve(1024);
    m.writeWord(0, 0xdeadbeef);
    m.writeWord(1020, 77);
    EXPECT_EQ(m.readWord(0), 0xdeadbeefu);
    EXPECT_EQ(m.readWord(1020), 77u);
    EXPECT_GE(m.sizeBytes(), 1024u);
}

TEST(DramDeath, ImageOutOfRange)
{
    EXPECT_DEATH(
        {
            DramModel m(DramParams{});
            m.reserve(64);
            m.readWord(128);
        },
        "beyond image");
}

TEST(Dram, ResponsesCarryTags)
{
    DramParams p;
    DramChannel ch(p, 0);
    Cycles now = 0;
    std::vector<DramReq> done;
    ch.submit({0, false, 42}, now);
    ch.submit({64 * 4, true, 43}, now);
    while (done.size() < 2 && now < 10000)
        ch.step(now++, done);
    ASSERT_EQ(done.size(), 2u);
    std::set<uint64_t> tags{done[0].tag, done[1].tag};
    EXPECT_TRUE(tags.count(42));
    EXPECT_TRUE(tags.count(43));
}

/** Property: more channels never reduce streaming throughput. */
class ChannelSweep : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(ChannelSweep, ThroughputScalesWithChannels)
{
    DramParams p;
    p.channels = GetParam();
    DramModel m(p);
    std::vector<DramReq> done;
    Cycles now = 0;
    uint64_t tag = 0;
    Addr addr = 0;
    const size_t total = 128;
    while (done.size() < total && now < 1'000'000) {
        // Issue one line per channel per cycle where possible.
        for (uint32_t c = 0; c < p.channels; ++c) {
            DramChannel &ch = m.channel(m.channelOf(addr));
            if (ch.canSubmit()) {
                ch.submit({addr, false, tag++}, now);
                addr += p.burstBytes;
            }
        }
        m.step(now++, done);
    }
    ASSERT_EQ(done.size(), total);
    // Perfect streaming would take total/channels * tBurst cycles.
    double ideal = static_cast<double>(total) / p.channels * p.tBurst;
    EXPECT_LT(static_cast<double>(now), ideal * 2.5 + 100);
}

INSTANTIATE_TEST_SUITE_P(Channels, ChannelSweep,
                         ::testing::Values(1u, 2u, 4u, 8u));
