/** @file The streaming controller scheme (§3.5, Figure 6 right):
 *  children of a Stream parent run concurrently with FIFO flow
 *  control; a FIFO-mode scratchpad decouples producer and consumer. */

#include <gtest/gtest.h>

#include "base/logging.hpp"
#include "pir/builder.hpp"
#include "runtime/runner.hpp"

using namespace plast;
using namespace plast::pir;

namespace
{

/**
 * producer: fifo.push(3 * in[i])      (runs under a Stream parent)
 * consumer: out[i] = fifo.pop() + 1   (concurrently, FIFO-decoupled)
 */
Program
streamProgram(int64_t n, MemId &in, MemId &out)
{
    Builder b("streaming");
    in = b.dram("in", n);
    out = b.dram("out", n);
    MemId fifo = b.sram("fifo", 256, BankingMode::kFifo);
    NodeId root = b.outer("root", CtrlScheme::kSequential, {}, kNone);
    NodeId stream = b.outer("pipe", CtrlScheme::kStream, {}, root);

    CtrId i = b.ctr("i", 0, n, 1, true);
    ExprId v = b.fmul(b.streamRef(0), b.immF(3.0f));
    b.compute("produce", stream, {i}, {StreamIn{in, b.ctrE(i)}}, {},
              {Builder::storeSram(fifo, b.ctrE(i), v)});

    CtrId j = b.ctr("j", 0, n, 1, true);
    ExprId w = b.fadd(b.load(fifo, b.ctrE(j)), b.immF(1.0f));
    b.compute("consume", stream, {j}, {}, {},
              {Builder::streamOut(out, b.ctrE(j), w)});
    return b.finish(root);
}

} // namespace

TEST(StreamScheme, ProducerConsumerThroughFifoMemory)
{
    setVerbose(false);
    MemId in, out;
    Runner r(streamProgram(512, in, out));
    auto &buf = r.dram(in);
    for (int k = 0; k < 512; ++k)
        buf[k] = floatToWord(static_cast<float>(k));
    Runner::Result res = r.runValidated();
    std::vector<Word> got = r.readDram(out);
    for (int k = 0; k < 512; ++k)
        EXPECT_FLOAT_EQ(wordToFloat(got[k]), 3.0f * k + 1.0f);
    EXPECT_GT(res.cycles, 0u);
}

TEST(StreamScheme, ChildrenOverlapInTime)
{
    // Fine-grained pipelining: total time must be far below the sum of
    // a serialized producer + consumer (each needs >= n/16 cycles).
    setVerbose(false);
    MemId in, out;
    const int64_t n = 2048;
    Runner r(streamProgram(n, in, out));
    auto &buf = r.dram(in);
    for (int64_t k = 0; k < n; ++k)
        buf[k] = floatToWord(1.0f);
    Runner::Result res = r.run();
    // Serialized lower bound would be ~2 * n/16 plus transfer latency;
    // streaming should land well under 1.6x of one pass.
    EXPECT_LT(res.cycles, static_cast<Cycles>(1.6 * (n / 16) + 400))
        << "stream children did not overlap";
}

TEST(StreamScheme, FifoOrderIsProgramOrder)
{
    setVerbose(false);
    MemId in, out;
    Runner r(streamProgram(64, in, out));
    auto &buf = r.dram(in);
    for (int k = 0; k < 64; ++k)
        buf[k] = floatToWord(static_cast<float>(63 - k));
    r.runValidated(); // evaluator models the FIFO as in-order too
    std::vector<Word> got = r.readDram(out);
    EXPECT_FLOAT_EQ(wordToFloat(got[0]), 3.0f * 63 + 1);
    EXPECT_FLOAT_EQ(wordToFloat(got[63]), 1.0f);
}
