/** @file Chip geometry: checkerboard layout, index/site inverses, AG
 *  edge attachment and channel binding. */

#include <gtest/gtest.h>

#include "arch/geometry.hpp"

using namespace plast;

TEST(Geometry, CheckerboardBalances)
{
    ArchParams p;
    Geometry g(p);
    uint32_t pcus = 0, pmus = 0;
    for (uint32_t r = 0; r < p.gridRows; ++r) {
        for (uint32_t c = 0; c < p.gridCols; ++c)
            (g.siteIsPcu(c, r) ? pcus : pmus)++;
    }
    EXPECT_EQ(pcus, p.numPcus());
    EXPECT_EQ(pmus, p.numPmus());
    EXPECT_EQ(pcus, 64u);
    EXPECT_EQ(pmus, 64u);
}

TEST(Geometry, NeighborsAlternate)
{
    ArchParams p;
    Geometry g(p);
    for (uint32_t r = 0; r + 1 < p.gridRows; ++r) {
        for (uint32_t c = 0; c + 1 < p.gridCols; ++c) {
            EXPECT_NE(g.siteIsPcu(c, r), g.siteIsPcu(c + 1, r));
            EXPECT_NE(g.siteIsPcu(c, r), g.siteIsPcu(c, r + 1));
        }
    }
}

TEST(Geometry, SiteOfIsInverseOfUnitIndexAt)
{
    ArchParams p;
    Geometry g(p);
    for (uint32_t r = 0; r < p.gridRows; ++r) {
        for (uint32_t c = 0; c < p.gridCols; ++c) {
            UnitClass cls = g.siteIsPcu(c, r) ? UnitClass::kPcu
                                              : UnitClass::kPmu;
            uint32_t idx = g.unitIndexAt(c, r);
            uint32_t cc = 0, rr = 0;
            g.siteOf(cls, idx, cc, rr);
            EXPECT_EQ(cc, c);
            EXPECT_EQ(rr, r);
        }
    }
}

TEST(Geometry, AgsLiveOnChipEdges)
{
    ArchParams p;
    Geometry g(p);
    for (uint32_t a = 0; a < p.numAgs; ++a) {
        SwitchCoord sc = g.agSwitch(a);
        bool left = sc.col == 0;
        bool right = sc.col == static_cast<int>(p.gridCols);
        EXPECT_TRUE(left || right) << "AG " << a << " not on an edge";
        EXPECT_GE(sc.row, 0);
        EXPECT_LE(sc.row, static_cast<int>(p.gridRows));
    }
}

TEST(Geometry, AgChannelsCoverAllChannels)
{
    ArchParams p;
    Geometry g(p);
    std::set<uint32_t> channels;
    for (uint32_t a = 0; a < p.numAgs; ++a) {
        uint32_t ch = g.agChannel(a);
        EXPECT_LT(ch, p.dram.channels);
        channels.insert(ch);
    }
    EXPECT_EQ(channels.size(), p.dram.channels);
}

TEST(Geometry, BoxIndexEncodesSwitchSite)
{
    ArchParams p;
    Geometry g(p);
    uint32_t idx = 3 * p.switchCols() + 7;
    SwitchCoord sc = g.switchOf(UnitClass::kBox, idx);
    EXPECT_EQ(sc.col, 7);
    EXPECT_EQ(sc.row, 3);
}

TEST(Geometry, ManhattanDistance)
{
    EXPECT_EQ(Geometry::manhattan({0, 0}, {3, 4}), 7u);
    EXPECT_EQ(Geometry::manhattan({5, 2}, {5, 2}), 0u);
    EXPECT_EQ(Geometry::manhattan({2, 5}, {5, 2}), 6u);
}
