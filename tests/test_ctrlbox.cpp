/** @file Control boxes: iteration issue, counter exports, metapipe
 *  depth bounding, and done collection (§3.5 protocols). */

#include <gtest/gtest.h>

#include <memory>

#include "sim/ctrlbox.hpp"

using namespace plast;

namespace
{

struct BoxHarness
{
    ArchParams params;
    std::unique_ptr<CtrlBoxSim> box;
    std::unique_ptr<ControlStream> start, childDone;
    std::unique_ptr<ScalarStream> exportStream;
    Cycles now = 0;

    explicit BoxHarness(ControlBoxCfg cfg)
    {
        cfg.used = true;
        box = std::make_unique<CtrlBoxSim>(params, 0, cfg);
        start = std::make_unique<ControlStream>("start", 1, 16);
        childDone = std::make_unique<ControlStream>("cd", 1, 16);
        exportStream = std::make_unique<ScalarStream>("ex", 1, 16);
        if (!cfg.childStartOuts.empty())
            box->ports.ctlOut[cfg.childStartOuts[0]].sinks.push_back(
                start.get());
        if (!cfg.childDoneIns.empty())
            box->ports.ctlIn[cfg.childDoneIns[0]].stream =
                childDone.get();
        if (!cfg.exports.empty())
            box->ports.scalOut[cfg.exports[0].scalarOutPort]
                .sinks.push_back(exportStream.get());
    }

    void
    step(int n = 1)
    {
        for (int i = 0; i < n; ++i) {
            box->step(now);
            start->tick(now);
            childDone->tick(now);
            exportStream->tick(now);
            ++now;
        }
    }
};

ControlBoxCfg
loopCfg(int64_t trips, CtrlScheme scheme, uint32_t depth)
{
    ControlBoxCfg cfg;
    cfg.scheme = scheme;
    CounterCfg cc;
    cc.max = trips;
    cfg.chain.ctrs = {cc};
    cfg.childStartOuts = {0};
    cfg.childDoneIns = {0};
    cfg.depth = depth;
    cfg.exports = {{0, 0}};
    return cfg;
}

} // namespace

TEST(CtrlBox, SequentialIssuesOneIterationAtATime)
{
    BoxHarness h(loopCfg(3, CtrlScheme::kSequential, 1));
    h.step(10);
    EXPECT_EQ(h.start->available(), 1u) << "depth 1: one start in flight";
    // Complete iteration 1.
    h.childDone->preload(Token{});
    h.step(10);
    EXPECT_EQ(h.start->available(), 2u);
    h.childDone->preload(Token{});
    h.childDone->preload(Token{});
    h.step(10);
    EXPECT_EQ(h.start->available(), 3u);
    EXPECT_EQ(h.box->runsCompleted(), 1u);
}

TEST(CtrlBox, MetapipeRunsAheadUpToDepth)
{
    BoxHarness h(loopCfg(8, CtrlScheme::kMetapipe, 3));
    h.step(20);
    EXPECT_EQ(h.start->available(), 3u) << "three iterations in flight";
    h.childDone->preload(Token{});
    h.step(10);
    EXPECT_EQ(h.start->available(), 4u);
}

TEST(CtrlBox, ExportsCounterValuesInOrder)
{
    BoxHarness h(loopCfg(4, CtrlScheme::kMetapipe, 4));
    h.step(20);
    std::vector<Word> exports;
    while (h.exportStream->canPop()) {
        exports.push_back(h.exportStream->front());
        h.exportStream->pop();
    }
    EXPECT_EQ(exports, (std::vector<Word>{0, 1, 2, 3}));
}

TEST(CtrlBox, CompletesAfterAllChildDones)
{
    BoxHarness h(loopCfg(2, CtrlScheme::kSequential, 1));
    h.step(10);
    EXPECT_EQ(h.box->runsCompleted(), 0u);
    h.childDone->preload(Token{});
    h.childDone->preload(Token{});
    h.step(20);
    EXPECT_EQ(h.box->runsCompleted(), 1u);
    EXPECT_FALSE(h.box->busy());
}

TEST(CtrlBox, SelfStartsOnlyOnce)
{
    // No token inputs: the root controller runs a single sweep.
    BoxHarness h(loopCfg(2, CtrlScheme::kSequential, 1));
    h.childDone->preload(Token{});
    h.childDone->preload(Token{});
    h.step(50);
    EXPECT_EQ(h.box->runsCompleted(), 1u);
    h.childDone->preload(Token{});
    h.step(50);
    EXPECT_EQ(h.box->runsCompleted(), 1u) << "must not restart";
}
