/**
 * @file
 * The serve-daemon concurrency battery: bounded-queue semantics,
 * single-flight cache behavior (hit/miss accounting, LRU eviction,
 * pending-entry pinning), FNV-1a hash-stability goldens tied to the
 * manifest layer, the N-worker stress test against a serial
 * single-Runner baseline (bit-identical argOuts / DRAM images /
 * architectural counters, duplicates served from cache), the shared
 * HostProfiler regression for overlapping runners, and the
 * deterministic job-log replay proof. The whole file also runs under
 * ThreadSanitizer in CI (the tsan job), so every test here is a race
 * detector, not just a correctness check.
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "base/profile.hpp"
#include "fuzz/diff.hpp"
#include "fuzz/harness.hpp"
#include "pir/serialize.hpp"
#include "runtime/manifest.hpp"
#include "runtime/runner.hpp"
#include "serve/joblog.hpp"
#include "serve/queue.hpp"
#include "serve/server.hpp"
#include "serve/traffic.hpp"

using namespace plast;
using namespace plast::serve;

// ---- bounded queue --------------------------------------------------

TEST(ServeQueue, FifoAndCloseDrains)
{
    BoundedQueue<int> q(8);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    EXPECT_TRUE(q.push(3));
    q.close();
    EXPECT_FALSE(q.push(4)); // rejected after close...
    EXPECT_EQ(q.pop().value(), 1); // ...but queued items still drain
    EXPECT_EQ(q.pop().value(), 2);
    EXPECT_EQ(q.pop().value(), 3);
    EXPECT_FALSE(q.pop().has_value());
    EXPECT_EQ(q.pushed(), 3u);
    EXPECT_EQ(q.highWater(), 3u);
}

TEST(ServeQueue, BackpressureBlocksProducerUntilPop)
{
    BoundedQueue<int> q(2);
    std::atomic<int> produced{0};
    std::thread producer([&] {
        for (int i = 0; i < 6; ++i) {
            ASSERT_TRUE(q.push(i));
            produced.fetch_add(1);
        }
    });
    // The producer can run at most `capacity` ahead of the consumer.
    std::vector<int> got;
    for (int i = 0; i < 6; ++i) {
        auto v = q.pop();
        ASSERT_TRUE(v.has_value());
        got.push_back(*v);
        EXPECT_LE(static_cast<size_t>(produced.load()),
                  got.size() + q.capacity());
    }
    producer.join();
    EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4, 5}));
    EXPECT_LE(q.highWater(), q.capacity());
}

TEST(ServeQueue, CloseWakesBlockedConsumers)
{
    BoundedQueue<int> q(4);
    std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
    q.close();
    consumer.join();
}

// ---- single-flight cache --------------------------------------------

namespace
{

CacheKey
key(uint64_t a, uint64_t b = 0)
{
    CacheKey k;
    k.pir = a;
    k.arch = b;
    return k;
}

} // namespace

TEST(ServeCache, MissThenHitAccounting)
{
    SingleFlightCache<int> c(4);
    auto a1 = c.acquire(key(1), [] { return std::make_shared<int>(7); });
    EXPECT_FALSE(a1.hit);
    EXPECT_EQ(*a1.value, 7);
    auto a2 = c.acquire(key(1), []() -> std::shared_ptr<const int> {
        ADD_FAILURE() << "builder ran on a hit";
        return nullptr;
    });
    EXPECT_TRUE(a2.hit);
    EXPECT_EQ(a2.value, a1.value); // same object, not a copy
    EXPECT_LT(a1.seq, a2.seq);
    CacheStats s = c.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.size, 1u);
}

TEST(ServeCache, DistinctKeysDoNotAlias)
{
    SingleFlightCache<int> c(8);
    // Any single differing component is a different address.
    CacheKey base{1, 2, 3, 4};
    std::vector<CacheKey> keys = {base,
                                  {9, 2, 3, 4},
                                  {1, 9, 3, 4},
                                  {1, 2, 9, 4},
                                  {1, 2, 3, 9}};
    for (size_t i = 0; i < keys.size(); ++i) {
        auto a = c.acquire(keys[i], [i] {
            return std::make_shared<int>(static_cast<int>(i));
        });
        EXPECT_FALSE(a.hit);
    }
    for (size_t i = 0; i < keys.size(); ++i)
        EXPECT_EQ(*c.peek(keys[i]), static_cast<int>(i));
    EXPECT_EQ(c.stats().misses, keys.size());
    EXPECT_EQ(c.stats().hits, 0u);
}

TEST(ServeCache, SingleFlightBuildsOnceUnderContention)
{
    SingleFlightCache<int> c(4);
    std::mutex mu;
    std::condition_variable cv;
    bool release = false;
    std::atomic<int> builds{0};

    auto slowBuild = [&]() -> std::shared_ptr<const int> {
        builds.fetch_add(1);
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] { return release; });
        return std::make_shared<int>(42);
    };

    constexpr int kThreads = 8;
    std::atomic<int> hits{0};
    std::vector<std::thread> ts;
    for (int i = 0; i < kThreads; ++i) {
        ts.emplace_back([&] {
            auto a = c.acquire(key(5), slowBuild);
            EXPECT_EQ(*a.value, 42);
            if (a.hit)
                hits.fetch_add(1);
        });
    }
    // Let every thread reach the cache, then release the one builder.
    while (c.stats().hits + c.stats().misses <
           static_cast<uint64_t>(kThreads))
        std::this_thread::yield();
    {
        std::lock_guard<std::mutex> lk(mu);
        release = true;
    }
    cv.notify_all();
    for (auto &t : ts)
        t.join();
    EXPECT_EQ(builds.load(), 1) << "duplicate keys must build once";
    EXPECT_EQ(hits.load(), kThreads - 1);
}

TEST(ServeCache, LruEvictionPrefersColdEntries)
{
    SingleFlightCache<int> c(2);
    auto mk = [](int v) {
        return [v] { return std::make_shared<int>(v); };
    };
    c.acquire(key(1), mk(1));
    c.acquire(key(2), mk(2));
    c.acquire(key(1), mk(1)); // touch 1: now 2 is coldest
    c.acquire(key(3), mk(3)); // evicts 2
    EXPECT_NE(c.peek(key(1)), nullptr);
    EXPECT_EQ(c.peek(key(2)), nullptr);
    EXPECT_NE(c.peek(key(3)), nullptr);
    EXPECT_EQ(c.stats().evictions, 1u);
    EXPECT_EQ(c.stats().size, 2u);
}

TEST(ServeCache, PendingEntriesArePinnedAgainstEviction)
{
    SingleFlightCache<int> c(1);
    std::mutex mu;
    std::condition_variable cv;
    bool release = false;

    std::thread builder([&] {
        auto a = c.acquire(key(1), [&]() -> std::shared_ptr<const int> {
            std::unique_lock<std::mutex> lk(mu);
            cv.wait(lk, [&] { return release; });
            return std::make_shared<int>(1);
        });
        EXPECT_EQ(*a.value, 1);
    });
    while (c.stats().misses == 0)
        std::this_thread::yield();
    // Over-capacity insert while the only other entry is pending: the
    // pending entry must survive (transient overflow, no deadlock).
    auto a2 = c.acquire(key(2), [] { return std::make_shared<int>(2); });
    EXPECT_FALSE(a2.hit);
    {
        std::lock_guard<std::mutex> lk(mu);
        release = true;
    }
    cv.notify_all();
    builder.join();
    EXPECT_NE(c.peek(key(1)), nullptr)
        << "pending entry was evicted mid-build";
}

TEST(ServeCache, AccessLogRecordsSequenceAndHits)
{
    SingleFlightCache<int> c(4);
    c.setLogging(true);
    auto mk = [](int v) {
        return [v] { return std::make_shared<int>(v); };
    };
    c.acquire(key(1), mk(1));
    c.acquire(key(2), mk(2));
    c.acquire(key(1), mk(1));
    auto log = c.accessLog();
    ASSERT_EQ(log.size(), 3u);
    EXPECT_EQ(log[0].seq, 0u);
    EXPECT_FALSE(log[0].hit);
    EXPECT_EQ(log[1].seq, 1u);
    EXPECT_FALSE(log[1].hit);
    EXPECT_EQ(log[2].seq, 2u);
    EXPECT_TRUE(log[2].hit);
    EXPECT_TRUE(log[2].key == key(1));
}

// ---- content addressing ---------------------------------------------

TEST(ServeHash, Fnv1a64GoldenVectors)
{
    // Published FNV-1a 64 test vectors: if these move, every cache
    // address and manifest hash in the repo moves with them.
    EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(ServeHash, CacheAddressEqualsManifestHashes)
{
    apps::AppInstance inst =
        apps::makeInnerProduct(apps::Scale::kTiny);
    ArchParams params;
    // The serve cache address and the run-manifest identity are the
    // same bytes: a manifest names exactly the cache entry that served
    // its job.
    Runner r(inst.prog, params, SimOptions{});
    inst.load(r);
    Runner::Result res;
    Status st = r.tryRun(res);
    ASSERT_TRUE(st.ok()) << st.message();
    RunManifest m = r.buildManifest(res, st);
    EXPECT_EQ(hashProgram(inst.prog), m.pirHash);
    EXPECT_EQ(hashArch(params), m.archHash);
    EXPECT_EQ(hashProgram(inst.prog),
              fnv1a64(pir::programToText(inst.prog)));
}

TEST(ServeHash, DistinctArchParamsNeverCollide)
{
    // Every parameter that archParamsText serializes must perturb the
    // hash: two different fabrics must never share a config-cache
    // entry (a collision would hand one tenant a config compiled for
    // another tenant's machine).
    std::vector<ArchParams> variants;
    variants.push_back(ArchParams::plasticineFinal());
    for (uint32_t c = 2; c <= 16; c += 2) {
        ArchParams p;
        p.gridCols = c;
        variants.push_back(p);
    }
    for (uint32_t rws = 2; rws <= 8; rws += 2) {
        ArchParams p;
        p.gridRows = rws;
        variants.push_back(p);
    }
    {
        ArchParams p;
        p.numAgs = 17;
        variants.push_back(p);
        p = ArchParams();
        p.vectorTracks = 2;
        variants.push_back(p);
        p = ArchParams();
        p.scalarTracks = 4;
        variants.push_back(p);
        p = ArchParams();
        p.controlTracks = 16;
        variants.push_back(p);
    }
    std::set<uint64_t> hashes;
    std::set<std::string> texts;
    for (const ArchParams &p : variants) {
        hashes.insert(hashArch(p));
        texts.insert(archParamsText(p));
    }
    // All texts are distinct by construction (gridRows=8 etc. equal the
    // default — dedupe via the text set first).
    EXPECT_EQ(hashes.size(), texts.size());
    EXPECT_GT(texts.size(), 10u);
}

TEST(ServeHash, OptionsHashSeparatesBudgetAndValidate)
{
    ServeOptions o;
    uint64_t base = hashOptions(o, 0);
    EXPECT_EQ(base, hashOptions(o, o.maxCycles))
        << "job budget 0 means the server default";
    EXPECT_NE(base, hashOptions(o, o.maxCycles + 1));
    ServeOptions v = o;
    v.validate = true;
    EXPECT_NE(base, hashOptions(v, 0));
    ServeOptions d = o;
    d.simOpts.mode = SimOptions::Mode::kDense;
    EXPECT_NE(base, hashOptions(d, 0));
}

TEST(ServeHash, InputsHashCoversEveryWord)
{
    std::map<pir::MemId, std::vector<Word>> a, b;
    a[0] = {1, 2, 3};
    b = a;
    EXPECT_EQ(hashInputs(a), hashInputs(b));
    b[0][2] = 4;
    EXPECT_NE(hashInputs(a), hashInputs(b));
    b = a;
    b[1] = {};
    EXPECT_NE(hashInputs(a), hashInputs(b))
        << "an extra (even empty) buffer is a different image";
}

// ---- the stress battery ---------------------------------------------

namespace
{

struct Baseline
{
    std::string outcome;
    Cycles cycles = 0;
    std::vector<std::deque<Word>> argOuts;
    std::vector<std::vector<Word>> dram;
    std::map<std::string, uint64_t> stats;
};

/** One job, fresh Runner, no caches — the serial reference. */
Baseline
runSerialBaseline(const JobSpec &spec, const ServeOptions &opts)
{
    Runner r(spec.prog, spec.params, opts.simOpts);
    if (spec.load)
        spec.load(r);
    else
        fuzz::fillInputs(r, spec.prog);
    Runner::Result res;
    Status st = r.tryRun(
        res, spec.maxCycles ? spec.maxCycles : opts.maxCycles);
    Baseline b;
    b.outcome = statusCodeName(st.code());
    b.cycles = res.cycles;
    b.argOuts = res.argOuts;
    b.stats = res.stats.all();
    b.dram.resize(spec.prog.mems.size());
    if (r.fabric()) {
        for (size_t m = 0; m < spec.prog.mems.size(); ++m) {
            if (spec.prog.mems[m].kind == pir::MemKind::kDram)
                b.dram[m] = r.readDram(static_cast<pir::MemId>(m));
        }
    }
    return b;
}

void
expectMatchesBaseline(const JobResult &r, const Baseline &b)
{
    ASSERT_NE(r.outcome, nullptr) << r.source;
    EXPECT_EQ(r.outcome->outcome, b.outcome) << r.source;
    EXPECT_EQ(r.outcome->cycles, b.cycles) << r.source;
    EXPECT_EQ(r.outcome->argOuts, b.argOuts) << r.source;
    EXPECT_EQ(r.outcome->dram, b.dram) << r.source;
}

} // namespace

TEST(ServeStress, WorkersMatchSerialBaselineWithResultCache)
{
    TrafficOptions t;
    t.seed = 7;
    t.uniques = 6;
    t.jobs = 30;
    std::vector<JobSpec> specs = makeTraffic(t);

    ServeOptions o;
    o.workers = 4;
    std::map<std::string, Baseline> baselines;
    for (size_t u = 0; u < t.uniques; ++u)
        baselines[specs[u].source] = runSerialBaseline(specs[u], o);

    Server server(o);
    server.start();
    for (JobSpec &s : specs)
        ASSERT_NE(server.submit(std::move(s)), 0u);
    server.drain();

    std::vector<JobResult> results = server.results();
    ASSERT_EQ(results.size(), t.jobs);
    for (const JobResult &r : results)
        expectMatchesBaseline(r, baselines.at(r.source));

    // Duplicate traffic must have been served from cache: exactly one
    // miss per unique identity (single-flight waiters count as hits).
    CacheStats rs = server.resultCacheStats();
    EXPECT_EQ(rs.misses, t.uniques);
    EXPECT_EQ(rs.hits, t.jobs - t.uniques);
    EXPECT_EQ(server.configCacheStats().misses, t.uniques);
}

TEST(ServeStress, WorkersMatchSerialBaselineWhenEveryJobExecutes)
{
    // resultCache off: every duplicate actually re-simulates on a
    // worker thread; bit-identical outputs now prove concurrent
    // execution (not memoization) is deterministic. Architectural
    // counters must match too.
    TrafficOptions t;
    t.seed = 11;
    t.uniques = 5;
    t.jobs = 20;
    std::vector<JobSpec> specs = makeTraffic(t);

    ServeOptions o;
    o.workers = 4;
    o.resultCache = false;
    std::map<std::string, Baseline> baselines;
    for (size_t u = 0; u < t.uniques; ++u)
        baselines[specs[u].source] = runSerialBaseline(specs[u], o);

    Server server(o);
    server.start();
    for (JobSpec &s : specs)
        ASSERT_NE(server.submit(std::move(s)), 0u);
    server.drain();

    std::vector<JobResult> results = server.results();
    ASSERT_EQ(results.size(), t.jobs);
    for (const JobResult &r : results) {
        const Baseline &b = baselines.at(r.source);
        expectMatchesBaseline(r, b);
        EXPECT_FALSE(r.resultHit);
        EXPECT_EQ(r.outcome->stats.all(), b.stats) << r.source;
    }
    // The config cache still collapses compilation: one compile per
    // unique program, every other job adopts the frozen config.
    CacheStats cs = server.configCacheStats();
    EXPECT_EQ(cs.misses, t.uniques);
    EXPECT_EQ(cs.hits, t.jobs - t.uniques);
}

TEST(ServeStress, DistinctBudgetHitsConfigCacheMissesResultCache)
{
    apps::AppInstance inst =
        apps::makeInnerProduct(apps::Scale::kTiny);
    ServeOptions o;
    Server server(o);

    JobSpec j1;
    j1.source = "a";
    j1.prog = inst.prog;
    j1.load = inst.load;
    j1.maxCycles = 1'000'000'000ull;
    JobSpec j2 = j1;
    j2.source = "b";
    j2.maxCycles = 1'000'000'001ull; // same semantics, distinct hash

    JobResult r1 = server.executeJob(j1);
    JobResult r2 = server.executeJob(j2);
    EXPECT_FALSE(r1.configHit);
    EXPECT_FALSE(r1.resultHit);
    EXPECT_TRUE(r2.configHit) << "same program+arch must not recompile";
    EXPECT_FALSE(r2.resultHit) << "different budget is a different job";
    ASSERT_NE(r1.outcome, nullptr);
    ASSERT_NE(r2.outcome, nullptr);
    EXPECT_EQ(r1.outcome->resultHash, r2.outcome->resultHash)
        << "ample budgets must not change the outcome";
    EXPECT_NE(r1.optionsHash, r2.optionsHash);
}

TEST(ServeStress, FailedCompilesAreNegativelyCached)
{
    // Find an (app, undersized fabric) pair that cannot compile; the
    // second submission must be refused from cache with the identical
    // typed outcome, without paying place-and-route again.
    apps::AppInstance inst = apps::makeGemm(apps::Scale::kTiny);
    JobSpec bad;
    bad.source = "bad";
    bad.prog = inst.prog;
    bad.load = inst.load;
    bool found = false;
    for (uint32_t dim : {2u, 1u}) {
        ArchParams tight;
        tight.gridCols = dim;
        tight.gridRows = dim;
        tight.numAgs = 2;
        Runner probe(bad.prog, tight, SimOptions{});
        if (!probe.tryCompile().ok()) {
            bad.params = tight;
            found = true;
            break;
        }
    }
    ASSERT_TRUE(found) << "GEMM compiled on a 1x1 fabric?";

    // resultCache off so the duplicate reaches the config cache (with
    // it on, a bit-identical failed job is simply a result-cache hit).
    ServeOptions o;
    o.resultCache = false;
    Server server(o);
    JobResult r1 = server.executeJob(bad);
    bad.source = "bad-again";
    JobResult r2 = server.executeJob(bad);
    ASSERT_NE(r1.outcome, nullptr);
    ASSERT_NE(r2.outcome, nullptr);
    EXPECT_NE(r1.outcome->outcome, "ok");
    EXPECT_FALSE(r1.configHit);
    EXPECT_TRUE(r2.configHit) << "failure was not negatively cached";
    EXPECT_EQ(r1.outcome->outcome, r2.outcome->outcome);
    EXPECT_EQ(r1.outcome->detail, r2.outcome->detail)
        << "cached failure must carry the original diagnosis";
    // Failures are jobs, not crashes: the server stays serviceable.
    apps::AppInstance ok = apps::makeInnerProduct(apps::Scale::kTiny);
    JobSpec good;
    good.source = "good";
    good.prog = ok.prog;
    good.load = ok.load;
    JobResult r3 = server.executeJob(good);
    ASSERT_NE(r3.outcome, nullptr);
    EXPECT_EQ(r3.outcome->outcome, "ok") << r3.outcome->detail;
}

TEST(ServeStress, EvictionUnderTinyCapacityStaysCorrect)
{
    TrafficOptions t;
    t.seed = 3;
    t.uniques = 4;
    t.jobs = 16;
    std::vector<JobSpec> specs = makeTraffic(t);

    ServeOptions o;
    o.workers = 2;
    o.configCacheCapacity = 2;
    o.resultCacheCapacity = 2;
    std::map<std::string, Baseline> baselines;
    for (size_t u = 0; u < t.uniques; ++u)
        baselines[specs[u].source] = runSerialBaseline(specs[u], o);

    Server server(o);
    server.start();
    for (JobSpec &s : specs)
        server.submit(std::move(s));
    server.drain();

    std::vector<JobResult> results = server.results();
    ASSERT_EQ(results.size(), t.jobs);
    for (const JobResult &r : results)
        expectMatchesBaseline(r, baselines.at(r.source));
    EXPECT_GT(server.resultCacheStats().evictions, 0u)
        << "4 uniques through capacity 2 must evict";
    EXPECT_LE(server.resultCacheStats().size,
              o.resultCacheCapacity + o.workers)
        << "steady-state size must respect capacity (+ pinned)";
}

TEST(ServeStress, CommittedCorpusMatchesSerialBaselineAcrossWorkers)
{
    // The literal multi-tenant scenario: every committed .pir seed
    // (clean, fault-injected, oversize) submitted three times across
    // the worker pool. Fault-injection lines are a fuzzer concern the
    // daemon ignores, so injected seeds run clean here — the contract
    // is only that every copy is bit-identical to the serial
    // single-Runner baseline, whatever its typed outcome.
    namespace fs = std::filesystem;
    std::vector<std::string> files;
    for (const auto &e : fs::directory_iterator(PLAST_CORPUS_DIR))
        if (e.path().extension() == ".pir")
            files.push_back(e.path().string());
    std::sort(files.begin(), files.end());
    ASSERT_FALSE(files.empty()) << "no corpus under " PLAST_CORPUS_DIR;

    std::vector<JobSpec> uniques;
    for (const std::string &f : files) {
        std::ifstream is(f);
        fuzz::FuzzCase c;
        std::string err;
        ASSERT_TRUE(fuzz::readSeedFile(is, c, &err)) << f << ": " << err;
        JobSpec s;
        s.source = "file:" + fs::path(f).filename().string();
        s.prog = std::move(c.prog);
        s.params = c.params;
        uniques.push_back(std::move(s));
    }

    ServeOptions o;
    o.workers = 4;
    std::map<std::string, Baseline> baselines;
    for (const JobSpec &s : uniques)
        baselines[s.source] = runSerialBaseline(s, o);

    std::vector<JobSpec> specs;
    for (int rep = 0; rep < 3; ++rep)
        for (const JobSpec &s : uniques)
            specs.push_back(s);

    Server server(o);
    server.start();
    for (JobSpec &s : specs)
        ASSERT_NE(server.submit(std::move(s)), 0u);
    server.drain();

    std::vector<JobResult> results = server.results();
    ASSERT_EQ(results.size(), uniques.size() * 3);
    for (const JobResult &r : results)
        expectMatchesBaseline(r, baselines.at(r.source));

    // Duplicates must be served from cache. Seeds that differ only in
    // their inject line share a content address, so count identities
    // by key tuple rather than by file.
    std::set<std::array<uint64_t, 4>> ids;
    for (const JobResult &r : results)
        ids.insert({r.pirHash, r.archHash, r.inputsHash, r.optionsHash});
    CacheStats rs = server.resultCacheStats();
    EXPECT_EQ(rs.misses, ids.size());
    EXPECT_EQ(rs.hits, results.size() - ids.size());
}

// ---- shared-profiler regression -------------------------------------

TEST(ServeProfiler, OverlappingRunnersProduceWellFormedMergedTrace)
{
    HostProfiler &prof = HostProfiler::instance();
    prof.clear();
    prof.setEnabled(true);

    std::atomic<uint32_t> tidA{0}, tidB{0};
    auto runOne = [](std::atomic<uint32_t> &tidOut) {
        tidOut = HostProfiler::currentTid();
        apps::AppInstance inst =
            apps::makeInnerProduct(apps::Scale::kTiny);
        Runner r(inst.prog, ArchParams{}, SimOptions{});
        inst.load(r);
        Runner::Result res;
        Status st = r.tryRun(res);
        ASSERT_TRUE(st.ok()) << st.message();
        // The per-job manifest must see only this thread's phases.
        RunManifest m = r.buildManifest(res, st);
        EXPECT_TRUE(m.timingsUs.count("host.compile"));
    };
    std::thread a([&] { runOne(tidA); });
    std::thread b([&] { runOne(tidB); });
    a.join();
    b.join();
    ASSERT_NE(tidA.load(), tidB.load());

    // Every span carries its recording thread; both threads are
    // present; per-thread windowed totals partition the global totals.
    std::set<uint32_t> tids;
    for (const HostProfiler::Span &s : prof.spans())
        tids.insert(s.tid);
    EXPECT_TRUE(tids.count(tidA.load()));
    EXPECT_TRUE(tids.count(tidB.load()));

    auto total = prof.totalsUs();
    auto ta = prof.totalsUs(tidA.load(), 0);
    auto tb = prof.totalsUs(tidB.load(), 0);
    ASSERT_TRUE(total.count("host.compile"));
    EXPECT_TRUE(ta.count("host.compile"));
    EXPECT_TRUE(tb.count("host.compile"));
    EXPECT_EQ(ta["host.compile"] + tb["host.compile"],
              total["host.compile"])
        << "thread windows must partition the shared timeline";

    // The merged Perfetto fragment stays well-formed: one named track
    // per thread, balanced braces, a tid on every span.
    std::ostringstream os;
    writeHostSpansJson(os, prof);
    std::string json = os.str();
    EXPECT_NE(json.find("host phases (thread " +
                        std::to_string(tidA.load()) + ")"),
              std::string::npos);
    EXPECT_NE(json.find("host phases (thread " +
                        std::to_string(tidB.load()) + ")"),
              std::string::npos);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    size_t spanEvents = 0, tidFields = 0;
    for (size_t p = 0; (p = json.find("\"ph\":\"X\"", p)) !=
                       std::string::npos;
         ++p)
        ++spanEvents;
    for (size_t p = 0;
         (p = json.find("\"tid\":", p)) != std::string::npos; ++p)
        ++tidFields;
    EXPECT_EQ(spanEvents, prof.spans().size());
    EXPECT_GE(tidFields, spanEvents)
        << "every complete event names its thread track";

    prof.clear();
}

// ---- job log + deterministic replay ---------------------------------

TEST(ServeJoblog, RoundTripsEveryFieldIncludingSpacedSources)
{
    auto out = std::make_shared<JobOutcome>();
    out->outcome = "ok";
    out->cycles = 1234;
    out->resultHash = 0xdeadbeefcafef00dull;
    JobResult r;
    r.id = 7;
    r.seq = 3;
    r.worker = 2;
    r.pirHash = 0x1111;
    r.archHash = 0x2222;
    r.inputsHash = 0x3333;
    r.optionsHash = 0x4444;
    r.configHit = true;
    r.resultHit = false;
    r.source = "app:TPC-H Query 6/v0"; // spaces are legal in sources
    r.outcome = out;

    std::stringstream ss;
    writeJobLog(ss, {r});
    std::vector<JobLogEntry> log;
    std::string err;
    ASSERT_TRUE(readJobLog(ss, log, &err)) << err;
    ASSERT_EQ(log.size(), 1u);
    const JobLogEntry &e = log[0];
    EXPECT_EQ(e.id, 7u);
    EXPECT_EQ(e.seq, 3u);
    EXPECT_EQ(e.worker, 2u);
    EXPECT_EQ(e.pirHash, 0x1111u);
    EXPECT_EQ(e.archHash, 0x2222u);
    EXPECT_EQ(e.inputsHash, 0x3333u);
    EXPECT_EQ(e.optionsHash, 0x4444u);
    EXPECT_TRUE(e.configHit);
    EXPECT_FALSE(e.resultHit);
    EXPECT_EQ(e.resultHash, 0xdeadbeefcafef00dull);
    EXPECT_EQ(e.cycles, 1234u);
    EXPECT_EQ(e.outcome, "ok");
    EXPECT_EQ(e.source, "app:TPC-H Query 6/v0");
}

TEST(ServeJoblog, RejectsMalformedLogs)
{
    std::vector<JobLogEntry> log;
    std::string err;
    std::istringstream noHeader("job id=1 src=x\n");
    EXPECT_FALSE(readJobLog(noHeader, log, &err));
    std::istringstream badKey(
        "plast.joblog.v1\njob id=1 wat=2 src=x\n");
    EXPECT_FALSE(readJobLog(badKey, log, &err));
    std::istringstream noSrc("plast.joblog.v1\njob id=1 seq=0\n");
    EXPECT_FALSE(readJobLog(noSrc, log, &err));
}

TEST(ServeJoblog, TornFinalLineIsDroppedWithWarningNotError)
{
    // What a SIGKILLed --joblog-sync daemon leaves behind: complete
    // newline-terminated records, then at most one torn tail. The
    // prefix must parse; the tail must be dropped with a warning —
    // even when the cut happens to land where the line still parses
    // (src= is free-form, so a truncated source "parses" too).
    JobResult a, b;
    a.id = 1;
    a.seq = 1;
    a.source = "app:one";
    b.id = 2;
    b.seq = 2;
    b.source = "app:two with spaces";
    std::stringstream full;
    writeJobLogHeader(full);
    writeJobLogLine(full, a);
    writeJobLogLine(full, b);
    std::string text = full.str();

    // Every possible kill point inside the final record: cut the last
    // line at each byte (including mid-src and "parses anyway" cuts).
    size_t lastLineStart = text.rfind("job id=2");
    ASSERT_NE(lastLineStart, std::string::npos);
    for (size_t cut = lastLineStart + 1; cut < text.size(); ++cut) {
        std::istringstream torn(text.substr(0, cut));
        std::vector<JobLogEntry> log;
        std::string err, warn;
        ASSERT_TRUE(readJobLog(torn, log, &err, &warn))
            << "cut=" << cut << ": " << err;
        ASSERT_EQ(log.size(), 1u) << "cut=" << cut;
        EXPECT_EQ(log[0].id, 1u);
        EXPECT_FALSE(warn.empty()) << "cut=" << cut;
    }

    // The complete log still parses with no warning.
    std::istringstream clean(text);
    std::vector<JobLogEntry> log;
    std::string err, warn;
    ASSERT_TRUE(readJobLog(clean, log, &err, &warn)) << err;
    EXPECT_EQ(log.size(), 2u);
    EXPECT_TRUE(warn.empty()) << warn;
    EXPECT_EQ(log[1].source, "app:two with spaces");

    // A torn *first* record right after the header: zero entries,
    // still not an error.
    std::stringstream h;
    writeJobLogHeader(h);
    std::string headerOnly = h.str();
    std::istringstream tornFirst(headerOnly + "job id=9 se");
    log.clear();
    warn.clear();
    ASSERT_TRUE(readJobLog(tornFirst, log, &err, &warn)) << err;
    EXPECT_TRUE(log.empty());
    EXPECT_FALSE(warn.empty());
}

TEST(ServeReplay, ConcurrentRunReplaysSeriallyBitForBit)
{
    TrafficOptions t;
    t.seed = 21;
    t.uniques = 5;
    t.jobs = 20;
    std::vector<JobSpec> specs = makeTraffic(t);

    ServeOptions o;
    o.workers = 4;
    Server server(o);
    server.start();
    for (JobSpec &s : specs)
        server.submit(std::move(s));
    server.drain();

    std::stringstream ss;
    writeJobLog(ss, server.results());
    std::vector<JobLogEntry> log;
    std::string err;
    ASSERT_TRUE(readJobLog(ss, log, &err)) << err;
    ASSERT_EQ(log.size(), t.jobs);

    // Regenerate the identical traffic (seeded) and replay serially:
    // every outcome, result hash and result-cache hit flag must
    // reproduce — the concurrent run was deterministic.
    std::vector<JobSpec> fresh = makeTraffic(t);
    ReplayReport rep = replayLog(log, fresh, o);
    EXPECT_EQ(rep.jobs, t.jobs);
    EXPECT_TRUE(rep.ok());
    for (const ReplayMismatch &m : rep.mismatches)
        ADD_FAILURE() << "job " << m.id << " " << m.field
                      << ": logged " << m.logged << " replayed "
                      << m.replayed;
    EXPECT_EQ(rep.resultHits, t.jobs - t.uniques);
}

TEST(ServeReplay, SingleWorkerLogReplaysWithStrictConfigHits)
{
    TrafficOptions t;
    t.seed = 4;
    t.uniques = 4;
    t.jobs = 12;
    std::vector<JobSpec> specs = makeTraffic(t);

    ServeOptions o;
    o.workers = 1;
    Server server(o);
    server.start();
    for (JobSpec &s : specs)
        server.submit(std::move(s));
    server.drain();

    std::stringstream ss;
    writeJobLog(ss, server.results());
    std::vector<JobLogEntry> log;
    std::string err;
    ASSERT_TRUE(readJobLog(ss, log, &err)) << err;

    std::vector<JobSpec> fresh = makeTraffic(t);
    ReplayReport rep = replayLog(log, fresh, o,
                                 /*checkConfigHits=*/true);
    EXPECT_TRUE(rep.ok());
    for (const ReplayMismatch &m : rep.mismatches)
        ADD_FAILURE() << "job " << m.id << " " << m.field
                      << ": logged " << m.logged << " replayed "
                      << m.replayed;
}

TEST(ServeReplay, DetectsTamperedLogs)
{
    TrafficOptions t;
    t.seed = 5;
    t.uniques = 3;
    t.jobs = 6;
    std::vector<JobSpec> specs = makeTraffic(t);
    ServeOptions o;
    o.workers = 2;
    Server server(o);
    server.start();
    for (JobSpec &s : specs)
        server.submit(std::move(s));
    server.drain();

    std::stringstream ss;
    writeJobLog(ss, server.results());
    std::vector<JobLogEntry> log;
    std::string err;
    ASSERT_TRUE(readJobLog(ss, log, &err)) << err;
    log.back().resultHash ^= 1; // a single flipped bit must surface
    ReplayReport rep = replayLog(log, makeTraffic(t), o);
    EXPECT_FALSE(rep.ok());
}

// ---- daemon lifecycle -----------------------------------------------

TEST(ServeServer, SubmitAfterDrainIsRefused)
{
    ServeOptions o;
    o.workers = 1;
    Server server(o);
    server.start();
    server.drain();
    apps::AppInstance inst =
        apps::makeInnerProduct(apps::Scale::kTiny);
    JobSpec spec;
    spec.source = "late";
    spec.prog = inst.prog;
    spec.load = inst.load;
    EXPECT_EQ(server.submit(std::move(spec)), 0u);
    EXPECT_TRUE(server.results().empty());
}

TEST(ServeServer, ExportsServeMetricsNamespace)
{
    TrafficOptions t;
    t.uniques = 2;
    t.jobs = 6;
    std::vector<JobSpec> specs = makeTraffic(t);
    ServeOptions o;
    o.workers = 2;
    Server server(o);
    server.start();
    for (JobSpec &s : specs)
        server.submit(std::move(s));
    server.drain();

    MetricRegistry reg;
    server.exportMetrics(reg);
    EXPECT_EQ(reg.counterValue("serve.jobs.completed"), t.jobs);
    EXPECT_EQ(reg.counterValue("serve.jobs.submitted"), t.jobs);
    EXPECT_EQ(reg.counterValue("serve.workers"), 2u);
    EXPECT_EQ(reg.counterValue("serve.cache.result.hits"),
              t.jobs - t.uniques);
    EXPECT_EQ(reg.counterValue("serve.outcome.ok"), t.jobs);
    const Histogram *h = reg.findHistogram("serve.job.exec_us");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), t.jobs);
}

// ---- robustness: queue edge races -----------------------------------

TEST(ServeQueue, TryPushTimesOutWhenFullThenSucceeds)
{
    BoundedQueue<int> q(1);
    EXPECT_EQ(q.tryPush(1, 0), PushResult::kOk);
    EXPECT_EQ(q.tryPush(2, 1'000), PushResult::kTimedOut);
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_EQ(q.tryPush(3, 0), PushResult::kOk);
    q.close();
    EXPECT_EQ(q.tryPush(4, 0), PushResult::kClosed);
    EXPECT_EQ(q.pop().value(), 3); // close still drains
    EXPECT_EQ(q.pushed(), 2u);
}

TEST(ServeQueue, DrainWakesProducersBlockedOnFullQueue)
{
    BoundedQueue<int> q(2);
    ASSERT_TRUE(q.push(0));
    ASSERT_TRUE(q.push(1));
    constexpr int kProducers = 4;
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&q, p] {
            ASSERT_TRUE(q.push(100 + p)); // blocks: queue is full
        });
    }
    // drain() empties the queue and wakes every blocked producer; the
    // late pushes then proceed (two immediately, two as pops free
    // room) — nobody stays parked forever and nothing is lost.
    std::multiset<int> got;
    for (int v : q.drain())
        got.insert(v);
    EXPECT_EQ(got, (std::multiset<int>{0, 1}));
    std::multiset<int> late;
    for (int i = 0; i < kProducers; ++i)
        late.insert(q.pop().value());
    for (std::thread &t : producers)
        t.join();
    EXPECT_EQ(late, (std::multiset<int>{100, 101, 102, 103}));
    EXPECT_EQ(q.pushed(), 2u + kProducers);
}

TEST(ServeQueue, CloseConcurrentWithTryPushNeverLosesItems)
{
    // Hammer tryPush from several producers while close() lands in
    // the middle: every push either enqueued (kOk) or was refused
    // typed — and exactly the kOk items come out of pop().
    BoundedQueue<int> q(4);
    constexpr int kProducers = 4, kPerProducer = 64;
    std::atomic<int> accepted{0};
    std::atomic<int> drained{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                PushResult pr = q.tryPush(p * kPerProducer + i, 100);
                if (pr == PushResult::kOk)
                    accepted.fetch_add(1);
                else if (pr == PushResult::kClosed)
                    return;
            }
        });
    }
    std::thread consumer([&] {
        while (q.pop().has_value())
            drained.fetch_add(1); // empty optional: closed AND drained
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    q.close();
    for (std::thread &t : producers)
        t.join();
    consumer.join();
    EXPECT_EQ(drained.load(), accepted.load())
        << "every kOk item must come out exactly once";
    EXPECT_EQ(q.pushed(), static_cast<uint64_t>(accepted.load()));
}

// ---- robustness: cache abandonment + handoff ------------------------

TEST(ServeCache, AbandonedEntryWithoutWaitersIsErased)
{
    SingleFlightCache<int> cache(4);
    CacheKey k{1, 2, 3, 4};
    auto a1 = cache.acquire(k, [] { return nullptr; });
    EXPECT_FALSE(a1.hit);
    EXPECT_EQ(a1.value, nullptr);
    EXPECT_EQ(cache.stats().abandoned, 1u);
    EXPECT_EQ(cache.stats().size, 0u) << "abandoned placeholder leaked";
    // The key is rebuildable: the next acquire is a fresh miss.
    auto a2 =
        cache.acquire(k, [] { return std::make_shared<const int>(7); });
    EXPECT_FALSE(a2.hit);
    ASSERT_NE(a2.value, nullptr);
    EXPECT_EQ(*a2.value, 7);
    auto a3 = cache.acquire(k, [] {
        ADD_FAILURE() << "ready entry must not rebuild";
        return nullptr;
    });
    EXPECT_TRUE(a3.hit);
}

TEST(ServeCache, CancelledLeaderHandsOffToWaitingFollower)
{
    SingleFlightCache<int> cache(4);
    CacheKey k{9, 9, 9, 9};
    std::mutex mu;
    std::condition_variable cv;
    bool followerEngaged = false;
    std::atomic<int> built{0};

    std::thread leader([&] {
        auto a = cache.acquire(k, [&]() -> std::shared_ptr<const int> {
            // Hold the single-flight slot until the follower is (very
            // likely) parked on the pending entry, then abandon.
            std::unique_lock<std::mutex> lk(mu);
            cv.wait(lk, [&] { return followerEngaged; });
            lk.unlock();
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            return nullptr; // cancelled: never publish
        });
        EXPECT_EQ(a.value, nullptr);
        EXPECT_FALSE(a.hit);
    });
    std::thread follower([&] {
        {
            std::lock_guard<std::mutex> lk(mu);
            followerEngaged = true;
        }
        cv.notify_one();
        auto a = cache.acquire(k, [&] {
            built.fetch_add(1);
            return std::make_shared<const int>(42);
        });
        // Whether it waited on the leader (hit) or found the erased
        // placeholder (miss) is timing; the value must be its own.
        ASSERT_NE(a.value, nullptr);
        EXPECT_EQ(*a.value, 42);
    });
    leader.join();
    follower.join();
    EXPECT_EQ(built.load(), 1);
    EXPECT_EQ(cache.stats().abandoned, 1u);
    // The follower's build was published under the key.
    auto after = cache.acquire(k, [] {
        ADD_FAILURE() << "published value must be served";
        return nullptr;
    });
    EXPECT_TRUE(after.hit);
    ASSERT_NE(after.value, nullptr);
    EXPECT_EQ(*after.value, 42);
}

TEST(ServeCache, FollowerWithFiredTokenGivesUpWaiting)
{
    SingleFlightCache<int> cache(4);
    CacheKey k{5, 5, 5, 5};
    std::mutex mu;
    std::condition_variable cv;
    bool release = false;

    std::thread leader([&] {
        cache.acquire(k, [&]() -> std::shared_ptr<const int> {
            std::unique_lock<std::mutex> lk(mu);
            cv.wait(lk, [&] { return release; });
            return std::make_shared<const int>(1);
        });
    });
    // Give the leader time to claim the build slot.
    while (cache.stats().misses == 0)
        std::this_thread::yield();
    CancelToken tok;
    tok.requestCancel();
    auto a = cache.acquire(
        k,
        [&] {
            ADD_FAILURE() << "a gave-up follower must not build";
            return nullptr;
        },
        &tok);
    EXPECT_TRUE(a.gaveUp);
    EXPECT_EQ(a.value, nullptr);
    {
        std::lock_guard<std::mutex> lk(mu);
        release = true;
    }
    cv.notify_all();
    leader.join();
    // The leader's publish was unaffected by the deserter.
    auto after = cache.acquire(k, [] { return nullptr; });
    EXPECT_TRUE(after.hit);
    ASSERT_NE(after.value, nullptr);
    EXPECT_EQ(*after.value, 1);
}

// ---- robustness: deadlines + cancellation ---------------------------

namespace
{

JobSpec
tinyAppSpec(const char *source)
{
    apps::AppInstance inst = apps::makeInnerProduct(apps::Scale::kTiny);
    JobSpec spec;
    spec.source = source;
    spec.prog = inst.prog;
    spec.load = inst.load;
    return spec;
}

} // namespace

TEST(ServeCancel, PreCancelledTokenAbortsTypedBeforeFirstCycle)
{
    JobSpec spec = tinyAppSpec("pre-cancelled");
    Runner runner(spec.prog, spec.params);
    spec.load(runner);
    CancelToken tok;
    tok.requestCancel();
    runner.setCancelToken(&tok);
    Runner::Result res;
    Status st = runner.tryRun(res);
    EXPECT_EQ(st.code(), StatusCode::kCancelled);
    EXPECT_EQ(res.cycles, 0u) << "cancel must beat the first cycle";
}

TEST(ServeCancel, ExpiredDeadlineTokenAbortsTyped)
{
    JobSpec spec = tinyAppSpec("expired");
    Runner runner(spec.prog, spec.params);
    spec.load(runner);
    CancelToken tok;
    tok.setDeadlineUs(1); // epoch + 1us: long past
    runner.setCancelToken(&tok);
    Runner::Result res;
    Status st = runner.tryRun(res);
    EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
}

TEST(ServeCancel, CancelledJobNeverPoisonsTheResultCache)
{
    // A cancelled leader abandons its single-flight build; the same
    // key resubmitted healthy must produce the full correct outcome.
    ServeOptions o;
    Server server(o);
    JobSpec spec = tinyAppSpec("victim");
    Baseline base = runSerialBaseline(spec, o);

    CancelToken tok;
    tok.requestCancel();
    JobResult r1 = server.executeJob(spec, 0, &tok);
    ASSERT_NE(r1.outcome, nullptr);
    EXPECT_EQ(r1.outcome->outcome, "cancelled");
    EXPECT_FALSE(r1.resultHit);
    EXPECT_EQ(server.resultCacheStats().abandoned, 1u);

    JobResult r2 = server.executeJob(spec);
    expectMatchesBaseline(r2, base);
    EXPECT_FALSE(r2.resultHit)
        << "the abandoned build must not have been published";
    JobResult r3 = server.executeJob(spec);
    EXPECT_TRUE(r3.resultHit) << "healthy rebuild must be cached";
    expectMatchesBaseline(r3, base);
}

TEST(ServeCancel, CancelQueuedJobProducesTypedRecordAndCounters)
{
    ServeOptions o;
    o.workers = 1;
    Server server(o); // not started: jobs stay queued
    JobSpec healthy = tinyAppSpec("healthy");
    Baseline base = runSerialBaseline(healthy, o);
    uint64_t id1 = server.submit(std::move(healthy));
    uint64_t id2 = server.submit(tinyAppSpec("doomed"));
    ASSERT_NE(id1, 0u);
    ASSERT_NE(id2, 0u);
    EXPECT_TRUE(server.cancelJob(id2));
    EXPECT_FALSE(server.cancelJob(9999));
    server.start();
    server.drain();

    std::vector<JobResult> results = server.results();
    ASSERT_EQ(results.size(), 2u);
    ASSERT_EQ(results[0].id, id1);
    expectMatchesBaseline(results[0], base);
    EXPECT_TRUE(results[0].executed);
    ASSERT_NE(results[1].outcome, nullptr);
    EXPECT_EQ(results[1].outcome->outcome, "cancelled");
    EXPECT_FALSE(results[1].executed);
    EXPECT_FALSE(server.cancelJob(id2)) << "finished job still cancellable?";
    EXPECT_EQ(server.robustness().cancelled, 1u);
}

TEST(ServeDeadline, QueuedExpiryIsTypedAndHealthyJobsAreExact)
{
    ServeOptions o;
    o.workers = 2;
    Server server(o); // not started yet
    JobSpec healthy = tinyAppSpec("healthy");
    Baseline base = runSerialBaseline(healthy, o);

    JobSpec doomed = tinyAppSpec("doomed");
    doomed.deadlineMs = 1;
    uint64_t idDoomed = server.submit(std::move(doomed));
    uint64_t idHealthy = server.submit(std::move(healthy));
    ASSERT_NE(idDoomed, 0u);
    ASSERT_NE(idHealthy, 0u);
    // Let the 1ms budget die while the job is still queued.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    server.start();
    server.drain();

    std::vector<JobResult> results = server.results();
    ASSERT_EQ(results.size(), 2u);
    const JobResult &rd = results[0].id == idDoomed ? results[0]
                                                    : results[1];
    const JobResult &rh = results[0].id == idDoomed ? results[1]
                                                    : results[0];
    ASSERT_NE(rd.outcome, nullptr);
    EXPECT_EQ(rd.outcome->outcome, "deadline-exceeded");
    EXPECT_FALSE(rd.executed);
    // The worker that skipped the dead job is alive and exact.
    expectMatchesBaseline(rh, base);
    EXPECT_EQ(server.robustness().deadlineMisses, 1u);
    MetricRegistry reg;
    server.exportMetrics(reg);
    EXPECT_EQ(reg.counterValue("serve.jobs.deadline_misses"), 1u);
    EXPECT_EQ(reg.counterValue("serve.jobs.executed"), 1u);
}

// ---- robustness: admission control ----------------------------------

TEST(ServeShed, FullQueueShedsTypedInsteadOfBlocking)
{
    ServeOptions o;
    o.workers = 1;
    o.queueDepth = 1;
    o.submitWaitUs = 1'000; // 1ms bounded wait, then shed
    Server server(o);       // not started: the queue stays full
    uint64_t id1 = server.submit(tinyAppSpec("first"));
    uint64_t id2 = server.submit(tinyAppSpec("second"));
    uint64_t id3 = server.submit(tinyAppSpec("third"));
    ASSERT_NE(id1, 0u);
    ASSERT_NE(id2, 0u);
    ASSERT_NE(id3, 0u);

    std::vector<JobResult> early = server.results();
    ASSERT_EQ(early.size(), 2u) << "two typed shed records expected";
    for (const JobResult &r : early) {
        ASSERT_NE(r.outcome, nullptr);
        EXPECT_EQ(r.outcome->outcome, "shed");
        EXPECT_FALSE(r.executed);
        EXPECT_GE(r.seq, 1ull << 62) << "aux seq band expected";
    }
    EXPECT_EQ(server.robustness().shed, 2u);

    server.start();
    server.drain();
    std::vector<JobResult> all = server.results();
    ASSERT_EQ(all.size(), 3u);
    for (const JobResult &r : all) {
        ASSERT_NE(r.outcome, nullptr);
        EXPECT_EQ(r.outcome->outcome, r.id == id1 ? "ok" : "shed")
            << "job " << r.id;
    }
    MetricRegistry reg;
    server.exportMetrics(reg);
    EXPECT_EQ(reg.counterValue("serve.jobs.shed"), 2u);
    EXPECT_EQ(reg.counterValue("serve.jobs.executed"), 1u);
}

TEST(ServeShed, DepthPolicySpendsDepthOnUnknownCostOnly)
{
    // shedCostUs > 0: past the depth threshold only jobs whose key is
    // KNOWN to be expensive shed; unknown keys are admitted (the cost
    // model has never seen them, so shedding them would starve new
    // tenants). shedCostUs == 0 degrades to pure depth shedding.
    ServeOptions o;
    o.workers = 1;
    o.queueDepth = 8;
    o.shedDepth = 1;
    o.shedCostUs = 1'000'000'000; // nothing is that expensive yet
    {
        Server server(o); // never started: the queue only deepens
        ASSERT_NE(server.submit(tinyAppSpec("a")), 0u);
        ASSERT_NE(server.submit(tinyAppSpec("b")), 0u);
        ASSERT_NE(server.submit(tinyAppSpec("c")), 0u);
        EXPECT_EQ(server.robustness().shed, 0u)
            << "unknown-cost keys must be admitted past the depth";
    }
    o.shedCostUs = 0; // depth-only policy
    Server server(o);
    ASSERT_NE(server.submit(tinyAppSpec("a")), 0u); // depth 0: admitted
    ASSERT_NE(server.submit(tinyAppSpec("b")), 0u); // depth 1: shed
    EXPECT_EQ(server.robustness().shed, 1u);
    server.start();
    server.drain();
    std::vector<JobResult> all = server.results();
    ASSERT_EQ(all.size(), 2u);
    for (const JobResult &r : all)
        ASSERT_NE(r.outcome, nullptr) << "every job typed";
}

TEST(ServeBreaker, OpensAfterRepeatedCompileFailuresThenProbes)
{
    // An uncompilable (program, arch) pair for the breaker tenant.
    apps::AppInstance inst = apps::makeGemm(apps::Scale::kTiny);
    JobSpec bad;
    bad.prog = inst.prog;
    bad.load = inst.load;
    bad.tenant = "noisy";
    bool found = false;
    for (uint32_t dim : {2u, 1u}) {
        ArchParams tight;
        tight.gridCols = dim;
        tight.gridRows = dim;
        tight.numAgs = 2;
        Runner probe(bad.prog, tight, SimOptions{});
        if (!probe.tryCompile().ok()) {
            bad.params = tight;
            found = true;
            break;
        }
    }
    ASSERT_TRUE(found);

    ServeOptions o;
    o.workers = 1;
    o.resultCache = false;
    o.breakerThreshold = 2;
    o.breakerProbeEvery = 3;
    Server server(o);
    server.start();
    auto submitAndWait = [&](JobSpec s, size_t expectTotal) {
        server.submit(std::move(s));
        while (server.results().size() < expectTotal)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    };
    bad.source = "bad-1";
    submitAndWait(bad, 1);
    bad.source = "bad-2";
    submitAndWait(bad, 2); // 2 consecutive failures: breaker opens
    bad.source = "bad-3";
    submitAndWait(bad, 3); // fast-failed (no execution)
    bad.source = "bad-4";
    submitAndWait(bad, 4); // fast-failed
    bad.source = "bad-5";
    submitAndWait(bad, 5); // 3rd rejection candidate = admitted probe

    // An innocent tenant is never affected.
    JobSpec good = tinyAppSpec("good");
    good.tenant = "quiet";
    submitAndWait(std::move(good), 6);
    server.drain();

    std::vector<JobResult> rs = server.results();
    ASSERT_EQ(rs.size(), 6u);
    auto outcomeOf = [&](const char *src) -> std::string {
        for (const JobResult &r : rs)
            if (r.source == src)
                return r.outcome ? r.outcome->outcome : "lost";
        return "<missing>";
    };
    EXPECT_EQ(outcomeOf("bad-1"), "compile-error");
    EXPECT_EQ(outcomeOf("bad-2"), "compile-error");
    EXPECT_EQ(outcomeOf("bad-3"), "circuit-open");
    EXPECT_EQ(outcomeOf("bad-4"), "circuit-open");
    EXPECT_EQ(outcomeOf("bad-5"), "compile-error")
        << "every Nth submission must probe the breaker";
    EXPECT_EQ(outcomeOf("good"), "ok")
        << "breakers are per-tenant";
    EXPECT_EQ(server.robustness().circuitOpen, 2u);
}

// ---- robustness: retries + resilient serving ------------------------

TEST(ServeRetry, TransientFaultsRetryCleanViaOneShotEvents)
{
    TrafficOptions t;
    t.seed = 11;
    t.uniques = 4;
    t.jobs = 8;
    t.faultEvery = 1; // every job faulted, distinct seeds
    t.faultRate = 20'000;
    t.includeHard = true;
    std::vector<JobSpec> specs = makeTraffic(t);

    ServeOptions o;
    o.workers = 1;
    o.maxRetries = 3;
    o.retryBackoffUs = 100;
    o.retryBackoffCapUs = 1'000;
    Server server(o);
    uint32_t totalRetries = 0;
    bool retriedToOk = false;
    for (JobSpec &s : specs) {
        JobResult r = server.executeJob(std::move(s));
        ASSERT_NE(r.outcome, nullptr);
        EXPECT_NE(r.outcome->outcome, "lost");
        totalRetries += r.retries;
        if (r.retries > 0 && r.outcome->outcome == "ok")
            retriedToOk = true;
    }
    EXPECT_GT(totalRetries, 0u)
        << "hard faults at this rate must trip at least one watchdog";
    EXPECT_TRUE(retriedToOk)
        << "a retry after the one-shot fault fired must run clean";
}

TEST(ServeResilient, EveryJobFinishesTypedUnderFaultTraffic)
{
    TrafficOptions t;
    t.seed = 13;
    t.uniques = 4;
    t.jobs = 16;
    t.faultEvery = 2;
    t.faultRate = 20'000;
    t.includeHard = true;
    std::vector<JobSpec> specs = makeTraffic(t);

    ServeOptions o;
    o.workers = 4;
    o.resilient = true;
    std::map<std::string, Baseline> baselines;
    for (const JobSpec &s : specs) {
        if (s.faultSeed == 0 && baselines.count(s.source) == 0)
            baselines[s.source] = runSerialBaseline(s, o);
    }

    Server server(o);
    server.start();
    for (JobSpec &s : specs)
        server.submit(std::move(s));
    server.drain();

    std::vector<JobResult> results = server.results();
    ASSERT_EQ(results.size(), t.jobs);
    uint64_t tallyRetries = 0;
    for (const JobResult &r : results) {
        ASSERT_NE(r.outcome, nullptr) << r.source;
        EXPECT_NE(r.outcome->outcome, "lost") << r.source;
        tallyRetries += r.retries;
        if (baselines.count(r.source)) {
            // Healthy jobs under a resilient server stay bit-exact.
            EXPECT_EQ(r.outcome->outcome, baselines[r.source].outcome)
                << r.source;
            EXPECT_EQ(r.outcome->argOuts, baselines[r.source].argOuts)
                << r.source;
            EXPECT_EQ(r.outcome->cycles, baselines[r.source].cycles)
                << r.source;
        } else {
            // Faulted jobs: typed terminal classification only.
            EXPECT_TRUE(r.outcome->outcome == "ok" ||
                        r.outcome->outcome == "recovered" ||
                        r.outcome->outcome == "silent-corruption" ||
                        r.outcome->outcome == "watchdog" ||
                        r.outcome->outcome == "livelock" ||
                        r.outcome->outcome == "deadlock" ||
                        r.outcome->outcome == "uncorrectable" ||
                        r.outcome->outcome == "max-cycles")
                << r.source << ": " << r.outcome->outcome;
        }
    }
    EXPECT_EQ(server.robustness().retries, tallyRetries)
        << "the retry counter must reconcile with the records";
}

// ---- robustness: job log v2 + replay accounting ---------------------

TEST(ServeJoblog, V2RoundTripsExecutedFlagAndRetries)
{
    JobResult shedded;
    shedded.id = 7;
    shedded.seq = (1ull << 62) + 1;
    shedded.source = "app:GEMM/v0";
    shedded.executed = false;
    auto so = std::make_shared<JobOutcome>();
    so->outcome = "shed";
    shedded.outcome = so;

    JobResult retried;
    retried.id = 8;
    retried.seq = 3;
    retried.source = "app:FFT/v0";
    retried.retries = 2;
    auto ro = std::make_shared<JobOutcome>();
    ro->outcome = "ok";
    ro->cycles = 1234;
    retried.outcome = ro;

    std::stringstream ss;
    writeJobLog(ss, {shedded, retried});
    std::vector<JobLogEntry> parsed;
    std::string err;
    ASSERT_TRUE(readJobLog(ss, parsed, &err)) << err;
    ASSERT_EQ(parsed.size(), 2u);
    // seq order: the executed record first, aux band after.
    EXPECT_EQ(parsed[0].id, 8u);
    EXPECT_TRUE(parsed[0].executed);
    EXPECT_EQ(parsed[0].retries, 2u);
    EXPECT_EQ(parsed[1].id, 7u);
    EXPECT_FALSE(parsed[1].executed);
    EXPECT_EQ(parsed[1].outcome, "shed");
}

TEST(ServeJoblog, V1LogsStillParseWithDefaults)
{
    std::stringstream ss;
    ss << "plast.joblog.v1\n"
       << "job id=1 seq=0 worker=0 pir=0000000000000001 "
          "arch=0000000000000002 inputs=0000000000000003 "
          "options=0000000000000004 chit=0 rhit=0 "
          "result=0000000000000005 cycles=10 outcome=ok src=x\n";
    std::vector<JobLogEntry> parsed;
    std::string err;
    ASSERT_TRUE(readJobLog(ss, parsed, &err)) << err;
    ASSERT_EQ(parsed.size(), 1u);
    EXPECT_TRUE(parsed[0].executed) << "v1 defaults to executed";
    EXPECT_EQ(parsed[0].retries, 0u);
}

TEST(ServeReplay, AccountsForRejectedAndAbortedJobs)
{
    // A run with shed + cancelled records must still replay clean:
    // the non-deterministic records are accounted (skipped), the
    // executed ones reproduce bit-for-bit.
    TrafficOptions t;
    t.seed = 17;
    t.uniques = 3;
    t.jobs = 12;
    std::vector<JobSpec> specs = makeTraffic(t);

    ServeOptions o;
    o.workers = 1;
    o.queueDepth = 2;
    o.submitWaitUs = 500;
    Server server(o); // not started while submitting: queue fills
    uint64_t cancelMe = 0;
    for (size_t j = 0; j < specs.size(); ++j) {
        uint64_t id = server.submit(std::move(specs[j]));
        if (j == 1)
            cancelMe = id;
    }
    ASSERT_NE(cancelMe, 0u);
    server.cancelJob(cancelMe);
    server.start();
    server.drain();

    std::vector<JobResult> results = server.results();
    ASSERT_EQ(results.size(), t.jobs);
    std::stringstream ss;
    writeJobLog(ss, results);
    std::vector<JobLogEntry> log;
    std::string err;
    ASSERT_TRUE(readJobLog(ss, log, &err)) << err;

    std::vector<JobSpec> fresh = makeTraffic(t);
    ReplayReport rep = replayLog(log, fresh, o);
    EXPECT_TRUE(rep.ok()) << rep.mismatches.size() << " mismatches";
    EXPECT_GT(rep.skipped, 0u) << "shed/cancelled must be accounted";
    EXPECT_EQ(rep.jobs + rep.skipped, t.jobs);
}
