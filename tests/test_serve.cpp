/**
 * @file
 * The serve-daemon concurrency battery: bounded-queue semantics,
 * single-flight cache behavior (hit/miss accounting, LRU eviction,
 * pending-entry pinning), FNV-1a hash-stability goldens tied to the
 * manifest layer, the N-worker stress test against a serial
 * single-Runner baseline (bit-identical argOuts / DRAM images /
 * architectural counters, duplicates served from cache), the shared
 * HostProfiler regression for overlapping runners, and the
 * deterministic job-log replay proof. The whole file also runs under
 * ThreadSanitizer in CI (the tsan job), so every test here is a race
 * detector, not just a correctness check.
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "base/profile.hpp"
#include "fuzz/diff.hpp"
#include "fuzz/harness.hpp"
#include "pir/serialize.hpp"
#include "runtime/manifest.hpp"
#include "runtime/runner.hpp"
#include "serve/joblog.hpp"
#include "serve/queue.hpp"
#include "serve/server.hpp"
#include "serve/traffic.hpp"

using namespace plast;
using namespace plast::serve;

// ---- bounded queue --------------------------------------------------

TEST(ServeQueue, FifoAndCloseDrains)
{
    BoundedQueue<int> q(8);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    EXPECT_TRUE(q.push(3));
    q.close();
    EXPECT_FALSE(q.push(4)); // rejected after close...
    EXPECT_EQ(q.pop().value(), 1); // ...but queued items still drain
    EXPECT_EQ(q.pop().value(), 2);
    EXPECT_EQ(q.pop().value(), 3);
    EXPECT_FALSE(q.pop().has_value());
    EXPECT_EQ(q.pushed(), 3u);
    EXPECT_EQ(q.highWater(), 3u);
}

TEST(ServeQueue, BackpressureBlocksProducerUntilPop)
{
    BoundedQueue<int> q(2);
    std::atomic<int> produced{0};
    std::thread producer([&] {
        for (int i = 0; i < 6; ++i) {
            ASSERT_TRUE(q.push(i));
            produced.fetch_add(1);
        }
    });
    // The producer can run at most `capacity` ahead of the consumer.
    std::vector<int> got;
    for (int i = 0; i < 6; ++i) {
        auto v = q.pop();
        ASSERT_TRUE(v.has_value());
        got.push_back(*v);
        EXPECT_LE(static_cast<size_t>(produced.load()),
                  got.size() + q.capacity());
    }
    producer.join();
    EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4, 5}));
    EXPECT_LE(q.highWater(), q.capacity());
}

TEST(ServeQueue, CloseWakesBlockedConsumers)
{
    BoundedQueue<int> q(4);
    std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
    q.close();
    consumer.join();
}

// ---- single-flight cache --------------------------------------------

namespace
{

CacheKey
key(uint64_t a, uint64_t b = 0)
{
    CacheKey k;
    k.pir = a;
    k.arch = b;
    return k;
}

} // namespace

TEST(ServeCache, MissThenHitAccounting)
{
    SingleFlightCache<int> c(4);
    auto a1 = c.acquire(key(1), [] { return std::make_shared<int>(7); });
    EXPECT_FALSE(a1.hit);
    EXPECT_EQ(*a1.value, 7);
    auto a2 = c.acquire(key(1), []() -> std::shared_ptr<const int> {
        ADD_FAILURE() << "builder ran on a hit";
        return nullptr;
    });
    EXPECT_TRUE(a2.hit);
    EXPECT_EQ(a2.value, a1.value); // same object, not a copy
    EXPECT_LT(a1.seq, a2.seq);
    CacheStats s = c.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.size, 1u);
}

TEST(ServeCache, DistinctKeysDoNotAlias)
{
    SingleFlightCache<int> c(8);
    // Any single differing component is a different address.
    CacheKey base{1, 2, 3, 4};
    std::vector<CacheKey> keys = {base,
                                  {9, 2, 3, 4},
                                  {1, 9, 3, 4},
                                  {1, 2, 9, 4},
                                  {1, 2, 3, 9}};
    for (size_t i = 0; i < keys.size(); ++i) {
        auto a = c.acquire(keys[i], [i] {
            return std::make_shared<int>(static_cast<int>(i));
        });
        EXPECT_FALSE(a.hit);
    }
    for (size_t i = 0; i < keys.size(); ++i)
        EXPECT_EQ(*c.peek(keys[i]), static_cast<int>(i));
    EXPECT_EQ(c.stats().misses, keys.size());
    EXPECT_EQ(c.stats().hits, 0u);
}

TEST(ServeCache, SingleFlightBuildsOnceUnderContention)
{
    SingleFlightCache<int> c(4);
    std::mutex mu;
    std::condition_variable cv;
    bool release = false;
    std::atomic<int> builds{0};

    auto slowBuild = [&]() -> std::shared_ptr<const int> {
        builds.fetch_add(1);
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] { return release; });
        return std::make_shared<int>(42);
    };

    constexpr int kThreads = 8;
    std::atomic<int> hits{0};
    std::vector<std::thread> ts;
    for (int i = 0; i < kThreads; ++i) {
        ts.emplace_back([&] {
            auto a = c.acquire(key(5), slowBuild);
            EXPECT_EQ(*a.value, 42);
            if (a.hit)
                hits.fetch_add(1);
        });
    }
    // Let every thread reach the cache, then release the one builder.
    while (c.stats().hits + c.stats().misses <
           static_cast<uint64_t>(kThreads))
        std::this_thread::yield();
    {
        std::lock_guard<std::mutex> lk(mu);
        release = true;
    }
    cv.notify_all();
    for (auto &t : ts)
        t.join();
    EXPECT_EQ(builds.load(), 1) << "duplicate keys must build once";
    EXPECT_EQ(hits.load(), kThreads - 1);
}

TEST(ServeCache, LruEvictionPrefersColdEntries)
{
    SingleFlightCache<int> c(2);
    auto mk = [](int v) {
        return [v] { return std::make_shared<int>(v); };
    };
    c.acquire(key(1), mk(1));
    c.acquire(key(2), mk(2));
    c.acquire(key(1), mk(1)); // touch 1: now 2 is coldest
    c.acquire(key(3), mk(3)); // evicts 2
    EXPECT_NE(c.peek(key(1)), nullptr);
    EXPECT_EQ(c.peek(key(2)), nullptr);
    EXPECT_NE(c.peek(key(3)), nullptr);
    EXPECT_EQ(c.stats().evictions, 1u);
    EXPECT_EQ(c.stats().size, 2u);
}

TEST(ServeCache, PendingEntriesArePinnedAgainstEviction)
{
    SingleFlightCache<int> c(1);
    std::mutex mu;
    std::condition_variable cv;
    bool release = false;

    std::thread builder([&] {
        auto a = c.acquire(key(1), [&]() -> std::shared_ptr<const int> {
            std::unique_lock<std::mutex> lk(mu);
            cv.wait(lk, [&] { return release; });
            return std::make_shared<int>(1);
        });
        EXPECT_EQ(*a.value, 1);
    });
    while (c.stats().misses == 0)
        std::this_thread::yield();
    // Over-capacity insert while the only other entry is pending: the
    // pending entry must survive (transient overflow, no deadlock).
    auto a2 = c.acquire(key(2), [] { return std::make_shared<int>(2); });
    EXPECT_FALSE(a2.hit);
    {
        std::lock_guard<std::mutex> lk(mu);
        release = true;
    }
    cv.notify_all();
    builder.join();
    EXPECT_NE(c.peek(key(1)), nullptr)
        << "pending entry was evicted mid-build";
}

TEST(ServeCache, AccessLogRecordsSequenceAndHits)
{
    SingleFlightCache<int> c(4);
    c.setLogging(true);
    auto mk = [](int v) {
        return [v] { return std::make_shared<int>(v); };
    };
    c.acquire(key(1), mk(1));
    c.acquire(key(2), mk(2));
    c.acquire(key(1), mk(1));
    auto log = c.accessLog();
    ASSERT_EQ(log.size(), 3u);
    EXPECT_EQ(log[0].seq, 0u);
    EXPECT_FALSE(log[0].hit);
    EXPECT_EQ(log[1].seq, 1u);
    EXPECT_FALSE(log[1].hit);
    EXPECT_EQ(log[2].seq, 2u);
    EXPECT_TRUE(log[2].hit);
    EXPECT_TRUE(log[2].key == key(1));
}

// ---- content addressing ---------------------------------------------

TEST(ServeHash, Fnv1a64GoldenVectors)
{
    // Published FNV-1a 64 test vectors: if these move, every cache
    // address and manifest hash in the repo moves with them.
    EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(ServeHash, CacheAddressEqualsManifestHashes)
{
    apps::AppInstance inst =
        apps::makeInnerProduct(apps::Scale::kTiny);
    ArchParams params;
    // The serve cache address and the run-manifest identity are the
    // same bytes: a manifest names exactly the cache entry that served
    // its job.
    Runner r(inst.prog, params, SimOptions{});
    inst.load(r);
    Runner::Result res;
    Status st = r.tryRun(res);
    ASSERT_TRUE(st.ok()) << st.message();
    RunManifest m = r.buildManifest(res, st);
    EXPECT_EQ(hashProgram(inst.prog), m.pirHash);
    EXPECT_EQ(hashArch(params), m.archHash);
    EXPECT_EQ(hashProgram(inst.prog),
              fnv1a64(pir::programToText(inst.prog)));
}

TEST(ServeHash, DistinctArchParamsNeverCollide)
{
    // Every parameter that archParamsText serializes must perturb the
    // hash: two different fabrics must never share a config-cache
    // entry (a collision would hand one tenant a config compiled for
    // another tenant's machine).
    std::vector<ArchParams> variants;
    variants.push_back(ArchParams::plasticineFinal());
    for (uint32_t c = 2; c <= 16; c += 2) {
        ArchParams p;
        p.gridCols = c;
        variants.push_back(p);
    }
    for (uint32_t rws = 2; rws <= 8; rws += 2) {
        ArchParams p;
        p.gridRows = rws;
        variants.push_back(p);
    }
    {
        ArchParams p;
        p.numAgs = 17;
        variants.push_back(p);
        p = ArchParams();
        p.vectorTracks = 2;
        variants.push_back(p);
        p = ArchParams();
        p.scalarTracks = 4;
        variants.push_back(p);
        p = ArchParams();
        p.controlTracks = 16;
        variants.push_back(p);
    }
    std::set<uint64_t> hashes;
    std::set<std::string> texts;
    for (const ArchParams &p : variants) {
        hashes.insert(hashArch(p));
        texts.insert(archParamsText(p));
    }
    // All texts are distinct by construction (gridRows=8 etc. equal the
    // default — dedupe via the text set first).
    EXPECT_EQ(hashes.size(), texts.size());
    EXPECT_GT(texts.size(), 10u);
}

TEST(ServeHash, OptionsHashSeparatesBudgetAndValidate)
{
    ServeOptions o;
    uint64_t base = hashOptions(o, 0);
    EXPECT_EQ(base, hashOptions(o, o.maxCycles))
        << "job budget 0 means the server default";
    EXPECT_NE(base, hashOptions(o, o.maxCycles + 1));
    ServeOptions v = o;
    v.validate = true;
    EXPECT_NE(base, hashOptions(v, 0));
    ServeOptions d = o;
    d.simOpts.mode = SimOptions::Mode::kDense;
    EXPECT_NE(base, hashOptions(d, 0));
}

TEST(ServeHash, InputsHashCoversEveryWord)
{
    std::map<pir::MemId, std::vector<Word>> a, b;
    a[0] = {1, 2, 3};
    b = a;
    EXPECT_EQ(hashInputs(a), hashInputs(b));
    b[0][2] = 4;
    EXPECT_NE(hashInputs(a), hashInputs(b));
    b = a;
    b[1] = {};
    EXPECT_NE(hashInputs(a), hashInputs(b))
        << "an extra (even empty) buffer is a different image";
}

// ---- the stress battery ---------------------------------------------

namespace
{

struct Baseline
{
    std::string outcome;
    Cycles cycles = 0;
    std::vector<std::deque<Word>> argOuts;
    std::vector<std::vector<Word>> dram;
    std::map<std::string, uint64_t> stats;
};

/** One job, fresh Runner, no caches — the serial reference. */
Baseline
runSerialBaseline(const JobSpec &spec, const ServeOptions &opts)
{
    Runner r(spec.prog, spec.params, opts.simOpts);
    if (spec.load)
        spec.load(r);
    else
        fuzz::fillInputs(r, spec.prog);
    Runner::Result res;
    Status st = r.tryRun(
        res, spec.maxCycles ? spec.maxCycles : opts.maxCycles);
    Baseline b;
    b.outcome = statusCodeName(st.code());
    b.cycles = res.cycles;
    b.argOuts = res.argOuts;
    b.stats = res.stats.all();
    b.dram.resize(spec.prog.mems.size());
    if (r.fabric()) {
        for (size_t m = 0; m < spec.prog.mems.size(); ++m) {
            if (spec.prog.mems[m].kind == pir::MemKind::kDram)
                b.dram[m] = r.readDram(static_cast<pir::MemId>(m));
        }
    }
    return b;
}

void
expectMatchesBaseline(const JobResult &r, const Baseline &b)
{
    ASSERT_NE(r.outcome, nullptr) << r.source;
    EXPECT_EQ(r.outcome->outcome, b.outcome) << r.source;
    EXPECT_EQ(r.outcome->cycles, b.cycles) << r.source;
    EXPECT_EQ(r.outcome->argOuts, b.argOuts) << r.source;
    EXPECT_EQ(r.outcome->dram, b.dram) << r.source;
}

} // namespace

TEST(ServeStress, WorkersMatchSerialBaselineWithResultCache)
{
    TrafficOptions t;
    t.seed = 7;
    t.uniques = 6;
    t.jobs = 30;
    std::vector<JobSpec> specs = makeTraffic(t);

    ServeOptions o;
    o.workers = 4;
    std::map<std::string, Baseline> baselines;
    for (size_t u = 0; u < t.uniques; ++u)
        baselines[specs[u].source] = runSerialBaseline(specs[u], o);

    Server server(o);
    server.start();
    for (JobSpec &s : specs)
        ASSERT_NE(server.submit(std::move(s)), 0u);
    server.drain();

    std::vector<JobResult> results = server.results();
    ASSERT_EQ(results.size(), t.jobs);
    for (const JobResult &r : results)
        expectMatchesBaseline(r, baselines.at(r.source));

    // Duplicate traffic must have been served from cache: exactly one
    // miss per unique identity (single-flight waiters count as hits).
    CacheStats rs = server.resultCacheStats();
    EXPECT_EQ(rs.misses, t.uniques);
    EXPECT_EQ(rs.hits, t.jobs - t.uniques);
    EXPECT_EQ(server.configCacheStats().misses, t.uniques);
}

TEST(ServeStress, WorkersMatchSerialBaselineWhenEveryJobExecutes)
{
    // resultCache off: every duplicate actually re-simulates on a
    // worker thread; bit-identical outputs now prove concurrent
    // execution (not memoization) is deterministic. Architectural
    // counters must match too.
    TrafficOptions t;
    t.seed = 11;
    t.uniques = 5;
    t.jobs = 20;
    std::vector<JobSpec> specs = makeTraffic(t);

    ServeOptions o;
    o.workers = 4;
    o.resultCache = false;
    std::map<std::string, Baseline> baselines;
    for (size_t u = 0; u < t.uniques; ++u)
        baselines[specs[u].source] = runSerialBaseline(specs[u], o);

    Server server(o);
    server.start();
    for (JobSpec &s : specs)
        ASSERT_NE(server.submit(std::move(s)), 0u);
    server.drain();

    std::vector<JobResult> results = server.results();
    ASSERT_EQ(results.size(), t.jobs);
    for (const JobResult &r : results) {
        const Baseline &b = baselines.at(r.source);
        expectMatchesBaseline(r, b);
        EXPECT_FALSE(r.resultHit);
        EXPECT_EQ(r.outcome->stats.all(), b.stats) << r.source;
    }
    // The config cache still collapses compilation: one compile per
    // unique program, every other job adopts the frozen config.
    CacheStats cs = server.configCacheStats();
    EXPECT_EQ(cs.misses, t.uniques);
    EXPECT_EQ(cs.hits, t.jobs - t.uniques);
}

TEST(ServeStress, DistinctBudgetHitsConfigCacheMissesResultCache)
{
    apps::AppInstance inst =
        apps::makeInnerProduct(apps::Scale::kTiny);
    ServeOptions o;
    Server server(o);

    JobSpec j1;
    j1.source = "a";
    j1.prog = inst.prog;
    j1.load = inst.load;
    j1.maxCycles = 1'000'000'000ull;
    JobSpec j2 = j1;
    j2.source = "b";
    j2.maxCycles = 1'000'000'001ull; // same semantics, distinct hash

    JobResult r1 = server.executeJob(j1);
    JobResult r2 = server.executeJob(j2);
    EXPECT_FALSE(r1.configHit);
    EXPECT_FALSE(r1.resultHit);
    EXPECT_TRUE(r2.configHit) << "same program+arch must not recompile";
    EXPECT_FALSE(r2.resultHit) << "different budget is a different job";
    ASSERT_NE(r1.outcome, nullptr);
    ASSERT_NE(r2.outcome, nullptr);
    EXPECT_EQ(r1.outcome->resultHash, r2.outcome->resultHash)
        << "ample budgets must not change the outcome";
    EXPECT_NE(r1.optionsHash, r2.optionsHash);
}

TEST(ServeStress, FailedCompilesAreNegativelyCached)
{
    // Find an (app, undersized fabric) pair that cannot compile; the
    // second submission must be refused from cache with the identical
    // typed outcome, without paying place-and-route again.
    apps::AppInstance inst = apps::makeGemm(apps::Scale::kTiny);
    JobSpec bad;
    bad.source = "bad";
    bad.prog = inst.prog;
    bad.load = inst.load;
    bool found = false;
    for (uint32_t dim : {2u, 1u}) {
        ArchParams tight;
        tight.gridCols = dim;
        tight.gridRows = dim;
        tight.numAgs = 2;
        Runner probe(bad.prog, tight, SimOptions{});
        if (!probe.tryCompile().ok()) {
            bad.params = tight;
            found = true;
            break;
        }
    }
    ASSERT_TRUE(found) << "GEMM compiled on a 1x1 fabric?";

    // resultCache off so the duplicate reaches the config cache (with
    // it on, a bit-identical failed job is simply a result-cache hit).
    ServeOptions o;
    o.resultCache = false;
    Server server(o);
    JobResult r1 = server.executeJob(bad);
    bad.source = "bad-again";
    JobResult r2 = server.executeJob(bad);
    ASSERT_NE(r1.outcome, nullptr);
    ASSERT_NE(r2.outcome, nullptr);
    EXPECT_NE(r1.outcome->outcome, "ok");
    EXPECT_FALSE(r1.configHit);
    EXPECT_TRUE(r2.configHit) << "failure was not negatively cached";
    EXPECT_EQ(r1.outcome->outcome, r2.outcome->outcome);
    EXPECT_EQ(r1.outcome->detail, r2.outcome->detail)
        << "cached failure must carry the original diagnosis";
    // Failures are jobs, not crashes: the server stays serviceable.
    apps::AppInstance ok = apps::makeInnerProduct(apps::Scale::kTiny);
    JobSpec good;
    good.source = "good";
    good.prog = ok.prog;
    good.load = ok.load;
    JobResult r3 = server.executeJob(good);
    ASSERT_NE(r3.outcome, nullptr);
    EXPECT_EQ(r3.outcome->outcome, "ok") << r3.outcome->detail;
}

TEST(ServeStress, EvictionUnderTinyCapacityStaysCorrect)
{
    TrafficOptions t;
    t.seed = 3;
    t.uniques = 4;
    t.jobs = 16;
    std::vector<JobSpec> specs = makeTraffic(t);

    ServeOptions o;
    o.workers = 2;
    o.configCacheCapacity = 2;
    o.resultCacheCapacity = 2;
    std::map<std::string, Baseline> baselines;
    for (size_t u = 0; u < t.uniques; ++u)
        baselines[specs[u].source] = runSerialBaseline(specs[u], o);

    Server server(o);
    server.start();
    for (JobSpec &s : specs)
        server.submit(std::move(s));
    server.drain();

    std::vector<JobResult> results = server.results();
    ASSERT_EQ(results.size(), t.jobs);
    for (const JobResult &r : results)
        expectMatchesBaseline(r, baselines.at(r.source));
    EXPECT_GT(server.resultCacheStats().evictions, 0u)
        << "4 uniques through capacity 2 must evict";
    EXPECT_LE(server.resultCacheStats().size,
              o.resultCacheCapacity + o.workers)
        << "steady-state size must respect capacity (+ pinned)";
}

TEST(ServeStress, CommittedCorpusMatchesSerialBaselineAcrossWorkers)
{
    // The literal multi-tenant scenario: every committed .pir seed
    // (clean, fault-injected, oversize) submitted three times across
    // the worker pool. Fault-injection lines are a fuzzer concern the
    // daemon ignores, so injected seeds run clean here — the contract
    // is only that every copy is bit-identical to the serial
    // single-Runner baseline, whatever its typed outcome.
    namespace fs = std::filesystem;
    std::vector<std::string> files;
    for (const auto &e : fs::directory_iterator(PLAST_CORPUS_DIR))
        if (e.path().extension() == ".pir")
            files.push_back(e.path().string());
    std::sort(files.begin(), files.end());
    ASSERT_FALSE(files.empty()) << "no corpus under " PLAST_CORPUS_DIR;

    std::vector<JobSpec> uniques;
    for (const std::string &f : files) {
        std::ifstream is(f);
        fuzz::FuzzCase c;
        std::string err;
        ASSERT_TRUE(fuzz::readSeedFile(is, c, &err)) << f << ": " << err;
        JobSpec s;
        s.source = "file:" + fs::path(f).filename().string();
        s.prog = std::move(c.prog);
        s.params = c.params;
        uniques.push_back(std::move(s));
    }

    ServeOptions o;
    o.workers = 4;
    std::map<std::string, Baseline> baselines;
    for (const JobSpec &s : uniques)
        baselines[s.source] = runSerialBaseline(s, o);

    std::vector<JobSpec> specs;
    for (int rep = 0; rep < 3; ++rep)
        for (const JobSpec &s : uniques)
            specs.push_back(s);

    Server server(o);
    server.start();
    for (JobSpec &s : specs)
        ASSERT_NE(server.submit(std::move(s)), 0u);
    server.drain();

    std::vector<JobResult> results = server.results();
    ASSERT_EQ(results.size(), uniques.size() * 3);
    for (const JobResult &r : results)
        expectMatchesBaseline(r, baselines.at(r.source));

    // Duplicates must be served from cache. Seeds that differ only in
    // their inject line share a content address, so count identities
    // by key tuple rather than by file.
    std::set<std::array<uint64_t, 4>> ids;
    for (const JobResult &r : results)
        ids.insert({r.pirHash, r.archHash, r.inputsHash, r.optionsHash});
    CacheStats rs = server.resultCacheStats();
    EXPECT_EQ(rs.misses, ids.size());
    EXPECT_EQ(rs.hits, results.size() - ids.size());
}

// ---- shared-profiler regression -------------------------------------

TEST(ServeProfiler, OverlappingRunnersProduceWellFormedMergedTrace)
{
    HostProfiler &prof = HostProfiler::instance();
    prof.clear();
    prof.setEnabled(true);

    std::atomic<uint32_t> tidA{0}, tidB{0};
    auto runOne = [](std::atomic<uint32_t> &tidOut) {
        tidOut = HostProfiler::currentTid();
        apps::AppInstance inst =
            apps::makeInnerProduct(apps::Scale::kTiny);
        Runner r(inst.prog, ArchParams{}, SimOptions{});
        inst.load(r);
        Runner::Result res;
        Status st = r.tryRun(res);
        ASSERT_TRUE(st.ok()) << st.message();
        // The per-job manifest must see only this thread's phases.
        RunManifest m = r.buildManifest(res, st);
        EXPECT_TRUE(m.timingsUs.count("host.compile"));
    };
    std::thread a([&] { runOne(tidA); });
    std::thread b([&] { runOne(tidB); });
    a.join();
    b.join();
    ASSERT_NE(tidA.load(), tidB.load());

    // Every span carries its recording thread; both threads are
    // present; per-thread windowed totals partition the global totals.
    std::set<uint32_t> tids;
    for (const HostProfiler::Span &s : prof.spans())
        tids.insert(s.tid);
    EXPECT_TRUE(tids.count(tidA.load()));
    EXPECT_TRUE(tids.count(tidB.load()));

    auto total = prof.totalsUs();
    auto ta = prof.totalsUs(tidA.load(), 0);
    auto tb = prof.totalsUs(tidB.load(), 0);
    ASSERT_TRUE(total.count("host.compile"));
    EXPECT_TRUE(ta.count("host.compile"));
    EXPECT_TRUE(tb.count("host.compile"));
    EXPECT_EQ(ta["host.compile"] + tb["host.compile"],
              total["host.compile"])
        << "thread windows must partition the shared timeline";

    // The merged Perfetto fragment stays well-formed: one named track
    // per thread, balanced braces, a tid on every span.
    std::ostringstream os;
    writeHostSpansJson(os, prof);
    std::string json = os.str();
    EXPECT_NE(json.find("host phases (thread " +
                        std::to_string(tidA.load()) + ")"),
              std::string::npos);
    EXPECT_NE(json.find("host phases (thread " +
                        std::to_string(tidB.load()) + ")"),
              std::string::npos);
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    size_t spanEvents = 0, tidFields = 0;
    for (size_t p = 0; (p = json.find("\"ph\":\"X\"", p)) !=
                       std::string::npos;
         ++p)
        ++spanEvents;
    for (size_t p = 0;
         (p = json.find("\"tid\":", p)) != std::string::npos; ++p)
        ++tidFields;
    EXPECT_EQ(spanEvents, prof.spans().size());
    EXPECT_GE(tidFields, spanEvents)
        << "every complete event names its thread track";

    prof.clear();
}

// ---- job log + deterministic replay ---------------------------------

TEST(ServeJoblog, RoundTripsEveryFieldIncludingSpacedSources)
{
    auto out = std::make_shared<JobOutcome>();
    out->outcome = "ok";
    out->cycles = 1234;
    out->resultHash = 0xdeadbeefcafef00dull;
    JobResult r;
    r.id = 7;
    r.seq = 3;
    r.worker = 2;
    r.pirHash = 0x1111;
    r.archHash = 0x2222;
    r.inputsHash = 0x3333;
    r.optionsHash = 0x4444;
    r.configHit = true;
    r.resultHit = false;
    r.source = "app:TPC-H Query 6/v0"; // spaces are legal in sources
    r.outcome = out;

    std::stringstream ss;
    writeJobLog(ss, {r});
    std::vector<JobLogEntry> log;
    std::string err;
    ASSERT_TRUE(readJobLog(ss, log, &err)) << err;
    ASSERT_EQ(log.size(), 1u);
    const JobLogEntry &e = log[0];
    EXPECT_EQ(e.id, 7u);
    EXPECT_EQ(e.seq, 3u);
    EXPECT_EQ(e.worker, 2u);
    EXPECT_EQ(e.pirHash, 0x1111u);
    EXPECT_EQ(e.archHash, 0x2222u);
    EXPECT_EQ(e.inputsHash, 0x3333u);
    EXPECT_EQ(e.optionsHash, 0x4444u);
    EXPECT_TRUE(e.configHit);
    EXPECT_FALSE(e.resultHit);
    EXPECT_EQ(e.resultHash, 0xdeadbeefcafef00dull);
    EXPECT_EQ(e.cycles, 1234u);
    EXPECT_EQ(e.outcome, "ok");
    EXPECT_EQ(e.source, "app:TPC-H Query 6/v0");
}

TEST(ServeJoblog, RejectsMalformedLogs)
{
    std::vector<JobLogEntry> log;
    std::string err;
    std::istringstream noHeader("job id=1 src=x\n");
    EXPECT_FALSE(readJobLog(noHeader, log, &err));
    std::istringstream badKey(
        "plast.joblog.v1\njob id=1 wat=2 src=x\n");
    EXPECT_FALSE(readJobLog(badKey, log, &err));
    std::istringstream noSrc("plast.joblog.v1\njob id=1 seq=0\n");
    EXPECT_FALSE(readJobLog(noSrc, log, &err));
}

TEST(ServeReplay, ConcurrentRunReplaysSeriallyBitForBit)
{
    TrafficOptions t;
    t.seed = 21;
    t.uniques = 5;
    t.jobs = 20;
    std::vector<JobSpec> specs = makeTraffic(t);

    ServeOptions o;
    o.workers = 4;
    Server server(o);
    server.start();
    for (JobSpec &s : specs)
        server.submit(std::move(s));
    server.drain();

    std::stringstream ss;
    writeJobLog(ss, server.results());
    std::vector<JobLogEntry> log;
    std::string err;
    ASSERT_TRUE(readJobLog(ss, log, &err)) << err;
    ASSERT_EQ(log.size(), t.jobs);

    // Regenerate the identical traffic (seeded) and replay serially:
    // every outcome, result hash and result-cache hit flag must
    // reproduce — the concurrent run was deterministic.
    std::vector<JobSpec> fresh = makeTraffic(t);
    ReplayReport rep = replayLog(log, fresh, o);
    EXPECT_EQ(rep.jobs, t.jobs);
    EXPECT_TRUE(rep.ok());
    for (const ReplayMismatch &m : rep.mismatches)
        ADD_FAILURE() << "job " << m.id << " " << m.field
                      << ": logged " << m.logged << " replayed "
                      << m.replayed;
    EXPECT_EQ(rep.resultHits, t.jobs - t.uniques);
}

TEST(ServeReplay, SingleWorkerLogReplaysWithStrictConfigHits)
{
    TrafficOptions t;
    t.seed = 4;
    t.uniques = 4;
    t.jobs = 12;
    std::vector<JobSpec> specs = makeTraffic(t);

    ServeOptions o;
    o.workers = 1;
    Server server(o);
    server.start();
    for (JobSpec &s : specs)
        server.submit(std::move(s));
    server.drain();

    std::stringstream ss;
    writeJobLog(ss, server.results());
    std::vector<JobLogEntry> log;
    std::string err;
    ASSERT_TRUE(readJobLog(ss, log, &err)) << err;

    std::vector<JobSpec> fresh = makeTraffic(t);
    ReplayReport rep = replayLog(log, fresh, o,
                                 /*checkConfigHits=*/true);
    EXPECT_TRUE(rep.ok());
    for (const ReplayMismatch &m : rep.mismatches)
        ADD_FAILURE() << "job " << m.id << " " << m.field
                      << ": logged " << m.logged << " replayed "
                      << m.replayed;
}

TEST(ServeReplay, DetectsTamperedLogs)
{
    TrafficOptions t;
    t.seed = 5;
    t.uniques = 3;
    t.jobs = 6;
    std::vector<JobSpec> specs = makeTraffic(t);
    ServeOptions o;
    o.workers = 2;
    Server server(o);
    server.start();
    for (JobSpec &s : specs)
        server.submit(std::move(s));
    server.drain();

    std::stringstream ss;
    writeJobLog(ss, server.results());
    std::vector<JobLogEntry> log;
    std::string err;
    ASSERT_TRUE(readJobLog(ss, log, &err)) << err;
    log.back().resultHash ^= 1; // a single flipped bit must surface
    ReplayReport rep = replayLog(log, makeTraffic(t), o);
    EXPECT_FALSE(rep.ok());
}

// ---- daemon lifecycle -----------------------------------------------

TEST(ServeServer, SubmitAfterDrainIsRefused)
{
    ServeOptions o;
    o.workers = 1;
    Server server(o);
    server.start();
    server.drain();
    apps::AppInstance inst =
        apps::makeInnerProduct(apps::Scale::kTiny);
    JobSpec spec;
    spec.source = "late";
    spec.prog = inst.prog;
    spec.load = inst.load;
    EXPECT_EQ(server.submit(std::move(spec)), 0u);
    EXPECT_TRUE(server.results().empty());
}

TEST(ServeServer, ExportsServeMetricsNamespace)
{
    TrafficOptions t;
    t.uniques = 2;
    t.jobs = 6;
    std::vector<JobSpec> specs = makeTraffic(t);
    ServeOptions o;
    o.workers = 2;
    Server server(o);
    server.start();
    for (JobSpec &s : specs)
        server.submit(std::move(s));
    server.drain();

    MetricRegistry reg;
    server.exportMetrics(reg);
    EXPECT_EQ(reg.counterValue("serve.jobs.completed"), t.jobs);
    EXPECT_EQ(reg.counterValue("serve.jobs.submitted"), t.jobs);
    EXPECT_EQ(reg.counterValue("serve.workers"), 2u);
    EXPECT_EQ(reg.counterValue("serve.cache.result.hits"),
              t.jobs - t.uniques);
    EXPECT_EQ(reg.counterValue("serve.outcome.ok"), t.jobs);
    const Histogram *h = reg.findHistogram("serve.job.exec_us");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), t.jobs);
}
