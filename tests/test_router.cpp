/** @file Switch-network router: negotiated congestion must rip up and
 *  converge where one-shot routing thrashes, stay deterministic, never
 *  lose to the greedy baseline on hops, and keep mapping benchmarks on
 *  fabrics with fewer tracks than the greedy router can handle. */

#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "base/rng.hpp"
#include "compiler/mapper.hpp"
#include "compiler/router.hpp"

using namespace plast;
using namespace plast::compiler;

namespace
{

RouterGrid
uniformGrid(int cols, int rows, uint32_t tracks)
{
    RouterGrid g;
    g.cols = cols;
    g.rows = rows;
    g.vectorTracks = tracks;
    g.scalarTracks = tracks;
    g.controlTracks = tracks;
    return g;
}

RouteOutcome
route(std::vector<RouterNet> &nets, const RouterGrid &grid,
      RouterMode mode, uint32_t maxRounds = 24)
{
    RouterOptions opts;
    opts.mode = mode;
    opts.maxRounds = maxRounds;
    return routeNets(nets, grid, opts);
}

MapResult
compileApp(const apps::AppSpec &spec, const ArchParams &params,
           RouterMode mode)
{
    apps::AppInstance app = spec.make(apps::Scale::kTiny);
    CompileOptions opts;
    opts.router = mode;
    return compileProgram(app.prog, params, {}, opts);
}

} // namespace

TEST(Router, RipUpResolvesContention)
{
    // 5x2 switch mesh, one track per link. Both nets want the row-0
    // shortest path: the first round oversubscribes links (1,0)-(2,0)
    // and (2,0)-(3,0), so convergence REQUIRES at least one rip-up
    // round that detours one net through row 1.
    RouterGrid grid = uniformGrid(5, 2, 1);
    std::vector<RouterNet> nets;
    nets.push_back({{0, 0}, {4, 0}, NetKind::kVector, 1});
    nets.push_back({{1, 0}, {3, 0}, NetKind::kVector, 2});

    RouteOutcome out = route(nets, grid, RouterMode::kNegotiated);
    ASSERT_TRUE(out.routed);
    EXPECT_GE(out.rounds, 2u) << "contended start must trigger rip-up";
    EXPECT_EQ(out.overusedLinks, 0u);
    // Direct path (4) + detoured path (4), whichever net detours.
    EXPECT_EQ(out.totalHops, 8u);
    EXPECT_EQ(nets[0].hops + nets[1].hops, 8u);
}

TEST(Router, ReportsHotspotsWhenInfeasible)
{
    // Two single-track nets over the mesh's only row-0 edge: no
    // assignment exists, so the router must exhaust its rounds and
    // name the oversubscribed link instead of looping forever.
    RouterGrid grid = uniformGrid(2, 1, 1);
    std::vector<RouterNet> nets;
    nets.push_back({{0, 0}, {1, 0}, NetKind::kVector, 1});
    nets.push_back({{0, 0}, {1, 0}, NetKind::kVector, 2});

    RouteOutcome out = route(nets, grid, RouterMode::kNegotiated, 6);
    EXPECT_FALSE(out.routed);
    EXPECT_EQ(out.rounds, 6u);
    EXPECT_GE(out.overusedLinks, 1u);
    ASSERT_FALSE(out.hotspots.empty());
    EXPECT_EQ(out.hotspots[0].capacity, 1u);
    EXPECT_GE(out.hotspots[0].demand, 2u);
}

TEST(Router, MulticastGroupSharesTracks)
{
    // A 1-track fabric cannot carry two unicast nets out of the same
    // edge, but a multicast group forks the bus inside switches: the
    // shared prefix counts once.
    RouterGrid grid = uniformGrid(3, 1, 1);
    std::vector<RouterNet> fanout;
    fanout.push_back({{0, 0}, {1, 0}, NetKind::kVector, 7});
    fanout.push_back({{0, 0}, {2, 0}, NetKind::kVector, 7});
    RouteOutcome out = route(fanout, grid, RouterMode::kNegotiated);
    ASSERT_TRUE(out.routed);
    EXPECT_EQ(fanout[0].hops, 1u);
    EXPECT_EQ(fanout[1].hops, 2u);
    // Tree links claimed once: 2, not 3.
    EXPECT_EQ(out.linkLoad[static_cast<int>(NetKind::kVector)], 2u);

    std::vector<RouterNet> unicast;
    unicast.push_back({{0, 0}, {1, 0}, NetKind::kVector, 1});
    unicast.push_back({{0, 0}, {2, 0}, NetKind::kVector, 2});
    EXPECT_FALSE(
        route(unicast, grid, RouterMode::kNegotiated, 6).routed);
}

TEST(Router, DeterministicAcrossRuns)
{
    // A congested random workload must route identically when re-run
    // on identical inputs: paths come from cost order, not iteration
    // luck.
    RouterGrid grid = uniformGrid(8, 8, 2);
    Rng rng(0xC0FFEE);
    std::vector<RouterNet> a;
    for (uint32_t i = 0; i < 48; ++i) {
        RouterNet n;
        n.src = {static_cast<int>(rng.nextBounded(8)),
                 static_cast<int>(rng.nextBounded(8))};
        n.dst = {static_cast<int>(rng.nextBounded(8)),
                 static_cast<int>(rng.nextBounded(8))};
        n.kind = static_cast<NetKind>(rng.nextBounded(3));
        n.group = 100 + i;
        a.push_back(n);
    }
    std::vector<RouterNet> b = a;

    RouteOutcome oa = route(a, grid, RouterMode::kNegotiated);
    RouteOutcome ob = route(b, grid, RouterMode::kNegotiated);
    ASSERT_TRUE(oa.routed);
    EXPECT_EQ(oa.rounds, ob.rounds);
    EXPECT_EQ(oa.totalHops, ob.totalHops);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].hops, b[i].hops) << "net " << i;
}

TEST(Router, NegotiatedNeverWorseThanGreedyOnBenchmarks)
{
    // Per-terminal searches seeded from the whole multicast tree make
    // every uncongested route source-shortest, so on fabrics where the
    // greedy router succeeds the negotiated one may not spend a single
    // extra hop.
    ArchParams params = ArchParams::plasticineFinal();
    for (const auto &spec : apps::allApps()) {
        MapResult g = compileApp(spec, params, RouterMode::kGreedy);
        MapResult n = compileApp(spec, params, RouterMode::kNegotiated);
        ASSERT_TRUE(g.report.ok) << spec.name << ": " << g.report.error;
        ASSERT_TRUE(n.report.ok) << spec.name << ": " << n.report.error;
        EXPECT_LE(n.report.routedHops, g.report.routedHops) << spec.name;
        EXPECT_GE(n.report.diag.routeRounds, 1u) << spec.name;
    }
}

TEST(Router, ReducedTrackSweepOnlyNegotiatedMaps)
{
    // Starve the switch fabric of tracks and sweep the benchmarks.
    // The negotiated router must dominate: wherever greedy maps,
    // negotiated maps too, and at least one (app, tracks) point must
    // exist where ONLY rip-up-and-reroute (plus placement restarts)
    // finds a legal map — the never-fail machinery earning its keep.
    int onlyNegotiated = 0;
    int greedyWins = 0;
    for (uint32_t vec = 2; vec >= 1; --vec) {
        ArchParams params = ArchParams::plasticineFinal();
        params.vectorTracks = vec;
        params.scalarTracks = 2 * vec;
        for (const auto &spec : apps::allApps()) {
            MapResult g = compileApp(spec, params, RouterMode::kGreedy);
            MapResult n =
                compileApp(spec, params, RouterMode::kNegotiated);
            if (g.report.ok && !n.report.ok)
                ++greedyWins;
            if (!g.report.ok && n.report.ok)
                ++onlyNegotiated;
            if (!n.report.ok) {
                // Failures still come out diagnosed, never silent.
                EXPECT_FALSE(n.report.diag.binding.empty())
                    << spec.name;
            }
        }
    }
    EXPECT_EQ(greedyWins, 0)
        << "negotiated router lost a design the greedy router mapped";
    EXPECT_GE(onlyNegotiated, 1)
        << "expected a starved-track design only the negotiated "
           "router can map";
}
