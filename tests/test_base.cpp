/** @file Unit tests for base utilities: formatting, stats, RNG, types. */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "base/logging.hpp"
#include "base/rng.hpp"
#include "base/stats.hpp"
#include "base/types.hpp"

using namespace plast;

TEST(Strfmt, FormatsLikePrintf)
{
    EXPECT_EQ(strfmt("x=%d", 42), "x=42");
    EXPECT_EQ(strfmt("%s-%03u", "pcu", 7u), "pcu-007");
    EXPECT_EQ(strfmt("%.2f", 3.14159), "3.14");
    EXPECT_EQ(strfmt("plain"), "plain");
}

TEST(Strfmt, LongStringsDoNotTruncate)
{
    std::string big(5000, 'a');
    EXPECT_EQ(strfmt("%s", big.c_str()).size(), 5000u);
}

TEST(StatSet, AddAndGet)
{
    StatSet s;
    EXPECT_EQ(s.get("missing"), 0u);
    s.add("a.x");
    s.add("a.x", 4);
    EXPECT_EQ(s.get("a.x"), 5u);
    s.set("a.x", 2);
    EXPECT_EQ(s.get("a.x"), 2u);
    EXPECT_TRUE(s.has("a.x"));
    EXPECT_FALSE(s.has("a.y"));
}

TEST(StatSet, SumPrefixOnlyMatchesPrefix)
{
    StatSet s;
    s.set("pcu00.laneOps", 10);
    s.set("pcu01.laneOps", 20);
    s.set("pmu00.reads", 100);
    EXPECT_EQ(s.sumPrefix("pcu"), 30u);
    EXPECT_EQ(s.sumPrefix("pmu"), 100u);
    EXPECT_EQ(s.sumPrefix("ag"), 0u);
}

TEST(StatSet, DumpContainsEveryCounter)
{
    StatSet s;
    s.set("alpha", 1);
    s.set("beta", 2);
    std::ostringstream os;
    s.dump(os);
    EXPECT_NE(os.str().find("alpha = 1"), std::string::npos);
    EXPECT_NE(os.str().find("beta = 2"), std::string::npos);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng r(7);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        uint64_t v = r.nextBounded(13);
        EXPECT_LT(v, 13u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 13u); // all residues hit
}

TEST(Rng, FloatRange)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        float f = r.nextFloat(-2.0f, 3.0f);
        EXPECT_GE(f, -2.0f);
        EXPECT_LT(f, 3.0f);
    }
}

TEST(Types, FloatWordRoundTrip)
{
    for (float f : {0.0f, 1.0f, -1.5f, 3.14159f, 1e30f, -1e-30f})
        EXPECT_EQ(wordToFloat(floatToWord(f)), f);
}

TEST(Types, IntWordRoundTrip)
{
    for (int32_t v : {0, 1, -1, 42, -123456, INT32_MAX, INT32_MIN})
        EXPECT_EQ(wordToInt(intToWord(v)), v);
}

TEST(Types, VecBroadcastSetsMask)
{
    Vec v = Vec::broadcast(7, 16);
    EXPECT_EQ(v.mask, 0xffffu);
    EXPECT_EQ(v.popcount(), 16u);
    for (uint32_t l = 0; l < 16; ++l)
        EXPECT_EQ(v.lane[l], 7u);
    v.clearValid(3);
    EXPECT_FALSE(v.valid(3));
    EXPECT_EQ(v.popcount(), 15u);
    v.setValid(3);
    EXPECT_TRUE(v.valid(3));
}

TEST(Types, VecBroadcast32Lanes)
{
    Vec v = Vec::broadcast(1, 32);
    EXPECT_EQ(v.mask, 0xffffffffu);
}
