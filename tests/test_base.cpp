/** @file Unit tests for base utilities: formatting, stats, RNG, types. */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "base/logging.hpp"
#include "base/rng.hpp"
#include "base/stats.hpp"
#include "base/types.hpp"

using namespace plast;

TEST(Strfmt, FormatsLikePrintf)
{
    EXPECT_EQ(strfmt("x=%d", 42), "x=42");
    EXPECT_EQ(strfmt("%s-%03u", "pcu", 7u), "pcu-007");
    EXPECT_EQ(strfmt("%.2f", 3.14159), "3.14");
    EXPECT_EQ(strfmt("plain"), "plain");
}

TEST(Strfmt, LongStringsDoNotTruncate)
{
    std::string big(5000, 'a');
    EXPECT_EQ(strfmt("%s", big.c_str()).size(), 5000u);
}

TEST(StatSet, AddAndGet)
{
    StatSet s;
    EXPECT_EQ(s.get("missing"), 0u);
    s.add("a.x");
    s.add("a.x", 4);
    EXPECT_EQ(s.get("a.x"), 5u);
    s.set("a.x", 2);
    EXPECT_EQ(s.get("a.x"), 2u);
    EXPECT_TRUE(s.has("a.x"));
    EXPECT_FALSE(s.has("a.y"));
}

TEST(StatSet, SumPrefixOnlyMatchesPrefix)
{
    StatSet s;
    s.set("pcu00.laneOps", 10);
    s.set("pcu01.laneOps", 20);
    s.set("pmu00.reads", 100);
    EXPECT_EQ(s.sumPrefix("pcu"), 30u);
    EXPECT_EQ(s.sumPrefix("pmu"), 100u);
    EXPECT_EQ(s.sumPrefix("ag"), 0u);
}

TEST(StatSet, DumpContainsEveryCounter)
{
    StatSet s;
    s.set("alpha", 1);
    s.set("beta", 2);
    std::ostringstream os;
    s.dump(os);
    EXPECT_NE(os.str().find("alpha = 1"), std::string::npos);
    EXPECT_NE(os.str().find("beta = 2"), std::string::npos);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng r(7);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        uint64_t v = r.nextBounded(13);
        EXPECT_LT(v, 13u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 13u); // all residues hit
}

TEST(Rng, GoldenFirstSixteenValues)
{
    // The canonical splitmix64 sequence for seed 1. Pins the
    // generator bit-for-bit across platforms: every fuzz seed file and
    // synthesized workload depends on these exact draws.
    static const uint64_t kGolden[16] = {
        0x910a2dec89025cc1ull, 0xbeeb8da1658eec67ull,
        0xf893a2eefb32555eull, 0x71c18690ee42c90bull,
        0x71bb54d8d101b5b9ull, 0xc34d0bff90150280ull,
        0xe099ec6cd7363ca5ull, 0x85e7bb0f12278575ull,
        0x491718de357e3da8ull, 0xcb435c8e74616796ull,
        0x6775dc7701564f61ull, 0x9afcd44d14cf8bfeull,
        0x7476cf8a4baa5dc0ull, 0x87b341d690d7a28aull,
        0x6f9b6dae6f4c57a8ull, 0x2ac2ce17a5794a3bull,
    };
    Rng r(1);
    for (uint64_t want : kGolden)
        EXPECT_EQ(r.next(), want);
}

TEST(Rng, BoundedZeroReturnsZeroButAdvancesState)
{
    // nextBounded(0) must be safe (no % 0) yet still consume one draw
    // so call sequences stay aligned regardless of bound values.
    Rng a(5), b(5);
    EXPECT_EQ(a.nextBounded(0), 0u);
    b.next(); // consume the same draw
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BoundedOneIsAlwaysZero)
{
    Rng r(11);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.nextBounded(1), 0u);
}

TEST(Rng, BoundedMatchesPlainModulo)
{
    // Documented contract: plain modulo of next(), no rejection loop
    // (the bias of at most bound/2^64 is accepted for determinism).
    Rng a(21), b(21);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(a.nextBounded(97), b.next() % 97);
}

TEST(Rng, FloatRange)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        float f = r.nextFloat(-2.0f, 3.0f);
        EXPECT_GE(f, -2.0f);
        EXPECT_LT(f, 3.0f);
    }
}

TEST(Types, FloatWordRoundTrip)
{
    for (float f : {0.0f, 1.0f, -1.5f, 3.14159f, 1e30f, -1e-30f})
        EXPECT_EQ(wordToFloat(floatToWord(f)), f);
}

TEST(Types, IntWordRoundTrip)
{
    for (int32_t v : {0, 1, -1, 42, -123456, INT32_MAX, INT32_MIN})
        EXPECT_EQ(wordToInt(intToWord(v)), v);
}

TEST(Types, VecBroadcastSetsMask)
{
    Vec v = Vec::broadcast(7, 16);
    EXPECT_EQ(v.mask, 0xffffu);
    EXPECT_EQ(v.popcount(), 16u);
    for (uint32_t l = 0; l < 16; ++l)
        EXPECT_EQ(v.lane[l], 7u);
    v.clearValid(3);
    EXPECT_FALSE(v.valid(3));
    EXPECT_EQ(v.popcount(), 15u);
    v.setValid(3);
    EXPECT_TRUE(v.valid(3));
}

TEST(Types, VecBroadcast32Lanes)
{
    Vec v = Vec::broadcast(1, 32);
    EXPECT_EQ(v.mask, 0xffffffffu);
}
