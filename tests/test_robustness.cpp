/** @file Never-fail compilation: the feasibility pre-checker, capacity
 *  spilling, placement restarts and the diagnosed-error paths that
 *  replaced fatal aborts. Every way a user program can fail to map
 *  must come back as a structured CompileDiagnostics, and a spilled
 *  design must still validate bit-exactly. */

#include <gtest/gtest.h>

#include <sstream>

#include "apps/apps.hpp"
#include "compiler/mapper.hpp"
#include "compiler/precheck.hpp"
#include "compiler/vleaf.hpp"
#include "pir/builder.hpp"
#include "runtime/runner.hpp"

using namespace plast;
using namespace plast::pir;
using namespace plast::compiler;

namespace
{

/** A tiled integer reduction whose single SRAM tile (1024 words) is
 *  N-buffered to the hinted metapipe depth of 8 — 8 KB words of
 *  scratchpad demand that a shrunken PMU cannot hold at full depth
 *  but fits fine at depth 4. */
Program
spillProgram(MemId *dramOut = nullptr)
{
    Builder b("spill");
    const int64_t tiles = 16, tileWords = 1024;
    MemId a = b.dram("a", tiles * tileWords);
    int32_t out = b.argOut();
    NodeId root = b.outer("root", CtrlScheme::kSequential, {}, kNone);
    CtrId iT = b.ctr("iT", 0, tiles);
    NodeId mp = b.outer("mp", CtrlScheme::kMetapipe, {iT}, root,
                        /*depthHint=*/8);
    MemId buf = b.sram("buf", tileWords);
    ExprId base =
        b.imul(b.ctrE(iT), b.immI(static_cast<int32_t>(tileWords)));
    b.loadTile("load", mp, a, buf, base, /*rows=*/16, /*rowWords=*/64,
               /*dramRowStride=*/64);
    CtrId jB = b.ctr("jB", 0, tileWords / 16);
    CtrId j = b.ctr("j", 0, 16, 1, true);
    ExprId v = b.load(buf, b.ima(b.ctrE(jB), b.immI(16), b.ctrE(j)));
    b.compute("sum", mp, {jB, j}, {}, {},
              {Builder::fold(FuOp::kIAdd, v, jB, out)});
    if (dramOut)
        *dramOut = a;
    return b.finish(root);
}

/** Final architecture with the scratchpad shrunk to 4096 words: one
 *  tile fits 4x over, the hinted 8 buffers do not. */
ArchParams
smallScratchArch()
{
    ArchParams p = ArchParams::plasticineFinal();
    p.pmu.bankKilobytes = 1; // 16 banks x 1 KB = 4096 words
    return p;
}

} // namespace

// ---------------------------------------------------------------------
// Feasibility pre-check
// ---------------------------------------------------------------------

TEST(Precheck, AcceptsEveryBenchmark)
{
    ArchParams params = ArchParams::plasticineFinal();
    for (const auto &spec : apps::allApps()) {
        apps::AppInstance app = spec.make(apps::Scale::kTiny);
        CompileDiagnostics d = precheckProgram(app.prog, params);
        EXPECT_TRUE(d.feasible) << spec.name << ": " << d.binding;
        EXPECT_FALSE(d.checks.empty()) << spec.name;
    }
}

TEST(Precheck, RejectsOversizedDesignNamingTheBindingResource)
{
    // 32-way InnerProduct wants ~70 AGs / more PCUs than the chip has.
    apps::AppInstance app =
        apps::makeInnerProduct(apps::Scale::kTiny, 32);
    ArchParams params = ArchParams::plasticineFinal();
    CompileDiagnostics d = precheckProgram(app.prog, params);
    ASSERT_FALSE(d.feasible);
    ASSERT_FALSE(d.binding.empty());
    // The binding resource is the first check that came back over,
    // with demand/capacity numbers a caller can act on.
    bool found = false;
    for (const ResourceCheck &c : d.checks) {
        if (!c.over)
            continue;
        if (!found) {
            EXPECT_EQ(c.resource, d.binding);
            EXPECT_GT(c.demand, c.capacity);
        }
        found = true;
    }
    EXPECT_TRUE(found);

    // compileProgram surfaces the same verdict without running
    // placement: the report carries the pre-check's diagnostics.
    MapResult res = compileProgram(app.prog, params);
    EXPECT_FALSE(res.report.ok);
    EXPECT_EQ(res.report.diag.binding, d.binding);
    EXPECT_TRUE(res.report.diag.attempts.empty());
}

TEST(Precheck, AgreesWithTheFullPipelineWhenSkipped)
{
    // Cross-validation: a design the pre-check rejects must also fail
    // the full pipeline (the counting rules mirror unit construction).
    apps::AppInstance app =
        apps::makeInnerProduct(apps::Scale::kTiny, 32);
    CompileOptions opts;
    opts.runPrecheck = false;
    MapResult res = compileProgram(app.prog,
                                   ArchParams::plasticineFinal(), {},
                                   opts);
    EXPECT_FALSE(res.report.ok);
    EXPECT_FALSE(res.report.diag.binding.empty());
    EXPECT_FALSE(res.report.diag.feasible);
}

// ---------------------------------------------------------------------
// Capacity spilling
// ---------------------------------------------------------------------

TEST(Spill, ShrinksNBufferDepthUntilTheTileFits)
{
    Program prog = spillProgram();
    MapResult res = compileProgram(prog, smallScratchArch());
    ASSERT_TRUE(res.report.ok) << res.report.error;
    ASSERT_FALSE(res.report.diag.spills.empty());
    const SpillAction &sp = res.report.diag.spills.front();
    EXPECT_EQ(sp.memory, "buf");
    EXPECT_EQ(sp.node, "mp");
    EXPECT_EQ(sp.fromBufs, 8u);
    EXPECT_EQ(sp.toBufs, 4u); // 4096 words / 1024-word tile
    // The placed PMU really runs at the spilled depth.
    bool found = false;
    for (const PmuCfg &p : res.fabric.pmus) {
        if (p.used && p.name.find("buf") != std::string::npos) {
            EXPECT_LE(p.scratch.numBufs, 4);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Spill, DisallowedSpillFailsDiagnosed)
{
    Program prog = spillProgram();
    CompileOptions opts;
    opts.allowSpill = false;
    MapResult res =
        compileProgram(prog, smallScratchArch(), {}, opts);
    ASSERT_FALSE(res.report.ok);
    EXPECT_EQ(res.report.diag.binding, "pmu.scratchpad");
    EXPECT_NE(res.report.error.find("buf"), std::string::npos)
        << res.report.error;
}

TEST(Spill, SpilledDesignValidatesBitExact)
{
    // The metapipe throttle that accompanies the depth shrink keeps
    // generations from overrunning each other: the shrunken-fabric run
    // must match the reference evaluator bit for bit.
    MemId a = kNone;
    Program prog = spillProgram(&a);
    Runner r(prog, smallScratchArch());
    std::vector<Word> &dram = r.dram(a);
    for (size_t i = 0; i < dram.size(); ++i)
        dram[i] = intToWord(static_cast<int32_t>(i % 97) - 48);
    ASSERT_TRUE(r.tryCompile().ok());
    ASSERT_FALSE(r.report().diag.spills.empty());
    Runner::Result out;
    Status st = r.tryRunValidated(out);
    EXPECT_TRUE(st.ok()) << st.toString();
    EXPECT_EQ(out.argOuts.at(0).size(), 16u) << "one sum per tile";
}

// ---------------------------------------------------------------------
// Diagnosed front-end errors (formerly fatal aborts)
// ---------------------------------------------------------------------

TEST(DiagnosedErrors, FoldLevelOutsideTheLeafIsACompileError)
{
    // Corrupt a valid program post-validation: retarget the fold at an
    // outer counter the leaf does not own. The mapper (which trusts
    // its caller and skips validateProgram) must diagnose, not abort.
    Program prog = spillProgram();
    NodeId leaf = kNone;
    CtrId outerCtr = kNone;
    for (size_t n = 0; n < prog.nodes.size(); ++n) {
        if (prog.nodes[n].kind == NodeKind::kCompute)
            leaf = static_cast<NodeId>(n);
        if (prog.nodes[n].kind == NodeKind::kOuter &&
            !prog.nodes[n].ctrs.empty())
            outerCtr = prog.nodes[n].ctrs[0]; // the metapipe's iT
    }
    ASSERT_NE(leaf, kNone);
    ASSERT_NE(outerCtr, kNone);
    prog.nodes[leaf].sinks[0].foldLevel = outerCtr;

    MapResult res =
        compileProgram(prog, ArchParams::plasticineFinal());
    ASSERT_FALSE(res.report.ok);
    EXPECT_EQ(res.report.diag.binding, "pcu.pipeline");
    EXPECT_NE(res.report.error.find("fold level"), std::string::npos)
        << res.report.error;

    // Through the runner the same program is caught even earlier, by
    // structural validation — still a Status, never a fatal.
    Runner r(prog, ArchParams::plasticineFinal());
    Status st = r.tryCompile();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kValidationError);
}

TEST(DiagnosedErrors, ScalarExprUnmappedCounter)
{
    Builder b("neg");
    CtrId c = b.ctr("outer", 0, 4);
    ExprId e = b.ctrE(c);
    uint8_t reg = 0;
    std::string err;
    lowerScalarExpr(b.program(), e, {}, {}, reg, &err);
    EXPECT_NE(err.find("unmapped counter 'outer'"), std::string::npos)
        << err;
}

TEST(DiagnosedErrors, ScalarExprTooDeep)
{
    Builder b("neg");
    ExprId e = b.immI(1);
    for (uint32_t i = 0; i < kMaxLanes + 8; ++i)
        e = b.iadd(e, b.immI(1));
    uint8_t reg = 0;
    std::string err;
    lowerScalarExpr(b.program(), e, {}, {}, reg, &err);
    EXPECT_NE(err.find("too deep"), std::string::npos) << err;
}

TEST(DiagnosedErrors, ScalarExprNonAddressKind)
{
    Builder b("neg");
    MemId m = b.sram("m", 64);
    ExprId e = b.load(m, b.immI(0));
    uint8_t reg = 0;
    std::string err;
    lowerScalarExpr(b.program(), e, {}, {}, reg, &err);
    EXPECT_NE(err.find("may only use counters"), std::string::npos)
        << err;
}

TEST(DiagnosedErrors, TryCompileNamesTheBindingResource)
{
    apps::AppInstance app =
        apps::makeInnerProduct(apps::Scale::kTiny, 32);
    Runner r(app.prog);
    Status st = r.tryCompile();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kCompileError);
    const CompileDiagnostics &d = r.mapResult().report.diag;
    EXPECT_FALSE(d.binding.empty());
    // The status message embeds the structured summary so callers
    // that only log strings still see the binding resource.
    EXPECT_NE(st.message().find(d.binding), std::string::npos)
        << st.message();
}

// ---------------------------------------------------------------------
// Placement restarts + diagnostics plumbing
// ---------------------------------------------------------------------

TEST(Restarts, UnroutableFabricExhaustsThePlacementBudget)
{
    // Find a benchmark the negotiated router cannot map on a one-track
    // fabric (the reduced-track sweep guarantees congestion); its
    // failure must record every placement attempt and the surviving
    // hotspots.
    ArchParams params = ArchParams::plasticineFinal();
    params.vectorTracks = 1;
    params.scalarTracks = 1;
    CompileOptions opts;
    opts.maxPlacementAttempts = 3;
    bool sawFailure = false;
    for (const auto &spec : apps::allApps()) {
        apps::AppInstance app = spec.make(apps::Scale::kTiny);
        MapResult res = compileProgram(app.prog, params, {}, opts);
        if (res.report.ok)
            continue;
        sawFailure = true;
        const CompileDiagnostics &d = res.report.diag;
        EXPECT_EQ(d.binding, "routing") << spec.name;
        EXPECT_EQ(d.placementAttempts, 3u) << spec.name;
        EXPECT_EQ(d.attempts.size(), 3u) << spec.name;
        EXPECT_FALSE(d.hotspots.empty()) << spec.name;
        break;
    }
    EXPECT_TRUE(sawFailure)
        << "every benchmark mapped on a one-track fabric?";
}

TEST(Restarts, SameSeedSameMap)
{
    apps::AppInstance app = apps::makeGemm(apps::Scale::kTiny);
    CompileOptions opts;
    opts.seed = 42;
    MapResult a = compileProgram(app.prog,
                                 ArchParams::plasticineFinal(), {},
                                 opts);
    MapResult b = compileProgram(app.prog,
                                 ArchParams::plasticineFinal(), {},
                                 opts);
    ASSERT_TRUE(a.report.ok);
    EXPECT_EQ(a.report.routedHops, b.report.routedHops);
    EXPECT_EQ(a.report.diag.placementAttempts,
              b.report.diag.placementAttempts);
    ASSERT_EQ(a.fabric.pcus.size(), b.fabric.pcus.size());
    for (size_t i = 0; i < a.fabric.pcus.size(); ++i)
        EXPECT_EQ(a.fabric.pcus[i].name, b.fabric.pcus[i].name);
}

TEST(Diagnostics, JsonDumpCarriesTheSchema)
{
    apps::AppInstance app = apps::makeGemm(apps::Scale::kTiny);
    MapResult res =
        compileProgram(app.prog, ArchParams::plasticineFinal());
    ASSERT_TRUE(res.report.ok);
    std::ostringstream os;
    res.report.diag.dumpJson(os);
    const std::string j = os.str();
    for (const char *key :
         {"\"feasible\": true", "\"binding\"", "\"placementAttempts\"",
          "\"routeRounds\"", "\"routedHops\"", "\"vectorTrackUtil\"",
          "\"checks\"", "\"attempts\"", "\"hotspots\"", "\"spills\""})
        EXPECT_NE(j.find(key), std::string::npos) << key;
}
