/** @file Human-readable renderings: controller-tree dump, stage
 *  descriptions, and the full-fabric disassembly of a mapped
 *  benchmark. */

#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "arch/disasm.hpp"
#include "compiler/mapper.hpp"

using namespace plast;

TEST(Printers, ProgramDumpShowsTreeShape)
{
    setVerbose(false);
    apps::AppInstance app = apps::makeGemm(apps::Scale::kTiny);
    std::string dump = app.prog.dump();
    EXPECT_NE(dump.find("program GEMM"), std::string::npos);
    EXPECT_NE(dump.find("ijTiles [metapipe iT jT]"), std::string::npos);
    EXPECT_NE(dump.find("kTiles [metapipe kT]"), std::string::npos);
    EXPECT_NE(dump.find("compute mac0"), std::string::npos);
    EXPECT_NE(dump.find("tile loadA"), std::string::npos);
}

TEST(Printers, StageDescribeCoversEveryKind)
{
    StageCfg map;
    map.op = FuOp::kFMA;
    map.a = Operand::ctr(1);
    map.b = Operand::immInt(5);
    map.c = Operand::scalarIn(2);
    map.dstReg = 3;
    EXPECT_EQ(map.describe(), "r3 = fma(c1, #5, si2)");

    StageCfg red;
    red.kind = StageKind::kReduceStep;
    red.op = FuOp::kFAdd;
    red.a = Operand::reg(0);
    red.reduceDist = 4;
    EXPECT_NE(red.describe().find("reduce.fadd dist=4"),
              std::string::npos);

    StageCfg acc;
    acc.kind = StageKind::kAccum;
    acc.op = FuOp::kIMax;
    acc.a = Operand::vectorIn(1);
    acc.accLevel = 2;
    EXPECT_NE(acc.describe().find("acc.imax lvl=2 (vi1)"),
              std::string::npos);
}

TEST(Printers, DisasmOfMappedBenchmarkIsComplete)
{
    setVerbose(false);
    apps::AppInstance app = apps::makeSmdv(apps::Scale::kTiny);
    compiler::MapResult res = compiler::compileProgram(
        app.prog, ArchParams::plasticineFinal());
    ASSERT_TRUE(res.report.ok);
    std::string text = disasmFabric(res.fabric);
    // The gather path must be visible end to end.
    EXPECT_NE(text.find("sparse-load"), std::string::npos);
    EXPECT_NE(text.find("rowDot"), std::string::npos);
    EXPECT_NE(text.find("reduce.fadd"), std::string::npos);
    EXPECT_NE(text.find("vec-linear"), std::string::npos);
    // Every used unit appears.
    size_t units = 0;
    for (const auto &p : res.fabric.pcus)
        units += p.used;
    for (const auto &p : res.fabric.pmus)
        units += p.used;
    for (const auto &a : res.fabric.ags)
        units += a.used;
    size_t mentions = 0;
    for (size_t pos = 0; (pos = text.find("\npcu", pos)) !=
                         std::string::npos;
         ++pos)
        ++mentions;
    EXPECT_GT(mentions, 0u);
    EXPECT_GE(units, mentions);
}
