/** @file Fault-injection & resilience subsystem: ECC correction on
 *  every benchmark, rollback from uncorrectable upsets, degraded
 *  re-mapping around hard faults, watchdog/livelock detection,
 *  checkpoint round trips, non-fatal Status paths and the campaign
 *  driver's no-unexplained-SDC invariant. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <sstream>

#include "apps/apps.hpp"
#include "base/logging.hpp"
#include "compiler/mapper.hpp"
#include "model/area.hpp"
#include "model/power.hpp"
#include "resilience/campaign.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/fault.hpp"
#include "resilience/recovery.hpp"
#include "runtime/bottleneck.hpp"
#include "runtime/runner.hpp"

using namespace plast;
using namespace plast::resilience;

namespace
{

apps::AppInstance
appByName(const std::string &name)
{
    for (const auto &s : apps::allApps()) {
        if (s.name == name)
            return s.make(apps::Scale::kTiny);
    }
    panic("no such app '%s'", name.c_str());
}

ArchParams
eccParams(bool on)
{
    ArchParams p = ArchParams::plasticineFinal();
    p.pmu.ecc = on;
    p.dram.ecc = on;
    return p;
}

uint32_t
firstUsedPcu(const FabricConfig &cfg)
{
    for (uint32_t i = 0; i < cfg.pcus.size(); ++i) {
        if (cfg.pcus[i].used)
            return i;
    }
    panic("no used PCU");
}

} // namespace

// ---- acceptance: ECC corrects single-bit upsets on all 13 apps ------

class EccAllApps : public ::testing::TestWithParam<int>
{
};

TEST_P(EccAllApps, SingleBitUpsetsAreCorrectedBitIdentically)
{
    setVerbose(false);
    const auto &spec = apps::allApps()[static_cast<size_t>(GetParam())];
    apps::AppInstance app = spec.make(apps::Scale::kTiny);
    ArchParams params = eccParams(true);

    // Fault-free horizon.
    Runner clean(app.prog, params);
    app.load(clean);
    Runner::Result ref;
    ASSERT_TRUE(clean.tryRun(ref).ok()) << spec.name;
    ASSERT_GT(ref.cycles, 0u);

    // ~8 single-bit upsets across scratchpads and DRAM bursts.
    Runner r(app.prog, params);
    app.load(r);
    ASSERT_TRUE(r.tryCompile().ok());
    FaultPlan plan = FaultPlan::random(
        0xecc0 + static_cast<uint64_t>(GetParam()),
        8.0e6 / static_cast<double>(ref.cycles), ref.cycles,
        r.mapResult().fabric, FaultMix::kProtected, false);
    ASSERT_FALSE(plan.empty()) << spec.name;
    for (auto &e : plan.events)
        e.bits = 1;

    FaultInjector inj(plan, /*dramEcc=*/true);
    r.setFaultInjector(&inj);
    Runner::Result out;
    Status st = r.tryRunValidated(out);
    EXPECT_TRUE(st.ok()) << spec.name << ": " << st.message();
    // Correction is in-line (scrub on read, fix on burst response):
    // the run must also be cycle-exact against the fault-free one.
    EXPECT_EQ(out.cycles, ref.cycles) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(AllApps, EccAllApps, ::testing::Range(0, 13),
                         [](const ::testing::TestParamInfo<int> &info) {
                             std::string n =
                                 apps::allApps()[static_cast<size_t>(
                                                     info.param)]
                                     .name;
                             for (char &ch : n) {
                                 if (!isalnum(
                                         static_cast<unsigned char>(ch)))
                                     ch = '_';
                             }
                             return n;
                         });

// ---- without ECC the same upsets corrupt silently -------------------

TEST(Resilience, NoEccScratchUpsetCorruptsSilently)
{
    setVerbose(false);
    apps::AppInstance app = appByName("GEMM");
    ArchParams params = eccParams(false);

    Runner clean(app.prog, params);
    app.load(clean);
    Runner::Result ref;
    ASSERT_TRUE(clean.tryRun(ref).ok());

    bool corrupted = false;
    for (uint64_t seed = 1; seed <= 10 && !corrupted; ++seed) {
        Runner r(app.prog, params);
        app.load(r);
        ASSERT_TRUE(r.tryCompile().ok());
        FaultPlan plan = FaultPlan::random(
            seed, 10.0e6 / static_cast<double>(ref.cycles), ref.cycles,
            r.mapResult().fabric, FaultMix::kProtected, false);
        for (auto &e : plan.events)
            e.bits = 1;
        FaultInjector inj(plan, /*dramEcc=*/false);
        r.setFaultInjector(&inj);
        Runner::Result out;
        Status st = r.tryRunValidated(out);
        if (st.code() == StatusCode::kMismatch)
            corrupted = true;
        else
            EXPECT_TRUE(st.ok()) << st.message();
    }
    EXPECT_TRUE(corrupted)
        << "10 seeded upset plans never corrupted an output";
}

// ---- DRAM ECC: correction and detect-retry --------------------------

TEST(Resilience, DramEccCorrectsAndRetries)
{
    setVerbose(false);
    apps::AppInstance app = appByName("InnerProduct");
    ArchParams params = eccParams(true);
    Runner r(app.prog, params);
    app.load(r);

    FaultPlan plan;
    for (uint32_t i = 0; i < 4; ++i) {
        FaultEvent e;
        e.kind = FaultKind::kDramResponse;
        e.cycle = 1;
        e.bits = i < 2 ? 1 : 2; // two correctable, two detect-retry
        e.bit = 5 + i;
        plan.events.push_back(e);
    }
    FaultInjector inj(plan, /*dramEcc=*/true);
    r.setFaultInjector(&inj);
    Runner::Result out;
    Status st = r.tryRunValidated(out);
    EXPECT_TRUE(st.ok()) << st.message();
    ASSERT_NE(r.fabric(), nullptr);
    EXPECT_GE(r.fabric()->mem().stats().dramCorrected, 1u);
    EXPECT_GE(r.fabric()->mem().stats().dramRetries, 1u);
    EXPECT_EQ(inj.firedCount(FaultKind::kDramResponse), 4u);
}

// ---- acceptance: hard PCU fault -> re-map -> correct completion -----

TEST(Resilience, HardPcuFaultRemapsOnInnerProduct)
{
    setVerbose(false);
    apps::AppInstance app = appByName("InnerProduct");
    ArchParams params = eccParams(true);
    Runner stage(app.prog, params);
    app.load(stage);
    ASSERT_TRUE(stage.tryCompile().ok());

    ResilientRunner rr(app.prog, params);
    rr.setInputs(stage.hostBuffers());
    ASSERT_TRUE(rr.runGolden().ok());

    FaultPlan plan;
    FaultEvent e;
    e.kind = FaultKind::kPcuStuck;
    e.cycle = rr.goldenCycles() / 3;
    e.unit = firstUsedPcu(stage.mapResult().fabric);
    plan.events.push_back(e);

    ResilienceReport rep = rr.run(plan);
    EXPECT_EQ(rep.cls, RunClass::kRecovered) << rep.detail;
    EXPECT_GE(rep.remaps, 1u);
    EXPECT_TRUE(rep.finalStatus.ok()) << rep.finalStatus.message();
}

TEST(Resilience, HardPcuFaultRemapsOnGemm)
{
    setVerbose(false);
    apps::AppInstance app = appByName("GEMM");
    ArchParams params = eccParams(true);
    Runner stage(app.prog, params);
    app.load(stage);
    ASSERT_TRUE(stage.tryCompile().ok());

    ResilientRunner rr(app.prog, params);
    rr.setInputs(stage.hostBuffers());
    ASSERT_TRUE(rr.runGolden().ok());

    FaultPlan plan;
    FaultEvent e;
    e.kind = FaultKind::kPcuStuck;
    e.cycle = rr.goldenCycles() / 2;
    e.unit = firstUsedPcu(stage.mapResult().fabric);
    plan.events.push_back(e);

    ResilienceReport rep = rr.run(plan);
    EXPECT_EQ(rep.cls, RunClass::kRecovered) << rep.detail;
    EXPECT_GE(rep.remaps, 1u);
    EXPECT_TRUE(rep.finalStatus.ok()) << rep.finalStatus.message();
}

// ---- uncorrectable (2-bit) scratch upset -> checkpoint rollback -----

TEST(Resilience, UncorrectableUpsetRollsBackToCheckpoint)
{
    setVerbose(false);
    apps::AppInstance app = appByName("GDA");
    ArchParams params = eccParams(true);
    Runner stage(app.prog, params);
    app.load(stage);
    ASSERT_TRUE(stage.tryCompile().ok());

    ResilientRunner rr(app.prog, params);
    rr.setInputs(stage.hostBuffers());
    ASSERT_TRUE(rr.runGolden().ok());

    bool rolledBack = false;
    for (uint64_t seed = 1; seed <= 12 && !rolledBack; ++seed) {
        FaultPlan plan = FaultPlan::random(
            seed, 4.0e6 / static_cast<double>(rr.goldenCycles()),
            rr.goldenCycles(), stage.mapResult().fabric,
            FaultMix::kProtected, false);
        // Keep only scratchpad events and make every one a double-bit
        // upset: detected-uncorrectable, recoverable only by rollback.
        std::vector<FaultEvent> scratch;
        for (auto ev : plan.events) {
            if (ev.kind == FaultKind::kPmuScratchFlip) {
                ev.bits = 2;
                scratch.push_back(ev);
            }
        }
        plan.events = std::move(scratch);
        if (plan.empty())
            continue;

        ResilienceReport rep = rr.run(plan);
        EXPECT_NE(rep.cls, RunClass::kSilentCorruption) << rep.detail;
        if (rep.rollbacks >= 1 &&
            rep.cls == RunClass::kRecovered) {
            rolledBack = true;
            EXPECT_TRUE(rep.finalStatus.ok());
        }
    }
    EXPECT_TRUE(rolledBack)
        << "no seeded double-bit plan exercised a rollback";
}

// ---- control-token loss: detected and recovered, never silent -------

TEST(Resilience, DroppedControlTokenIsNeverSilent)
{
    setVerbose(false);
    apps::AppInstance app = appByName("InnerProduct");
    ArchParams params = eccParams(true);
    Runner stage(app.prog, params);
    app.load(stage);
    ASSERT_TRUE(stage.tryCompile().ok());

    ResilientRunner rr(app.prog, params);
    rr.setInputs(stage.hostBuffers());
    ASSERT_TRUE(rr.runGolden().ok());
    const Cycles h = rr.goldenCycles();

    bool recovered = false;
    for (uint32_t unit = 0; unit < 6; ++unit) {
        for (Cycles cycle : {h / 4, h / 2, 3 * h / 4}) {
            FaultPlan plan;
            FaultEvent e;
            e.kind = FaultKind::kCtrlTokenDrop;
            e.cycle = cycle;
            e.unit = unit;
            plan.events.push_back(e);
            ResilienceReport rep = rr.run(plan);
            // A lost token may be harmless (empty stream at that
            // cycle) but must never corrupt or escape detection.
            EXPECT_NE(rep.cls, RunClass::kSilentCorruption)
                << rep.detail;
            EXPECT_TRUE(rep.finalStatus.ok())
                << rep.finalStatus.message();
            if (rep.cls == RunClass::kRecovered &&
                rep.rollbacks + rep.restarts >= 1)
                recovered = true;
        }
    }
    EXPECT_TRUE(recovered)
        << "no dropped token ever required detect-and-recover";
}

// ---- watchdog and livelock detectors --------------------------------

TEST(Resilience, WatchdogTripsOnFrozenUnit)
{
    setVerbose(false);
    apps::AppInstance app = appByName("InnerProduct");
    ArchParams params = eccParams(true);
    SimOptions so;
    so.mode = SimOptions::Mode::kDense;
    so.deadlockWindow = 50'000;
    so.watchdogCycles = 1'000;
    Runner r(app.prog, params, so);
    app.load(r);
    ASSERT_TRUE(r.tryCompile().ok());

    FaultPlan plan;
    FaultEvent e;
    e.kind = FaultKind::kPcuStuck;
    e.cycle = 100;
    e.unit = firstUsedPcu(r.mapResult().fabric);
    plan.events.push_back(e);
    FaultInjector inj(plan, true);
    r.setFaultInjector(&inj);

    Runner::Result out;
    Status st = r.tryRun(out);
    EXPECT_EQ(st.code(), StatusCode::kWatchdog) << st.message();
    EXPECT_NE(st.message().find("watchdog"), std::string::npos);
}

TEST(Resilience, LivelockTripsWhenRootStopsProgressing)
{
    setVerbose(false);
    apps::AppInstance app = appByName("InnerProduct");
    ArchParams params = eccParams(true);
    SimOptions so;
    so.mode = SimOptions::Mode::kDense;
    so.deadlockWindow = 50'000;
    so.livelockCycles = 1'500;
    Runner r(app.prog, params, so);
    app.load(r);
    ASSERT_TRUE(r.tryCompile().ok());

    FaultPlan plan;
    FaultEvent e;
    e.kind = FaultKind::kPcuStuck;
    e.cycle = 100;
    e.unit = firstUsedPcu(r.mapResult().fabric);
    plan.events.push_back(e);
    FaultInjector inj(plan, true);
    r.setFaultInjector(&inj);

    Runner::Result out;
    Status st = r.tryRun(out);
    EXPECT_EQ(st.code(), StatusCode::kLivelock) << st.message();
    EXPECT_NE(st.message().find("livelock"), std::string::npos);
}

// ---- deadlock post-mortem (BottleneckReport extension) --------------

TEST(Resilience, DeadlockReportBlamesFrozenUnit)
{
    setVerbose(false);
    apps::AppInstance app = appByName("InnerProduct");
    ArchParams params = eccParams(true);
    Runner r(app.prog, params);
    app.load(r);
    ASSERT_TRUE(r.tryCompile().ok());

    FaultPlan plan;
    FaultEvent e;
    e.kind = FaultKind::kPcuStuck;
    e.cycle = 200;
    e.unit = firstUsedPcu(r.mapResult().fabric);
    plan.events.push_back(e);
    FaultInjector inj(plan, true);
    r.setFaultInjector(&inj);

    Runner::Result out;
    Status st = r.tryRun(out);
    ASSERT_FALSE(st.ok());

    DeadlockReport rep = analyzeDeadlock(*r.fabric());
    EXPECT_NE(rep.verdict.find("hard-faulted"), std::string::npos)
        << rep.verdict;
    bool sawStuck = false;
    for (const auto &w : rep.waiting)
        sawStuck |= w.stuck;
    EXPECT_TRUE(sawStuck);
    std::string text = rep.render();
    EXPECT_NE(text.find("Deadlock report"), std::string::npos);
    EXPECT_NE(text.find("[STUCK]"), std::string::npos);
}

// ---- non-fatal Status paths -----------------------------------------

TEST(Resilience, StatusReplacesFatalPaths)
{
    setVerbose(false);
    apps::AppInstance app = appByName("InnerProduct");
    ArchParams params = eccParams(true);

    // Compile failure as data: mask out every PCU.
    {
        Runner r(app.prog, params);
        compiler::UnitMask mask;
        for (uint32_t i = 0; i < params.numPcus(); ++i)
            mask.pcus.push_back(i);
        r.setUnitMask(mask);
        Status st = r.tryCompile();
        EXPECT_EQ(st.code(), StatusCode::kCompileError);
        EXPECT_NE(st.message().find("masked as faulted"),
                  std::string::npos)
            << st.message();
    }

    // Deadlock as data: a frozen PCU with no watchdog configured.
    {
        Runner r(app.prog, params);
        app.load(r);
        ASSERT_TRUE(r.tryCompile().ok());
        FaultPlan plan;
        FaultEvent e;
        e.kind = FaultKind::kPcuStuck;
        e.cycle = 100;
        e.unit = firstUsedPcu(r.mapResult().fabric);
        plan.events.push_back(e);
        FaultInjector inj(plan, true);
        r.setFaultInjector(&inj);
        Runner::Result out;
        Status st = r.tryRun(out);
        EXPECT_EQ(st.code(), StatusCode::kDeadlock);
        EXPECT_NE(st.message().find("fabric deadlock"),
                  std::string::npos);
    }

    // Cycle-cap overrun as data.
    {
        Runner r(app.prog, params);
        app.load(r);
        Runner::Result out;
        Status st = r.tryRun(out, /*maxCycles=*/10);
        EXPECT_EQ(st.code(), StatusCode::kMaxCycles);
    }
}

// ---- degraded placement ---------------------------------------------

TEST(Resilience, MaskedUnitsAreNeverPlaced)
{
    setVerbose(false);
    apps::AppInstance app = appByName("GEMM");
    ArchParams params = eccParams(true);

    Runner base(app.prog, params);
    ASSERT_TRUE(base.tryCompile().ok());
    uint32_t victim = firstUsedPcu(base.mapResult().fabric);

    compiler::UnitMask mask;
    mask.pcus.push_back(victim);
    compiler::MapResult degraded =
        compiler::compileProgram(app.prog, params, mask);
    ASSERT_TRUE(degraded.report.ok) << degraded.report.error;
    EXPECT_FALSE(degraded.fabric.pcus[victim].used);
}

// ---- satellite: mid-run checkpoint -> fresh fabric -> bit-exact -----

class CheckpointRestore : public ::testing::TestWithParam<const char *>
{
};

TEST_P(CheckpointRestore, MidRunSnapshotResumesBitAndCycleExact)
{
    setVerbose(false);
    apps::AppInstance app = appByName(GetParam());
    ArchParams params = eccParams(true);

    Runner probe(app.prog, params);
    app.load(probe);
    Runner::Result ref;
    ASSERT_TRUE(probe.tryRun(ref).ok());

    SimOptions so;
    so.checkpointEvery = std::max<Cycles>(1, ref.cycles / 4);
    so.keepCheckpoints = 8;
    Runner r(app.prog, params, so);
    app.load(r);
    Runner::Result out;
    ASSERT_TRUE(r.tryRun(out).ok());
    EXPECT_EQ(out.cycles, ref.cycles)
        << "checkpointing must not perturb execution";

    Fabric *orig = r.mutableFabric();
    const auto &ring = orig->autoCheckpoints();
    ASSERT_GE(ring.size(), 2u);
    FabricCheckpoint cp = ring[ring.size() / 2];
    ASSERT_GT(cp.cycle, 0u);
    ASSERT_LT(cp.cycle, ref.cycles);

    // The tape carries the whole architectural state including the
    // DRAM image, so a fresh fabric needs no input staging at all.
    Fabric fresh(r.mapResult().fabric, so);
    ASSERT_TRUE(fresh.restoreCheckpoint(cp).ok());
    RunResult rr = fresh.runChecked();
    ASSERT_TRUE(rr.status.ok()) << rr.status.message();
    EXPECT_EQ(fresh.now(), orig->now());

    for (uint32_t s = 0; s < app.prog.numArgOuts; ++s)
        EXPECT_EQ(fresh.argOut(s), orig->argOut(s)) << "argOut " << s;
    // Whole DRAM image, bit for bit. (The raw state tapes are not
    // compared: restoreCheckpoint re-arms the scheduler wholesale, so
    // the observability ledgers count a few awake-but-idle steps where
    // the original run slept — architectural state is unaffected.)
    ASSERT_EQ(fresh.dram().sizeBytes(), orig->dram().sizeBytes());
    for (Addr a = 0; a < orig->dram().sizeBytes(); a += sizeof(Word))
        ASSERT_EQ(fresh.dram().readWord(a), orig->dram().readWord(a))
            << "DRAM word at byte " << a;
}

INSTANTIATE_TEST_SUITE_P(ThreeApps, CheckpointRestore,
                         ::testing::Values("InnerProduct", "GEMM",
                                           "Kmeans"));

// ---- satellite: checkpoints cross the datapath-engine boundary ------

/** The checkpoint tape encodes only architectural state — execution
 *  plans (sim/execplan.hpp) are derived from the config at fabric
 *  construction — so a snapshot saved under either datapath engine
 *  restores into a fabric running the other engine and resumes bit-
 *  and cycle-exactly. Parameter: (engine that saves, engine that
 *  resumes). */
class CrossEngineCheckpoint
    : public ::testing::TestWithParam<std::pair<SimMode, SimMode>>
{
};

TEST_P(CrossEngineCheckpoint, SnapshotRestoresAcrossEngines)
{
    auto [saveMode, resumeMode] = GetParam();
    setVerbose(false);
    apps::AppInstance app = appByName("GEMM");
    ArchParams params = eccParams(true);

    Runner probe(app.prog, params);
    app.load(probe);
    Runner::Result ref;
    ASSERT_TRUE(probe.tryRun(ref).ok());

    SimOptions save;
    save.simMode = saveMode;
    save.checkpointEvery = std::max<Cycles>(1, ref.cycles / 4);
    save.keepCheckpoints = 8;
    Runner r(app.prog, params, save);
    app.load(r);
    Runner::Result out;
    ASSERT_TRUE(r.tryRun(out).ok());
    EXPECT_EQ(out.cycles, ref.cycles)
        << "engine choice must not perturb execution";

    Fabric *orig = r.mutableFabric();
    const auto &ring = orig->autoCheckpoints();
    ASSERT_GE(ring.size(), 2u);
    FabricCheckpoint cp = ring[ring.size() / 2];
    ASSERT_GT(cp.cycle, 0u);

    SimOptions resume;
    resume.simMode = resumeMode;
    Fabric fresh(r.mapResult().fabric, resume);
    ASSERT_TRUE(fresh.restoreCheckpoint(cp).ok());
    RunResult rr = fresh.runChecked();
    ASSERT_TRUE(rr.status.ok()) << rr.status.message();
    EXPECT_EQ(fresh.now(), orig->now());

    for (uint32_t s = 0; s < app.prog.numArgOuts; ++s)
        EXPECT_EQ(fresh.argOut(s), orig->argOut(s)) << "argOut " << s;
    ASSERT_EQ(fresh.dram().sizeBytes(), orig->dram().sizeBytes());
    for (Addr a = 0; a < orig->dram().sizeBytes(); a += sizeof(Word))
        ASSERT_EQ(fresh.dram().readWord(a), orig->dram().readWord(a))
            << "DRAM word at byte " << a;
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, CrossEngineCheckpoint,
    ::testing::Values(
        std::make_pair(SimMode::kInterp, SimMode::kSpecialized),
        std::make_pair(SimMode::kSpecialized, SimMode::kInterp),
        std::make_pair(SimMode::kSpecialized, SimMode::kSpecialized)),
    [](const ::testing::TestParamInfo<std::pair<SimMode, SimMode>>
           &info) {
        return std::string(simModeName(info.param.first)) + "_to_" +
               std::string(simModeName(info.param.second));
    });

// ---- checkpoint text round trip -------------------------------------

TEST(Resilience, CheckpointTextRoundTrip)
{
    setVerbose(false);
    apps::AppInstance app = appByName("InnerProduct");
    Runner r(app.prog, eccParams(true));
    app.load(r);
    Runner::Result out;
    ASSERT_TRUE(r.tryRun(out).ok());

    FabricCheckpoint cp = r.mutableFabric()->saveCheckpoint();
    ASSERT_FALSE(cp.tape.empty());

    std::stringstream ss;
    writeCheckpoint(ss, cp);
    FabricCheckpoint back;
    std::string err;
    ASSERT_TRUE(readCheckpoint(ss, back, &err)) << err;
    EXPECT_EQ(back.cycle, cp.cycle);
    EXPECT_EQ(back.cfgHash, cp.cfgHash);
    EXPECT_EQ(back.tape, cp.tape);

    std::stringstream bad("not_a_checkpoint 1\n");
    FabricCheckpoint junk;
    EXPECT_FALSE(readCheckpoint(bad, junk, &err));
    EXPECT_NE(err.find("magic"), std::string::npos);
}

// ---- report classification helpers ----------------------------------

TEST(Resilience, SdcExplanationTracksUnprotectedUpsets)
{
    ResilienceReport rep;
    rep.cls = RunClass::kSilentCorruption;
    rep.firedUnprotected = 0;
    EXPECT_FALSE(rep.explainedSdc()); // ECC-covered state only: a hole
    rep.firedUnprotected = 1;
    EXPECT_TRUE(rep.explainedSdc()); // datapath upset: expected escape
    EXPECT_STREQ(runClassName(RunClass::kSilentCorruption),
                 "silent-corruption");
    EXPECT_STREQ(runClassName(RunClass::kRecovered), "recovered");
}

// ---- campaign driver: the CI invariant ------------------------------

TEST(Resilience, CampaignProtectedMixHasNoUnexplainedSdc)
{
    setVerbose(false);
    CampaignOptions opts;
    opts.rate = 500.0;
    opts.runsPerApp = 2;
    opts.ecc = true;
    opts.mix = FaultMix::kProtected;
    opts.apps = {"InnerProduct", "GEMM"};
    CampaignResult res = runCampaign(opts);
    EXPECT_EQ(res.runs.size(), 4u);
    EXPECT_EQ(res.unexplainedSdc, 0u);
    EXPECT_EQ(res.byClass[static_cast<size_t>(
                  RunClass::kSilentCorruption)],
              0u);
    EXPECT_EQ(res.byClass[static_cast<size_t>(
                  RunClass::kDetectedUnrecoverable)],
              0u);

    std::stringstream js;
    res.writeJson(js, opts);
    EXPECT_NE(js.str().find("\"summary\""), std::string::npos);
    EXPECT_NE(js.str().find("\"unexplainedSdc\": 0"),
              std::string::npos);
}

// ---- ECC cost shows up in the analytical models ---------------------

TEST(Resilience, EccAddsAreaAndPower)
{
    model::AreaModel area;
    ArchParams off = eccParams(false);
    ArchParams on = eccParams(true);
    EXPECT_GT(area.pmuArea(on.pmu), area.pmuArea(off.pmu));
    // 39/32 on a 90%-scratchpad unit: roughly a 20% PMU area adder.
    EXPECT_LT(area.pmuArea(on.pmu), area.pmuArea(off.pmu) * 1.35);
    EXPECT_GT(area.chipArea(on), area.chipArea(off));

    model::PowerModel power;
    EXPECT_GT(power.peak(on), power.peak(off));
}
