/** @file Scratchpad banking modes, conflicts, N-buffering, FIFO mode. */

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <vector>

#include "base/rng.hpp"
#include "sim/scratchpad.hpp"

using namespace plast;

namespace
{

Scratchpad
make(BankingMode mode, uint32_t sizeWords, uint8_t nbuf = 1)
{
    Scratchpad sp;
    ScratchCfg cfg;
    cfg.mode = mode;
    cfg.sizeWords = sizeWords;
    cfg.numBufs = nbuf;
    sp.configure(cfg, 16, 65536);
    return sp;
}

} // namespace

TEST(Scratchpad, ReadBackWhatWasWritten)
{
    Scratchpad sp = make(BankingMode::kStrided, 1024);
    for (uint32_t a = 0; a < 1024; ++a)
        sp.write(0, a, a * 3);
    for (uint32_t a = 0; a < 1024; ++a)
        EXPECT_EQ(sp.read(0, a), a * 3);
}

TEST(Scratchpad, BuffersAreDisjoint)
{
    Scratchpad sp = make(BankingMode::kStrided, 256, 4);
    for (uint32_t b = 0; b < 4; ++b)
        sp.write(b, 10, 100 + b);
    for (uint32_t b = 0; b < 4; ++b)
        EXPECT_EQ(sp.read(b, 10), 100 + b);
}

TEST(Scratchpad, StridedConflictFreeForConsecutive)
{
    Scratchpad sp = make(BankingMode::kStrided, 1024);
    std::vector<uint32_t> addrs;
    for (uint32_t l = 0; l < 16; ++l)
        addrs.push_back(100 + l);
    EXPECT_EQ(sp.conflictCycles(addrs), 1u);
}

TEST(Scratchpad, StridedConflictWhenSameBank)
{
    Scratchpad sp = make(BankingMode::kStrided, 1024);
    // Stride 16 => every lane maps to the same bank.
    std::vector<uint32_t> addrs;
    for (uint32_t l = 0; l < 16; ++l)
        addrs.push_back(l * 16);
    EXPECT_EQ(sp.conflictCycles(addrs), 16u);
    // Stride 8 with 16 banks: lanes alternate between banks 0 and 8,
    // eight lanes each.
    addrs.clear();
    for (uint32_t l = 0; l < 16; ++l)
        addrs.push_back(l * 8);
    EXPECT_EQ(sp.conflictCycles(addrs), 8u);
    // Odd strides cycle through every bank: conflict free.
    addrs.clear();
    for (uint32_t l = 0; l < 16; ++l)
        addrs.push_back(l * 3);
    EXPECT_EQ(sp.conflictCycles(addrs), 1u);
}

TEST(Scratchpad, DuplicationModeIsConflictFree)
{
    Scratchpad sp = make(BankingMode::kDup, 1024);
    std::vector<uint32_t> addrs(16, 5); // worst case: all same word
    EXPECT_EQ(sp.conflictCycles(addrs), 1u);
}

TEST(Scratchpad, DuplicationModeShrinksCapacity)
{
    Scratchpad sp;
    ScratchCfg cfg;
    cfg.mode = BankingMode::kDup;
    cfg.sizeWords = 4096; // exactly totalWords / banks
    cfg.numBufs = 1;
    sp.configure(cfg, 16, 65536);
    SUCCEED();
}

TEST(Scratchpad, LineBufferWraps)
{
    Scratchpad sp = make(BankingMode::kLineBuffer, 64);
    sp.write(0, 3, 77);
    EXPECT_EQ(sp.read(0, 3 + 64), 77u);  // wrapped read
    sp.write(0, 64 + 5, 88);             // wrapped write
    EXPECT_EQ(sp.read(0, 5), 88u);
}

TEST(Scratchpad, FifoOrder)
{
    Scratchpad sp = make(BankingMode::kFifo, 256);
    for (int i = 0; i < 5; ++i)
        sp.fifoPush(Vec::broadcast(static_cast<Word>(i), 16));
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(sp.fifoCanPop());
        EXPECT_EQ(sp.fifoPop().lane[0], static_cast<Word>(i));
    }
    EXPECT_FALSE(sp.fifoCanPop());
}

TEST(ScratchpadDeath, CapacityOverflowIsFatal)
{
    EXPECT_EXIT(
        {
            Scratchpad sp;
            ScratchCfg cfg;
            cfg.sizeWords = 70000; // exceeds 64 K words
            cfg.numBufs = 1;
            sp.configure(cfg, 16, 65536);
        },
        ::testing::ExitedWithCode(1), "exceeds PMU capacity");
}

TEST(ScratchpadDeath, OutOfRangeReadPanics)
{
    EXPECT_DEATH(
        {
            Scratchpad sp = make(BankingMode::kStrided, 16);
            sp.read(0, 16);
        },
        "out of range");
}

// ---- randomized differential tests against a flat-array oracle ------
// The scratchpad may lay words out across banks however it likes; the
// observable contract is flat per-buffer word storage (modulo
// line-buffer wrap) plus the banking-dependent conflict cost.

TEST(Scratchpad, RandomizedReadWriteMatchesFlatOracle)
{
    for (BankingMode mode : {BankingMode::kStrided,
                             BankingMode::kLineBuffer,
                             BankingMode::kDup}) {
        const uint32_t size = 256, nbuf = 2;
        Scratchpad sp = make(mode, size, nbuf);
        std::vector<Word> oracle(size * nbuf, 0);
        const bool wraps = mode == BankingMode::kLineBuffer;
        Rng rng(0xabc0 + static_cast<uint64_t>(mode));
        for (int op = 0; op < 4000; ++op) {
            uint32_t buf = static_cast<uint32_t>(rng.nextBounded(nbuf));
            // Line buffers accept (and wrap) out-of-range addresses.
            uint32_t span = wraps ? 3 * size : size;
            uint32_t addr = static_cast<uint32_t>(rng.nextBounded(span));
            uint32_t flat = buf * size + addr % size;
            if (rng.nextBounded(2) == 0) {
                Word w = static_cast<Word>(rng.next());
                sp.write(buf, addr, w);
                oracle[flat] = w;
            } else {
                ASSERT_EQ(sp.read(buf, addr), oracle[flat])
                    << "mode " << static_cast<int>(mode) << " buf "
                    << buf << " addr " << addr;
            }
        }
    }
}

TEST(Scratchpad, RandomizedStridedConflictsMatchHistogramOracle)
{
    // Strided banking interleaves word addresses across the 16 banks,
    // so the cost of a vector access is the tallest bucket of the
    // addr % banks histogram.
    Scratchpad sp = make(BankingMode::kStrided, 1024);
    Rng rng(0xbadbeef);
    for (int trial = 0; trial < 500; ++trial) {
        std::vector<uint32_t> addrs;
        uint32_t hist[16] = {};
        for (uint32_t l = 0; l < 16; ++l) {
            uint32_t a = static_cast<uint32_t>(rng.nextBounded(1024));
            addrs.push_back(a);
            ++hist[a % 16];
        }
        uint32_t want = 0;
        for (uint32_t h : hist)
            want = std::max(want, h);
        ASSERT_EQ(sp.conflictCycles(addrs), want);
    }
}

TEST(Scratchpad, RandomizedDupIsAlwaysConflictFree)
{
    Scratchpad sp = make(BankingMode::kDup, 1024);
    Rng rng(0xd00d);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<uint32_t> addrs;
        for (uint32_t l = 0; l < 16; ++l)
            addrs.push_back(
                static_cast<uint32_t>(rng.nextBounded(1024)));
        ASSERT_EQ(sp.conflictCycles(addrs), 1u);
    }
}

TEST(Scratchpad, RandomizedFifoMatchesDequeOracle)
{
    Scratchpad sp = make(BankingMode::kFifo, 256);
    std::deque<Vec> oracle;
    Rng rng(0xf1f0);
    for (int op = 0; op < 2000; ++op) {
        if (oracle.empty() || rng.nextBounded(2) == 0) {
            Vec v = Vec::broadcast(0, 16);
            for (uint32_t l = 0; l < 16; ++l)
                v.lane[l] = static_cast<Word>(rng.next());
            if (rng.nextBounded(4) == 0)
                v.clearValid(static_cast<uint32_t>(rng.nextBounded(16)));
            sp.fifoPush(v);
            oracle.push_back(v);
        } else {
            ASSERT_TRUE(sp.fifoCanPop());
            Vec got = sp.fifoPop();
            Vec want = oracle.front();
            oracle.pop_front();
            ASSERT_EQ(got.mask, want.mask);
            for (uint32_t l = 0; l < 16; ++l)
                ASSERT_EQ(got.lane[l], want.lane[l]);
        }
        ASSERT_EQ(sp.fifoSize(), oracle.size());
    }
}
