/** @file Scratchpad banking modes, conflicts, N-buffering, FIFO mode. */

#include <gtest/gtest.h>

#include "sim/scratchpad.hpp"

using namespace plast;

namespace
{

Scratchpad
make(BankingMode mode, uint32_t sizeWords, uint8_t nbuf = 1)
{
    Scratchpad sp;
    ScratchCfg cfg;
    cfg.mode = mode;
    cfg.sizeWords = sizeWords;
    cfg.numBufs = nbuf;
    sp.configure(cfg, 16, 65536);
    return sp;
}

} // namespace

TEST(Scratchpad, ReadBackWhatWasWritten)
{
    Scratchpad sp = make(BankingMode::kStrided, 1024);
    for (uint32_t a = 0; a < 1024; ++a)
        sp.write(0, a, a * 3);
    for (uint32_t a = 0; a < 1024; ++a)
        EXPECT_EQ(sp.read(0, a), a * 3);
}

TEST(Scratchpad, BuffersAreDisjoint)
{
    Scratchpad sp = make(BankingMode::kStrided, 256, 4);
    for (uint32_t b = 0; b < 4; ++b)
        sp.write(b, 10, 100 + b);
    for (uint32_t b = 0; b < 4; ++b)
        EXPECT_EQ(sp.read(b, 10), 100 + b);
}

TEST(Scratchpad, StridedConflictFreeForConsecutive)
{
    Scratchpad sp = make(BankingMode::kStrided, 1024);
    std::vector<uint32_t> addrs;
    for (uint32_t l = 0; l < 16; ++l)
        addrs.push_back(100 + l);
    EXPECT_EQ(sp.conflictCycles(addrs), 1u);
}

TEST(Scratchpad, StridedConflictWhenSameBank)
{
    Scratchpad sp = make(BankingMode::kStrided, 1024);
    // Stride 16 => every lane maps to the same bank.
    std::vector<uint32_t> addrs;
    for (uint32_t l = 0; l < 16; ++l)
        addrs.push_back(l * 16);
    EXPECT_EQ(sp.conflictCycles(addrs), 16u);
    // Stride 8 with 16 banks: lanes alternate between banks 0 and 8,
    // eight lanes each.
    addrs.clear();
    for (uint32_t l = 0; l < 16; ++l)
        addrs.push_back(l * 8);
    EXPECT_EQ(sp.conflictCycles(addrs), 8u);
    // Odd strides cycle through every bank: conflict free.
    addrs.clear();
    for (uint32_t l = 0; l < 16; ++l)
        addrs.push_back(l * 3);
    EXPECT_EQ(sp.conflictCycles(addrs), 1u);
}

TEST(Scratchpad, DuplicationModeIsConflictFree)
{
    Scratchpad sp = make(BankingMode::kDup, 1024);
    std::vector<uint32_t> addrs(16, 5); // worst case: all same word
    EXPECT_EQ(sp.conflictCycles(addrs), 1u);
}

TEST(Scratchpad, DuplicationModeShrinksCapacity)
{
    Scratchpad sp;
    ScratchCfg cfg;
    cfg.mode = BankingMode::kDup;
    cfg.sizeWords = 4096; // exactly totalWords / banks
    cfg.numBufs = 1;
    sp.configure(cfg, 16, 65536);
    SUCCEED();
}

TEST(Scratchpad, LineBufferWraps)
{
    Scratchpad sp = make(BankingMode::kLineBuffer, 64);
    sp.write(0, 3, 77);
    EXPECT_EQ(sp.read(0, 3 + 64), 77u);  // wrapped read
    sp.write(0, 64 + 5, 88);             // wrapped write
    EXPECT_EQ(sp.read(0, 5), 88u);
}

TEST(Scratchpad, FifoOrder)
{
    Scratchpad sp = make(BankingMode::kFifo, 256);
    for (int i = 0; i < 5; ++i)
        sp.fifoPush(Vec::broadcast(static_cast<Word>(i), 16));
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(sp.fifoCanPop());
        EXPECT_EQ(sp.fifoPop().lane[0], static_cast<Word>(i));
    }
    EXPECT_FALSE(sp.fifoCanPop());
}

TEST(ScratchpadDeath, CapacityOverflowIsFatal)
{
    EXPECT_EXIT(
        {
            Scratchpad sp;
            ScratchCfg cfg;
            cfg.sizeWords = 70000; // exceeds 64 K words
            cfg.numBufs = 1;
            sp.configure(cfg, 16, 65536);
        },
        ::testing::ExitedWithCode(1), "exceeds PMU capacity");
}

TEST(ScratchpadDeath, OutOfRangeReadPanics)
{
    EXPECT_DEATH(
        {
            Scratchpad sp = make(BankingMode::kStrided, 16);
            sp.read(0, 16);
        },
        "out of range");
}
