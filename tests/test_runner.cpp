/** @file Host runtime: DRAM staging, result readback, reference
 *  instrumentation, architecture-parameter generality (lane counts,
 *  channel counts), and the PCU shift network. */

#include <gtest/gtest.h>

#include <memory>

#include "apps/apps.hpp"
#include "pir/builder.hpp"
#include "runtime/runner.hpp"
#include "sim/pcu.hpp"

using namespace plast;
using namespace plast::pir;

namespace
{

Program
scaleProgram(int64_t n, MemId &in, MemId &out)
{
    Builder b("scale");
    in = b.dram("in", n);
    out = b.dram("out", n);
    NodeId root = b.outer("root", CtrlScheme::kSequential, {}, kNone);
    CtrId i = b.ctr("i", 0, n, 1, true);
    ExprId v = b.fmul(b.streamRef(0), b.immF(3.0f));
    b.compute("x3", root, {i}, {StreamIn{in, b.ctrE(i)}}, {},
              {Builder::streamOut(out, b.ctrE(i), v)});
    return b.finish(root);
}

} // namespace

TEST(Runner, StagesInputsAndReadsBackOutputs)
{
    setVerbose(false);
    MemId in, out;
    Runner r(scaleProgram(256, in, out));
    auto &buf = r.dram(in);
    for (int k = 0; k < 256; ++k)
        buf[k] = floatToWord(static_cast<float>(k));
    r.runValidated();
    std::vector<Word> got = r.readDram(out);
    for (int k = 0; k < 256; ++k)
        EXPECT_FLOAT_EQ(wordToFloat(got[k]), 3.0f * k);
}

TEST(Runner, ReferenceCountsMatchAnalytics)
{
    setVerbose(false);
    MemId in, out;
    Runner r(scaleProgram(256, in, out));
    const auto &c = r.referenceCounts();
    EXPECT_EQ(c.aluOps, 256u);
    EXPECT_EQ(c.dramWordsRead, 256u);
    EXPECT_EQ(c.dramWordsWritten, 256u);
}

TEST(Runner, RunsAtEightLanes)
{
    // The whole stack is lane-parameterized (Table 3 sweeps 4..32).
    setVerbose(false);
    ArchParams params;
    params.pcu.lanes = 8;
    params.pmu.banks = 8;
    MemId in, out;
    Runner r(scaleProgram(128, in, out), params);
    auto &buf = r.dram(in);
    for (int k = 0; k < 128; ++k)
        buf[k] = floatToWord(static_cast<float>(k));
    r.runValidated(); // bit-exact at 8 lanes too
    SUCCEED();
}

TEST(Runner, RunsAtThirtyTwoLanes)
{
    setVerbose(false);
    ArchParams params;
    params.pcu.lanes = 32;
    params.pmu.banks = 32;
    MemId in, out;
    Runner r(scaleProgram(128, in, out), params);
    auto &buf = r.dram(in);
    for (int k = 0; k < 128; ++k)
        buf[k] = floatToWord(static_cast<float>(k));
    r.runValidated();
    SUCCEED();
}

TEST(Runner, FewerChannelsIsSlower)
{
    setVerbose(false);
    auto cyclesWith = [](uint32_t channels) {
        ArchParams params;
        params.dram.channels = channels;
        apps::AppInstance app =
            apps::makeInnerProduct(apps::Scale::kTiny, 4);
        Runner r(app.prog, params);
        app.load(r);
        return r.run().cycles;
    };
    Cycles c1 = cyclesWith(1), c4 = cyclesWith(4);
    EXPECT_GT(c1, 2 * c4) << "streaming must scale with channels";
}

TEST(ShiftNetwork, SlidesValuesAcrossLanes)
{
    // Direct PCU config using the kShift cross-lane network (§3.1,
    // used for stencils): out[l] = in[l] + in[l-1].
    ArchParams params;
    PcuCfg cfg;
    cfg.used = true;
    CounterCfg cc;
    cc.max = 16;
    cc.vectorized = true;
    cfg.chain.ctrs = {cc};
    StageCfg ld;
    ld.op = FuOp::kNop;
    ld.a = Operand::ctr(0);
    ld.dstReg = 0;
    StageCfg sh;
    sh.kind = StageKind::kShift;
    sh.a = Operand::reg(0);
    sh.shiftAmt = 1;
    sh.dstReg = 1;
    StageCfg add;
    add.op = FuOp::kIAdd;
    add.a = Operand::reg(0);
    add.b = Operand::reg(1);
    add.dstReg = 2;
    cfg.stages = {ld, sh, add};
    cfg.vecOuts.resize(params.pcu.vectorOuts);
    cfg.vecOuts[0].enabled = true;
    cfg.vecOuts[0].srcReg = 2;
    cfg.vecOuts[0].cond = EmitCond::everyWavefront();
    cfg.scalOuts.resize(params.pcu.scalarOuts);

    PcuSim pcu(params, 0, cfg);
    VectorStream out("o", 1, 8);
    pcu.ports.vecOut[0].sinks.push_back(&out);
    Cycles now = 0;
    while (!out.canPop() && now < 100) {
        pcu.step(now);
        out.tick(now);
        ++now;
    }
    ASSERT_TRUE(out.canPop());
    const Vec &v = out.front();
    EXPECT_EQ(v.lane[0], 0u);      // 0 + (shifted-in 0)
    EXPECT_EQ(v.lane[1], 1u + 0u); // 1 + 0
    EXPECT_EQ(v.lane[7], 7u + 6u);
    EXPECT_EQ(v.lane[15], 15u + 14u);
}
