/** @file Fuzzing subsystem: generator validity, differential soak,
 *  injected-fault detection and shrinking, seed-file round trips, and
 *  deterministic replay of the committed corpus. */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/logging.hpp"
#include "base/rng.hpp"
#include "fuzz/diff.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/harness.hpp"
#include "fuzz/shrink.hpp"
#include "pir/builder.hpp"
#include "pir/serialize.hpp"
#include "pir/validate.hpp"

using namespace plast;
using namespace plast::fuzz;
using namespace plast::pir;

namespace
{

/** A known-good two-kernel program: a droppable store-only kernel plus
 *  a cross-lane fold kernel the canned fault corrupts. The shrinker
 *  should strip it down to (root + fold leaf). */
FuzzCase
injectedCase()
{
    Builder b("inj");
    NodeId root = b.outer("root", CtrlScheme::kSequential, {}, kNone);

    // Kernel 0: stores into an SRAM nobody reads; fault-irrelevant.
    NodeId w0 = b.outer("kernel0", CtrlScheme::kSequential,
                        {b.ctr("w0", 0, 1)}, root);
    MemId scratch = b.sram("s0", 64);
    CtrId j = b.ctr("j", 0, 64, 1, true);
    b.compute("noise", w0, {j}, {}, {},
              {Builder::storeSram(scratch, b.ctrE(j), b.ctrE(j))});

    // Kernel 1: stream fold -> argOut; exercises a reduce tree.
    NodeId w1 = b.outer("kernel1", CtrlScheme::kSequential,
                        {b.ctr("w1", 0, 1)}, root);
    MemId fin = b.dram("fin0", 256);
    int32_t out = b.argOut();
    CtrId i = b.ctr("i", 0, 256, 1, true);
    b.compute("fold", w1, {i}, {StreamIn{fin, b.ctrE(i)}}, {},
              {Builder::fold(FuOp::kFAdd, b.streamRef(0), i, out)});

    FuzzCase c;
    c.prog = b.finish(root);
    c.params = ArchParams::plasticineFinal();
    c.inject = true;
    return c;
}

} // namespace

TEST(Fuzz, GeneratedProgramsValidate)
{
    setVerbose(false);
    for (uint64_t s = 1; s <= 40; ++s) {
        FuzzCase c = caseForSeed(s);
        auto errs = validateProgram(c.prog);
        EXPECT_TRUE(errs.empty())
            << "seed " << s << ": " << errs.front();
        // The sampler must stay inside the legal design space.
        EXPECT_GE(c.params.gridCols, 12u);
        EXPECT_LE(c.params.gridCols, 16u);
        EXPECT_GE(c.params.pcu.stages, 6u);
        EXPECT_EQ(c.params.pcu.lanes, 16u);
        EXPECT_EQ(c.params.pmu.fifoDepth, c.params.pcu.fifoDepth);
    }
}

TEST(Fuzz, CasesAreDeterministicPerSeed)
{
    FuzzCase a = caseForSeed(42), b = caseForSeed(42);
    EXPECT_EQ(programToText(a.prog), programToText(b.prog));
    EXPECT_EQ(a.params.gridCols, b.params.gridCols);
    EXPECT_EQ(a.params.gridRows, b.params.gridRows);
    EXPECT_EQ(a.params.pmu.bankKilobytes, b.params.pmu.bankKilobytes);
    EXPECT_EQ(a.params.numAgs, b.params.numAgs);
}

TEST(Fuzz, SerializeRoundTripIsFixpoint)
{
    // write -> read -> write reproduces the exact text, and the parsed
    // program is itself valid.
    for (uint64_t s = 1; s <= 30; ++s) {
        FuzzCase c = caseForSeed(s);
        std::string t1 = programToText(c.prog);
        std::istringstream is(t1);
        Program back;
        std::string err;
        ASSERT_TRUE(readProgram(is, back, &err))
            << "seed " << s << ": " << err;
        EXPECT_TRUE(validateProgram(back).empty()) << "seed " << s;
        EXPECT_EQ(programToText(back), t1) << "seed " << s;
    }
}

TEST(Fuzz, SeedFileRoundTrip)
{
    FuzzCase c = caseForSeed(9, /*inject=*/true);
    std::ostringstream os;
    writeSeedFile(os, c);
    std::istringstream is(os.str());
    FuzzCase back;
    std::string err;
    ASSERT_TRUE(readSeedFile(is, back, &err)) << err;
    EXPECT_TRUE(back.inject);
    EXPECT_EQ(back.params.gridCols, c.params.gridCols);
    EXPECT_EQ(back.params.gridRows, c.params.gridRows);
    EXPECT_EQ(back.params.pcu.stages, c.params.pcu.stages);
    EXPECT_EQ(back.params.pcu.fifoDepth, c.params.pcu.fifoDepth);
    EXPECT_EQ(back.params.pmu.bankKilobytes, c.params.pmu.bankKilobytes);
    EXPECT_EQ(back.params.dram.channels, c.params.dram.channels);
    EXPECT_EQ(back.params.vectorTracks, c.params.vectorTracks);
    EXPECT_EQ(back.params.numAgs, c.params.numAgs);
    EXPECT_EQ(programToText(back.prog), programToText(c.prog));
}

TEST(Fuzz, SoakFindsNoMismatches)
{
    // A bounded differential soak: evaluator vs fabric (both
    // schedulers), cycle ledger checked on every unit of every run.
    setVerbose(false);
    FuzzOptions o;
    o.seed = 1;
    o.runs = 40;
    o.shrink = false;
    FuzzStats st = plast::fuzz::fuzz(o);
    EXPECT_EQ(st.executed, 40u);
    EXPECT_EQ(st.mismatches, 0u)
        << (st.details.empty() ? "" : st.details.front());
    EXPECT_EQ(st.okRuns + st.unmappable, st.executed);
    // The generator must mostly produce mappable programs.
    EXPECT_GE(st.okRuns, 30u);
}

TEST(Fuzz, InjectedFaultIsCaughtAndShrinks)
{
    setVerbose(false);
    FuzzCase c = injectedCase();

    // Healthy run passes...
    FuzzCase clean = c;
    clean.inject = false;
    EXPECT_TRUE(runCase(clean).ok());

    // ...the corrupted reduce tree is caught...
    DiffResult d = runCase(c);
    ASSERT_TRUE(d.mismatch()) << d.detail;
    EXPECT_NE(d.detail.find("argOut"), std::string::npos) << d.detail;

    // ...and shrinks to a minimal reproducer (root + fold leaf at
    // most a wrapper more), which still validates and still fails.
    auto stillFails = [&](const Program &cand) {
        FuzzCase probe{cand, c.params, true};
        return runCase(probe).mismatch();
    };
    ShrinkResult sr = shrinkProgram(c.prog, stillFails);
    EXPECT_GT(sr.accepted, 0);
    EXPECT_LE(sr.prog.nodes.size(), 3u);
    EXPECT_TRUE(validateProgram(sr.prog).empty());
    EXPECT_TRUE(stillFails(sr.prog));
}

TEST(Fuzz, InjectionSweepDetectsFaults)
{
    // Most generated programs contain a cross-lane fold, so the canned
    // fault must be observable on a fixed seed sweep.
    setVerbose(false);
    FuzzOptions o;
    o.seed = 7;
    o.runs = 5;
    o.inject = true;
    o.shrink = false;
    FuzzStats st = plast::fuzz::fuzz(o);
    EXPECT_GE(st.mismatches, 1u);
}

TEST(Fuzz, CorpusReplaysDeterministically)
{
    setVerbose(false);
    namespace fs = std::filesystem;
    std::vector<std::string> files;
    for (const auto &e : fs::directory_iterator(PLAST_CORPUS_DIR))
        if (e.path().extension() == ".pir")
            files.push_back(e.path().string());
    std::sort(files.begin(), files.end());
    ASSERT_FALSE(files.empty()) << "no corpus under " PLAST_CORPUS_DIR;

    for (const std::string &f : files) {
        std::ifstream is(f);
        FuzzCase c;
        std::string err;
        ASSERT_TRUE(readSeedFile(is, c, &err)) << f << ": " << err;
        DiffResult a = replayFile(f);
        DiffResult b = replayFile(f);
        // Bit-for-bit deterministic outcome...
        EXPECT_EQ(static_cast<int>(a.status), static_cast<int>(b.status))
            << f;
        EXPECT_EQ(a.detail, b.detail) << f;
        EXPECT_EQ(a.cycles, b.cycles) << f;
        // ...matching the recorded expectation: injected seeds are
        // regression witnesses (must still fail), clean seeds must run
        // mismatch-free.
        if (c.inject)
            EXPECT_TRUE(a.mismatch()) << f << ": " << a.detail;
        else
            EXPECT_TRUE(a.ok()) << f << ": " << a.detail;
    }
}
