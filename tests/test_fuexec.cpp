/** @file FU opcode semantics, arities, identities — incl. property
 *  sweeps over every reducible operator. */

#include <gtest/gtest.h>

#include <cmath>

#include "arch/opcodes.hpp"
#include "base/rng.hpp"
#include "sim/fuexec.hpp"

using namespace plast;

TEST(FuExec, IntegerArithmetic)
{
    EXPECT_EQ(wordToInt(fuExec(FuOp::kIAdd, intToWord(3), intToWord(4))),
              7);
    EXPECT_EQ(wordToInt(fuExec(FuOp::kISub, intToWord(3), intToWord(4))),
              -1);
    EXPECT_EQ(wordToInt(fuExec(FuOp::kIMul, intToWord(-3), intToWord(4))),
              -12);
    EXPECT_EQ(wordToInt(fuExec(FuOp::kIDiv, intToWord(9), intToWord(2))),
              4);
    EXPECT_EQ(wordToInt(fuExec(FuOp::kIMod, intToWord(9), intToWord(4))),
              1);
    EXPECT_EQ(wordToInt(fuExec(FuOp::kIMin, intToWord(-2), intToWord(5))),
              -2);
    EXPECT_EQ(wordToInt(fuExec(FuOp::kIMax, intToWord(-2), intToWord(5))),
              5);
    EXPECT_EQ(wordToInt(fuExec(FuOp::kIAbs, intToWord(-7))), 7);
}

TEST(FuExec, DivisionByZeroIsDefined)
{
    EXPECT_EQ(fuExec(FuOp::kIDiv, intToWord(5), intToWord(0)), 0u);
    EXPECT_EQ(fuExec(FuOp::kIMod, intToWord(5), intToWord(0)), 0u);
}

TEST(FuExec, Bitwise)
{
    EXPECT_EQ(fuExec(FuOp::kAnd, 0xff00ff00u, 0x0ff00ff0u), 0x0f000f00u);
    EXPECT_EQ(fuExec(FuOp::kOr, 0xf0u, 0x0fu), 0xffu);
    EXPECT_EQ(fuExec(FuOp::kXor, 0xffu, 0x0fu), 0xf0u);
    EXPECT_EQ(fuExec(FuOp::kNot, 0u), 0xffffffffu);
    EXPECT_EQ(fuExec(FuOp::kShl, 1u, 4u), 16u);
    EXPECT_EQ(fuExec(FuOp::kShr, 16u, 4u), 1u);
}

TEST(FuExec, Comparisons)
{
    EXPECT_EQ(fuExec(FuOp::kILt, intToWord(-1), intToWord(0)), 1u);
    EXPECT_EQ(fuExec(FuOp::kIGe, intToWord(-1), intToWord(0)), 0u);
    EXPECT_EQ(fuExec(FuOp::kFLt, floatToWord(1.5f), floatToWord(2.0f)),
              1u);
    EXPECT_EQ(fuExec(FuOp::kFEq, floatToWord(2.0f), floatToWord(2.0f)),
              1u);
    EXPECT_EQ(fuExec(FuOp::kFNe, floatToWord(2.0f), floatToWord(2.0f)),
              0u);
}

TEST(FuExec, FloatArithmetic)
{
    EXPECT_FLOAT_EQ(
        wordToFloat(fuExec(FuOp::kFAdd, floatToWord(1.5f),
                           floatToWord(2.25f))),
        3.75f);
    EXPECT_FLOAT_EQ(
        wordToFloat(fuExec(FuOp::kFMul, floatToWord(-2.0f),
                           floatToWord(3.0f))),
        -6.0f);
    EXPECT_FLOAT_EQ(
        wordToFloat(fuExec(FuOp::kFSqrt, floatToWord(9.0f))), 3.0f);
    EXPECT_FLOAT_EQ(
        wordToFloat(fuExec(FuOp::kFRecip, floatToWord(4.0f))), 0.25f);
    EXPECT_FLOAT_EQ(
        wordToFloat(fuExec(FuOp::kFExp, floatToWord(0.0f))), 1.0f);
    EXPECT_FLOAT_EQ(
        wordToFloat(fuExec(FuOp::kFLog, floatToWord(1.0f))), 0.0f);
}

TEST(FuExec, TernaryOps)
{
    EXPECT_EQ(fuExec(FuOp::kMux, 1, 10, 20), 10u);
    EXPECT_EQ(fuExec(FuOp::kMux, 0, 10, 20), 20u);
    EXPECT_FLOAT_EQ(wordToFloat(fuExec(FuOp::kFMA, floatToWord(2.0f),
                                       floatToWord(3.0f),
                                       floatToWord(1.0f))),
                    7.0f);
    EXPECT_EQ(wordToInt(fuExec(FuOp::kIMA, intToWord(5), intToWord(7),
                               intToWord(-3))),
              32);
}

TEST(Opcodes, ArityMatchesSemantics)
{
    EXPECT_EQ(fuOpArity(FuOp::kNop), 1);
    EXPECT_EQ(fuOpArity(FuOp::kFSqrt), 1);
    EXPECT_EQ(fuOpArity(FuOp::kIAdd), 2);
    EXPECT_EQ(fuOpArity(FuOp::kMux), 3);
    EXPECT_EQ(fuOpArity(FuOp::kFMA), 3);
    EXPECT_EQ(fuOpArity(FuOp::kIMA), 3);
}

TEST(Opcodes, NamesAreUnique)
{
    std::set<std::string> names;
    for (int i = 0; i < static_cast<int>(FuOp::kNumOps); ++i)
        names.insert(fuOpName(static_cast<FuOp>(i)));
    EXPECT_EQ(names.size(), static_cast<size_t>(FuOp::kNumOps));
}

/** Property: for every reducible op, its identity is neutral. */
class ReducibleOps : public ::testing::TestWithParam<FuOp>
{
};

TEST_P(ReducibleOps, IdentityIsNeutral)
{
    FuOp op = GetParam();
    ASSERT_TRUE(fuOpIsReducible(op));
    Word ident = fuOpIdentity(op);
    Rng rng(42);
    for (int i = 0; i < 50; ++i) {
        Word x = fuOpIsFloat(op)
                     ? floatToWord(rng.nextFloat(-100.0f, 100.0f))
                     : intToWord(static_cast<int32_t>(
                           rng.nextBounded(1 << 20)) -
                       (1 << 19));
        EXPECT_EQ(fuExec(op, ident, x), x)
            << fuOpName(op) << " identity not left-neutral";
        EXPECT_EQ(fuExec(op, x, ident), x)
            << fuOpName(op) << " identity not right-neutral";
    }
}

TEST_P(ReducibleOps, Associative)
{
    FuOp op = GetParam();
    if (fuOpIsFloat(op) &&
        (op == FuOp::kFAdd || op == FuOp::kFMul))
        GTEST_SKIP() << "float add/mul only associative up to rounding";
    Rng rng(43);
    for (int i = 0; i < 50; ++i) {
        Word a = intToWord(static_cast<int32_t>(rng.nextBounded(1000)));
        Word b = intToWord(static_cast<int32_t>(rng.nextBounded(1000)));
        Word c = intToWord(static_cast<int32_t>(rng.nextBounded(1000)));
        if (fuOpIsFloat(op)) {
            a = floatToWord(rng.nextFloat(-10, 10));
            b = floatToWord(rng.nextFloat(-10, 10));
            c = floatToWord(rng.nextFloat(-10, 10));
        }
        EXPECT_EQ(fuExec(op, fuExec(op, a, b), c),
                  fuExec(op, a, fuExec(op, b, c)))
            << fuOpName(op);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllReducible, ReducibleOps,
    ::testing::Values(FuOp::kIAdd, FuOp::kIMul, FuOp::kIMin, FuOp::kIMax,
                      FuOp::kAnd, FuOp::kOr, FuOp::kXor, FuOp::kFAdd,
                      FuOp::kFMul, FuOp::kFMin, FuOp::kFMax),
    [](const ::testing::TestParamInfo<FuOp> &info) {
        return fuOpName(info.param);
    });
