/** @file FU opcode semantics, arities, identities — golden values for
 *  every opcode (including shift-by->=32 and signed-overflow edges),
 *  specialized-kernel equivalence with the dynamic dispatcher, and
 *  property sweeps over every reducible operator. */

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>
#include <set>
#include <string>

#include "arch/opcodes.hpp"
#include "base/rng.hpp"
#include "sim/execplan.hpp"
#include "sim/fuexec.hpp"

using namespace plast;

namespace
{
constexpr int32_t kIntMin = std::numeric_limits<int32_t>::min();
constexpr int32_t kIntMax = std::numeric_limits<int32_t>::max();
} // namespace

TEST(FuExec, IntegerArithmetic)
{
    EXPECT_EQ(wordToInt(fuExec(FuOp::kIAdd, intToWord(3), intToWord(4), 0)),
              7);
    EXPECT_EQ(wordToInt(fuExec(FuOp::kISub, intToWord(3), intToWord(4), 0)),
              -1);
    EXPECT_EQ(
        wordToInt(fuExec(FuOp::kIMul, intToWord(-3), intToWord(4), 0)),
        -12);
    EXPECT_EQ(wordToInt(fuExec(FuOp::kIDiv, intToWord(9), intToWord(2), 0)),
              4);
    EXPECT_EQ(wordToInt(fuExec(FuOp::kIMod, intToWord(9), intToWord(4), 0)),
              1);
    EXPECT_EQ(
        wordToInt(fuExec(FuOp::kIMin, intToWord(-2), intToWord(5), 0)),
        -2);
    EXPECT_EQ(
        wordToInt(fuExec(FuOp::kIMax, intToWord(-2), intToWord(5), 0)),
        5);
    EXPECT_EQ(wordToInt(fuExec(FuOp::kIAbs, intToWord(-7), 0, 0)), 7);
}

TEST(FuExec, DivisionByZeroIsDefined)
{
    EXPECT_EQ(fuExec(FuOp::kIDiv, intToWord(5), intToWord(0), 0), 0u);
    EXPECT_EQ(fuExec(FuOp::kIMod, intToWord(5), intToWord(0), 0), 0u);
}

/** Signed overflow is defined two's-complement wrapping — the edge
 *  inputs that would be UB for naive int arithmetic. */
TEST(FuExec, SignedOverflowWraps)
{
    EXPECT_EQ(
        wordToInt(fuExec(FuOp::kIAdd, intToWord(kIntMax), intToWord(1), 0)),
        kIntMin);
    EXPECT_EQ(wordToInt(fuExec(FuOp::kISub, intToWord(kIntMin),
                               intToWord(1), 0)),
              kIntMax);
    EXPECT_EQ(wordToInt(fuExec(FuOp::kIMul, intToWord(kIntMin),
                               intToWord(-1), 0)),
              kIntMin);
    EXPECT_EQ(wordToInt(fuExec(FuOp::kIMul, intToWord(65536),
                               intToWord(65536), 0)),
              0);
    EXPECT_EQ(wordToInt(fuExec(FuOp::kIMul, intToWord(48271),
                               intToWord(2147483647), 0)),
              wordToInt(static_cast<Word>(48271ull * 2147483647ull)));
    // INT_MIN / -1 wraps back to INT_MIN; the matching remainder is 0.
    EXPECT_EQ(wordToInt(fuExec(FuOp::kIDiv, intToWord(kIntMin),
                               intToWord(-1), 0)),
              kIntMin);
    EXPECT_EQ(wordToInt(fuExec(FuOp::kIMod, intToWord(kIntMin),
                               intToWord(-1), 0)),
              0);
    EXPECT_EQ(wordToInt(fuExec(FuOp::kIAbs, intToWord(kIntMin), 0, 0)),
              kIntMin);
    EXPECT_EQ(wordToInt(fuExec(FuOp::kIMA, intToWord(kIntMax),
                               intToWord(2), intToWord(3))),
              wordToInt(static_cast<Word>(2ull * kIntMax + 3ull)));
}

TEST(FuExec, Bitwise)
{
    EXPECT_EQ(fuExec(FuOp::kAnd, 0xff00ff00u, 0x0ff00ff0u, 0), 0x0f000f00u);
    EXPECT_EQ(fuExec(FuOp::kOr, 0xf0u, 0x0fu, 0), 0xffu);
    EXPECT_EQ(fuExec(FuOp::kXor, 0xffu, 0x0fu, 0), 0xf0u);
    EXPECT_EQ(fuExec(FuOp::kNot, 0u, 0, 0), 0xffffffffu);
    EXPECT_EQ(fuExec(FuOp::kShl, 1u, 4u, 0), 16u);
    EXPECT_EQ(fuExec(FuOp::kShr, 16u, 4u, 0), 1u);
}

/** The barrel shifter consumes only the low 5 bits of the amount, so
 *  shift-by->=32 is defined (and not UB as `1u << 32` would be). */
TEST(FuExec, ShiftAmountIsMasked)
{
    EXPECT_EQ(fuExec(FuOp::kShl, 0xdeadbeefu, 32u, 0), 0xdeadbeefu);
    EXPECT_EQ(fuExec(FuOp::kShr, 0xdeadbeefu, 32u, 0), 0xdeadbeefu);
    EXPECT_EQ(fuExec(FuOp::kShl, 1u, 33u, 0), 2u);
    EXPECT_EQ(fuExec(FuOp::kShr, 4u, 33u, 0), 2u);
    EXPECT_EQ(fuExec(FuOp::kShl, 1u, 63u, 0), 0x80000000u);
    EXPECT_EQ(fuExec(FuOp::kShr, 0x80000000u, 63u, 0), 1u);
    EXPECT_EQ(fuExec(FuOp::kShl, 5u, 100u, 0), 5u << 4);
}

TEST(FuExec, Comparisons)
{
    EXPECT_EQ(fuExec(FuOp::kILt, intToWord(-1), intToWord(0), 0), 1u);
    EXPECT_EQ(fuExec(FuOp::kIGe, intToWord(-1), intToWord(0), 0), 0u);
    EXPECT_EQ(fuExec(FuOp::kFLt, floatToWord(1.5f), floatToWord(2.0f), 0),
              1u);
    EXPECT_EQ(fuExec(FuOp::kFEq, floatToWord(2.0f), floatToWord(2.0f), 0),
              1u);
    EXPECT_EQ(fuExec(FuOp::kFNe, floatToWord(2.0f), floatToWord(2.0f), 0),
              0u);
}

TEST(FuExec, FloatArithmetic)
{
    EXPECT_FLOAT_EQ(wordToFloat(fuExec(FuOp::kFAdd, floatToWord(1.5f),
                                       floatToWord(2.25f), 0)),
                    3.75f);
    EXPECT_FLOAT_EQ(wordToFloat(fuExec(FuOp::kFMul, floatToWord(-2.0f),
                                       floatToWord(3.0f), 0)),
                    -6.0f);
    EXPECT_FLOAT_EQ(
        wordToFloat(fuExec(FuOp::kFSqrt, floatToWord(9.0f), 0, 0)), 3.0f);
    EXPECT_FLOAT_EQ(
        wordToFloat(fuExec(FuOp::kFRecip, floatToWord(4.0f), 0, 0)),
        0.25f);
    EXPECT_FLOAT_EQ(
        wordToFloat(fuExec(FuOp::kFExp, floatToWord(0.0f), 0, 0)), 1.0f);
    EXPECT_FLOAT_EQ(
        wordToFloat(fuExec(FuOp::kFLog, floatToWord(1.0f), 0, 0)), 0.0f);
}

TEST(FuExec, TernaryOps)
{
    EXPECT_EQ(fuExec(FuOp::kMux, 1, 10, 20), 10u);
    EXPECT_EQ(fuExec(FuOp::kMux, 0, 10, 20), 20u);
    EXPECT_FLOAT_EQ(wordToFloat(fuExec(FuOp::kFMA, floatToWord(2.0f),
                                       floatToWord(3.0f),
                                       floatToWord(1.0f))),
                    7.0f);
    EXPECT_EQ(wordToInt(fuExec(FuOp::kIMA, intToWord(5), intToWord(7),
                               intToWord(-3))),
              32);
}

// --------------------------------------------------------------------
// Golden values for every opcode
// --------------------------------------------------------------------

namespace
{

struct Golden
{
    FuOp op;
    Word a, b, c;
    Word expect;
};

/** At least one pinned input/output triple per opcode: the contract the
 *  interpreter, the specialized kernels, and the reference evaluator
 *  all share. */
const Golden kGoldens[] = {
    {FuOp::kNop, 0x1234u, 0xffffu, 0xeeeeu, 0x1234u},
    {FuOp::kIAdd, intToWord(20), intToWord(22), 0, intToWord(42)},
    {FuOp::kIAdd, intToWord(kIntMax), intToWord(kIntMax), 0,
     intToWord(-2)},
    {FuOp::kISub, intToWord(-5), intToWord(-9), 0, intToWord(4)},
    {FuOp::kIMul, intToWord(-7), intToWord(6), 0, intToWord(-42)},
    {FuOp::kIDiv, intToWord(-9), intToWord(2), 0, intToWord(-4)},
    {FuOp::kIDiv, intToWord(7), intToWord(0), 0, 0u},
    {FuOp::kIMod, intToWord(-9), intToWord(2), 0, intToWord(-1)},
    {FuOp::kIMod, intToWord(7), intToWord(0), 0, 0u},
    {FuOp::kIMin, intToWord(kIntMin), intToWord(kIntMax), 0,
     intToWord(kIntMin)},
    {FuOp::kIMax, intToWord(kIntMin), intToWord(kIntMax), 0,
     intToWord(kIntMax)},
    {FuOp::kIAbs, intToWord(-42), 0, 0, intToWord(42)},
    {FuOp::kIAbs, intToWord(42), 0, 0, intToWord(42)},
    {FuOp::kAnd, 0xffff0000u, 0x0f0f0f0fu, 0, 0x0f0f0000u},
    {FuOp::kOr, 0xffff0000u, 0x0f0f0f0fu, 0, 0xffff0f0fu},
    {FuOp::kXor, 0xffff0000u, 0x0f0f0f0fu, 0, 0xf0f00f0fu},
    {FuOp::kNot, 0x0000ffffu, 0, 0, 0xffff0000u},
    {FuOp::kShl, 0x3u, 30u, 0, 0xc0000000u},
    {FuOp::kShr, 0xc0000000u, 30u, 0, 0x3u},
    {FuOp::kILt, intToWord(3), intToWord(3), 0, 0u},
    {FuOp::kILe, intToWord(3), intToWord(3), 0, 1u},
    {FuOp::kIGt, intToWord(4), intToWord(3), 0, 1u},
    {FuOp::kIGe, intToWord(2), intToWord(3), 0, 0u},
    {FuOp::kIEq, 0xabcdu, 0xabcdu, 0, 1u},
    {FuOp::kINe, 0xabcdu, 0xabcdu, 0, 0u},
    {FuOp::kFAdd, floatToWord(0.5f), floatToWord(0.25f), 0,
     floatToWord(0.75f)},
    {FuOp::kFSub, floatToWord(1.0f), floatToWord(4.0f), 0,
     floatToWord(-3.0f)},
    {FuOp::kFMul, floatToWord(1.5f), floatToWord(-2.0f), 0,
     floatToWord(-3.0f)},
    {FuOp::kFDiv, floatToWord(1.0f), floatToWord(-4.0f), 0,
     floatToWord(-0.25f)},
    {FuOp::kFMin, floatToWord(-1.0f), floatToWord(2.0f), 0,
     floatToWord(-1.0f)},
    {FuOp::kFMax, floatToWord(-1.0f), floatToWord(2.0f), 0,
     floatToWord(2.0f)},
    {FuOp::kFAbs, floatToWord(-3.5f), 0, 0, floatToWord(3.5f)},
    {FuOp::kFNeg, floatToWord(3.5f), 0, 0, floatToWord(-3.5f)},
    {FuOp::kFLt, floatToWord(-0.0f), floatToWord(0.0f), 0, 0u},
    {FuOp::kFLe, floatToWord(-0.0f), floatToWord(0.0f), 0, 1u},
    {FuOp::kFGt, floatToWord(2.0f), floatToWord(1.0f), 0, 1u},
    {FuOp::kFGe, floatToWord(1.0f), floatToWord(2.0f), 0, 0u},
    {FuOp::kFEq, floatToWord(-0.0f), floatToWord(0.0f), 0, 1u},
    {FuOp::kFNe, floatToWord(1.0f), floatToWord(2.0f), 0, 1u},
    {FuOp::kFExp, floatToWord(1.0f), 0, 0,
     floatToWord(std::exp(1.0f))},
    {FuOp::kFLog, floatToWord(std::exp(1.0f)), 0, 0,
     floatToWord(std::log(std::exp(1.0f)))},
    {FuOp::kFSqrt, floatToWord(16.0f), 0, 0, floatToWord(4.0f)},
    {FuOp::kFRecip, floatToWord(-2.0f), 0, 0, floatToWord(-0.5f)},
    {FuOp::kI2F, intToWord(-3), 0, 0, floatToWord(-3.0f)},
    {FuOp::kF2I, floatToWord(-3.7f), 0, 0, intToWord(-3)},
    {FuOp::kMux, 7u, 0x1111u, 0x2222u, 0x1111u},
    {FuOp::kMux, 0u, 0x1111u, 0x2222u, 0x2222u},
    {FuOp::kFMA, floatToWord(-2.0f), floatToWord(3.0f),
     floatToWord(10.0f), floatToWord(4.0f)},
    {FuOp::kIMA, intToWord(-4), intToWord(5), intToWord(6),
     intToWord(-14)},
};

} // namespace

TEST(FuExec, GoldenValuesCoverEveryOpcode)
{
    std::set<int> covered;
    for (const Golden &g : kGoldens) {
        EXPECT_EQ(fuExec(g.op, g.a, g.b, g.c), g.expect)
            << fuOpName(g.op) << "(" << g.a << ", " << g.b << ", " << g.c
            << ")";
        covered.insert(static_cast<int>(g.op));
    }
    EXPECT_EQ(covered.size(), static_cast<size_t>(FuOp::kNumOps))
        << "every opcode needs at least one golden triple";
}

/** The specializer's monomorphic kernels compute exactly what the
 *  dynamic dispatcher does — on the goldens and on random fuzz. */
TEST(FuExec, MapKernelsMatchDynamicDispatch)
{
    for (const Golden &g : kGoldens) {
        MapKernel k = mapKernelFor(g.op);
        if (k == nullptr)
            continue; // generic-fallback op, dispatches through fuExec
        std::array<Word, kMaxLanes> a{}, b{}, c{}, dst{};
        a.fill(g.a);
        b.fill(g.b);
        c.fill(g.c);
        k(a.data(), b.data(), c.data(), dst.data(), kMaxLanes);
        for (uint32_t l = 0; l < kMaxLanes; ++l)
            EXPECT_EQ(dst[l], g.expect) << fuOpName(g.op) << " lane " << l;
    }

    Rng rng(7);
    for (int op = 0; op < static_cast<int>(FuOp::kNumOps); ++op) {
        MapKernel k = mapKernelFor(static_cast<FuOp>(op));
        if (k == nullptr)
            continue;
        std::array<Word, kMaxLanes> a{}, b{}, c{}, dst{};
        for (uint32_t l = 0; l < kMaxLanes; ++l) {
            a[l] = static_cast<Word>(rng.next());
            b[l] = static_cast<Word>(rng.next());
            c[l] = static_cast<Word>(rng.next());
        }
        k(a.data(), b.data(), c.data(), dst.data(), kMaxLanes);
        for (uint32_t l = 0; l < kMaxLanes; ++l)
            EXPECT_EQ(dst[l],
                      fuExec(static_cast<FuOp>(op), a[l], b[l], c[l]))
                << fuOpName(static_cast<FuOp>(op)) << " lane " << l;
    }
}

TEST(Opcodes, ArityMatchesSemantics)
{
    EXPECT_EQ(fuOpArity(FuOp::kNop), 1);
    EXPECT_EQ(fuOpArity(FuOp::kFSqrt), 1);
    EXPECT_EQ(fuOpArity(FuOp::kIAdd), 2);
    EXPECT_EQ(fuOpArity(FuOp::kMux), 3);
    EXPECT_EQ(fuOpArity(FuOp::kFMA), 3);
    EXPECT_EQ(fuOpArity(FuOp::kIMA), 3);
}

TEST(Opcodes, NamesAreUnique)
{
    std::set<std::string> names;
    for (int i = 0; i < static_cast<int>(FuOp::kNumOps); ++i)
        names.insert(fuOpName(static_cast<FuOp>(i)));
    EXPECT_EQ(names.size(), static_cast<size_t>(FuOp::kNumOps));
}

/** Property: for every reducible op, its identity is neutral. */
class ReducibleOps : public ::testing::TestWithParam<FuOp>
{
};

TEST_P(ReducibleOps, IdentityIsNeutral)
{
    FuOp op = GetParam();
    ASSERT_TRUE(fuOpIsReducible(op));
    Word ident = fuOpIdentity(op);
    Rng rng(42);
    for (int i = 0; i < 50; ++i) {
        Word x = fuOpIsFloat(op)
                     ? floatToWord(rng.nextFloat(-100.0f, 100.0f))
                     : intToWord(static_cast<int32_t>(
                           rng.nextBounded(1 << 20)) -
                       (1 << 19));
        EXPECT_EQ(fuExec(op, ident, x, 0), x)
            << fuOpName(op) << " identity not left-neutral";
        EXPECT_EQ(fuExec(op, x, ident, 0), x)
            << fuOpName(op) << " identity not right-neutral";
    }
}

TEST_P(ReducibleOps, Associative)
{
    FuOp op = GetParam();
    if (fuOpIsFloat(op) &&
        (op == FuOp::kFAdd || op == FuOp::kFMul))
        GTEST_SKIP() << "float add/mul only associative up to rounding";
    Rng rng(43);
    for (int i = 0; i < 50; ++i) {
        Word a = intToWord(static_cast<int32_t>(rng.nextBounded(1000)));
        Word b = intToWord(static_cast<int32_t>(rng.nextBounded(1000)));
        Word c = intToWord(static_cast<int32_t>(rng.nextBounded(1000)));
        if (fuOpIsFloat(op)) {
            a = floatToWord(rng.nextFloat(-10, 10));
            b = floatToWord(rng.nextFloat(-10, 10));
            c = floatToWord(rng.nextFloat(-10, 10));
        }
        EXPECT_EQ(fuExec(op, fuExec(op, a, b, 0), c, 0),
                  fuExec(op, a, fuExec(op, b, c, 0), 0))
            << fuOpName(op);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllReducible, ReducibleOps,
    ::testing::Values(FuOp::kIAdd, FuOp::kIMul, FuOp::kIMin, FuOp::kIMax,
                      FuOp::kAnd, FuOp::kOr, FuOp::kXor, FuOp::kFAdd,
                      FuOp::kFMul, FuOp::kFMin, FuOp::kFMax),
    [](const ::testing::TestParamInfo<FuOp> &info) {
        return fuOpName(info.param);
    });
