# detail: ref vs fabric argOut[1][0]: 0xc043dac6 (-3.060228) vs 0x3e030b8d (0.127974)
# fuzz_pir reproducer (replay with: fuzz_pir --replay <file>)
arch 16 6 8 16 16 2 16 4 6 34
inject 1
# pir seed file (see src/pir/serialize.hpp)
pir 1
program fuzz
argouts 4
args 0
mems 5
mem 1 112 0 1 -1 is0
mem 0 96 0 1 -1 fin1_0
mem 0 96 0 1 -1 fin1_1
mem 0 128 0 1 -1 iin2
mem 1 128 3 1 -1 if2
ctrs 9
ctr 0 1 1 -1 -1 -1 1 0 w0
ctr 0 1 16 -1 -1 -1 1 1 p0
ctr 0 1 1 -1 -1 -1 1 0 k0
ctr 0 1 16 -1 -1 -1 1 1 c0
ctr 0 1 1 -1 -1 -1 1 0 w1
ctr 0 1 16 -1 -1 -1 1 1 i1_0
ctr 0 1 1 -1 -1 -1 1 0 w2
ctr 0 1 16 -1 -1 -1 1 1 n2
ctr 0 1 0 -1 -1 -1 1 1 d2
exprs 25
expr 0 0x28 -1 -1 0 -1 -1 -1 -1 -1 -1 -1
expr 2 0x0 -1 1 0 -1 -1 -1 -1 -1 -1 -1
expr 3 0x0 -1 -1 7 1 0 -1 -1 -1 -1 -1
expr 2 0x0 -1 1 0 -1 -1 -1 -1 -1 -1 -1
expr 2 0x0 -1 2 0 -1 -1 -1 -1 -1 -1 -1
expr 4 0x0 -1 -1 0 -1 -1 -1 0 4 -1 -1
expr 2 0x0 -1 3 0 -1 -1 -1 -1 -1 -1 -1
expr 3 0x0 -1 -1 1 5 6 -1 -1 -1 -1 -1
expr 0 0xbdb47b60 -1 -1 0 -1 -1 -1 -1 -1 -1 -1
expr 0 0x3f5da1cc -1 -1 0 -1 -1 -1 -1 -1 -1 -1
expr 2 0x0 -1 5 0 -1 -1 -1 -1 -1 -1 -1
expr 5 0x0 -1 -1 0 -1 -1 -1 -1 -1 0 -1
expr 5 0x0 -1 -1 0 -1 -1 -1 -1 -1 1 -1
expr 3 0x0 -1 -1 23 11 12 -1 -1 -1 -1 -1
expr 3 0x0 -1 -1 22 13 8 -1 -1 -1 -1 -1
expr 5 0x0 -1 -1 0 -1 -1 -1 -1 -1 0 -1
expr 3 0x0 -1 -1 32 15 9 -1 -1 -1 -1 -1
expr 0 0x7f800000 -1 -1 0 -1 -1 -1 -1 -1 -1 -1
expr 3 0x0 -1 -1 41 16 14 17 -1 -1 -1 -1
expr 2 0x0 -1 7 0 -1 -1 -1 -1 -1 -1 -1
expr 0 0x112e -1 -1 0 -1 -1 -1 -1 -1 -1 -1
expr 5 0x0 -1 -1 0 -1 -1 -1 -1 -1 0 -1
expr 3 0x0 -1 -1 18 21 20 -1 -1 -1 -1 -1
expr 2 0x0 -1 8 0 -1 -1 -1 -1 -1 -1 -1
expr 4 0x0 -1 -1 0 -1 -1 -1 4 23 -1 -1
nodes 2
node 0 -1 root
outer 0 0 ctrs 0 children 1 1
node 1 0 sf1
leafctrs 1 5
streamins 2 1 10 2 10
scalarins 0
sinks 1
sink 1 11 -1 -1 0 21 25 5 1 -1 -1 0 1 -1 -1 -1 -1 -1
root 0
end
#
# controller tree:
#   program fuzz
#     root [sequential]
#       compute sf1 (1 ctrs, 1 sinks)
