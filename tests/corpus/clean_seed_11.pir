# fuzz_pir reproducer (replay with: fuzz_pir --replay <file>)
arch 16 8 8 8 32 2 16 6 6 16
inject 0
# pir seed file (see src/pir/serialize.hpp)
pir 1
program fuzz
argouts 1
args 0
mems 5
mem 0 48 0 1 -1 iin0
mem 0 48 0 1 -1 out0
mem 1 48 0 1 -1 tin0
mem 1 48 0 1 -1 tout0
mem 0 224 0 1 -1 iin1_0
ctrs 7
ctr 0 1 1 -1 -1 -1 1 0 w0
ctr 0 1 1 -1 -1 -1 1 0 t0
ctr 0 1 48 -1 -1 -1 1 1 j0
ctr 0 1 1 -1 -1 -1 1 0 w1
ctr 0 1 112 -1 -1 -1 1 1 i1_0
ctr 112 1 224 -1 -1 -1 1 1 i1_1
ctr 0 1 1 -1 -1 -1 1 1 c1.one
exprs 27
expr 0 0x30 -1 -1 0 -1 -1 -1 -1 -1 -1 -1
expr 2 0x0 -1 1 0 -1 -1 -1 -1 -1 -1 -1
expr 3 0x0 -1 -1 3 1 0 -1 -1 -1 -1 -1
expr 2 0x0 -1 2 0 -1 -1 -1 -1 -1 -1 -1
expr 4 0x0 -1 -1 0 -1 -1 -1 2 3 -1 -1
expr 0 0x744d -1 -1 0 -1 -1 -1 -1 -1 -1 -1
expr 3 0x0 -1 -1 10 4 5 -1 -1 -1 -1 -1
expr 2 0x0 -1 2 0 -1 -1 -1 -1 -1 -1 -1
expr 0 0x542e -1 -1 0 -1 -1 -1 -1 -1 -1 -1
expr 0 0x3af6 -1 -1 0 -1 -1 -1 -1 -1 -1 -1
expr 2 0x0 -1 4 0 -1 -1 -1 -1 -1 -1 -1
expr 5 0x0 -1 -1 0 -1 -1 -1 -1 -1 0 -1
expr 3 0x0 -1 -1 9 11 8 -1 -1 -1 -1 -1
expr 5 0x0 -1 -1 0 -1 -1 -1 -1 -1 0 -1
expr 3 0x0 -1 -1 18 13 9 -1 -1 -1 -1 -1
expr 0 0x7fffffff -1 -1 0 -1 -1 -1 -1 -1 -1 -1
expr 3 0x0 -1 -1 41 14 12 15 -1 -1 -1 -1
expr 2 0x0 -1 5 0 -1 -1 -1 -1 -1 -1 -1
expr 5 0x0 -1 -1 0 -1 -1 -1 -1 -1 0 -1
expr 3 0x0 -1 -1 9 18 8 -1 -1 -1 -1 -1
expr 5 0x0 -1 -1 0 -1 -1 -1 -1 -1 0 -1
expr 3 0x0 -1 -1 18 20 9 -1 -1 -1 -1 -1
expr 0 0x7fffffff -1 -1 0 -1 -1 -1 -1 -1 -1 -1
expr 3 0x0 -1 -1 41 21 19 22 -1 -1 -1 -1
expr 6 0x0 -1 -1 0 -1 -1 -1 -1 -1 -1 0
expr 6 0x0 -1 -1 0 -1 -1 -1 -1 -1 -1 1
expr 3 0x0 -1 -1 6 24 25 -1 -1 -1 -1 -1
nodes 10
node 0 -1 root
outer 0 0 ctrs 0 children 2 1 6
node 0 0 kernel0
outer 0 0 ctrs 1 0 children 1 2
node 0 1 tiles0
outer 0 0 ctrs 1 1 children 3 3 4 5
node 2 2 load0
xfer 1 0 0 2 2 1 48 -1 0 48 -1 -1 -1 1
node 1 2 map0
leafctrs 1 2
streamins 0
scalarins 0
sinks 1
sink 0 6 3 7 0 21 21 -1 1 -1 -1 0 -1 -1 -1 -1 -1 -1
node 2 2 store0
xfer 0 0 1 3 2 1 48 -1 0 48 -1 -1 -1 1
node 0 0 kernel1
outer 0 0 ctrs 1 3 children 3 7 8 9
node 1 6 sf1_0
leafctrs 1 4
streamins 1 4 10
scalarins 0
sinks 1
sink 1 16 -1 -1 0 21 6 4 1 -1 -1 2 -1 -1 -1 -1 -1 -1
node 1 6 sf1_1
leafctrs 1 5
streamins 1 4 17
scalarins 0
sinks 1
sink 1 23 -1 -1 0 21 6 5 1 -1 -1 2 -1 -1 -1 -1 -1 -1
node 1 6 combine1
leafctrs 1 6
streamins 0
scalarins 2 7 0 8 0
sinks 1
sink 1 26 -1 -1 0 21 6 6 1 -1 -1 0 0 -1 -1 -1 -1 -1
root 0
end
#
# controller tree:
#   program fuzz
#     root [sequential]
#       kernel0 [sequential w0]
#         tiles0 [sequential t0]
#           tile load0 iin0<->tin0
#           compute map0 (1 ctrs, 1 sinks)
#           tile store0 out0<->tout0
#       kernel1 [sequential w1]
#         compute sf1_0 (1 ctrs, 1 sinks)
#         compute sf1_1 (1 ctrs, 1 sinks)
#         compute combine1 (1 ctrs, 1 sinks)
