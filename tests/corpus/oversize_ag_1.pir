# fuzz_pir reproducer (replay with: fuzz_pir --replay <file>)
arch 4 2 6 8 2 1 8 1 4 2
inject 0
expect diagnosed
# pir seed file (see src/pir/serialize.hpp)
pir 1
program fuzz
argouts 1
args 0
mems 2
mem 0 16 0 1 -1 fin0_0
mem 0 16 0 1 -1 fin0_1
ctrs 2
ctr 0 1 1 -1 -1 -1 1 0 w0
ctr 0 1 16 -1 -1 -1 1 1 i0_0
exprs 10
expr 0 0xbf8cacfc -1 -1 0 -1 -1 -1 -1 -1 -1 -1
expr 0 0xbe1f7bf0 -1 -1 0 -1 -1 -1 -1 -1 -1 -1
expr 2 0x0 -1 1 0 -1 -1 -1 -1 -1 -1 -1
expr 5 0x0 -1 -1 0 -1 -1 -1 -1 -1 0 -1
expr 5 0x0 -1 -1 0 -1 -1 -1 -1 -1 1 -1
expr 3 0x0 -1 -1 22 3 4 -1 -1 -1 -1 -1
expr 5 0x0 -1 -1 0 -1 -1 -1 -1 -1 0 -1
expr 3 0x0 -1 -1 32 6 1 -1 -1 -1 -1 -1
expr 0 0x0 -1 -1 0 -1 -1 -1 -1 -1 -1 -1
expr 3 0x0 -1 -1 41 7 5 8 -1 -1 -1 -1
nodes 3
node 0 -1 root
outer 0 0 ctrs 0 children 1 1
node 0 0 kernel0
outer 0 0 ctrs 1 0 children 1 2
node 1 1 sf0
leafctrs 1 1
streamins 2 0 2 1 2
scalarins 0
sinks 1
sink 1 9 -1 -1 0 21 21 1 1 -1 -1 0 0 -1 -1 -1 -1 -1
root 0
end
#
# controller tree:
#   program fuzz
#     root [sequential]
#       kernel0 [sequential w0]
#         compute sf0 (1 ctrs, 1 sinks)
