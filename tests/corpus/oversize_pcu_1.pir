# fuzz_pir reproducer (replay with: fuzz_pir --replay <file>)
arch 3 2 6 8 1 2 8 2 2 6
inject 0
expect diagnosed
# pir seed file (see src/pir/serialize.hpp)
pir 1
program fuzz
argouts 1
args 0
mems 2
mem 0 224 0 1 -1 iin0_0
mem 0 224 0 1 -1 iin0_1
ctrs 4
ctr 0 1 1 -1 -1 -1 1 0 w0
ctr 0 1 112 -1 -1 -1 1 1 i0_0
ctr 112 1 224 -1 -1 -1 1 1 i0_1
ctr 0 1 1 -1 -1 -1 1 1 c0.one
exprs 23
expr 0 0x16d5 -1 -1 0 -1 -1 -1 -1 -1 -1 -1
expr 0 0x26c1 -1 -1 0 -1 -1 -1 -1 -1 -1 -1
expr 2 0x0 -1 1 0 -1 -1 -1 -1 -1 -1 -1
expr 5 0x0 -1 -1 0 -1 -1 -1 -1 -1 0 -1
expr 5 0x0 -1 -1 0 -1 -1 -1 -1 -1 1 -1
expr 3 0x0 -1 -1 11 3 4 -1 -1 -1 -1 -1
expr 3 0x0 -1 -1 6 5 0 -1 -1 -1 -1 -1
expr 5 0x0 -1 -1 0 -1 -1 -1 -1 -1 0 -1
expr 3 0x0 -1 -1 18 7 1 -1 -1 -1 -1 -1
expr 0 0x7fffffff -1 -1 0 -1 -1 -1 -1 -1 -1 -1
expr 3 0x0 -1 -1 41 8 6 9 -1 -1 -1 -1
expr 2 0x0 -1 2 0 -1 -1 -1 -1 -1 -1 -1
expr 5 0x0 -1 -1 0 -1 -1 -1 -1 -1 0 -1
expr 5 0x0 -1 -1 0 -1 -1 -1 -1 -1 1 -1
expr 3 0x0 -1 -1 11 12 13 -1 -1 -1 -1 -1
expr 3 0x0 -1 -1 6 14 0 -1 -1 -1 -1 -1
expr 5 0x0 -1 -1 0 -1 -1 -1 -1 -1 0 -1
expr 3 0x0 -1 -1 18 16 1 -1 -1 -1 -1 -1
expr 0 0x7fffffff -1 -1 0 -1 -1 -1 -1 -1 -1 -1
expr 3 0x0 -1 -1 41 17 15 18 -1 -1 -1 -1
expr 6 0x0 -1 -1 0 -1 -1 -1 -1 -1 -1 0
expr 6 0x0 -1 -1 0 -1 -1 -1 -1 -1 -1 1
expr 3 0x0 -1 -1 6 20 21 -1 -1 -1 -1 -1
nodes 5
node 0 -1 root
outer 0 0 ctrs 0 children 1 1
node 0 0 kernel0
outer 0 0 ctrs 1 0 children 3 2 3 4
node 1 1 sf0_0
leafctrs 1 1
streamins 2 0 2 1 2
scalarins 0
sinks 1
sink 1 10 -1 -1 0 21 6 1 1 -1 -1 2 -1 -1 -1 -1 -1 -1
node 1 1 sf0_1
leafctrs 1 2
streamins 2 0 11 1 11
scalarins 0
sinks 1
sink 1 19 -1 -1 0 21 6 2 1 -1 -1 2 -1 -1 -1 -1 -1 -1
node 1 1 combine0
leafctrs 1 3
streamins 0
scalarins 2 2 0 3 0
sinks 1
sink 1 22 -1 -1 0 21 6 3 1 -1 -1 0 0 -1 -1 -1 -1 -1
root 0
end
#
# controller tree:
#   program fuzz
#     root [sequential]
#       kernel0 [sequential w0]
#         compute sf0_0 (1 ctrs, 1 sinks)
#         compute sf0_1 (1 ctrs, 1 sinks)
#         compute combine0 (1 ctrs, 1 sinks)
