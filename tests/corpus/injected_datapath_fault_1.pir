# detail: ref vs fabric dram 'out1'[42]: 0xbffad57c (-1.959640) vs 0xbffa557c (-1.955734)
# fuzz_pir reproducer (replay with: fuzz_pir --replay <file>)
arch 16 8 6 8 16 2 16 6 6 34
inject 3
# pir seed file (see src/pir/serialize.hpp)
pir 1
program fuzz
argouts 3
args 0
mems 7
mem 0 128 0 1 -1 iin0
mem 1 128 3 1 -1 if0
mem 0 96 0 1 -1 fin1
mem 0 96 0 1 -1 out1
mem 1 32 0 1 -1 tin1
mem 1 32 0 1 -1 tout1
mem 1 48 0 1 -1 is2
ctrs 10
ctr 0 1 1 -1 -1 -1 1 0 w0
ctr 0 1 128 -1 -1 -1 1 1 n0
ctr 0 1 0 -1 1 0 1 1 d0
ctr 0 1 1 -1 -1 -1 1 0 w1
ctr 0 1 3 -1 -1 -1 1 0 t1
ctr 0 1 16 -1 -1 -1 1 1 j1
ctr 0 1 1 -1 -1 -1 1 0 w2
ctr 0 1 16 -1 -1 -1 1 1 p2
ctr 0 1 1 -1 -1 -1 1 0 k2
ctr 0 1 16 -1 -1 -1 1 1 c2
exprs 21
expr 2 0x0 -1 1 0 -1 -1 -1 -1 -1 -1 -1
expr 0 0x960 -1 -1 0 -1 -1 -1 -1 -1 -1 -1
expr 5 0x0 -1 -1 0 -1 -1 -1 -1 -1 0 -1
expr 3 0x0 -1 -1 18 2 1 -1 -1 -1 -1 -1
expr 2 0x0 -1 2 0 -1 -1 -1 -1 -1 -1 -1
expr 4 0x0 -1 -1 0 -1 -1 -1 1 4 -1 -1
expr 0 0x20 -1 -1 0 -1 -1 -1 -1 -1 -1 -1
expr 2 0x0 -1 4 0 -1 -1 -1 -1 -1 -1 -1
expr 3 0x0 -1 -1 3 7 6 -1 -1 -1 -1 -1
expr 2 0x0 -1 5 0 -1 -1 -1 -1 -1 -1 -1
expr 4 0x0 -1 -1 0 -1 -1 -1 4 9 -1 -1
expr 3 0x0 -1 -1 26 10 10 -1 -1 -1 -1 -1
expr 2 0x0 -1 5 0 -1 -1 -1 -1 -1 -1 -1
expr 0 0x57 -1 -1 0 -1 -1 -1 -1 -1 -1 -1
expr 2 0x0 -1 7 0 -1 -1 -1 -1 -1 -1 -1
expr 3 0x0 -1 -1 9 14 13 -1 -1 -1 -1 -1
expr 2 0x0 -1 7 0 -1 -1 -1 -1 -1 -1 -1
expr 2 0x0 -1 8 0 -1 -1 -1 -1 -1 -1 -1
expr 4 0x0 -1 -1 0 -1 -1 -1 6 17 -1 -1
expr 2 0x0 -1 9 0 -1 -1 -1 -1 -1 -1 -1
expr 3 0x0 -1 -1 1 18 19 -1 -1 -1 -1 -1
nodes 5
node 0 -1 root
outer 0 0 ctrs 0 children 2 1 2
node 1 0 sel0
leafctrs 1 1
streamins 1 0 0
scalarins 0
sinks 1
sink 2 0 1 -1 0 21 21 -1 1 -1 -1 0 -1 3 0 -1 -1 -1
node 0 0 tiles1
outer 0 0 ctrs 1 4 children 2 3 4
node 2 2 load1
xfer 1 0 2 4 8 1 32 -1 0 32 -1 -1 -1 1
node 2 2 store1
xfer 0 0 3 5 8 1 32 -1 0 32 -1 -1 -1 1
root 0
end
#
# controller tree:
#   program fuzz
#     root [sequential]
#       compute sel0 (1 ctrs, 1 sinks)
#       tiles1 [sequential t1]
#         tile load1 fin1<->tin1
#         tile store1 out1<->tout1
