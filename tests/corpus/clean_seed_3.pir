# fuzz_pir reproducer (replay with: fuzz_pir --replay <file>)
arch 16 8 8 16 8 4 16 4 6 16
inject 0
# pir seed file (see src/pir/serialize.hpp)
pir 1
program fuzz
argouts 2
args 0
mems 2
mem 0 96 0 1 -1 iin0
mem 1 96 3 1 -1 if0
ctrs 3
ctr 0 1 1 -1 -1 -1 1 0 w0
ctr 0 1 96 -1 -1 -1 1 1 n0
ctr 0 1 0 -1 2 0 1 1 d0
exprs 6
expr 2 0x0 -1 1 0 -1 -1 -1 -1 -1 -1 -1
expr 0 0x13c3 -1 -1 0 -1 -1 -1 -1 -1 -1 -1
expr 5 0x0 -1 -1 0 -1 -1 -1 -1 -1 0 -1
expr 3 0x0 -1 -1 18 2 1 -1 -1 -1 -1 -1
expr 2 0x0 -1 2 0 -1 -1 -1 -1 -1 -1 -1
expr 4 0x0 -1 -1 0 -1 -1 -1 1 4 -1 -1
nodes 4
node 0 -1 root
outer 0 0 ctrs 0 children 1 1
node 0 0 kernel0
outer 0 0 ctrs 1 0 children 2 2 3
node 1 1 sel0
leafctrs 1 1
streamins 1 0 0
scalarins 0
sinks 1
sink 2 0 1 -1 0 21 21 -1 1 -1 -1 0 -1 3 0 -1 -1 -1
node 1 1 red0
leafctrs 1 2
streamins 0
scalarins 0
sinks 1
sink 1 5 -1 -1 0 21 1 2 1 -1 -1 0 1 -1 -1 -1 -1 -1
root 0
end
#
# controller tree:
#   program fuzz
#     root [sequential]
#       kernel0 [sequential w0]
#         compute sel0 (1 ctrs, 1 sinks)
#         compute red0 (1 ctrs, 1 sinks)
