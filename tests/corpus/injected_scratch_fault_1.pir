# detail: ref vs fabric dram 'out0'[0]: 0xffffdd83 (-nan) vs 0x0000dd83 (0.000000)
# fuzz_pir reproducer (replay with: fuzz_pir --replay <file>)
arch 16 6 8 16 16 4 32 3 6 34
inject 2
# pir seed file (see src/pir/serialize.hpp)
pir 1
program fuzz
argouts 0
args 0
mems 4
mem 0 144 0 1 -1 iin0
mem 0 144 0 1 -1 out0
mem 1 48 0 1 -1 tin0
mem 1 48 0 1 -1 tout0
ctrs 3
ctr 0 1 1 -1 -1 -1 1 0 w0
ctr 0 1 3 -1 -1 -1 1 0 t0
ctr 0 1 16 -1 -1 -1 1 1 j0
exprs 8
expr 0 0x30 -1 -1 0 -1 -1 -1 -1 -1 -1 -1
expr 2 0x0 -1 1 0 -1 -1 -1 -1 -1 -1 -1
expr 3 0x0 -1 -1 3 1 0 -1 -1 -1 -1 -1
expr 2 0x0 -1 2 0 -1 -1 -1 -1 -1 -1 -1
expr 4 0x0 -1 -1 0 -1 -1 -1 2 3 -1 -1
expr 0 0x6fb9 -1 -1 0 -1 -1 -1 -1 -1 -1 -1
expr 3 0x0 -1 -1 2 4 5 -1 -1 -1 -1 -1
expr 2 0x0 -1 2 0 -1 -1 -1 -1 -1 -1 -1
nodes 4
node 0 -1 root
outer 0 0 ctrs 0 children 1 1
node 0 0 tiles0
outer 0 0 ctrs 1 1 children 2 2 3
node 1 1 map0
leafctrs 1 2
streamins 0
scalarins 0
sinks 1
sink 0 4 3 7 0 21 21 -1 1 -1 -1 0 -1 -1 -1 -1 -1 -1
node 2 1 store0
xfer 0 0 1 3 2 1 48 -1 0 48 -1 -1 -1 1
root 0
end
#
# controller tree:
#   program fuzz
#     root [sequential]
#       tiles0 [sequential t0]
#         compute map0 (1 ctrs, 1 sinks)
#         tile store0 out0<->tout0
