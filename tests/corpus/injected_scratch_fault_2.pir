# detail: ref vs fabric dram 'out0'[0]: 0xbfc67d5c (-1.550701) vs 0xbfc77d5c (-1.558513)
# fuzz_pir reproducer (replay with: fuzz_pir --replay <file>)
arch 12 6 8 8 8 2 16 3 8 16
inject 2
# pir seed file (see src/pir/serialize.hpp)
pir 1
program fuzz
argouts 0
args 0
mems 4
mem 0 32 0 1 -1 fin0
mem 0 32 0 1 -1 out0
mem 1 32 0 2 -1 tin0
mem 1 32 0 2 -1 tout0
ctrs 3
ctr 0 1 1 -1 -1 -1 1 0 w0
ctr 0 1 1 -1 -1 -1 1 0 t0
ctr 0 1 16 -1 -1 -1 1 1 j0
exprs 8
expr 0 0x20 -1 -1 0 -1 -1 -1 -1 -1 -1 -1
expr 2 0x0 -1 1 0 -1 -1 -1 -1 -1 -1 -1
expr 3 0x0 -1 -1 3 1 0 -1 -1 -1 -1 -1
expr 2 0x0 -1 2 0 -1 -1 -1 -1 -1 -1 -1
expr 4 0x0 -1 -1 0 -1 -1 -1 2 3 -1 -1
expr 0 0xbf7d8a54 -1 -1 0 -1 -1 -1 -1 -1 -1 -1
expr 3 0x0 -1 -1 25 4 5 -1 -1 -1 -1 -1
expr 2 0x0 -1 2 0 -1 -1 -1 -1 -1 -1 -1
nodes 5
node 0 -1 root
outer 0 0 ctrs 0 children 1 1
node 0 0 tiles0
outer 0 0 ctrs 1 1 children 3 2 3 4
node 2 1 load0
xfer 1 0 0 2 2 1 32 -1 0 32 -1 -1 -1 1
node 1 1 map0
leafctrs 1 2
streamins 0
scalarins 0
sinks 1
sink 0 4 3 7 0 21 21 -1 1 -1 -1 0 -1 -1 -1 -1 -1 -1
node 2 1 store0
xfer 0 0 1 3 2 1 32 -1 0 32 -1 -1 -1 1
root 0
end
#
# controller tree:
#   program fuzz
#     root [sequential]
#       tiles0 [sequential t0]
#         tile load0 fin0<->tin0
#         compute map0 (1 ctrs, 1 sinks)
#         tile store0 out0<->tout0
