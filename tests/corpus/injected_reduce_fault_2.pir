# detail: ref vs fabric argOut[1][0]: 0x00184681 (0.000000) vs 0x00149ea5 (0.000000)
# fuzz_pir reproducer (replay with: fuzz_pir --replay <file>)
arch 12 6 8 8 32 2 16 4 6 34
inject 1
# pir seed file (see src/pir/serialize.hpp)
pir 1
program fuzz
argouts 3
args 0
mems 3
mem 1 48 0 1 -1 is0
mem 0 96 0 1 -1 iin1_0
mem 1 32 3 1 -1 is2
ctrs 10
ctr 0 1 1 -1 -1 -1 1 0 w0
ctr 0 1 16 -1 -1 -1 1 1 p0
ctr 0 1 16 -1 -1 -1 1 1 c0
ctr 0 1 1 -1 -1 -1 1 0 w1
ctr 0 1 16 -1 -1 -1 1 1 i1_0
ctr 48 1 64 -1 -1 -1 1 1 i1_1
ctr 0 1 1 -1 -1 -1 1 1 c1.one
ctr 0 1 1 -1 -1 -1 1 0 w2
ctr 0 1 16 -1 -1 -1 1 1 p2
ctr 0 1 16 -1 -1 -1 1 1 c2
exprs 25
expr 0 0x48 -1 -1 0 -1 -1 -1 -1 -1 -1 -1
expr 2 0x0 -1 1 0 -1 -1 -1 -1 -1 -1 -1
expr 3 0x0 -1 -1 6 1 0 -1 -1 -1 -1 -1
expr 2 0x0 -1 1 0 -1 -1 -1 -1 -1 -1 -1
expr 2 0x0 -1 2 0 -1 -1 -1 -1 -1 -1 -1
expr 4 0x0 -1 -1 0 -1 -1 -1 0 4 -1 -1
expr 0 0x68ad -1 -1 0 -1 -1 -1 -1 -1 -1 -1
expr 0 0x313c -1 -1 0 -1 -1 -1 -1 -1 -1 -1
expr 2 0x0 -1 4 0 -1 -1 -1 -1 -1 -1 -1
expr 5 0x0 -1 -1 0 -1 -1 -1 -1 -1 0 -1
expr 2 0x0 -1 5 0 -1 -1 -1 -1 -1 -1 -1
expr 5 0x0 -1 -1 0 -1 -1 -1 -1 -1 0 -1
expr 6 0x0 -1 -1 0 -1 -1 -1 -1 -1 -1 0
expr 6 0x0 -1 -1 0 -1 -1 -1 -1 -1 -1 1
expr 3 0x0 -1 -1 1 12 13 -1 -1 -1 -1 -1
expr 0 0xe3 -1 -1 0 -1 -1 -1 -1 -1 -1 -1
expr 2 0x0 -1 8 0 -1 -1 -1 -1 -1 -1 -1
expr 3 0x0 -1 -1 9 16 15 -1 -1 -1 -1 -1
expr 2 0x0 -1 8 0 -1 -1 -1 -1 -1 -1 -1
expr 2 0x0 -1 9 0 -1 -1 -1 -1 -1 -1 -1
expr 0 0x1f -1 -1 0 -1 -1 -1 -1 -1 -1 -1
expr 0 0x3 -1 -1 0 -1 -1 -1 -1 -1 -1 -1
expr 3 0x0 -1 -1 3 19 21 -1 -1 -1 -1 -1
expr 3 0x0 -1 -1 9 22 20 -1 -1 -1 -1 -1
expr 4 0x0 -1 -1 0 -1 -1 -1 2 23 -1 -1
nodes 3
node 0 -1 root
outer 0 0 ctrs 0 children 2 1 2
node 1 0 fill2
leafctrs 1 8
streamins 0
scalarins 0
sinks 1
sink 0 16 2 18 0 21 21 -1 1 -1 -1 0 -1 -1 -1 -1 -1 -1
node 1 0 drain2
leafctrs 1 9
streamins 0
scalarins 0
sinks 1
sink 1 24 -1 -1 0 21 7 9 1 -1 -1 0 2 -1 -1 -1 -1 -1
root 0
end
#
# controller tree:
#   program fuzz
#     root [sequential]
#       compute fill2 (1 ctrs, 1 sinks)
#       compute drain2 (1 ctrs, 1 sinks)
