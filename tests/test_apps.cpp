/** @file Benchmark-construction checks: analytic characteristics agree
 *  with the reference evaluator's instrumentation, and measured cycle
 *  counts stay inside regression envelopes. */

#include <gtest/gtest.h>

#include "apps/apps.hpp"

using namespace plast;

TEST(Apps, RegistryCoversTable4)
{
    EXPECT_EQ(apps::allApps().size(), 13u);
    int sparse = 0;
    for (const auto &s : apps::allApps())
        sparse += s.sparse;
    EXPECT_EQ(sparse, 3) << "SMDV, PageRank, BFS";
}

class AppAnalytics : public ::testing::TestWithParam<int>
{
};

TEST_P(AppAnalytics, FlopCountTracksEvaluator)
{
    setVerbose(false);
    const auto &spec = apps::allApps()[static_cast<size_t>(GetParam())];
    apps::AppInstance app = spec.make(apps::Scale::kTiny);
    Runner r(app.prog);
    app.load(r);
    double measured = static_cast<double>(r.referenceCounts().aluOps);
    // Analytic FLOP counts exclude address arithmetic; allow slack in
    // both directions but require the right order of magnitude.
    EXPECT_GT(measured, app.flops * 0.2) << spec.name;
    EXPECT_LT(measured, app.flops * 8.0 + 4096) << spec.name;
}

TEST_P(AppAnalytics, DramTrafficTracksEvaluator)
{
    setVerbose(false);
    const auto &spec = apps::allApps()[static_cast<size_t>(GetParam())];
    apps::AppInstance app = spec.make(apps::Scale::kTiny);
    Runner r(app.prog);
    app.load(r);
    const auto &c = r.referenceCounts();
    double measured =
        4.0 * static_cast<double>(c.dramWordsRead + c.dramWordsWritten);
    EXPECT_GT(measured, app.dramBytes * 0.2) << spec.name;
    EXPECT_LT(measured, app.dramBytes * 5.0 + 4096) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppAnalytics,
                         ::testing::Range(0, 13),
                         [](const ::testing::TestParamInfo<int> &info) {
                             std::string n =
                                 apps::allApps()[static_cast<size_t>(
                                                     info.param)]
                                     .name;
                             for (char &ch : n) {
                                 if (!isalnum(
                                         static_cast<unsigned char>(ch)))
                                     ch = '_';
                             }
                             return n;
                         });

/** Cycle-count regression envelopes: catches accidental 2x slowdowns
 *  or impossibly fast (= broken timing) results at tiny scale. */
struct Envelope
{
    const char *name;
    Cycles lo, hi;
};

class CycleEnvelope : public ::testing::TestWithParam<Envelope>
{
};

TEST_P(CycleEnvelope, WithinRegressionBounds)
{
    setVerbose(false);
    Envelope env = GetParam();
    for (const auto &spec : apps::allApps()) {
        if (spec.name != env.name)
            continue;
        apps::AppInstance app = spec.make(apps::Scale::kTiny);
        Runner r(std::move(app.prog));
        app.load(r);
        Cycles c = r.run().cycles;
        EXPECT_GE(c, env.lo) << "suspiciously fast: timing broken?";
        EXPECT_LE(c, env.hi) << "performance regression";
        return;
    }
    FAIL();
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, CycleEnvelope,
    ::testing::Values(Envelope{"InnerProduct", 300, 2200},
                      Envelope{"OuterProduct", 4000, 14000},
                      Envelope{"Black-Scholes", 400, 2500},
                      Envelope{"TPC-H Query 6", 600, 3500},
                      Envelope{"GEMM", 1200, 7000},
                      Envelope{"GDA", 2000, 11000},
                      Envelope{"LogReg", 1300, 7500},
                      Envelope{"SGD", 1800, 10000},
                      Envelope{"Kmeans", 1400, 8000},
                      Envelope{"CNN", 450, 2600},
                      Envelope{"SMDV", 350, 1900},
                      Envelope{"PageRank", 500, 2800},
                      Envelope{"BFS", 550, 3100}),
    [](const ::testing::TestParamInfo<Envelope> &info) {
        std::string n = info.param.name;
        for (char &ch : n) {
            if (!isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        }
        return n;
    });
