/** @file Shared unit machinery: token gating, scalar referencing,
 *  dynamic bound resolution, scalar datapath evaluation, pop cadence. */

#include <gtest/gtest.h>

#include "sim/unitcommon.hpp"

using namespace plast;

TEST(UnitCommon, SelfStartFiresExactlyOnce)
{
    UnitPorts ports;
    ports.size(0, 0, 2, 0, 0, 2);
    ControlCfg ctrl; // no token inputs
    EXPECT_TRUE(tokensReady(ctrl, ports, /*selfStarted=*/false));
    EXPECT_FALSE(tokensReady(ctrl, ports, /*selfStarted=*/true));
}

TEST(UnitCommon, AllTokenInputsRequired)
{
    UnitPorts ports;
    ports.size(0, 0, 2, 0, 0, 2);
    ControlStream a("a", 1, 4), b("b", 1, 4);
    ports.ctlIn[0].stream = &a;
    ports.ctlIn[1].stream = &b;
    ControlCfg ctrl;
    ctrl.tokenIns = {0, 1};
    a.preload(Token{});
    EXPECT_FALSE(tokensReady(ctrl, ports, false));
    b.preload(Token{});
    EXPECT_TRUE(tokensReady(ctrl, ports, false));
    consumeTokens(ctrl, ports);
    EXPECT_FALSE(tokensReady(ctrl, ports, false));
}

TEST(UnitCommon, ResolveBoundsReadsAndScalesScalars)
{
    UnitPorts ports;
    ports.size(2, 0, 0, 0, 0, 0);
    ports.scalIn[0].isConst = true;
    ports.scalIn[0].constVal = intToWord(5);
    ChainCfg chain;
    CounterCfg fixed;
    fixed.max = 10;
    CounterCfg dyn;
    dyn.maxFromScalarIn = 0;
    dyn.boundScale = 8;
    chain.ctrs = {fixed, dyn};
    auto bounds = resolveBounds(chain, ports);
    ASSERT_EQ(bounds.size(), 2u);
    EXPECT_EQ(bounds[0], 10);
    EXPECT_EQ(bounds[1], 40); // 5 * 8
}

TEST(UnitCommon, StageRefsFindAllOperands)
{
    std::vector<StageCfg> stages(2);
    stages[0].a = Operand::scalarIn(3);
    stages[0].b = Operand::vectorIn(1);
    stages[1].a = Operand::scalarIn(3); // duplicate
    stages[1].c = Operand::vectorIn(0);
    std::vector<uint8_t> scalars, vectors;
    stageRefs(stages, scalars, vectors);
    EXPECT_EQ(scalars, (std::vector<uint8_t>{3}));
    EXPECT_EQ(vectors, (std::vector<uint8_t>{0, 1}));
}

TEST(UnitCommon, ScalarDatapathEvaluatesAffineChains)
{
    // addr = (c0 * 7 + c1) using IMA, reading one scalar input.
    UnitPorts ports;
    ports.size(1, 0, 0, 0, 0, 0);
    ports.scalIn[0].isConst = true;
    ports.scalIn[0].constVal = intToWord(100);
    std::vector<StageCfg> stages(2);
    stages[0].op = FuOp::kIMA;
    stages[0].a = Operand::ctr(0);
    stages[0].b = Operand::immInt(7);
    stages[0].c = Operand::ctr(1);
    stages[0].dstReg = 0;
    stages[1].op = FuOp::kIAdd;
    stages[1].a = Operand::reg(0);
    stages[1].b = Operand::scalarIn(0);
    stages[1].dstReg = 1;

    Wavefront wf;
    wf.ctr[0] = 3;
    wf.ctr[1] = 2;
    wf.mask = 1;
    ScalarRegs regs;
    Word r = evalScalarStages(stages, 1, wf, ports, regs);
    EXPECT_EQ(wordToInt(r), 3 * 7 + 2 + 100);
}

TEST(UnitCommon, PopEveryDelaysScalarConsumption)
{
    ScalarStream s("s", 1, 8);
    ScalarInPort port;
    port.stream = &s;
    port.popEvery = 3;
    s.preload(11);
    s.preload(22);
    // Three pops consume one element.
    port.pop();
    port.pop();
    EXPECT_EQ(port.front(), 11u);
    port.pop();
    Cycles now = 0;
    s.tick(now);
    EXPECT_EQ(port.front(), 22u);
}
