/** @file Unified telemetry: MetricRegistry semantics (histogram
 *  bucket edges, counter wrap, expositions), host-phase profiling
 *  spans and the merged Perfetto timeline, RunManifest schema
 *  stability, and interp-vs-specialized stats parity. */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "base/logging.hpp"
#include "base/metrics.hpp"
#include "base/profile.hpp"
#include "base/trace.hpp"
#include "runtime/manifest.hpp"
#include "runtime/runner.hpp"
#include "serve/server.hpp"
#include "serve/traffic.hpp"

using namespace plast;

// ---- Histogram ------------------------------------------------------

TEST(Histogram, ValueOnEdgeBelongsToThatBucket)
{
    Histogram h({10, 20, 30});
    h.observe(10); // exactly on edge 0
    h.observe(11); // first bucket with 11 <= edge -> edge 20
    h.observe(20); // exactly on edge 1
    h.observe(30); // exactly on edge 2
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 2u);
    EXPECT_EQ(h.buckets()[2], 1u);
    EXPECT_EQ(h.buckets()[3], 0u); // overflow empty
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 71u);
}

TEST(Histogram, OverflowBucketCatchesAboveLastEdge)
{
    Histogram h({10, 20});
    h.observe(21);
    h.observe(1000);
    EXPECT_EQ(h.buckets()[0], 0u);
    EXPECT_EQ(h.buckets()[1], 0u);
    EXPECT_EQ(h.buckets()[2], 2u);
    EXPECT_EQ(h.count(), 2u);
}

TEST(Histogram, ZeroLandsInFirstBucket)
{
    Histogram h({0, 5});
    h.observe(0);
    EXPECT_EQ(h.buckets()[0], 1u);
}

TEST(Histogram, EmptyEdgesIsPureCountSum)
{
    Histogram h(std::vector<uint64_t>{});
    h.observe(7);
    h.observe(9);
    ASSERT_EQ(h.buckets().size(), 1u);
    EXPECT_EQ(h.buckets()[0], 2u);
    EXPECT_EQ(h.sum(), 16u);
}

TEST(Histogram, CumulativeCountsAreMonotone)
{
    Histogram h({1, 2, 4});
    for (uint64_t v : {0u, 1u, 2u, 3u, 4u, 5u})
        h.observe(v);
    EXPECT_EQ(h.cumulative(0), 2u); // 0, 1
    EXPECT_EQ(h.cumulative(1), 3u); // + 2
    EXPECT_EQ(h.cumulative(2), 5u); // + 3, 4
    EXPECT_EQ(h.count(), 6u);       // + overflow (5)
}

// ---- MetricRegistry -------------------------------------------------

TEST(MetricRegistry, CounterIncrementsWrapModulo64)
{
    MetricRegistry reg;
    reg.setCounter("c", ~0ull);
    reg.count("c", 2); // wraps: 2^64 - 1 + 2 == 1 (mod 2^64)
    EXPECT_EQ(reg.counterValue("c"), 1u);
}

TEST(MetricRegistry, GaugeLastWriteWins)
{
    MetricRegistry reg;
    reg.gauge("g", 5);
    reg.gauge("g", -3);
    EXPECT_EQ(reg.gaugeValue("g"), -3);
    EXPECT_EQ(reg.gaugeValue("missing"), 0);
}

TEST(MetricRegistry, HistogramGetOrCreateIsStable)
{
    MetricRegistry reg;
    Histogram &a = reg.histogram("h", {1, 2});
    a.observe(1);
    Histogram &b = reg.histogram("h", {1, 2});
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(reg.findHistogram("h")->count(), 1u);
    EXPECT_EQ(reg.findHistogram("nope"), nullptr);
}

TEST(MetricRegistry, ImportStatsIsIdempotentAndPrefixed)
{
    StatSet s;
    s.set("cycles", 100);
    s.set("pcu00.laneOps", 7);
    MetricRegistry reg;
    reg.importStats(s, "sim.");
    reg.importStats(s, "sim."); // set-semantics: no double counting
    EXPECT_EQ(reg.counterValue("sim.cycles"), 100u);
    EXPECT_EQ(reg.counterValue("sim.pcu00.laneOps"), 7u);
    EXPECT_FALSE(reg.hasCounter("cycles"));
}

TEST(MetricRegistry, JsonExpositionGolden)
{
    MetricRegistry reg;
    reg.count("b.counter", 3);
    reg.gauge("a.gauge", -2);
    Histogram &h = reg.histogram("lat", {10, 20});
    h.observe(5);
    h.observe(15);
    h.observe(99);
    std::ostringstream os;
    reg.writeJson(os);
    EXPECT_EQ(os.str(), "{\n"
                        "  \"a.gauge\": -2,\n"
                        "  \"b.counter\": 3,\n"
                        "  \"lat.bucket.le_10\": 1,\n"
                        "  \"lat.bucket.le_20\": 1,\n"
                        "  \"lat.bucket.overflow\": 1,\n"
                        "  \"lat.count\": 3,\n"
                        "  \"lat.sum\": 119\n"
                        "}\n");
}

TEST(MetricRegistry, PrometheusExpositionGolden)
{
    MetricRegistry reg;
    reg.count("compile.route.rounds", 4);
    reg.gauge("fabric.pcus", 64);
    Histogram &h = reg.histogram("span.us", {10});
    h.observe(3);
    h.observe(50);
    std::ostringstream os;
    reg.writePrometheus(os);
    EXPECT_EQ(os.str(),
              "# TYPE plast_compile_route_rounds counter\n"
              "plast_compile_route_rounds 4\n"
              "# TYPE plast_fabric_pcus gauge\n"
              "plast_fabric_pcus 64\n"
              "# TYPE plast_span_us histogram\n"
              "plast_span_us_bucket{le=\"10\"} 1\n"
              "plast_span_us_bucket{le=\"+Inf\"} 2\n"
              "plast_span_us_sum 53\n"
              "plast_span_us_count 2\n");
}

TEST(MetricRegistry, ServeStoreCountersAreExposedInBothFormats)
{
    // The persistent-store counters (DESIGN.md §17) ride the same
    // registry as every other serve.* metric: one warm-restart pair
    // of runs must surface writes on the cold pass and hits on the
    // warm pass, in both the flat-JSON and Prometheus expositions.
    char tmpl[] = "/tmp/plast-telemetry-XXXXXX";
    char *dir = mkdtemp(tmpl);
    ASSERT_NE(dir, nullptr);

    serve::TrafficOptions t;
    t.uniques = 2;
    t.jobs = 4;
    serve::ServeOptions o;
    o.workers = 2;
    o.storeDir = std::string(dir) + "/store";
    o.storeSync = false;

    auto runOnce = [&](MetricRegistry &reg) {
        serve::Server server(o);
        server.start();
        for (serve::JobSpec &s : serve::makeTraffic(t))
            server.submit(std::move(s));
        server.drain();
        server.exportMetrics(reg);
    };
    MetricRegistry cold, warm;
    runOnce(cold);
    runOnce(warm);

    EXPECT_EQ(cold.counterValue("serve.store.writes"), t.uniques);
    EXPECT_EQ(cold.counterValue("serve.store.hits"), 0u);
    EXPECT_EQ(warm.counterValue("serve.store.hits"), t.uniques);
    EXPECT_EQ(warm.counterValue("serve.store.misses"), 0u);
    for (const char *key :
         {"serve.store.hits", "serve.store.misses", "serve.store.writes",
          "serve.store.write_failures", "serve.store.corrupt_quarantined",
          "serve.store.evicted", "serve.store.fallback",
          "serve.store.records", "serve.store.bytes"})
        EXPECT_TRUE(warm.hasCounter(key)) << key;

    std::ostringstream js, prom;
    warm.writeJson(js);
    warm.writePrometheus(prom);
    EXPECT_NE(js.str().find("\"serve.store.hits\": 2"),
              std::string::npos)
        << js.str();
    EXPECT_NE(prom.str().find("plast_serve_store_hits 2"),
              std::string::npos);
    EXPECT_NE(prom.str().find("# TYPE plast_serve_store_hits counter"),
              std::string::npos);

    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
}

TEST(MetricRegistry, ClearEmptiesEverything)
{
    MetricRegistry reg;
    reg.count("c");
    reg.gauge("g", 1);
    reg.histogram("h", {1}).observe(1);
    reg.clear();
    std::ostringstream os;
    reg.writeJson(os);
    EXPECT_EQ(os.str(), "{\n}\n");
}

// ---- HostProfiler ---------------------------------------------------

TEST(HostProfiler, ScopedSpanRecordsAndTotalsAccumulate)
{
    HostProfiler &prof = HostProfiler::instance();
    prof.clear();
    { ScopedSpan s("test.phase"); }
    { ScopedSpan s("test.phase"); }
    auto spans = prof.spans();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_STREQ(spans[0].name, "test.phase");
    EXPECT_LE(spans[0].beginUs, spans[0].endUs);
    auto totals = prof.totalsUs();
    EXPECT_EQ(totals.count("test.phase"), 1u);
    prof.clear();
    EXPECT_TRUE(prof.spans().empty());
    EXPECT_EQ(prof.dropped(), 0u);
}

TEST(HostProfiler, DisabledSpansRecordNothing)
{
    HostProfiler &prof = HostProfiler::instance();
    prof.clear();
    prof.setEnabled(false);
    { ScopedSpan s("test.off"); }
    prof.setEnabled(true);
    EXPECT_TRUE(prof.spans().empty());
}

TEST(HostProfiler, HostSpanJsonFragmentsAreWellFormed)
{
    HostProfiler &prof = HostProfiler::instance();
    prof.clear();
    { ScopedSpan s("test.json"); }
    std::ostringstream os;
    writeHostSpansJson(os, prof);
    std::string out = os.str();
    EXPECT_NE(out.find("\"name\":\"host (wall-clock us)\""),
              std::string::npos);
    EXPECT_NE(out.find("\"name\":\"test.json\",\"pid\":2"),
              std::string::npos);
    // Fragments splice after an existing event: must start with ",".
    EXPECT_EQ(out.rfind(",\n{", 0), 0u);
    prof.clear();
}

// ---- merged Perfetto timeline --------------------------------------

TEST(Telemetry, TraceMergesHostSpansWithSimCycles)
{
    if (!kTracingCompiled)
        GTEST_SKIP() << "tracing compiled out";
    setVerbose(false);
    HostProfiler::instance().clear();
    apps::AppInstance app = apps::allApps()[0].make(apps::Scale::kTiny);
    SimOptions opts;
    opts.trace.enabled = true;
    Runner runner(app.prog, ArchParams::plasticineFinal(), opts);
    app.load(runner);
    runner.run();
    std::ostringstream os;
    runner.fabric()->writeTrace(os);
    std::string out = os.str();
    // One JSON document, two Perfetto "processes": the fabric's
    // simulated-cycle events (pid 1) and the host phases (pid 2).
    EXPECT_NE(out.find("\"name\":\"fabric (simulated cycles as us)\""),
              std::string::npos);
    EXPECT_NE(out.find("\"name\":\"host (wall-clock us)\""),
              std::string::npos);
    // The instrumented phases all made it onto the host track.
    for (const char *phase : {"compile", "compile.placeroute",
                              "host.build-fabric", "sim.run"}) {
        EXPECT_NE(out.find(std::string("\"name\":\"") + phase +
                           "\",\"pid\":2"),
                  std::string::npos)
            << "missing host span " << phase;
    }
    // Document closes the traceEvents array and the outer object.
    EXPECT_NE(out.find("\n],\"displayTimeUnit\""), std::string::npos);
    EXPECT_EQ(out.substr(out.size() - 3), "}}\n");
}

// ---- RunManifest ----------------------------------------------------

TEST(RunManifest, SerializationIsByteStableAndOrdered)
{
    setVerbose(false);
    // Freeze host timings so two serializations are byte-identical.
    HostProfiler &prof = HostProfiler::instance();
    prof.clear();
    prof.setEnabled(false);

    apps::AppInstance app = apps::allApps()[0].make(apps::Scale::kTiny);
    Runner runner(app.prog, ArchParams::plasticineFinal());
    app.load(runner);
    Runner::Result res = runner.run();
    RunManifest m = runner.buildManifest(res);
    prof.setEnabled(true);

    std::ostringstream a, b;
    m.writeJson(a);
    m.writeJson(b);
    EXPECT_EQ(a.str(), b.str());

    // Fixed top-level key order: every later key appears after the
    // earlier one (golden order; add keys, never reorder).
    const char *order[] = {"\"schema\"",     "\"program\"",
                           "\"pir_hash\"",   "\"arch_hash\"",
                           "\"config_hash\"", "\"seed\"",
                           "\"sched_mode\"", "\"sim_mode\"",
                           "\"arch\"",       "\"compile\"",
                           "\"outcome\"",    "\"cycles\"",
                           "\"timings_us\"", "\"metrics\""};
    size_t prev = 0;
    for (const char *key : order) {
        size_t at = a.str().find(key);
        ASSERT_NE(at, std::string::npos) << "missing key " << key;
        EXPECT_GT(at, prev) << key << " out of order";
        prev = at;
    }
    EXPECT_NE(a.str().find("\"schema\": \"plast.run-manifest.v1\""),
              std::string::npos);
    EXPECT_NE(a.str().find("\"outcome\": \"ok\""), std::string::npos);
    EXPECT_EQ(m.compiled, true);
    EXPECT_NE(m.pirHash, 0u);
    EXPECT_NE(m.archHash, 0u);
    EXPECT_NE(m.configHash, 0u);
    EXPECT_EQ(m.cycles, res.cycles);
    EXPECT_FALSE(m.metrics.empty());
}

TEST(RunManifest, HashesAreContentAddresses)
{
    setVerbose(false);
    apps::AppInstance a1 = apps::allApps()[0].make(apps::Scale::kTiny);
    apps::AppInstance a2 = apps::allApps()[0].make(apps::Scale::kTiny);
    apps::AppInstance other =
        apps::allApps()[1].make(apps::Scale::kTiny);

    Runner r1(a1.prog, ArchParams::plasticineFinal());
    Runner r2(a2.prog, ArchParams::plasticineFinal());
    Runner r3(other.prog, ArchParams::plasticineFinal());
    ASSERT_TRUE(r1.tryCompile().ok());
    ASSERT_TRUE(r2.tryCompile().ok());
    ASSERT_TRUE(r3.tryCompile().ok());

    RunManifest m1 = r1.buildManifest({});
    RunManifest m2 = r2.buildManifest({});
    RunManifest m3 = r3.buildManifest({});
    EXPECT_EQ(m1.pirHash, m2.pirHash);
    EXPECT_EQ(m1.configHash, m2.configHash);
    EXPECT_EQ(m1.archHash, m3.archHash); // same params
    EXPECT_NE(m1.pirHash, m3.pirHash);   // different program
}

TEST(RunManifest, Fnv1a64MatchesReferenceVectors)
{
    // Published FNV-1a test vectors (64-bit).
    EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(RunManifest, ArchParamsTextCoversTuningKnobs)
{
    // Any tuned parameter must perturb the hash pre-image; spot-check
    // a few fields from each block.
    ArchParams p = ArchParams::plasticineFinal();
    std::string base = archParamsText(p);
    ArchParams q = p;
    q.pcu.lanes *= 2;
    EXPECT_NE(archParamsText(q), base);
    q = p;
    q.pmu.bankKilobytes *= 2;
    EXPECT_NE(archParamsText(q), base);
    q = p;
    q.dram.ecc = !q.dram.ecc;
    EXPECT_NE(archParamsText(q), base);
}

// ---- interp vs specialized stats parity ----------------------------

namespace
{

/**
 * Counters whose values legitimately depend on the datapath engine.
 * Everything else in Fabric::dumpStats is architectural — it counts
 * events of the simulated machine, which is bit-exact across engines —
 * and must match between interp and specialized runs.
 *
 *   trace.*   the specialized engine elides per-stage trace emission
 *             when tracing is disabled at build time and may batch
 *             events differently when enabled.
 */
bool
engineSpecific(const std::string &key)
{
    return key.rfind("trace.", 0) == 0;
}

StatSet
runWithEngine(const apps::AppSpec &spec, SimMode engine)
{
    apps::AppInstance app = spec.make(apps::Scale::kTiny);
    SimOptions opts;
    opts.simMode = engine;
    Runner runner(app.prog, ArchParams::plasticineFinal(), opts);
    app.load(runner);
    return runner.run().stats;
}

} // namespace

TEST(Telemetry, StatsParityInterpVsSpecialized)
{
    setVerbose(false);
    for (const char *name : {"InnerProduct", "GEMM", "BFS"}) {
        const apps::AppSpec *spec = nullptr;
        for (const auto &s : apps::allApps()) {
            if (s.name == name)
                spec = &s;
        }
        ASSERT_NE(spec, nullptr) << name;
        StatSet interp = runWithEngine(*spec, SimMode::kInterp);
        StatSet special = runWithEngine(*spec, SimMode::kSpecialized);

        for (const auto &[key, val] : interp.all()) {
            if (engineSpecific(key))
                continue;
            EXPECT_TRUE(special.has(key))
                << name << ": " << key << " missing from specialized";
            EXPECT_EQ(special.get(key), val)
                << name << ": " << key << " diverges between engines";
        }
        for (const auto &[key, val] : special.all()) {
            if (engineSpecific(key))
                continue;
            EXPECT_TRUE(interp.has(key))
                << name << ": " << key << " missing from interp";
        }
    }
}
