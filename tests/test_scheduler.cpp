/** @file Activity-driven scheduler: bit-exact cycle parity against the
 *  dense-tick baseline on every benchmark, traffic-counter parity,
 *  fast-forward behavior, and exact deadlock detection (empty active
 *  set) on a stalled credit loop. */

#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "sim/fabric.hpp"

using namespace plast;

namespace
{

SimOptions
denseOpts()
{
    SimOptions o;
    o.mode = SimOptions::Mode::kDense;
    return o;
}

struct ModeResult
{
    Cycles cycles = 0;
    std::vector<std::deque<Word>> argOuts;
    std::vector<std::vector<Word>> dramBufs;
    StatSet stats;
};

ModeResult
runApp(const apps::AppSpec &spec, SimOptions opts)
{
    setVerbose(false);
    apps::AppInstance app = spec.make(apps::Scale::kTiny);
    Runner r(std::move(app.prog), ArchParams::plasticineFinal(), opts);
    app.load(r);
    Runner::Result res = r.run();

    ModeResult out;
    out.cycles = res.cycles;
    out.argOuts = res.argOuts;
    out.stats = res.stats;
    for (size_t m = 0; m < r.program().mems.size(); ++m) {
        if (r.program().mems[m].kind == pir::MemKind::kDram)
            out.dramBufs.push_back(
                r.readDram(static_cast<pir::MemId>(m)));
    }
    return out;
}

} // namespace

/** Both modes must agree on the completion cycle, every argOut stream,
 *  every DRAM buffer, and the traffic counters (stream pushes/pops,
 *  memory bursts, DRAM timing) — i.e. activity scheduling changes only
 *  the host's work per simulated cycle, never the simulated machine. */
class CycleParity : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CycleParity, ActivityModeMatchesDenseBitExactly)
{
    for (const auto &spec : apps::allApps()) {
        if (spec.name != GetParam())
            continue;

        ModeResult dense = runApp(spec, denseOpts());
        ModeResult activity = runApp(spec, SimOptions{});

        EXPECT_EQ(dense.cycles, activity.cycles) << "completion cycle";
        EXPECT_EQ(dense.stats.get("cycles"), activity.stats.get("cycles"))
            << "post-drain cycle count";

        ASSERT_EQ(dense.argOuts.size(), activity.argOuts.size());
        for (size_t s = 0; s < dense.argOuts.size(); ++s)
            EXPECT_EQ(dense.argOuts[s], activity.argOuts[s])
                << "argOut slot " << s;

        ASSERT_EQ(dense.dramBufs.size(), activity.dramBufs.size());
        for (size_t m = 0; m < dense.dramBufs.size(); ++m)
            EXPECT_EQ(dense.dramBufs[m], activity.dramBufs[m])
                << "DRAM buffer " << m;

        // Architectural activity counters agree; only host-side idle
        // accounting (starve/idle cycles of sleeping units) may differ.
        for (const auto &[name, value] : dense.stats.all()) {
            if (name.rfind("stream.", 0) == 0 ||
                name.rfind("net.", 0) == 0 ||
                name.rfind("mem.", 0) == 0 ||
                name.rfind("dram", 0) == 0) {
                EXPECT_EQ(value, activity.stats.get(name)) << name;
            }
        }
        return;
    }
    FAIL() << "unknown benchmark";
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, CycleParity,
    ::testing::Values("InnerProduct", "OuterProduct", "Black-Scholes",
                      "TPC-H Query 6", "GEMM", "GDA", "LogReg", "SGD",
                      "Kmeans", "CNN", "SMDV", "PageRank", "BFS"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string n = info.param;
        for (char &c : n) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return n;
    });

namespace
{

/**
 * A stalled credit loop: two PCUs each gated on a token only the other
 * can produce, with zero initial tokens on both channels. The root box
 * starts pcu0 but pcu0 also needs a credit from pcu1, which in turn
 * waits on pcu0's done — a circular wait that can never resolve.
 */
FabricConfig
creditLoopDesign()
{
    FabricConfig fab;
    fab.params = ArchParams::plasticineFinal();
    fab.pcus.resize(fab.params.numPcus());
    fab.pmus.resize(fab.params.numPmus());
    fab.ags.resize(fab.params.numAgs);
    fab.boxes.resize(fab.params.switchCols() * fab.params.switchRows());

    StageCfg nop;
    nop.op = FuOp::kIAdd;
    nop.a = Operand::reg(0);
    nop.b = Operand::reg(0);
    nop.dstReg = 0;

    PcuCfg &pcu0 = fab.pcus[0];
    pcu0.used = true;
    pcu0.name = "stage_a";
    pcu0.stages = {nop};
    pcu0.scalOuts.resize(fab.params.pcu.scalarOuts);
    pcu0.vecOuts.resize(fab.params.pcu.vectorOuts);
    pcu0.ctrl.tokenIns = {0, 1}; // box start AND credit from pcu1
    pcu0.ctrl.doneOuts = {0, 1}; // to box, and start for pcu1

    PcuCfg &pcu1 = fab.pcus[1];
    pcu1.used = true;
    pcu1.name = "stage_b";
    pcu1.stages = {nop};
    pcu1.scalOuts.resize(fab.params.pcu.scalarOuts);
    pcu1.vecOuts.resize(fab.params.pcu.vectorOuts);
    pcu1.ctrl.tokenIns = {0}; // started by pcu0's done
    pcu1.ctrl.doneOuts = {0}; // credit back to pcu0

    ControlBoxCfg &box = fab.boxes[0];
    box.used = true;
    box.name = "root";
    box.scheme = CtrlScheme::kSequential;
    CounterCfg t;
    t.max = 2;
    box.chain.ctrs = {t};
    box.depth = 1;
    box.childStartOuts = {0};
    box.childDoneIns = {0};
    fab.rootBox = 0;
    fab.hostArgOuts = 0;

    UnitRef p0{UnitClass::kPcu, 0};
    UnitRef p1{UnitClass::kPcu, 1};
    UnitRef bx{UnitClass::kBox, 0};
    fab.channels.push_back(
        {NetKind::kControl, {bx, 0}, {p0, 0}, 3, 0, 16, 1});
    fab.channels.push_back( // credit channel: zero initial tokens
        {NetKind::kControl, {p1, 0}, {p0, 1}, 3, 0, 16, 1});
    fab.channels.push_back(
        {NetKind::kControl, {p0, 0}, {bx, 0}, 3, 0, 16, 1});
    fab.channels.push_back(
        {NetKind::kControl, {p0, 1}, {p1, 0}, 3, 0, 16, 1});
    return fab;
}

} // namespace

/** The empty active set diagnoses the circular wait exactly — and the
 *  diagnostic pinpoints the wait: the root box is mid-iteration and
 *  the start token sits undelivered in front of the gated PCU. */
TEST(SchedulerDeath, CreditLoopDeadlockIsDiagnosedExactly)
{
    EXPECT_EXIT(
        {
            Fabric f(creditLoopDesign());
            f.run(10'000'000);
        },
        ::testing::ExitedWithCode(1), "deadlock");
    EXPECT_EXIT(
        {
            Fabric f(creditLoopDesign());
            f.run(10'000'000);
        },
        ::testing::ExitedWithCode(1),
        "box0.0->pcu0.0 holds 1 poppable element");
}

/** Activity mode needs no no-progress window: the deadlock fires the
 *  cycle the active set empties, long before the dense window expires. */
TEST(SchedulerDeath, DeadlockFiresWithoutWaitingForWindow)
{
    EXPECT_EXIT(
        {
            Fabric f(creditLoopDesign());
            f.run(10'000'000);
            // unreachable: run() must have fataled by now
        },
        ::testing::ExitedWithCode(1), "empty active set at cycle [0-9]");
}

/** Dense mode keeps the windowed scan, now constructor-configurable. */
TEST(SchedulerDeath, DenseWindowIsConfigurable)
{
    EXPECT_EXIT(
        {
            SimOptions opts = denseOpts();
            opts.deadlockWindow = 200;
            Fabric f(creditLoopDesign(), opts);
            f.run(10'000'000);
        },
        ::testing::ExitedWithCode(1), "no progress for 200 cycles");
}

/** Stream statistics are live (not the dead counters they replace):
 *  a run must report pushes, pops and a nonzero peak occupancy on the
 *  control network that carried the start/done tokens. */
TEST(SchedulerStats, StreamCountersAreWired)
{
    setVerbose(false);
    apps::AppInstance app = apps::makeInnerProduct(apps::Scale::kTiny);
    Runner r(std::move(app.prog));
    app.load(r);
    Runner::Result res = r.run();
    EXPECT_GT(res.stats.get("net.control.pushes"), 0u);
    EXPECT_EQ(res.stats.get("net.control.pushes"),
              res.stats.get("net.control.pops"))
        << "all tokens consumed";
    EXPECT_GT(res.stats.get("net.vector.pushes"), 0u);
    EXPECT_GT(res.stats.sumPrefix("stream."), 0u);
}
