/** @file PMU ports: linear/broadcast/gather reads, scatter and append
 *  writes, RMW accumulation, N-buffer rotation and clearing. */

#include <gtest/gtest.h>

#include <memory>

#include "sim/pmu.hpp"

using namespace plast;

namespace
{

struct PmuHarness
{
    ArchParams params;
    std::unique_ptr<PmuSim> pmu;
    std::vector<std::unique_ptr<VectorStream>> ins;
    std::unique_ptr<VectorStream> out;
    std::unique_ptr<ControlStream> wr2rd;
    std::vector<std::unique_ptr<ScalarStream>> scalIns;
    Cycles now = 0;

    std::unique_ptr<ControlStream> wtok;

    /** writerTokens > 0: drive the write port with explicit run tokens
     *  (a self-starting port runs only once, like units without parent
     *  controllers). */
    explicit PmuHarness(PmuCfg cfg, uint32_t writerTokens = 0)
    {
        cfg.used = true;
        // Order the reader behind the writer, as mapped configs do.
        bool gate = cfg.write.enabled && cfg.read.enabled;
        if (gate) {
            cfg.write.ctrl.doneOuts = {0};
            cfg.read.ctrl.tokenIns = {0};
        }
        if (writerTokens > 0)
            cfg.write.ctrl.tokenIns = {1};
        pmu = std::make_unique<PmuSim>(params, 0, cfg);
        ins.resize(params.pmu.vectorIns);
        for (size_t i = 0; i < ins.size(); ++i) {
            ins[i] = std::make_unique<VectorStream>("vi", 1, 64);
            pmu->ports.vecIn[i].stream = ins[i].get();
        }
        out = std::make_unique<VectorStream>("vo", 1, 64);
        pmu->ports.vecOut[0].sinks.push_back(out.get());
        if (gate) {
            wr2rd = std::make_unique<ControlStream>("w2r", 1, 16);
            pmu->ports.ctlOut[0].sinks.push_back(wr2rd.get());
            pmu->ports.ctlIn[0].stream = wr2rd.get();
        }
        if (writerTokens > 0) {
            wtok = std::make_unique<ControlStream>("wt", 1, 16);
            for (uint32_t t = 0; t < writerTokens; ++t)
                wtok->preload(Token{});
            pmu->ports.ctlIn[1].stream = wtok.get();
        }
    }

    void
    step(int cycles = 1)
    {
        for (int i = 0; i < cycles; ++i) {
            pmu->step(now);
            for (auto &s : ins)
                s->tick(now);
            out->tick(now);
            if (wr2rd)
                wr2rd->tick(now);
            if (wtok)
                wtok->tick(now);
            for (auto &s : scalIns)
                s->tick(now);
            ++now;
        }
    }

    Vec
    vecOf(std::initializer_list<Word> vals)
    {
        Vec v;
        uint32_t l = 0;
        for (Word w : vals) {
            v.lane[l] = w;
            v.setValid(l);
            ++l;
        }
        return v;
    }
};

/** Linear write of n words from vec-in 0; linear read to vec-out 0. */
PmuCfg
copyCfg(int64_t n, uint8_t nbuf = 1)
{
    PmuCfg cfg;
    cfg.scratch.sizeWords = 1024;
    cfg.scratch.numBufs = nbuf;
    CounterCfg cc;
    cc.max = n;
    cc.vectorized = true;
    cfg.write.enabled = true;
    cfg.write.chain.ctrs = {cc};
    cfg.write.vecLinear = true;
    StageCfg st;
    st.op = FuOp::kNop;
    st.a = Operand::ctr(0);
    st.dstReg = 0;
    cfg.write.addrStages = {st};
    cfg.write.addrReg = 0;
    cfg.write.dataVecIn = 0;
    cfg.read.enabled = true;
    cfg.read.chain.ctrs = {cc};
    cfg.read.vecLinear = true;
    cfg.read.addrStages = {st};
    cfg.read.addrReg = 0;
    cfg.read.dataVecOut = 0;
    return cfg;
}

} // namespace

TEST(Pmu, LinearWriteThenRead)
{
    PmuCfg cfg = copyCfg(32);
    PmuHarness h(cfg);
    for (int i = 0; i < 2; ++i) {
        Vec v;
        for (uint32_t l = 0; l < 16; ++l) {
            v.lane[l] = 100 + i * 16 + l;
            v.setValid(l);
        }
        h.ins[0]->push(v);
    }
    std::vector<Word> got;
    for (int c = 0; c < 200 && got.size() < 32; ++c) {
        h.step();
        while (h.out->canPop()) {
            const Vec &v = h.out->front();
            for (uint32_t l = 0; l < 16; ++l)
                got.push_back(v.lane[l]);
            h.out->pop();
        }
    }
    ASSERT_EQ(got.size(), 32u);
    for (uint32_t i = 0; i < 32; ++i)
        EXPECT_EQ(got[i], 100 + i);
}

TEST(Pmu, BroadcastReadFillsAllLanes)
{
    PmuCfg cfg;
    cfg.scratch.sizeWords = 64;
    CounterCfg one;
    one.max = 4;
    cfg.read.enabled = true;
    cfg.read.chain.ctrs = {one};
    cfg.read.broadcast = true;
    StageCfg st;
    st.op = FuOp::kIMul;
    st.a = Operand::ctr(0);
    st.b = Operand::immInt(2);
    st.dstReg = 0;
    cfg.read.addrStages = {st};
    cfg.read.addrReg = 0;
    cfg.read.dataVecOut = 0;
    PmuHarness h(cfg);
    // Use a fresh harness with a write port instead:
    PmuCfg wc = copyCfg(16);
    wc.read = cfg.read;
    PmuHarness h2(wc);
    Vec v;
    for (uint32_t l = 0; l < 16; ++l) {
        v.lane[l] = l * 11;
        v.setValid(l);
    }
    h2.ins[0]->push(v);
    std::vector<Vec> got;
    for (int c = 0; c < 200 && got.size() < 4; ++c) {
        h2.step();
        while (h2.out->canPop()) {
            got.push_back(h2.out->front());
            h2.out->pop();
        }
    }
    ASSERT_EQ(got.size(), 4u);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(got[i].popcount(), 16u) << "broadcast fills the mask";
        for (uint32_t l = 0; l < 16; ++l)
            EXPECT_EQ(got[i].lane[l], static_cast<Word>(i * 2 * 11));
    }
}

TEST(Pmu, GatherReadHonorsPerLaneAddresses)
{
    PmuCfg cfg = copyCfg(16);
    cfg.read.vecLinear = false;
    cfg.read.addrStages.clear();
    cfg.read.addrVecIn = 1;
    PmuHarness h(cfg);
    Vec data;
    for (uint32_t l = 0; l < 16; ++l) {
        data.lane[l] = 1000 + l;
        data.setValid(l);
    }
    h.ins[0]->push(data);
    Vec addrs;
    for (uint32_t l = 0; l < 16; ++l) {
        addrs.lane[l] = 15 - l; // reversed gather
        addrs.setValid(l);
    }
    h.ins[1]->push(addrs);
    std::vector<Vec> got;
    for (int c = 0; c < 200 && got.empty(); ++c) {
        h.step();
        while (h.out->canPop()) {
            got.push_back(h.out->front());
            h.out->pop();
        }
    }
    ASSERT_EQ(got.size(), 1u);
    for (uint32_t l = 0; l < 16; ++l)
        EXPECT_EQ(got[0].lane[l], 1000 + 15 - l);
    // Reversed addresses over 16 banks are conflict free; uniform
    // addresses would serialize (covered in scratchpad tests).
}

TEST(Pmu, AccumulateWriteIsReadModifyWrite)
{
    PmuCfg cfg = copyCfg(16);
    cfg.write.accumulate = true;
    cfg.write.accumOp = FuOp::kIAdd;
    PmuHarness h(cfg);
    Vec v;
    for (uint32_t l = 0; l < 16; ++l) {
        v.lane[l] = l;
        v.setValid(l);
    }
    h.ins[0]->push(v);
    std::vector<Vec> got;
    for (int c = 0; c < 300 && got.empty(); ++c) {
        h.step();
        while (h.out->canPop()) {
            got.push_back(h.out->front());
            h.out->pop();
        }
    }
    ASSERT_EQ(got.size(), 1u);
    for (uint32_t l = 0; l < 16; ++l)
        EXPECT_EQ(got[0].lane[l], l); // 0 + l
}

TEST(Pmu, AppendModePacksValidWords)
{
    PmuCfg cfg = copyCfg(16);
    cfg.write.appendMode = true;
    cfg.write.addrStages.clear();
    // Two sparse vectors of 8 valid words each -> 16 packed words.
    CounterCfg two;
    two.max = 32;
    two.vectorized = true;
    cfg.write.chain.ctrs = {two};
    PmuHarness h(cfg);
    for (int i = 0; i < 2; ++i) {
        Vec v;
        for (uint32_t l = 0; l < 16; l += 2) {
            v.lane[l] = i * 8 + l / 2;
            v.setValid(l);
        }
        h.ins[0]->push(v);
    }
    std::vector<Word> got;
    for (int c = 0; c < 300 && got.size() < 16; ++c) {
        h.step();
        while (h.out->canPop()) {
            const Vec &v = h.out->front();
            for (uint32_t l = 0; l < 16; ++l)
                got.push_back(v.lane[l]);
            h.out->pop();
        }
    }
    ASSERT_EQ(got.size(), 16u);
    for (uint32_t i = 0; i < 16; ++i)
        EXPECT_EQ(got[i], i) << "append must pack densely";
}

TEST(Pmu, NBufferRotationIsolatesGenerations)
{
    PmuCfg cfg = copyCfg(16, /*nbuf=*/2);
    cfg.write.swapEvery = 1;
    cfg.read.swapEvery = 1;
    PmuHarness h(cfg, /*writerTokens=*/2);
    // Generation 0 then generation 1.
    for (int g = 0; g < 2; ++g) {
        Vec v;
        for (uint32_t l = 0; l < 16; ++l) {
            v.lane[l] = g * 100 + l;
            v.setValid(l);
        }
        h.ins[0]->push(v);
    }
    std::vector<Vec> got;
    for (int c = 0; c < 400 && got.size() < 2; ++c) {
        h.step();
        while (h.out->canPop()) {
            got.push_back(h.out->front());
            h.out->pop();
        }
    }
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].lane[5], 5u);
    EXPECT_EQ(got[1].lane[5], 105u);
}

TEST(Pmu, ClearEveryZeroesBufferAtRunStart)
{
    PmuCfg cfg = copyCfg(16);
    cfg.write.accumulate = true;
    cfg.write.accumOp = FuOp::kIAdd;
    cfg.write.clearEvery = 1;
    PmuHarness h(cfg, /*writerTokens=*/2);
    // Two write runs; each should start from zero.
    for (int g = 0; g < 2; ++g) {
        Vec v;
        for (uint32_t l = 0; l < 16; ++l) {
            v.lane[l] = 7;
            v.setValid(l);
        }
        h.ins[0]->push(v);
    }
    std::vector<Vec> got;
    for (int c = 0; c < 600 && got.size() < 2; ++c) {
        h.step();
        while (h.out->canPop()) {
            got.push_back(h.out->front());
            h.out->pop();
        }
    }
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[1].lane[0], 7u) << "second run must start from zero";
}
