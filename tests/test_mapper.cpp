/** @file Whole-program mapping: every benchmark compiles onto the
 *  final architecture, resources stay within the chip, placement and
 *  routing are legal and deterministic. */

#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "compiler/mapper.hpp"

using namespace plast;
using namespace plast::compiler;

namespace
{

MapResult
mapApp(const std::string &name)
{
    setVerbose(false);
    for (const auto &spec : apps::allApps()) {
        if (spec.name == name) {
            apps::AppInstance app = spec.make(apps::Scale::kTiny);
            return compileProgram(app.prog,
                                  ArchParams::plasticineFinal());
        }
    }
    ADD_FAILURE() << "unknown app " << name;
    return {};
}

} // namespace

class MapsEveryApp : public ::testing::TestWithParam<std::string>
{
};

TEST_P(MapsEveryApp, FitsTheChip)
{
    ArchParams params;
    MapResult res = mapApp(GetParam());
    ASSERT_TRUE(res.report.ok) << res.report.error;
    EXPECT_GT(res.report.pcusUsed, 0u);
    EXPECT_LE(res.report.pcusUsed, params.numPcus());
    EXPECT_LE(res.report.pmusUsed, params.numPmus());
    EXPECT_LE(res.report.agsUsed, params.numAgs);
    EXPECT_GE(res.fabric.rootBox, 0);
    // Every routed channel got a placed-route latency.
    for (const ChannelCfg &ch : res.fabric.channels) {
        EXPECT_GE(ch.latency, 2u) << ch.describe();
        EXPECT_LT(ch.latency, 64u) << ch.describe();
    }
}

TEST_P(MapsEveryApp, ConfiguredUnitCountsMatchReport)
{
    MapResult res = mapApp(GetParam());
    ASSERT_TRUE(res.report.ok);
    EXPECT_EQ(res.fabric.usedPcus(), res.report.pcusUsed);
    EXPECT_EQ(res.fabric.usedPmus(), res.report.pmusUsed);
    EXPECT_EQ(res.fabric.usedAgs(), res.report.agsUsed);
}

TEST_P(MapsEveryApp, DeterministicMapping)
{
    MapResult a = mapApp(GetParam());
    MapResult b = mapApp(GetParam());
    EXPECT_EQ(a.report.pcusUsed, b.report.pcusUsed);
    EXPECT_EQ(a.report.channels, b.report.channels);
    EXPECT_EQ(a.report.routedHops, b.report.routedHops);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, MapsEveryApp,
    ::testing::Values("InnerProduct", "OuterProduct", "Black-Scholes",
                      "TPC-H Query 6", "GEMM", "GDA", "LogReg", "SGD",
                      "Kmeans", "CNN", "SMDV", "PageRank", "BFS"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string n = info.param;
        for (char &c : n) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return n;
    });

TEST(Mapper, DramBuffersAreDisjointAndAligned)
{
    apps::AppInstance app = apps::makeGemm(apps::Scale::kTiny);
    MapResult res =
        compileProgram(app.prog, ArchParams::plasticineFinal());
    ASSERT_TRUE(res.report.ok);
    std::vector<std::pair<Addr, Addr>> ranges;
    for (size_t m = 0; m < app.prog.mems.size(); ++m) {
        if (app.prog.mems[m].kind != pir::MemKind::kDram)
            continue;
        Addr base = res.dramBase[m];
        EXPECT_EQ(base % kBurstBytes, 0u) << "unaligned buffer";
        ranges.push_back({base, base + app.prog.mems[m].sizeWords * 4});
    }
    for (size_t a = 0; a < ranges.size(); ++a) {
        for (size_t b2 = a + 1; b2 < ranges.size(); ++b2) {
            bool disjoint = ranges[a].second <= ranges[b2].first ||
                            ranges[b2].second <= ranges[a].first;
            EXPECT_TRUE(disjoint) << "DRAM buffers overlap";
        }
    }
}

TEST(Mapper, DuplicatesScratchpadsPerReader)
{
    // GDA reads the x tile twice (broadcast row + linear column) and
    // mu twice: each load gets its own PMU instance, all fed by the
    // single producer (the paper's duplication strategy).
    apps::AppInstance app = apps::makeGda(apps::Scale::kTiny);
    MapResult res =
        compileProgram(app.prog, ArchParams::plasticineFinal());
    ASSERT_TRUE(res.report.ok);
    int x_tiles = 0;
    for (const PmuCfg &p : res.fabric.pmus) {
        if (p.used && p.name.find("xTile") != std::string::npos)
            ++x_tiles;
    }
    EXPECT_EQ(x_tiles, 4) << "2 unrolled leaves x 2 access patterns";
}

TEST(Mapper, BlackScholesNeedsManyChainedPcus)
{
    // The ~60-stage pipeline must split across ~10+ PCUs per branch,
    // mirroring the paper's observation for its 80-stage pipeline.
    MapResult res = mapApp("Black-Scholes");
    ASSERT_TRUE(res.report.ok);
    EXPECT_GE(res.report.pcusUsed, 16u);
    EXPECT_EQ(res.report.pmusUsed, 0u)
        << "pure streaming: no on-chip tiles";
}

TEST(Mapper, MetapipeDoubleBuffersIntermediates)
{
    apps::AppInstance app = apps::makeGemm(apps::Scale::kTiny);
    MapResult res =
        compileProgram(app.prog, ArchParams::plasticineFinal());
    ASSERT_TRUE(res.report.ok);
    // C-tile accumulators sit under the (i,j) metapipe: 2 buffers.
    bool found = false;
    for (const PmuCfg &p : res.fabric.pmus) {
        if (p.used && p.name.find("cTile") != std::string::npos) {
            EXPECT_GE(p.scratch.numBufs, 2) << p.name;
            EXPECT_GT(p.write.clearEvery, 0u)
                << "accumulator must clear per generation";
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Mapper, RejectsProgramsTooLargeForTheChip)
{
    // 70 parallel branches of InnerProduct exceed 34 AGs.
    apps::AppInstance app =
        apps::makeInnerProduct(apps::Scale::kTiny, 32);
    MapResult res =
        compileProgram(app.prog, ArchParams::plasticineFinal());
    EXPECT_FALSE(res.report.ok);
    EXPECT_FALSE(res.report.error.empty());
}
