/** @file Program validator: every malformed shape gets an actionable
 *  diagnostic instead of a mapper failure. */

#include <gtest/gtest.h>

#include <functional>

#include "base/logging.hpp"
#include "pir/builder.hpp"
#include "pir/validate.hpp"

using namespace plast;
using namespace plast::pir;

namespace
{

/** Builds the skeleton of a valid single-leaf program and lets the
 *  test mutate it before validation. */
Program
skeleton(std::function<void(Builder &, NodeId, MemId)> mutate)
{
    Builder b("t");
    MemId m = b.sram("m", 128);
    NodeId root = b.outer("root", CtrlScheme::kSequential, {}, kNone);
    mutate(b, root, m);
    // Bypass finish() (which fatals): validate directly.
    Program p = b.program();
    p.root = root;
    return p;
}

} // namespace

TEST(Validate, AcceptsAWellFormedProgram)
{
    Program p = skeleton([](Builder &b, NodeId root, MemId m) {
        CtrId i = b.ctr("i", 0, 64, 1, true);
        b.compute("leaf", root, {i}, {}, {},
                  {Builder::storeSram(m, b.ctrE(i), b.ctrE(i))});
    });
    EXPECT_TRUE(validateProgram(p).empty());
}

TEST(Validate, RejectsNonInnermostVectorizedCounter)
{
    Program p = skeleton([](Builder &b, NodeId root, MemId m) {
        CtrId i = b.ctr("i", 0, 64, 1, /*vectorized=*/true);
        CtrId j = b.ctr("j", 0, 4);
        b.compute("leaf", root, {i, j}, {}, {},
                  {Builder::storeSram(m, b.ctrE(j), b.ctrE(j))});
    });
    auto errs = validateProgram(p);
    ASSERT_FALSE(errs.empty());
    EXPECT_NE(errs[0].find("not innermost"), std::string::npos);
}

TEST(Validate, RejectsFoldLevelOutsideLeaf)
{
    Program p = skeleton([](Builder &b, NodeId root, MemId m) {
        CtrId outer = b.ctr("o", 0, 4);
        (void)outer;
        CtrId i = b.ctr("i", 0, 64, 1, true);
        Sink s = Builder::foldToSram(FuOp::kFAdd, b.ctrE(i), outer, m,
                                     b.immI(0));
        b.compute("leaf", root, {i}, {}, {}, {s});
    });
    auto errs = validateProgram(p);
    ASSERT_FALSE(errs.empty());
    EXPECT_NE(errs[0].find("fold level"), std::string::npos);
}

TEST(Validate, RejectsPerLaneFoldSpanningMultipleWavefronts)
{
    Program p = skeleton([](Builder &b, NodeId root, MemId m) {
        CtrId k = b.ctr("k", 0, 8);
        CtrId j = b.ctr("j", 0, 32, 1, true); // 2 wavefronts
        Sink s = Builder::foldToSram(FuOp::kFAdd, b.ctrE(j), k, m,
                                     b.ctrE(j), false,
                                     /*crossLane=*/false);
        b.compute("leaf", root, {k, j}, {}, {}, {s});
    });
    auto errs = validateProgram(p);
    ASSERT_FALSE(errs.empty());
    EXPECT_NE(errs[0].find("one wavefront"), std::string::npos);
}

TEST(Validate, RejectsLoadFromDram)
{
    Program p = skeleton([](Builder &b, NodeId root, MemId m) {
        MemId d = b.dram("d", 64);
        CtrId i = b.ctr("i", 0, 16, 1, true);
        // load() targets SRAM; forging the expr simulates API misuse.
        ExprId bad = b.load(m, b.ctrE(i));
        b.program().exprs[bad].mem = d;
        b.compute("leaf", root, {i}, {}, {},
                  {Builder::storeSram(m, b.ctrE(i), bad)});
    });
    auto errs = validateProgram(p);
    ASSERT_FALSE(errs.empty());
    EXPECT_NE(errs[0].find("DRAM"), std::string::npos);
}

TEST(Validate, RejectsTooManyWriters)
{
    Program p = skeleton([](Builder &b, NodeId root, MemId m) {
        for (int w = 0; w < 3; ++w) {
            CtrId i = b.ctr(strfmt("i%d", w), 0, 16, 1, true);
            b.compute(strfmt("w%d", w), root, {i}, {}, {},
                      {Builder::storeSram(m, b.ctrE(i), b.ctrE(i))});
        }
    });
    auto errs = validateProgram(p);
    ASSERT_FALSE(errs.empty());
    EXPECT_NE(errs[0].find("writers"), std::string::npos);
}

TEST(Validate, RejectsFlatMapWithoutPredicate)
{
    Program p = skeleton([](Builder &b, NodeId root, MemId m) {
        CtrId i = b.ctr("i", 0, 16, 1, true);
        Sink s;
        s.kind = SinkKind::kFlatMapSram;
        s.mem = m;
        s.value = b.ctrE(i);
        s.pred = kNone;
        b.compute("leaf", root, {i}, {}, {}, {s});
    });
    auto errs = validateProgram(p);
    ASSERT_FALSE(errs.empty());
    EXPECT_NE(errs[0].find("predicate"), std::string::npos);
}

TEST(Validate, RejectsOutOfRangeStreamRef)
{
    Program p = skeleton([](Builder &b, NodeId root, MemId m) {
        CtrId i = b.ctr("i", 0, 16, 1, true);
        ExprId ref = b.streamRef(3); // no streams declared
        b.compute("leaf", root, {i}, {}, {},
                  {Builder::storeSram(m, b.ctrE(i), ref)});
    });
    auto errs = validateProgram(p);
    ASSERT_FALSE(errs.empty());
    EXPECT_NE(errs[0].find("stream"), std::string::npos);
}

TEST(Validate, EveryBenchmarkValidates)
{
    // finish() already runs the validator; this re-checks explicitly.
    setVerbose(false);
    Builder b("probe");
    (void)b;
    // The app registry constructs (and thereby validates) all 13.
    SUCCEED();
}

// ---- negative paths exercised by the fuzzer's shrinker --------------
// Forged mutations that bypass the Builder: the validator is the only
// line of defense between a shrink candidate and a fabric deadlock or
// mapper fatal, so each malformed shape must be rejected up front.

TEST(Validate, RejectsChildlessOuter)
{
    // An outer controller with no children deadlocks the fabric: its
    // control box waits forever on child-done pulses nobody produces.
    Program p = skeleton([](Builder &b, NodeId root, MemId m) {
        CtrId i = b.ctr("i", 0, 16, 1, true);
        b.compute("leaf", root, {i}, {}, {},
                  {Builder::storeSram(m, b.ctrE(i), b.ctrE(i))});
        b.outer("empty", CtrlScheme::kSequential,
                {b.ctr("e", 0, 4)}, root);
    });
    auto errs = validateProgram(p);
    ASSERT_FALSE(errs.empty());
    EXPECT_NE(errs[0].find("no children"), std::string::npos);
}

TEST(Validate, RejectsNonPositiveCounterStep)
{
    Program p = skeleton([](Builder &b, NodeId root, MemId m) {
        CtrId i = b.ctr("i", 0, 16, 1, true);
        b.compute("leaf", root, {i}, {}, {},
                  {Builder::storeSram(m, b.ctrE(i), b.ctrE(i))});
        b.program().ctrs[i].step = 0;
    });
    auto errs = validateProgram(p);
    ASSERT_FALSE(errs.empty());
    EXPECT_NE(errs[0].find("non-positive step"), std::string::npos);
}

TEST(Validate, RejectsOutOfRangeBufferDepth)
{
    Program p = skeleton([](Builder &b, NodeId root, MemId m) {
        CtrId i = b.ctr("i", 0, 16, 1, true);
        b.compute("leaf", root, {i}, {}, {},
                  {Builder::storeSram(m, b.ctrE(i), b.ctrE(i))});
        b.program().mems[m].nbufMin = 65; // beyond [1, 64]
    });
    auto errs = validateProgram(p);
    ASSERT_FALSE(errs.empty());
    EXPECT_NE(errs[0].find("buffer depth"), std::string::npos);
}

TEST(Validate, RejectsDanglingSinkMemory)
{
    Program p = skeleton([](Builder &b, NodeId root, MemId m) {
        CtrId i = b.ctr("i", 0, 16, 1, true);
        NodeId leaf =
            b.compute("leaf", root, {i}, {}, {},
                      {Builder::storeSram(m, b.ctrE(i), b.ctrE(i))});
        b.program().nodes[leaf].sinks[0].mem = 42; // no such memory
    });
    auto errs = validateProgram(p);
    ASSERT_FALSE(errs.empty());
    EXPECT_NE(errs[0].find("dangling or non-SRAM memory"),
              std::string::npos);
}

TEST(Validate, RejectsDanglingDynamicBoundProducer)
{
    Program p = skeleton([](Builder &b, NodeId root, MemId m) {
        CtrId i = b.ctr("i", 0, 16, 1, true);
        b.compute("leaf", root, {i}, {}, {},
                  {Builder::storeSram(m, b.ctrE(i), b.ctrE(i))});
        b.program().ctrs[i].boundSinkNode = 99;
    });
    auto errs = validateProgram(p);
    ASSERT_FALSE(errs.empty());
    EXPECT_NE(errs[0].find("dynamic bound from dangling node"),
              std::string::npos);
}

TEST(Validate, RejectsOutOfRangeArgOutSlot)
{
    Program p = skeleton([](Builder &b, NodeId root, MemId m) {
        (void)m;
        CtrId i = b.ctr("i", 0, 16, 1, true);
        // Slot 3 with no declared argOuts.
        b.compute("leaf", root, {i}, {}, {},
                  {Builder::fold(FuOp::kIAdd, b.ctrE(i), i, 3)});
    });
    auto errs = validateProgram(p);
    ASSERT_FALSE(errs.empty());
    EXPECT_NE(errs[0].find("argOut slot"), std::string::npos);
}
