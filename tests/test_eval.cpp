/** @file Reference evaluator: parallel-pattern semantics (Map, Fold,
 *  FlatMap, HashReduce), wavefront-faithful float reductions, dynamic
 *  bounds, and accumulator generations. */

#include <gtest/gtest.h>

#include "pir/builder.hpp"
#include "pir/eval.hpp"

using namespace plast;
using namespace plast::pir;

TEST(Eval, MapOverStream)
{
    Builder b("map");
    MemId in = b.dram("in", 64), out = b.dram("out", 64);
    NodeId root = b.outer("root", CtrlScheme::kSequential, {}, kNone);
    CtrId i = b.ctr("i", 0, 64, 1, true);
    ExprId v = b.fmul(b.streamRef(0), b.immF(2.0f));
    b.compute("x2", root, {i}, {StreamIn{in, b.ctrE(i)}}, {},
              {Builder::streamOut(out, b.ctrE(i), v)});
    Program p = b.finish(root);

    Evaluator ev(p);
    for (int k = 0; k < 64; ++k)
        ev.dramBuf(in)[k] = floatToWord(static_cast<float>(k));
    ev.run();
    for (int k = 0; k < 64; ++k)
        EXPECT_FLOAT_EQ(wordToFloat(ev.dramBuf(out)[k]), 2.0f * k);
}

TEST(Eval, FoldMatchesTreeReductionOrder)
{
    // Sum of floats whose naive left-to-right order differs from the
    // pairwise tree: the evaluator must use the hardware tree order.
    Builder b("fold");
    MemId in = b.dram("in", 32);
    int32_t out = b.argOut();
    NodeId root = b.outer("root", CtrlScheme::kSequential, {}, kNone);
    CtrId i = b.ctr("i", 0, 32, 1, true);
    b.compute("sum", root, {i}, {StreamIn{in, b.ctrE(i)}}, {},
              {Builder::fold(FuOp::kFAdd, b.streamRef(0), i, out)});
    Program p = b.finish(root);

    Evaluator ev(p);
    std::vector<float> vals(32);
    for (int k = 0; k < 32; ++k) {
        vals[k] = (k % 2) ? 1e-7f : 1e7f;
        ev.dramBuf(in)[k] = floatToWord(vals[k]);
    }
    ev.run();

    // Emulate the documented order: per 16-lane block, pairwise tree;
    // accumulate across blocks.
    float acc = 0.0f;
    for (int blk = 0; blk < 2; ++blk) {
        float lane[16];
        for (int l = 0; l < 16; ++l)
            lane[l] = vals[blk * 16 + l];
        for (int d = 1; d < 16; d *= 2) {
            for (int i2 = 0; i2 + d < 16; i2 += 2 * d)
                lane[i2] = lane[i2] + lane[i2 + d];
        }
        acc += lane[0];
    }
    EXPECT_EQ(ev.argOuts(out).size(), 1u);
    EXPECT_EQ(ev.argOuts(out)[0], floatToWord(acc))
        << "evaluator must be bit-faithful to the reduction tree";
}

TEST(Eval, FoldLevelsEmitPerOuterIteration)
{
    // fold over j for each i: 4 results.
    Builder b("folds");
    MemId out = b.sram("res", 16);
    NodeId root = b.outer("root", CtrlScheme::kSequential, {}, kNone);
    CtrId i = b.ctr("i", 0, 4);
    CtrId j = b.ctr("j", 0, 8, 1, true);
    ExprId v = b.iadd(b.imul(b.ctrE(i), b.immI(10)), b.ctrE(j));
    b.compute("f", root, {i, j}, {}, {},
              {Builder::foldToSram(FuOp::kIMax, v, j, out, b.ctrE(i))});
    Program p = b.finish(root);
    Evaluator ev(p);
    ev.run();
    for (int k = 0; k < 4; ++k)
        EXPECT_EQ(wordToInt(ev.sramBuf(out)[k]), k * 10 + 7);
}

TEST(Eval, FlatMapAppendsAndCounts)
{
    Builder b("fm");
    MemId in = b.dram("in", 48);
    MemId buf = b.sram("buf", 64);
    int32_t cnt = b.argOut();
    NodeId root = b.outer("root", CtrlScheme::kSequential, {}, kNone);
    CtrId i = b.ctr("i", 0, 48, 1, true);
    ExprId v = b.streamRef(0);
    ExprId keep = b.alu(FuOp::kIGt, v, b.immI(100));
    b.compute("filter", root, {i}, {StreamIn{in, b.ctrE(i)}}, {},
              {Builder::flatMap(buf, v, keep, cnt)});
    Program p = b.finish(root);
    Evaluator ev(p);
    for (int k = 0; k < 48; ++k)
        ev.dramBuf(in)[k] = intToWord(k * 7);
    ev.run();
    // k*7 > 100 <=> k >= 15: 33 survivors, in order.
    ASSERT_EQ(ev.argOuts(cnt).size(), 1u);
    EXPECT_EQ(wordToInt(ev.argOuts(cnt)[0]), 33);
    for (int k = 0; k < 33; ++k)
        EXPECT_EQ(wordToInt(ev.sramBuf(buf)[k]), (15 + k) * 7);
}

TEST(Eval, HashReduceAccumulatesByKey)
{
    // Histogram: bin = value % 8.
    Builder b("hist");
    MemId in = b.dram("in", 64);
    MemId bins = b.sram("bins", 8);
    NodeId root = b.outer("root", CtrlScheme::kSequential, {}, kNone);
    CtrId i = b.ctr("i", 0, 64, 1, true);
    ExprId v = b.streamRef(0);
    ExprId key = b.alu(FuOp::kIMod, v, b.immI(8));
    b.compute("hist", root, {i}, {StreamIn{in, b.ctrE(i)}}, {},
              {Builder::storeSram(bins, key, b.immI(1), true,
                                  FuOp::kIAdd)});
    Program p = b.finish(root);
    Evaluator ev(p);
    std::vector<int> expect(8, 0);
    for (int k = 0; k < 64; ++k) {
        ev.dramBuf(in)[k] = intToWord(k * 3);
        expect[(k * 3) % 8]++;
    }
    ev.run();
    for (int k = 0; k < 8; ++k)
        EXPECT_EQ(wordToInt(ev.sramBuf(bins)[k]), expect[k]);
}

TEST(Eval, DynamicBoundFollowsProducedCount)
{
    // flatmap count feeds a consumer loop bound (scaled x2).
    Builder b("dyn");
    MemId in = b.dram("in", 32);
    MemId buf = b.sram("buf", 32);
    MemId out = b.sram("out", 64);
    int32_t total = b.argOut();
    NodeId root = b.outer("root", CtrlScheme::kSequential, {}, kNone);
    CtrId i = b.ctr("i", 0, 32, 1, true);
    ExprId v = b.streamRef(0);
    ExprId keep = b.alu(FuOp::kILt, v, b.immI(10));
    NodeId prod = b.compute("filter", root, {i},
                            {StreamIn{in, b.ctrE(i)}}, {},
                            {Builder::flatMap(buf, v, keep)});
    CtrId j = b.ctrDyn("j", prod, 0, 0, 1, true, /*scale=*/2);
    b.compute("consume", root, {j}, {}, {},
              {Builder::storeSram(out, b.ctrE(j), b.ctrE(j))});
    CtrId one = b.ctr("one", 0, 1, 1, true);
    ExprId n = b.scalarRef(0);
    b.compute("report", root, {one}, {}, {{prod, 0}},
              {Builder::fold(FuOp::kIAdd, n, one, total)});
    Program p = b.finish(root);
    Evaluator ev(p);
    for (int k = 0; k < 32; ++k)
        ev.dramBuf(in)[k] = intToWord(k);
    ev.run();
    // 10 survivors -> consumer runs 20 iterations.
    EXPECT_EQ(wordToInt(ev.argOuts(total)[0]), 10);
    EXPECT_EQ(wordToInt(ev.sramBuf(out)[19]), 19);
    EXPECT_EQ(wordToInt(ev.sramBuf(out)[20]), 0);
}

TEST(Eval, ClearAtBoundsAccumulatorGenerations)
{
    // acc[0] += 1, 4 inner runs per outer iteration, cleared per outer.
    Builder b("gen");
    MemId acc = b.sram("acc", 4);
    MemId out = b.dram("res", 4);
    NodeId root = b.outer("root", CtrlScheme::kSequential, {}, kNone);
    CtrId o = b.ctr("o", 0, 2);
    NodeId loop = b.outer("loop", CtrlScheme::kSequential, {o}, root);
    b.clearAccumAt(acc, loop);
    CtrId r = b.ctr("r", 0, 4);
    CtrId l = b.ctr("l", 0, 4, 1, true);
    b.compute("bump", loop, {r, l}, {}, {},
              {Builder::storeSram(acc, b.ctrE(l), b.immI(1), true,
                                  FuOp::kIAdd)});
    b.storeTile("save", loop, out, acc, b.immI(0), 1, 4, 0);
    Program p = b.finish(root);
    Evaluator ev(p);
    ev.run();
    // Each generation sees exactly 4 bumps per slot (not 8).
    for (int k = 0; k < 4; ++k)
        EXPECT_EQ(wordToInt(ev.dramBuf(out)[k]), 4);
}

TEST(Eval, CountsInstrumentationTracksWork)
{
    Builder b("cnt");
    MemId in = b.dram("in", 64), out = b.dram("out", 64);
    NodeId root = b.outer("root", CtrlScheme::kSequential, {}, kNone);
    CtrId i = b.ctr("i", 0, 64, 1, true);
    ExprId v = b.fadd(b.streamRef(0), b.immF(1.0f));
    b.compute("inc", root, {i}, {StreamIn{in, b.ctrE(i)}}, {},
              {Builder::streamOut(out, b.ctrE(i), v)});
    Program p = b.finish(root);
    Evaluator ev(p);
    ev.run();
    EXPECT_EQ(ev.counts().aluOps, 64u);
    EXPECT_EQ(ev.counts().dramWordsRead, 64u);
    EXPECT_EQ(ev.counts().dramWordsWritten, 64u);
    EXPECT_EQ(ev.counts().wavefronts, 4u);
}
