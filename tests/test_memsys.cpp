/** @file Address generators + coalescing units: dense splitting and
 *  reassembly, sparse merging, outstanding-request limits. */

#include <gtest/gtest.h>

#include "sim/memsys.hpp"

using namespace plast;

namespace
{

/** Harness around one AG + the memory system. */
struct AgHarness
{
    ArchParams params;
    MemSystem mem{params};
    std::unique_ptr<AgSim> ag;
    std::unique_ptr<VectorStream> out, addrIn, dataIn;
    Cycles now = 0;

    explicit AgHarness(AgCfg cfg)
    {
        cfg.used = true;
        ag = std::make_unique<AgSim>(params, 0, cfg, mem);
        if (cfg.dataVecOut >= 0) {
            out = std::make_unique<VectorStream>("out", 1, 64);
            ag->ports.vecOut[cfg.dataVecOut].sinks.push_back(out.get());
        }
        if (cfg.addrVecIn >= 0) {
            addrIn = std::make_unique<VectorStream>("addr", 1, 64);
            ag->ports.vecIn[cfg.addrVecIn].stream = addrIn.get();
        }
        if (cfg.dataVecIn >= 0) {
            dataIn = std::make_unique<VectorStream>("data", 1, 64);
            ag->ports.vecIn[cfg.dataVecIn].stream = dataIn.get();
        }
    }

    void
    step()
    {
        ag->step(now);
        mem.step(now);
        if (out)
            out->tick(now);
        if (addrIn)
            addrIn->tick(now);
        if (dataIn)
            dataIn->tick(now);
        ++now;
    }
};

} // namespace

TEST(MemSys, DenseLoadDeliversOrderedVectors)
{
    AgCfg cfg;
    cfg.mode = AgMode::kDenseLoad;
    CounterCfg rows;
    rows.max = 4;
    cfg.chain.ctrs = {rows};
    cfg.wordsPerCmd = 32; // two vectors per command
    StageCfg st;
    st.op = FuOp::kIMul;
    st.a = Operand::ctr(0);
    st.b = Operand::immInt(32);
    st.dstReg = 0;
    cfg.addrStages = {st};
    cfg.addrReg = 0;
    cfg.dataVecOut = 0;
    AgHarness h(cfg);

    h.mem.dram().reserve(4 * 32 * 4 + 64);
    for (uint32_t w = 0; w < 128; ++w)
        h.mem.dram().writeWord(w * 4, w * 10);

    std::vector<Word> got;
    for (int c = 0; c < 2000 && got.size() < 128; ++c) {
        h.step();
        while (h.out->canPop()) {
            const Vec &v = h.out->front();
            for (uint32_t l = 0; l < 16; ++l) {
                if (v.valid(l))
                    got.push_back(v.lane[l]);
            }
            h.out->pop();
        }
    }
    ASSERT_EQ(got.size(), 128u);
    for (uint32_t w = 0; w < 128; ++w)
        EXPECT_EQ(got[w], w * 10) << "word " << w << " out of order";
}

TEST(MemSys, DenseStoreWritesImage)
{
    AgCfg cfg;
    cfg.mode = AgMode::kDenseStore;
    CounterCfg rows;
    rows.max = 3;
    rows.step = 16;
    rows.max = 48;
    cfg.chain.ctrs = {rows};
    StageCfg st;
    st.op = FuOp::kNop;
    st.a = Operand::ctr(0);
    st.dstReg = 0;
    cfg.addrStages = {st};
    cfg.addrReg = 0;
    cfg.dataVecIn = 0;
    AgHarness h(cfg);

    for (int i = 0; i < 3; ++i) {
        Vec v;
        for (uint32_t l = 0; l < 16; ++l) {
            v.lane[l] = 1000 + i * 16 + l;
            v.setValid(l);
        }
        h.dataIn->push(v);
    }
    for (int c = 0; c < 2000 && h.ag->busy() + 1 > 0 && c < 500; ++c)
        h.step();
    for (uint32_t w = 0; w < 48; ++w)
        EXPECT_EQ(h.mem.dram().readWord(w * 4), 1000 + w);
    EXPECT_EQ(h.mem.stats().bytesWritten, 48u * 4);
}

TEST(MemSys, GatherMergesSameLineLanes)
{
    AgCfg cfg;
    cfg.mode = AgMode::kSparseLoad;
    CounterCfg cc;
    cc.vectorized = true;
    cc.max = 16;
    cfg.chain.ctrs = {cc};
    cfg.addrVecIn = 0;
    cfg.dataVecOut = 0;
    AgHarness h(cfg);

    h.mem.dram().reserve(4096);
    for (uint32_t w = 0; w < 1024; ++w)
        h.mem.dram().writeWord(w * 4, w + 7);

    // All 16 lanes read from two 64 B lines -> heavy coalescing.
    Vec addrs;
    for (uint32_t l = 0; l < 16; ++l) {
        addrs.lane[l] = (l % 2) * 16 + (l / 2); // word indices
        addrs.setValid(l);
    }
    h.addrIn->push(addrs);
    std::vector<Word> got(16, 0);
    bool done = false;
    for (int c = 0; c < 2000 && !done; ++c) {
        h.step();
        if (h.out->canPop()) {
            const Vec &v = h.out->front();
            for (uint32_t l = 0; l < 16; ++l)
                got[l] = v.lane[l];
            h.out->pop();
            done = true;
        }
    }
    ASSERT_TRUE(done);
    for (uint32_t l = 0; l < 16; ++l)
        EXPECT_EQ(got[l], addrs.lane[l] + 7);
    // 16 lanes but only 2 distinct lines: 14 lanes coalesced.
    EXPECT_EQ(h.mem.stats().coalescedLanes, 14u);
    EXPECT_EQ(h.mem.stats().bursts, 2u);
}

TEST(MemSys, ScatterWritesMaskedLanes)
{
    AgCfg cfg;
    cfg.mode = AgMode::kSparseStore;
    CounterCfg cc;
    cc.vectorized = true;
    cc.max = 16;
    cfg.chain.ctrs = {cc};
    cfg.addrVecIn = 0;
    cfg.dataVecIn = 1;
    AgHarness h(cfg);
    h.dataIn = nullptr; // rebuild: data on port 1
    auto data = std::make_unique<VectorStream>("d", 1, 8);
    h.ag->ports.vecIn[1].stream = data.get();

    h.mem.dram().reserve(4096);
    Vec addrs, vals;
    for (uint32_t l = 0; l < 16; ++l) {
        addrs.lane[l] = 100 + l * 3;
        vals.lane[l] = 5000 + l;
        if (l != 5) {
            addrs.setValid(l);
            vals.setValid(l);
        }
    }
    h.addrIn->push(addrs);
    data->push(vals);
    for (int c = 0; c < 500; ++c) {
        h.step();
        data->tick(h.now - 1);
    }
    for (uint32_t l = 0; l < 16; ++l) {
        Word w = h.mem.dram().readWord((100 + l * 3) * 4);
        if (l == 5)
            EXPECT_EQ(w, 0u) << "masked lane must not write";
        else
            EXPECT_EQ(w, 5000 + l);
    }
}

TEST(MemSys, OutstandingLimitThrottlesButCompletes)
{
    ArchParams p;
    p.coalescerMaxOutstanding = 4;
    MemSystem mem(p);
    AgCfg cfg;
    cfg.mode = AgMode::kDenseLoad;
    CounterCfg rows;
    rows.max = 32;
    cfg.chain.ctrs = {rows};
    cfg.wordsPerCmd = 16;
    StageCfg st;
    st.op = FuOp::kIMul;
    st.a = Operand::ctr(0);
    st.b = Operand::immInt(16);
    st.dstReg = 0;
    cfg.addrStages = {st};
    cfg.addrReg = 0;
    cfg.dataVecOut = 0;
    cfg.used = true;
    AgSim ag(p, 0, cfg, mem);
    VectorStream out("o", 1, 64);
    ag.ports.vecOut[0].sinks.push_back(&out);
    mem.dram().reserve(32 * 64 + 64);
    Cycles now = 0;
    size_t vecs = 0;
    for (int c = 0; c < 20000 && vecs < 32; ++c) {
        ag.step(now);
        mem.step(now);
        out.tick(now);
        ++now;
        while (out.canPop()) {
            out.pop();
            ++vecs;
        }
    }
    EXPECT_EQ(vecs, 32u);
}

TEST(MemSys, TinyCoalescingCacheStillCompletesGathers)
{
    // One merge entry cannot hold a 16-line vector at once: the AG
    // must trickle lanes through (partial acceptance) and still
    // deliver a correct, in-order result.
    ArchParams p;
    p.coalescerCacheLines = 1;
    p.coalescerMaxOutstanding = 2;
    MemSystem mem(p);
    AgCfg cfg;
    cfg.used = true;
    cfg.mode = AgMode::kSparseLoad;
    CounterCfg cc;
    cc.vectorized = true;
    cc.max = 32;
    cfg.chain.ctrs = {cc};
    cfg.addrVecIn = 0;
    cfg.dataVecOut = 0;
    AgSim ag(p, 0, cfg, mem);
    VectorStream addrs("a", 1, 8), out("o", 1, 8);
    ag.ports.vecIn[0].stream = &addrs;
    ag.ports.vecOut[0].sinks.push_back(&out);

    mem.dram().reserve(1 << 16);
    for (uint32_t w = 0; w < 4096; ++w)
        mem.dram().writeWord(w * 4, w ^ 0x5a);

    // Two vectors of widely scattered addresses (all distinct lines).
    for (int v = 0; v < 2; ++v) {
        Vec a;
        for (uint32_t l = 0; l < 16; ++l) {
            a.lane[l] = (v * 16 + l) * 64; // word idx, distinct lines
            a.setValid(l);
        }
        addrs.push(a);
    }
    std::vector<Vec> got;
    Cycles now = 0;
    while (got.size() < 2 && now < 200000) {
        ag.step(now);
        mem.step(now);
        addrs.tick(now);
        out.tick(now);
        ++now;
        while (out.canPop()) {
            got.push_back(out.front());
            out.pop();
        }
    }
    ASSERT_EQ(got.size(), 2u) << "starved under a tiny cache";
    for (int v = 0; v < 2; ++v) {
        for (uint32_t l = 0; l < 16; ++l)
            EXPECT_EQ(got[v].lane[l],
                      static_cast<Word>(((v * 16 + l) * 64) ^ 0x5a));
    }
}
