#include "serve/store.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>

#include "arch/cfgio.hpp"
#include "base/logging.hpp"
#include "runtime/manifest.hpp"

namespace plast::serve
{

namespace
{

constexpr const char *kPayloadHeader = "plast.store.cc.v1";
constexpr const char *kLockName = "LOCK";
constexpr const char *kQuarantineDir = "quarantine";
constexpr const char *kTmpPrefix = "tmp-";

std::string
hex64(uint64_t v)
{
    char buf[17];
    snprintf(buf, sizeof buf, "%016llx",
             static_cast<unsigned long long>(v));
    return buf;
}

void
putU32(std::string &s, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &s, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

uint32_t
getU32(const std::string &s, size_t at)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(static_cast<uint8_t>(s[at + i]))
             << (8 * i);
    return v;
}

uint64_t
getU64(const std::string &s, size_t at)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(static_cast<uint8_t>(s[at + i]))
             << (8 * i);
    return v;
}

/** Full-file read; false on any IO error. */
bool
readFile(const std::string &path, std::string &out)
{
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return false;
    out.clear();
    char buf[1 << 16];
    for (;;) {
        ssize_t n = ::read(fd, buf, sizeof buf);
        if (n < 0) {
            ::close(fd);
            return false;
        }
        if (n == 0)
            break;
        out.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return true;
}

bool
fsyncDir(const std::string &dir)
{
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return false;
    bool ok = ::fsync(fd) == 0;
    ::close(fd);
    return ok;
}

} // namespace

// ---- record codec ----------------------------------------------------

StoredConfig
makeStoredConfig(uint64_t pirHash, uint64_t archHash,
                 const compiler::MapResult &map)
{
    StoredConfig rec;
    rec.pirHash = pirHash;
    rec.archHash = archHash;
    rec.dramBase = map.dramBase;
    rec.report = map.report;
    // Diagnostics describe the compile that happened, not the config:
    // a reloaded record starts from a clean (ok) report with only the
    // numeric resource counters preserved.
    rec.report.diag = compiler::CompileDiagnostics{};
    rec.report.error.clear();
    rec.fabric = map.fabric;
    return rec;
}

std::shared_ptr<const compiler::MapResult>
toMapResult(StoredConfig &&rec)
{
    auto mr = std::make_shared<compiler::MapResult>();
    mr->fabric = std::move(rec.fabric);
    mr->report = std::move(rec.report);
    mr->report.ok = true; // only successful compiles are persisted
    mr->dramBase = std::move(rec.dramBase);
    return mr;
}

std::string
encodeRecord(const StoredConfig &rec)
{
    std::ostringstream p;
    p << kPayloadHeader << "\n";
    p << "pir " << hex64(rec.pirHash) << "\n";
    p << "arch " << hex64(rec.archHash) << "\n";
    p << "drambase " << rec.dramBase.size();
    for (Addr a : rec.dramBase)
        p << " " << a;
    p << "\n";
    const compiler::MappingReport &r = rec.report;
    p << "report pcus=" << r.pcusUsed << " pmus=" << r.pmusUsed
      << " ags=" << r.agsUsed << " boxes=" << r.boxesUsed
      << " channels=" << r.channels << " hops=" << r.routedHops
      << " stages=" << r.stagesUsed << " regs=" << r.regsUsed
      << " sram=" << r.sramWordsUsed << " fu=" << r.fuActive << "\n";
    p << "config\n";
    writeConfig(p, rec.fabric);
    std::string payload = p.str();

    std::string out;
    out.reserve(RecordHeader::kSize + payload.size());
    out.append(RecordHeader::kMagic, 8);
    putU32(out, RecordHeader::kVersion);
    putU32(out, 0); // flags, reserved
    putU64(out, payload.size());
    putU64(out, fnv1a64(payload));
    out += payload;
    return out;
}

Status
decodeRecord(const std::string &bytes, StoredConfig &out)
{
    auto corrupt = [](const std::string &why) {
        return Status(StatusCode::kCorrupt, why);
    };
    if (bytes.size() < RecordHeader::kSize)
        return corrupt(strfmt("truncated header (%zu of %zu bytes)",
                              bytes.size(), RecordHeader::kSize));
    if (bytes.compare(0, 8, RecordHeader::kMagic, 8) != 0)
        return corrupt("bad magic");
    uint32_t version = getU32(bytes, 8);
    if (version != RecordHeader::kVersion)
        return corrupt(strfmt("version mismatch (record v%u, reader v%u)",
                              version, RecordHeader::kVersion));
    uint32_t flags = getU32(bytes, 12);
    if (flags != 0)
        return corrupt(strfmt("reserved flags set (0x%x)", flags));
    uint64_t payloadLen = getU64(bytes, 16);
    uint64_t checksum = getU64(bytes, 24);
    if (bytes.size() - RecordHeader::kSize != payloadLen)
        return corrupt(strfmt(
            "payload length mismatch (header says %llu, file has %zu)",
            static_cast<unsigned long long>(payloadLen),
            bytes.size() - RecordHeader::kSize));
    std::string payload = bytes.substr(RecordHeader::kSize);
    if (fnv1a64(payload) != checksum)
        return corrupt("checksum mismatch");

    // The payload validated bit-for-bit; parse failures past this
    // point would mean a writer bug, but they still come back typed.
    std::istringstream is(payload);
    std::string line;
    if (!std::getline(is, line) || line != kPayloadHeader)
        return corrupt("payload header mismatch");
    auto expectKey = [&](const char *key, std::string &val) {
        if (!std::getline(is, line))
            return false;
        std::istringstream ls(line);
        std::string k;
        ls >> k >> val;
        return k == key && !val.empty();
    };
    std::string val;
    if (!expectKey("pir", val))
        return corrupt("missing pir line");
    out.pirHash = std::strtoull(val.c_str(), nullptr, 16);
    if (!expectKey("arch", val))
        return corrupt("missing arch line");
    out.archHash = std::strtoull(val.c_str(), nullptr, 16);

    if (!std::getline(is, line))
        return corrupt("missing drambase line");
    {
        std::istringstream ls(line);
        std::string k;
        size_t n = 0;
        if (!(ls >> k >> n) || k != "drambase")
            return corrupt("missing drambase line");
        out.dramBase.assign(n, 0);
        for (size_t i = 0; i < n; ++i) {
            if (!(ls >> out.dramBase[i]))
                return corrupt("short drambase line");
        }
    }
    if (!std::getline(is, line))
        return corrupt("missing report line");
    {
        std::istringstream ls(line);
        std::string k;
        ls >> k;
        if (k != "report")
            return corrupt("missing report line");
        compiler::MappingReport &r = out.report;
        std::string tok;
        while (ls >> tok) {
            size_t eq = tok.find('=');
            if (eq == std::string::npos)
                return corrupt("bad report token '" + tok + "'");
            std::string key = tok.substr(0, eq);
            uint64_t v = std::strtoull(tok.c_str() + eq + 1, nullptr, 10);
            if (key == "pcus")
                r.pcusUsed = static_cast<uint32_t>(v);
            else if (key == "pmus")
                r.pmusUsed = static_cast<uint32_t>(v);
            else if (key == "ags")
                r.agsUsed = static_cast<uint32_t>(v);
            else if (key == "boxes")
                r.boxesUsed = static_cast<uint32_t>(v);
            else if (key == "channels")
                r.channels = static_cast<uint32_t>(v);
            else if (key == "hops")
                r.routedHops = v;
            else if (key == "stages")
                r.stagesUsed = static_cast<uint32_t>(v);
            else if (key == "regs")
                r.regsUsed = static_cast<uint32_t>(v);
            else if (key == "sram")
                r.sramWordsUsed = v;
            else if (key == "fu")
                r.fuActive = static_cast<uint32_t>(v);
            else
                return corrupt("unknown report key '" + key + "'");
        }
        r.ok = true;
    }
    if (!std::getline(is, line) || line != "config")
        return corrupt("missing config section");
    std::string err;
    if (!readConfig(is, out.fabric, &err))
        return corrupt("config parse: " + err);
    return Status();
}

// ---- the store -------------------------------------------------------

const char *
storeModeName(StoreMode m)
{
    switch (m) {
      case StoreMode::kReadWrite: return "read-write";
      case StoreMode::kReadOnly: return "read-only";
      case StoreMode::kDisabled: return "disabled";
    }
    return "unknown";
}

std::string
ConfigStore::recordName(uint64_t pirHash, uint64_t archHash)
{
    return "cc-" + hex64(pirHash) + "-" + hex64(archHash) + ".pcc";
}

std::string
ConfigStore::recordPath(const std::string &file) const
{
    return opts_.dir + "/" + file;
}

std::unique_ptr<ConfigStore>
ConfigStore::open(StoreOptions opts, Status *why)
{
    auto store = std::unique_ptr<ConfigStore>(new ConfigStore());
    store->opts_ = std::move(opts);
    if (why)
        *why = Status();

    // An unusable directory degrades to in-memory-only serving: the
    // store exists, every op is a typed no-op, the daemon starts.
    struct stat st;
    if (::mkdir(store->opts_.dir.c_str(), 0777) != 0 && errno != EEXIST) {
        if (why)
            *why = Status(StatusCode::kUnavailable,
                          strfmt("mkdir '%s': %s",
                                 store->opts_.dir.c_str(),
                                 std::strerror(errno)));
        store->fallback_++;
        return store;
    }
    if (::stat(store->opts_.dir.c_str(), &st) != 0 ||
        !S_ISDIR(st.st_mode)) {
        if (why)
            *why = Status(StatusCode::kUnavailable,
                          strfmt("'%s' is not a usable directory",
                                 store->opts_.dir.c_str()));
        store->fallback_++;
        return store;
    }

    Status lockWhy;
    if (store->acquireLock(&lockWhy)) {
        store->mode_ = StoreMode::kReadWrite;
    } else {
        // A live foreign owner: published records are immutable (they
        // only ever appear by rename), so reads stay safe — degrade
        // to read-only rather than refusing to start.
        store->mode_ = StoreMode::kReadOnly;
        if (why)
            *why = lockWhy;
    }

    store->recoveryScan();

    if (store->mode_ == StoreMode::kReadWrite && store->opts_.writeBehind)
        store->writer_ = std::thread([s = store.get()] { s->writerLoop(); });
    return store;
}

ConfigStore::~ConfigStore()
{
    {
        std::unique_lock<std::mutex> lk(qmu_);
        closing_ = true;
        qcv_.notify_all();
    }
    if (writer_.joinable())
        writer_.join();
    releaseLock();
}

bool
ConfigStore::acquireLock(Status *why)
{
    std::string path = opts_.dir + "/" + kLockName;
    for (int attempt = 0; attempt < 2; ++attempt) {
        int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0666);
        if (fd >= 0) {
            std::string body =
                strfmt("pid %d\n", static_cast<int>(::getpid()));
            ssize_t n = ::write(fd, body.data(), body.size());
            (void)n;
            ::fsync(fd);
            ::close(fd);
            lockOwned_ = true;
            return true;
        }
        if (errno != EEXIST) {
            if (why)
                *why = Status(StatusCode::kUnavailable,
                              strfmt("lock '%s': %s", path.c_str(),
                                     std::strerror(errno)));
            return false;
        }
        // Stale-owner detection: a SIGKILLed daemon leaves its LOCK
        // behind. kill(pid, 0) distinguishes a live owner (EPERM
        // counts as live) from a dead one; a dead owner's lock is
        // broken and the acquire retried once.
        std::string body;
        long pid = 0;
        if (readFile(path, body)) {
            if (sscanf(body.c_str(), "pid %ld", &pid) != 1)
                pid = 0;
        }
        // Our own pid counts as live too: a second store over the
        // same dir in one process (tests, embedding) must degrade to
        // read-only like any other contender, not steal the lock.
        bool alive = pid > 0 &&
                     (::kill(static_cast<pid_t>(pid), 0) == 0 ||
                      errno == EPERM);
        if (alive) {
            if (why)
                *why = Status(
                    StatusCode::kUnavailable,
                    strfmt("store locked by live pid %ld; serving "
                           "read-only",
                           pid));
            return false;
        }
        warn("config store: reclaiming stale lock '%s' (owner pid %ld "
             "is gone)",
             path.c_str(), pid);
        ::unlink(path.c_str());
    }
    if (why)
        *why = Status(StatusCode::kUnavailable,
                      "lock contention while breaking a stale lock");
    return false;
}

void
ConfigStore::releaseLock()
{
    if (!lockOwned_)
        return;
    ::unlink((opts_.dir + "/" + kLockName).c_str());
    lockOwned_ = false;
}

void
ConfigStore::quarantine(const std::string &file, const std::string &why)
{
    // Quarantine preserves the evidence (CI uploads it; humans diff
    // it) while getting it out of the serving path. Read-only openers
    // must not mutate a foreign store — they just skip the record.
    warn("config store: quarantining '%s': %s", file.c_str(),
         why.c_str());
    ++corruptQuarantined_;
    if (mode_ != StoreMode::kReadWrite)
        return;
    std::string qdir = opts_.dir + "/" + kQuarantineDir;
    if (::mkdir(qdir.c_str(), 0777) != 0 && errno != EEXIST) {
        ::unlink(recordPath(file).c_str());
        return;
    }
    std::string dst = qdir + "/" +
                      strfmt("%s.%llu", file.c_str(),
                             static_cast<unsigned long long>(
                                 corruptQuarantined_));
    if (::rename(recordPath(file).c_str(), dst.c_str()) != 0)
        ::unlink(recordPath(file).c_str());
}

void
ConfigStore::recoveryScan()
{
    DIR *d = ::opendir(opts_.dir.c_str());
    if (!d) {
        mode_ = StoreMode::kDisabled;
        ++fallback_;
        return;
    }
    struct Found
    {
        std::string name;
        uint64_t mtime = 0;
        uint64_t size = 0;
    };
    std::vector<Found> files;
    while (struct dirent *e = ::readdir(d)) {
        std::string name = e->d_name;
        if (name == "." || name == ".." || name == kLockName ||
            name == kQuarantineDir)
            continue;
        if (name.compare(0, std::strlen(kTmpPrefix), kTmpPrefix) == 0) {
            // A temp file is a crash between staging and rename; the
            // publish never happened and the bytes are untrusted.
            if (mode_ == StoreMode::kReadWrite) {
                ::unlink(recordPath(name).c_str());
                ++tmpReclaimed_;
            }
            continue;
        }
        struct stat st;
        if (::stat(recordPath(name).c_str(), &st) != 0 ||
            !S_ISREG(st.st_mode))
            continue;
        files.push_back({name, static_cast<uint64_t>(st.st_mtime),
                         static_cast<uint64_t>(st.st_size)});
    }
    ::closedir(d);

    // Oldest first, so eviction seq follows age across restarts.
    std::sort(files.begin(), files.end(),
              [](const Found &a, const Found &b) {
                  return a.mtime != b.mtime ? a.mtime < b.mtime
                                            : a.name < b.name;
              });

    std::lock_guard<std::mutex> lk(mu_);
    for (const Found &f : files) {
        unsigned long long pir = 0, arch = 0;
        char tail = 0;
        // Filename is advisory; the payload's embedded address is
        // cross-checked below so a renamed record cannot alias a key.
        if (sscanf(f.name.c_str(), "cc-%16llx-%16llx.pc%c", &pir, &arch,
                   &tail) != 3 ||
            tail != 'c') {
            quarantine(f.name, "unrecognized file name");
            continue;
        }
        std::string bytes;
        if (!readFile(recordPath(f.name), bytes)) {
            quarantine(f.name, "unreadable");
            continue;
        }
        StoredConfig rec;
        Status st = decodeRecord(bytes, rec);
        if (!st.ok()) {
            quarantine(f.name, st.toString());
            continue;
        }
        if (rec.pirHash != pir || rec.archHash != arch) {
            quarantine(f.name, "content address does not match name");
            continue;
        }
        IndexEntry ie;
        ie.file = f.name;
        ie.bytes = f.size;
        ie.seq = nextSeq_++;
        bytes_ += f.size;
        index_[{pir, arch}] = std::move(ie);
    }
    enforceCap();
}

Status
ConfigStore::load(uint64_t pirHash, uint64_t archHash, StoredConfig &out)
{
    if (mode_ == StoreMode::kDisabled) {
        std::lock_guard<std::mutex> lk(mu_);
        ++fallback_;
        return Status(StatusCode::kUnavailable, "store disabled");
    }
    std::string file;
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = index_.find({pirHash, archHash});
        if (it == index_.end()) {
            ++misses_;
            return Status(StatusCode::kNotFound, "no persisted record");
        }
        file = it->second.file;
    }
    std::string bytes;
    Status st;
    if (!readFile(recordPath(file), bytes))
        st = Status(StatusCode::kCorrupt, "unreadable");
    else
        st = decodeRecord(bytes, out);
    if (st.ok() && (out.pirHash != pirHash || out.archHash != archHash))
        st = Status(StatusCode::kCorrupt,
                    "content address does not match key");
    std::lock_guard<std::mutex> lk(mu_);
    if (st.ok()) {
        ++hits_;
        return st;
    }
    // The checksum gate runs on every load, so bit rot that postdates
    // the startup scan is still caught here — quarantine, count it a
    // miss, and let the caller's fresh compile repair the store.
    ++misses_;
    auto it = index_.find({pirHash, archHash});
    if (it != index_.end()) {
        bytes_ -= std::min(bytes_, it->second.bytes);
        quarantine(it->second.file, st.toString());
        index_.erase(it);
    }
    return st;
}

void
ConfigStore::persist(uint64_t pirHash, uint64_t archHash,
                     std::shared_ptr<const compiler::MapResult> map)
{
    if (mode_ != StoreMode::kReadWrite || !map || !map->report.ok) {
        std::lock_guard<std::mutex> lk(mu_);
        ++fallback_;
        return;
    }
    PendingWrite w{pirHash, archHash, std::move(map)};
    if (!opts_.writeBehind) {
        publish(w);
        return;
    }
    std::lock_guard<std::mutex> lk(qmu_);
    if (closing_) {
        std::lock_guard<std::mutex> slk(mu_);
        ++fallback_;
        return;
    }
    queue_.push_back(std::move(w));
    qcv_.notify_one();
}

void
ConfigStore::flush()
{
    if (mode_ != StoreMode::kReadWrite || !opts_.writeBehind)
        return;
    std::unique_lock<std::mutex> lk(qmu_);
    idle_.wait(lk, [this] { return queue_.empty() && inFlight_ == 0; });
}

void
ConfigStore::writerLoop()
{
    std::unique_lock<std::mutex> lk(qmu_);
    for (;;) {
        qcv_.wait(lk, [this] { return closing_ || !queue_.empty(); });
        if (queue_.empty()) {
            if (closing_)
                return;
            continue;
        }
        PendingWrite w = std::move(queue_.front());
        queue_.pop_front();
        ++inFlight_;
        lk.unlock();
        publish(w);
        lk.lock();
        --inFlight_;
        if (queue_.empty() && inFlight_ == 0)
            idle_.notify_all();
    }
}

StoreFault
ConfigStore::takeFault(uint64_t ordinal, size_t *shortBytes)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (fault_.fired || fault_.kind == StoreFault::kNone ||
        ordinal != fault_.onNthWrite)
        return StoreFault::kNone;
    fault_.fired = true; // one-shot, resilience-fault style
    if (shortBytes)
        *shortBytes = fault_.shortBytes;
    return fault_.kind;
}

void
ConfigStore::setFaultPlan(StoreFaultPlan plan)
{
    std::lock_guard<std::mutex> lk(mu_);
    fault_ = plan;
    fault_.fired = false;
}

bool
ConfigStore::publish(const PendingWrite &w)
{
    uint64_t ordinal;
    {
        std::lock_guard<std::mutex> lk(mu_);
        ordinal = ++publishOrdinal_;
    }
    size_t shortBytes = 0;
    StoreFault f = takeFault(ordinal, &shortBytes);

    StoredConfig rec = makeStoredConfig(w.pirHash, w.archHash, *w.map);
    std::string bytes = encodeRecord(rec);
    std::string final = recordName(w.pirHash, w.archHash);
    std::string tmp = strfmt("%s%s.%d.%llu", kTmpPrefix, final.c_str(),
                             static_cast<int>(::getpid()),
                             static_cast<unsigned long long>(ordinal));
    std::string tmpPath = recordPath(tmp);

    auto failed = [&](const char *what, bool keepTmp = false) {
        warn("config store: publish '%s' failed at %s: %s",
             final.c_str(), what, std::strerror(errno));
        if (!keepTmp)
            ::unlink(tmpPath.c_str());
        std::lock_guard<std::mutex> lk(mu_);
        ++writeFailures_;
        return false;
    };

    int fd = ::open(tmpPath.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0666);
    if (fd < 0)
        return failed("open");

    size_t want = bytes.size();
    if (f == StoreFault::kShortWrite)
        want = std::min(want, RecordHeader::kSize + shortBytes);
    ssize_t n = (f == StoreFault::kEioWrite)
                    ? -1
                    : ::write(fd, bytes.data(), want);
    if (n < 0 || static_cast<size_t>(n) != bytes.size()) {
        ::close(fd);
        if (f == StoreFault::kShortWrite || f == StoreFault::kEioWrite) {
            errno = EIO;
            // A short write leaves a torn temp on disk — exactly what
            // a crash mid-write leaves; recovery reclaims it.
            return failed(f == StoreFault::kShortWrite ? "short write"
                                                       : "write",
                          /*keepTmp=*/f == StoreFault::kShortWrite);
        }
        return failed("write");
    }
    if (f == StoreFault::kCrashAfterTempWrite) {
        // Simulated process death: no fsync, no rename, no counters —
        // a real SIGKILL updates nothing either. Recovery reclaims
        // the temp at the next open().
        ::close(fd);
        return false;
    }
    bool syncOk = !opts_.syncPublish || ::fsync(fd) == 0;
    if (f == StoreFault::kFailFsync) {
        syncOk = false;
        errno = EIO;
    }
    if (!syncOk) {
        ::close(fd);
        return failed("fsync");
    }
    ::close(fd);
    if (f == StoreFault::kCrashBeforeRename)
        return false; // fully staged, never visible; see above

    bool renameOk = f != StoreFault::kFailRename &&
                    ::rename(tmpPath.c_str(), recordPath(final).c_str()) == 0;
    if (!renameOk) {
        if (f == StoreFault::kFailRename)
            errno = EIO;
        return failed("rename");
    }
    // Rename is atomic within the directory; the directory fsync makes
    // the *name* durable. A crash before it can lose the record but
    // never shows a torn one.
    if (opts_.syncPublish && !fsyncDir(opts_.dir))
        warn("config store: directory fsync failed: %s",
             std::strerror(errno));

    std::lock_guard<std::mutex> lk(mu_);
    ++writes_;
    auto it = index_.find({w.pirHash, w.archHash});
    if (it != index_.end())
        bytes_ -= std::min(bytes_, it->second.bytes);
    IndexEntry ie;
    ie.file = final;
    ie.bytes = bytes.size();
    ie.seq = nextSeq_++;
    bytes_ += ie.bytes;
    index_[{w.pirHash, w.archHash}] = std::move(ie);
    enforceCap();
    return true;
}

void
ConfigStore::enforceCap()
{
    // Callers hold mu_. Oldest-first eviction by publish/scan order;
    // the newest record always survives (a single record larger than
    // the cap is served, not thrashed).
    if (opts_.maxBytes == 0 || mode_ != StoreMode::kReadWrite)
        return;
    while (bytes_ > opts_.maxBytes && index_.size() > 1) {
        auto victim = index_.end();
        for (auto it = index_.begin(); it != index_.end(); ++it) {
            if (victim == index_.end() ||
                it->second.seq < victim->second.seq)
                victim = it;
        }
        if (victim == index_.end())
            return;
        ::unlink(recordPath(victim->second.file).c_str());
        bytes_ -= std::min(bytes_, victim->second.bytes);
        index_.erase(victim);
        ++evicted_;
    }
}

StoreStats
ConfigStore::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    StoreStats s;
    s.hits = hits_;
    s.misses = misses_;
    s.writes = writes_;
    s.writeFailures = writeFailures_;
    s.corruptQuarantined = corruptQuarantined_;
    s.evicted = evicted_;
    s.fallback = fallback_;
    s.tmpReclaimed = tmpReclaimed_;
    s.bytes = bytes_;
    s.records = index_.size();
    s.mode = mode_;
    return s;
}

} // namespace plast::serve
