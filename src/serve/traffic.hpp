/**
 * @file
 * Seeded synthetic traffic for the serve daemon: a duplicate-heavy
 * job stream over a small set of unique job identities, drawn from
 * the paper's app suite (apps::allApps). Deterministic — the same
 * TrafficOptions always produce the same ordered std::vector<JobSpec>
 * (same programs, same staged inputs, same duplication pattern),
 * which is what makes job logs replayable (joblog.hpp) and the
 * bench_serve hit-rate numbers exact rather than statistical.
 *
 * Unique identity i is app `i % napps` at the chosen scale, variant
 * `i / napps`. Variants beyond the first wrap get a distinct per-job
 * cycle budget: same program, same architecture (config cache HIT),
 * different options hash (result cache MISS) — the traffic shape that
 * exercises the two cache layers independently. The budget deltas are
 * far above any tiny app's runtime, so variant outcomes stay
 * bit-identical to variant 0.
 */

#ifndef PLAST_SERVE_TRAFFIC_HPP
#define PLAST_SERVE_TRAFFIC_HPP

#include <cstdint>
#include <vector>

#include "apps/apps.hpp"
#include "serve/server.hpp"

namespace plast::serve
{

struct TrafficOptions
{
    uint64_t seed = 1;
    /** Distinct job identities (app x variant). */
    size_t uniques = 8;
    /** Total submissions. The first `uniques` cover each identity
     *  once (in identity order); the rest are seeded uniform draws —
     *  expected duplicate fraction 1 - uniques/jobs. */
    size_t jobs = 64;
    apps::Scale scale = apps::Scale::kTiny;

    // ---- robustness campaign shaping (DESIGN.md §16) -----------------
    /** Every Kth submission carries a distinct seeded fault plan
     *  (0 = no faults). Faulted jobs get a "/f<seed>" source suffix —
     *  they are different executions with their own options hash, so
     *  the replay join stays exact. */
    size_t faultEvery = 0;
    double faultRate = 200.0; ///< events per million cycles
    bool includeHard = false; ///< draw stuck-unit faults too
    /** Wall-clock deadlines (ms) assigned cyclically across
     *  submissions; empty = no per-job deadlines. Deadlines do not
     *  change a job's identity (not hashed, not replayed). */
    std::vector<uint64_t> deadlineSweepMs;
    /** Spread identities across N tenants ("t0".."tN-1") for the
     *  per-tenant circuit breaker; 0 or 1 = single default tenant. */
    size_t tenants = 1;
};

/** The ordered, fully deterministic job stream. JobSpec::source
 *  encodes the identity ("app:GEMM/v0") and is the replay join key. */
std::vector<JobSpec> makeTraffic(const TrafficOptions &opts);

} // namespace plast::serve

#endif // PLAST_SERVE_TRAFFIC_HPP
