/**
 * @file
 * Crash-safe persistent store for compiled fabric configs — the
 * cross-process rung of the serve daemon's config cache (DESIGN.md
 * §17). Place-and-route is by far the most expensive phase per job;
 * the config cache's content-addressed keys are already
 * platform-stable FNV-1a text hashes (runtime/manifest.hpp), so a
 * compiled config can be spilled to disk and reloaded by a restarted
 * daemon — a warm restart serves bit-identical results with zero
 * recompiles for persisted keys.
 *
 * Robustness is the headline, not the storage:
 *
 *  - **Versioned, checksummed records.** Every file is a fixed binary
 *    header (magic, schema version, payload length, FNV-1a-64
 *    checksum) over a text payload that embeds the content address
 *    and the `configToText` serialization — the same fixpoint-tested
 *    round trip the cfgio tests prove. A record is either valid in
 *    full or rejected in full.
 *  - **Atomic publish.** Writers stage into a `tmp-*` file, fsync it,
 *    rename() into place and fsync the directory — a crash at any
 *    instant leaves either the old state or the new state, never a
 *    half-written record under a final name.
 *  - **Recovery scan, quarantine, never a blocked start.** open()
 *    scans the directory: leftover temp files are reclaimed,
 *    truncated / bit-flipped / version-mismatched / misnamed records
 *    are moved to `quarantine/` with a typed Status — corruption is a
 *    counter, not a crash, and never poisons a serve result (the
 *    checksum gate runs again on every load).
 *  - **Single writer, stale-owner detection.** A `LOCK` file holds
 *    the owner pid; a second live daemon degrades to read-only
 *    (probes allowed — published records are immutable-by-rename —
 *    writes dropped and counted as fallback). A lock left by a
 *    SIGKILLed owner is detected dead via kill(pid, 0) and taken
 *    over.
 *  - **Graceful degradation.** An unusable directory (missing parent,
 *    no permissions, path is a file) yields a kDisabled store: every
 *    operation is a cheap typed no-op and the daemon serves from
 *    memory exactly as before the store existed.
 *  - **Fault-injection seam.** A one-shot StoreFaultPlan (the
 *    resilience FaultPlan idiom) makes short writes, EIO, fsync /
 *    rename failures and crash-before-rename / crash-after-temp-write
 *    reproducible in tests without a real kill -9.
 *
 * The hot path never blocks on fsync: persist() enqueues to a
 * write-behind thread (only the single-flight builder calls it, so
 * each key is persisted once); load() reads synchronously but only
 * on a config-cache miss, where it replaces a full place-and-route.
 */

#ifndef PLAST_SERVE_STORE_HPP
#define PLAST_SERVE_STORE_HPP

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/status.hpp"
#include "compiler/mapper.hpp"

namespace plast::serve
{

// ---- record codec ----------------------------------------------------

/** What a record persists: the content address, the compiled fabric
 *  config (cfgio text round trip), the DRAM layout the runtime needs
 *  to stage inputs, and the mapping-report counters (diagnostics of a
 *  *successful* compile; failed compiles are never persisted). */
struct StoredConfig
{
    uint64_t pirHash = 0;
    uint64_t archHash = 0;
    std::vector<Addr> dramBase;
    compiler::MappingReport report; ///< ok + numeric counters only
    FabricConfig fabric;
};

/** Fixed binary header in front of every record payload. */
struct RecordHeader
{
    static constexpr char kMagic[9] = "PLASTCC\n"; ///< 8 bytes on disk
    static constexpr uint32_t kVersion = 1;
    static constexpr size_t kSize = 8 + 4 + 4 + 8 + 8; ///< 32 bytes

    uint32_t version = kVersion;
    uint32_t flags = 0; ///< reserved, must be zero in v1
    uint64_t payloadLen = 0;
    uint64_t checksum = 0; ///< fnv1a64 over the payload bytes
};

/** header + payload, ready for an atomic publish. */
std::string encodeRecord(const StoredConfig &rec);

/**
 * Validate and parse a record image. Typed failures, never a crash:
 * kCorrupt for a truncated header/payload, bad magic, checksum
 * mismatch, version mismatch or an unparseable payload (each with a
 * distinct message). On success the content address inside the
 * payload is authoritative — callers cross-check it against the
 * filename they read from.
 */
Status decodeRecord(const std::string &bytes, StoredConfig &out);

/** Rebuild the frozen compile result a config-cache hit adopts. */
std::shared_ptr<const compiler::MapResult>
toMapResult(StoredConfig &&rec);

/** Capture the persistable slice of a finished compile. */
StoredConfig makeStoredConfig(uint64_t pirHash, uint64_t archHash,
                              const compiler::MapResult &map);

// ---- fault-injection seam --------------------------------------------

/** Where in the publish path a planned IO fault strikes. */
enum class StoreFault : uint8_t
{
    kNone,
    kShortWrite,          ///< only N payload bytes reach the temp file
    kEioWrite,            ///< write() fails outright (EIO style)
    kFailFsync,           ///< file fsync fails
    kFailRename,          ///< rename into the final name fails
    kCrashAfterTempWrite, ///< "process dies" after writing the temp,
                          ///< before fsync — torn temp left behind
    kCrashBeforeRename,   ///< dies after fsync, before rename —
                          ///< complete temp left behind, never visible
};

/** One-shot, like resilience::FaultEvent: fires on the Nth publish
 *  attempt and never again. */
struct StoreFaultPlan
{
    StoreFault kind = StoreFault::kNone;
    uint32_t onNthWrite = 1; ///< 1-based publish ordinal it strikes
    size_t shortBytes = 16;  ///< bytes written for kShortWrite
    bool fired = false;
};

// ---- the store -------------------------------------------------------

enum class StoreMode : uint8_t
{
    kReadWrite, ///< owns the LOCK; full service
    kReadOnly,  ///< another live daemon owns the LOCK; probes only
    kDisabled,  ///< directory unusable; every op is a typed no-op
};

const char *storeModeName(StoreMode m);

struct StoreOptions
{
    std::string dir;
    uint64_t maxBytes = 0; ///< 0 = unbounded; else evict oldest
    bool writeBehind = true;
    bool syncPublish = true; ///< fsync temp file + directory
};

struct StoreStats
{
    uint64_t hits = 0;   ///< load() served a valid record
    uint64_t misses = 0; ///< load() found nothing (includes corrupt)
    uint64_t writes = 0; ///< records published
    uint64_t writeFailures = 0;      ///< publish attempts that failed
    uint64_t corruptQuarantined = 0; ///< records moved to quarantine/
    uint64_t evicted = 0;            ///< records removed by the cap
    uint64_t fallback = 0; ///< ops degraded to in-memory-only
    uint64_t tmpReclaimed = 0; ///< crash leftovers removed at open
    uint64_t bytes = 0;        ///< live record bytes on disk
    size_t records = 0;
    StoreMode mode = StoreMode::kDisabled;
};

class ConfigStore
{
  public:
    /**
     * Open (and recover) a store rooted at opts.dir. NEVER fails hard
     * and never blocks the caller on a bad directory: an unusable
     * path yields a kDisabled store, a foreign live LOCK yields
     * kReadOnly, and `why` (when non-null) receives the typed reason
     * for any degradation. Always returns a non-null store.
     */
    static std::unique_ptr<ConfigStore> open(StoreOptions opts,
                                             Status *why = nullptr);

    ~ConfigStore(); ///< flush write-behind, release the lock

    ConfigStore(const ConfigStore &) = delete;
    ConfigStore &operator=(const ConfigStore &) = delete;

    StoreMode mode() const { return mode_; }
    const std::string &dir() const { return opts_.dir; }

    /**
     * Probe for a persisted compile. kOk fills `out`; kNotFound is a
     * clean miss; kCorrupt means the record failed validation and was
     * quarantined (the caller compiles as if missing — and its
     * re-persist repairs the store); kUnavailable when disabled.
     */
    Status load(uint64_t pirHash, uint64_t archHash, StoredConfig &out);

    /**
     * Persist a successful compile. Write-behind: enqueues and
     * returns immediately (the single-flight builder is the only
     * caller per key, so the hot path never blocks on fsync). Dropped
     * with a fallback count when the store is not writable.
     */
    void persist(uint64_t pirHash, uint64_t archHash,
                 std::shared_ptr<const compiler::MapResult> map);

    /** Block until every enqueued persist has been published (or
     *  failed). Called by tests and at orderly shutdown. */
    void flush();

    StoreStats stats() const;

    /** Arm the one-shot IO fault seam (tests only). */
    void setFaultPlan(StoreFaultPlan plan);

  private:
    ConfigStore() = default;

    struct PendingWrite
    {
        uint64_t pirHash = 0;
        uint64_t archHash = 0;
        std::shared_ptr<const compiler::MapResult> map;
    };
    struct IndexEntry
    {
        std::string file; ///< basename within dir
        uint64_t bytes = 0;
        uint64_t seq = 0; ///< eviction order (scan mtime, then writes)
    };

    bool acquireLock(Status *why);
    void releaseLock();
    void recoveryScan();
    void writerLoop();
    /** The atomic publish protocol; returns false on any IO failure
     *  (temp cleaned up, counted). */
    bool publish(const PendingWrite &w);
    void enforceCap();
    void quarantine(const std::string &file, const std::string &why);
    std::string recordPath(const std::string &file) const;
    static std::string recordName(uint64_t pirHash, uint64_t archHash);
    /** Consume the armed fault if it matches this publish ordinal. */
    StoreFault takeFault(uint64_t ordinal, size_t *shortBytes);

    StoreOptions opts_;
    StoreMode mode_ = StoreMode::kDisabled;
    bool lockOwned_ = false;

    mutable std::mutex mu_;
    std::map<std::pair<uint64_t, uint64_t>, IndexEntry> index_;
    uint64_t bytes_ = 0;
    uint64_t nextSeq_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t writes_ = 0;
    uint64_t writeFailures_ = 0;
    uint64_t corruptQuarantined_ = 0;
    uint64_t evicted_ = 0;
    uint64_t fallback_ = 0;
    uint64_t tmpReclaimed_ = 0;
    uint64_t publishOrdinal_ = 0;
    StoreFaultPlan fault_;

    std::mutex qmu_;
    std::condition_variable qcv_;   ///< writer wakeup
    std::condition_variable idle_;  ///< flush() wakeup
    std::deque<PendingWrite> queue_;
    bool closing_ = false;
    uint32_t inFlight_ = 0;
    std::thread writer_;
};

} // namespace plast::serve

#endif // PLAST_SERVE_STORE_HPP
