/**
 * @file
 * The content-addressed, single-flight LRU cache underneath the serve
 * daemon. Two instantiations exist:
 *
 *   ConfigCache  (pirHash, archHash)            -> compiled MapResult
 *   ResultCache  (pirHash, archHash, inputsHash,
 *                 optionsHash)                  -> finished JobOutcome
 *
 * Keys are FNV-1a 64-bit hashes over the same canonical text
 * serializations the run-manifest layer uses (runtime/manifest.hpp):
 * programToText for programs, archParamsText for parameters — so a
 * manifest's (pir_hash, arch_hash) pair IS the config cache address,
 * byte-for-byte, and the hash-stability goldens in
 * tests/test_serve.cpp tie both layers together.
 *
 * Semantics:
 *
 *  - single-flight: the first thread to miss a key inserts a pending
 *    entry and builds the value outside the lock; every concurrent
 *    requester of the same key blocks until the build completes and
 *    then counts as a HIT (it did not pay for the build — which is
 *    the entire point: identical kernels never pay place-and-route
 *    twice, identical jobs never simulate twice).
 *  - deterministic accounting: every acquire() is assigned a sequence
 *    number under the cache lock; the (seq, key, hit) access log
 *    replayed serially through a fresh cache of the same capacity
 *    reproduces the hit/miss sequence exactly (the deterministic-
 *    replay test). Eviction decisions happen at miss time (placeholder
 *    insertion), not at build completion, precisely so the access
 *    order fully determines them.
 *  - LRU eviction: capacity is counted in entries; pending entries are
 *    pinned (they cannot be evicted while a builder or waiters hold
 *    them). When every entry is pending the cache may transiently
 *    exceed capacity rather than deadlock — sized-below-worker-count
 *    caches are a configuration smell, not a crash.
 *  - negative caching: failed builds (e.g. compile errors) are cached
 *    like successes. The simulator stack is deterministic, so a
 *    failure is as content-addressable as a config; duplicate bad
 *    programs should not recompile either.
 */

#ifndef PLAST_SERVE_CACHE_HPP
#define PLAST_SERVE_CACHE_HPP

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace plast::serve
{

/** Up-to-four-part content address; unused parts stay zero. */
struct CacheKey
{
    uint64_t pir = 0;     ///< fnv1a64(programToText(prog))
    uint64_t arch = 0;    ///< fnv1a64(archParamsText(params))
    uint64_t inputs = 0;  ///< fnv1a64(staged input image); 0 for configs
    uint64_t options = 0; ///< fnv1a64(execution-mode text); 0 for configs

    bool
    operator<(const CacheKey &o) const
    {
        if (pir != o.pir)
            return pir < o.pir;
        if (arch != o.arch)
            return arch < o.arch;
        if (inputs != o.inputs)
            return inputs < o.inputs;
        return options < o.options;
    }
    bool
    operator==(const CacheKey &o) const
    {
        return pir == o.pir && arch == o.arch && inputs == o.inputs &&
               options == o.options;
    }
};

/** One acquire() in cache-lock order (the deterministic replay log). */
struct CacheAccess
{
    uint64_t seq = 0;
    CacheKey key;
    bool hit = false;
};

struct CacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t size = 0;
    size_t capacity = 0;
};

template <typename V>
class SingleFlightCache
{
  public:
    using ValuePtr = std::shared_ptr<const V>;
    using Builder = std::function<ValuePtr()>;

    /** `capacity` in entries (min 1). */
    explicit SingleFlightCache(size_t capacity)
        : capacity_(capacity == 0 ? 1 : capacity)
    {
    }

    struct Acquired
    {
        ValuePtr value;
        bool hit = false;
        uint64_t seq = 0; ///< global cache-access sequence number
    };

    /**
     * Look up `key`; on miss, run `build` (outside the lock — builds
     * of distinct keys proceed in parallel) and publish the value.
     * Concurrent requesters of a key being built block and return the
     * published value as a hit.
     */
    Acquired
    acquire(const CacheKey &key, const Builder &build)
    {
        Acquired out;
        std::unique_lock<std::mutex> lk(mu_);
        out.seq = nextSeq_++;
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            Entry &e = it->second;
            ++hits_;
            out.hit = true;
            recordAccess(out.seq, key, true);
            touch(key, e);
            if (!e.ready) {
                ++e.waiters;
                ready_.wait(lk, [&e] { return e.ready; });
                --e.waiters;
            }
            out.value = e.value;
            return out;
        }
        // Miss: insert the pending entry and decide eviction NOW, so
        // the access order alone determines cache contents (replay
        // determinism), then build outside the lock.
        ++misses_;
        recordAccess(out.seq, key, false);
        Entry &e = entries_[key];
        e.ready = false;
        lru_.push_front(key);
        e.lruPos = lru_.begin();
        maybeEvict();
        lk.unlock();

        ValuePtr built = build();

        lk.lock();
        // The entry can have been evicted only if it was ready —
        // pending entries are pinned, so it is still here.
        Entry &pub = entries_.at(key);
        pub.value = built;
        pub.ready = true;
        ready_.notify_all();
        out.value = built;
        return out;
    }

    /** Value if present AND ready; null otherwise (never blocks,
     *  never counts as an access). */
    ValuePtr
    peek(const CacheKey &key) const
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = entries_.find(key);
        if (it == entries_.end() || !it->second.ready)
            return nullptr;
        return it->second.value;
    }

    CacheStats
    stats() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        CacheStats s;
        s.hits = hits_;
        s.misses = misses_;
        s.evictions = evictions_;
        s.size = entries_.size();
        s.capacity = capacity_;
        return s;
    }

    /** The (seq, key, hit) log in lock order; enable before first use.
     *  Drives the deterministic-replay machinery (joblog.hpp). */
    void
    setLogging(bool on)
    {
        std::lock_guard<std::mutex> lk(mu_);
        logging_ = on;
    }
    std::vector<CacheAccess>
    accessLog() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return log_;
    }

  private:
    struct Entry
    {
        ValuePtr value;
        bool ready = false;
        uint32_t waiters = 0;
        typename std::list<CacheKey>::iterator lruPos;
    };

    void
    recordAccess(uint64_t seq, const CacheKey &key, bool hit)
    {
        if (logging_)
            log_.push_back({seq, key, hit});
    }

    void
    touch(const CacheKey &key, Entry &e)
    {
        lru_.erase(e.lruPos);
        lru_.push_front(key);
        e.lruPos = lru_.begin();
    }

    void
    maybeEvict()
    {
        while (entries_.size() > capacity_) {
            // Walk from the cold end; skip pinned (pending or waited-
            // on) entries.
            auto victim = lru_.end();
            for (auto it = std::prev(lru_.end());; --it) {
                const Entry &e = entries_.at(*it);
                if (e.ready && e.waiters == 0) {
                    victim = it;
                    break;
                }
                if (it == lru_.begin())
                    break;
            }
            if (victim == lru_.end())
                return; // everything pinned: transient overflow
            entries_.erase(*victim);
            lru_.erase(victim);
            ++evictions_;
        }
    }

    const size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable ready_;
    std::map<CacheKey, Entry> entries_;
    std::list<CacheKey> lru_; ///< front = most recently used
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t evictions_ = 0;
    uint64_t nextSeq_ = 0;
    bool logging_ = false;
    std::vector<CacheAccess> log_;
};

} // namespace plast::serve

#endif // PLAST_SERVE_CACHE_HPP
