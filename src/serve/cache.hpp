/**
 * @file
 * The content-addressed, single-flight LRU cache underneath the serve
 * daemon. Two instantiations exist:
 *
 *   ConfigCache  (pirHash, archHash)            -> compiled MapResult
 *   ResultCache  (pirHash, archHash, inputsHash,
 *                 optionsHash)                  -> finished JobOutcome
 *
 * Keys are FNV-1a 64-bit hashes over the same canonical text
 * serializations the run-manifest layer uses (runtime/manifest.hpp):
 * programToText for programs, archParamsText for parameters — so a
 * manifest's (pir_hash, arch_hash) pair IS the config cache address,
 * byte-for-byte, and the hash-stability goldens in
 * tests/test_serve.cpp tie both layers together.
 *
 * Semantics:
 *
 *  - single-flight: the first thread to miss a key inserts a pending
 *    entry and builds the value outside the lock; every concurrent
 *    requester of the same key blocks until the build completes and
 *    then counts as a HIT (it did not pay for the build — which is
 *    the entire point: identical kernels never pay place-and-route
 *    twice, identical jobs never simulate twice).
 *  - deterministic accounting: every acquire() is assigned a sequence
 *    number under the cache lock; the (seq, key, hit) access log
 *    replayed serially through a fresh cache of the same capacity
 *    reproduces the hit/miss sequence exactly (the deterministic-
 *    replay test). Eviction decisions happen at miss time (placeholder
 *    insertion), not at build completion, precisely so the access
 *    order fully determines them.
 *  - LRU eviction: capacity is counted in entries; pending entries are
 *    pinned (they cannot be evicted while a builder or waiters hold
 *    them). When every entry is pending the cache may transiently
 *    exceed capacity rather than deadlock — sized-below-worker-count
 *    caches are a configuration smell, not a crash.
 *  - negative caching: failed builds (e.g. compile errors) are cached
 *    like successes. The simulator stack is deterministic, so a
 *    failure is as content-addressable as a config; duplicate bad
 *    programs should not recompile either.
 *  - abandonment + handoff: a builder may return null to ABANDON the
 *    build (a cancelled or deadline-expired job must never publish its
 *    wall-clock-dependent outcome as the key's cached value). When the
 *    leader abandons, the single-flight slot is handed to a waiting
 *    follower — which runs its own builder — so a cancellation never
 *    poisons the key for healthy requesters; with no waiters the
 *    placeholder is erased and the next acquire is a fresh miss.
 *    Followers holding a CancelToken can likewise give up waiting
 *    (Acquired::gaveUp) when their own budget expires mid-wait.
 */

#ifndef PLAST_SERVE_CACHE_HPP
#define PLAST_SERVE_CACHE_HPP

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "base/cancel.hpp"
#include "base/profile.hpp"

namespace plast::serve
{

/** Up-to-four-part content address; unused parts stay zero. */
struct CacheKey
{
    uint64_t pir = 0;     ///< fnv1a64(programToText(prog))
    uint64_t arch = 0;    ///< fnv1a64(archParamsText(params))
    uint64_t inputs = 0;  ///< fnv1a64(staged input image); 0 for configs
    uint64_t options = 0; ///< fnv1a64(execution-mode text); 0 for configs

    bool
    operator<(const CacheKey &o) const
    {
        if (pir != o.pir)
            return pir < o.pir;
        if (arch != o.arch)
            return arch < o.arch;
        if (inputs != o.inputs)
            return inputs < o.inputs;
        return options < o.options;
    }
    bool
    operator==(const CacheKey &o) const
    {
        return pir == o.pir && arch == o.arch && inputs == o.inputs &&
               options == o.options;
    }
};

/** One acquire() in cache-lock order (the deterministic replay log). */
struct CacheAccess
{
    uint64_t seq = 0;
    CacheKey key;
    bool hit = false;
};

struct CacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t abandoned = 0; ///< builds that returned null (cancelled)
    size_t size = 0;
    size_t capacity = 0;
};

template <typename V>
class SingleFlightCache
{
  public:
    using ValuePtr = std::shared_ptr<const V>;
    using Builder = std::function<ValuePtr()>;

    /** `capacity` in entries (min 1). */
    explicit SingleFlightCache(size_t capacity)
        : capacity_(capacity == 0 ? 1 : capacity)
    {
    }

    struct Acquired
    {
        ValuePtr value;
        bool hit = false;
        bool gaveUp = false; ///< follower left the wait (token fired)
        uint64_t seq = 0;    ///< global cache-access sequence number
    };

    /**
     * Look up `key`; on miss, run `build` (outside the lock — builds
     * of distinct keys proceed in parallel) and publish the value.
     * Concurrent requesters of a key being built block and return the
     * published value as a hit.
     *
     * A null return from `build` abandons the entry instead of
     * publishing it (see the header comment); the caller gets a null
     * value and must produce its own, uncached outcome. A non-null
     * `cancel` lets a blocked follower give up waiting once its token
     * fires — it returns with gaveUp set and a null value.
     */
    Acquired
    acquire(const CacheKey &key, const Builder &build,
            const CancelToken *cancel = nullptr)
    {
        Acquired out;
        std::unique_lock<std::mutex> lk(mu_);
        out.seq = nextSeq_++;
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            Entry &e = it->second;
            ++hits_;
            out.hit = true;
            recordAccess(out.seq, key, true);
            touch(key, e);
            if (e.ready) {
                out.value = e.value;
                return out;
            }
            // Pending: wait for the leader to publish — or to abandon,
            // in which case one follower inherits the build slot.
            ++e.waiters;
            for (;;) {
                if (cancel) {
                    // Sliced wait so an expiring token is noticed even
                    // when no notify arrives.
                    ready_.wait_for(
                        lk, std::chrono::milliseconds(5),
                        [&e] { return e.ready || !e.building; });
                } else {
                    ready_.wait(lk,
                                [&e] { return e.ready || !e.building; });
                }
                if (e.ready) {
                    --e.waiters;
                    out.value = e.value;
                    return out;
                }
                if (cancel &&
                    (cancel->cancelRequested() ||
                     cancel->expired(
                         HostProfiler::instance().nowUs()))) {
                    --e.waiters;
                    dropOrphan(key);
                    out.gaveUp = true;
                    return out;
                }
                if (!e.building) {
                    // Leader abandoned; this follower inherits the
                    // single-flight slot and pays for the build. The
                    // access stays logged as a hit — the extra build is
                    // charged to the cancellation, not the access log.
                    e.building = true;
                    --e.waiters;
                    break;
                }
            }
        } else {
            // Miss: insert the pending entry and decide eviction NOW,
            // so the access order alone determines cache contents
            // (replay determinism), then build outside the lock.
            ++misses_;
            recordAccess(out.seq, key, false);
            Entry &e = entries_[key];
            e.ready = false;
            e.building = true;
            lru_.push_front(key);
            e.lruPos = lru_.begin();
            maybeEvict();
        }
        lk.unlock();

        ValuePtr built = build();

        lk.lock();
        // The entry can have been evicted only if it was ready —
        // pending entries are pinned, so it is still here.
        Entry &pub = entries_.at(key);
        if (built) {
            pub.value = built;
            pub.ready = true;
            pub.building = false;
            ready_.notify_all();
            out.value = built;
            return out;
        }
        // Abandoned: hand off to a waiter or erase the placeholder.
        ++abandoned_;
        pub.building = false;
        if (pub.waiters == 0) {
            lru_.erase(pub.lruPos);
            entries_.erase(key);
        } else {
            ready_.notify_all();
        }
        return out;
    }

    /** Value if present AND ready; null otherwise (never blocks,
     *  never counts as an access). */
    ValuePtr
    peek(const CacheKey &key) const
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = entries_.find(key);
        if (it == entries_.end() || !it->second.ready)
            return nullptr;
        return it->second.value;
    }

    CacheStats
    stats() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        CacheStats s;
        s.hits = hits_;
        s.misses = misses_;
        s.evictions = evictions_;
        s.abandoned = abandoned_;
        s.size = entries_.size();
        s.capacity = capacity_;
        return s;
    }

    /** The (seq, key, hit) log in lock order; enable before first use.
     *  Drives the deterministic-replay machinery (joblog.hpp). */
    void
    setLogging(bool on)
    {
        std::lock_guard<std::mutex> lk(mu_);
        logging_ = on;
    }
    std::vector<CacheAccess>
    accessLog() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return log_;
    }

  private:
    struct Entry
    {
        ValuePtr value;
        bool ready = false;
        bool building = false; ///< a thread owns the build slot
        uint32_t waiters = 0;
        typename std::list<CacheKey>::iterator lruPos;
    };

    /** Erase a placeholder nobody owns and nobody waits for (the last
     *  follower gave up after the leader abandoned). */
    void
    dropOrphan(const CacheKey &key)
    {
        auto it = entries_.find(key);
        if (it == entries_.end())
            return;
        Entry &e = it->second;
        if (!e.ready && !e.building && e.waiters == 0) {
            lru_.erase(e.lruPos);
            entries_.erase(it);
        }
    }

    void
    recordAccess(uint64_t seq, const CacheKey &key, bool hit)
    {
        if (logging_)
            log_.push_back({seq, key, hit});
    }

    void
    touch(const CacheKey &key, Entry &e)
    {
        lru_.erase(e.lruPos);
        lru_.push_front(key);
        e.lruPos = lru_.begin();
    }

    void
    maybeEvict()
    {
        while (entries_.size() > capacity_) {
            // Walk from the cold end; skip pinned (pending or waited-
            // on) entries.
            auto victim = lru_.end();
            for (auto it = std::prev(lru_.end());; --it) {
                const Entry &e = entries_.at(*it);
                if (e.ready && e.waiters == 0) {
                    victim = it;
                    break;
                }
                if (it == lru_.begin())
                    break;
            }
            if (victim == lru_.end())
                return; // everything pinned: transient overflow
            entries_.erase(*victim);
            lru_.erase(victim);
            ++evictions_;
        }
    }

    const size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable ready_;
    std::map<CacheKey, Entry> entries_;
    std::list<CacheKey> lru_; ///< front = most recently used
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t evictions_ = 0;
    uint64_t abandoned_ = 0;
    uint64_t nextSeq_ = 0;
    bool logging_ = false;
    std::vector<CacheAccess> log_;
};

} // namespace plast::serve

#endif // PLAST_SERVE_CACHE_HPP
