/**
 * @file
 * A bounded, thread-safe, multi-producer/multi-consumer job queue —
 * the admission edge of the serve daemon. Producers block when the
 * queue is full (backpressure instead of unbounded memory growth
 * under overload), consumers block when it is empty, and close()
 * drains gracefully: queued work is still delivered, then every
 * blocked consumer wakes with "no more work".
 *
 * The implementation is a classic two-condition-variable monitor;
 * depth and high-water counters feed the serve metrics.
 */

#ifndef PLAST_SERVE_QUEUE_HPP
#define PLAST_SERVE_QUEUE_HPP

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace plast::serve
{

/** Outcome of a bounded-wait tryPush (the admission-control edge). */
enum class PushResult : uint8_t
{
    kOk,       ///< enqueued
    kTimedOut, ///< queue stayed full for the whole wait budget
    kClosed,   ///< queue closed — item not enqueued
};

template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(size_t capacity)
        : capacity_(capacity == 0 ? 1 : capacity)
    {
    }

    /** Block until there is room (or the queue closes). Returns false
     *  when the queue was closed — the item was not enqueued. */
    bool
    push(T item)
    {
        std::unique_lock<std::mutex> lk(mu_);
        notFull_.wait(lk, [&] {
            return closed_ || items_.size() < capacity_;
        });
        if (closed_)
            return false;
        items_.push_back(std::move(item));
        if (items_.size() > highWater_)
            highWater_ = items_.size();
        ++pushed_;
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Bounded-wait push: wait at most `waitUs` microseconds for room.
     * kTimedOut is the load-shedding signal — the caller turns it into
     * a typed rejection instead of blocking a submitter indefinitely
     * behind an overloaded daemon. waitUs == 0 is a pure try.
     */
    PushResult
    tryPush(T item, uint64_t waitUs)
    {
        std::unique_lock<std::mutex> lk(mu_);
        bool room = notFull_.wait_for(
            lk, std::chrono::microseconds(waitUs),
            [&] { return closed_ || items_.size() < capacity_; });
        if (closed_)
            return PushResult::kClosed;
        if (!room)
            return PushResult::kTimedOut;
        items_.push_back(std::move(item));
        if (items_.size() > highWater_)
            highWater_ = items_.size();
        ++pushed_;
        notEmpty_.notify_one();
        return PushResult::kOk;
    }

    /** Block until an item is available. Empty optional means the
     *  queue is closed AND drained — the consumer should exit. */
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lk(mu_);
        notEmpty_.wait(lk, [&] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        notFull_.notify_one();
        return item;
    }

    /**
     * Remove and return everything queued right now, waking every
     * producer blocked on a full queue (their pushes then proceed or
     * time out against the emptied queue). Used by shutdown paths that
     * must account for never-started work instead of abandoning it.
     */
    std::deque<T>
    drain()
    {
        std::deque<T> out;
        {
            std::lock_guard<std::mutex> lk(mu_);
            out.swap(items_);
        }
        notFull_.notify_all();
        return out;
    }

    /** Reject new pushes; queued items still drain through pop(). */
    void
    close()
    {
        std::lock_guard<std::mutex> lk(mu_);
        closed_ = true;
        notEmpty_.notify_all();
        notFull_.notify_all();
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return items_.size();
    }

    /** Deepest the queue ever got (backpressure telemetry). */
    size_t
    highWater() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return highWater_;
    }

    uint64_t
    pushed() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return pushed_;
    }

    size_t capacity() const { return capacity_; }

  private:
    const size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable notEmpty_;
    std::condition_variable notFull_;
    std::deque<T> items_;
    size_t highWater_ = 0;
    uint64_t pushed_ = 0;
    bool closed_ = false;
};

} // namespace plast::serve

#endif // PLAST_SERVE_QUEUE_HPP
