#include "serve/traffic.hpp"

#include "base/rng.hpp"

namespace plast::serve
{

namespace
{

JobSpec
specForUnique(size_t u, apps::Scale scale)
{
    const auto &registry = apps::allApps();
    size_t napps = registry.size();
    const apps::AppSpec &app = registry[u % napps];
    size_t variant = u / napps;

    apps::AppInstance inst = app.make(scale);
    JobSpec spec;
    spec.source =
        "app:" + app.name + "/v" + std::to_string(variant);
    spec.prog = std::move(inst.prog);
    spec.load = std::move(inst.load);
    // Variant wraps: identical program + arch (config cache hit) with
    // a distinct cycle budget (distinct options hash -> result cache
    // miss). 1e9 + variant dwarfs any tiny-scale runtime, so every
    // variant's outcome is bit-identical.
    if (variant > 0)
        spec.maxCycles = 1'000'000'000ull + variant;
    return spec;
}

} // namespace

std::vector<JobSpec>
makeTraffic(const TrafficOptions &opts)
{
    std::vector<JobSpec> uniques;
    uniques.reserve(opts.uniques);
    for (size_t u = 0; u < opts.uniques; ++u)
        uniques.push_back(specForUnique(u, opts.scale));

    Rng rng(opts.seed * 0x9e3779b97f4a7c15ull + 0x5e57e);
    std::vector<JobSpec> out;
    out.reserve(opts.jobs);
    for (size_t j = 0; j < opts.jobs; ++j) {
        size_t u = j < opts.uniques
                       ? j
                       : static_cast<size_t>(
                             rng.nextBounded(opts.uniques));
        out.push_back(uniques[u]);
        JobSpec &spec = out.back();
        if (opts.tenants > 1)
            spec.tenant = "t" + std::to_string(u % opts.tenants);
        if (!opts.deadlineSweepMs.empty())
            spec.deadlineMs =
                opts.deadlineSweepMs[j % opts.deadlineSweepMs.size()];
        if (opts.faultEvery && j % opts.faultEvery ==
                                   opts.faultEvery - 1) {
            // A distinct seed per submission: faulted duplicates are
            // distinct executions, and the source suffix keeps the
            // replay join exact.
            spec.faultSeed = opts.seed * 1'000'003ull + j + 1;
            spec.faultRate = opts.faultRate;
            spec.faultHard = opts.includeHard;
            spec.source += "/f" + std::to_string(spec.faultSeed);
        }
    }
    return out;
}

} // namespace plast::serve
