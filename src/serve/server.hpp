/**
 * @file
 * The multi-tenant compile-and-serve daemon core (DESIGN.md §15): a
 * bounded job queue in front of a fixed worker pool, where each worker
 * owns an independent Runner/Fabric per job and two content-addressed
 * single-flight caches collapse duplicate work:
 *
 *   config cache   (pirHash, archHash)          — identical kernels
 *                  never pay place-and-route twice; a hit adopts the
 *                  frozen compiler::MapResult another worker produced.
 *   result cache   (pirHash, archHash, inputsHash, optionsHash) — the
 *                  simulator is deterministic end to end, so a
 *                  bit-identical job (same program, architecture,
 *                  staged inputs and execution options) is served its
 *                  memoized outcome without simulating again. This is
 *                  what makes hot duplicate traffic cheap.
 *
 * Hashes are the manifest layer's platform-stable FNV-1a over
 * canonical text serializations (runtime/manifest.hpp), so a run
 * manifest's (pir_hash, arch_hash) is literally the config cache
 * address.
 *
 * Every job produces a JobResult — outcome, cycles, content hashes,
 * hit flags and a result hash over argOuts + DRAM image — and the
 * ordered log of those records replays deterministically
 * (serve/joblog.hpp). Failures never kill the daemon: compile errors,
 * deadlocks, watchdog trips and validation mismatches come back as
 * typed outcomes (the PR 4/5 never-fail stack is the foundation).
 */

#ifndef PLAST_SERVE_SERVER_HPP
#define PLAST_SERVE_SERVER_HPP

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/metrics.hpp"
#include "base/status.hpp"
#include "compiler/mapper.hpp"
#include "pir/ir.hpp"
#include "serve/cache.hpp"
#include "serve/queue.hpp"
#include "sim/fabric.hpp"

namespace plast
{
class Runner;
}

namespace plast::serve
{

/** One unit of work: a PIR program, the architecture to compile it
 *  for, and how to stage its inputs. */
struct JobSpec
{
    uint64_t id = 0;    ///< assigned by Server::submit
    std::string source; ///< replayable origin ("app:GEMM", "fuzz:7", ...)
    pir::Program prog;
    ArchParams params = ArchParams::plasticineFinal();
    /** Stage inputs into the runner's DRAM buffers; null = the
     *  fill-by-name convention (fuzz::fillInputs), which is what wire
     *  jobs parsed from .pir files use. Must be deterministic — the
     *  staged image is part of the result-cache content address. */
    std::function<void(Runner &)> load;
    /** Per-job cycle budget (0 = the server default). Part of the
     *  result-cache options hash. */
    Cycles maxCycles = 0;
};

/** The memoized, shareable part of a finished job: everything a
 *  bit-identical resubmission should be served without re-running. */
struct JobOutcome
{
    std::string outcome; ///< statusCodeName of the final status
    std::string detail;  ///< status message ("" when ok)
    Cycles cycles = 0;
    StatSet stats; ///< architectural counters (Fabric::dumpStats)
    std::vector<std::deque<Word>> argOuts;
    /** Post-run DRAM readback per program DRAM mem (empty when the
     *  fabric was never built, e.g. compile errors). Index i holds
     *  the buffer for the i-th DRAM MemDecl, in MemId order. */
    std::vector<std::vector<Word>> dram;
    /** FNV-1a over outcome + argOuts + DRAM image (the compact
     *  bit-exactness witness the stress/replay tests compare). */
    uint64_t resultHash = 0;
};

/** Per-submission record (one line of the job log). */
struct JobResult
{
    uint64_t id = 0;
    std::string source;
    uint64_t seq = 0; ///< cache-access order (the replay order)
    uint64_t pirHash = 0;
    uint64_t archHash = 0;
    uint64_t inputsHash = 0;
    uint64_t optionsHash = 0;
    bool resultHit = false; ///< served from the result cache
    bool configHit = false; ///< compile skipped via the config cache
    uint32_t worker = 0;
    double waitUs = 0; ///< submit -> dequeue (not replayed)
    double execUs = 0; ///< dequeue -> done (not replayed)
    std::shared_ptr<const JobOutcome> outcome;
};

struct ServeOptions
{
    uint32_t workers = 4;
    size_t queueDepth = 64;
    size_t configCacheCapacity = 256;
    size_t resultCacheCapacity = 256;
    /** Serve memoized outcomes for bit-identical jobs (default on;
     *  the config cache is always on). */
    bool resultCache = true;
    /** Run the reference evaluator and compare bit-exactly on every
     *  executed job (kMismatch outcome on divergence). Expensive;
     *  off in production-shaped runs, on in paranoid ones. */
    bool validate = false;
    Cycles maxCycles = 500'000'000;
    SimOptions simOpts;
    /** Record cache access logs for deterministic replay. */
    bool logAccesses = true;
};

/** A config-cache entry: the typed compile status plus the frozen
 *  compile result (diagnostics on failure — negative entries keep the
 *  exact status a fresh compile would have returned, down to
 *  validation-error vs compile-error). `map` is never null. */
struct CompiledConfig
{
    Status status;
    std::shared_ptr<const compiler::MapResult> map;
};

using ConfigCache = SingleFlightCache<CompiledConfig>;
using ResultCache = SingleFlightCache<JobOutcome>;

// ---- content addressing ---------------------------------------------
/** fnv1a64(programToText(prog)) — identical to RunManifest::pirHash. */
uint64_t hashProgram(const pir::Program &prog);
/** fnv1a64(archParamsText(params)) — identical to
 *  RunManifest::archHash. */
uint64_t hashArch(const ArchParams &params);
/** FNV-1a over the staged host input buffers (MemId + words, in id
 *  order). */
uint64_t hashInputs(const std::map<pir::MemId, std::vector<Word>> &bufs);
/** FNV-1a over the execution options that shape a result: scheduler
 *  mode, sim mode, cycle budget, validate flag. */
uint64_t hashOptions(const ServeOptions &opts, Cycles jobMaxCycles);
/** The bit-exactness witness over a finished outcome. */
uint64_t hashOutcome(const JobOutcome &out);

class Server
{
  public:
    explicit Server(ServeOptions opts);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Spawn the worker pool. */
    void start();

    /** Enqueue a job (blocks under backpressure). Returns the job id,
     *  or 0 if the server is already draining. */
    uint64_t submit(JobSpec spec);

    /** Close the queue, let queued jobs finish, join the workers.
     *  Idempotent; the destructor calls it. */
    void drain();

    /** All finished jobs, sorted by id. Call after drain() for the
     *  complete set (calling earlier snapshots what has finished). */
    std::vector<JobResult> results() const;

    CacheStats configCacheStats() const { return configCache_.stats(); }
    CacheStats resultCacheStats() const { return resultCache_.stats(); }
    size_t queueHighWater() const { return queue_.highWater(); }
    const ServeOptions &options() const { return opts_; }

    /** Counters + latency histograms into the unified metric model
     *  (serve.* namespace; see DESIGN.md §15). */
    void exportMetrics(MetricRegistry &reg) const;

    /**
     * Execute one job synchronously on the calling thread against this
     * server's caches — the serial-replay entry point (and what the
     * workers run). `worker` tags the result only.
     */
    JobResult executeJob(JobSpec job, uint32_t worker = 0);

  private:
    struct Queued
    {
        JobSpec spec;
        uint64_t enqueuedUs = 0;
    };

    void workerLoop(uint32_t idx);
    std::shared_ptr<const JobOutcome>
    computeOutcome(Runner &runner, const JobSpec &job, JobResult &rec);

    ServeOptions opts_;
    BoundedQueue<Queued> queue_;
    ConfigCache configCache_;
    ResultCache resultCache_;
    std::vector<std::thread> workers_;
    std::atomic<uint64_t> nextId_{1};
    std::atomic<bool> draining_{false};
    bool started_ = false;

    mutable std::mutex resultsMu_;
    std::vector<JobResult> results_;
};

} // namespace plast::serve

#endif // PLAST_SERVE_SERVER_HPP
