/**
 * @file
 * The multi-tenant compile-and-serve daemon core (DESIGN.md §15): a
 * bounded job queue in front of a fixed worker pool, where each worker
 * owns an independent Runner/Fabric per job and two content-addressed
 * single-flight caches collapse duplicate work:
 *
 *   config cache   (pirHash, archHash)          — identical kernels
 *                  never pay place-and-route twice; a hit adopts the
 *                  frozen compiler::MapResult another worker produced.
 *   result cache   (pirHash, archHash, inputsHash, optionsHash) — the
 *                  simulator is deterministic end to end, so a
 *                  bit-identical job (same program, architecture,
 *                  staged inputs and execution options) is served its
 *                  memoized outcome without simulating again. This is
 *                  what makes hot duplicate traffic cheap.
 *
 * Hashes are the manifest layer's platform-stable FNV-1a over
 * canonical text serializations (runtime/manifest.hpp), so a run
 * manifest's (pir_hash, arch_hash) is literally the config cache
 * address.
 *
 * Every job produces a JobResult — outcome, cycles, content hashes,
 * hit flags and a result hash over argOuts + DRAM image — and the
 * ordered log of those records replays deterministically
 * (serve/joblog.hpp). Failures never kill the daemon: compile errors,
 * deadlocks, watchdog trips and validation mismatches come back as
 * typed outcomes (the PR 4/5 never-fail stack is the foundation).
 *
 * Robustness layer (DESIGN.md §16): every job is bounded, cancellable
 * and recoverable. Submission passes admission control — a per-tenant
 * circuit breaker over repeated compile failures, cost-aware load
 * shedding once the queue is deep, and a bounded wait on the full
 * queue — and rejected work still produces a typed record (kShed /
 * kCircuitOpen) instead of silently vanishing. Admitted jobs carry a
 * CancelToken armed with their wall-clock deadline; the fabric polls
 * it mid-simulation, so a stuck or slow job returns kCancelled /
 * kDeadlineExceeded within its budget and the worker moves on.
 * Deadline-typed outcomes are never published to the result cache
 * (they depend on wall clock, not content); an abandoned single-flight
 * build is handed off to a waiting follower. Transient failures —
 * watchdog/livelock trips and uncorrectable upsets from injected
 * faults — retry with capped exponential backoff; `resilient` mode
 * routes jobs through the PR 4 checkpoint-rollback orchestrator
 * instead.
 */

#ifndef PLAST_SERVE_SERVER_HPP
#define PLAST_SERVE_SERVER_HPP

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/metrics.hpp"
#include "base/status.hpp"
#include "compiler/mapper.hpp"
#include "pir/ir.hpp"
#include "serve/cache.hpp"
#include "serve/queue.hpp"
#include "serve/store.hpp"
#include "sim/fabric.hpp"

namespace plast
{
class Runner;
}

namespace plast::serve
{

/** One unit of work: a PIR program, the architecture to compile it
 *  for, and how to stage its inputs. */
struct JobSpec
{
    uint64_t id = 0;    ///< assigned by Server::submit
    std::string source; ///< replayable origin ("app:GEMM", "fuzz:7", ...)
    pir::Program prog;
    ArchParams params = ArchParams::plasticineFinal();
    /** Stage inputs into the runner's DRAM buffers; null = the
     *  fill-by-name convention (fuzz::fillInputs), which is what wire
     *  jobs parsed from .pir files use. Must be deterministic — the
     *  staged image is part of the result-cache content address. */
    std::function<void(Runner &)> load;
    /** Per-job cycle budget (0 = the server default). Part of the
     *  result-cache options hash. */
    Cycles maxCycles = 0;

    // ---- robustness knobs (DESIGN.md §16) ----------------------------
    /** Circuit-breaker key; empty means "default". */
    std::string tenant;
    /** Wall-clock budget in ms from submission (0 = the server
     *  default). NOT part of the options hash: a deadline shapes when
     *  a job is abandoned, never what it computes. */
    uint64_t deadlineMs = 0;
    /** Fault-injection campaign: a non-zero seed arms a seeded random
     *  fault plan over the compiled fabric for this job. Part of the
     *  options hash — a faulted execution is a different execution. */
    uint64_t faultSeed = 0;
    double faultRate = 200.0; ///< events per million cycles
    Cycles faultHorizon = 100'000;
    bool faultHard = false; ///< include stuck-unit (hard) faults
};

/** The memoized, shareable part of a finished job: everything a
 *  bit-identical resubmission should be served without re-running. */
struct JobOutcome
{
    std::string outcome; ///< statusCodeName of the final status
    std::string detail;  ///< status message ("" when ok)
    Cycles cycles = 0;
    StatSet stats; ///< architectural counters (Fabric::dumpStats)
    std::vector<std::deque<Word>> argOuts;
    /** Post-run DRAM readback per program DRAM mem (empty when the
     *  fabric was never built, e.g. compile errors). Index i holds
     *  the buffer for the i-th DRAM MemDecl, in MemId order. */
    std::vector<std::vector<Word>> dram;
    /** FNV-1a over outcome + argOuts + DRAM image (the compact
     *  bit-exactness witness the stress/replay tests compare). */
    uint64_t resultHash = 0;
};

/** Per-submission record (one line of the job log). */
struct JobResult
{
    uint64_t id = 0;
    std::string source;
    uint64_t seq = 0; ///< cache-access order (the replay order)
    uint64_t pirHash = 0;
    uint64_t archHash = 0;
    uint64_t inputsHash = 0;
    uint64_t optionsHash = 0;
    bool resultHit = false; ///< served from the result cache
    bool configHit = false; ///< compile skipped via the config cache
    uint32_t worker = 0;
    double waitUs = 0; ///< submit -> dequeue (not replayed)
    double execUs = 0; ///< dequeue -> done (not replayed)
    /** False when the job never ran: rejected at admission (shed,
     *  circuit-open) or its budget expired while still queued. Such
     *  records never touched the caches and are excluded from replay
     *  determinism checks (their seq lives in a disjoint band). */
    bool executed = true;
    /** Same-job re-runs after transient failures (backoff retries, or
     *  rollback+restart+remap recoveries in resilient mode). */
    uint32_t retries = 0;
    std::string tenant;
    std::shared_ptr<const JobOutcome> outcome;
};

struct ServeOptions
{
    uint32_t workers = 4;
    size_t queueDepth = 64;
    size_t configCacheCapacity = 256;
    size_t resultCacheCapacity = 256;
    /** Serve memoized outcomes for bit-identical jobs (default on;
     *  the config cache is always on). */
    bool resultCache = true;
    /** Run the reference evaluator and compare bit-exactly on every
     *  executed job (kMismatch outcome on divergence). Expensive;
     *  off in production-shaped runs, on in paranoid ones. */
    bool validate = false;
    Cycles maxCycles = 500'000'000;
    SimOptions simOpts;
    /** Record cache access logs for deterministic replay. */
    bool logAccesses = true;

    // ---- robustness (DESIGN.md §16) ----------------------------------
    /** Deadline applied to jobs that do not set their own (0 = none). */
    uint64_t defaultDeadlineMs = 0;
    /** Bounded admission wait on a full queue before the job is shed
     *  with a typed rejection instead of blocking the submitter. */
    uint64_t submitWaitUs = 1'000'000;
    /** Queue depth at which cost-aware shedding arms (0 = never). */
    size_t shedDepth = 0;
    /** Estimated-cost threshold (EWMA of past exec times for the same
     *  (pir, arch) key) above which a job is shed once shedDepth is
     *  reached; 0 sheds on depth alone. */
    uint64_t shedCostUs = 0;
    /** Transient-failure re-runs per job (watchdog/livelock trips,
     *  uncorrectable upsets; one-shot fault events make the re-run
     *  clean). */
    uint32_t maxRetries = 0;
    uint64_t retryBackoffUs = 2'000; ///< base backoff (exponential)
    uint64_t retryBackoffCapUs = 50'000;
    /** Consecutive compile failures that open a tenant's circuit
     *  breaker (0 = breaker off). */
    uint32_t breakerThreshold = 0;
    /** Every Nth submission from an open-breaker tenant is admitted as
     *  a probe; a healthy compile closes the breaker. */
    uint32_t breakerProbeEvery = 8;
    /** Route executed jobs through the checkpoint-rollback recovery
     *  orchestrator (resilience/recovery.hpp) instead of plain runs. */
    bool resilient = false;

    // ---- persistent config store (DESIGN.md §17) ---------------------
    /** Directory for the crash-safe compiled-config store; empty
     *  disables persistence. The config-cache miss path probes it
     *  before compiling, and the single-flight builder persists fresh
     *  compiles write-behind — a warm-restarted daemon serves
     *  persisted keys with zero recompiles. An unusable directory
     *  degrades to in-memory-only serving (never a failed start). */
    std::string storeDir;
    /** Store size cap in bytes (0 = unbounded); oldest records are
     *  evicted past it. */
    uint64_t storeMaxBytes = 0;
    /** fsync records and the directory on publish (tests may disable
     *  to spare IO; the daemon keeps it on). */
    bool storeSync = true;
};

/** A config-cache entry: the typed compile status plus the frozen
 *  compile result (diagnostics on failure — negative entries keep the
 *  exact status a fresh compile would have returned, down to
 *  validation-error vs compile-error). `map` is never null. */
struct CompiledConfig
{
    Status status;
    std::shared_ptr<const compiler::MapResult> map;
};

using ConfigCache = SingleFlightCache<CompiledConfig>;
using ResultCache = SingleFlightCache<JobOutcome>;

// ---- content addressing ---------------------------------------------
/** fnv1a64(programToText(prog)) — identical to RunManifest::pirHash. */
uint64_t hashProgram(const pir::Program &prog);
/** fnv1a64(archParamsText(params)) — identical to
 *  RunManifest::archHash. */
uint64_t hashArch(const ArchParams &params);
/** FNV-1a over the staged host input buffers (MemId + words, in id
 *  order). */
uint64_t hashInputs(const std::map<pir::MemId, std::vector<Word>> &bufs);
/** FNV-1a over the execution options that shape a result: scheduler
 *  mode, sim mode, cycle budget, validate flag. */
uint64_t hashOptions(const ServeOptions &opts, Cycles jobMaxCycles);
/** Job-aware overload: additionally folds the resilient flag and the
 *  job's fault-plan parameters (a faulted or recovery-orchestrated
 *  execution is a different execution). Bit-identical to the base
 *  overload for plain jobs, so v1 logs stay addressable. Deadlines
 *  are deliberately NOT hashed — see JobSpec::deadlineMs. */
uint64_t hashOptions(const ServeOptions &opts, const JobSpec &job);
/** The bit-exactness witness over a finished outcome. */
uint64_t hashOutcome(const JobOutcome &out);

class Server
{
  public:
    explicit Server(ServeOptions opts);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Spawn the worker pool. */
    void start();

    /**
     * Enqueue a job through admission control. Returns the job id, or
     * 0 if the server is already draining. A rejected job (circuit
     * breaker, load shed, admission timeout) still gets a non-zero id
     * and a typed JobResult record — callers distinguish rejection
     * from execution via JobResult::executed / outcome.
     */
    uint64_t submit(JobSpec spec);

    /** Request cooperative cancellation of a queued or running job.
     *  The job finishes with a typed kCancelled outcome within one
     *  cancel-poll window. False when the id is unknown or the job
     *  already finished. */
    bool cancelJob(uint64_t id);

    /** Close the queue, let queued jobs finish, join the workers.
     *  Idempotent; the destructor calls it. */
    void drain();

    /** All finished jobs, sorted by id. Call after drain() for the
     *  complete set (calling earlier snapshots what has finished). */
    std::vector<JobResult> results() const;

    CacheStats configCacheStats() const { return configCache_.stats(); }
    CacheStats resultCacheStats() const { return resultCache_.stats(); }
    size_t queueHighWater() const { return queue_.highWater(); }
    const ServeOptions &options() const { return opts_; }

    /** The persistent config store (null when storeDir is empty).
     *  Mode/degradation is the store's own concern — a disabled store
     *  still answers stats(). */
    ConfigStore *store() { return store_.get(); }
    const ConfigStore *store() const { return store_.get(); }
    /** Why the store degraded at open (ok when fully read-write or
     *  when no store was configured). */
    const Status &storeStatus() const { return storeStatus_; }

    /**
     * Install a hook invoked for every finished JobResult at the
     * finishJob choke point (serialized; called with internal
     * bookkeeping already updated). Powers --joblog-sync durable
     * append. Must be set before start().
     */
    void setResultHook(std::function<void(const JobResult &)> hook)
    {
        resultHook_ = std::move(hook);
    }

    /** Robustness counters, updated at the same instant each record is
     *  written — they match the job log exactly by construction. */
    struct RobustnessCounters
    {
        uint64_t shed = 0;           ///< records with outcome "shed"
        uint64_t circuitOpen = 0;    ///< outcome "circuit-open"
        uint64_t cancelled = 0;      ///< outcome "cancelled"
        uint64_t deadlineMisses = 0; ///< outcome "deadline-exceeded"
        uint64_t retries = 0;        ///< sum of JobResult::retries
    };
    RobustnessCounters robustness() const;

    /** Counters + latency histograms into the unified metric model
     *  (serve.* namespace; see DESIGN.md §15). */
    void exportMetrics(MetricRegistry &reg) const;

    /**
     * Execute one job synchronously on the calling thread against this
     * server's caches — the serial-replay entry point (and what the
     * workers run). `worker` tags the result only; `cancel`, when
     * non-null, is polled by the simulation and the cache wait path.
     */
    JobResult executeJob(JobSpec job, uint32_t worker = 0,
                         const CancelToken *cancel = nullptr);

  private:
    struct Queued
    {
        JobSpec spec;
        uint64_t enqueuedUs = 0;
        std::shared_ptr<CancelToken> token;
    };

    void workerLoop(uint32_t idx);
    std::shared_ptr<const JobOutcome>
    computeOutcome(Runner &runner, const JobSpec &job, JobResult &rec,
                   const CancelToken *cancel);
    std::shared_ptr<const JobOutcome>
    computeResilient(Runner &runner, const JobSpec &job, JobResult &rec,
                     const CancelToken *cancel);
    /** Record a job that never ran (admission rejection / queued
     *  expiry) with a typed outcome in the aux seq band. */
    JobResult rejectionRecord(const JobSpec &spec, StatusCode code,
                              const std::string &why);
    /** Single choke point every record passes through: unregisters the
     *  cancel token, updates the robustness counters, feeds the cost
     *  model and the circuit breaker, then appends to results_. */
    void finishJob(JobResult rec);
    bool backoffBeforeRetry(uint32_t attempt, uint64_t jobId,
                            const CancelToken *cancel) const;
    double estimateCostUs(uint64_t pirHash, uint64_t archHash) const;
    void learnCost(uint64_t pirHash, uint64_t archHash, double execUs);
    bool breakerRejects(const std::string &tenant);
    void breakerObserve(const std::string &tenant, bool compileFailed);

    ServeOptions opts_;
    BoundedQueue<Queued> queue_;
    ConfigCache configCache_;
    ResultCache resultCache_;
    std::unique_ptr<ConfigStore> store_;
    Status storeStatus_;
    std::function<void(const JobResult &)> resultHook_;
    std::vector<std::thread> workers_;
    std::atomic<uint64_t> nextId_{1};
    std::atomic<bool> draining_{false};
    bool started_ = false;

    /** Live tokens (queued + running) addressable by job id. */
    mutable std::mutex tokensMu_;
    std::map<uint64_t, std::shared_ptr<CancelToken>> tokens_;

    /** Per-tenant breaker over consecutive compile failures. */
    struct Breaker
    {
        uint32_t fails = 0;
        bool open = false;
        uint64_t rejectedSinceProbe = 0;
    };
    mutable std::mutex breakerMu_;
    std::map<std::string, Breaker> breakers_;

    /** (pirHash, archHash) -> EWMA of exec time, the shed-policy cost
     *  estimator (unknown keys are admitted). */
    mutable std::mutex costMu_;
    std::map<std::pair<uint64_t, uint64_t>, double> costUs_;

    /** Seq band for records that never touched the caches — disjoint
     *  from (and sorting after) every real cache seq. */
    static constexpr uint64_t kAuxSeqBase = 1ull << 62;
    std::atomic<uint64_t> auxSeq_{0};

    std::atomic<uint64_t> shed_{0};
    std::atomic<uint64_t> circuitOpen_{0};
    std::atomic<uint64_t> cancelled_{0};
    std::atomic<uint64_t> deadlineMisses_{0};
    std::atomic<uint64_t> retries_{0};

    mutable std::mutex resultsMu_;
    std::vector<JobResult> results_;
};

} // namespace plast::serve

#endif // PLAST_SERVE_SERVER_HPP
