/**
 * @file
 * The compile-and-serve daemon CLI: feed .pir programs (the fuzzer's
 * seed-file wire format: arch header + inject line + program text) or
 * seeded synthetic traffic through the multi-tenant server and report
 * throughput, cache effectiveness and per-job outcomes.
 *
 *   serve_app --traffic --jobs=96 --uniques=12 --workers=8
 *   serve_app --workers=4 --repeat=8 tests/corpus/seed.pir ...
 *   serve_app --traffic --log=jobs.log
 *   serve_app --traffic --replay=jobs.log     # prove determinism
 *   serve_app --traffic --metrics=serve.json  # unified metric dump
 *
 * Fault campaign (DESIGN.md §16): --faults=K injects a seeded fault
 * plan into every Kth job, --deadline-sweep subjects submissions to a
 * cycle of wall-clock budgets, --resilient routes execution through
 * the checkpoint-rollback orchestrator, and --tolerate-failures flips
 * the exit criterion from "every job ok" to "every job finished with
 * a typed outcome and the robustness counters match the job log" —
 * the overload-safety proof, not the happy-path proof.
 *
 * Exit status: 0 = every job ok and (for --replay) the replay
 * matched; 1 = some job failed or the replay diverged; 2 = usage or
 * IO errors. Job failures are typed outcomes, never daemon crashes.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "base/logging.hpp"
#include "base/metrics.hpp"
#include "base/profile.hpp"
#include "fuzz/harness.hpp"
#include "serve/joblog.hpp"
#include "serve/server.hpp"
#include "serve/store.hpp"
#include "serve/traffic.hpp"

using namespace plast;

namespace
{

void
usage()
{
    std::fprintf(
        stderr,
        "usage: serve_app [options] [file.pir ...]\n"
        "  --workers=N        worker pool size (default 4)\n"
        "  --queue=N          bounded queue depth (default 64)\n"
        "  --config-cache=N   config cache capacity (default 256)\n"
        "  --result-cache=N   result cache capacity (default 256)\n"
        "  --no-result-cache  always re-execute duplicate jobs\n"
        "  --validate         run the reference evaluator on every\n"
        "                     executed job (mismatch = typed outcome)\n"
        "  --max-cycles=N     default per-job cycle budget\n"
        "  --repeat=N         submit each .pir file N times (default 1)\n"
        "  --traffic          generate seeded synthetic traffic from\n"
        "                     the app suite instead of reading files\n"
        "  --jobs=N           traffic: total submissions (default 64)\n"
        "  --uniques=N        traffic: distinct identities (default 8)\n"
        "  --seed=N           traffic: duplication-pattern seed\n"
        "  --log=FILE         write the job log (replayable)\n"
        "  --joblog-sync      stream the job log durably: append and\n"
        "                     flush each record as it finishes, so a\n"
        "                     killed daemon leaves a replayable prefix\n"
        "  --replay=FILE      replay a job log serially against the\n"
        "                     same traffic/files; exit 1 on divergence\n"
        "  --metrics=FILE     write serve.* metrics as JSON\n"
        "  --store-dir=DIR    persist compiled configs to DIR and\n"
        "                     serve warm restarts from it (DESIGN.md\n"
        "                     §17); unusable dirs degrade to\n"
        "                     in-memory-only serving, never crash\n"
        "  --store-max-mb=N   evict oldest store records past N MiB\n"
        "                     (default unbounded)\n"
        "  --store-no-sync    skip fsync on store publish (tests)\n"
        "  --quiet            suppress the per-job report\n"
        "robustness (DESIGN.md §16):\n"
        "  --deadline-ms=N    default wall-clock budget per job\n"
        "  --max-retries=N    transient-failure re-runs per job\n"
        "  --shed-depth=N     queue depth that arms load shedding\n"
        "  --shed-cost-us=N   estimated-cost threshold for shedding\n"
        "  --submit-wait-us=N bounded admission wait on a full queue\n"
        "  --breaker=N        consecutive compile failures that open\n"
        "                     a tenant's circuit breaker\n"
        "  --resilient        run jobs under checkpoint-rollback\n"
        "                     recovery (resilience/recovery.hpp)\n"
        "  --faults=K         traffic: inject a seeded fault plan\n"
        "                     into every Kth job\n"
        "  --fault-rate=R     traffic: fault events per 1M cycles\n"
        "  --fault-hard       traffic: include stuck-unit faults\n"
        "  --deadline-sweep=a,b,c  traffic: per-job deadlines (ms),\n"
        "                     assigned cyclically (0 = none)\n"
        "  --tenants=N        traffic: spread jobs over N tenants\n"
        "  --tolerate-failures  exit 0 when every job is typed and\n"
        "                     counters match the log (failures ok)\n");
}

bool
parseU64(const char *s, uint64_t &out)
{
    char *end = nullptr;
    out = std::strtoull(s, &end, 0);
    return end && *end == '\0' && end != s;
}

bool
loadPirFile(const std::string &path, std::vector<serve::JobSpec> &out)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "serve_app: cannot open '%s'\n",
                     path.c_str());
        return false;
    }
    fuzz::FuzzCase c;
    std::string err;
    if (!fuzz::readSeedFile(is, c, &err)) {
        std::fprintf(stderr, "serve_app: %s: %s\n", path.c_str(),
                     err.c_str());
        return false;
    }
    serve::JobSpec spec;
    spec.source = "file:" + path;
    spec.prog = std::move(c.prog);
    spec.params = c.params;
    // load stays null: wire jobs stage inputs by the fill-by-name
    // convention, same as fuzz replay. Fault injection modes are a
    // fuzzer concern and are ignored here.
    out.push_back(std::move(spec));
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    serve::ServeOptions sopts;
    serve::TrafficOptions topts;
    bool traffic = false;
    bool quiet = false;
    bool tolerateFailures = false;
    bool joblogSync = false;
    uint64_t repeat = 1;
    std::string logPath, replayPath, metricsPath;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto val = [&](const char *prefix) -> const char * {
            size_t n = std::strlen(prefix);
            return a.compare(0, n, prefix) == 0 ? a.c_str() + n
                                                : nullptr;
        };
        uint64_t n = 0;
        if (const char *v = val("--workers=")) {
            if (!parseU64(v, n) || n == 0)
                return usage(), 2;
            sopts.workers = static_cast<uint32_t>(n);
        } else if (const char *v2 = val("--queue=")) {
            if (!parseU64(v2, n) || n == 0)
                return usage(), 2;
            sopts.queueDepth = n;
        } else if (const char *v3 = val("--config-cache=")) {
            if (!parseU64(v3, n))
                return usage(), 2;
            sopts.configCacheCapacity = n;
        } else if (const char *v4 = val("--result-cache=")) {
            if (!parseU64(v4, n))
                return usage(), 2;
            sopts.resultCacheCapacity = n;
        } else if (a == "--no-result-cache") {
            sopts.resultCache = false;
        } else if (a == "--validate") {
            sopts.validate = true;
        } else if (const char *v5 = val("--max-cycles=")) {
            if (!parseU64(v5, n) || n == 0)
                return usage(), 2;
            sopts.maxCycles = n;
        } else if (const char *v6 = val("--repeat=")) {
            if (!parseU64(v6, repeat) || repeat == 0)
                return usage(), 2;
        } else if (a == "--traffic") {
            traffic = true;
        } else if (const char *v7 = val("--jobs=")) {
            if (!parseU64(v7, n) || n == 0)
                return usage(), 2;
            topts.jobs = n;
        } else if (const char *v8 = val("--uniques=")) {
            if (!parseU64(v8, n) || n == 0)
                return usage(), 2;
            topts.uniques = n;
        } else if (const char *v9 = val("--seed=")) {
            if (!parseU64(v9, topts.seed))
                return usage(), 2;
        } else if (const char *vd = val("--deadline-ms=")) {
            if (!parseU64(vd, n) || n == 0)
                return usage(), 2;
            sopts.defaultDeadlineMs = n;
        } else if (const char *vr = val("--max-retries=")) {
            if (!parseU64(vr, n))
                return usage(), 2;
            sopts.maxRetries = static_cast<uint32_t>(n);
        } else if (const char *vs = val("--shed-depth=")) {
            if (!parseU64(vs, n))
                return usage(), 2;
            sopts.shedDepth = n;
        } else if (const char *vc = val("--shed-cost-us=")) {
            if (!parseU64(vc, n))
                return usage(), 2;
            sopts.shedCostUs = n;
        } else if (const char *vw = val("--submit-wait-us=")) {
            if (!parseU64(vw, n))
                return usage(), 2;
            sopts.submitWaitUs = n;
        } else if (const char *vb = val("--breaker=")) {
            if (!parseU64(vb, n))
                return usage(), 2;
            sopts.breakerThreshold = static_cast<uint32_t>(n);
        } else if (a == "--resilient") {
            sopts.resilient = true;
        } else if (const char *vf = val("--faults=")) {
            if (!parseU64(vf, n) || n == 0)
                return usage(), 2;
            topts.faultEvery = n;
        } else if (const char *vfr = val("--fault-rate=")) {
            char *end = nullptr;
            topts.faultRate = std::strtod(vfr, &end);
            if (!end || *end != '\0' || topts.faultRate <= 0)
                return usage(), 2;
        } else if (a == "--fault-hard") {
            topts.includeHard = true;
        } else if (const char *vds = val("--deadline-sweep=")) {
            std::stringstream ss(vds);
            std::string item;
            while (std::getline(ss, item, ',')) {
                // 0 is a legal sweep element: that job runs with no
                // deadline (mixes budgeted and unbudgeted traffic).
                if (!parseU64(item.c_str(), n))
                    return usage(), 2;
                topts.deadlineSweepMs.push_back(n);
            }
            if (topts.deadlineSweepMs.empty())
                return usage(), 2;
        } else if (const char *vt = val("--tenants=")) {
            if (!parseU64(vt, n) || n == 0)
                return usage(), 2;
            topts.tenants = n;
        } else if (a == "--tolerate-failures") {
            tolerateFailures = true;
        } else if (const char *v10 = val("--log=")) {
            logPath = v10;
        } else if (a == "--joblog-sync") {
            joblogSync = true;
        } else if (const char *vsd = val("--store-dir=")) {
            sopts.storeDir = vsd;
        } else if (const char *vsm = val("--store-max-mb=")) {
            if (!parseU64(vsm, n) || n == 0)
                return usage(), 2;
            sopts.storeMaxBytes = n * (1ull << 20);
        } else if (a == "--store-no-sync") {
            sopts.storeSync = false;
        } else if (const char *v11 = val("--replay=")) {
            replayPath = v11;
        } else if (const char *v12 = val("--metrics=")) {
            metricsPath = v12;
        } else if (a == "--quiet") {
            quiet = true;
        } else if (a == "--help" || a == "-h") {
            return usage(), 0;
        } else if (!a.empty() && a[0] == '-') {
            std::fprintf(stderr, "serve_app: unknown option '%s'\n",
                         a.c_str());
            return usage(), 2;
        } else {
            files.push_back(a);
        }
    }
    if (!traffic && files.empty()) {
        std::fprintf(stderr,
                     "serve_app: need .pir files or --traffic\n");
        return usage(), 2;
    }

    // Assemble the job stream.
    std::vector<serve::JobSpec> specs;
    if (traffic) {
        specs = serve::makeTraffic(topts);
    } else {
        std::vector<serve::JobSpec> fileSpecs;
        for (const std::string &f : files) {
            if (!loadPirFile(f, fileSpecs))
                return 2;
        }
        for (uint64_t r = 0; r < repeat; ++r)
            for (const serve::JobSpec &s : fileSpecs)
                specs.push_back(s);
    }

    // Replay mode: check a previous run's log against this stream.
    if (!replayPath.empty()) {
        std::ifstream is(replayPath);
        if (!is) {
            std::fprintf(stderr, "serve_app: cannot open '%s'\n",
                         replayPath.c_str());
            return 2;
        }
        std::vector<serve::JobLogEntry> log;
        std::string err, warn;
        if (!serve::readJobLog(is, log, &err, &warn)) {
            std::fprintf(stderr, "serve_app: %s: %s\n",
                         replayPath.c_str(), err.c_str());
            return 2;
        }
        if (!warn.empty())
            std::fprintf(stderr, "serve_app: %s: %s\n",
                         replayPath.c_str(), warn.c_str());
        serve::ReplayReport rep =
            serve::replayLog(log, specs, sopts);
        std::printf("replayed %zu jobs: %zu result hits, %zu "
                    "skipped (rejected/aborted), %zu mismatches\n",
                    rep.jobs, rep.resultHits, rep.skipped,
                    rep.mismatches.size());
        for (const serve::ReplayMismatch &m : rep.mismatches)
            std::printf("  job %llu %s: logged %s, replay %s\n",
                        static_cast<unsigned long long>(m.id),
                        m.field.c_str(), m.logged.c_str(),
                        m.replayed.c_str());
        return rep.ok() ? 0 : 1;
    }

    // Serve.
    uint64_t t0 = HostProfiler::instance().nowUs();
    serve::Server server(sopts);

    // Durable job-log streaming: one line per finished job, flushed
    // before the result is visible, so a SIGKILLed daemon leaves a
    // replayable prefix (at worst one torn final line, which
    // readJobLog drops with a warning). The hook runs under the
    // server's results lock, so appends are serialized.
    std::ofstream syncLog;
    if (joblogSync && !logPath.empty()) {
        syncLog.open(logPath);
        if (!syncLog) {
            std::fprintf(stderr, "serve_app: cannot write '%s'\n",
                         logPath.c_str());
            return 2;
        }
        serve::writeJobLogHeader(syncLog);
        syncLog.flush();
        server.setResultHook([&syncLog](const serve::JobResult &r) {
            serve::writeJobLogLine(syncLog, r);
            syncLog.flush();
        });
    }

    server.start();
    for (serve::JobSpec &s : specs)
        server.submit(std::move(s));
    server.drain();
    uint64_t wallUs = HostProfiler::instance().nowUs() - t0;

    std::vector<serve::JobResult> results = server.results();
    size_t failed = 0;
    size_t untyped = 0;
    uint64_t logShed = 0, logCircuit = 0, logCancelled = 0,
             logDeadline = 0, logRetries = 0;
    for (const serve::JobResult &r : results) {
        const std::string oc = r.outcome ? r.outcome->outcome : "lost";
        if (oc == "lost")
            ++untyped;
        if (oc != "ok")
            ++failed;
        if (oc == "shed")
            ++logShed;
        else if (oc == "circuit-open")
            ++logCircuit;
        else if (oc == "cancelled")
            ++logCancelled;
        else if (oc == "deadline-exceeded")
            ++logDeadline;
        logRetries += r.retries;
        if (!quiet) {
            std::printf(
                "job %4llu %-28s %-16s cycles=%-10llu %s%s%s r%u w%u\n",
                static_cast<unsigned long long>(r.id),
                r.source.c_str(), oc.c_str(),
                static_cast<unsigned long long>(
                    r.outcome ? r.outcome->cycles : 0),
                r.resultHit ? "R" : "-", r.configHit ? "C" : "-",
                r.executed ? "E" : "-", r.retries, r.worker);
        }
    }

    serve::CacheStats cfg = server.configCacheStats();
    serve::CacheStats res = server.resultCacheStats();
    double secs = static_cast<double>(wallUs) / 1e6;
    std::printf("served %zu jobs in %.3f s (%.1f jobs/s) on %u "
                "workers, %zu failed\n",
                results.size(), secs,
                secs > 0 ? static_cast<double>(results.size()) / secs
                         : 0.0,
                sopts.workers, failed);
    std::printf("config cache: %llu hits / %llu misses, %llu "
                "evictions, %zu entries\n",
                static_cast<unsigned long long>(cfg.hits),
                static_cast<unsigned long long>(cfg.misses),
                static_cast<unsigned long long>(cfg.evictions),
                cfg.size);
    std::printf("result cache: %llu hits / %llu misses, %llu "
                "evictions, %zu entries\n",
                static_cast<unsigned long long>(res.hits),
                static_cast<unsigned long long>(res.misses),
                static_cast<unsigned long long>(res.evictions),
                res.size);
    if (const serve::ConfigStore *st = server.store()) {
        serve::StoreStats ss = st->stats();
        std::printf(
            "config store (%s): %llu hits / %llu misses, %llu "
            "writes (%llu failed), %llu quarantined, %llu evicted, "
            "%llu fallback, %llu records / %llu bytes\n",
            serve::storeModeName(ss.mode),
            static_cast<unsigned long long>(ss.hits),
            static_cast<unsigned long long>(ss.misses),
            static_cast<unsigned long long>(ss.writes),
            static_cast<unsigned long long>(ss.writeFailures),
            static_cast<unsigned long long>(ss.corruptQuarantined),
            static_cast<unsigned long long>(ss.evicted),
            static_cast<unsigned long long>(ss.fallback),
            static_cast<unsigned long long>(ss.records),
            static_cast<unsigned long long>(ss.bytes));
    }

    // Robustness accounting: the server's live counters must agree
    // with the job log record for record — any divergence means a job
    // was double-counted or lost.
    serve::Server::RobustnessCounters rc = server.robustness();
    bool countersMatch =
        rc.shed == logShed && rc.circuitOpen == logCircuit &&
        rc.cancelled == logCancelled && rc.deadlineMisses == logDeadline &&
        rc.retries == logRetries;
    bool allAccounted = results.size() == specs.size();
    std::printf("robustness: %llu shed, %llu circuit-open, %llu "
                "cancelled, %llu deadline-exceeded, %llu retries "
                "(counters %s log; %zu/%zu jobs accounted)\n",
                static_cast<unsigned long long>(rc.shed),
                static_cast<unsigned long long>(rc.circuitOpen),
                static_cast<unsigned long long>(rc.cancelled),
                static_cast<unsigned long long>(rc.deadlineMisses),
                static_cast<unsigned long long>(rc.retries),
                countersMatch ? "match" : "DIVERGE from",
                results.size(), specs.size());

    // A job log or metrics file the caller can't trust is worse than
    // none: every writer is checked after the final flush, and a
    // short write (disk full, quota, yanked volume) is a hard error,
    // not a silent success.
    if (joblogSync && !logPath.empty()) {
        syncLog.flush();
        if (!syncLog) {
            std::fprintf(stderr, "serve_app: short write on '%s'\n",
                         logPath.c_str());
            return 2;
        }
        syncLog.close();
    } else if (!logPath.empty()) {
        std::ofstream os(logPath);
        if (!os) {
            std::fprintf(stderr, "serve_app: cannot write '%s'\n",
                         logPath.c_str());
            return 2;
        }
        serve::writeJobLog(os, results);
        os.flush();
        if (!os) {
            std::fprintf(stderr, "serve_app: short write on '%s'\n",
                         logPath.c_str());
            return 2;
        }
    }
    if (!metricsPath.empty()) {
        MetricRegistry reg;
        server.exportMetrics(reg);
        reg.setCounter("serve.wall_us", wallUs);
        std::ofstream os(metricsPath);
        if (!os) {
            std::fprintf(stderr, "serve_app: cannot write '%s'\n",
                         metricsPath.c_str());
            return 2;
        }
        reg.writeJson(os);
        os.flush();
        if (!os) {
            std::fprintf(stderr, "serve_app: short write on '%s'\n",
                         metricsPath.c_str());
            return 2;
        }
    }
    if (tolerateFailures) {
        // Overload-safety criterion: every submission finished with a
        // typed terminal outcome (never hung, never lost) and the
        // counters reconcile with the log exactly.
        return untyped == 0 && allAccounted && countersMatch ? 0 : 1;
    }
    return failed == 0 ? 0 : 1;
}
