/**
 * @file
 * The serve daemon's job log: a line-oriented text record of every
 * finished job (content hashes, cache hit flags, outcome, result
 * hash) plus the machinery to replay a log serially and prove the
 * concurrent run was deterministic.
 *
 * Replay contract: result-cache behavior is *fully* determined by the
 * cache-access sequence numbers — seq is assigned under the cache
 * lock, hit/miss is decided at that same instant, and LRU/eviction
 * decisions happen at miss time — so re-executing the logged jobs
 * serially in seq order through a fresh server (same capacities, same
 * options) must reproduce every job's resultHit flag, outcome and
 * resultHash bit-for-bit, no matter how many workers produced the
 * log. Config-cache hits cross a second lock nested inside the
 * result-cache build, so their interleaving is only totally ordered
 * when the log came from a single worker; replayLog checks them
 * strictly only when `checkConfigHits` is set (pass true for
 * workers=1 logs).
 */

#ifndef PLAST_SERVE_JOBLOG_HPP
#define PLAST_SERVE_JOBLOG_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "serve/server.hpp"

namespace plast::serve
{

/** One parsed job-log line (field-for-field what writeJobLog emits). */
struct JobLogEntry
{
    uint64_t id = 0;
    uint64_t seq = 0;
    uint32_t worker = 0;
    uint64_t pirHash = 0;
    uint64_t archHash = 0;
    uint64_t inputsHash = 0;
    uint64_t optionsHash = 0;
    bool configHit = false;
    bool resultHit = false;
    uint64_t resultHash = 0;
    Cycles cycles = 0;
    bool executed = true; ///< v2 `exe=`; v1 logs default to true
    uint32_t retries = 0; ///< v2 `retries=`; v1 logs default to 0
    std::string outcome;
    std::string source; ///< replay join key (free-form, last on the line)
};

/** Header line + one "job ..." line per result, in seq order. */
void writeJobLog(std::ostream &os, const std::vector<JobResult> &results);

/** Streaming (durable-append) form: header once, then one line per
 *  finished job in finish order — readJobLog/replayLog sort by seq,
 *  so append order never matters. Flushing per line is the caller's
 *  policy (serve_app --joblog-sync), which is what leaves a
 *  replayable prefix behind a SIGKILLed daemon. */
void writeJobLogHeader(std::ostream &os);
void writeJobLogLine(std::ostream &os, const JobResult &r);

/**
 * Parse a job log; false + err on malformed input. A *torn final
 * line* — the unterminated tail a crashed writer left behind — is
 * dropped with a note in `warn` (when non-null) instead of failing
 * the parse: every fully-written record before it is still
 * replayable. A newline-terminated malformed line, final or not, is
 * still a hard error (that is corruption, not a crash artifact).
 */
bool readJobLog(std::istream &is, std::vector<JobLogEntry> &out,
                std::string *err = nullptr, std::string *warn = nullptr);

struct ReplayMismatch
{
    uint64_t id = 0;
    std::string field;
    std::string logged;
    std::string replayed;
};

struct ReplayReport
{
    size_t jobs = 0;
    size_t resultHits = 0;
    /** Entries accounted for but not re-executed: rejected at
     *  admission (exe=0) or with a wall-clock-shaped outcome (shed,
     *  circuit-open, cancelled, deadline-exceeded). A serial replay
     *  has no queue pressure and no deadline clock, so re-running
     *  them would diverge by construction — they are counted here
     *  instead of reported as mismatches. */
    size_t skipped = 0;
    std::vector<ReplayMismatch> mismatches;
    bool ok() const { return mismatches.empty(); }
};

/**
 * Re-execute a job log serially: a fresh single-threaded server with
 * `opts` capacities runs the logged jobs in seq order (specs joined
 * by JobSpec::source — regenerate the original traffic to get them)
 * and every job's resultHit / outcome / cycles / resultHash is
 * compared against the log. `checkConfigHits` additionally compares
 * configHit (only meaningful for single-worker logs, see above).
 */
ReplayReport replayLog(const std::vector<JobLogEntry> &log,
                       const std::vector<JobSpec> &specs,
                       const ServeOptions &opts,
                       bool checkConfigHits = false);

} // namespace plast::serve

#endif // PLAST_SERVE_JOBLOG_HPP
