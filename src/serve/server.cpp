#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "base/logging.hpp"
#include "base/profile.hpp"
#include "fuzz/diff.hpp"
#include "pir/serialize.hpp"
#include "resilience/recovery.hpp"
#include "runtime/bottleneck.hpp"
#include "runtime/manifest.hpp"
#include "runtime/runner.hpp"
#include "sim/execplan.hpp"

namespace plast::serve
{

namespace
{

/** Incremental FNV-1a 64 over mixed binary fields (same constants as
 *  the string fnv1a64 in runtime/manifest.cpp, so text hashes and
 *  binary hashes share one hash family). */
struct Fnv
{
    uint64_t h = 0xcbf29ce484222325ull;

    void
    byte(uint8_t b)
    {
        h ^= b;
        h *= 0x100000001b3ull;
    }
    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            byte(static_cast<uint8_t>(v >> (8 * i)));
    }
    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            byte(static_cast<uint8_t>(v >> (8 * i)));
    }
    void
    str(const std::string &s)
    {
        for (unsigned char c : s)
            byte(c);
        byte(0); // terminator: "ab"+"c" != "a"+"bc"
    }
};

} // namespace

uint64_t
hashProgram(const pir::Program &prog)
{
    return fnv1a64(pir::programToText(prog));
}

uint64_t
hashArch(const ArchParams &params)
{
    return fnv1a64(archParamsText(params));
}

uint64_t
hashInputs(const std::map<pir::MemId, std::vector<Word>> &bufs)
{
    Fnv f;
    for (const auto &[mid, data] : bufs) {
        f.u32(static_cast<uint32_t>(mid));
        f.u64(data.size());
        for (Word w : data)
            f.u32(w);
    }
    return f.h;
}

uint64_t
hashOptions(const ServeOptions &opts, Cycles jobMaxCycles)
{
    Fnv f;
    f.str(opts.simOpts.mode == SimOptions::Mode::kDense ? "dense"
                                                        : "activity");
    f.str(simModeName(opts.simOpts.simMode));
    f.u64(jobMaxCycles ? jobMaxCycles : opts.maxCycles);
    f.byte(opts.validate ? 1 : 0);
    return f.h;
}

uint64_t
hashOptions(const ServeOptions &opts, const JobSpec &job)
{
    uint64_t base = hashOptions(opts, job.maxCycles);
    if (!opts.resilient && job.faultSeed == 0)
        return base; // plain jobs stay bit-compatible with v1 logs
    Fnv f;
    f.u64(base);
    f.byte(opts.resilient ? 1 : 0);
    f.u64(job.faultSeed);
    f.u64(static_cast<uint64_t>(job.faultRate * 1000.0));
    f.u64(job.faultHorizon);
    f.byte(job.faultHard ? 1 : 0);
    return f.h;
}

uint64_t
hashOutcome(const JobOutcome &out)
{
    Fnv f;
    f.str(out.outcome);
    f.u64(out.cycles);
    f.u64(out.argOuts.size());
    for (const auto &stream : out.argOuts) {
        f.u64(stream.size());
        for (Word w : stream)
            f.u32(w);
    }
    f.u64(out.dram.size());
    for (const auto &buf : out.dram) {
        f.u64(buf.size());
        for (Word w : buf)
            f.u32(w);
    }
    return f.h;
}

Server::Server(ServeOptions opts)
    : opts_(opts), queue_(opts.queueDepth),
      configCache_(opts.configCacheCapacity),
      resultCache_(opts.resultCacheCapacity)
{
    configCache_.setLogging(opts_.logAccesses);
    resultCache_.setLogging(opts_.logAccesses);
    if (!opts_.storeDir.empty()) {
        StoreOptions so;
        so.dir = opts_.storeDir;
        so.maxBytes = opts_.storeMaxBytes;
        so.syncPublish = opts_.storeSync;
        store_ = ConfigStore::open(std::move(so), &storeStatus_);
        if (!storeStatus_.ok())
            warn("config store '%s' degraded to %s: %s",
                 opts_.storeDir.c_str(),
                 storeModeName(store_->mode()),
                 storeStatus_.toString().c_str());
    }
}

Server::~Server()
{
    drain();
}

void
Server::start()
{
    panic_if(started_, "Server::start called twice");
    started_ = true;
    workers_.reserve(opts_.workers);
    for (uint32_t w = 0; w < opts_.workers; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

uint64_t
Server::submit(JobSpec spec)
{
    if (draining_.load(std::memory_order_relaxed))
        return 0;
    spec.id = nextId_.fetch_add(1, std::memory_order_relaxed);
    if (spec.tenant.empty())
        spec.tenant = "default";
    if (spec.deadlineMs == 0)
        spec.deadlineMs = opts_.defaultDeadlineMs;
    uint64_t id = spec.id;

    // Circuit breaker: a tenant whose compiles keep failing is
    // fast-failed before it consumes queue space (every Nth
    // submission probes; a healthy compile closes the breaker).
    if (opts_.breakerThreshold && breakerRejects(spec.tenant)) {
        finishJob(rejectionRecord(
            spec, StatusCode::kCircuitOpen,
            strfmt("circuit open for tenant '%s' (%u consecutive "
                   "compile failures)",
                   spec.tenant.c_str(), opts_.breakerThreshold)));
        return id;
    }

    // Cost-aware shedding: once the queue is deep, jobs whose past
    // executions of the same (pir, arch) key were expensive are shed.
    if (opts_.shedDepth && queue_.size() >= opts_.shedDepth) {
        double est =
            estimateCostUs(hashProgram(spec.prog), hashArch(spec.params));
        if (opts_.shedCostUs == 0 ||
            est >= static_cast<double>(opts_.shedCostUs)) {
            finishJob(rejectionRecord(
                spec, StatusCode::kShed,
                strfmt("queue depth %zu >= shed depth %zu "
                       "(estimated cost %.0fus)",
                       queue_.size(), opts_.shedDepth, est)));
            return id;
        }
    }

    Queued q;
    q.enqueuedUs = HostProfiler::instance().nowUs();
    q.token = std::make_shared<CancelToken>();
    if (spec.deadlineMs)
        q.token->setDeadlineUs(q.enqueuedUs + spec.deadlineMs * 1000);
    {
        std::lock_guard<std::mutex> lk(tokensMu_);
        tokens_[id] = q.token;
    }
    // Keep what a rejection record needs: the spec moves into the
    // queue and is gone if the push times out.
    JobSpec rejected;
    rejected.id = spec.id;
    rejected.source = spec.source;
    rejected.tenant = spec.tenant;
    q.spec = std::move(spec);

    PushResult pr = queue_.tryPush(std::move(q), opts_.submitWaitUs);
    if (pr == PushResult::kOk)
        return id;
    {
        std::lock_guard<std::mutex> lk(tokensMu_);
        tokens_.erase(id);
    }
    if (pr == PushResult::kClosed)
        return 0; // draining: same contract as before
    finishJob(rejectionRecord(
        rejected, StatusCode::kShed,
        strfmt("admission wait (%lluus) exhausted on a full queue",
               static_cast<unsigned long long>(opts_.submitWaitUs))));
    return id;
}

bool
Server::cancelJob(uint64_t id)
{
    std::lock_guard<std::mutex> lk(tokensMu_);
    auto it = tokens_.find(id);
    if (it == tokens_.end())
        return false;
    it->second->requestCancel();
    return true;
}

void
Server::drain()
{
    draining_.store(true, std::memory_order_relaxed);
    queue_.close();
    for (std::thread &t : workers_) {
        if (t.joinable())
            t.join();
    }
    workers_.clear();
    // Every compile this run produced is durable before drain()
    // returns — a drained daemon's successor starts fully warm.
    if (store_)
        store_->flush();
}

std::vector<JobResult>
Server::results() const
{
    std::lock_guard<std::mutex> lk(resultsMu_);
    std::vector<JobResult> out = results_;
    std::sort(out.begin(), out.end(),
              [](const JobResult &a, const JobResult &b) {
                  return a.id < b.id;
              });
    return out;
}

void
Server::workerLoop(uint32_t idx)
{
    while (auto q = queue_.pop()) {
        uint64_t startUs = HostProfiler::instance().nowUs();
        const CancelToken *tok = q->token.get();
        JobResult rec;
        if (tok && (tok->cancelRequested() || tok->expired(startUs))) {
            // The budget died while the job sat in the queue: a typed
            // record without spending a fabric build on it.
            rec = rejectionRecord(q->spec,
                                  tok->cancelRequested()
                                      ? StatusCode::kCancelled
                                      : StatusCode::kDeadlineExceeded,
                                  "expired while queued");
            rec.worker = idx;
        } else {
            rec = executeJob(std::move(q->spec), idx, tok);
        }
        uint64_t doneUs = HostProfiler::instance().nowUs();
        rec.waitUs = static_cast<double>(startUs - q->enqueuedUs);
        rec.execUs = static_cast<double>(doneUs - startUs);
        finishJob(std::move(rec));
    }
}

JobResult
Server::rejectionRecord(const JobSpec &spec, StatusCode code,
                        const std::string &why)
{
    JobResult rec;
    rec.id = spec.id;
    rec.source = spec.source;
    rec.tenant = spec.tenant.empty() ? "default" : spec.tenant;
    rec.executed = false;
    rec.seq = kAuxSeqBase + auxSeq_.fetch_add(1, std::memory_order_relaxed);
    auto out = std::make_shared<JobOutcome>();
    out->outcome = statusCodeName(code);
    out->detail = why;
    out->resultHash = hashOutcome(*out);
    rec.outcome = std::move(out);
    return rec;
}

void
Server::finishJob(JobResult rec)
{
    {
        std::lock_guard<std::mutex> lk(tokensMu_);
        tokens_.erase(rec.id);
    }
    const std::string oc = rec.outcome ? rec.outcome->outcome : "lost";
    if (oc == statusCodeName(StatusCode::kShed))
        shed_.fetch_add(1, std::memory_order_relaxed);
    else if (oc == statusCodeName(StatusCode::kCircuitOpen))
        circuitOpen_.fetch_add(1, std::memory_order_relaxed);
    else if (oc == statusCodeName(StatusCode::kCancelled))
        cancelled_.fetch_add(1, std::memory_order_relaxed);
    else if (oc == statusCodeName(StatusCode::kDeadlineExceeded))
        deadlineMisses_.fetch_add(1, std::memory_order_relaxed);
    retries_.fetch_add(rec.retries, std::memory_order_relaxed);

    if (rec.executed) {
        // Only executed jobs teach the cost model and the breaker —
        // rejections observing themselves would feed back.
        if (rec.pirHash && rec.execUs > 0)
            learnCost(rec.pirHash, rec.archHash, rec.execUs);
        if (opts_.breakerThreshold)
            breakerObserve(
                rec.tenant,
                oc == statusCodeName(StatusCode::kCompileError) ||
                    oc == statusCodeName(StatusCode::kValidationError));
    }
    std::lock_guard<std::mutex> lk(resultsMu_);
    if (resultHook_)
        resultHook_(rec);
    results_.push_back(std::move(rec));
}

Server::RobustnessCounters
Server::robustness() const
{
    RobustnessCounters c;
    c.shed = shed_.load(std::memory_order_relaxed);
    c.circuitOpen = circuitOpen_.load(std::memory_order_relaxed);
    c.cancelled = cancelled_.load(std::memory_order_relaxed);
    c.deadlineMisses = deadlineMisses_.load(std::memory_order_relaxed);
    c.retries = retries_.load(std::memory_order_relaxed);
    return c;
}

double
Server::estimateCostUs(uint64_t pirHash, uint64_t archHash) const
{
    std::lock_guard<std::mutex> lk(costMu_);
    auto it = costUs_.find({pirHash, archHash});
    return it == costUs_.end() ? 0.0 : it->second;
}

void
Server::learnCost(uint64_t pirHash, uint64_t archHash, double execUs)
{
    std::lock_guard<std::mutex> lk(costMu_);
    double &c = costUs_[{pirHash, archHash}];
    c = c == 0.0 ? execUs : 0.7 * c + 0.3 * execUs;
}

bool
Server::breakerRejects(const std::string &tenant)
{
    std::lock_guard<std::mutex> lk(breakerMu_);
    Breaker &b = breakers_[tenant];
    if (!b.open)
        return false;
    if (opts_.breakerProbeEvery &&
        ++b.rejectedSinceProbe >= opts_.breakerProbeEvery) {
        b.rejectedSinceProbe = 0;
        return false; // admit as a probe
    }
    return true;
}

void
Server::breakerObserve(const std::string &tenant, bool compileFailed)
{
    std::lock_guard<std::mutex> lk(breakerMu_);
    Breaker &b = breakers_[tenant];
    if (!compileFailed) {
        b.fails = 0;
        b.open = false;
        return;
    }
    if (++b.fails >= opts_.breakerThreshold && !b.open) {
        b.open = true;
        b.rejectedSinceProbe = 0;
    }
}

bool
Server::backoffBeforeRetry(uint32_t attempt, uint64_t jobId,
                           const CancelToken *cancel) const
{
    uint64_t us = opts_.retryBackoffUs
                  << std::min<uint32_t>(attempt, 16);
    // Deterministic per-(job, attempt) jitter decorrelates retry herds
    // without a wall-clock RNG.
    Fnv f;
    f.u64(jobId);
    f.u64(attempt);
    us += f.h % (opts_.retryBackoffUs + 1);
    us = std::min(us, opts_.retryBackoffCapUs);
    uint64_t wakeUs = HostProfiler::instance().nowUs() + us;
    if (cancel && cancel->hasDeadline() && cancel->deadlineUs() <= wakeUs)
        return false; // the budget would die during the wait
    while (HostProfiler::instance().nowUs() < wakeUs) {
        if (cancel && cancel->cancelRequested())
            return false;
        std::this_thread::sleep_for(std::chrono::microseconds(
            std::min<uint64_t>(us, 500)));
    }
    return true;
}

namespace
{

/** Outcomes shaped by the caller's wall-clock budget, not by job
 *  content — never published to the result cache. */
bool
isAbortOutcome(const std::string &outcome)
{
    return outcome == statusCodeName(StatusCode::kCancelled) ||
           outcome == statusCodeName(StatusCode::kDeadlineExceeded);
}

/** Failures a clean re-run can fix: hangs blamed on transient token
 *  loss and uncorrectable upsets. One-shot fault events make the
 *  retry fault-free. A deadlock only retries when faults were armed —
 *  a program's genuine deadlock is deterministic and retrying it just
 *  burns the budget. */
bool
isRetryable(StatusCode code, bool faultsArmed)
{
    switch (code) {
      case StatusCode::kWatchdog:
      case StatusCode::kLivelock:
      case StatusCode::kUncorrectable:
        return true;
      case StatusCode::kDeadlock:
        return faultsArmed;
      default:
        return false;
    }
}

} // namespace

std::shared_ptr<const JobOutcome>
Server::computeOutcome(Runner &runner, const JobSpec &job, JobResult &rec,
                       const CancelToken *cancel)
{
    CacheKey ck;
    ck.pir = rec.pirHash;
    ck.arch = rec.archHash;
    bool fromStore = false;
    auto acq = configCache_.acquire(ck, [&]() -> ConfigCache::ValuePtr {
        // The single-flight miss path: probe the persistent store
        // before paying for place-and-route. Only this builder runs
        // per key, so the disk is read once and written once no
        // matter how many workers want the config.
        if (store_) {
            StoredConfig sc;
            Status st = store_->load(ck.pir, ck.arch, sc);
            if (st.ok()) {
                fromStore = true;
                auto cc = std::make_shared<CompiledConfig>();
                cc->map = toMapResult(std::move(sc));
                return cc;
            }
            // kNotFound / kCorrupt (quarantined) / kUnavailable all
            // degrade identically: compile fresh. A re-persist below
            // repairs a quarantined key.
        }
        auto cc = std::make_shared<CompiledConfig>();
        cc->status = runner.tryCompile();
        cc->map = runner.sharedMapResult();
        if (!cc->map) {
            // Failed compile: freeze a diagnostics copy so duplicate
            // bad programs are refused from cache, with the same
            // typed status a fresh compile would produce.
            cc->map = std::make_shared<const compiler::MapResult>(
                runner.mapResult());
        } else if (store_) {
            // Write-behind: the hot path never blocks on fsync.
            // Failed compiles are never persisted — negative entries
            // stay in-memory-only, so a store can never refuse a
            // program a fresh daemon would accept.
            store_->persist(ck.pir, ck.arch, cc->map);
        }
        return cc;
    });
    rec.configHit = acq.hit;
    if (!opts_.resultCache)
        rec.seq = acq.seq;

    auto out = std::make_shared<JobOutcome>();
    const CompiledConfig &cc = *acq.value;
    Status st;
    Runner::Result res;
    if (!cc.status.ok()) {
        st = cc.status;
    } else {
        // Adopt whenever this runner did not compile itself: a cache
        // hit (another worker compiled) or a store hit (a previous
        // daemon incarnation compiled).
        if (acq.hit || fromStore)
            runner.adoptCompiled(cc.map);
        if (opts_.resilient)
            return computeResilient(runner, job, rec, cancel);

        // A seeded fault plan over the compiled fabric; the injector
        // is shared across retries so fired one-shot events stay fired
        // and the re-run is clean.
        std::unique_ptr<resilience::FaultInjector> inj;
        if (job.faultSeed) {
            resilience::FaultPlan plan = resilience::FaultPlan::random(
                job.faultSeed, job.faultRate, job.faultHorizon,
                runner.mapResult().fabric, resilience::FaultMix::kAll,
                job.faultHard);
            inj = std::make_unique<resilience::FaultInjector>(
                std::move(plan), job.params.dram.ecc);
            runner.setFaultInjector(inj.get());
        }

        Cycles mc = job.maxCycles ? job.maxCycles : opts_.maxCycles;
        for (uint32_t attempt = 0;; ++attempt) {
            res = Runner::Result{};
            st = opts_.validate ? runner.tryRunValidated(res, mc)
                                : runner.tryRun(res, mc);
            if (st.ok() || attempt >= opts_.maxRetries ||
                !isRetryable(st.code(), job.faultSeed != 0))
                break;
            if (!backoffBeforeRetry(attempt, job.id, cancel))
                break;
            ++rec.retries;
        }
        // The injector dies with this scope; disarm the runner so no
        // dangling hook survives in the fabric.
        if (inj)
            runner.setFaultInjector(nullptr);
    }
    out->outcome = statusCodeName(st.code());
    out->detail = st.ok() ? "" : st.message();
    // A job that stopped without completing gets a partial post-mortem:
    // which units were mid-flight and what the blocking verdict is.
    if (runner.fabric() && !st.ok() &&
        (isAbortOutcome(out->outcome) ||
         st.code() == StatusCode::kWatchdog ||
         st.code() == StatusCode::kLivelock ||
         st.code() == StatusCode::kDeadlock)) {
        DeadlockReport dr = analyzeDeadlock(*runner.fabric());
        out->detail += "\npost-mortem: " + dr.verdict;
    }
    out->cycles = res.cycles;
    out->stats = res.stats;
    out->argOuts = res.argOuts;
    out->dram.resize(job.prog.mems.size());
    if (runner.fabric()) {
        for (size_t m = 0; m < job.prog.mems.size(); ++m) {
            if (job.prog.mems[m].kind == pir::MemKind::kDram)
                out->dram[m] =
                    runner.readDram(static_cast<pir::MemId>(m));
        }
    }
    out->resultHash = hashOutcome(*out);
    return out;
}

std::shared_ptr<const JobOutcome>
Server::computeResilient(Runner &runner, const JobSpec &job,
                         JobResult &rec, const CancelToken *cancel)
{
    // The recovery orchestrator owns its own runners; this worker's
    // runner only contributes the staged inputs and the compiled
    // fabric config (for the fault plan).
    resilience::ResilienceOptions ropts;
    ropts.maxCycles = job.maxCycles; // 0 derives from the golden run
    resilience::ResilientRunner rr(job.prog, job.params, ropts);
    rr.setInputs(runner.hostBuffers());
    if (cancel)
        rr.setCancelToken(cancel);

    resilience::FaultPlan plan;
    if (job.faultSeed) {
        plan = resilience::FaultPlan::random(
            job.faultSeed, job.faultRate, job.faultHorizon,
            runner.mapResult().fabric, resilience::FaultMix::kAll,
            job.faultHard);
    }
    resilience::ResilienceReport rep = rr.run(plan);
    rec.retries += rep.rollbacks + rep.restarts + rep.remaps;

    auto out = std::make_shared<JobOutcome>();
    switch (rep.cls) {
      case resilience::RunClass::kClean:
      case resilience::RunClass::kMasked:
      case resilience::RunClass::kCorrected:
        out->outcome = statusCodeName(StatusCode::kOk);
        break;
      case resilience::RunClass::kRecovered:
      case resilience::RunClass::kSilentCorruption:
        out->outcome = resilience::runClassName(rep.cls);
        break;
      case resilience::RunClass::kCompileError:
      case resilience::RunClass::kDetectedUnrecoverable:
        // Keep the typed status (cancelled, deadline-exceeded,
        // watchdog, ...) so abort outcomes stay recognizable.
        out->outcome = statusCodeName(rep.finalStatus.code());
        break;
    }
    out->detail = rep.finalStatus.ok()
                      ? rep.detail
                      : rep.finalStatus.message() + "\n" + rep.detail;
    const Runner::Result &res = rr.lastResult();
    out->cycles = res.cycles;
    out->stats = res.stats;
    out->argOuts = res.argOuts;
    out->dram.resize(job.prog.mems.size());
    for (const auto &[mid, data] : rr.lastDram())
        out->dram[mid] = data;
    out->resultHash = hashOutcome(*out);
    return out;
}

JobResult
Server::executeJob(JobSpec job, uint32_t worker, const CancelToken *cancel)
{
    JobResult rec;
    rec.id = job.id;
    rec.source = job.source;
    rec.tenant = job.tenant.empty() ? "default" : job.tenant;
    rec.worker = worker;

    // Stage: each job gets its own Runner (and thus its own Fabric) —
    // nothing mutable is shared between workers except the caches.
    Runner runner(job.prog, job.params, opts_.simOpts);
    if (job.load)
        job.load(runner);
    else
        fuzz::fillInputs(runner, job.prog);
    if (cancel)
        runner.setCancelToken(cancel);

    rec.pirHash = hashProgram(job.prog);
    rec.archHash = hashArch(job.params);
    rec.inputsHash = hashInputs(runner.hostBuffers());
    rec.optionsHash = hashOptions(opts_, job);

    if (opts_.resultCache) {
        CacheKey rk{rec.pirHash, rec.archHash, rec.inputsHash,
                    rec.optionsHash};
        // A cancelled/deadline outcome is this job's record but never
        // the key's cached value: the builder abandons (returns null)
        // and the single-flight slot passes to a waiting follower.
        std::shared_ptr<const JobOutcome> aborted;
        auto acq = resultCache_.acquire(
            rk,
            [&]() -> ResultCache::ValuePtr {
                auto out = computeOutcome(runner, job, rec, cancel);
                if (isAbortOutcome(out->outcome)) {
                    aborted = out;
                    return nullptr;
                }
                return out;
            },
            cancel);
        rec.seq = acq.seq;
        rec.resultHit = acq.hit && acq.value != nullptr;
        if (acq.value) {
            rec.outcome = acq.value;
        } else if (aborted) {
            rec.outcome = aborted;
        } else {
            // Gave up waiting on another job's in-flight build.
            auto out = std::make_shared<JobOutcome>();
            bool wasCancel = cancel && cancel->cancelRequested();
            out->outcome = statusCodeName(
                wasCancel ? StatusCode::kCancelled
                          : StatusCode::kDeadlineExceeded);
            out->detail = "budget expired while waiting on an "
                          "in-flight build of the same key";
            out->resultHash = hashOutcome(*out);
            rec.outcome = std::move(out);
        }
    } else {
        rec.outcome = computeOutcome(runner, job, rec, cancel);
    }
    return rec;
}

void
Server::exportMetrics(MetricRegistry &reg) const
{
    reg.setCounter("serve.workers", opts_.workers);
    reg.setCounter("serve.queue.capacity", queue_.capacity());
    reg.setCounter("serve.queue.high_water", queueHighWater());
    reg.gauge("serve.queue.occupancy",
              static_cast<int64_t>(queue_.size()));
    reg.setCounter("serve.jobs.submitted", queue_.pushed());

    RobustnessCounters rc = robustness();
    reg.setCounter("serve.jobs.shed", rc.shed);
    reg.setCounter("serve.jobs.circuit_open", rc.circuitOpen);
    reg.setCounter("serve.jobs.cancelled", rc.cancelled);
    reg.setCounter("serve.jobs.deadline_misses", rc.deadlineMisses);
    reg.setCounter("serve.retries.total", rc.retries);

    CacheStats cs = configCache_.stats();
    reg.setCounter("serve.cache.config.hits", cs.hits);
    reg.setCounter("serve.cache.config.misses", cs.misses);
    reg.setCounter("serve.cache.config.evictions", cs.evictions);
    reg.setCounter("serve.cache.config.size", cs.size);
    CacheStats rs = resultCache_.stats();
    reg.setCounter("serve.cache.result.hits", rs.hits);
    reg.setCounter("serve.cache.result.misses", rs.misses);
    reg.setCounter("serve.cache.result.evictions", rs.evictions);
    reg.setCounter("serve.cache.result.abandoned", rs.abandoned);
    reg.setCounter("serve.cache.result.size", rs.size);

    if (store_) {
        StoreStats ss = store_->stats();
        reg.setCounter("serve.store.hits", ss.hits);
        reg.setCounter("serve.store.misses", ss.misses);
        reg.setCounter("serve.store.writes", ss.writes);
        reg.setCounter("serve.store.write_failures", ss.writeFailures);
        reg.setCounter("serve.store.corrupt_quarantined",
                       ss.corruptQuarantined);
        reg.setCounter("serve.store.evicted", ss.evicted);
        reg.setCounter("serve.store.fallback", ss.fallback);
        reg.setCounter("serve.store.records", ss.records);
        reg.setCounter("serve.store.bytes", ss.bytes);
    }

    static const std::vector<uint64_t> kUsEdges = {
        100,     1'000,     10'000,     100'000,
        1'000'000, 10'000'000, 100'000'000};
    Histogram &wait = reg.histogram("serve.job.wait_us", kUsEdges);
    Histogram &exec = reg.histogram("serve.job.exec_us", kUsEdges);

    std::lock_guard<std::mutex> lk(resultsMu_);
    reg.setCounter("serve.jobs.completed", results_.size());
    uint64_t cycles = 0;
    uint64_t executed = 0;
    for (const JobResult &r : results_) {
        reg.count("serve.outcome." +
                  (r.outcome ? r.outcome->outcome : "lost"));
        wait.observe(static_cast<uint64_t>(r.waitUs));
        exec.observe(static_cast<uint64_t>(r.execUs));
        if (r.executed)
            ++executed;
        if (r.outcome)
            cycles += r.outcome->cycles;
    }
    reg.setCounter("serve.jobs.executed", executed);
    reg.setCounter("serve.cycles_total", cycles);
}

} // namespace plast::serve
