#include "serve/server.hpp"

#include <algorithm>

#include "base/logging.hpp"
#include "base/profile.hpp"
#include "fuzz/diff.hpp"
#include "pir/serialize.hpp"
#include "runtime/manifest.hpp"
#include "runtime/runner.hpp"
#include "sim/execplan.hpp"

namespace plast::serve
{

namespace
{

/** Incremental FNV-1a 64 over mixed binary fields (same constants as
 *  the string fnv1a64 in runtime/manifest.cpp, so text hashes and
 *  binary hashes share one hash family). */
struct Fnv
{
    uint64_t h = 0xcbf29ce484222325ull;

    void
    byte(uint8_t b)
    {
        h ^= b;
        h *= 0x100000001b3ull;
    }
    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            byte(static_cast<uint8_t>(v >> (8 * i)));
    }
    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            byte(static_cast<uint8_t>(v >> (8 * i)));
    }
    void
    str(const std::string &s)
    {
        for (unsigned char c : s)
            byte(c);
        byte(0); // terminator: "ab"+"c" != "a"+"bc"
    }
};

} // namespace

uint64_t
hashProgram(const pir::Program &prog)
{
    return fnv1a64(pir::programToText(prog));
}

uint64_t
hashArch(const ArchParams &params)
{
    return fnv1a64(archParamsText(params));
}

uint64_t
hashInputs(const std::map<pir::MemId, std::vector<Word>> &bufs)
{
    Fnv f;
    for (const auto &[mid, data] : bufs) {
        f.u32(static_cast<uint32_t>(mid));
        f.u64(data.size());
        for (Word w : data)
            f.u32(w);
    }
    return f.h;
}

uint64_t
hashOptions(const ServeOptions &opts, Cycles jobMaxCycles)
{
    Fnv f;
    f.str(opts.simOpts.mode == SimOptions::Mode::kDense ? "dense"
                                                        : "activity");
    f.str(simModeName(opts.simOpts.simMode));
    f.u64(jobMaxCycles ? jobMaxCycles : opts.maxCycles);
    f.byte(opts.validate ? 1 : 0);
    return f.h;
}

uint64_t
hashOutcome(const JobOutcome &out)
{
    Fnv f;
    f.str(out.outcome);
    f.u64(out.cycles);
    f.u64(out.argOuts.size());
    for (const auto &stream : out.argOuts) {
        f.u64(stream.size());
        for (Word w : stream)
            f.u32(w);
    }
    f.u64(out.dram.size());
    for (const auto &buf : out.dram) {
        f.u64(buf.size());
        for (Word w : buf)
            f.u32(w);
    }
    return f.h;
}

Server::Server(ServeOptions opts)
    : opts_(opts), queue_(opts.queueDepth),
      configCache_(opts.configCacheCapacity),
      resultCache_(opts.resultCacheCapacity)
{
    configCache_.setLogging(opts_.logAccesses);
    resultCache_.setLogging(opts_.logAccesses);
}

Server::~Server()
{
    drain();
}

void
Server::start()
{
    panic_if(started_, "Server::start called twice");
    started_ = true;
    workers_.reserve(opts_.workers);
    for (uint32_t w = 0; w < opts_.workers; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

uint64_t
Server::submit(JobSpec spec)
{
    if (draining_.load(std::memory_order_relaxed))
        return 0;
    spec.id = nextId_.fetch_add(1, std::memory_order_relaxed);
    Queued q;
    q.enqueuedUs = HostProfiler::instance().nowUs();
    uint64_t id = spec.id;
    q.spec = std::move(spec);
    if (!queue_.push(std::move(q)))
        return 0;
    return id;
}

void
Server::drain()
{
    draining_.store(true, std::memory_order_relaxed);
    queue_.close();
    for (std::thread &t : workers_) {
        if (t.joinable())
            t.join();
    }
    workers_.clear();
}

std::vector<JobResult>
Server::results() const
{
    std::lock_guard<std::mutex> lk(resultsMu_);
    std::vector<JobResult> out = results_;
    std::sort(out.begin(), out.end(),
              [](const JobResult &a, const JobResult &b) {
                  return a.id < b.id;
              });
    return out;
}

void
Server::workerLoop(uint32_t idx)
{
    while (auto q = queue_.pop()) {
        uint64_t startUs = HostProfiler::instance().nowUs();
        JobResult rec = executeJob(std::move(q->spec), idx);
        uint64_t doneUs = HostProfiler::instance().nowUs();
        rec.waitUs = static_cast<double>(startUs - q->enqueuedUs);
        rec.execUs = static_cast<double>(doneUs - startUs);
        std::lock_guard<std::mutex> lk(resultsMu_);
        results_.push_back(std::move(rec));
    }
}

std::shared_ptr<const JobOutcome>
Server::computeOutcome(Runner &runner, const JobSpec &job, JobResult &rec)
{
    CacheKey ck;
    ck.pir = rec.pirHash;
    ck.arch = rec.archHash;
    auto acq = configCache_.acquire(ck, [&]() -> ConfigCache::ValuePtr {
        auto cc = std::make_shared<CompiledConfig>();
        cc->status = runner.tryCompile();
        cc->map = runner.sharedMapResult();
        if (!cc->map) {
            // Failed compile: freeze a diagnostics copy so duplicate
            // bad programs are refused from cache, with the same
            // typed status a fresh compile would produce.
            cc->map = std::make_shared<const compiler::MapResult>(
                runner.mapResult());
        }
        return cc;
    });
    rec.configHit = acq.hit;
    if (!opts_.resultCache)
        rec.seq = acq.seq;

    auto out = std::make_shared<JobOutcome>();
    const CompiledConfig &cc = *acq.value;
    Status st;
    Runner::Result res;
    if (!cc.status.ok()) {
        st = cc.status;
    } else {
        if (acq.hit)
            runner.adoptCompiled(cc.map);
        Cycles mc = job.maxCycles ? job.maxCycles : opts_.maxCycles;
        st = opts_.validate ? runner.tryRunValidated(res, mc)
                            : runner.tryRun(res, mc);
    }
    out->outcome = statusCodeName(st.code());
    out->detail = st.ok() ? "" : st.message();
    out->cycles = res.cycles;
    out->stats = res.stats;
    out->argOuts = res.argOuts;
    out->dram.resize(job.prog.mems.size());
    if (runner.fabric()) {
        for (size_t m = 0; m < job.prog.mems.size(); ++m) {
            if (job.prog.mems[m].kind == pir::MemKind::kDram)
                out->dram[m] =
                    runner.readDram(static_cast<pir::MemId>(m));
        }
    }
    out->resultHash = hashOutcome(*out);
    return out;
}

JobResult
Server::executeJob(JobSpec job, uint32_t worker)
{
    JobResult rec;
    rec.id = job.id;
    rec.source = job.source;
    rec.worker = worker;

    // Stage: each job gets its own Runner (and thus its own Fabric) —
    // nothing mutable is shared between workers except the caches.
    Runner runner(job.prog, job.params, opts_.simOpts);
    if (job.load)
        job.load(runner);
    else
        fuzz::fillInputs(runner, job.prog);

    rec.pirHash = hashProgram(job.prog);
    rec.archHash = hashArch(job.params);
    rec.inputsHash = hashInputs(runner.hostBuffers());
    rec.optionsHash = hashOptions(opts_, job.maxCycles);

    if (opts_.resultCache) {
        CacheKey rk{rec.pirHash, rec.archHash, rec.inputsHash,
                    rec.optionsHash};
        auto acq = resultCache_.acquire(
            rk, [&] { return computeOutcome(runner, job, rec); });
        rec.seq = acq.seq;
        rec.resultHit = acq.hit;
        rec.outcome = acq.value;
    } else {
        rec.outcome = computeOutcome(runner, job, rec);
    }
    return rec;
}

void
Server::exportMetrics(MetricRegistry &reg) const
{
    reg.setCounter("serve.workers", opts_.workers);
    reg.setCounter("serve.queue.capacity", queue_.capacity());
    reg.setCounter("serve.queue.high_water", queueHighWater());
    reg.setCounter("serve.jobs.submitted", queue_.pushed());

    CacheStats cs = configCache_.stats();
    reg.setCounter("serve.cache.config.hits", cs.hits);
    reg.setCounter("serve.cache.config.misses", cs.misses);
    reg.setCounter("serve.cache.config.evictions", cs.evictions);
    reg.setCounter("serve.cache.config.size", cs.size);
    CacheStats rs = resultCache_.stats();
    reg.setCounter("serve.cache.result.hits", rs.hits);
    reg.setCounter("serve.cache.result.misses", rs.misses);
    reg.setCounter("serve.cache.result.evictions", rs.evictions);
    reg.setCounter("serve.cache.result.size", rs.size);

    static const std::vector<uint64_t> kUsEdges = {
        100,     1'000,     10'000,     100'000,
        1'000'000, 10'000'000, 100'000'000};
    Histogram &wait = reg.histogram("serve.job.wait_us", kUsEdges);
    Histogram &exec = reg.histogram("serve.job.exec_us", kUsEdges);

    std::lock_guard<std::mutex> lk(resultsMu_);
    reg.setCounter("serve.jobs.completed", results_.size());
    uint64_t cycles = 0;
    for (const JobResult &r : results_) {
        reg.count("serve.outcome." +
                  (r.outcome ? r.outcome->outcome : "lost"));
        wait.observe(static_cast<uint64_t>(r.waitUs));
        exec.observe(static_cast<uint64_t>(r.execUs));
        if (r.outcome)
            cycles += r.outcome->cycles;
    }
    reg.setCounter("serve.cycles_total", cycles);
}

} // namespace plast::serve
