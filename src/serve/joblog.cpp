#include "serve/joblog.hpp"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <tuple>

#include "base/logging.hpp"

namespace plast::serve
{

namespace
{

constexpr const char *kHeader = "plast.joblog.v2";
constexpr const char *kHeaderV1 = "plast.joblog.v1"; ///< still readable

/** Outcomes shaped by wall clock / queue pressure, not job content. */
bool
nonDeterministicOutcome(const std::string &outcome)
{
    return outcome == "shed" || outcome == "circuit-open" ||
           outcome == "cancelled" || outcome == "deadline-exceeded";
}

std::string
hex64(uint64_t v)
{
    char buf[17];
    snprintf(buf, sizeof buf, "%016llx",
             static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

void
writeJobLogHeader(std::ostream &os)
{
    os << kHeader << "\n";
}

void
writeJobLogLine(std::ostream &os, const JobResult &r)
{
    os << "job id=" << r.id << " seq=" << r.seq
       << " worker=" << r.worker << " pir=" << hex64(r.pirHash)
       << " arch=" << hex64(r.archHash)
       << " inputs=" << hex64(r.inputsHash)
       << " options=" << hex64(r.optionsHash)
       << " chit=" << (r.configHit ? 1 : 0)
       << " rhit=" << (r.resultHit ? 1 : 0) << " result="
       << hex64(r.outcome ? r.outcome->resultHash : 0)
       << " cycles=" << (r.outcome ? r.outcome->cycles : 0)
       << " exe=" << (r.executed ? 1 : 0)
       << " retries=" << r.retries << " outcome="
       << (r.outcome ? r.outcome->outcome : "lost")
       // src is free-form (app names contain spaces) so it is
       // last: everything after "src=" to end of line.
       << " src=" << r.source << "\n";
}

void
writeJobLog(std::ostream &os, const std::vector<JobResult> &results)
{
    std::vector<const JobResult *> ordered;
    ordered.reserve(results.size());
    for (const JobResult &r : results)
        ordered.push_back(&r);
    std::sort(ordered.begin(), ordered.end(),
              [](const JobResult *a, const JobResult *b) {
                  return a->seq < b->seq;
              });
    writeJobLogHeader(os);
    for (const JobResult *r : ordered)
        writeJobLogLine(os, *r);
}

namespace
{

/** Parse one "job ..." line; false + msg on malformed input. */
bool
parseJobLine(const std::string &line, size_t lineno, JobLogEntry &e,
             std::string &msg)
{
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag != "job") {
        msg = strfmt("line %zu: expected 'job', got '%s'", lineno,
                     tag.c_str());
        return false;
    }
    bool haveSrc = false;
    std::string tok;
    while (ls >> tok) {
        size_t eq = tok.find('=');
        if (eq == std::string::npos) {
            msg = strfmt("line %zu: bad token '%s'", lineno,
                         tok.c_str());
            return false;
        }
        std::string key = tok.substr(0, eq);
        std::string val = tok.substr(eq + 1);
        if (key == "src") {
            // Free-form remainder of the line.
            std::string rest;
            std::getline(ls, rest);
            e.source = val + rest;
            haveSrc = true;
            break;
        }
        try {
            if (key == "id")
                e.id = std::stoull(val);
            else if (key == "seq")
                e.seq = std::stoull(val);
            else if (key == "worker")
                e.worker = static_cast<uint32_t>(std::stoul(val));
            else if (key == "pir")
                e.pirHash = std::stoull(val, nullptr, 16);
            else if (key == "arch")
                e.archHash = std::stoull(val, nullptr, 16);
            else if (key == "inputs")
                e.inputsHash = std::stoull(val, nullptr, 16);
            else if (key == "options")
                e.optionsHash = std::stoull(val, nullptr, 16);
            else if (key == "chit")
                e.configHit = val == "1";
            else if (key == "rhit")
                e.resultHit = val == "1";
            else if (key == "result")
                e.resultHash = std::stoull(val, nullptr, 16);
            else if (key == "cycles")
                e.cycles = std::stoull(val);
            else if (key == "exe")
                e.executed = val == "1";
            else if (key == "retries")
                e.retries = static_cast<uint32_t>(std::stoul(val));
            else if (key == "outcome")
                e.outcome = val;
            else {
                msg = strfmt("line %zu: unknown key '%s'", lineno,
                             key.c_str());
                return false;
            }
        } catch (const std::exception &) {
            msg = strfmt("line %zu: bad value '%s' for '%s'", lineno,
                         val.c_str(), key.c_str());
            return false;
        }
    }
    if (!haveSrc) {
        msg = strfmt("line %zu: missing src=", lineno);
        return false;
    }
    return true;
}

} // namespace

bool
readJobLog(std::istream &is, std::vector<JobLogEntry> &out,
           std::string *err, std::string *warn)
{
    auto fail = [&](const std::string &m) {
        if (err)
            *err = m;
        return false;
    };
    // Slurp the stream so the final line's termination state is
    // visible: a SIGKILLed --joblog-sync writer leaves either a
    // newline-terminated prefix (clean) or a torn final line.
    std::string all((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
    bool terminated = !all.empty() && all.back() == '\n';
    std::vector<std::string> lines;
    for (size_t pos = 0; pos < all.size();) {
        size_t nl = all.find('\n', pos);
        if (nl == std::string::npos) {
            lines.push_back(all.substr(pos));
            break;
        }
        lines.push_back(all.substr(pos, nl - pos));
        pos = nl + 1;
    }
    if (lines.empty() || (lines[0] != kHeader && lines[0] != kHeaderV1))
        return fail("missing '" + std::string(kHeader) + "' header");
    for (size_t i = 1; i < lines.size(); ++i) {
        const std::string &line = lines[i];
        bool last = i + 1 == lines.size();
        if (line.empty() || line[0] == '#')
            continue;
        JobLogEntry e;
        std::string msg;
        bool parsed = parseJobLine(line, i + 1, e, msg);
        if (last && !terminated) {
            // Torn final line: the writer died mid-append. Even a
            // parseable tail is untrustworthy (src= is free-form, so
            // a cut inside it still "parses") — drop it with a
            // warning; every terminated record before it stands.
            if (warn)
                *warn = strfmt("dropped torn final line %zu "
                               "(unterminated%s)",
                               i + 1,
                               parsed ? "" : "; unparseable too");
            break;
        }
        if (!parsed)
            return fail(msg); // terminated garbage is corruption, not
                              // a torn tail — stays a hard error
        out.push_back(std::move(e));
    }
    return true;
}

ReplayReport
replayLog(const std::vector<JobLogEntry> &log,
          const std::vector<JobSpec> &specs, const ServeOptions &opts,
          bool checkConfigHits)
{
    std::map<std::string, const JobSpec *> bySource;
    for (const JobSpec &s : specs)
        bySource[s.source] = &s;

    std::vector<const JobLogEntry *> ordered;
    ordered.reserve(log.size());
    for (const JobLogEntry &e : log)
        ordered.push_back(&e);
    std::sort(ordered.begin(), ordered.end(),
              [](const JobLogEntry *a, const JobLogEntry *b) {
                  return a->seq < b->seq;
              });

    ServeOptions ropts = opts;
    ropts.workers = 1;
    ropts.logAccesses = false;
    // Replay is store-free by definition: it must re-derive every
    // result from scratch, so a replay that matches a store-served
    // run proves the persisted configs were bit-identical to fresh
    // compiles (the warm-restart proof).
    ropts.storeDir.clear();
    Server server(ropts);

    ReplayReport rep;
    auto diff = [&](const JobLogEntry &e, const char *field,
                    std::string logged, std::string replayed) {
        rep.mismatches.push_back(
            {e.id, field, std::move(logged), std::move(replayed)});
    };
    // Keys a cancelled/abandoned build touched in the live run: the
    // abandonment shifted hit/miss for later requesters of the SAME
    // key, so rhit is advisory there (outcome/result stay checked).
    std::set<std::tuple<uint64_t, uint64_t, uint64_t, uint64_t>>
        tainted;
    for (const JobLogEntry *ep : ordered) {
        const JobLogEntry &e = *ep;
        auto key = std::make_tuple(e.pirHash, e.archHash, e.inputsHash,
                                   e.optionsHash);
        if (!e.executed || nonDeterministicOutcome(e.outcome)) {
            // Accounted, not replayed: these outcomes exist only under
            // live queue pressure and wall-clock budgets.
            ++rep.skipped;
            tainted.insert(key);
            continue;
        }
        auto it = bySource.find(e.source);
        if (it == bySource.end()) {
            diff(e, "source", e.source, "<no spec>");
            continue;
        }
        ++rep.jobs;
        JobSpec spec = *it->second; // copy: executeJob takes by value
        spec.id = e.id;
        spec.deadlineMs = 0; // replay is budget-free by definition
        JobResult got = server.executeJob(std::move(spec));
        if (got.resultHit)
            ++rep.resultHits;
        if (got.resultHit != e.resultHit && tainted.count(key) == 0)
            diff(e, "rhit", std::to_string(e.resultHit),
                 std::to_string(got.resultHit));
        if (checkConfigHits && got.configHit != e.configHit)
            diff(e, "chit", std::to_string(e.configHit),
                 std::to_string(got.configHit));
        uint64_t gotHash =
            got.outcome ? got.outcome->resultHash : 0;
        if (gotHash != e.resultHash)
            diff(e, "result", hex64(e.resultHash), hex64(gotHash));
        Cycles gotCycles = got.outcome ? got.outcome->cycles : 0;
        if (gotCycles != e.cycles)
            diff(e, "cycles", std::to_string(e.cycles),
                 std::to_string(gotCycles));
        std::string gotOutcome =
            got.outcome ? got.outcome->outcome : "lost";
        if (gotOutcome != e.outcome)
            diff(e, "outcome", e.outcome, gotOutcome);
        if (got.pirHash != e.pirHash)
            diff(e, "pir", hex64(e.pirHash), hex64(got.pirHash));
        if (got.inputsHash != e.inputsHash)
            diff(e, "inputs", hex64(e.inputsHash),
                 hex64(got.inputsHash));
    }
    return rep;
}

} // namespace plast::serve
