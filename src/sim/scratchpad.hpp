/**
 * @file
 * The PMU scratchpad: multiple SRAM banks with configurable banking
 * modes (§3.2) and N-buffering. Storage holds real words so the fabric
 * computes real results; the banking mode determines both data layout
 * semantics and the bank-conflict cost of a vector access.
 */

#ifndef PLAST_SIM_SCRATCHPAD_HPP
#define PLAST_SIM_SCRATCHPAD_HPP

#include <deque>
#include <vector>

#include "arch/config.hpp"
#include "base/types.hpp"

namespace plast
{

class Scratchpad
{
  public:
    void configure(const ScratchCfg &cfg, uint32_t banks,
                   uint32_t capacityWords);

    uint32_t numBufs() const { return cfg_.numBufs; }
    uint32_t sizeWords() const { return cfg_.sizeWords; }
    BankingMode mode() const { return cfg_.mode; }

    /** Word read/write within buffer `buf`. Line-buffer mode wraps. */
    Word read(uint32_t buf, uint32_t addr) const;
    void write(uint32_t buf, uint32_t addr, Word w);

    /**
     * Cycles a vector access with the given per-lane word addresses
     * occupies the banks: the maximum number of lanes mapping to one
     * bank (1 in duplication mode — every bank holds a copy).
     */
    uint32_t conflictCycles(const std::vector<uint32_t> &addrs) const;

    // FIFO-mode operations (vector granularity).
    void fifoPush(const Vec &v);
    bool fifoCanPop() const { return !fifo_.empty(); }
    Vec fifoPop();
    size_t fifoSize() const { return fifo_.size(); }

    /** Total data bytes this scratchpad is configured to hold. */
    uint64_t
    configuredBytes() const
    {
        return static_cast<uint64_t>(cfg_.numBufs) * cfg_.sizeWords * 4;
    }

  private:
    uint32_t
    wrap(uint32_t addr) const
    {
        return cfg_.mode == BankingMode::kLineBuffer && cfg_.sizeWords > 0
                   ? addr % cfg_.sizeWords
                   : addr;
    }

    ScratchCfg cfg_;
    uint32_t banks_ = 16;
    std::vector<Word> data_;
    std::deque<Vec> fifo_;
};

} // namespace plast

#endif // PLAST_SIM_SCRATCHPAD_HPP
