/**
 * @file
 * The PMU scratchpad: multiple SRAM banks with configurable banking
 * modes (§3.2) and N-buffering. Storage holds real words so the fabric
 * computes real results; the banking mode determines both data layout
 * semantics and the bank-conflict cost of a vector access.
 */

#ifndef PLAST_SIM_SCRATCHPAD_HPP
#define PLAST_SIM_SCRATCHPAD_HPP

#include <map>
#include <vector>

#include "arch/config.hpp"
#include "base/ring.hpp"
#include "base/stateio.hpp"
#include "base/types.hpp"

namespace plast
{

class Scratchpad
{
  public:
    void configure(const ScratchCfg &cfg, uint32_t banks,
                   uint32_t capacityWords);

    uint32_t numBufs() const { return cfg_.numBufs; }
    uint32_t sizeWords() const { return cfg_.sizeWords; }
    BankingMode mode() const { return cfg_.mode; }

    /** Word read/write within buffer `buf`. Line-buffer mode wraps. */
    Word read(uint32_t buf, uint32_t addr) const;
    void write(uint32_t buf, uint32_t addr, Word w);

    /**
     * Cycles a vector access with the given per-lane word addresses
     * occupies the banks: the maximum number of lanes mapping to one
     * bank (1 in duplication mode — every bank holds a copy).
     */
    uint32_t conflictCycles(const std::vector<uint32_t> &addrs) const;

    // ---- Specialized-path raw row access -----------------------------
    //
    // The PMU fast path (PmuPortPlan::fastAccess) reads/writes rows of
    // the backing array directly. A row is only handed out when the
    // per-word read()/write() semantics are provably inert for every
    // word in the span: in range, no wrap mid-span, and no pending
    // poison that a read would scrub or a write would clear. Otherwise
    // nullptr sends the caller down the exact per-word path.

    /** Contiguous `span` words starting at (wrapped) `addr`, or
     *  nullptr when read() side effects could differ. */
    const Word *
    rawRow(uint32_t buf, uint32_t addr, uint32_t span) const
    {
        if (ecc_ && !poison_.empty())
            return nullptr;
        return rowPtr(buf, addr, span);
    }

    /** Mutable row; writes clear check bits, so any pending poison
     *  forces the per-word path. */
    Word *
    rawRowMut(uint32_t buf, uint32_t addr, uint32_t span)
    {
        if (!poison_.empty())
            return nullptr;
        return const_cast<Word *>(rowPtr(buf, addr, span));
    }

    // FIFO-mode operations (vector granularity).
    void fifoPush(const Vec &v);
    bool fifoCanPop() const { return !fifo_.empty(); }
    Vec fifoPop();
    size_t fifoSize() const { return fifo_.size(); }

    /** Total data bytes this scratchpad is configured to hold. */
    uint64_t
    configuredBytes() const
    {
        return static_cast<uint64_t>(cfg_.numBufs) * cfg_.sizeWords * 4;
    }

    // ---- SECDED ECC model & fault injection --------------------------
    //
    // Check bits are not stored; instead each upset is tracked in a
    // poison ledger keyed by flat word address. With ECC enabled a
    // single-bit upset is corrected (and the word scrubbed) on the next
    // read, while a multi-bit upset latches `eccUncorrectable`. With
    // ECC disabled the stored word is corrupted in place — the upset
    // propagates into results (potential silent data corruption).

    void enableEcc(bool on) { ecc_ = on; }
    bool eccEnabled() const { return ecc_; }

    /**
     * Flip `bits` adjacent bits (starting at `bitPos`, wrapping within
     * the word) of buffer `buf`, word `addr` at cycle `now`. Returns
     * false when the location is not injectable (FIFO mode or out of
     * range).
     */
    bool injectFault(uint32_t buf, uint32_t addr, uint32_t bits,
                     uint32_t bitPos, Cycles now);

    struct EccStats
    {
        uint64_t corrected = 0;      ///< single-bit upsets scrubbed
        uint64_t uncorrectable = 0;  ///< multi-bit upsets detected

        template <class Ar>
        void
        serializeState(Ar &ar)
        {
            io(ar, corrected);
            io(ar, uncorrectable);
        }
    };

    const EccStats &eccStats() const { return eccStats_; }
    /** A detected-uncorrectable error is pending (ECC on, >=2 bits). */
    bool eccUncorrectable() const { return uncorrectable_; }
    /** Cycle the earliest still-unrecovered upset was injected. */
    Cycles eccCorruptedAt() const { return corruptedAt_; }
    void
    clearEccError()
    {
        uncorrectable_ = false;
        corruptedAt_ = ~Cycles{0};
    }

    template <class Ar>
    void
    serializeState(Ar &ar)
    {
        io(ar, data_);
        io(ar, fifo_);
        io(ar, poison_);
        io(ar, eccStats_);
        io(ar, uncorrectable_);
        io(ar, corruptedAt_);
    }

  private:
    const Word *
    rowPtr(uint32_t buf, uint32_t addr, uint32_t span) const
    {
        // Per-word callers compute addr + l in uint32, wrapping at
        // 2^32; a row must not paper over that wrap.
        if (addr > ~uint32_t{0} - span)
            return nullptr;
        addr = wrap(addr);
        if (buf >= cfg_.numBufs ||
            static_cast<uint64_t>(addr) + span > cfg_.sizeWords)
            return nullptr;
        return &data_[static_cast<size_t>(buf) * cfg_.sizeWords + addr];
    }

    uint32_t
    wrap(uint32_t addr) const
    {
        return cfg_.mode == BankingMode::kLineBuffer && cfg_.sizeWords > 0
                   ? addr % cfg_.sizeWords
                   : addr;
    }

    struct Poison
    {
        uint32_t bits = 0;        ///< number of upset bits in the word
        Cycles injectedAt = 0;

        template <class Ar>
        void
        serializeState(Ar &ar)
        {
            io(ar, bits);
            io(ar, injectedAt);
        }
    };

    ScratchCfg cfg_;
    uint32_t banks_ = 16;
    std::vector<Word> data_;
    Ring<Vec> fifo_;
    bool ecc_ = false;
    // Mutable: reads perform ECC decode (scrub / detect) as a side
    // effect, and read() is const for normal datapath callers.
    mutable std::map<uint32_t, Poison> poison_;
    mutable EccStats eccStats_;
    mutable bool uncorrectable_ = false;
    mutable Cycles corruptedAt_ = ~Cycles{0};
    // Per-call workspace for conflictCycles(): reused, never state.
    mutable std::vector<uint32_t> perBankScratch_;
};

} // namespace plast

#endif // PLAST_SIM_SCRATCHPAD_HPP
