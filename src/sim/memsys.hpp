/**
 * @file
 * Off-chip memory access path (§3.4): Address Generators (AGs) produce
 * dense (burst) or sparse (gather/scatter) commands; per-channel
 * coalescing units split dense commands into DRAM bursts, merge sparse
 * word accesses that fall in the same burst line through a coalescing
 * cache, and bound the number of outstanding requests.
 */

#ifndef PLAST_SIM_MEMSYS_HPP
#define PLAST_SIM_MEMSYS_HPP

#include <deque>
#include <map>
#include <vector>

#include "arch/config.hpp"
#include "arch/params.hpp"
#include "base/stateio.hpp"
#include "sim/dram.hpp"
#include "sim/execplan.hpp"
#include "sim/unitcommon.hpp"

namespace plast
{

class MemSystem;

/**
 * Fault-model hook consulted once per completed DRAM *read* burst
 * (writes are protected by the command/CRC path and committed at submit
 * time). The resilience library implements this; the default is no
 * hook, i.e. a fault-free memory system.
 */
class MemFaultHook
{
  public:
    virtual ~MemFaultHook() = default;

    enum class BurstAction : uint8_t
    {
        kClean,     ///< deliver as read
        kCorrected, ///< single-bit upset, fixed by DRAM ECC; count it
        kRetry,     ///< uncorrectable response; re-issue the burst
        kCorrupt,   ///< undetected upset: flip a bit in the delivered data
    };

    struct BurstFault
    {
        BurstAction action = BurstAction::kClean;
        /** kCorrupt: which bit of the 512-bit burst payload flips. */
        uint32_t bit = 0;
    };

    virtual BurstFault onBurstResponse(Addr lineAddr, Cycles now) = 0;
};

/** One Address Generator. */
class AgSim : public SimUnit
{
  public:
    AgSim(const ArchParams &params, uint32_t index, const AgCfg &cfg,
          MemSystem &mem, SimMode mode = SimMode::kInterp);

    void step(Cycles now) override;
    bool busy() const override { return state_ != State::kIdle; }

    // Callbacks from the memory system.
    void deliverWords(uint64_t cmdId, uint32_t wordOffset, const Word *data,
                      uint32_t count);
    void deliverLane(uint64_t cmdId, uint32_t lane, Word data);
    void ackWrite(uint64_t cmdId, uint32_t count);

    /** Work counters; cycle accounting lives in SimUnit::acct(). */
    struct Stats
    {
        uint64_t runs = 0;
        uint64_t denseCmds = 0;
        uint64_t sparseVecs = 0;
        uint64_t wordsLoaded = 0, wordsStored = 0;
    };
    const Stats &stats() const { return stats_; }
    const std::string &name() const { return cfg_.name; }
    const AgCfg &cfg() const { return cfg_; }

    template <class Ar>
    void
    serializeState(Ar &ar)
    {
        serializeUnitBase(ar);
        io(ar, state_);
        io(ar, selfStarted_);
        io(ar, chain_);
        io(ar, fill_);
        io(ar, nextCmdId_);
        io(ar, dense_);
        io(ar, sparse_);
        io(ar, sparsePendingMask_);
        io(ar, sparsePendingId_);
        io(ar, sparsePendingAddrs_);
        io(ar, sparsePendingData_);
        io(ar, sparsePendingWrite_);
        io(ar, outstandingWrites_);
        io(ar, runStart_);
        io(ar, stats_.runs);
        io(ar, stats_.denseCmds);
        io(ar, stats_.sparseVecs);
        io(ar, stats_.wordsLoaded);
        io(ar, stats_.wordsStored);
        if constexpr (!Ar::kSaving)
            trialValid_ = false;
    }

  private:
    enum class State { kIdle, kRunning, kDrainOut };

    /** A dense command awaiting response data / write acks. */
    struct DenseCmd
    {
        uint64_t id = 0;
        uint32_t words = 0;
        uint32_t received = 0;
        uint32_t pushed = 0;
        Cycles issuedAt = 0;
        std::vector<Word> data;

        template <class Ar>
        void
        serializeState(Ar &ar)
        {
            io(ar, id);
            io(ar, words);
            io(ar, received);
            io(ar, pushed);
            io(ar, issuedAt);
            io(ar, data);
        }
    };

    /** A gather/scatter vector in flight. */
    struct SparseCmd
    {
        uint64_t id = 0;
        Vec data;          ///< gathered words / scatter payload
        uint32_t mask = 0; ///< lanes requested
        uint32_t remaining = 0;
        Cycles issuedAt = 0;

        template <class Ar>
        void
        serializeState(Ar &ar)
        {
            io(ar, id);
            io(ar, data);
            io(ar, mask);
            io(ar, remaining);
            io(ar, issuedAt);
        }
    };

    bool tryStart(Cycles now);
    bool issueDense(Cycles now);
    bool issueSparse(Cycles now);
    bool retrySparse();
    void drainResponses(Cycles now);
    bool finishRun(Cycles now);

    ArchParams params_;
    uint32_t index_;
    AgCfg cfg_;
    uint32_t lanes_;
    MemSystem &mem_;
    SimMode mode_;

    State state_ = State::kIdle;
    bool selfStarted_ = false;
    ChainState chain_;
    uint32_t fill_ = 0;
    uint64_t nextCmdId_ = 1;
    std::deque<DenseCmd> dense_;
    std::deque<SparseCmd> sparse_;
    /** Lanes of the current sparse vector still awaiting acceptance. */
    uint32_t sparsePendingMask_ = 0;
    uint64_t sparsePendingId_ = 0;
    Vec sparsePendingAddrs_, sparsePendingData_;
    bool sparsePendingWrite_ = false;
    uint64_t outstandingWrites_ = 0;
    std::vector<uint8_t> scalarRefs_;
    /** Speculative-issue staging (issueDense/issueSparse compute the
     *  next address on a copy of the chain and commit only if the
     *  coalescer accepts). Members so the per-cycle path reuses their
     *  capacity; re-derived every attempt, never checkpointed. */
    ChainState trialChain_;
    Wavefront wfScratch_;
    /** Specialized-engine memo: a dense command's address depends only
     *  on the chain position and run-constant scalars, so a command
     *  rejected by the coalescer re-submits the cached address instead
     *  of re-interpreting the stage program every polling cycle.
     *  trialChain_ keeps the matching advanced chain state. Derived —
     *  invalidated at run start, on issue, and on restore. */
    bool trialValid_ = false;
    Addr trialByteAddr_ = 0;
    /** Recycled DenseCmd::data buffers (host-side cache, no state). */
    std::vector<std::vector<Word>> dataPool_;

    Cycles runStart_ = 0; ///< cycle the current run's tokens fired
    Stats stats_;
};

/**
 * The coalescing units (one per DRAM channel) plus the DRAM model. AGs
 * call in with commands; each coalescing unit accepts at most one AG
 * command per cycle and tracks outstanding bursts.
 */
class MemSystem : public SimObject
{
  public:
    explicit MemSystem(const ArchParams &params);

    DramModel &dram() { return dram_; }
    const DramModel &dram() const { return dram_; }

    /** Dense command: `words` contiguous words at byteAddr. Returns
     *  false when the channel's coalescing unit cannot accept. */
    bool submitDense(uint32_t cu, AgSim *ag, uint64_t cmdId, Addr byteAddr,
                     uint32_t words, bool write, const Word *data);

    /**
     * Sparse command: per-lane word addresses (gather or scatter).
     * May accept only a subset of the requested lanes when the
     * coalescing cache is full; returns the accepted-lane mask (the AG
     * retries the remainder next cycle).
     */
    uint32_t submitSparse(uint32_t cu, AgSim *ag, uint64_t cmdId,
                          const Vec &addrs, uint32_t lanes, bool write,
                          const Vec *data);

    void step(Cycles now);
    bool quiescent() const;

    /** Activity adapter: the DRAM timing model is cycle-driven, so the
     *  memory system stays active every cycle until fully quiescent. */
    Activity
    evaluate(Cycles now) override
    {
        step(now);
        return quiescent() ? Activity::kBlocked : Activity::kActive;
    }

    struct Stats
    {
        uint64_t bursts = 0;
        uint64_t coalescedLanes = 0; ///< sparse lanes merged into a burst
        uint64_t denseCmds = 0, sparseCmds = 0;
        uint64_t bytesRead = 0, bytesWritten = 0;
        uint64_t dramCorrected = 0;  ///< single-bit upsets fixed by ECC
        uint64_t dramRetries = 0;    ///< bursts re-issued after an error

        template <class Ar>
        void
        serializeState(Ar &ar)
        {
            io(ar, bursts);
            io(ar, coalescedLanes);
            io(ar, denseCmds);
            io(ar, sparseCmds);
            io(ar, bytesRead);
            io(ar, bytesWritten);
            io(ar, dramCorrected);
            io(ar, dramRetries);
        }
    };
    const Stats &stats() const { return stats_; }

    /** Install (or clear) the DRAM response fault model. */
    void setFaultHook(MemFaultHook *hook) { faultHook_ = hook; }

    /** One trace track per coalescing unit (burst intervals plus the
     *  outstanding-burst counter live there). */
    void bindCuTracks(std::vector<uint16_t> tracks)
    {
        cuTracks_ = std::move(tracks);
    }

  private:
    struct Waiter
    {
        AgSim *ag;
        uint64_t cmdId;
        bool sparse;
        uint32_t lane;       ///< sparse: lane index
        Addr byteAddr;       ///< sparse: word address
        uint32_t wordOffset; ///< dense: offset into the command
        uint32_t wordCount;  ///< dense: words served by this burst
        Addr lineOffset;     ///< dense: first byte within the line
    };

    struct Burst
    {
        Addr lineAddr = 0;
        bool write = false;
        bool issued = false;
        std::vector<Waiter> waiters;
        uint32_t cu = 0;
        Cycles issuedAt = 0;   ///< cycle submitted to the DRAM channel
        uint32_t retries = 0;  ///< error retries so far
        Cycles notBefore = 0;  ///< backoff: earliest re-issue cycle
    };

    struct CuState
    {
        bool acceptedThisCycle = false;
        uint32_t outstanding = 0;
        /** coalescing cache: pending line -> burst slot */
        std::map<Addr, uint64_t> mergeTable;
        Ring<uint64_t> issueQueue;
    };

    uint64_t allocBurst(Addr lineAddr, bool write);

    ArchParams params_;
    DramModel dram_;
    std::vector<CuState> cus_;
    std::map<uint64_t, Burst> bursts_;
    uint64_t nextBurst_ = 1;
    std::vector<DramReq> completed_;
    std::vector<uint16_t> cuTracks_;     ///< empty when tracing is off
    std::vector<uint32_t> lastOutstanding_;
    Stats stats_;
    MemFaultHook *faultHook_ = nullptr;

  public:
    /**
     * Checkpoint the memory system. Waiters hold AgSim pointers, so the
     * caller (the fabric) provides the pointer <-> index mapping:
     * `agIndexOf(AgSim*) -> uint64_t` and `agPtrOf(uint64_t) -> AgSim*`.
     */
    template <class Ar, class AgToIdx, class IdxToAg>
    void
    serializeState(Ar &ar, AgToIdx agIndexOf, IdxToAg agPtrOf)
    {
        for (CuState &c : cus_)
        {
            io(ar, c.acceptedThisCycle);
            io(ar, c.outstanding);
            io(ar, c.mergeTable);
            io(ar, c.issueQueue);
        }
        uint64_t n = bursts_.size();
        io(ar, n);
        if constexpr (!Ar::kSaving)
            bursts_.clear();
        if constexpr (Ar::kSaving)
        {
            for (auto &kv : bursts_)
            {
                uint64_t id = kv.first;
                io(ar, id);
                serializeBurst(ar, kv.second, agIndexOf, agPtrOf);
            }
        }
        else
        {
            for (uint64_t i = 0; i < n; ++i)
            {
                uint64_t id = 0;
                io(ar, id);
                serializeBurst(ar, bursts_[id], agIndexOf, agPtrOf);
            }
        }
        io(ar, nextBurst_);
        io(ar, stats_);
        dram_.serializeState(ar);
    }

  private:
    template <class Ar, class AgToIdx, class IdxToAg>
    void
    serializeBurst(Ar &ar, Burst &b, AgToIdx agIndexOf, IdxToAg agPtrOf)
    {
        io(ar, b.lineAddr);
        io(ar, b.write);
        io(ar, b.issued);
        io(ar, b.cu);
        io(ar, b.issuedAt);
        io(ar, b.retries);
        io(ar, b.notBefore);
        uint64_t n = b.waiters.size();
        io(ar, n);
        if constexpr (!Ar::kSaving)
            b.waiters.resize(n);
        for (Waiter &w : b.waiters)
        {
            uint64_t agIdx = 0;
            if constexpr (Ar::kSaving)
                agIdx = agIndexOf(w.ag);
            io(ar, agIdx);
            if constexpr (!Ar::kSaving)
                w.ag = agPtrOf(agIdx);
            io(ar, w.cmdId);
            io(ar, w.sparse);
            io(ar, w.lane);
            io(ar, w.byteAddr);
            io(ar, w.wordOffset);
            io(ar, w.wordCount);
            io(ar, w.lineOffset);
        }
    }
};

} // namespace plast

#endif // PLAST_SIM_MEMSYS_HPP
