/**
 * @file
 * Off-chip memory access path (§3.4): Address Generators (AGs) produce
 * dense (burst) or sparse (gather/scatter) commands; per-channel
 * coalescing units split dense commands into DRAM bursts, merge sparse
 * word accesses that fall in the same burst line through a coalescing
 * cache, and bound the number of outstanding requests.
 */

#ifndef PLAST_SIM_MEMSYS_HPP
#define PLAST_SIM_MEMSYS_HPP

#include <deque>
#include <map>
#include <vector>

#include "arch/config.hpp"
#include "arch/params.hpp"
#include "sim/dram.hpp"
#include "sim/unitcommon.hpp"

namespace plast
{

class MemSystem;

/** One Address Generator. */
class AgSim : public SimUnit
{
  public:
    AgSim(const ArchParams &params, uint32_t index, const AgCfg &cfg,
          MemSystem &mem);

    void step(Cycles now) override;
    bool busy() const override;

    // Callbacks from the memory system.
    void deliverWords(uint64_t cmdId, uint32_t wordOffset, const Word *data,
                      uint32_t count);
    void deliverLane(uint64_t cmdId, uint32_t lane, Word data);
    void ackWrite(uint64_t cmdId, uint32_t count);

    /** Work counters; cycle accounting lives in SimUnit::acct(). */
    struct Stats
    {
        uint64_t runs = 0;
        uint64_t denseCmds = 0;
        uint64_t sparseVecs = 0;
        uint64_t wordsLoaded = 0, wordsStored = 0;
    };
    const Stats &stats() const { return stats_; }
    const std::string &name() const { return cfg_.name; }
    const AgCfg &cfg() const { return cfg_; }

  private:
    enum class State { kIdle, kRunning, kDrainOut };

    /** A dense command awaiting response data / write acks. */
    struct DenseCmd
    {
        uint64_t id;
        uint32_t words;
        uint32_t received = 0;
        uint32_t pushed = 0;
        Cycles issuedAt = 0;
        std::vector<Word> data;
    };

    /** A gather/scatter vector in flight. */
    struct SparseCmd
    {
        uint64_t id;
        Vec data;          ///< gathered words / scatter payload
        uint32_t mask = 0; ///< lanes requested
        uint32_t remaining = 0;
        Cycles issuedAt = 0;
    };

    bool tryStart(Cycles now);
    bool issueDense(Cycles now);
    bool issueSparse(Cycles now);
    bool retrySparse();
    void drainResponses(Cycles now);
    bool finishRun(Cycles now);

    ArchParams params_;
    uint32_t index_;
    AgCfg cfg_;
    uint32_t lanes_;
    MemSystem &mem_;

    State state_ = State::kIdle;
    bool selfStarted_ = false;
    ChainState chain_;
    uint32_t fill_ = 0;
    uint64_t nextCmdId_ = 1;
    std::deque<DenseCmd> dense_;
    std::deque<SparseCmd> sparse_;
    /** Lanes of the current sparse vector still awaiting acceptance. */
    uint32_t sparsePendingMask_ = 0;
    uint64_t sparsePendingId_ = 0;
    Vec sparsePendingAddrs_, sparsePendingData_;
    bool sparsePendingWrite_ = false;
    uint64_t outstandingWrites_ = 0;
    std::vector<uint8_t> scalarRefs_;

    Cycles runStart_ = 0; ///< cycle the current run's tokens fired
    Stats stats_;
};

/**
 * The coalescing units (one per DRAM channel) plus the DRAM model. AGs
 * call in with commands; each coalescing unit accepts at most one AG
 * command per cycle and tracks outstanding bursts.
 */
class MemSystem : public SimObject
{
  public:
    explicit MemSystem(const ArchParams &params);

    DramModel &dram() { return dram_; }
    const DramModel &dram() const { return dram_; }

    /** Dense command: `words` contiguous words at byteAddr. Returns
     *  false when the channel's coalescing unit cannot accept. */
    bool submitDense(uint32_t cu, AgSim *ag, uint64_t cmdId, Addr byteAddr,
                     uint32_t words, bool write, const Word *data);

    /**
     * Sparse command: per-lane word addresses (gather or scatter).
     * May accept only a subset of the requested lanes when the
     * coalescing cache is full; returns the accepted-lane mask (the AG
     * retries the remainder next cycle).
     */
    uint32_t submitSparse(uint32_t cu, AgSim *ag, uint64_t cmdId,
                          const Vec &addrs, uint32_t lanes, bool write,
                          const Vec *data);

    void step(Cycles now);
    bool quiescent() const;

    /** Activity adapter: the DRAM timing model is cycle-driven, so the
     *  memory system stays active every cycle until fully quiescent. */
    Activity
    evaluate(Cycles now) override
    {
        step(now);
        return quiescent() ? Activity::kBlocked : Activity::kActive;
    }

    struct Stats
    {
        uint64_t bursts = 0;
        uint64_t coalescedLanes = 0; ///< sparse lanes merged into a burst
        uint64_t denseCmds = 0, sparseCmds = 0;
        uint64_t bytesRead = 0, bytesWritten = 0;
    };
    const Stats &stats() const { return stats_; }

    /** One trace track per coalescing unit (burst intervals plus the
     *  outstanding-burst counter live there). */
    void bindCuTracks(std::vector<uint16_t> tracks)
    {
        cuTracks_ = std::move(tracks);
    }

  private:
    struct Waiter
    {
        AgSim *ag;
        uint64_t cmdId;
        bool sparse;
        uint32_t lane;       ///< sparse: lane index
        Addr byteAddr;       ///< sparse: word address
        uint32_t wordOffset; ///< dense: offset into the command
        uint32_t wordCount;  ///< dense: words served by this burst
        Addr lineOffset;     ///< dense: first byte within the line
    };

    struct Burst
    {
        Addr lineAddr;
        bool write;
        bool issued = false;
        std::vector<Waiter> waiters;
        uint32_t cu = 0;
        Cycles issuedAt = 0; ///< cycle submitted to the DRAM channel
    };

    struct CuState
    {
        bool acceptedThisCycle = false;
        uint32_t outstanding = 0;
        /** coalescing cache: pending line -> burst slot */
        std::map<Addr, uint64_t> mergeTable;
        std::deque<uint64_t> issueQueue;
    };

    uint64_t allocBurst(Addr lineAddr, bool write);

    ArchParams params_;
    DramModel dram_;
    std::vector<CuState> cus_;
    std::map<uint64_t, Burst> bursts_;
    uint64_t nextBurst_ = 1;
    std::vector<DramReq> completed_;
    std::vector<uint16_t> cuTracks_;     ///< empty when tracing is off
    std::vector<uint32_t> lastOutstanding_;
    Stats stats_;
};

} // namespace plast

#endif // PLAST_SIM_MEMSYS_HPP
