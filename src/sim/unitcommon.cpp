#include "sim/unitcommon.hpp"

#include <algorithm>

#include "base/logging.hpp"
#include "sim/fuexec.hpp"

namespace plast
{

bool
tokensReady(const ControlCfg &ctrl, const UnitPorts &ports,
            bool selfStarted)
{
    if (ctrl.tokenIns.empty())
        return !selfStarted;
    for (uint8_t idx : ctrl.tokenIns) {
        panic_if(idx >= ports.ctlIn.size(), "token input %u out of range",
                 idx);
        if (!ports.ctlIn[idx].hasToken())
            return false;
    }
    return true;
}

void
consumeTokens(const ControlCfg &ctrl, UnitPorts &ports)
{
    for (uint8_t idx : ctrl.tokenIns)
        ports.ctlIn[idx].consume();
}

bool
canPushDone(const ControlCfg &ctrl, const UnitPorts &ports)
{
    for (uint8_t idx : ctrl.doneOuts) {
        panic_if(idx >= ports.ctlOut.size(), "done output %u out of range",
                 idx);
        if (!ports.ctlOut[idx].canPush())
            return false;
    }
    return true;
}

void
pushDone(const ControlCfg &ctrl, UnitPorts &ports)
{
    for (uint8_t idx : ctrl.doneOuts)
        ports.ctlOut[idx].push(Token{});
}

std::vector<uint8_t>
chainScalarRefs(const ChainCfg &chain)
{
    std::vector<uint8_t> refs;
    for (const auto &c : chain.ctrs) {
        if (c.maxFromScalarIn >= 0)
            refs.push_back(static_cast<uint8_t>(c.maxFromScalarIn));
    }
    return refs;
}

void
stageRefs(const std::vector<StageCfg> &stages, std::vector<uint8_t> &scalars,
          std::vector<uint8_t> &vectors)
{
    auto note = [&](const Operand &op) {
        if (op.kind == OperandKind::kScalarIn)
            scalars.push_back(op.index);
        else if (op.kind == OperandKind::kVectorIn)
            vectors.push_back(op.index);
    };
    for (const auto &st : stages) {
        note(st.a);
        note(st.b);
        note(st.c);
    }
    auto uniq = [](std::vector<uint8_t> &v) {
        std::sort(v.begin(), v.end());
        v.erase(std::unique(v.begin(), v.end()), v.end());
    };
    uniq(scalars);
    uniq(vectors);
}

bool
scalarsReady(const std::vector<uint8_t> &refs, const UnitPorts &ports)
{
    for (uint8_t idx : refs) {
        panic_if(idx >= ports.scalIn.size(), "scalar input %u out of range",
                 idx);
        if (!ports.scalIn[idx].canPop())
            return false;
    }
    return true;
}

void
popScalars(const std::vector<uint8_t> &refs, UnitPorts &ports)
{
    for (uint8_t idx : refs)
        ports.scalIn[idx].pop();
}

std::vector<int64_t>
resolveBounds(const ChainCfg &chain, const UnitPorts &ports)
{
    std::vector<int64_t> bounds;
    bounds.reserve(chain.ctrs.size());
    for (const auto &c : chain.ctrs) {
        if (c.maxFromScalarIn >= 0) {
            Word w = ports.scalIn[c.maxFromScalarIn].front();
            bounds.push_back(static_cast<int64_t>(wordToInt(w)) *
                             c.boundScale);
        } else {
            bounds.push_back(c.max);
        }
    }
    return bounds;
}

namespace
{

Word
scalarOperand(const Operand &op, const Wavefront &wf,
              const UnitPorts &ports, const ScalarRegs &regs)
{
    switch (op.kind) {
      case OperandKind::kNone:
        return 0;
      case OperandKind::kReg:
        return regs.reg[op.index];
      case OperandKind::kCounter:
        return static_cast<Word>(wf.ctrLane(op.index, 0));
      case OperandKind::kScalarIn:
        return ports.scalIn[op.index].front();
      case OperandKind::kVectorIn:
        return wf.vecIn[op.index].lane[0];
      case OperandKind::kImm:
        return op.imm;
      case OperandKind::kLaneId:
        return 0;
    }
    return 0;
}

} // namespace

Word
evalScalarStages(const std::vector<StageCfg> &stages, uint8_t resultReg,
                 const Wavefront &wf, const UnitPorts &ports,
                 ScalarRegs &regs)
{
    for (const auto &st : stages) {
        panic_if(st.kind != StageKind::kMap,
                 "scalar datapaths support only map stages");
        Word a = scalarOperand(st.a, wf, ports, regs);
        Word b = scalarOperand(st.b, wf, ports, regs);
        Word c = scalarOperand(st.c, wf, ports, regs);
        regs.reg[st.dstReg] = fuExec(st.op, a, b, c);
    }
    return regs.reg[resultReg];
}

} // namespace plast
