#include "sim/pmu.hpp"

#include <algorithm>
#include <bit>

#include "base/logging.hpp"
#include "sim/fuexec.hpp"

namespace plast
{

PmuSim::PmuSim(const ArchParams &params, uint32_t index, const PmuCfg &cfg,
               SimMode mode)
    : params_(params), index_(index), cfg_(cfg), lanes_(params.pcu.lanes),
      mode_(mode)
{
    ports.size(params.pmu.scalarIns, params.pmu.vectorIns, 64,
               params.pmu.scalarOuts, params.pmu.vectorOuts, 64);

    scratch_.configure(cfg_.scratch, params.pmu.banks,
                       params.pmu.totalWords());

    auto init_port = [&](Port &port, const PmuPortCfg &pcfg, bool write) {
        port.cfg = &pcfg;
        port.isWrite = write;
        port.chain.configure(pcfg.chain, lanes_);
        std::vector<uint8_t> vecs;
        stageRefs(pcfg.addrStages, port.scalarRefs, vecs);
        for (uint8_t ref : chainScalarRefs(pcfg.chain))
            port.scalarRefs.push_back(ref);
        std::sort(port.scalarRefs.begin(), port.scalarRefs.end());
        port.scalarRefs.erase(
            std::unique(port.scalarRefs.begin(), port.scalarRefs.end()),
            port.scalarRefs.end());
        port.addrScratch.reserve(lanes_);
        port.activeScratch.reserve(lanes_);
        port.plan = buildPmuPortPlan(pcfg, write, cfg_.scratch,
                                     params.pmu.banks, lanes_);
        fatal_if(pcfg.enabled &&
                     pcfg.addrStages.size() > params.pmu.stages,
                 "PMU %u: %zu address stages exceed the %u physical stages",
                 index, pcfg.addrStages.size(), params.pmu.stages);
    };
    init_port(write_, cfg_.write, true);
    init_port(write2_, cfg_.write2, true);
    init_port(read_, cfg_.read, false);
}

bool
PmuSim::busy() const
{
    return (cfg_.write.enabled && write_.state != Port::State::kIdle) ||
           (cfg_.write2.enabled && write2_.state != Port::State::kIdle) ||
           (cfg_.read.enabled && read_.state != Port::State::kIdle);
}

void
PmuSim::step(Cycles now)
{
    progress_ = false;
    bool any = false;
    if (cfg_.write.enabled)
        any |= stepPort(write_, now);
    if (cfg_.write2.enabled)
        any |= stepPort(write2_, now);
    if (cfg_.read.enabled)
        any |= stepPort(read_, now);
    if (any)
        progress_ = true;
}

bool
PmuSim::stepPort(Port &port, Cycles now)
{
    const PmuPortCfg &pcfg = *port.cfg;
    switch (port.state) {
      case Port::State::kIdle: {
        if (!tokensReady(pcfg.ctrl, ports, port.selfStarted)) {
            if (!pcfg.ctrl.tokenIns.empty())
                classify(CycleClass::kCreditBlocked);
            return false;
        }
        if (!scalarsReady(port.scalarRefs, ports)) {
            classify(CycleClass::kInputStarved);
            return false;
        }
        consumeTokens(pcfg.ctrl, ports);
        port.selfStarted = true;
        port.runStart = now;
        if (!pcfg.ctrl.tokenIns.empty())
            traceInstant(trace_, port.track, TraceName::kTokens, now);
        port.chain.reset(resolveBounds(pcfg.chain, ports));
        port.runConstsValid = false; // new run: scalars may have changed
        port.fill = static_cast<uint32_t>(pcfg.addrStages.size());
        port.appendCursor = 0;
        if (pcfg.clearEvery > 0 && port.runCount % pcfg.clearEvery == 0) {
            for (uint32_t a = 0; a < scratch_.sizeWords(); ++a)
                scratch_.write(port.bufIdx, a, 0);
            // Zeroing streams one vector of lanes words per cycle.
            port.fill += (scratch_.sizeWords() + lanes_ - 1) / lanes_;
        }
        port.state =
            port.fill > 0 ? Port::State::kFilling : Port::State::kRunning;
        if (port.isWrite)
            ++stats_.writeRuns;
        else
            ++stats_.readRuns;
        return true;
      }
      case Port::State::kFilling: {
        if (--port.fill == 0)
            port.state = Port::State::kRunning;
        return true;
      }
      case Port::State::kRunning: {
        if (port.busy > 0) {
            // The port is burning a conflict cycle: the state machine
            // moves, but no architectural work happens — force the
            // classification over the progress->active rule.
            --port.busy;
            classifyForce(CycleClass::kBankConflict);
            return true;
        }
        if (port.chain.done()) {
            // Run complete: swap buffers, pop scalars, signal done.
            if (!canPushDone(pcfg.ctrl, ports)) {
                classify(CycleClass::kOutputBackpressure);
                return false;
            }
            popScalars(port.scalarRefs, ports);
            pushDone(pcfg.ctrl, ports);
            traceSpan(trace_, port.track, TraceName::kRun, port.runStart,
                      now + 1);
            traceInstant(trace_, port.track, TraceName::kDone, now);
            ++port.runCount;
            if (pcfg.swapEvery > 0 &&
                port.runCount % pcfg.swapEvery == 0)
                port.bufIdx = (port.bufIdx + 1) % scratch_.numBufs();
            port.state = Port::State::kIdle;
            return true;
        }
        if (mode_ == SimMode::kSpecialized && port.plan.fastAccess)
            return portAccessPlanned(port);
        return portAccess(port);
      }
    }
    return false;
}

bool
PmuSim::portAccess(Port &port)
{
    const PmuPortCfg &pcfg = *port.cfg;

    // FIFO banking mode: queue semantics, no address computation.
    if (scratch_.mode() == BankingMode::kFifo) {
        if (port.isWrite) {
            if (pcfg.dataVecIn < 0 ||
                !ports.vecIn[pcfg.dataVecIn].canPop()) {
                classify(CycleClass::kInputStarved);
                return false;
            }
            port.chain.issueInto(port.wfScratch);
            scratch_.fifoPush(ports.vecIn[pcfg.dataVecIn].front());
            ports.vecIn[pcfg.dataVecIn].pop();
            ++stats_.writes;
            return true;
        }
        if (!scratch_.fifoCanPop() || pcfg.dataVecOut < 0) {
            classify(CycleClass::kInputStarved);
            return false;
        }
        if (!ports.vecOut[pcfg.dataVecOut].canPush()) {
            classify(CycleClass::kOutputBackpressure);
            return false;
        }
        port.chain.issueInto(port.wfScratch);
        ports.vecOut[pcfg.dataVecOut].push(scratch_.fifoPop());
        ++stats_.reads;
        return true;
    }

    // FlatMap append mode: pack incoming valid words at the cursor.
    if (pcfg.appendMode) {
        if (pcfg.dataVecIn < 0 || !ports.vecIn[pcfg.dataVecIn].canPop()) {
            classify(CycleClass::kInputStarved);
            return false;
        }
        port.chain.issueInto(port.wfScratch);
        const Vec &dv = ports.vecIn[pcfg.dataVecIn].front();
        for (uint32_t l = 0; l < lanes_; ++l) {
            if (dv.valid(l)) {
                scratch_.write(port.bufIdx, port.appendCursor++,
                               dv.lane[l]);
                ++stats_.wordsWritten;
            }
        }
        ports.vecIn[pcfg.dataVecIn].pop();
        ++stats_.writes;
        return true;
    }

    // Check that every input/output this access needs is ready.
    if (pcfg.addrVecIn >= 0 && !ports.vecIn[pcfg.addrVecIn].canPop()) {
        classify(CycleClass::kInputStarved);
        return false;
    }
    if (port.isWrite) {
        if (pcfg.dataVecIn < 0 || !ports.vecIn[pcfg.dataVecIn].canPop()) {
            classify(CycleClass::kInputStarved);
            return false;
        }
    } else {
        if (pcfg.dataVecOut < 0 ||
            !ports.vecOut[pcfg.dataVecOut].canPush()) {
            classify(CycleClass::kOutputBackpressure);
            return false;
        }
    }

    Wavefront &wf = port.wfScratch;
    port.chain.issueInto(wf);

    // Resolve per-lane word addresses.
    std::vector<uint32_t> &addrs = port.addrScratch;
    addrs.clear();
    uint32_t access_mask = wf.mask;
    if (pcfg.addrVecIn >= 0) {
        const Vec &av = ports.vecIn[pcfg.addrVecIn].front();
        wf.vecIn[pcfg.addrVecIn] = av;
        access_mask &= av.mask;
        for (uint32_t l = 0; l < lanes_; ++l)
            addrs.push_back(av.lane[l]);
        ports.vecIn[pcfg.addrVecIn].pop();
    } else {
        ScalarRegs regs;
        Word base = evalScalarStages(pcfg.addrStages, pcfg.addrReg, wf,
                                     ports, regs);
        if (pcfg.vecLinear) {
            for (uint32_t l = 0; l < lanes_; ++l)
                addrs.push_back(base + l);
        } else if (pcfg.broadcast) {
            // Duplication-mode broadcast: one word to every lane.
            addrs.assign(lanes_, base);
        } else {
            addrs.assign(lanes_, base);
            access_mask &= 1u; // scalar access: lane 0 only
        }
    }

    if (port.isWrite) {
        const Vec &dv = ports.vecIn[pcfg.dataVecIn].front();
        access_mask &= dv.mask;
        uint32_t buf = port.bufIdx;
        for (uint32_t l = 0; l < lanes_; ++l) {
            if (!((access_mask >> l) & 1u))
                continue;
            Word w = dv.lane[l];
            if (pcfg.accumulate) {
                Word old = scratch_.read(buf, addrs[l]);
                w = fuExec(pcfg.accumOp, old, w, 0);
            }
            scratch_.write(buf, addrs[l], w);
            ++stats_.wordsWritten;
        }
        ports.vecIn[pcfg.dataVecIn].pop();
        ++stats_.writes;
    } else {
        Vec out;
        out.mask = access_mask;
        uint32_t buf = port.bufIdx;
        for (uint32_t l = 0; l < lanes_; ++l) {
            if ((access_mask >> l) & 1u) {
                out.lane[l] = scratch_.read(buf, addrs[l]);
                ++stats_.wordsRead;
            }
        }
        ports.vecOut[pcfg.dataVecOut].push(out);
        ++stats_.reads;
    }

    // Bank conflicts occupy the port for extra cycles.
    if (pcfg.broadcast && pcfg.addrVecIn < 0) {
        port.busy = 0; // one word fanned out, conflict-free
        return true;
    }
    std::vector<uint32_t> &active = port.activeScratch;
    active.clear();
    for (uint32_t l = 0; l < lanes_; ++l) {
        if ((access_mask >> l) & 1u)
            active.push_back(addrs[l]);
    }
    port.busy = scratch_.conflictCycles(active) - 1;
    return true;
}

/**
 * Specialized access path (PmuPortPlan::fastAccess): the address comes
 * from the pre-lowered affine form instead of re-interpreting the
 * stage program, and the data moves through a raw scratchpad row when
 * the per-word semantics are provably inert. Every guard falls back to
 * the exact per-word machinery, so this path is bit-identical to
 * portAccess() for the port shapes the plan covers.
 */
bool
PmuSim::portAccessPlanned(Port &port)
{
    const PmuPortCfg &pcfg = *port.cfg;

    // Readiness checks: same order and classification as portAccess.
    if (port.isWrite) {
        if (pcfg.dataVecIn < 0 || !ports.vecIn[pcfg.dataVecIn].canPop()) {
            classify(CycleClass::kInputStarved);
            return false;
        }
    } else {
        if (pcfg.dataVecOut < 0 ||
            !ports.vecOut[pcfg.dataVecOut].canPush()) {
            classify(CycleClass::kOutputBackpressure);
            return false;
        }
    }

    Wavefront &wf = port.wfScratch;
    port.chain.issueInto(wf);

    if (!port.runConstsValid) {
        port.plan.addr.evalSlots(port.runConsts, [&](Word idx) {
            return ports.scalIn[idx].front();
        });
        port.runConstsValid = true;
    }
    Word base = port.runConsts[port.plan.addr.baseSlot];
    for (const auto &[level, slot] : port.plan.addr.terms)
        base += port.runConsts[slot] * static_cast<Word>(wf.ctr[level]);

    uint32_t access_mask = wf.mask;
    const uint32_t buf = port.bufIdx;

    if (port.isWrite) {
        const Vec &dv = ports.vecIn[pcfg.dataVecIn].front();
        access_mask &= dv.mask;
        if (pcfg.vecLinear) {
            if (Word *row = scratch_.rawRowMut(buf, base, lanes_)) {
                for (uint32_t l = 0; l < lanes_; ++l) {
                    if (!((access_mask >> l) & 1u))
                        continue;
                    Word w = dv.lane[l];
                    if (pcfg.accumulate)
                        w = fuExec(pcfg.accumOp, row[l], w, 0);
                    row[l] = w;
                }
            } else {
                for (uint32_t l = 0; l < lanes_; ++l) {
                    if (!((access_mask >> l) & 1u))
                        continue;
                    Word w = dv.lane[l];
                    if (pcfg.accumulate)
                        w = fuExec(pcfg.accumOp,
                                   scratch_.read(buf, base + l), w, 0);
                    scratch_.write(buf, base + l, w);
                }
            }
            stats_.wordsWritten +=
                static_cast<uint32_t>(std::popcount(access_mask));
        } else {
            access_mask &= 1u; // scalar access: lane 0 only
            if (access_mask) {
                Word w = dv.lane[0];
                if (Word *row = scratch_.rawRowMut(buf, base, 1)) {
                    if (pcfg.accumulate)
                        w = fuExec(pcfg.accumOp, row[0], w, 0);
                    row[0] = w;
                } else {
                    if (pcfg.accumulate)
                        w = fuExec(pcfg.accumOp,
                                   scratch_.read(buf, base), w, 0);
                    scratch_.write(buf, base, w);
                }
                ++stats_.wordsWritten;
            }
        }
        ports.vecIn[pcfg.dataVecIn].pop();
        ++stats_.writes;
    } else {
        Vec out;
        if (pcfg.vecLinear) {
            out.mask = access_mask;
            if (const Word *row = scratch_.rawRow(buf, base, lanes_)) {
                for (uint32_t l = 0; l < lanes_; ++l) {
                    if ((access_mask >> l) & 1u)
                        out.lane[l] = row[l];
                }
            } else {
                for (uint32_t l = 0; l < lanes_; ++l) {
                    if ((access_mask >> l) & 1u)
                        out.lane[l] = scratch_.read(buf, base + l);
                }
            }
        } else if (pcfg.broadcast) {
            out.mask = access_mask;
            if (const Word *row = scratch_.rawRow(buf, base, 1)) {
                const Word w = row[0];
                for (uint32_t l = 0; l < lanes_; ++l) {
                    if ((access_mask >> l) & 1u)
                        out.lane[l] = w;
                }
            } else {
                for (uint32_t l = 0; l < lanes_; ++l) {
                    if ((access_mask >> l) & 1u)
                        out.lane[l] = scratch_.read(buf, base);
                }
            }
        } else {
            access_mask &= 1u; // scalar access: lane 0 only
            out.mask = access_mask;
            if (access_mask) {
                if (const Word *row = scratch_.rawRow(buf, base, 1))
                    out.lane[0] = row[0];
                else
                    out.lane[0] = scratch_.read(buf, base);
            }
        }
        stats_.wordsRead +=
            static_cast<uint32_t>(std::popcount(access_mask));
        ports.vecOut[pcfg.dataVecOut].push(out);
        ++stats_.reads;
    }

    if (port.plan.conflictFree) {
        port.busy = 0;
        return true;
    }
    // Unprovable geometry (e.g. fewer banks than lanes): rebuild the
    // active address list and count conflicts exactly as portAccess.
    std::vector<uint32_t> &active = port.activeScratch;
    active.clear();
    for (uint32_t l = 0; l < lanes_; ++l) {
        if ((access_mask >> l) & 1u)
            active.push_back(pcfg.vecLinear ? base + l : base);
    }
    port.busy = scratch_.conflictCycles(active) - 1;
    return true;
}

} // namespace plast
