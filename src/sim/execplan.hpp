/**
 * @file
 * Config-specialized execution plans: the lowering step between
 * place-and-route and simulation. A mapped PcuCfg is compiled once
 * into a PcuExecPlan — a flat array of pre-resolved stage descriptors
 * plus the liveness summary from arch/config.hpp — so the per-cycle
 * path dispatches through monomorphic per-stage kernels over
 * contiguous lane arrays instead of re-interpreting the config
 * structures lane by lane.
 *
 * The plan is semantics-preserving by construction: every kernel is an
 * instantiation of mapKernel<OP>, whose body is the same inline
 * fuApply the interpreter's fuExec wraps, and operand resolution
 * mirrors PcuSim::operandValue exactly. Parity with SimMode::kInterp
 * is enforced bit-exactly (outputs, DRAM, cycle counts, checkpoint
 * tapes) by tests/test_specialized.cpp and the differential fuzzer.
 */

#ifndef PLAST_SIM_EXECPLAN_HPP
#define PLAST_SIM_EXECPLAN_HPP

#include <utility>
#include <vector>

#include "arch/config.hpp"
#include "base/types.hpp"
#include "sim/fuexec.hpp"

namespace plast
{

/** Which execution engine the fabric's datapaths run on. Orthogonal to
 *  SimOptions::Mode (the host scheduling axis): either engine runs
 *  under either scheduler, and all four combinations are bit-exact. */
enum class SimMode : uint8_t
{
    kInterp,      ///< re-interpret StageCfg per lane (reference)
    kSpecialized, ///< run pre-lowered ExecPlans (fast path)
};

const char *simModeName(SimMode mode);

/**
 * Monomorphic lane kernel for one kMap stage: dst[l] = OP(a,b,c) over
 * `lanes` contiguous elements. Pointers may alias (dstReg can be an
 * operand register); the per-lane semantics make exact aliasing safe.
 */
using MapKernel = void (*)(const Word *a, const Word *b, const Word *c,
                           Word *dst, uint32_t lanes);

/** Per-op kernel lookup. Returns nullptr for ops left to the generic
 *  fuExec fallback (libm-backed transcendentals, which a lane loop
 *  cannot vectorize anyway — and which keep the fallback path
 *  exercised by real apps). */
MapKernel mapKernelFor(FuOp op);

/**
 * One pre-lowered pipeline stage. Everything the executor needs is
 * resolved at plan-build time: operand descriptors are copied out of
 * the StageCfg, the op's arity and reduce/accum identity are looked up
 * once, and kMap stages carry their monomorphic kernel.
 */
struct StagePlan
{
    StageKind kind = StageKind::kMap;
    FuOp op = FuOp::kNop;
    uint8_t arity = 1;      ///< operands the op consumes (1..3)
    Operand a, b, c;
    uint8_t dstReg = 0;
    bool setsMask = false;  ///< kMap: AND nonzero result into lane mask
    uint8_t reduceDist = 1; ///< kReduceStep: partner distance
    uint8_t accLevel = 0;   ///< kAccum: counter level framing the fold
    int8_t shiftAmt = 0;    ///< kShift: lane shift distance
    Word identity = 0;      ///< reduce/accum identity element
    MapKernel kernel = nullptr; ///< kMap only; null -> generic fuExec
};

/**
 * The execution plan of one PCU: flat stage descriptors plus the
 * machinery-elision sets from the liveness analysis. Plans are derived
 * state — they are rebuilt from the FabricConfig on construction and
 * never checkpointed.
 */
struct PcuExecPlan
{
    std::vector<StagePlan> stages;
    /** Registers to reset when issuing into a recycled wavefront. */
    uint32_t touchedRegs = 0;
    std::vector<uint8_t> liveVecOuts;   ///< enabled vector out ports
    std::vector<uint8_t> liveScalOuts;  ///< enabled register scalar outs
    std::vector<uint8_t> countScalOuts; ///< enabled FlatMap count outs
    bool anyCoalesce = false; ///< any live vector out coalesces
};

/** Lower one mapped PCU config into its execution plan. */
PcuExecPlan buildPcuPlan(const PcuCfg &cfg);

// --------------------------------------------------------------------
// PMU port plans
// --------------------------------------------------------------------

/**
 * Pre-lowered form of a PMU port's scalar address program.
 *
 * The builder abstractly interprets the address stages over an affine
 * domain: counters are kept symbolic, everything else (immediates,
 * scalar inputs, values computed purely from them) is *run-constant* —
 * scalar inputs are popped only when a run completes, so they cannot
 * change between accesses of one run. When every stage preserves
 * affinity (add/sub always; mul/shl when one side is run-constant; any
 * op when all operands are run-constant), the whole program collapses
 * to
 *
 *     addr = slots[base] + sum_i slots[coeff[i]] * ctr[i]   (mod 2^32)
 *
 * where `slots` is a tiny straight-line program re-evaluated once per
 * run (lazily, so checkpoint restore just invalidates it). The
 * decomposition is exact because the integer FU ops wrap modulo 2^32,
 * a ring in which affine forms distribute. Programs that use counters
 * non-affinely keep the interpreted evalScalarStages path.
 */
struct PmuAddrPlan
{
    /** One run-constant scalar computation. Sources index immediates
     *  (the value itself), scalar-in ports, or earlier slots. */
    struct Slot
    {
        enum class Src : uint8_t { kZero, kImm, kScalarIn, kSlot };
        FuOp op = FuOp::kNop;
        Src aSrc = Src::kZero, bSrc = Src::kZero, cSrc = Src::kZero;
        Word aVal = 0, bVal = 0, cVal = 0;
    };

    bool affine = false;
    std::vector<Slot> slots; ///< slot 0 is the constant 0
    uint32_t baseSlot = 0;
    /** (counter level, coefficient slot) pairs; absent level = 0. */
    std::vector<std::pair<uint8_t, uint32_t>> terms;

    /** Evaluate the run-constant slot program into `out`.
     *  `scalIn(i)` supplies the current scalar-in head values. */
    template <typename ScalFn>
    void
    evalSlots(std::vector<Word> &out, ScalFn &&scalIn) const
    {
        out.resize(slots.size());
        for (size_t i = 0; i < slots.size(); ++i) {
            const Slot &s = slots[i];
            auto src = [&](Slot::Src k, Word v) -> Word {
                switch (k) {
                  case Slot::Src::kZero: return 0;
                  case Slot::Src::kImm: return v;
                  case Slot::Src::kScalarIn: return scalIn(v);
                  case Slot::Src::kSlot: return out[v];
                }
                return 0;
            };
            out[i] = fuExec(s.op, src(s.aSrc, s.aVal), src(s.bSrc, s.bVal),
                            src(s.cSrc, s.cVal));
        }
    }
};

/**
 * The execution plan of one PMU access port. `fastAccess` gates the
 * specialized per-access path in PmuSim::portAccess: it requires the
 * plain banked address mode (no FIFO/append/gather-scatter) and an
 * affine address program. `conflictFree` additionally proves, from the
 * banking mode and geometry alone, that every access of this port
 * occupies the banks for exactly one cycle, eliding the per-access
 * conflict count. Plans are derived state — rebuilt on construction,
 * never checkpointed.
 */
struct PmuPortPlan
{
    bool fastAccess = false;
    bool conflictFree = false;
    PmuAddrPlan addr;
};

/** Lower one PMU port's address path. `banks`/`lanes` come from the
 *  architecture parameters, `scratch` from the owning PMU's config.
 *  `isWrite` distinguishes the write ports (a broadcast *write* —
 *  every lane storing to one word — keeps the interpreted path). */
PmuPortPlan buildPmuPortPlan(const PmuPortCfg &cfg, bool isWrite,
                             const ScratchCfg &scratch, uint32_t banks,
                             uint32_t lanes);

} // namespace plast

#endif // PLAST_SIM_EXECPLAN_HPP
