/**
 * @file
 * Unit-side port wrappers around routed streams. Input ports bind to at
 * most one stream (or a pinned host constant for scalar arguments);
 * output ports may fan out to several streams (multicast through the
 * switch fabric) and can push only when every sink can accept.
 */

#ifndef PLAST_SIM_PORTS_HPP
#define PLAST_SIM_PORTS_HPP

#include <vector>

#include "sim/stream.hpp"

namespace plast
{

struct ScalarInPort
{
    ScalarStream *stream = nullptr;
    bool isConst = false;
    Word constVal = 0;
    /**
     * Pop cadence: an outer-loop counter export is produced once per
     * exporting-controller iteration but read by units that may run
     * several times per iteration; such ports pop only every
     * `popEvery`-th run (configured by the compiler).
     */
    uint32_t popEvery = 1;
    uint32_t popCount = 0;

    bool connected() const { return stream != nullptr || isConst; }
    bool
    canPop() const
    {
        return isConst || (stream && stream->canPop());
    }
    Word
    front() const
    {
        return isConst ? constVal : stream->front();
    }
    void
    pop()
    {
        if (isConst || !stream)
            return;
        if (++popCount >= popEvery) {
            popCount = 0;
            stream->pop();
        }
    }
};

struct VectorInPort
{
    VectorStream *stream = nullptr;

    bool connected() const { return stream != nullptr; }
    bool canPop() const { return stream && stream->canPop(); }
    const Vec &front() const { return stream->front(); }
    void pop() { stream->pop(); }
};

struct ControlInPort
{
    ControlStream *stream = nullptr;

    bool connected() const { return stream != nullptr; }
    bool hasToken() const { return stream && stream->canPop(); }
    void consume() { stream->pop(); }
};

template <typename StreamT, typename ValueT>
struct OutPort
{
    std::vector<StreamT *> sinks;

    bool connected() const { return !sinks.empty(); }

    bool
    canPush() const
    {
        for (auto *s : sinks) {
            if (!s->canPush())
                return false;
        }
        return true;
    }

    void
    push(const ValueT &v)
    {
        for (auto *s : sinks)
            s->push(v);
    }
};

using ScalarOutPort = OutPort<ScalarStream, Word>;
using VectorOutPort = OutPort<VectorStream, Vec>;
using ControlOutPort = OutPort<ControlStream, Token>;

} // namespace plast

#endif // PLAST_SIM_PORTS_HPP
