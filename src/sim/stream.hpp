/**
 * @file
 * Statically routed streams: the simulator's model of one configured bus
 * on the scalar / vector / control network (§3.3).
 *
 * A stream is a pipeline of `latency` switch-hop registers feeding a
 * receiver FIFO of `capacity` entries. Producers see two-phase
 * semantics: pushes and pops staged during evaluate() become visible at
 * commit(), matching synchronous RTL. A stream sustains one element per
 * cycle; backpressure appears when in-flight + queued elements reach
 * latency + capacity.
 *
 * Control channels are Stream<Token> with optional pre-loaded tokens,
 * which is how credits (§3.5) are expressed: a credit is a token on a
 * reverse channel with a nonzero initial count.
 *
 * Streams are SimObjects: under the activity-driven scheduler a stream
 * commits only on cycles where traffic was staged or an in-flight
 * element is due to arrive; each commit reports delivery/drain effects
 * so the scheduler can wake the consumer/producer unit, and re-arms a
 * timer for the next pending arrival.
 */

#ifndef PLAST_SIM_STREAM_HPP
#define PLAST_SIM_STREAM_HPP

#include <cstdint>
#include <string>

#include "base/logging.hpp"
#include "base/ring.hpp"
#include "base/stateio.hpp"
#include "base/types.hpp"
#include "sim/scheduler.hpp"
#include "sim/simobject.hpp"

namespace plast
{

/** A unit control pulse. */
struct Token
{
};

/** Tokens carry no payload — nothing on the checkpoint tape. */
template <class Ar>
void
io(Ar &, Token &)
{
}

/** Untyped stream interface: endpoint binding, statistics, and the
 *  scheduler bookkeeping shared by all element types. */
class StreamBase : public SimObject
{
  public:
    StreamBase(std::string name, uint32_t latency, uint32_t capacity)
        : name_(std::move(name)), latency_(latency == 0 ? 1 : latency),
          capacity_(capacity == 0 ? 1 : capacity)
    {
    }

    const std::string &name() const { return name_; }
    uint32_t latency() const { return latency_; }

    struct Stats
    {
        uint64_t pushes = 0; ///< elements staged by the producer
        uint64_t pops = 0;   ///< elements consumed
        /** Max in-flight + queued occupancy ever observed. */
        uint64_t peakOccupancy = 0;
        /** Total element-cycles spent stalled behind a full receiver
         *  FIFO (cycles delivered past the unobstructed arrival). */
        uint64_t fullStallCycles = 0;

        template <class Ar>
        void
        serializeState(Ar &ar)
        {
            io(ar, pushes);
            io(ar, pops);
            io(ar, peakOccupancy);
            io(ar, fullStallCycles);
        }
    };
    const Stats &stats() const { return stats_; }

    /** Endpoint binding (wake routing; set by the fabric). */
    void bindProducer(SimObject *u) { producer_ = u; }
    void bindConsumer(SimObject *u) { consumer_ = u; }
    void bindHostSlot(int32_t slot) { hostSlot_ = slot; }
    SimObject *producer() const { return producer_; }
    SimObject *consumer() const { return consumer_; }
    int32_t hostSlot() const { return hostSlot_; }

    virtual bool quiescent() const = 0;
    /** Receiver-FIFO elements currently poppable (diagnostics). */
    virtual size_t available() const = 0;

  protected:
    /** Request a commit at the next commit phase (push/pop staged). */
    void
    markDirty()
    {
        if (sched())
            sched()->streamDirty(this);
    }

    std::string name_;
    uint32_t latency_;
    uint32_t capacity_;
    Stats stats_;
    /** Last occupancy traced, so counter samples fire on change only. */
    uint64_t lastTracedOcc_ = 0;

  private:
    friend class Scheduler;
    SimObject *producer_ = nullptr;
    SimObject *consumer_ = nullptr;
    int32_t hostSlot_ = -1;     ///< argOut slot when host-bound
    bool inDirty_ = false;      ///< queued for the next commit phase
    Cycles armedAt_ = kNeverCycle; ///< pending arrival timer cycle
};

template <typename T>
class Stream : public StreamBase
{
  public:
    using StreamBase::StreamBase;

    /** Producer side: may we push this cycle? */
    bool
    canPush() const
    {
        return inFlight_.size() + queue_.size() + stagedPushes_ <
               latency_ + capacity_;
    }

    /** Stage a push; the element arrives `latency` cycles later. */
    void
    push(const T &v)
    {
        panic_if(!canPush(), "stream %s: push on full stream",
                 name_.c_str());
        pushBuf_.push_back(v);
        ++stagedPushes_;
        ++stats_.pushes;
        markDirty();
    }

    /** Consumer side: is an element available this cycle? */
    bool
    canPop() const
    {
        return queue_.size() > stagedPops_;
    }

    size_t
    available() const override
    {
        return queue_.size() > stagedPops_ ? queue_.size() - stagedPops_
                                           : 0;
    }

    const T &
    front() const
    {
        panic_if(!canPop(), "stream %s: front on empty stream",
                 name_.c_str());
        return queue_[stagedPops_];
    }

    void
    pop()
    {
        panic_if(!canPop(), "stream %s: pop on empty stream",
                 name_.c_str());
        ++stagedPops_;
        ++stats_.pops;
        markDirty();
    }

    /** Seed tokens (credits) before simulation starts. */
    void
    preload(const T &v)
    {
        queue_.push_back(v);
    }

    /** Commit phase: apply staged pops/pushes and advance arrivals. */
    CommitResult
    commit(Cycles now) override
    {
        CommitResult res;
        if (stagedPops_ > 0)
            res.drained = true;
        while (stagedPops_ > 0) {
            queue_.pop_front();
            --stagedPops_;
        }
        for (auto &v : pushBuf_)
            inFlight_.push_back({now + latency_, std::move(v)});
        pushBuf_.clear();
        stagedPushes_ = 0;
        while (!inFlight_.empty() && inFlight_.front().arrival <= now + 1 &&
               queue_.size() < capacity_) {
            stats_.fullStallCycles += now + 1 - inFlight_.front().arrival;
            queue_.push_back(std::move(inFlight_.front().value));
            inFlight_.pop_front();
            res.delivered = true;
        }
        uint64_t occ = inFlight_.size() + queue_.size();
        if (occ > stats_.peakOccupancy)
            stats_.peakOccupancy = occ;
        if (trace_ && occ != lastTracedOcc_) {
            lastTracedOcc_ = occ;
            traceCounter(trace_, traceTrack_, TraceName::kOccupancy,
                         now + 1, occ);
        }
        // A stalled arrival (due but the FIFO is full) needs no timer:
        // the consumer's pop dirties the stream and the same commit
        // both frees the slot and moves the element in.
        if (!inFlight_.empty() && inFlight_.front().arrival > now + 1)
            res.nextArrival = inFlight_.front().arrival - 1;
        return res;
    }

    /** Dense-tick compatibility: commit unconditionally. */
    void tick(Cycles now) { commit(now); }

    bool
    quiescent() const override
    {
        return inFlight_.empty() && queue_.empty() && stagedPushes_ == 0;
    }

    /**
     * Fault injection: silently lose one element (a switch-register
     * upset swallowing a token). Prefers the delivered queue. Returns
     * false when the stream is empty.
     */
    bool
    injectDrop()
    {
        if (!queue_.empty())
        {
            queue_.pop_front();
            return true;
        }
        if (!inFlight_.empty())
        {
            inFlight_.pop_front();
            return true;
        }
        return false;
    }

    /** Fault injection: replay (duplicate) the head element. */
    bool
    injectDuplicate()
    {
        if (!queue_.empty() && queue_.size() < capacity_)
        {
            queue_.push_back(queue_.front());
            return true;
        }
        if (!inFlight_.empty())
        {
            inFlight_.push_back(inFlight_.back());
            return true;
        }
        return false;
    }

    /**
     * Checkpoint the stream. Only legal at a cycle boundary, where
     * staged traffic is provably empty (every push/pop commits in the
     * same cycle it was staged).
     */
    template <class Ar>
    void
    serializeState(Ar &ar)
    {
        panic_if(stagedPushes_ != 0 || stagedPops_ != 0 ||
                     !pushBuf_.empty(),
                 "stream %s: checkpoint with staged traffic",
                 name_.c_str());
        io(ar, inFlight_);
        io(ar, queue_);
        io(ar, stats_);
    }

  private:
    struct InFlight
    {
        Cycles arrival;
        T value;

        template <class Ar>
        void
        serializeState(Ar &ar)
        {
            io(ar, arrival);
            io(ar, value);
        }
    };

    Ring<InFlight> inFlight_;
    Ring<T> queue_;
    Ring<T> pushBuf_;
    uint32_t stagedPushes_ = 0;
    uint32_t stagedPops_ = 0;
};

using ScalarStream = Stream<Word>;
using VectorStream = Stream<Vec>;
using ControlStream = Stream<Token>;

} // namespace plast

#endif // PLAST_SIM_STREAM_HPP
