/**
 * @file
 * Statically routed streams: the simulator's model of one configured bus
 * on the scalar / vector / control network (§3.3).
 *
 * A stream is a pipeline of `latency` switch-hop registers feeding a
 * receiver FIFO of `capacity` entries. Producers see two-phase
 * semantics: pushes and pops staged during evaluate() become visible at
 * commit(), matching synchronous RTL. A stream sustains one element per
 * cycle; backpressure appears when in-flight + queued elements reach
 * latency + capacity.
 *
 * Control channels are Stream<Token> with optional pre-loaded tokens,
 * which is how credits (§3.5) are expressed: a credit is a token on a
 * reverse channel with a nonzero initial count.
 */

#ifndef PLAST_SIM_STREAM_HPP
#define PLAST_SIM_STREAM_HPP

#include <cstdint>
#include <deque>
#include <string>

#include "base/logging.hpp"
#include "base/types.hpp"

namespace plast
{

/** A unit control pulse. */
struct Token
{
};

template <typename T>
class Stream
{
  public:
    Stream(std::string name, uint32_t latency, uint32_t capacity)
        : name_(std::move(name)), latency_(latency == 0 ? 1 : latency),
          capacity_(capacity == 0 ? 1 : capacity)
    {
    }

    const std::string &name() const { return name_; }
    uint32_t latency() const { return latency_; }

    /** Producer side: may we push this cycle? */
    bool
    canPush() const
    {
        return inFlight_.size() + queue_.size() + stagedPushes_ <
               latency_ + capacity_;
    }

    /** Stage a push; the element arrives `latency` cycles later. */
    void
    push(const T &v)
    {
        panic_if(!canPush(), "stream %s: push on full stream",
                 name_.c_str());
        pushBuf_.push_back(v);
        ++stagedPushes_;
    }

    /** Consumer side: is an element available this cycle? */
    bool
    canPop() const
    {
        return queue_.size() > stagedPops_;
    }

    size_t
    available() const
    {
        return queue_.size() > stagedPops_ ? queue_.size() - stagedPops_
                                           : 0;
    }

    const T &
    front() const
    {
        panic_if(!canPop(), "stream %s: front on empty stream",
                 name_.c_str());
        return queue_[stagedPops_];
    }

    void
    pop()
    {
        panic_if(!canPop(), "stream %s: pop on empty stream",
                 name_.c_str());
        ++stagedPops_;
    }

    /** Seed tokens (credits) before simulation starts. */
    void
    preload(const T &v)
    {
        queue_.push_back(v);
    }

    /** Commit phase: apply staged pops/pushes and advance arrivals. */
    void
    tick(Cycles now)
    {
        while (stagedPops_ > 0) {
            queue_.pop_front();
            --stagedPops_;
        }
        for (auto &v : pushBuf_)
            inFlight_.push_back({now + latency_, std::move(v)});
        pushBuf_.clear();
        stagedPushes_ = 0;
        while (!inFlight_.empty() && inFlight_.front().arrival <= now + 1 &&
               queue_.size() < capacity_) {
            queue_.push_back(std::move(inFlight_.front().value));
            inFlight_.pop_front();
        }
        totalPushed_ += 0; // stat updated in push path below if desired
    }

    bool
    quiescent() const
    {
        return inFlight_.empty() && queue_.empty() && stagedPushes_ == 0;
    }

  private:
    struct InFlight
    {
        Cycles arrival;
        T value;
    };

    std::string name_;
    uint32_t latency_;
    uint32_t capacity_;
    std::deque<InFlight> inFlight_;
    std::deque<T> queue_;
    std::deque<T> pushBuf_;
    uint32_t stagedPushes_ = 0;
    uint32_t stagedPops_ = 0;
    uint64_t totalPushed_ = 0;
};

using ScalarStream = Stream<Word>;
using VectorStream = Stream<Vec>;
using ControlStream = Stream<Token>;

} // namespace plast

#endif // PLAST_SIM_STREAM_HPP
