/**
 * @file
 * The whole-chip simulator: instantiates PCUs, PMUs, AGs, control boxes
 * and the memory system from a FabricConfig, wires the statically
 * routed streams to unit ports, and steps everything cycle by cycle
 * until the application's root controller completes.
 */

#ifndef PLAST_SIM_FABRIC_HPP
#define PLAST_SIM_FABRIC_HPP

#include <deque>
#include <memory>
#include <vector>

#include "arch/config.hpp"
#include "base/stats.hpp"
#include "sim/ctrlbox.hpp"
#include "sim/memsys.hpp"
#include "sim/pcu.hpp"
#include "sim/pmu.hpp"

namespace plast
{

class Fabric
{
  public:
    explicit Fabric(const FabricConfig &cfg);

    /** DRAM image access for the host runtime (load inputs / results). */
    DramModel &dram() { return mem_.dram(); }

    /**
     * Run until the root controller completes (plus drain) or maxCycles
     * elapse. Returns the cycle count at completion.
     * Fatals on deadlock (no progress for `deadlockWindow` cycles).
     */
    Cycles run(Cycles maxCycles = 500'000'000);

    /** Step a single cycle (tests drive this directly). */
    void step();

    Cycles now() const { return now_; }

    /** Host-visible scalar results (argOut registers). */
    const std::deque<Word> &argOut(uint32_t slot) const;

    /** Aggregate post-run statistics. */
    void dumpStats(StatSet &out) const;

    const PcuSim &pcu(uint32_t i) const { return *pcus_[i]; }
    const PmuSim &pmu(uint32_t i) const { return *pmus_[i]; }
    const AgSim &ag(uint32_t i) const { return *ags_[i]; }
    const MemSystem &mem() const { return mem_; }

    /** Total FU-lane operations executed by all PCUs (utilization). */
    uint64_t totalLaneOps() const;

  private:
    void buildChannels();
    UnitPorts *portsOf(const UnitRef &ref);
    bool anyProgress() const;
    void dumpDeadlock() const;

    FabricConfig cfg_;
    MemSystem mem_;
    std::vector<std::unique_ptr<PcuSim>> pcus_;
    std::vector<std::unique_ptr<PmuSim>> pmus_;
    std::vector<std::unique_ptr<AgSim>> ags_;
    std::vector<std::unique_ptr<CtrlBoxSim>> boxes_;

    std::vector<std::unique_ptr<ScalarStream>> scalarStreams_;
    std::vector<std::unique_ptr<VectorStream>> vectorStreams_;
    std::vector<std::unique_ptr<ControlStream>> controlStreams_;

    /** Host argOut capture: streams whose dst is the host unit. */
    struct HostSink
    {
        uint32_t slot;
        ScalarStream *stream;
    };
    std::vector<HostSink> hostSinks_;
    std::vector<std::deque<Word>> argOuts_;

    Cycles now_ = 0;
    uint32_t deadlockWindow_ = 50'000;
};

} // namespace plast

#endif // PLAST_SIM_FABRIC_HPP
