/**
 * @file
 * The whole-chip simulator: instantiates PCUs, PMUs, AGs, control boxes
 * and the memory system from a FabricConfig, wires the statically
 * routed streams to unit ports, and steps everything cycle by cycle
 * until the application's root controller completes.
 */

#ifndef PLAST_SIM_FABRIC_HPP
#define PLAST_SIM_FABRIC_HPP

#include <deque>
#include <memory>
#include <vector>

#include "arch/config.hpp"
#include "base/stats.hpp"
#include "sim/ctrlbox.hpp"
#include "sim/memsys.hpp"
#include "sim/pcu.hpp"
#include "sim/pmu.hpp"
#include "sim/scheduler.hpp"

namespace plast
{

/** Simulation-loop options (mode and window tuning). */
struct SimOptions
{
    enum class Mode
    {
        kActivity, ///< event-assisted scheduling (default)
        kDense,    ///< tick every unit and stream each cycle
    };
    Mode mode = Mode::kActivity;
    /** Dense mode only: fatal after this many cycles without progress.
     *  (Activity mode detects deadlock exactly: empty active set.) */
    uint32_t deadlockWindow = 50'000;
    /** Post-completion drain stops after this many quiet cycles. */
    uint32_t drainQuietWindow = 128;
    /** Hard cap on post-completion drain cycles. */
    Cycles drainMaxCycles = 100'000;
};

class Fabric
{
  public:
    explicit Fabric(const FabricConfig &cfg, SimOptions opts = {});

    /** DRAM image access for the host runtime (load inputs / results). */
    DramModel &dram() { return mem_.dram(); }

    /**
     * Run until the root controller completes (plus drain) or maxCycles
     * elapse. Returns the cycle count at completion. Fatals on deadlock:
     * in activity mode the moment the active set empties with the root
     * incomplete; in dense mode after `deadlockWindow` cycles without
     * progress.
     */
    Cycles run(Cycles maxCycles = 500'000'000);

    /** Step a single cycle (tests drive this directly). Both modes
     *  produce bit-identical per-cycle architectural state. */
    void step();

    Cycles now() const { return now_; }

    /** Host-visible scalar results (argOut registers). */
    const std::deque<Word> &argOut(uint32_t slot) const;

    /** Aggregate post-run statistics. */
    void dumpStats(StatSet &out) const;

    const PcuSim &pcu(uint32_t i) const { return *pcus_[i]; }
    const PmuSim &pmu(uint32_t i) const { return *pmus_[i]; }
    const AgSim &ag(uint32_t i) const { return *ags_[i]; }
    const MemSystem &mem() const { return mem_; }

    /** Total FU-lane operations executed by all PCUs (utilization). */
    uint64_t totalLaneOps() const;

  private:
    void buildChannels();
    void registerSimObjects();
    UnitPorts *portsOf(const UnitRef &ref);
    SimUnit *unitOf(const UnitRef &ref);
    bool anyProgress() const;
    void stepDense();
    void stepActivity();
    void drainHostSinks();
    Cycles runDense(Cycles maxCycles);
    Cycles runActivity(Cycles maxCycles);
    void dumpDeadlock() const;

    FabricConfig cfg_;
    SimOptions opts_;
    Scheduler sched_;
    MemSystem mem_;
    std::vector<std::unique_ptr<PcuSim>> pcus_;
    std::vector<std::unique_ptr<PmuSim>> pmus_;
    std::vector<std::unique_ptr<AgSim>> ags_;
    std::vector<std::unique_ptr<CtrlBoxSim>> boxes_;

    std::vector<std::unique_ptr<ScalarStream>> scalarStreams_;
    std::vector<std::unique_ptr<VectorStream>> vectorStreams_;
    std::vector<std::unique_ptr<ControlStream>> controlStreams_;

    /** Host argOut capture: streams whose dst is the host unit. */
    struct HostSink
    {
        uint32_t slot;
        ScalarStream *stream;
    };
    std::vector<HostSink> hostSinks_;
    std::vector<std::deque<Word>> argOuts_;

    Cycles now_ = 0;
};

} // namespace plast

#endif // PLAST_SIM_FABRIC_HPP
