/**
 * @file
 * The whole-chip simulator: instantiates PCUs, PMUs, AGs, control boxes
 * and the memory system from a FabricConfig, wires the statically
 * routed streams to unit ports, and steps everything cycle by cycle
 * until the application's root controller completes.
 */

#ifndef PLAST_SIM_FABRIC_HPP
#define PLAST_SIM_FABRIC_HPP

#include <deque>
#include <memory>
#include <vector>

#include "arch/config.hpp"
#include "base/stats.hpp"
#include "base/trace.hpp"
#include "sim/ctrlbox.hpp"
#include "sim/memsys.hpp"
#include "sim/pcu.hpp"
#include "sim/pmu.hpp"
#include "sim/scheduler.hpp"

namespace plast
{

/** Simulation-loop options (mode and window tuning). */
struct SimOptions
{
    enum class Mode
    {
        kActivity, ///< event-assisted scheduling (default)
        kDense,    ///< tick every unit and stream each cycle
    };
    Mode mode = Mode::kActivity;
    /** Dense mode only: fatal after this many cycles without progress.
     *  (Activity mode detects deadlock exactly: empty active set.) */
    uint32_t deadlockWindow = 50'000;
    /** Post-completion drain stops after this many quiet cycles. */
    uint32_t drainQuietWindow = 128;
    /** Hard cap on post-completion drain cycles. */
    Cycles drainMaxCycles = 100'000;
    /** Event tracing and utilization sampling (off by default). */
    TraceOptions trace;
};

class Fabric
{
  public:
    explicit Fabric(const FabricConfig &cfg, SimOptions opts = {});

    /** DRAM image access for the host runtime (load inputs / results). */
    DramModel &dram() { return mem_.dram(); }

    /**
     * Run until the root controller completes (plus drain) or maxCycles
     * elapse. Returns the cycle count at completion. Fatals on deadlock:
     * in activity mode the moment the active set empties with the root
     * incomplete; in dense mode after `deadlockWindow` cycles without
     * progress.
     */
    Cycles run(Cycles maxCycles = 500'000'000);

    /** Step a single cycle (tests drive this directly). Both modes
     *  produce bit-identical per-cycle architectural state. */
    void step();

    Cycles now() const { return now_; }

    /** Host-visible scalar results (argOut registers). */
    const std::deque<Word> &argOut(uint32_t slot) const;

    /** Aggregate post-run statistics. */
    void dumpStats(StatSet &out) const;

    const PcuSim &pcu(uint32_t i) const { return *pcus_[i]; }
    const PmuSim &pmu(uint32_t i) const { return *pmus_[i]; }
    const AgSim &ag(uint32_t i) const { return *ags_[i]; }
    const MemSystem &mem() const { return mem_; }

    // Nullable accessors (unit may be unused) and the mapped config,
    // for post-run analysis (bottleneck report) and tooling.
    const FabricConfig &config() const { return cfg_; }
    const PcuSim *pcuPtr(uint32_t i) const { return pcus_.at(i).get(); }
    const PmuSim *pmuPtr(uint32_t i) const { return pmus_.at(i).get(); }
    const AgSim *agPtr(uint32_t i) const { return ags_.at(i).get(); }
    const CtrlBoxSim *boxPtr(uint32_t i) const
    {
        return boxes_.at(i).get();
    }

    /** The event-trace sink (null when tracing is off). */
    const TraceSink *trace() const { return trace_.get(); }
    /** Export the trace as Chrome trace-event JSON. Fatal when tracing
     *  was not enabled for this fabric. */
    void writeTrace(std::ostream &os) const;
    /** Epoch-sampled per-class utilization time-series as CSV. */
    void writeUtilizationCsv(std::ostream &os) const;

    /** Total FU-lane operations executed by all PCUs (utilization). */
    uint64_t totalLaneOps() const;

  private:
    void buildChannels();
    void registerSimObjects();
    void setupTrace();
    void sampleEpoch();
    UnitPorts *portsOf(const UnitRef &ref);
    SimUnit *unitOf(const UnitRef &ref);
    bool anyProgress() const;
    void stepDense();
    void stepActivity();
    void drainHostSinks();
    Cycles runDense(Cycles maxCycles);
    Cycles runActivity(Cycles maxCycles);
    void dumpDeadlock() const;

    FabricConfig cfg_;
    SimOptions opts_;
    Scheduler sched_;
    MemSystem mem_;
    std::vector<std::unique_ptr<PcuSim>> pcus_;
    std::vector<std::unique_ptr<PmuSim>> pmus_;
    std::vector<std::unique_ptr<AgSim>> ags_;
    std::vector<std::unique_ptr<CtrlBoxSim>> boxes_;

    std::vector<std::unique_ptr<ScalarStream>> scalarStreams_;
    std::vector<std::unique_ptr<VectorStream>> vectorStreams_;
    std::vector<std::unique_ptr<ControlStream>> controlStreams_;

    /** Host argOut capture: streams whose dst is the host unit. */
    struct HostSink
    {
        uint32_t slot;
        ScalarStream *stream;
    };
    std::vector<HostSink> hostSinks_;
    std::vector<std::deque<Word>> argOuts_;

    // ---- observability -----------------------------------------------
    std::unique_ptr<TraceSink> trace_; ///< null when tracing is off
    uint16_t schedTrack_ = 0;

    /** One row of the utilization time-series: cycles spent per class
     *  (summed over units) and DRAM bus-busy cycles, within the epoch
     *  ending at `cycle`. */
    struct EpochRow
    {
        Cycles cycle;
        std::array<uint64_t, kNumCycleClasses> by;
        uint64_t dramBusy;
    };
    bool epochsOn_ = false;
    Cycles nextEpochAt_ = 0;
    std::vector<EpochRow> epochs_;
    std::array<uint64_t, kNumCycleClasses> prevClassSum_{};
    uint64_t prevDramBusy_ = 0;

    void classSums(std::array<uint64_t, kNumCycleClasses> &by,
                   uint64_t &dramBusy) const;

    Cycles now_ = 0;
};

} // namespace plast

#endif // PLAST_SIM_FABRIC_HPP
