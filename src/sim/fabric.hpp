/**
 * @file
 * The whole-chip simulator: instantiates PCUs, PMUs, AGs, control boxes
 * and the memory system from a FabricConfig, wires the statically
 * routed streams to unit ports, and steps everything cycle by cycle
 * until the application's root controller completes.
 */

#ifndef PLAST_SIM_FABRIC_HPP
#define PLAST_SIM_FABRIC_HPP

#include <deque>
#include <memory>
#include <vector>

#include "arch/config.hpp"
#include "base/cancel.hpp"
#include "base/logging.hpp"
#include "base/stateio.hpp"
#include "base/stats.hpp"
#include "base/status.hpp"
#include "base/trace.hpp"
#include "sim/ctrlbox.hpp"
#include "sim/memsys.hpp"
#include "sim/pcu.hpp"
#include "sim/pmu.hpp"
#include "sim/scheduler.hpp"

namespace plast
{

namespace resilience
{
class FaultInjector;
}

/** Simulation-loop options (mode and window tuning). */
struct SimOptions
{
    enum class Mode
    {
        kActivity, ///< event-assisted scheduling (default)
        kDense,    ///< tick every unit and stream each cycle
    };
    Mode mode = Mode::kActivity;
    /** Datapath engine (sim/execplan.hpp): re-interpret the config per
     *  lane, or run the pre-lowered execution plans. Orthogonal to
     *  `mode`; every combination is bit-exact with every other. */
    SimMode simMode = SimMode::kInterp;
    /** Dense mode only: fatal after this many cycles without progress.
     *  (Activity mode detects deadlock exactly: empty active set.) */
    uint32_t deadlockWindow = 50'000;
    /** Post-completion drain stops after this many quiet cycles. */
    uint32_t drainQuietWindow = 128;
    /** Hard cap on post-completion drain cycles. */
    Cycles drainMaxCycles = 100'000;
    /** Event tracing and utilization sampling (off by default). */
    TraceOptions trace;

    // ---- resilience knobs (all off by default) -----------------------
    /** Periodic checkpoint interval during runChecked (0 = off). The
     *  fabric keeps a ring of `keepCheckpoints` snapshots for rollback. */
    Cycles checkpointEvery = 0;
    /** Checkpoints retained in the rollback ring. */
    uint32_t keepCheckpoints = 2;
    /** Watchdog: runChecked reports kWatchdog when some busy unit has
     *  made no progress for this many cycles (0 = off). Catches hangs
     *  that still have background activity (e.g. a credit loop spinning
     *  while a stuck unit starves its consumers). */
    Cycles watchdogCycles = 0;
    /** Livelock: runChecked reports kLivelock when the root controller
     *  completes no iteration for this many cycles while the fabric is
     *  still active (0 = off). */
    Cycles livelockCycles = 0;
    /** How often (in simulated cycles) runChecked polls the armed
     *  CancelToken for cooperative cancellation / deadline expiry.
     *  Bounds the wall-clock reaction latency to roughly
     *  `cancelPollCycles / simulated-cycles-per-second`. */
    uint32_t cancelPollCycles = 2048;
};

/**
 * A cycle-exact fabric snapshot: the full architectural state as a flat
 * word tape (see base/stateio.hpp). Valid only for a fabric built from
 * the identical FabricConfig — `cfgHash` guards against mixing
 * placements. Restoring into a fresh or a running fabric resumes
 * bit-identically from `cycle`.
 */
struct FabricCheckpoint
{
    Cycles cycle = 0;
    uint64_t cfgHash = 0;
    std::vector<uint64_t> tape;
};

/** Outcome of a non-fatal run (Fabric::runChecked). */
struct RunResult
{
    Status status;    ///< ok, or why the run stopped early
    Cycles cycles = 0; ///< completion cycle (valid when status.ok())
    /** Earliest known corruption cycle when status is kUncorrectable
     *  (rollback must restart at or before this point). */
    Cycles corruptedAt = kNeverCycle;
};

class Fabric
{
  public:
    explicit Fabric(const FabricConfig &cfg, SimOptions opts = {});

    /** DRAM image access for the host runtime (load inputs / results). */
    DramModel &dram() { return mem_.dram(); }

    /**
     * Run until the root controller completes (plus drain) or maxCycles
     * elapse. Returns the cycle count at completion. Fatals on deadlock:
     * in activity mode the moment the active set empties with the root
     * incomplete; in dense mode after `deadlockWindow` cycles without
     * progress.
     */
    Cycles run(Cycles maxCycles = 500'000'000);

    /**
     * Non-fatal variant of run(): instead of fatal()ing, deadlock,
     * watchdog/livelock trips, ECC-uncorrectable latches and the
     * max-cycle cap come back as a typed Status. This is the entry
     * point the resilience layer drives; run() is a thin wrapper that
     * preserves the historical fatal messages.
     */
    RunResult runChecked(Cycles maxCycles = 500'000'000);

    /** Step a single cycle (tests drive this directly). Both modes
     *  produce bit-identical per-cycle architectural state. */
    void step();

    // ---- resilience --------------------------------------------------
    /** Snapshot the complete architectural state. Only legal at a cycle
     *  boundary (between step() calls), which is the only place the
     *  run loops call it. */
    FabricCheckpoint saveCheckpoint();
    /** Restore a snapshot taken from an identically configured fabric.
     *  Rolls the clock back to cp.cycle, drops ring checkpoints that
     *  are now in the future, and re-arms the scheduler. */
    Status restoreCheckpoint(const FabricCheckpoint &cp);
    /** The rollback ring filled by runChecked when
     *  SimOptions::checkpointEvery is set (oldest first). */
    const std::deque<FabricCheckpoint> &autoCheckpoints() const
    {
        return ckptRing_;
    }
    /** Attach (or detach with nullptr) a fault injector: clock-
     *  triggered events are applied at cycle boundaries, DRAM events
     *  through the memory system's fault hook. */
    void armFaults(resilience::FaultInjector *inj);
    /**
     * Arm (or disarm with nullptr) a cooperative cancellation token.
     * runChecked polls it every SimOptions::cancelPollCycles simulated
     * cycles and returns kCancelled / kDeadlineExceeded the moment the
     * token fires — the fabric state stays intact at the abort cycle,
     * so post-mortems (analyzeDeadlock / analyzeBottlenecks) and
     * checkpoints remain valid on a cancelled fabric.
     */
    void setCancelToken(const CancelToken *tok);
    /** Earliest ECC-uncorrectable corruption cycle across all PMU
     *  scratchpads (kNeverCycle when clean). */
    Cycles eccCorruptedAt() const;
    /** Streams still holding poppable elements (deadlock analysis). */
    std::vector<const StreamBase *> heldStreams() const;

    Cycles now() const { return now_; }

    /** Host-visible scalar results (argOut registers). */
    const std::deque<Word> &argOut(uint32_t slot) const;

    /** Aggregate post-run statistics. */
    void dumpStats(StatSet &out) const;

    const PcuSim &pcu(uint32_t i) const { return *pcus_[i]; }
    const PmuSim &pmu(uint32_t i) const { return *pmus_[i]; }
    const AgSim &ag(uint32_t i) const { return *ags_[i]; }
    const MemSystem &mem() const { return mem_; }

    // Nullable accessors (unit may be unused) and the mapped config,
    // for post-run analysis (bottleneck report) and tooling.
    const FabricConfig &config() const { return cfg_; }
    const PcuSim *pcuPtr(uint32_t i) const { return pcus_.at(i).get(); }
    const PmuSim *pmuPtr(uint32_t i) const { return pmus_.at(i).get(); }
    const AgSim *agPtr(uint32_t i) const { return ags_.at(i).get(); }
    const CtrlBoxSim *boxPtr(uint32_t i) const
    {
        return boxes_.at(i).get();
    }

    /** The event-trace sink (null when tracing is off). */
    const TraceSink *trace() const { return trace_.get(); }
    /** Export the trace as Chrome trace-event JSON. Fatal when tracing
     *  was not enabled for this fabric. */
    void writeTrace(std::ostream &os) const;
    /** Epoch-sampled per-class utilization time-series as CSV. */
    void writeUtilizationCsv(std::ostream &os) const;

    /** Total FU-lane operations executed by all PCUs (utilization). */
    uint64_t totalLaneOps() const;

  private:
    void buildChannels();
    void registerSimObjects();
    void setupTrace();
    void sampleEpoch();
    UnitPorts *portsOf(const UnitRef &ref);
    SimUnit *unitOf(const UnitRef &ref);
    bool anyProgress() const;
    void stepDense();
    void stepActivity();
    void drainHostSinks();
    RunResult runDenseChecked(Cycles maxCycles);
    RunResult runActivityChecked(Cycles maxCycles);
    void dumpDeadlock() const;

    // ---- resilience internals ----------------------------------------
    void applyDueFaults();
    void maybeAutoCheckpoint();
    /** Periodic watchdog / livelock scan; non-ok on a tripped timer. */
    Status scanHangs(const CtrlBoxSim &root);
    /** Periodic cancel-token poll; non-ok the window after the token
     *  fires (kCancelled) or its deadline passes (kDeadlineExceeded). */
    Status checkCancel();
    /** Non-ok when some PMU scratchpad latched an uncorrectable ECC
     *  error (fills RunResult::corruptedAt). */
    Status checkUncorrectable() const;

    /**
     * The complete architectural state, visited in a fixed order:
     * units in registration (= dense tick) order, then the memory
     * system, then every stream, then host-visible argOuts. The
     * scheduler's transient bookkeeping is deliberately excluded —
     * restoreCheckpoint() re-arms it wholesale (Scheduler::rearmAll).
     * Tracing/epoch observability state is not checkpointed either.
     */
    template <class Ar>
    void
    serializeFabricState(Ar &ar)
    {
        for (auto &u : pcus_) {
            if (u)
                u->serializeState(ar);
        }
        for (auto &u : pmus_) {
            if (u)
                u->serializeState(ar);
        }
        for (auto &u : ags_) {
            if (u)
                u->serializeState(ar);
        }
        for (auto &u : boxes_) {
            if (u)
                u->serializeState(ar);
        }
        auto agIndexOf = [this](const AgSim *ag) -> uint64_t {
            for (size_t i = 0; i < ags_.size(); ++i) {
                if (ags_[i].get() == ag)
                    return i;
            }
            panic("checkpoint: waiter references unknown AG");
        };
        auto agPtrOf = [this](uint64_t i) -> AgSim * {
            return ags_.at(i).get();
        };
        mem_.serializeState(ar, agIndexOf, agPtrOf);
        for (auto &s : scalarStreams_)
            s->serializeState(ar);
        for (auto &s : vectorStreams_)
            s->serializeState(ar);
        for (auto &s : controlStreams_)
            s->serializeState(ar);
        io(ar, argOuts_);
    }

    FabricConfig cfg_;
    SimOptions opts_;
    Scheduler sched_;
    MemSystem mem_;
    std::vector<std::unique_ptr<PcuSim>> pcus_;
    std::vector<std::unique_ptr<PmuSim>> pmus_;
    std::vector<std::unique_ptr<AgSim>> ags_;
    std::vector<std::unique_ptr<CtrlBoxSim>> boxes_;

    std::vector<std::unique_ptr<ScalarStream>> scalarStreams_;
    std::vector<std::unique_ptr<VectorStream>> vectorStreams_;
    std::vector<std::unique_ptr<ControlStream>> controlStreams_;

    /** Host argOut capture: streams whose dst is the host unit. */
    struct HostSink
    {
        uint32_t slot;
        ScalarStream *stream;
    };
    std::vector<HostSink> hostSinks_;
    std::vector<std::deque<Word>> argOuts_;

    // ---- observability -----------------------------------------------
    std::unique_ptr<TraceSink> trace_; ///< null when tracing is off
    uint16_t schedTrack_ = 0;

    /** One row of the utilization time-series: cycles spent per class
     *  (summed over units) and DRAM bus-busy cycles, within the epoch
     *  ending at `cycle`. */
    struct EpochRow
    {
        Cycles cycle;
        std::array<uint64_t, kNumCycleClasses> by;
        uint64_t dramBusy;
    };
    bool epochsOn_ = false;
    Cycles nextEpochAt_ = 0;
    std::vector<EpochRow> epochs_;
    std::array<uint64_t, kNumCycleClasses> prevClassSum_{};
    uint64_t prevDramBusy_ = 0;

    void classSums(std::array<uint64_t, kNumCycleClasses> &by,
                   uint64_t &dramBusy) const;

    // ---- resilience state --------------------------------------------
    uint64_t cfgHash_ = 0; ///< hash of the config text (checkpoint guard)
    resilience::FaultInjector *injector_ = nullptr;
    const CancelToken *cancel_ = nullptr;
    Cycles nextCancelCheckAt_ = 0;
    std::deque<FabricCheckpoint> ckptRing_;
    Cycles nextCheckpointAt_ = 0;
    Cycles nextHangScanAt_ = 0;
    uint64_t lastRootIters_ = 0;     ///< livelock: last observed progress
    Cycles lastRootProgressAt_ = 0;

    Cycles now_ = 0;
};

} // namespace plast

#endif // PLAST_SIM_FABRIC_HPP
