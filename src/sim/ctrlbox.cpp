#include "sim/ctrlbox.hpp"

#include <algorithm>

#include "base/logging.hpp"

namespace plast
{

CtrlBoxSim::CtrlBoxSim(const ArchParams &params, uint32_t index,
                       const ControlBoxCfg &cfg)
    : params_(params), index_(index), cfg_(cfg)
{
    // Scalar and control switches share a control block and counters;
    // port counts are generous because boxes are routing hotspots.
    ports.size(8, 0, 128, 16, 0, 128);
    chain_.configure(cfg_.chain, /*lanes=*/1);
    scalarRefs_ = chainScalarRefs(cfg_.chain);
}

void
CtrlBoxSim::step(Cycles now)
{
    progress_ = false;

    if (state_ == State::kIdle) {
        if (!tryStart(now))
            return;
        progress_ = true;
    }

    collectDones();

    if (state_ == State::kActive) {
        if (!chain_.done()) {
            if (tryIssueIteration(now))
                progress_ = true;
        } else {
            state_ = State::kFinishing;
        }
    }

    if (state_ == State::kFinishing) {
        if (completedIters_ == issued_) {
            if (canPushDone(cfg_.ctrl, ports)) {
                popScalars(scalarRefs_, ports);
                pushDone(cfg_.ctrl, ports);
                traceSpan(trace_, traceTrack_, TraceName::kRun, runStart_,
                          now + 1);
                traceInstant(trace_, traceTrack_, TraceName::kDone, now);
                state_ = State::kIdle;
                ++stats_.runs;
                progress_ = true;
            } else {
                classify(CycleClass::kOutputBackpressure);
            }
        } else {
            // Sweep issued; waiting on children's done tokens.
            classify(CycleClass::kCreditBlocked);
        }
    }
}

bool
CtrlBoxSim::tryStart(Cycles now)
{
    if (!tokensReady(cfg_.ctrl, ports, selfStarted_)) {
        if (!cfg_.ctrl.tokenIns.empty())
            classify(CycleClass::kCreditBlocked);
        return false;
    }
    if (!scalarsReady(scalarRefs_, ports)) {
        classify(CycleClass::kInputStarved);
        return false;
    }
    consumeTokens(cfg_.ctrl, ports);
    selfStarted_ = true;
    chain_.reset(resolveBounds(cfg_.chain, ports));
    issued_ = 0;
    completedIters_ = 0;
    runStart_ = now;
    if (!cfg_.ctrl.tokenIns.empty())
        traceInstant(trace_, traceTrack_, TraceName::kTokens, now);
    state_ = State::kActive;
    return true;
}

bool
CtrlBoxSim::tryIssueIteration(Cycles now)
{
    if (issued_ - completedIters_ >= cfg_.depth) {
        classify(CycleClass::kCreditBlocked);
        return false;
    }
    for (uint8_t port : cfg_.childStartOuts) {
        if (!ports.ctlOut[port].canPush()) {
            classify(CycleClass::kOutputBackpressure);
            return false;
        }
    }
    for (const auto &ex : cfg_.exports) {
        if (!ports.scalOut[ex.scalarOutPort].canPush()) {
            classify(CycleClass::kOutputBackpressure);
            return false;
        }
    }

    Wavefront wf;
    chain_.issueInto(wf);
    for (const auto &ex : cfg_.exports) {
        ports.scalOut[ex.scalarOutPort].push(
            static_cast<Word>(wf.ctr[ex.ctrIdx]));
    }
    for (uint8_t port : cfg_.childStartOuts)
        ports.ctlOut[port].push(Token{});
    traceInstant(trace_, traceTrack_, TraceName::kIteration, now);
    ++issued_;
    ++stats_.iterations;
    return true;
}

void
CtrlBoxSim::collectDones()
{
    if (cfg_.childDoneIns.empty())
        return;
    while (completedIters_ < issued_) {
        bool all = true;
        for (uint8_t port : cfg_.childDoneIns) {
            if (!ports.ctlIn[port].hasToken()) {
                all = false;
                break;
            }
        }
        if (!all)
            break;
        for (uint8_t port : cfg_.childDoneIns)
            ports.ctlIn[port].consume();
        ++completedIters_;
        progress_ = true;
    }
}

} // namespace plast
