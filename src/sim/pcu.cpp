#include "sim/pcu.hpp"

#include <algorithm>

#include "base/logging.hpp"
#include "sim/fuexec.hpp"

namespace plast
{

namespace
{

constexpr std::array<Word, kMaxLanes> kZeroLanes{};
constexpr auto kLaneIdLanes = [] {
    std::array<Word, kMaxLanes> a{};
    for (uint32_t i = 0; i < kMaxLanes; ++i)
        a[i] = i;
    return a;
}();

} // namespace

PcuSim::PcuSim(const ArchParams &params, uint32_t index, const PcuCfg &cfg,
               SimMode mode)
    : params_(params), index_(index), cfg_(cfg),
      lanes_(params.pcu.lanes), mode_(mode), plan_(buildPcuPlan(cfg))
{
    fatal_if(cfg_.stages.empty(), "PCU %u configured with no stages",
             index);
    fatal_if(cfg_.stages.size() > params.pcu.stages,
             "PCU %u: %zu stages exceed the %u physical stages", index,
             cfg_.stages.size(), params.pcu.stages);
    fatal_if(cfg_.chain.ctrs.size() > params.pcu.counters,
             "PCU %u: counter chain deeper than %u", index,
             params.pcu.counters);

    ports.size(params.pcu.scalarIns, params.pcu.vectorIns, 64,
               params.pcu.scalarOuts, params.pcu.vectorOuts, 64);

    chain_.configure(cfg_.chain, lanes_);
    pipe_.resize(cfg_.stages.size());
    wfPool_.reserve(pipe_.size());
    for (size_t s = 0; s < pipe_.size(); ++s)
        wfPool_.push_back(std::make_unique<Wavefront>());
    acc_.resize(cfg_.stages.size());
    coalesceBuf_.resize(params.pcu.vectorOuts);
    // Worst case before a coalesced emission: lanes-1 carried words
    // plus a full wavefront of incoming valid lanes.
    for (auto &buf : coalesceBuf_)
        buf.reserve(2 * lanes_);
    coalesceCount_.resize(params.pcu.vectorOuts, 0);

    stageRefs(cfg_.stages, scalarRefs_, vectorRefs_);
    for (uint8_t ref : chainScalarRefs(cfg_.chain))
        scalarRefs_.push_back(ref);
    std::sort(scalarRefs_.begin(), scalarRefs_.end());
    scalarRefs_.erase(std::unique(scalarRefs_.begin(), scalarRefs_.end()),
                      scalarRefs_.end());
}

std::unique_ptr<Wavefront>
PcuSim::grabSlot()
{
    panic_if(wfPool_.empty(), "PCU %u: wavefront pool exhausted", index_);
    std::unique_ptr<Wavefront> wf = std::move(wfPool_.back());
    wfPool_.pop_back();
    // Reset only the registers this config (or an injected fault) can
    // have dirtied: everything else provably still holds the zeros a
    // freshly constructed Wavefront would, so recycling is invisible.
    uint32_t dirty = plan_.touchedRegs | extraDirtyRegs_;
    while (dirty != 0) {
        uint32_t r = static_cast<uint32_t>(__builtin_ctz(dirty));
        dirty &= dirty - 1;
        wf->regs[r].fill(0);
    }
    return wf;
}

void
PcuSim::recycleSlot(std::unique_ptr<Wavefront> wf)
{
    wfPool_.push_back(std::move(wf));
}

void
PcuSim::step(Cycles now)
{
    progress_ = false;
    if (state_ == State::kIdle) {
        if (!tryStart(now))
            return;
    }
    advancePipeline(now);
}

bool
PcuSim::tryStart(Cycles now)
{
    if (!tokensReady(cfg_.ctrl, ports, selfStarted_)) {
        // A unit with gated token inputs is waiting on upstream
        // control; one with none (self-start, already fired) is done.
        if (!cfg_.ctrl.tokenIns.empty())
            classify(CycleClass::kCreditBlocked);
        return false;
    }
    if (!scalarsReady(scalarRefs_, ports)) {
        classify(CycleClass::kInputStarved);
        return false;
    }
    consumeTokens(cfg_.ctrl, ports);
    runStart_ = now;
    if (!cfg_.ctrl.tokenIns.empty())
        traceInstant(trace_, traceTrack_, TraceName::kTokens, now);
    selfStarted_ = true;
    chain_.reset(resolveBounds(cfg_.chain, ports));
    for (auto &buf : coalesceBuf_)
        buf.clear();
    std::fill(coalesceCount_.begin(), coalesceCount_.end(), 0);
    flushedCoalesce_ = false;
    state_ = chain_.done() && cfg_.chain.empty() == false
                 ? State::kDraining // zero-trip chain: nothing to issue
                 : State::kRunning;
    ++stats_.runs;
    progress_ = true;
    return true;
}

void
PcuSim::advancePipeline(Cycles now)
{
    const size_t S = pipe_.size();
    bool moved = false;

    // Retire from the final stage.
    if (pipe_[S - 1]) {
        if (tryRetire(*pipe_[S - 1], now)) {
            recycleSlot(std::move(pipe_[S - 1]));
            moved = true;
        } else {
            classify(CycleClass::kOutputBackpressure);
            return; // head-of-line blocked: hold everything
        }
    }

    // Bubble-compressing shift; stage s executes as a wavefront enters.
    for (size_t s = S - 1; s >= 1; --s) {
        if (!pipe_[s] && pipe_[s - 1]) {
            pipe_[s] = std::move(pipe_[s - 1]);
            applyStage(s, *pipe_[s]);
            moved = true;
        }
    }

    // Issue a new wavefront into stage 0.
    if (state_ == State::kRunning && !pipe_[0]) {
        if (chain_.done()) {
            state_ = State::kDraining;
        } else if (tryIssue(now)) {
            moved = true;
        } else {
            classify(CycleClass::kInputStarved);
        }
    }
    if (state_ == State::kRunning && chain_.done() && !pipe_[0])
        state_ = State::kDraining;

    // Run completes when the pipeline drains and coalesce buffers flush.
    if (state_ == State::kDraining) {
        bool empty = true;
        for (const auto &slot : pipe_) {
            if (slot)
                empty = false;
        }
        if (empty) {
            if (finishRun(now))
                moved = true;
            else
                classify(CycleClass::kOutputBackpressure);
        }
    }

    if (moved)
        progress_ = true;
}

bool
PcuSim::tryIssue(Cycles now)
{
    for (uint8_t ref : vectorRefs_) {
        panic_if(ref >= ports.vecIn.size(), "vector input %u out of range",
                 ref);
        if (!ports.vecIn[ref].canPop())
            return false;
    }
    std::unique_ptr<Wavefront> wf = grabSlot();
    chain_.issueInto(*wf);
    wf->issuedAt = now;
    for (uint8_t ref : vectorRefs_) {
        const Vec &v = ports.vecIn[ref].front();
        wf->vecIn[ref] = v;
        wf->mask &= v.mask;
        ports.vecIn[ref].pop();
    }
    applyStage(0, *wf);
    pipe_[0] = std::move(wf);
    ++stats_.wavefronts;
    if (state_ == State::kRunning && chain_.done())
        state_ = State::kDraining;
    return true;
}

Word
PcuSim::operandValue(const Operand &op, const Wavefront &wf,
                     uint32_t lane) const
{
    switch (op.kind) {
      case OperandKind::kNone:
        return 0;
      case OperandKind::kReg:
        return wf.regs[op.index][lane];
      case OperandKind::kCounter:
        return static_cast<Word>(wf.ctrLane(op.index, lane));
      case OperandKind::kScalarIn:
        return ports.scalIn[op.index].front();
      case OperandKind::kVectorIn:
        return wf.vecIn[op.index].lane[lane];
      case OperandKind::kImm:
        return op.imm;
      case OperandKind::kLaneId:
        return lane;
    }
    return 0;
}

const Word *
PcuSim::operandLanes(const Operand &op, const Wavefront &wf,
                     Word *scratch) const
{
    switch (op.kind) {
      case OperandKind::kNone:
        return kZeroLanes.data();
      case OperandKind::kReg:
        return wf.regs[op.index].data();
      case OperandKind::kVectorIn:
        return wf.vecIn[op.index].lane.data();
      case OperandKind::kLaneId:
        return kLaneIdLanes.data();
      case OperandKind::kImm:
        std::fill(scratch, scratch + lanes_, op.imm);
        return scratch;
      case OperandKind::kScalarIn:
        std::fill(scratch, scratch + lanes_,
                  ports.scalIn[op.index].front());
        return scratch;
      case OperandKind::kCounter: {
        if (static_cast<int8_t>(op.index) == wf.vecCtr) {
            int64_t base = wf.ctr[op.index];
            for (uint32_t l = 0; l < lanes_; ++l)
                scratch[l] = static_cast<Word>(
                    base + static_cast<int64_t>(l) * wf.vecStep);
        } else {
            std::fill(scratch, scratch + lanes_,
                      static_cast<Word>(wf.ctr[op.index]));
        }
        return scratch;
      }
    }
    return kZeroLanes.data();
}

void
PcuSim::applyStage(size_t idx, Wavefront &wf)
{
    if (mode_ == SimMode::kSpecialized) {
        applyStagePlanned(idx, wf);
        return;
    }
    const StageCfg &st = cfg_.stages[idx];
    switch (st.kind) {
      case StageKind::kMap: {
        for (uint32_t l = 0; l < lanes_; ++l) {
            Word a = operandValue(st.a, wf, l);
            Word b = operandValue(st.b, wf, l);
            Word c = operandValue(st.c, wf, l);
            Word r = fuExec(st.op, a, b, c);
            wf.regs[st.dstReg][l] = r;
            if (st.setsMask && wf.valid(l) && r == 0)
                wf.clearValid(l);
        }
        stats_.laneOps += wf.popcountValid();
        break;
      }
      case StageKind::kReduceStep: {
        const uint32_t dist = st.reduceDist;
        const Word ident = fuOpIdentity(st.op);
        uint32_t newValid = wf.mask;
        for (uint32_t i = 0; i + dist < lanes_; i += 2 * dist) {
            Word a = wf.valid(i) ? operandValue(st.a, wf, i) : ident;
            Word b = wf.valid(i + dist) ? operandValue(st.a, wf, i + dist)
                                        : ident;
            wf.regs[st.dstReg][i] = fuExec(st.op, a, b, 0);
            if (wf.valid(i) || wf.valid(i + dist))
                newValid |= (1u << i);
            ++stats_.laneOps;
        }
        wf.mask = newValid;
        break;
      }
      case StageKind::kAccum: {
        if (wf.firstAtLevel(st.accLevel)) {
            acc_[idx].fill(fuOpIdentity(st.op));
        }
        for (uint32_t l = 0; l < lanes_; ++l) {
            if (wf.valid(l)) {
                acc_[idx][l] = fuExec(st.op, acc_[idx][l],
                                      operandValue(st.a, wf, l), 0);
                ++stats_.laneOps;
            }
            wf.regs[st.dstReg][l] = acc_[idx][l];
        }
        // The accumulated value is meaningful on every lane; make lane 0
        // observable even if this tail wavefront masked it off.
        wf.setValid(0);
        break;
      }
      case StageKind::kShift: {
        for (uint32_t l = 0; l < lanes_; ++l) {
            int src = static_cast<int>(l) - st.shiftAmt;
            wf.regs[st.dstReg][l] =
                (src >= 0 && src < static_cast<int>(lanes_))
                    ? operandValue(st.a, wf, static_cast<uint32_t>(src))
                    : 0;
        }
        stats_.laneOps += lanes_;
        break;
      }
    }
}

void
PcuSim::applyStagePlanned(size_t idx, Wavefront &wf)
{
    const StagePlan &st = plan_.stages[idx];
    switch (st.kind) {
      case StageKind::kMap: {
        const Word *a = operandLanes(st.a, wf, opScratch_[0].data());
        const Word *b = st.arity >= 2
                            ? operandLanes(st.b, wf, opScratch_[1].data())
                            : kZeroLanes.data();
        const Word *c = st.arity >= 3
                            ? operandLanes(st.c, wf, opScratch_[2].data())
                            : kZeroLanes.data();
        Word *dst = wf.regs[st.dstReg].data();
        if (st.kernel != nullptr) {
            st.kernel(a, b, c, dst, lanes_);
        } else {
            for (uint32_t l = 0; l < lanes_; ++l)
                dst[l] = fuExec(st.op, a[l], b[l], c[l]);
        }
        if (st.setsMask) {
            // Clearing an already-invalid lane is a no-op, so the
            // unconditional sweep matches the interpreter's
            // valid-guarded clearValid exactly.
            uint32_t m = wf.mask;
            for (uint32_t l = 0; l < lanes_; ++l) {
                if (dst[l] == 0)
                    m &= ~(1u << l);
            }
            wf.mask = m;
        }
        stats_.laneOps += wf.popcountValid();
        break;
      }
      case StageKind::kReduceStep: {
        const uint32_t dist = st.reduceDist;
        const Word ident = st.identity;
        const Word *src = operandLanes(st.a, wf, opScratch_[0].data());
        Word *dst = wf.regs[st.dstReg].data();
        uint32_t newValid = wf.mask;
        for (uint32_t i = 0; i + dist < lanes_; i += 2 * dist) {
            // In-place (src == dst) is safe: writes land at i, later
            // reads only at indices > i — same order the interpreter
            // observes.
            Word a = wf.valid(i) ? src[i] : ident;
            Word b = wf.valid(i + dist) ? src[i + dist] : ident;
            dst[i] = fuApply(st.op, a, b, 0);
            if (wf.valid(i) || wf.valid(i + dist))
                newValid |= (1u << i);
            ++stats_.laneOps;
        }
        wf.mask = newValid;
        break;
      }
      case StageKind::kAccum: {
        if (wf.firstAtLevel(st.accLevel))
            acc_[idx].fill(st.identity);
        const Word *src = operandLanes(st.a, wf, opScratch_[0].data());
        Word *dst = wf.regs[st.dstReg].data();
        Word *acc = acc_[idx].data();
        for (uint32_t l = 0; l < lanes_; ++l) {
            if (wf.valid(l)) {
                acc[l] = fuApply(st.op, acc[l], src[l], 0);
                ++stats_.laneOps;
            }
            dst[l] = acc[l];
        }
        wf.setValid(0);
        break;
      }
      case StageKind::kShift: {
        const Word *src = operandLanes(st.a, wf, opScratch_[0].data());
        Word *dst = wf.regs[st.dstReg].data();
        // Sequential lane order is load-bearing when src == dst and
        // shiftAmt > 0: lane l reads the value lane l-shift just wrote,
        // exactly as the interpreter does.
        for (uint32_t l = 0; l < lanes_; ++l) {
            int s = static_cast<int>(l) - st.shiftAmt;
            dst[l] = (s >= 0 && s < static_cast<int>(lanes_))
                         ? src[static_cast<uint32_t>(s)]
                         : 0;
        }
        stats_.laneOps += lanes_;
        break;
      }
    }
}

bool
PcuSim::tryRetire(const Wavefront &wf, Cycles now)
{
    // Phase 1: every triggered emission must be able to push. Only the
    // plan's live ports are scanned; disabled ports provably never
    // emit.
    for (uint8_t p : plan_.liveVecOuts) {
        const VecOutCfg &vo = cfg_.vecOuts[p];
        bool trig = vo.cond.always || wf.lastAtLevel(vo.cond.level);
        if (!trig)
            continue;
        if (vo.coalesce) {
            size_t incoming = 0;
            for (uint32_t l = 0; l < lanes_; ++l)
                incoming += wf.valid(l) ? 1 : 0;
            if (coalesceBuf_[p].size() + incoming >= lanes_ &&
                !ports.vecOut[p].canPush())
                return false;
        } else if (!ports.vecOut[p].canPush()) {
            return false;
        }
    }
    for (uint8_t p : plan_.liveScalOuts) {
        const ScalOutCfg &so = cfg_.scalOuts[p];
        bool trig = so.cond.always || wf.lastAtLevel(so.cond.level);
        if (trig && !ports.scalOut[p].canPush())
            return false;
    }

    // Phase 2: perform the emissions.
    for (uint8_t p : plan_.liveVecOuts) {
        const VecOutCfg &vo = cfg_.vecOuts[p];
        bool trig = vo.cond.always || wf.lastAtLevel(vo.cond.level);
        if (!trig)
            continue;
        if (vo.coalesce) {
            for (uint32_t l = 0; l < lanes_; ++l) {
                if (wf.valid(l)) {
                    coalesceBuf_[p].push_back(wf.regs[vo.srcReg][l]);
                    ++coalesceCount_[p];
                }
            }
            if (coalesceBuf_[p].size() >= lanes_) {
                Vec v;
                for (uint32_t l = 0; l < lanes_; ++l) {
                    v.lane[l] = coalesceBuf_[p][l];
                    v.setValid(l);
                }
                coalesceBuf_[p].erase(coalesceBuf_[p].begin(),
                                      coalesceBuf_[p].begin() + lanes_);
                ports.vecOut[p].push(v);
            }
        } else {
            Vec v;
            v.mask = wf.mask & ((lanes_ >= 32) ? 0xffffffffu
                                               : ((1u << lanes_) - 1));
            for (uint32_t l = 0; l < lanes_; ++l)
                v.lane[l] = wf.regs[vo.srcReg][l];
            ports.vecOut[p].push(v);
        }
    }
    for (uint8_t p : plan_.liveScalOuts) {
        const ScalOutCfg &so = cfg_.scalOuts[p];
        bool trig = so.cond.always || wf.lastAtLevel(so.cond.level);
        if (trig)
            ports.scalOut[p].push(wf.regs[so.srcReg][0]);
    }
    traceAsync(trace_, traceTrack_, TraceName::kWavefront, wf.issuedAt,
               now + 1, ++retiredWf_);
    return true;
}

bool
PcuSim::finishRun(Cycles now)
{
    // Flush partial coalesce buffers, then counts, then done tokens.
    if (!flushedCoalesce_) {
        if (plan_.anyCoalesce) {
            for (size_t p = 0; p < coalesceBuf_.size(); ++p) {
                if (coalesceBuf_[p].empty())
                    continue;
                if (!ports.vecOut[p].canPush())
                    return false;
            }
            for (size_t p = 0; p < coalesceBuf_.size(); ++p) {
                if (coalesceBuf_[p].empty())
                    continue;
                Vec v;
                for (uint32_t l = 0; l < coalesceBuf_[p].size(); ++l) {
                    v.lane[l] = coalesceBuf_[p][l];
                    v.setValid(l);
                }
                coalesceBuf_[p].clear();
                ports.vecOut[p].push(v);
            }
        }
        flushedCoalesce_ = true;
    }

    // FlatMap size outputs.
    for (uint8_t p : plan_.countScalOuts) {
        if (!ports.scalOut[p].canPush())
            return false;
    }
    if (!canPushDone(cfg_.ctrl, ports))
        return false;

    for (uint8_t p : plan_.countScalOuts) {
        const ScalOutCfg &so = cfg_.scalOuts[p];
        ports.scalOut[p].push(static_cast<Word>(
            coalesceCount_[static_cast<size_t>(so.countOfVecOut)]));
    }
    popScalars(scalarRefs_, ports);
    pushDone(cfg_.ctrl, ports);
    traceSpan(trace_, traceTrack_, TraceName::kRun, runStart_, now + 1);
    traceInstant(trace_, traceTrack_, TraceName::kDone, now);
    state_ = State::kIdle;
    return true;
}

bool
PcuSim::injectRegFlip(uint32_t reg, uint32_t lane, uint32_t bit)
{
    if (lanes_ == 0)
        return false;
    reg %= kMaxRegs;
    lane %= lanes_;
    bit %= 32;
    // Target the oldest occupied pipeline latch: that wavefront's
    // registers have the most downstream consumers left.
    for (size_t s = pipe_.size(); s-- > 0;)
    {
        if (!pipe_[s])
            continue;
        pipe_[s]->regs[reg][lane] ^= Word{1} << bit;
        // The flipped register may now be nonzero outside the config's
        // touched set; widen the pool reset set permanently.
        extraDirtyRegs_ |= 1u << reg;
        return true;
    }
    return false;
}

} // namespace plast
