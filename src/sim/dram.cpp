#include "sim/dram.hpp"

#include "base/logging.hpp"

namespace plast
{

DramChannel::DramChannel(const DramParams &params, uint32_t index)
    : params_(params), index_(index), banks_(params.banksPerChannel)
{
}

void
DramChannel::submit(const DramReq &req, Cycles now)
{
    panic_if(!canSubmit(), "DRAM channel %u queue overflow", index_);
    queue_.push_back({now, req});
}

void
DramChannel::rowOf(Addr lineAddr, uint32_t &bank, int64_t &row) const
{
    // Strip the channel-interleave bits: line index local to this
    // channel, then split into rows of rowBytes striped across banks.
    Addr local = lineAddr / (params_.burstBytes * params_.channels);
    Addr lines_per_row = params_.rowBytes / params_.burstBytes;
    bank = static_cast<uint32_t>((local / lines_per_row) %
                                 params_.banksPerChannel);
    row = static_cast<int64_t>(local /
                               (lines_per_row * params_.banksPerChannel));
}

void
DramChannel::step(Cycles now, std::vector<DramReq> &completed)
{
    // Deliver due responses.
    while (!responses_.empty() && responses_.front().readyAt <= now) {
        completed.push_back(responses_.front().req);
        responses_.pop_front();
    }

    if (queue_.empty())
        return;

    // FR-FCFS: oldest row-hit whose bank is ready; else oldest ready.
    size_t pick = queue_.size();
    for (size_t i = 0; i < queue_.size(); ++i) {
        uint32_t bank;
        int64_t row;
        rowOf(queue_[i].req.lineAddr, bank, row);
        if (banks_[bank].readyAt > now)
            continue;
        if (banks_[bank].openRow == row) {
            pick = i;
            break;
        }
        if (pick == queue_.size())
            pick = i;
    }
    if (pick == queue_.size())
        return; // all target banks busy

    Pending p = queue_[pick];
    queue_.erase(queue_.begin() + static_cast<long>(pick));

    uint32_t bank;
    int64_t row;
    rowOf(p.req.lineAddr, bank, row);
    Bank &bk = banks_[bank];

    Cycles t0 = std::max(now, bk.readyAt);
    Cycles data_start;
    if (bk.openRow == row) {
        data_start = std::max(t0 + params_.tCas, busFreeAt_);
        ++stats_.rowHits;
    } else if (bk.openRow >= 0) {
        // Precharge the open row, activate the new one.
        data_start =
            std::max(t0 + params_.tRp + params_.tRcd + params_.tCas,
                     busFreeAt_);
        ++stats_.rowConflicts;
    } else {
        data_start = std::max(t0 + params_.tRcd + params_.tCas,
                              busFreeAt_);
        ++stats_.rowMisses;
    }
    bool was_hit = (bk.openRow == row);
    bk.openRow = row;
    // Row hits pipeline column commands at the burst rate (tCCD); a
    // fresh activate keeps the bank busy until tRAS allows the next
    // precharge.
    bk.readyAt = was_hit ? t0 + params_.tBurst
                         : std::max(data_start, t0 + params_.tRas);

    stats_.busBusyCycles += params_.tBurst;
    busFreeAt_ = data_start + params_.tBurst;
    responses_.push_back({data_start + params_.tBurst, p.req});
    if (p.req.write)
        ++stats_.writes;
    else
        ++stats_.reads;
}

DramModel::DramModel(const DramParams &params) : params_(params)
{
    channels_.reserve(params.channels);
    for (uint32_t i = 0; i < params.channels; ++i)
        channels_.emplace_back(params, i);
}

uint32_t
DramModel::channelOf(Addr lineAddr) const
{
    return static_cast<uint32_t>((lineAddr / params_.burstBytes) %
                                 params_.channels);
}

void
DramModel::step(Cycles now, std::vector<DramReq> &completed)
{
    for (auto &ch : channels_)
        ch.step(now, completed);
}

bool
DramModel::quiescent() const
{
    for (const auto &ch : channels_) {
        if (!ch.quiescent())
            return false;
    }
    return true;
}

void
DramModel::reserve(Addr bytes)
{
    Addr words = (bytes + 3) / 4;
    if (words > image_.size())
        image_.resize(words, 0);
}

Word
DramModel::readWord(Addr byteAddr) const
{
    Addr w = byteAddr / 4;
    panic_if(w >= image_.size(), "DRAM read beyond image: %llu",
             static_cast<unsigned long long>(byteAddr));
    return image_[w];
}

void
DramModel::writeWord(Addr byteAddr, Word w)
{
    Addr idx = byteAddr / 4;
    panic_if(idx >= image_.size(), "DRAM write beyond image: %llu",
             static_cast<unsigned long long>(byteAddr));
    image_[idx] = w;
}

} // namespace plast
