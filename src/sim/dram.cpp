#include "sim/dram.hpp"

#include "base/logging.hpp"

namespace plast
{

DramChannel::DramChannel(const DramParams &params, uint32_t index)
    : params_(params), index_(index), banks_(params.banksPerChannel)
{
}

void
DramChannel::submit(const DramReq &req, Cycles now)
{
    panic_if(!canSubmit(), "DRAM channel %u queue overflow", index_);
    Pending p{now, req, 0, 0};
    rowOf(req.lineAddr, p.bank, p.row);
    queue_.push_back(p);
    // A new request may target an idle bank: re-enable the scan.
    nextIssueAt_ = 0;
}

void
DramChannel::rowOf(Addr lineAddr, uint32_t &bank, int64_t &row) const
{
    // Strip the channel-interleave bits: line index local to this
    // channel, then split into rows of rowBytes striped across banks.
    Addr local = lineAddr / (params_.burstBytes * params_.channels);
    Addr lines_per_row = params_.rowBytes / params_.burstBytes;
    bank = static_cast<uint32_t>((local / lines_per_row) %
                                 params_.banksPerChannel);
    row = static_cast<int64_t>(local /
                               (lines_per_row * params_.banksPerChannel));
}

void
DramChannel::step(Cycles now, std::vector<DramReq> &completed)
{
    // Deliver due responses.
    while (!responses_.empty() && responses_.front().readyAt <= now) {
        completed.push_back(responses_.front().req);
        responses_.pop_front();
    }

    if (queue_.empty() || now < nextIssueAt_)
        return;

    // FR-FCFS: oldest row-hit whose bank is ready; else oldest ready.
    // The scan is pure, so when every target bank is busy we can skip
    // re-scanning until the earliest of their ready times.
    size_t pick = queue_.size();
    Cycles earliest = ~Cycles{0};
    for (size_t i = 0; i < queue_.size(); ++i) {
        const Pending &q = queue_[i];
        if (banks_[q.bank].readyAt > now) {
            earliest = std::min(earliest, banks_[q.bank].readyAt);
            continue;
        }
        if (banks_[q.bank].openRow == q.row) {
            pick = i;
            break;
        }
        if (pick == queue_.size())
            pick = i;
    }
    if (pick == queue_.size()) {
        nextIssueAt_ = earliest; // all target banks busy until then
        return;
    }

    Pending p = queue_[pick];
    queue_.erase(queue_.begin() + static_cast<long>(pick));

    uint32_t bank = p.bank;
    int64_t row = p.row;
    Bank &bk = banks_[bank];

    Cycles t0 = std::max(now, bk.readyAt);
    Cycles data_start;
    if (bk.openRow == row) {
        data_start = std::max(t0 + params_.tCas, busFreeAt_);
        ++stats_.rowHits;
    } else if (bk.openRow >= 0) {
        // Precharge the open row, activate the new one.
        data_start =
            std::max(t0 + params_.tRp + params_.tRcd + params_.tCas,
                     busFreeAt_);
        ++stats_.rowConflicts;
    } else {
        data_start = std::max(t0 + params_.tRcd + params_.tCas,
                              busFreeAt_);
        ++stats_.rowMisses;
    }
    bool was_hit = (bk.openRow == row);
    bk.openRow = row;
    // Row hits pipeline column commands at the burst rate (tCCD); a
    // fresh activate keeps the bank busy until tRAS allows the next
    // precharge.
    bk.readyAt = was_hit ? t0 + params_.tBurst
                         : std::max(data_start, t0 + params_.tRas);

    stats_.busBusyCycles += params_.tBurst;
    busFreeAt_ = data_start + params_.tBurst;
    responses_.push_back({data_start + params_.tBurst, p.req});
    if (p.req.write)
        ++stats_.writes;
    else
        ++stats_.reads;
}

DramModel::DramModel(const DramParams &params) : params_(params)
{
    channels_.reserve(params.channels);
    for (uint32_t i = 0; i < params.channels; ++i)
        channels_.emplace_back(params, i);
}


void
DramModel::step(Cycles now, std::vector<DramReq> &completed)
{
    for (auto &ch : channels_)
        ch.step(now, completed);
}

bool
DramModel::quiescent() const
{
    for (const auto &ch : channels_) {
        if (!ch.quiescent())
            return false;
    }
    return true;
}

void
DramModel::reserve(Addr bytes)
{
    Addr words = (bytes + 3) / 4;
    if (words > image_.size())
        image_.resize(words, 0);
}



} // namespace plast
