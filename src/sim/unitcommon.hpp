/**
 * @file
 * Machinery shared by all configurable units (PCU, PMU ports, AGs,
 * control boxes): the common SimUnit tick adapter, port bundles, token
 * gating, dynamic-bound resolution and scalar-datapath evaluation.
 */

#ifndef PLAST_SIM_UNITCOMMON_HPP
#define PLAST_SIM_UNITCOMMON_HPP

#include <vector>

#include "arch/config.hpp"
#include "base/stateio.hpp"
#include "sim/ports.hpp"
#include "sim/simobject.hpp"
#include "sim/stall.hpp"
#include "sim/wavefront.hpp"

namespace plast
{

/** The full IO bundle of one unit. */
struct UnitPorts
{
    std::vector<ScalarInPort> scalIn;
    std::vector<VectorInPort> vecIn;
    std::vector<ControlInPort> ctlIn;
    std::vector<ScalarOutPort> scalOut;
    std::vector<VectorOutPort> vecOut;
    std::vector<ControlOutPort> ctlOut;

    void
    size(uint32_t si, uint32_t vi, uint32_t ci, uint32_t so, uint32_t vo,
         uint32_t co)
    {
        scalIn.resize(si);
        vecIn.resize(vi);
        ctlIn.resize(ci);
        scalOut.resize(so);
        vecOut.resize(vo);
        ctlOut.resize(co);
    }
};

/**
 * Base of every configurable unit model (PCU, PMU, AG, control box):
 * one IO port bundle plus the SimObject activity adapter. A unit's
 * step() performs one cycle of its state machine and records in
 * progress_ whether any architectural state moved; under the
 * activity-driven scheduler that report doubles as the sleep decision,
 * because a unit that made no progress is, by construction, blocked on
 * a stream event (input arrival, output drain) or a memory-system
 * callback — exactly the events that re-wake it.
 */
class SimUnit : public SimObject
{
  public:
    UnitPorts ports;

    /** One cycle of the unit's state machine; must set progress_. */
    virtual void step(Cycles now) = 0;
    /** Mid-run (diagnostics and deadlock dumps). */
    virtual bool busy() const = 0;
    bool madeProgress() const { return progress_; }

    /** Per-cycle stall-attribution ledger (see stall.hpp). Updated only
     *  through evaluate(); driving step() directly bypasses it. */
    const CycleAcct &acct() const { return acct_; }

    /**
     * The accounting tick around step(): cycles the scheduler skipped
     * since the last evaluation are attributed to the class that put
     * the unit to sleep, then this cycle is classified — kActive on
     * progress, the step's classify() reason otherwise, kIdle when the
     * step never reached a blocking point.
     */
    Activity
    evaluate(Cycles now) final
    {
        if (lastEval_ != kNeverCycle && now > lastEval_ + 1) {
            uint64_t gap = now - lastEval_ - 1;
            acct_.slept += gap;
            acct_.sleptBy[static_cast<size_t>(lastClass_)] += gap;
        }
        lastEval_ = now;
        class_ = CycleClass::kIdle;
        classSet_ = false;
        classForced_ = false;
        if (stuck_) {
            // Hard-faulted unit: architecturally frozen. Inputs pile up
            // behind it and downstream consumers starve, which is what
            // the watchdog / deadlock detectors then observe.
            progress_ = false;
            ++acct_.stepped;
            ++acct_.by[static_cast<size_t>(CycleClass::kIdle)];
            lastClass_ = CycleClass::kIdle;
            return Activity::kBlocked;
        }
        step(now);
        ++acct_.stepped;
        CycleClass c = classForced_ ? class_
                       : progress_ ? CycleClass::kActive
                                   : class_;
        ++acct_.by[static_cast<size_t>(c)];
        lastClass_ = c;
        if (progress_)
            lastProgressAt_ = now;
        return progress_ ? Activity::kActive : Activity::kBlocked;
    }

    /** Hard-fault a unit: it stops evaluating its state machine. */
    void setStuck(bool s) { stuck_ = s; }
    bool stuck() const { return stuck_; }

    /** Cycle of the most recent progress-making evaluation (0 before
     *  the first); the control watchdogs compare this against `now`. */
    Cycles lastProgressAt() const { return lastProgressAt_; }

    /**
     * Checkpoint the state shared by every unit class: the input-port
     * pop phases and the accounting ledger. Derived classes call this
     * from their serializeState() before their own fields.
     */
    template <class Ar>
    void
    serializeUnitBase(Ar &ar)
    {
        for (ScalarInPort &p : ports.scalIn)
            io(ar, p.popCount);
        io(ar, acct_);
        io(ar, lastEval_);
        io(ar, lastClass_);
        io(ar, progress_);
        io(ar, lastProgressAt_);
    }

  protected:
    /** Record why this cycle is blocked; the first reason reached in
     *  the step wins (it is the gating condition actually hit). Ignored
     *  if the unit ends the cycle with progress. */
    void
    classify(CycleClass c)
    {
        if (!classSet_) {
            class_ = c;
            classSet_ = true;
        }
    }

    /** Classify even though progress_ is set (bank-conflict busy
     *  cycles: the port moved, but only to burn a conflict cycle). */
    void
    classifyForce(CycleClass c)
    {
        class_ = c;
        classSet_ = true;
        classForced_ = true;
    }

    bool progress_ = false;

  private:
    CycleAcct acct_;
    Cycles lastEval_ = kNeverCycle;
    CycleClass lastClass_ = CycleClass::kIdle;
    CycleClass class_ = CycleClass::kIdle;
    bool classSet_ = false;
    bool classForced_ = false;
    bool stuck_ = false;
    Cycles lastProgressAt_ = 0;
};

/** True when every token input listed in the control config has a token.
 *  A unit with no token inputs self-starts; `selfStarted` gates that to
 *  a single run. */
bool tokensReady(const ControlCfg &ctrl, const UnitPorts &ports,
                 bool selfStarted);

/** Consume one token from each gated control input. */
void consumeTokens(const ControlCfg &ctrl, UnitPorts &ports);

/** True when all done outputs can accept a pulse. */
bool canPushDone(const ControlCfg &ctrl, const UnitPorts &ports);

/** Pulse every done output. */
void pushDone(const ControlCfg &ctrl, UnitPorts &ports);

/** Scalar inputs referenced by a chain's dynamic bounds. */
std::vector<uint8_t> chainScalarRefs(const ChainCfg &chain);

/** Scalar / vector inputs referenced by stage operands. */
void stageRefs(const std::vector<StageCfg> &stages,
               std::vector<uint8_t> &scalars, std::vector<uint8_t> &vectors);

/** All referenced scalar inputs available? */
bool scalarsReady(const std::vector<uint8_t> &refs, const UnitPorts &ports);

/** Pop every referenced scalar input (end of run). */
void popScalars(const std::vector<uint8_t> &refs, UnitPorts &ports);

/** Resolve the per-counter iteration bounds of a chain, reading dynamic
 *  bounds from scalar inputs. */
std::vector<int64_t> resolveBounds(const ChainCfg &chain,
                                   const UnitPorts &ports);

/**
 * Evaluate a scalar datapath (PMU / AG address pipeline): runs all
 * stages on lane 0 against a counter snapshot and the scalar inputs.
 * Latency is modelled by the caller (pipeline-fill delay); this helper
 * provides the dataflow result.
 */
struct ScalarRegs
{
    std::array<Word, kMaxRegs> reg{};
};

Word evalScalarStages(const std::vector<StageCfg> &stages, uint8_t resultReg,
                      const Wavefront &wf, const UnitPorts &ports,
                      ScalarRegs &regs);

} // namespace plast

#endif // PLAST_SIM_UNITCOMMON_HPP
