/**
 * @file
 * Cycle-level model of a Pattern Compute Unit (Figure 3): a counter
 * chain issues one wavefront of pattern indices per cycle into a
 * multi-stage SIMD pipeline of functional units. Cross-lane reduction
 * tree steps, the shift network, accumulators, FlatMap valid-word
 * coalescing on vector outputs, and token-gated execution runs are all
 * modelled per cycle.
 *
 * Construction lowers the PcuCfg into a PcuExecPlan (execplan.hpp);
 * evaluate() is thereby split into plan-build (once) and plan-execute
 * (per cycle). Under SimMode::kSpecialized the per-cycle path runs the
 * plan's monomorphic kernels over contiguous lane arrays; kInterp
 * keeps the reference per-lane interpretation of the raw StageCfg.
 * Both modes share the plan's liveness sets (which output ports to
 * scan, which registers to reset) and the pooled wavefront slots that
 * replace per-issue std::optional<Wavefront> copies.
 */

#ifndef PLAST_SIM_PCU_HPP
#define PLAST_SIM_PCU_HPP

#include <memory>
#include <vector>

#include "arch/config.hpp"
#include "arch/params.hpp"
#include "sim/execplan.hpp"
#include "sim/unitcommon.hpp"

namespace plast
{

class PcuSim : public SimUnit
{
  public:
    PcuSim(const ArchParams &params, uint32_t index, const PcuCfg &cfg,
           SimMode mode = SimMode::kInterp);

    void step(Cycles now) override;
    bool busy() const override { return state_ != State::kIdle; }

    /** Work counters; cycle accounting lives in SimUnit::acct(). */
    struct Stats
    {
        uint64_t runs = 0;
        uint64_t wavefronts = 0;
        uint64_t laneOps = 0; ///< FU-lane operations executed
    };
    const Stats &stats() const { return stats_; }
    const std::string &name() const { return cfg_.name; }
    const PcuExecPlan &plan() const { return plan_; }

    /**
     * Fault injection: flip bit `bit` of pipeline register `reg` in
     * lane `lane` of the oldest in-flight wavefront. Returns false when
     * the pipeline is empty (the upset lands in an unused latch and is
     * architecturally masked).
     */
    bool injectRegFlip(uint32_t reg, uint32_t lane, uint32_t bit);

    template <class Ar>
    void
    serializeState(Ar &ar)
    {
        serializeUnitBase(ar);
        io(ar, state_);
        io(ar, selfStarted_);
        io(ar, chain_);
        // Pipeline slots are pool-recycled pointers but keep the
        // std::optional tape encoding (has-flag, then contents), so
        // checkpoints are bit-identical across sim modes and with
        // pre-pool tapes.
        for (auto &slot : pipe_) {
            uint64_t has = slot ? 1 : 0;
            io(ar, has);
            if (has && !slot)
                slot = grabSlot(); // loading into an empty latch
            if (!has && slot)
                recycleSlot(std::move(slot));
            if (has)
                slot->serializeState(ar);
        }
        io(ar, acc_);
        io(ar, coalesceBuf_);
        io(ar, coalesceCount_);
        io(ar, flushedCoalesce_);
        io(ar, extraDirtyRegs_);
        io(ar, runStart_);
        io(ar, retiredWf_);
        io(ar, stats_.runs);
        io(ar, stats_.wavefronts);
        io(ar, stats_.laneOps);
    }

  private:
    enum class State { kIdle, kRunning, kDraining };

    bool tryStart(Cycles now);
    void advancePipeline(Cycles now);
    bool tryIssue(Cycles now);
    bool tryRetire(const Wavefront &wf, Cycles now);
    void applyStage(size_t idx, Wavefront &wf);
    void applyStagePlanned(size_t idx, Wavefront &wf);
    Word operandValue(const Operand &op, const Wavefront &wf,
                      uint32_t lane) const;
    /** Resolve an operand to a contiguous lane array (the wavefront's
     *  own storage where possible, else broadcast/iota into scratch). */
    const Word *operandLanes(const Operand &op, const Wavefront &wf,
                             Word *scratch) const;
    bool finishRun(Cycles now);
    std::unique_ptr<Wavefront> grabSlot();
    void recycleSlot(std::unique_ptr<Wavefront> wf);

    ArchParams params_;
    uint32_t index_;
    PcuCfg cfg_;
    uint32_t lanes_;
    SimMode mode_;
    PcuExecPlan plan_;

    State state_ = State::kIdle;
    bool selfStarted_ = false;
    ChainState chain_;
    /** One latch per stage; null = bubble. Slots cycle through wfPool_
     *  so the steady state allocates nothing. */
    std::vector<std::unique_ptr<Wavefront>> pipe_;
    std::vector<std::unique_ptr<Wavefront>> wfPool_;
    /** Persistent accumulator registers, one set per accum stage. */
    std::vector<std::array<Word, kMaxLanes>> acc_;
    /** FlatMap coalescing buffers, one per vector output port. */
    std::vector<std::vector<Word>> coalesceBuf_;
    std::vector<uint64_t> coalesceCount_;
    bool flushedCoalesce_ = false;
    /** Registers dirtied outside the datapath (injectRegFlip): added to
     *  the per-issue reset set forever after, and checkpointed, so pool
     *  recycling stays invisible even under fault campaigns. */
    uint32_t extraDirtyRegs_ = 0;

    std::vector<uint8_t> scalarRefs_;
    std::vector<uint8_t> vectorRefs_;
    /** Broadcast/iota staging for operandLanes, one per operand slot. */
    std::array<std::array<Word, kMaxLanes>, 3> opScratch_{};

    Cycles runStart_ = 0;    ///< cycle the current run's tokens fired
    uint64_t retiredWf_ = 0; ///< retire id for wavefront trace intervals
    Stats stats_;
};

} // namespace plast

#endif // PLAST_SIM_PCU_HPP
