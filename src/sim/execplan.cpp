#include "sim/execplan.hpp"

#include <array>

#include "sim/fuexec.hpp"
#include "sim/wavefront.hpp"

namespace plast
{

const char *
simModeName(SimMode mode)
{
    switch (mode) {
      case SimMode::kInterp: return "interp";
      case SimMode::kSpecialized: return "specialized";
    }
    return "?";
}

namespace
{

/** One instantiation per opcode: fuApply's switch constant-folds away,
 *  leaving a bare elementwise loop over contiguous lane arrays. */
template <FuOp OP>
void
mapKernel(const Word *a, const Word *b, const Word *c, Word *dst,
          uint32_t lanes)
{
    for (uint32_t l = 0; l < lanes; ++l)
        dst[l] = fuApply(OP, a[l], b[l], c[l]);
}

} // namespace

MapKernel
mapKernelFor(FuOp op)
{
    switch (op) {
      case FuOp::kNop:    return &mapKernel<FuOp::kNop>;
      case FuOp::kIAdd:   return &mapKernel<FuOp::kIAdd>;
      case FuOp::kISub:   return &mapKernel<FuOp::kISub>;
      case FuOp::kIMul:   return &mapKernel<FuOp::kIMul>;
      case FuOp::kIDiv:   return &mapKernel<FuOp::kIDiv>;
      case FuOp::kIMod:   return &mapKernel<FuOp::kIMod>;
      case FuOp::kIMin:   return &mapKernel<FuOp::kIMin>;
      case FuOp::kIMax:   return &mapKernel<FuOp::kIMax>;
      case FuOp::kIAbs:   return &mapKernel<FuOp::kIAbs>;
      case FuOp::kAnd:    return &mapKernel<FuOp::kAnd>;
      case FuOp::kOr:     return &mapKernel<FuOp::kOr>;
      case FuOp::kXor:    return &mapKernel<FuOp::kXor>;
      case FuOp::kNot:    return &mapKernel<FuOp::kNot>;
      case FuOp::kShl:    return &mapKernel<FuOp::kShl>;
      case FuOp::kShr:    return &mapKernel<FuOp::kShr>;
      case FuOp::kILt:    return &mapKernel<FuOp::kILt>;
      case FuOp::kILe:    return &mapKernel<FuOp::kILe>;
      case FuOp::kIGt:    return &mapKernel<FuOp::kIGt>;
      case FuOp::kIGe:    return &mapKernel<FuOp::kIGe>;
      case FuOp::kIEq:    return &mapKernel<FuOp::kIEq>;
      case FuOp::kINe:    return &mapKernel<FuOp::kINe>;
      case FuOp::kFAdd:   return &mapKernel<FuOp::kFAdd>;
      case FuOp::kFSub:   return &mapKernel<FuOp::kFSub>;
      case FuOp::kFMul:   return &mapKernel<FuOp::kFMul>;
      case FuOp::kFDiv:   return &mapKernel<FuOp::kFDiv>;
      case FuOp::kFMin:   return &mapKernel<FuOp::kFMin>;
      case FuOp::kFMax:   return &mapKernel<FuOp::kFMax>;
      case FuOp::kFAbs:   return &mapKernel<FuOp::kFAbs>;
      case FuOp::kFNeg:   return &mapKernel<FuOp::kFNeg>;
      case FuOp::kFLt:    return &mapKernel<FuOp::kFLt>;
      case FuOp::kFLe:    return &mapKernel<FuOp::kFLe>;
      case FuOp::kFGt:    return &mapKernel<FuOp::kFGt>;
      case FuOp::kFGe:    return &mapKernel<FuOp::kFGe>;
      case FuOp::kFEq:    return &mapKernel<FuOp::kFEq>;
      case FuOp::kFNe:    return &mapKernel<FuOp::kFNe>;
      case FuOp::kI2F:    return &mapKernel<FuOp::kI2F>;
      case FuOp::kF2I:    return &mapKernel<FuOp::kF2I>;
      case FuOp::kMux:    return &mapKernel<FuOp::kMux>;
      case FuOp::kFMA:    return &mapKernel<FuOp::kFMA>;
      case FuOp::kIMA:    return &mapKernel<FuOp::kIMA>;
      // libm-backed transcendentals take the generic fuExec path.
      case FuOp::kFExp:
      case FuOp::kFLog:
      case FuOp::kFSqrt:
      case FuOp::kFRecip:
      case FuOp::kNumOps:
        return nullptr;
    }
    return nullptr;
}

PcuExecPlan
buildPcuPlan(const PcuCfg &cfg)
{
    PcuLiveness lv = analyzePcu(cfg);

    PcuExecPlan plan;
    plan.touchedRegs = lv.touchedRegs;
    plan.liveVecOuts = std::move(lv.liveVecOuts);
    plan.liveScalOuts = std::move(lv.liveScalOuts);
    plan.countScalOuts = std::move(lv.countScalOuts);
    plan.anyCoalesce = lv.anyCoalesce;

    plan.stages.reserve(cfg.stages.size());
    for (const StageCfg &st : cfg.stages) {
        StagePlan sp;
        sp.kind = st.kind;
        sp.op = st.op;
        sp.arity = static_cast<uint8_t>(fuOpArity(st.op));
        sp.a = st.a;
        sp.b = st.b;
        sp.c = st.c;
        sp.dstReg = st.dstReg;
        sp.setsMask = st.setsMask;
        sp.reduceDist = st.reduceDist;
        sp.accLevel = st.accLevel;
        sp.shiftAmt = st.shiftAmt;
        if (st.kind == StageKind::kReduceStep ||
            st.kind == StageKind::kAccum)
            sp.identity = fuOpIdentity(st.op);
        if (st.kind == StageKind::kMap)
            sp.kernel = mapKernelFor(st.op);
        plan.stages.push_back(sp);
    }
    return plan;
}

// --------------------------------------------------------------------
// PMU port plans
// --------------------------------------------------------------------

namespace
{

using Slot = PmuAddrPlan::Slot;
using Src = PmuAddrPlan::Slot::Src;

/**
 * Abstract value over the affine domain: slot-index `base` plus one
 * slot-index coefficient per counter level. Slot 0 is the constant 0,
 * so a default AbsVal is the constant 0 and `runConst()` means "no
 * counter term".
 */
struct AbsVal
{
    uint32_t base = 0;
    std::array<uint32_t, kMaxCtrs> coeff{};

    bool
    runConst() const
    {
        for (uint32_t c : coeff) {
            if (c != 0)
                return false;
        }
        return true;
    }
};

/** Emits the run-constant slot program while the stage walk below
 *  tracks affine shapes. Immediate-only slots are folded at build time
 *  and all slots are deduplicated, so coefficient slots for the common
 *  `ctr * imm` patterns collapse to single immediates. */
class SlotProgram
{
  public:
    SlotProgram() { slots_.push_back(Slot{}); } // slot 0: constant 0

    uint32_t
    imm(Word w)
    {
        if (w == 0)
            return 0;
        Slot s;
        s.aSrc = Src::kImm;
        s.aVal = w;
        return intern(s);
    }

    uint32_t
    scalarIn(uint8_t idx)
    {
        Slot s;
        s.aSrc = Src::kScalarIn;
        s.aVal = idx;
        return intern(s);
    }

    /** slots[a] op slots[b] op slots[c], folding immediates. */
    uint32_t
    op(FuOp o, uint32_t a, uint32_t b, uint32_t c)
    {
        if (isImm(a) && isImm(b) && isImm(c))
            return imm(fuExec(o, immVal(a), immVal(b), immVal(c)));
        Slot s;
        s.op = o;
        if (a != 0) {
            s.aSrc = Src::kSlot;
            s.aVal = a;
        }
        if (b != 0) {
            s.bSrc = Src::kSlot;
            s.bVal = b;
        }
        if (c != 0) {
            s.cSrc = Src::kSlot;
            s.cVal = c;
        }
        return intern(s);
    }

    uint32_t
    add(uint32_t a, uint32_t b)
    {
        if (a == 0)
            return b;
        if (b == 0)
            return a;
        return op(FuOp::kIAdd, a, b, 0);
    }

    uint32_t
    mul(uint32_t a, uint32_t b)
    {
        if (a == 0 || b == 0)
            return 0;
        return op(FuOp::kIMul, a, b, 0);
    }

    std::vector<Slot> take() { return std::move(slots_); }

  private:
    bool
    isImm(uint32_t i) const
    {
        const Slot &s = slots_[i];
        return i == 0 || (s.op == FuOp::kNop && s.aSrc == Src::kImm &&
                          s.bSrc == Src::kZero && s.cSrc == Src::kZero);
    }

    Word
    immVal(uint32_t i) const
    {
        return i == 0 ? 0 : slots_[i].aVal;
    }

    uint32_t
    intern(const Slot &s)
    {
        for (uint32_t i = 0; i < slots_.size(); ++i) {
            const Slot &o = slots_[i];
            if (o.op == s.op && o.aSrc == s.aSrc && o.bSrc == s.bSrc &&
                o.cSrc == s.cSrc && o.aVal == s.aVal && o.bVal == s.bVal &&
                o.cVal == s.cVal)
                return i;
        }
        slots_.push_back(s);
        return static_cast<uint32_t>(slots_.size() - 1);
    }

    std::vector<Slot> slots_;
};

/**
 * Abstractly interpret the scalar address program. Returns false when
 * any stage uses a counter non-affinely (or reads state the abstract
 * domain does not model), in which case the port keeps the interpreted
 * evalScalarStages path.
 */
bool
lowerAddrProgram(const std::vector<StageCfg> &stages, uint8_t resultReg,
                 PmuAddrPlan &out)
{
    SlotProgram prog;
    std::array<AbsVal, kMaxRegs> regs{};

    auto operand = [&](const Operand &opnd, AbsVal &v) -> bool {
        v = AbsVal{};
        switch (opnd.kind) {
          case OperandKind::kNone:
          case OperandKind::kLaneId: // scalar datapaths read lane 0
            return true;
          case OperandKind::kImm:
            v.base = prog.imm(opnd.imm);
            return true;
          case OperandKind::kScalarIn:
            v.base = prog.scalarIn(opnd.index);
            return true;
          case OperandKind::kCounter:
            if (opnd.index >= kMaxCtrs)
                return false;
            v.coeff[opnd.index] = prog.imm(1);
            return true;
          case OperandKind::kReg:
            if (opnd.index >= kMaxRegs)
                return false;
            v = regs[opnd.index];
            return true;
          case OperandKind::kVectorIn:
            return false;
        }
        return false;
    };

    for (const StageCfg &st : stages) {
        if (st.kind != StageKind::kMap || st.dstReg >= kMaxRegs)
            return false;
        AbsVal a, b, c, res;
        if (!operand(st.a, a) || !operand(st.b, b) || !operand(st.c, c))
            return false;
        switch (st.op) {
          case FuOp::kNop:
            res = a;
            break;
          case FuOp::kIAdd:
          case FuOp::kISub:
            res.base = st.op == FuOp::kIAdd ? prog.add(a.base, b.base)
                                            : prog.op(FuOp::kISub, a.base,
                                                      b.base, 0);
            for (uint32_t i = 0; i < kMaxCtrs; ++i) {
                res.coeff[i] =
                    st.op == FuOp::kIAdd
                        ? prog.add(a.coeff[i], b.coeff[i])
                        : (a.coeff[i] == 0 && b.coeff[i] == 0
                               ? 0
                               : prog.op(FuOp::kISub, a.coeff[i],
                                         b.coeff[i], 0));
            }
            break;
          case FuOp::kIMul: {
            // Affine only when one side is run-constant; 2^32 is a
            // ring, so the product distributes over the other side.
            if (!a.runConst() && !b.runConst())
                return false;
            const AbsVal &affn = a.runConst() ? b : a;
            const AbsVal &k = a.runConst() ? a : b;
            res.base = prog.mul(affn.base, k.base);
            for (uint32_t i = 0; i < kMaxCtrs; ++i)
                res.coeff[i] = prog.mul(affn.coeff[i], k.base);
            break;
          }
          case FuOp::kShl:
            // a << s == a * 2^s (mod 2^32): linear in a.
            if (!b.runConst())
                return false;
            res.base = a.base == 0
                           ? 0
                           : prog.op(FuOp::kShl, a.base, b.base, 0);
            for (uint32_t i = 0; i < kMaxCtrs; ++i)
                res.coeff[i] = a.coeff[i] == 0
                                   ? 0
                                   : prog.op(FuOp::kShl, a.coeff[i],
                                             b.base, 0);
            break;
          default:
            // Any op over run-constants is itself a run-constant.
            if (!a.runConst() || !b.runConst() || !c.runConst())
                return false;
            res.base = prog.op(st.op, a.base, b.base, c.base);
            break;
        }
        regs[st.dstReg] = res;
    }

    if (resultReg >= kMaxRegs)
        return false;
    const AbsVal &r = regs[resultReg];
    out.affine = true;
    out.baseSlot = r.base;
    out.terms.clear();
    for (uint32_t i = 0; i < kMaxCtrs; ++i) {
        if (r.coeff[i] != 0)
            out.terms.emplace_back(static_cast<uint8_t>(i), r.coeff[i]);
    }
    out.slots = prog.take();
    return true;
}

} // namespace

PmuPortPlan
buildPmuPortPlan(const PmuPortCfg &cfg, bool isWrite,
                 const ScratchCfg &scratch, uint32_t banks, uint32_t lanes)
{
    PmuPortPlan plan;
    if (!cfg.enabled || cfg.addrVecIn >= 0 || cfg.appendMode ||
        scratch.mode == BankingMode::kFifo ||
        (isWrite && cfg.broadcast))
        return plan;
    if (!lowerAddrProgram(cfg.addrStages, cfg.addrReg, plan.addr))
        return plan;
    plan.fastAccess = true;

    // Can this port ever pay a bank conflict? Broadcast fans one word
    // out (the interpreter hard-codes one cycle); a scalar access
    // touches one bank; a linear vector access is conflict-free when
    // consecutive words land in distinct banks.
    if (cfg.broadcast || !cfg.vecLinear ||
        scratch.mode == BankingMode::kDup) {
        plan.conflictFree = true;
    } else if (banks >= lanes &&
               (scratch.mode != BankingMode::kLineBuffer ||
                (banks > 0 && scratch.sizeWords % banks == 0))) {
        plan.conflictFree = true;
    }
    return plan;
}

} // namespace plast
