/**
 * @file
 * The stall-attribution taxonomy: every cycle a unit is stepped is
 * classified into exactly one CycleClass, and cycles a unit spends
 * asleep under the activity scheduler are attributed to the class that
 * put it to sleep. The per-unit invariant (test-enforced)
 *
 *     active + sum(stall reasons) + idle + asleep == totalCycles
 *
 * makes every non-active cycle of every unit explainable, which is
 * what the bottleneck report aggregates along dataflow edges.
 */

#ifndef PLAST_SIM_STALL_HPP
#define PLAST_SIM_STALL_HPP

#include <array>
#include <cstdint>

namespace plast
{

/** Why a unit did (or could do) no architectural work this cycle. */
enum class CycleClass : uint8_t
{
    kActive,             ///< architectural state moved
    kInputStarved,       ///< waiting on scalar/vector operand arrival
    kOutputBackpressure, ///< an output stream (data or done) is full
    kBankConflict,       ///< scratchpad bank conflict busy cycles
    kCreditBlocked,      ///< waiting on control tokens / credits
    kDramWait,           ///< waiting on the off-chip memory system
    kIdle,               ///< no pending work at all
    kCount,
};

inline constexpr size_t kNumCycleClasses =
    static_cast<size_t>(CycleClass::kCount);

inline const char *
cycleClassName(CycleClass c)
{
    switch (c) {
      case CycleClass::kActive:
        return "active";
      case CycleClass::kInputStarved:
        return "inputStarved";
      case CycleClass::kOutputBackpressure:
        return "outputBackpressure";
      case CycleClass::kBankConflict:
        return "bankConflict";
      case CycleClass::kCreditBlocked:
        return "creditBlocked";
      case CycleClass::kDramWait:
        return "dramWait";
      case CycleClass::kIdle:
        return "idle";
      case CycleClass::kCount:
        break;
    }
    return "?";
}

/**
 * Per-unit cycle ledger. `by` counts evaluated cycles by class;
 * `sleptBy` counts scheduler-asleep cycles, attributed to the class
 * that last blocked the unit before it slept (under dense ticking it
 * stays zero). Cycles asleep at end of run with no later evaluation
 * remain unattributed and surface as the `asleep` stat:
 * asleep = totalCycles - stepped - slept.
 */
struct CycleAcct
{
    uint64_t stepped = 0; ///< evaluate() invocations
    uint64_t slept = 0;   ///< attributed asleep cycles (== sum sleptBy)
    std::array<uint64_t, kNumCycleClasses> by{};
    std::array<uint64_t, kNumCycleClasses> sleptBy{};

    uint64_t
    active() const
    {
        return by[static_cast<size_t>(CycleClass::kActive)];
    }

    /** Evaluated + attributed-asleep cycles of one class. */
    uint64_t
    blocked(CycleClass c) const
    {
        return by[static_cast<size_t>(c)] +
               sleptBy[static_cast<size_t>(c)];
    }

    uint64_t
    classifiedTotal() const
    {
        uint64_t t = 0;
        for (size_t i = 0; i < kNumCycleClasses; ++i)
            t += by[i] + sleptBy[i];
        return t;
    }

    template <class Ar>
    void
    serializeState(Ar &ar)
    {
        io(ar, stepped);
        io(ar, slept);
        io(ar, by);
        io(ar, sleptBy);
    }
};

} // namespace plast

#endif // PLAST_SIM_STALL_HPP
