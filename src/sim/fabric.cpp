#include "sim/fabric.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>

#include "arch/cfgio.hpp"
#include "base/logging.hpp"
#include "base/profile.hpp"
#include "resilience/fault.hpp"

namespace plast
{

Fabric::Fabric(const FabricConfig &cfg, SimOptions opts)
    : cfg_(cfg), opts_(opts), mem_(cfg.params)
{
    fatal_if(cfg_.rootBox < 0 ||
                 cfg_.rootBox >= static_cast<int>(cfg_.boxes.size()),
             "fabric config has no root controller");

    // Specialized-mode unit construction lowers the config into flat
    // execution plans (sim/execplan.hpp); account that host work to
    // its own phase so plan-build cost is visible next to sim time.
    ScopedSpan buildSpan(opts_.simMode == SimMode::kSpecialized
                             ? "sim.plan-build"
                             : "sim.build-units");

    for (size_t i = 0; i < cfg_.pcus.size(); ++i) {
        pcus_.push_back(cfg_.pcus[i].used
                            ? std::make_unique<PcuSim>(
                                  cfg_.params, static_cast<uint32_t>(i),
                                  cfg_.pcus[i], opts_.simMode)
                            : nullptr);
    }
    for (size_t i = 0; i < cfg_.pmus.size(); ++i) {
        pmus_.push_back(cfg_.pmus[i].used
                            ? std::make_unique<PmuSim>(
                                  cfg_.params, static_cast<uint32_t>(i),
                                  cfg_.pmus[i], opts_.simMode)
                            : nullptr);
    }
    for (size_t i = 0; i < cfg_.ags.size(); ++i) {
        ags_.push_back(cfg_.ags[i].used
                           ? std::make_unique<AgSim>(
                                 cfg_.params, static_cast<uint32_t>(i),
                                 cfg_.ags[i], mem_, opts_.simMode)
                           : nullptr);
    }
    for (size_t i = 0; i < cfg_.boxes.size(); ++i) {
        boxes_.push_back(cfg_.boxes[i].used
                             ? std::make_unique<CtrlBoxSim>(
                                   cfg_.params, static_cast<uint32_t>(i),
                                   cfg_.boxes[i])
                             : nullptr);
    }
    argOuts_.resize(cfg_.hostArgOuts);

    // SECDED ECC on the scratchpads is an architecture parameter, not a
    // per-PMU choice: enable it fabric-wide when configured.
    if (cfg_.params.pmu.ecc) {
        for (auto &u : pmus_) {
            if (u)
                u->scratch().enableEcc(true);
        }
    }

    // Checkpoints are only exchangeable between fabrics built from the
    // identical configuration (same placement, same routes); hash the
    // canonical text form as the compatibility guard.
    cfgHash_ = std::hash<std::string>{}(configToText(cfg_));

    buildChannels();

    // Pin host constants (argIn registers) to scalar input ports.
    for (const ConstScalar &cs : cfg_.constants) {
        UnitPorts *ports = portsOf(cs.dst.unit);
        fatal_if(!ports, "constant bound to missing unit %s",
                 cs.dst.unit.describe().c_str());
        fatal_if(cs.dst.port >= ports->scalIn.size(),
                 "constant bound to out-of-range scalar port %u on %s",
                 cs.dst.port, cs.dst.unit.describe().c_str());
        ScalarInPort &p = ports->scalIn[cs.dst.port];
        fatal_if(p.isConst || p.stream,
                 "scalar input %s.%u doubly driven",
                 cs.dst.unit.describe().c_str(), cs.dst.port);
        p.isConst = true;
        p.constVal = cs.value;
    }

    if (opts_.mode == SimOptions::Mode::kActivity)
        registerSimObjects();

    setupTrace();
}

/**
 * Create the trace sink and hand every emitting component its display
 * track. Compiled out entirely with PLAST_TRACING=0; with tracing
 * compiled but disabled no sink exists and every emit site stays a
 * null-pointer check.
 */
void
Fabric::setupTrace()
{
    epochsOn_ = kTracingCompiled && opts_.trace.enabled &&
                opts_.trace.epochCycles > 0;
    nextEpochAt_ = opts_.trace.epochCycles;
    if (!kTracingCompiled || !opts_.trace.enabled)
        return;

    trace_ = std::make_unique<TraceSink>(opts_.trace.capacity);
    TraceSink *t = trace_.get();
    schedTrack_ = t->addTrack("scheduler");
    sched_.setTrace(t, schedTrack_);

    for (size_t i = 0; i < pcus_.size(); ++i) {
        if (pcus_[i])
            pcus_[i]->bindTrace(
                t, t->addTrack(strfmt("pcu%02zu %s", i,
                                      pcus_[i]->name().c_str())));
    }
    for (size_t i = 0; i < pmus_.size(); ++i) {
        if (!pmus_[i])
            continue;
        // Read/write port runs overlap in time, so each enabled port
        // gets its own track; the unit track carries nothing itself.
        uint16_t wr = 0, wr2 = 0, rd = 0;
        if (cfg_.pmus[i].write.enabled)
            wr = t->addTrack(strfmt("pmu%02zu %s wr", i,
                                    pmus_[i]->name().c_str()));
        if (cfg_.pmus[i].write2.enabled)
            wr2 = t->addTrack(strfmt("pmu%02zu %s wr2", i,
                                     pmus_[i]->name().c_str()));
        if (cfg_.pmus[i].read.enabled)
            rd = t->addTrack(strfmt("pmu%02zu %s rd", i,
                                    pmus_[i]->name().c_str()));
        pmus_[i]->bindTrace(t, cfg_.pmus[i].write.enabled ? wr : rd);
        pmus_[i]->bindPortTracks(wr, wr2, rd);
    }
    for (size_t i = 0; i < ags_.size(); ++i) {
        if (ags_[i])
            ags_[i]->bindTrace(
                t, t->addTrack(strfmt("ag%02zu %s", i,
                                      ags_[i]->name().c_str())));
    }
    for (size_t i = 0; i < boxes_.size(); ++i) {
        if (boxes_[i])
            boxes_[i]->bindTrace(
                t, t->addTrack(strfmt("box%02zu %s", i,
                                      boxes_[i]->name().c_str())));
    }

    std::vector<uint16_t> cu_tracks;
    for (uint32_t c = 0; c < mem_.dram().numChannels(); ++c)
        cu_tracks.push_back(t->addTrack(strfmt("cu%u", c)));
    mem_.bindTrace(t, cu_tracks.empty() ? 0 : cu_tracks[0]);
    mem_.bindCuTracks(std::move(cu_tracks));

    if (opts_.trace.streams) {
        auto bind_streams = [&](auto &streams) {
            for (auto &s : streams)
                s->bindTrace(t, t->addTrack("stream " + s->name()));
        };
        bind_streams(scalarStreams_);
        bind_streams(vectorStreams_);
        bind_streams(controlStreams_);
    }
}

/**
 * Attach everything to the scheduler. Unit registration order must
 * match the dense iteration order (PCUs, PMUs, AGs, boxes) so that
 * order-sensitive races (two AGs submitting to one coalescing unit in
 * the same cycle) resolve identically in both modes.
 */
void
Fabric::registerSimObjects()
{
    for (auto &u : pcus_) {
        if (u)
            sched_.addUnit(u.get());
    }
    for (auto &u : pmus_) {
        if (u)
            sched_.addUnit(u.get());
    }
    for (auto &u : ags_) {
        if (u)
            sched_.addUnit(u.get());
    }
    for (auto &u : boxes_) {
        if (u)
            sched_.addUnit(u.get());
    }
    sched_.addMem(&mem_);
    for (auto &s : scalarStreams_)
        sched_.addStream(s.get());
    for (auto &s : vectorStreams_)
        sched_.addStream(s.get());
    for (auto &s : controlStreams_)
        sched_.addStream(s.get());
}

UnitPorts *
Fabric::portsOf(const UnitRef &ref)
{
    switch (ref.cls) {
      case UnitClass::kPcu:
        return pcus_.at(ref.index) ? &pcus_[ref.index]->ports : nullptr;
      case UnitClass::kPmu:
        return pmus_.at(ref.index) ? &pmus_[ref.index]->ports : nullptr;
      case UnitClass::kAg:
        return ags_.at(ref.index) ? &ags_[ref.index]->ports : nullptr;
      case UnitClass::kBox:
        return boxes_.at(ref.index) ? &boxes_[ref.index]->ports : nullptr;
      case UnitClass::kHost:
        return nullptr;
    }
    return nullptr;
}

SimUnit *
Fabric::unitOf(const UnitRef &ref)
{
    switch (ref.cls) {
      case UnitClass::kPcu:
        return pcus_.at(ref.index).get();
      case UnitClass::kPmu:
        return pmus_.at(ref.index).get();
      case UnitClass::kAg:
        return ags_.at(ref.index).get();
      case UnitClass::kBox:
        return boxes_.at(ref.index).get();
      case UnitClass::kHost:
        return nullptr;
    }
    return nullptr;
}

void
Fabric::buildChannels()
{
    uint32_t idx = 0;
    for (const ChannelCfg &ch : cfg_.channels) {
        std::string name =
            strfmt("%s#%u:%s.%u->%s.%u", netKindName(ch.kind).c_str(),
                   idx++, ch.src.unit.describe().c_str(), ch.src.port,
                   ch.dst.unit.describe().c_str(), ch.dst.port);

        if (ch.dst.unit.cls == UnitClass::kHost) {
            fatal_if(ch.kind != NetKind::kScalar,
                     "host sinks must be scalar channels (%s)",
                     name.c_str());
            auto s = std::make_unique<ScalarStream>(name, ch.latency,
                                                    ch.capacity);
            UnitPorts *src = portsOf(ch.src.unit);
            fatal_if(!src, "channel %s: missing source", name.c_str());
            fatal_if(ch.src.port >= src->scalOut.size(),
                     "channel %s: bad source port", name.c_str());
            src->scalOut[ch.src.port].sinks.push_back(s.get());
            s->bindProducer(unitOf(ch.src.unit));
            s->bindHostSlot(static_cast<int32_t>(ch.dst.port));
            hostSinks_.push_back(
                {static_cast<uint32_t>(ch.dst.port), s.get()});
            fatal_if(ch.dst.port >= argOuts_.size(),
                     "channel %s: argOut slot out of range", name.c_str());
            scalarStreams_.push_back(std::move(s));
            continue;
        }

        UnitPorts *src = portsOf(ch.src.unit);
        UnitPorts *dst = portsOf(ch.dst.unit);
        fatal_if(!src || !dst, "channel %s: missing endpoint",
                 name.c_str());

        switch (ch.kind) {
          case NetKind::kScalar: {
            auto s = std::make_unique<ScalarStream>(name, ch.latency,
                                                    ch.capacity);
            fatal_if(ch.src.port >= src->scalOut.size() ||
                         ch.dst.port >= dst->scalIn.size(),
                     "channel %s: bad port", name.c_str());
            fatal_if(dst->scalIn[ch.dst.port].stream ||
                         dst->scalIn[ch.dst.port].isConst,
                     "channel %s: input doubly driven", name.c_str());
            src->scalOut[ch.src.port].sinks.push_back(s.get());
            dst->scalIn[ch.dst.port].stream = s.get();
            dst->scalIn[ch.dst.port].popEvery =
                ch.dstPopEvery == 0 ? 1 : ch.dstPopEvery;
            s->bindProducer(unitOf(ch.src.unit));
            s->bindConsumer(unitOf(ch.dst.unit));
            scalarStreams_.push_back(std::move(s));
            break;
          }
          case NetKind::kVector: {
            auto s = std::make_unique<VectorStream>(name, ch.latency,
                                                    ch.capacity);
            fatal_if(ch.src.port >= src->vecOut.size() ||
                         ch.dst.port >= dst->vecIn.size(),
                     "channel %s: bad port", name.c_str());
            fatal_if(dst->vecIn[ch.dst.port].stream,
                     "channel %s: input doubly driven", name.c_str());
            src->vecOut[ch.src.port].sinks.push_back(s.get());
            dst->vecIn[ch.dst.port].stream = s.get();
            s->bindProducer(unitOf(ch.src.unit));
            s->bindConsumer(unitOf(ch.dst.unit));
            vectorStreams_.push_back(std::move(s));
            break;
          }
          case NetKind::kControl: {
            auto s = std::make_unique<ControlStream>(name, ch.latency,
                                                     ch.capacity);
            for (uint32_t t = 0; t < ch.initialTokens; ++t)
                s->preload(Token{});
            fatal_if(ch.src.port >= src->ctlOut.size() ||
                         ch.dst.port >= dst->ctlIn.size(),
                     "channel %s: bad port", name.c_str());
            fatal_if(dst->ctlIn[ch.dst.port].stream,
                     "channel %s: input doubly driven", name.c_str());
            src->ctlOut[ch.src.port].sinks.push_back(s.get());
            dst->ctlIn[ch.dst.port].stream = s.get();
            s->bindProducer(unitOf(ch.src.unit));
            s->bindConsumer(unitOf(ch.dst.unit));
            controlStreams_.push_back(std::move(s));
            break;
          }
        }
    }
}

void
Fabric::step()
{
    // Fault events land at the cycle boundary, before any unit
    // evaluates, so an injected flip is visible to every reader of this
    // cycle in both modes (dense/activity parity).
    if (injector_)
        applyDueFaults();
    if (opts_.mode == SimOptions::Mode::kDense)
        stepDense();
    else
        stepActivity();
    if (epochsOn_ && now_ >= nextEpochAt_)
        sampleEpoch();
}

void
Fabric::stepDense()
{
    // evaluate() (not step()) so cycle accounting runs; the activity
    // report is ignored under dense ticking.
    for (auto &u : pcus_) {
        if (u)
            u->evaluate(now_);
    }
    for (auto &u : pmus_) {
        if (u)
            u->evaluate(now_);
    }
    for (auto &u : ags_) {
        if (u)
            u->evaluate(now_);
    }
    for (auto &u : boxes_) {
        if (u)
            u->evaluate(now_);
    }
    mem_.step(now_);

    for (auto &s : scalarStreams_)
        s->tick(now_);
    for (auto &s : vectorStreams_)
        s->tick(now_);
    for (auto &s : controlStreams_)
        s->tick(now_);

    drainHostSinks();
    ++now_;
}

void
Fabric::stepActivity()
{
    sched_.runCycle(now_);
    // A host sink delivered: capture argOuts this cycle, exactly when
    // the dense tick would (canPop() turns true only on delivery).
    if (!sched_.deliveredHost().empty())
        drainHostSinks();
    ++now_;
}

/** Capture host-bound scalars (argOut registers). */
void
Fabric::drainHostSinks()
{
    for (auto &sink : hostSinks_) {
        while (sink.stream->canPop()) {
            argOuts_[sink.slot].push_back(sink.stream->front());
            sink.stream->pop();
        }
    }
}

bool
Fabric::anyProgress() const
{
    for (const auto &u : pcus_) {
        if (u && u->madeProgress())
            return true;
    }
    for (const auto &u : pmus_) {
        if (u && u->madeProgress())
            return true;
    }
    for (const auto &u : ags_) {
        if (u && u->madeProgress())
            return true;
    }
    for (const auto &u : boxes_) {
        if (u && u->madeProgress())
            return true;
    }
    return !mem_.quiescent();
}

Cycles
Fabric::run(Cycles maxCycles)
{
    RunResult r = runChecked(maxCycles);
    if (!r.status.ok()) {
        if (r.status.code() != StatusCode::kMaxCycles)
            dumpDeadlock();
        fatal("%s", r.status.message().c_str());
    }
    return r.cycles;
}

RunResult
Fabric::runChecked(Cycles maxCycles)
{
    ScopedSpan span("sim.run");
    return opts_.mode == SimOptions::Mode::kDense
               ? runDenseChecked(maxCycles)
               : runActivityChecked(maxCycles);
}

RunResult
Fabric::runDenseChecked(Cycles maxCycles)
{
    CtrlBoxSim *root = boxes_.at(cfg_.rootBox).get();
    fatal_if(!root, "root controller not instantiated");

    if (Status c = checkCancel(); !c.ok())
        return {c, now_, kNeverCycle};
    Cycles last_progress = now_;
    while (root->runsCompleted() == 0) {
        maybeAutoCheckpoint();
        step();
        if (anyProgress())
            last_progress = now_;
        if (injector_) {
            Status ecc = checkUncorrectable();
            if (!ecc.ok())
                return {ecc, now_, eccCorruptedAt()};
        }
        if (Status c = checkCancel(); !c.ok())
            return {c, now_, kNeverCycle};
        Status hang = scanHangs(*root);
        if (!hang.ok())
            return {hang, now_, kNeverCycle};
        if (now_ - last_progress > opts_.deadlockWindow &&
            (!injector_ || injector_->nextDue(now_) == kNeverCycle)) {
            return {Status(StatusCode::kDeadlock,
                           strfmt("fabric deadlock: no progress for %u "
                                  "cycles at cycle %llu",
                                  opts_.deadlockWindow,
                                  static_cast<unsigned long long>(now_))),
                    now_, kNeverCycle};
        }
        if (now_ >= maxCycles)
            return {Status(StatusCode::kMaxCycles,
                           strfmt("fabric exceeded max cycles (%llu)",
                                  static_cast<unsigned long long>(
                                      maxCycles))),
                    now_, kNeverCycle};
    }
    Cycles done_at = now_;
    // Drain in-flight writes and host-bound scalars: run until nothing
    // has moved for a full window (covers the longest routed channel).
    // anyProgress() already covers memory-system activity.
    Cycles quiet_since = now_;
    while (now_ - quiet_since < opts_.drainQuietWindow &&
           now_ - done_at < opts_.drainMaxCycles) {
        step();
        if (anyProgress())
            quiet_since = now_;
    }
    return {Status(), done_at, kNeverCycle};
}

RunResult
Fabric::runActivityChecked(Cycles maxCycles)
{
    CtrlBoxSim *root = boxes_.at(cfg_.rootBox).get();
    fatal_if(!root, "root controller not instantiated");

    if (Status c = checkCancel(); !c.ok())
        return {c, now_, kNeverCycle};
    while (root->runsCompleted() == 0) {
        if (sched_.idle()) {
            // Nothing can ever happen again: no runnable unit, quiet
            // memory, no stream traffic, no pending arrival. This is
            // the deadlock condition, detected the cycle it forms —
            // unless a future clock-triggered fault event could still
            // perturb the fabric, in which case jump straight to it.
            Cycles nd =
                injector_ ? injector_->nextDue(now_) : kNeverCycle;
            if (nd == kNeverCycle) {
                return {Status(StatusCode::kDeadlock,
                               strfmt("fabric deadlock: empty active "
                                      "set at cycle %llu",
                                      static_cast<unsigned long long>(
                                          now_))),
                        now_, kNeverCycle};
            }
            now_ = nd < maxCycles ? nd : maxCycles;
        } else if (sched_.canFastForward()) {
            // The only pending work is a future stream arrival; every
            // skipped cycle would have been a no-op under dense ticking.
            // Pending fault events bound the jump so injections land on
            // their exact cycle.
            Cycles target = sched_.nextEventCycle();
            if (injector_) {
                Cycles nd = injector_->nextDue(now_);
                if (nd < target)
                    target = nd;
            }
            if (target > now_)
                now_ = target < maxCycles ? target : maxCycles;
        }
        maybeAutoCheckpoint();
        step();
        if (injector_) {
            Status ecc = checkUncorrectable();
            if (!ecc.ok())
                return {ecc, now_, eccCorruptedAt()};
        }
        if (Status c = checkCancel(); !c.ok())
            return {c, now_, kNeverCycle};
        Status hang = scanHangs(*root);
        if (!hang.ok())
            return {hang, now_, kNeverCycle};
        if (now_ >= maxCycles)
            return {Status(StatusCode::kMaxCycles,
                           strfmt("fabric exceeded max cycles (%llu)",
                                  static_cast<unsigned long long>(
                                      maxCycles))),
                    now_, kNeverCycle};
    }
    Cycles done_at = now_;
    // Same drain policy as dense mode, cycle for cycle — no idle break
    // and no fast-forward, so the quiet window expires exactly as
    // under dense ticking and the final cycle count (the "cycles"
    // stat) is identical. Idle drain cycles are O(1).
    Cycles quiet_since = now_;
    while (now_ - quiet_since < opts_.drainQuietWindow &&
           now_ - done_at < opts_.drainMaxCycles) {
        step();
        if (sched_.progressLastCycle())
            quiet_since = now_;
    }
    return {Status(), done_at, kNeverCycle};
}

void
Fabric::dumpDeadlock() const
{
    std::fprintf(stderr, "--- deadlock diagnostic (cycle %llu) ---\n",
                 static_cast<unsigned long long>(now_));
    for (size_t i = 0; i < pcus_.size(); ++i) {
        if (pcus_[i] && pcus_[i]->busy())
            std::fprintf(stderr, "  pcu%zu (%s) busy, runs=%llu wf=%llu\n",
                         i, pcus_[i]->name().c_str(),
                         (unsigned long long)pcus_[i]->stats().runs,
                         (unsigned long long)pcus_[i]->stats().wavefronts);
    }
    for (size_t i = 0; i < pmus_.size(); ++i) {
        if (pmus_[i] && pmus_[i]->busy())
            std::fprintf(stderr, "  pmu%zu (%s) busy, r=%llu w=%llu\n", i,
                         pmus_[i]->name().c_str(),
                         (unsigned long long)pmus_[i]->stats().readRuns,
                         (unsigned long long)pmus_[i]->stats().writeRuns);
    }
    for (size_t i = 0; i < ags_.size(); ++i) {
        if (ags_[i] && ags_[i]->busy())
            std::fprintf(stderr, "  ag%zu (%s) busy, runs=%llu\n", i,
                         ags_[i]->name().c_str(),
                         (unsigned long long)ags_[i]->stats().runs);
    }
    for (size_t i = 0; i < boxes_.size(); ++i) {
        if (boxes_[i] && boxes_[i]->busy())
            std::fprintf(stderr, "  box%zu (%s) busy, iters=%llu\n", i,
                         boxes_[i]->name().c_str(),
                         (unsigned long long)boxes_[i]->stats().iterations);
    }
    // Streams still holding data pinpoint the wait cycle.
    auto stream_lines = [](const auto &streams) {
        for (const auto &s : streams) {
            if (!s->quiescent())
                std::fprintf(stderr,
                             "  stream %s holds %zu poppable element(s)\n",
                             s->name().c_str(), s->available());
        }
    };
    stream_lines(scalarStreams_);
    stream_lines(vectorStreams_);
    stream_lines(controlStreams_);
    if (opts_.mode == SimOptions::Mode::kActivity)
        std::fprintf(stderr, "  scheduler: %zu awake unit(s)\n",
                     sched_.awakeUnits());
}

const std::deque<Word> &
Fabric::argOut(uint32_t slot) const
{
    return argOuts_.at(slot);
}

// --------------------------------------------------------------------
// Resilience: fault delivery, hang detection, checkpoint/restore
// --------------------------------------------------------------------

void
Fabric::armFaults(resilience::FaultInjector *inj)
{
    injector_ = inj;
    mem_.setFaultHook(inj);
}

void
Fabric::setCancelToken(const CancelToken *tok)
{
    cancel_ = tok;
    nextCancelCheckAt_ = 0; // poll at the next boundary
}

Status
Fabric::checkCancel()
{
    if (!cancel_ || now_ < nextCancelCheckAt_)
        return Status();
    nextCancelCheckAt_ = now_ + std::max<uint32_t>(1, opts_.cancelPollCycles);
    if (cancel_->cancelRequested()) {
        return Status(StatusCode::kCancelled,
                      strfmt("run cancelled cooperatively at cycle %llu",
                             static_cast<unsigned long long>(now_)));
    }
    // The clock read is gated on an armed deadline, so cancel-only
    // tokens cost one relaxed load per poll window.
    if (cancel_->hasDeadline() &&
        cancel_->expired(HostProfiler::instance().nowUs())) {
        return Status(
            StatusCode::kDeadlineExceeded,
            strfmt("deadline exceeded at cycle %llu (budget spent "
                   "mid-simulation)",
                   static_cast<unsigned long long>(now_)));
    }
    return Status();
}

void
Fabric::applyDueFaults()
{
    using resilience::FaultKind;
    for (const resilience::FaultEvent &e : injector_->collectDue(now_)) {
        switch (e.kind) {
          case FaultKind::kPcuRegFlip:
            if (PcuSim *u = pcus_.at(e.unit % pcus_.size()).get())
                u->injectRegFlip(e.reg, e.lane, e.bit);
            break;
          case FaultKind::kPmuScratchFlip:
            if (PmuSim *u = pmus_.at(e.unit % pmus_.size()).get())
                u->scratch().injectFault(e.buf, e.addr, e.bits, e.bit,
                                         now_);
            break;
          case FaultKind::kCtrlTokenDrop:
          case FaultKind::kCtrlTokenDup: {
            if (controlStreams_.empty())
                break;
            ControlStream *s =
                controlStreams_[e.unit % controlStreams_.size()].get();
            bool did = e.kind == FaultKind::kCtrlTokenDrop
                           ? s->injectDrop()
                           : s->injectDuplicate();
            // The mutation bypasses commit(), so route the wakes it
            // would have produced: a drop frees producer space, a dup
            // gives the consumer a poppable token.
            if (did && opts_.mode == SimOptions::Mode::kActivity) {
                if (s->producer())
                    sched_.wakeUnit(s->producer());
                if (s->consumer())
                    sched_.wakeUnit(s->consumer());
                sched_.streamDirty(s);
            }
            break;
          }
          case FaultKind::kPcuStuck:
            if (PcuSim *u = pcus_.at(e.unit % pcus_.size()).get())
                u->setStuck(true);
            break;
          case FaultKind::kPmuStuck:
            if (PmuSim *u = pmus_.at(e.unit % pmus_.size()).get())
                u->setStuck(true);
            break;
          default:
            break;
        }
    }
}

void
Fabric::maybeAutoCheckpoint()
{
    if (opts_.checkpointEvery == 0 || now_ < nextCheckpointAt_)
        return;
    ckptRing_.push_back(saveCheckpoint());
    while (ckptRing_.size() > std::max<uint32_t>(1, opts_.keepCheckpoints))
        ckptRing_.pop_front();
    nextCheckpointAt_ = now_ + opts_.checkpointEvery;
}

Status
Fabric::scanHangs(const CtrlBoxSim &root)
{
    if (opts_.watchdogCycles == 0 && opts_.livelockCycles == 0)
        return Status();
    if (now_ < nextHangScanAt_)
        return Status();
    Cycles window = kNeverCycle;
    if (opts_.watchdogCycles)
        window = std::min(window, opts_.watchdogCycles);
    if (opts_.livelockCycles)
        window = std::min(window, opts_.livelockCycles);
    nextHangScanAt_ = now_ + std::max<Cycles>(64, window / 8);

    Status st;
    if (opts_.watchdogCycles) {
        auto scan = [&](const auto &units) {
            for (const auto &u : units) {
                if (!u || !st.ok() || !u->busy())
                    continue;
                if (now_ - u->lastProgressAt() > opts_.watchdogCycles) {
                    st = Status(
                        StatusCode::kWatchdog,
                        strfmt("watchdog: unit %s made no progress for "
                               "%llu cycles (cycle %llu)",
                               u->name().c_str(),
                               static_cast<unsigned long long>(
                                   now_ - u->lastProgressAt()),
                               static_cast<unsigned long long>(now_)));
                }
            }
        };
        scan(pcus_);
        scan(pmus_);
        scan(ags_);
        scan(boxes_);
    }
    if (st.ok() && opts_.livelockCycles) {
        uint64_t iters = root.stats().iterations + root.stats().runs;
        if (iters != lastRootIters_) {
            lastRootIters_ = iters;
            lastRootProgressAt_ = now_;
        } else if (now_ - lastRootProgressAt_ > opts_.livelockCycles) {
            st = Status(
                StatusCode::kLivelock,
                strfmt("livelock: root controller stuck at %llu "
                       "iterations for %llu cycles (cycle %llu)",
                       static_cast<unsigned long long>(iters),
                       static_cast<unsigned long long>(
                           now_ - lastRootProgressAt_),
                       static_cast<unsigned long long>(now_)));
        }
    }
    return st;
}

Cycles
Fabric::eccCorruptedAt() const
{
    Cycles at = kNeverCycle;
    for (const auto &u : pmus_) {
        if (u && u->scratch().eccUncorrectable())
            at = std::min(at, u->scratch().eccCorruptedAt());
    }
    return at;
}

Status
Fabric::checkUncorrectable() const
{
    Cycles at = eccCorruptedAt();
    if (at == kNeverCycle)
        return Status();
    return Status(StatusCode::kUncorrectable,
                  strfmt("uncorrectable ECC error in a PMU scratchpad "
                         "(corrupted at cycle %llu, detected at %llu)",
                         static_cast<unsigned long long>(at),
                         static_cast<unsigned long long>(now_)));
}

std::vector<const StreamBase *>
Fabric::heldStreams() const
{
    std::vector<const StreamBase *> held;
    auto collect = [&held](const auto &streams) {
        for (const auto &s : streams) {
            if (!s->quiescent())
                held.push_back(s.get());
        }
    };
    collect(scalarStreams_);
    collect(vectorStreams_);
    collect(controlStreams_);
    return held;
}

FabricCheckpoint
Fabric::saveCheckpoint()
{
    ScopedSpan span("sim.checkpoint");
    FabricCheckpoint cp;
    cp.cycle = now_;
    cp.cfgHash = cfgHash_;
    StateWriter w;
    serializeFabricState(w);
    cp.tape = w.takeTape();
    return cp;
}

Status
Fabric::restoreCheckpoint(const FabricCheckpoint &cp)
{
    ScopedSpan span("sim.restore");
    if (cp.cfgHash != cfgHash_) {
        return Status(StatusCode::kInvalidArgument,
                      "checkpoint was taken from a differently "
                      "configured fabric");
    }
    StateReader r(cp.tape);
    serializeFabricState(r);
    if (r.failed() || !r.exhausted()) {
        return Status(StatusCode::kInternal,
                      strfmt("checkpoint tape mismatch (%s at word %zu "
                             "of %zu)",
                             r.failed() ? "underflow" : "leftover",
                             r.position(), cp.tape.size()));
    }
    now_ = cp.cycle;
    // ECC poison is part of the scratchpad tape, but the uncorrectable
    // latch must not survive a rollback — the whole point of restoring
    // is to re-execute past the corruption.
    for (auto &u : pmus_) {
        if (u)
            u->scratch().clearEccError();
    }
    // Checkpoints "newer" than the restore point are from an abandoned
    // timeline; drop them and re-anchor the periodic snapshot clock.
    while (!ckptRing_.empty() && ckptRing_.back().cycle > cp.cycle)
        ckptRing_.pop_back();
    if (opts_.checkpointEvery)
        nextCheckpointAt_ = now_ + opts_.checkpointEvery;
    nextHangScanAt_ = 0;
    lastRootIters_ = 0;
    lastRootProgressAt_ = now_;
    if (opts_.mode == SimOptions::Mode::kActivity)
        sched_.rearmAll();
    return Status();
}

uint64_t
Fabric::totalLaneOps() const
{
    uint64_t ops = 0;
    for (const auto &u : pcus_) {
        if (u)
            ops += u->stats().laneOps;
    }
    return ops;
}

/** Current cumulative per-class cycle sums over all units, plus DRAM
 *  bus-busy cycles (the epoch sampler diffs successive calls). */
void
Fabric::classSums(std::array<uint64_t, kNumCycleClasses> &by,
                  uint64_t &dramBusy) const
{
    by.fill(0);
    auto accumulate = [&by](const SimUnit &u) {
        const CycleAcct &a = u.acct();
        for (size_t c = 0; c < kNumCycleClasses; ++c)
            by[c] += a.by[c] + a.sleptBy[c];
    };
    for (const auto &u : pcus_) {
        if (u)
            accumulate(*u);
    }
    for (const auto &u : pmus_) {
        if (u)
            accumulate(*u);
    }
    for (const auto &u : ags_) {
        if (u)
            accumulate(*u);
    }
    for (const auto &u : boxes_) {
        if (u)
            accumulate(*u);
    }
    dramBusy = 0;
    for (uint32_t c = 0; c < mem_.dram().numChannels(); ++c)
        dramBusy += mem_.dram().channel(c).stats().busBusyCycles;
}

void
Fabric::sampleEpoch()
{
    ScopedSpan span("sim.epoch-sample");
    EpochRow row;
    row.cycle = now_;
    std::array<uint64_t, kNumCycleClasses> cur;
    uint64_t dram_busy;
    classSums(cur, dram_busy);
    for (size_t c = 0; c < kNumCycleClasses; ++c)
        row.by[c] = cur[c] - prevClassSum_[c];
    row.dramBusy = dram_busy - prevDramBusy_;
    prevClassSum_ = cur;
    prevDramBusy_ = dram_busy;
    epochs_.push_back(row);
    // Fast-forward may jump several periods at once; re-anchor.
    nextEpochAt_ += opts_.trace.epochCycles;
    if (nextEpochAt_ <= now_)
        nextEpochAt_ = now_ + opts_.trace.epochCycles;
}

void
Fabric::writeTrace(std::ostream &os) const
{
    fatal_if(!trace_, "writeTrace: tracing was not enabled "
                      "(SimOptions::trace.enabled)");
    trace_->writeChromeJson(os, &HostProfiler::instance());
}

void
Fabric::writeUtilizationCsv(std::ostream &os) const
{
    os << "cycle";
    for (size_t c = 0; c < kNumCycleClasses; ++c)
        os << "," << cycleClassName(static_cast<CycleClass>(c));
    os << ",dramBusy\n";
    auto row_out = [&os](const EpochRow &r) {
        os << r.cycle;
        for (size_t c = 0; c < kNumCycleClasses; ++c)
            os << "," << r.by[c];
        os << "," << r.dramBusy << "\n";
    };
    for (const EpochRow &r : epochs_)
        row_out(r);
    // Close out the partial epoch since the last boundary.
    std::array<uint64_t, kNumCycleClasses> cur;
    uint64_t dram_busy;
    classSums(cur, dram_busy);
    EpochRow tail;
    tail.cycle = now_;
    bool nonzero = false;
    for (size_t c = 0; c < kNumCycleClasses; ++c) {
        tail.by[c] = cur[c] - prevClassSum_[c];
        nonzero |= tail.by[c] != 0;
    }
    tail.dramBusy = dram_busy - prevDramBusy_;
    if (nonzero || tail.dramBusy != 0)
        row_out(tail);
}

void
Fabric::dumpStats(StatSet &out) const
{
    // Per-unit cycle-class accounting. `cycles.<class>` counts both
    // evaluated and attributed-asleep cycles; `asleep` is the
    // never-reattributed tail, so that over the full run
    //     sum(cycles.*) + asleep == cycles.
    auto acct_stats = [&out, this](const std::string &p,
                                   const SimUnit &u) {
        const CycleAcct &a = u.acct();
        for (size_t c = 0; c < kNumCycleClasses; ++c) {
            out.set(p + "cycles." +
                        cycleClassName(static_cast<CycleClass>(c)),
                    a.by[c] + a.sleptBy[c]);
        }
        out.set(p + "cycles.stepped", a.stepped);
        uint64_t accounted = a.stepped + a.slept;
        out.set(p + "cycles.asleep",
                now_ > accounted ? now_ - accounted : 0);
    };

    for (size_t i = 0; i < pcus_.size(); ++i) {
        if (!pcus_[i])
            continue;
        const auto &s = pcus_[i]->stats();
        std::string p = strfmt("pcu%02zu.", i);
        out.set(p + "runs", s.runs);
        out.set(p + "wavefronts", s.wavefronts);
        out.set(p + "laneOps", s.laneOps);
        acct_stats(p, *pcus_[i]);
    }
    for (size_t i = 0; i < pmus_.size(); ++i) {
        if (!pmus_[i])
            continue;
        const auto &s = pmus_[i]->stats();
        std::string p = strfmt("pmu%02zu.", i);
        out.set(p + "readRuns", s.readRuns);
        out.set(p + "writeRuns", s.writeRuns);
        out.set(p + "reads", s.reads);
        out.set(p + "writes", s.writes);
        out.set(p + "wordsRead", s.wordsRead);
        out.set(p + "wordsWritten", s.wordsWritten);
        acct_stats(p, *pmus_[i]);
    }
    for (size_t i = 0; i < ags_.size(); ++i) {
        if (!ags_[i])
            continue;
        const auto &s = ags_[i]->stats();
        std::string p = strfmt("ag%02zu.", i);
        out.set(p + "runs", s.runs);
        out.set(p + "denseCmds", s.denseCmds);
        out.set(p + "sparseVecs", s.sparseVecs);
        out.set(p + "wordsLoaded", s.wordsLoaded);
        out.set(p + "wordsStored", s.wordsStored);
        acct_stats(p, *ags_[i]);
    }
    for (size_t i = 0; i < boxes_.size(); ++i) {
        if (!boxes_[i])
            continue;
        const auto &s = boxes_[i]->stats();
        std::string p = strfmt("box%02zu.", i);
        out.set(p + "runs", s.runs);
        out.set(p + "iterations", s.iterations);
        acct_stats(p, *boxes_[i]);
    }

    // Per-stream traffic counters, plus per-network totals. The totals
    // are accumulated locally and written with set() so dumpStats stays
    // idempotent (a second dump into the same StatSet must not
    // double-count).
    struct NetTotals
    {
        uint64_t pushes = 0, pops = 0, fullStallCycles = 0;
    };
    std::map<std::string, NetTotals> net;
    auto stream_stats = [&out, &net](const StreamBase &s,
                                     const char *kind) {
        const auto &t = s.stats();
        std::string p = "stream." + s.name() + ".";
        out.set(p + "pushes", t.pushes);
        out.set(p + "pops", t.pops);
        out.set(p + "peakOccupancy", t.peakOccupancy);
        out.set(p + "fullStallCycles", t.fullStallCycles);
        NetTotals &n = net[kind];
        n.pushes += t.pushes;
        n.pops += t.pops;
        n.fullStallCycles += t.fullStallCycles;
    };
    for (const auto &s : scalarStreams_)
        stream_stats(*s, "scalar");
    for (const auto &s : vectorStreams_)
        stream_stats(*s, "vector");
    for (const auto &s : controlStreams_)
        stream_stats(*s, "control");
    for (const auto &[kind, n] : net) {
        std::string p = "net." + kind + ".";
        out.set(p + "pushes", n.pushes);
        out.set(p + "pops", n.pops);
        out.set(p + "fullStallCycles", n.fullStallCycles);
    }

    const auto &m = mem_.stats();
    out.set("mem.bursts", m.bursts);
    out.set("mem.coalescedLanes", m.coalescedLanes);
    out.set("mem.bytesRead", m.bytesRead);
    out.set("mem.bytesWritten", m.bytesWritten);
    for (uint32_t c = 0; c < mem_.dram().numChannels(); ++c) {
        const auto &cs = mem_.dram().channel(c).stats();
        std::string p = strfmt("dram%u.", c);
        out.set(p + "reads", cs.reads);
        out.set(p + "writes", cs.writes);
        out.set(p + "rowHits", cs.rowHits);
        out.set(p + "rowMisses", cs.rowMisses + cs.rowConflicts);
        out.set(p + "busBusyCycles", cs.busBusyCycles);
    }
    if (trace_) {
        out.set("trace.events", trace_->size());
        out.set("trace.dropped", trace_->dropped());
    }
    out.set("cycles", now_);
}

} // namespace plast
