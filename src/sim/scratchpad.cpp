#include "sim/scratchpad.hpp"

#include <algorithm>

#include "base/logging.hpp"

namespace plast
{

void
Scratchpad::configure(const ScratchCfg &cfg, uint32_t banks,
                      uint32_t capacityWords)
{
    cfg_ = cfg;
    banks_ = banks;
    fatal_if(cfg.numBufs == 0, "scratchpad needs at least one buffer");
    // Duplication mode replicates the contents in every bank, so the
    // usable logical capacity shrinks by the bank count.
    uint64_t effective = cfg.mode == BankingMode::kDup
                             ? capacityWords / banks
                             : capacityWords;
    fatal_if(static_cast<uint64_t>(cfg.numBufs) * cfg.sizeWords >
                 effective,
             "scratchpad config %u x %u words exceeds PMU capacity "
             "%llu (mode %s)",
             cfg.numBufs, cfg.sizeWords,
             static_cast<unsigned long long>(effective),
             bankingModeName(cfg.mode).c_str());
    data_.assign(static_cast<size_t>(cfg.numBufs) * cfg.sizeWords, 0);
}

Word
Scratchpad::read(uint32_t buf, uint32_t addr) const
{
    addr = wrap(addr);
    panic_if(buf >= cfg_.numBufs, "scratchpad buf %u out of range", buf);
    panic_if(addr >= cfg_.sizeWords,
             "scratchpad read addr %u out of range (%u words)", addr,
             cfg_.sizeWords);
    return data_[static_cast<size_t>(buf) * cfg_.sizeWords + addr];
}

void
Scratchpad::write(uint32_t buf, uint32_t addr, Word w)
{
    addr = wrap(addr);
    panic_if(buf >= cfg_.numBufs, "scratchpad buf %u out of range", buf);
    panic_if(addr >= cfg_.sizeWords,
             "scratchpad write addr %u out of range (%u words)", addr,
             cfg_.sizeWords);
    data_[static_cast<size_t>(buf) * cfg_.sizeWords + addr] = w;
}

uint32_t
Scratchpad::conflictCycles(const std::vector<uint32_t> &addrs) const
{
    if (addrs.empty())
        return 1;
    if (cfg_.mode == BankingMode::kDup)
        return 1;
    std::vector<uint32_t> perBank(banks_, 0);
    for (uint32_t a : addrs)
        ++perBank[wrap(a) % banks_];
    return std::max(1u, *std::max_element(perBank.begin(), perBank.end()));
}

void
Scratchpad::fifoPush(const Vec &v)
{
    panic_if(cfg_.mode != BankingMode::kFifo, "fifoPush on non-FIFO mode");
    fifo_.push_back(v);
}

Vec
Scratchpad::fifoPop()
{
    panic_if(fifo_.empty(), "fifoPop on empty scratchpad FIFO");
    Vec v = fifo_.front();
    fifo_.pop_front();
    return v;
}

} // namespace plast
