#include "sim/scratchpad.hpp"

#include <algorithm>

#include "base/logging.hpp"

namespace plast
{

void
Scratchpad::configure(const ScratchCfg &cfg, uint32_t banks,
                      uint32_t capacityWords)
{
    cfg_ = cfg;
    banks_ = banks;
    fatal_if(cfg.numBufs == 0, "scratchpad needs at least one buffer");
    // Duplication mode replicates the contents in every bank, so the
    // usable logical capacity shrinks by the bank count.
    uint64_t effective = cfg.mode == BankingMode::kDup
                             ? capacityWords / banks
                             : capacityWords;
    fatal_if(static_cast<uint64_t>(cfg.numBufs) * cfg.sizeWords >
                 effective,
             "scratchpad config %u x %u words exceeds PMU capacity "
             "%llu (mode %s)",
             cfg.numBufs, cfg.sizeWords,
             static_cast<unsigned long long>(effective),
             bankingModeName(cfg.mode).c_str());
    data_.assign(static_cast<size_t>(cfg.numBufs) * cfg.sizeWords, 0);
}

Word
Scratchpad::read(uint32_t buf, uint32_t addr) const
{
    addr = wrap(addr);
    panic_if(buf >= cfg_.numBufs, "scratchpad buf %u out of range", buf);
    panic_if(addr >= cfg_.sizeWords,
             "scratchpad read addr %u out of range (%u words)", addr,
             cfg_.sizeWords);
    size_t flat = static_cast<size_t>(buf) * cfg_.sizeWords + addr;
    if (ecc_ && !poison_.empty())
    {
        auto it = poison_.find(static_cast<uint32_t>(flat));
        if (it != poison_.end())
        {
            if (it->second.bits == 1)
            {
                // SECDED corrects the single-bit upset and the
                // controller scrubs the word back to the array.
                ++eccStats_.corrected;
                poison_.erase(it);
            }
            else
            {
                ++eccStats_.uncorrectable;
                uncorrectable_ = true;
                corruptedAt_ =
                    std::min(corruptedAt_, it->second.injectedAt);
                poison_.erase(it);
            }
        }
    }
    return data_[flat];
}

void
Scratchpad::write(uint32_t buf, uint32_t addr, Word w)
{
    addr = wrap(addr);
    panic_if(buf >= cfg_.numBufs, "scratchpad buf %u out of range", buf);
    panic_if(addr >= cfg_.sizeWords,
             "scratchpad write addr %u out of range (%u words)", addr,
             cfg_.sizeWords);
    size_t flat = static_cast<size_t>(buf) * cfg_.sizeWords + addr;
    // A write regenerates the check bits, clearing any pending upset.
    if (!poison_.empty())
        poison_.erase(static_cast<uint32_t>(flat));
    data_[flat] = w;
}

bool
Scratchpad::injectFault(uint32_t buf, uint32_t addr, uint32_t bits,
                        uint32_t bitPos, Cycles now)
{
    if (cfg_.mode == BankingMode::kFifo || bits == 0)
        return false;
    addr = wrap(addr);
    if (buf >= cfg_.numBufs || addr >= cfg_.sizeWords)
        return false;
    size_t flat = static_cast<size_t>(buf) * cfg_.sizeWords + addr;
    if (ecc_)
    {
        // Correction restores the original word, so the data array is
        // left untouched; only the poison ledger records the upset.
        Poison &p = poison_[static_cast<uint32_t>(flat)];
        p.bits += bits;
        p.injectedAt = p.bits == bits ? now : std::min(p.injectedAt, now);
    }
    else
    {
        Word mask = 0;
        for (uint32_t i = 0; i < bits && i < 32; ++i)
            mask |= Word{1} << ((bitPos + i) % 32);
        data_[flat] ^= mask;
    }
    return true;
}

uint32_t
Scratchpad::conflictCycles(const std::vector<uint32_t> &addrs) const
{
    if (addrs.empty())
        return 1;
    if (cfg_.mode == BankingMode::kDup)
        return 1;
    perBankScratch_.assign(banks_, 0);
    uint32_t worst = 1;
    for (uint32_t a : addrs)
        worst = std::max(worst, ++perBankScratch_[wrap(a) % banks_]);
    return worst;
}

void
Scratchpad::fifoPush(const Vec &v)
{
    panic_if(cfg_.mode != BankingMode::kFifo, "fifoPush on non-FIFO mode");
    fifo_.push_back(v);
}

Vec
Scratchpad::fifoPop()
{
    panic_if(fifo_.empty(), "fifoPop on empty scratchpad FIFO");
    Vec v = fifo_.front();
    fifo_.pop_front();
    return v;
}

} // namespace plast
