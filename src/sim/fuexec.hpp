/**
 * @file
 * Functional-unit datapath semantics: one 32-bit operation per FU per
 * cycle. Shared by the PCU SIMD pipeline, the PMU/AG scalar datapaths,
 * the pattern-IR reference evaluator, and the specialized execution
 * plans (execplan.hpp), so functional behaviour is defined exactly
 * once.
 *
 * The semantics live in the inline fuApply so that the monomorphic
 * per-stage kernels instantiated by the specializer (mapKernel<OP>)
 * constant-fold the switch away and leave a bare lane loop the
 * compiler can vectorize. fuExec is the dynamic-dispatch wrapper that
 * additionally range-checks the opcode.
 *
 * All integer arithmetic is defined for every input: add/sub/mul/MA
 * wrap modulo 2^32 (two's complement), division and remainder by zero
 * yield 0, INT_MIN / -1 wraps to INT_MIN (and INT_MIN % -1 is 0), and
 * |INT_MIN| wraps to INT_MIN. Shifts use only the low 5 bits of the
 * shift amount, like the real barrel shifter.
 */

#ifndef PLAST_SIM_FUEXEC_HPP
#define PLAST_SIM_FUEXEC_HPP

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "arch/opcodes.hpp"
#include "base/logging.hpp"
#include "base/types.hpp"

namespace plast
{

/** Core FU semantics; `op` must be a valid FuOp (< kNumOps). Unused
 *  trailing operands are ignored, but callers pass the op's full
 *  operand list explicitly — there are no defaults. */
inline Word
fuApply(FuOp op, Word a, Word b, Word c)
{
    switch (op) {
      case FuOp::kNop:
        return a;
      case FuOp::kIAdd:
        return a + b; // unsigned wrap == two's-complement add
      case FuOp::kISub:
        return a - b;
      case FuOp::kIMul:
        // Low 32 bits of the product == wrapped signed multiply.
        return static_cast<Word>(static_cast<uint64_t>(a) *
                                 static_cast<uint64_t>(b));
      case FuOp::kIDiv: {
        int32_t ia = wordToInt(a);
        int32_t ib = wordToInt(b);
        if (ib == 0)
            return 0;
        if (ia == INT32_MIN && ib == -1)
            return a; // quotient wraps back to INT_MIN
        return intToWord(ia / ib);
      }
      case FuOp::kIMod: {
        int32_t ia = wordToInt(a);
        int32_t ib = wordToInt(b);
        if (ib == 0)
            return 0;
        if (ia == INT32_MIN && ib == -1)
            return 0; // remainder of the wrapped quotient
        return intToWord(ia % ib);
      }
      case FuOp::kIMin:
        return intToWord(std::min(wordToInt(a), wordToInt(b)));
      case FuOp::kIMax:
        return intToWord(std::max(wordToInt(a), wordToInt(b)));
      case FuOp::kIAbs:
        return wordToInt(a) < 0 ? Word{0} - a : a; // |INT_MIN| wraps
      case FuOp::kAnd:
        return a & b;
      case FuOp::kOr:
        return a | b;
      case FuOp::kXor:
        return a ^ b;
      case FuOp::kNot:
        return ~a;
      case FuOp::kShl:
        return a << (b & 31u);
      case FuOp::kShr:
        return a >> (b & 31u);
      case FuOp::kILt:
        return wordToInt(a) < wordToInt(b) ? 1 : 0;
      case FuOp::kILe:
        return wordToInt(a) <= wordToInt(b) ? 1 : 0;
      case FuOp::kIGt:
        return wordToInt(a) > wordToInt(b) ? 1 : 0;
      case FuOp::kIGe:
        return wordToInt(a) >= wordToInt(b) ? 1 : 0;
      case FuOp::kIEq:
        return a == b ? 1 : 0;
      case FuOp::kINe:
        return a != b ? 1 : 0;
      case FuOp::kFAdd:
        return floatToWord(wordToFloat(a) + wordToFloat(b));
      case FuOp::kFSub:
        return floatToWord(wordToFloat(a) - wordToFloat(b));
      case FuOp::kFMul:
        return floatToWord(wordToFloat(a) * wordToFloat(b));
      case FuOp::kFDiv:
        return floatToWord(wordToFloat(a) / wordToFloat(b));
      case FuOp::kFMin:
        return floatToWord(std::min(wordToFloat(a), wordToFloat(b)));
      case FuOp::kFMax:
        return floatToWord(std::max(wordToFloat(a), wordToFloat(b)));
      case FuOp::kFAbs:
        return floatToWord(std::fabs(wordToFloat(a)));
      case FuOp::kFNeg:
        return floatToWord(-wordToFloat(a));
      case FuOp::kFLt:
        return wordToFloat(a) < wordToFloat(b) ? 1 : 0;
      case FuOp::kFLe:
        return wordToFloat(a) <= wordToFloat(b) ? 1 : 0;
      case FuOp::kFGt:
        return wordToFloat(a) > wordToFloat(b) ? 1 : 0;
      case FuOp::kFGe:
        return wordToFloat(a) >= wordToFloat(b) ? 1 : 0;
      case FuOp::kFEq:
        return wordToFloat(a) == wordToFloat(b) ? 1 : 0;
      case FuOp::kFNe:
        return wordToFloat(a) != wordToFloat(b) ? 1 : 0;
      case FuOp::kFExp:
        return floatToWord(std::exp(wordToFloat(a)));
      case FuOp::kFLog:
        return floatToWord(std::log(wordToFloat(a)));
      case FuOp::kFSqrt:
        return floatToWord(std::sqrt(wordToFloat(a)));
      case FuOp::kFRecip:
        return floatToWord(1.0f / wordToFloat(a));
      case FuOp::kI2F:
        return floatToWord(static_cast<float>(wordToInt(a)));
      case FuOp::kF2I:
        return intToWord(static_cast<int32_t>(wordToFloat(a)));
      case FuOp::kMux:
        return a != 0 ? b : c;
      case FuOp::kFMA:
        return floatToWord(wordToFloat(a) * wordToFloat(b) +
                           wordToFloat(c));
      case FuOp::kIMA:
        // a*b+c wrapped modulo 2^32, matching kIAdd/kIMul semantics.
        return static_cast<Word>(static_cast<uint64_t>(a) *
                                     static_cast<uint64_t>(b) +
                                 static_cast<uint64_t>(c));
      case FuOp::kNumOps:
        break;
    }
    return 0; // unreachable for valid ops; fuExec panics first
}

/** Execute one FU operation on word operands, panicking on an opcode
 *  outside the ISA. Call sites state the op's full operand list
 *  explicitly (unused operands are 0). Inline so per-word interpreter
 *  loops (scalar address stages, reference evaluator) pay no call. */
inline Word
fuExec(FuOp op, Word a, Word b, Word c)
{
    panic_if(static_cast<uint32_t>(op) >=
                 static_cast<uint32_t>(FuOp::kNumOps),
             "fuExec: unknown op %d", static_cast<int>(op));
    return fuApply(op, a, b, c);
}

} // namespace plast

#endif // PLAST_SIM_FUEXEC_HPP
