/**
 * @file
 * Functional-unit datapath semantics: one 32-bit operation per FU per
 * cycle. Shared by the PCU SIMD pipeline, the PMU/AG scalar datapaths,
 * and the pattern-IR reference evaluator, so functional behaviour is
 * defined exactly once.
 */

#ifndef PLAST_SIM_FUEXEC_HPP
#define PLAST_SIM_FUEXEC_HPP

#include "arch/opcodes.hpp"
#include "base/types.hpp"

namespace plast
{

/** Execute one FU operation on word operands. */
Word fuExec(FuOp op, Word a, Word b = 0, Word c = 0);

} // namespace plast

#endif // PLAST_SIM_FUEXEC_HPP
