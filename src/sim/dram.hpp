/**
 * @file
 * DDR3-style main-memory timing model (the repo's stand-in for
 * DRAMSim2, see DESIGN.md). Four independent channels; each channel has
 * a bounded command queue, 8 banks with open-row state, FR-FCFS
 * scheduling, and a shared data bus occupied tBurst cycles per 64 B
 * burst. Peak bandwidth matches the paper's 51.2 GB/s configuration.
 *
 * Addresses interleave across channels at burst (64 B) granularity.
 */

#ifndef PLAST_SIM_DRAM_HPP
#define PLAST_SIM_DRAM_HPP

#include <cstdint>
#include <deque>
#include <vector>

#include "arch/params.hpp"
#include "base/logging.hpp"
#include "base/ring.hpp"
#include "base/stateio.hpp"
#include "base/types.hpp"

namespace plast
{

struct DramReq
{
    Addr lineAddr = 0; ///< burst-aligned byte address
    bool write = false;
    uint64_t tag = 0;

    template <class Ar>
    void
    serializeState(Ar &ar)
    {
        io(ar, lineAddr);
        io(ar, write);
        io(ar, tag);
    }
};

/** One DDR channel. */
class DramChannel
{
  public:
    DramChannel(const DramParams &params, uint32_t index);

    bool canSubmit() const { return queue_.size() < params_.queueDepth; }
    void submit(const DramReq &req, Cycles now);

    /** Schedule at most one command this cycle; deliver due responses
     *  into `completed`. */
    void step(Cycles now, std::vector<DramReq> &completed);

    bool
    quiescent() const
    {
        return queue_.empty() && responses_.empty();
    }

    struct Stats
    {
        uint64_t reads = 0, writes = 0;
        uint64_t rowHits = 0, rowMisses = 0, rowConflicts = 0;
        uint64_t busBusyCycles = 0;
    };
    const Stats &stats() const { return stats_; }

    template <class Ar>
    void
    serializeState(Ar &ar)
    {
        io(ar, queue_);
        io(ar, banks_);
        io(ar, busFreeAt_);
        io(ar, responses_);
        io(ar, stats_.reads);
        io(ar, stats_.writes);
        io(ar, stats_.rowHits);
        io(ar, stats_.rowMisses);
        io(ar, stats_.rowConflicts);
        io(ar, stats_.busBusyCycles);
        if constexpr (!Ar::kSaving) {
            // Cached geometry and the scan-skip bound are derived
            // state: rebuild / reset them rather than trusting a tape.
            for (auto &p : queue_)
                rowOf(p.req.lineAddr, p.bank, p.row);
            nextIssueAt_ = 0;
        }
    }

  private:
    struct Bank
    {
        int64_t openRow = -1;
        Cycles readyAt = 0;

        template <class Ar>
        void
        serializeState(Ar &ar)
        {
            io(ar, openRow);
            io(ar, readyAt);
        }
    };

    struct Pending
    {
        Cycles readyAt = 0;
        DramReq req;
        /** Bank/row geometry, derived from req.lineAddr at submit time
         *  (and re-derived after checkpoint restore) so the per-cycle
         *  FR-FCFS scan never divides. */
        uint32_t bank = 0;
        int64_t row = 0;

        template <class Ar>
        void
        serializeState(Ar &ar)
        {
            io(ar, readyAt);
            io(ar, req);
        }
    };

    void rowOf(Addr lineAddr, uint32_t &bank, int64_t &row) const;

    DramParams params_;
    uint32_t index_;
    std::deque<Pending> queue_; ///< Pending::readyAt = submit time here
    std::vector<Bank> banks_;
    Cycles busFreeAt_ = 0;
    Ring<Pending> responses_;
    Stats stats_;
    /** Earliest cycle the FR-FCFS scan could possibly issue (min bank
     *  readyAt over the queue when every target bank was busy). Purely
     *  an evaluation-skipping bound — 0 means "scan now" — so it is
     *  not checkpointed; a restore conservatively rescans. */
    Cycles nextIssueAt_ = 0;
};

/**
 * The whole DRAM system: a word-addressable image (the accelerator's
 * main memory contents) plus the timing channels. The runtime writes
 * inputs into / reads results out of the image directly.
 */
class DramModel
{
  public:
    explicit DramModel(const DramParams &params);

    uint32_t
    channelOf(Addr lineAddr) const
    {
        return static_cast<uint32_t>((lineAddr / params_.burstBytes) %
                                     params_.channels);
    }
    DramChannel &channel(uint32_t i) { return channels_[i]; }
    const DramChannel &channel(uint32_t i) const { return channels_[i]; }
    uint32_t numChannels() const { return params_.channels; }

    void step(Cycles now, std::vector<DramReq> &completed);
    bool quiescent() const;

    // --- Memory image -------------------------------------------------
    /** Ensure the image covers [0, bytes). */
    void reserve(Addr bytes);
    Word
    readWord(Addr byteAddr) const
    {
        Addr w = byteAddr / 4;
        panic_if(w >= image_.size(), "DRAM read beyond image: %llu",
                 static_cast<unsigned long long>(byteAddr));
        return image_[w];
    }
    void
    writeWord(Addr byteAddr, Word w)
    {
        Addr idx = byteAddr / 4;
        panic_if(idx >= image_.size(), "DRAM write beyond image: %llu",
                 static_cast<unsigned long long>(byteAddr));
        image_[idx] = w;
    }
    Addr sizeBytes() const { return image_.size() * sizeof(Word); }

    template <class Ar>
    void
    serializeState(Ar &ar)
    {
        for (DramChannel &c : channels_)
            c.serializeState(ar);
        io(ar, image_);
    }

  private:
    DramParams params_;
    std::vector<DramChannel> channels_;
    std::vector<Word> image_;
};

} // namespace plast

#endif // PLAST_SIM_DRAM_HPP
