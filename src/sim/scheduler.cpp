#include "sim/scheduler.hpp"

#include <algorithm>

#include "sim/stream.hpp"

namespace plast
{

void
Scheduler::addUnit(SimObject *u)
{
    u->sched_ = this;
    u->seq_ = nextSeq_++;
    u->inRun_ = true;
    run_.push_back(u);
    allUnits_.push_back(u);
}

void
Scheduler::addMem(SimObject *m)
{
    m->sched_ = this;
    m->seq_ = nextSeq_++;
    mem_ = m;
}

void
Scheduler::addStream(StreamBase *s)
{
    s->sched_ = this;
    s->seq_ = nextSeq_++;
    allStreams_.push_back(s);
}

void
Scheduler::rearmAll()
{
    for (SimObject *u : allUnits_)
        u->wakeQueued_ = false;
    wakePending_.clear();
    run_ = allUnits_; // registration order == seq order
    for (SimObject *u : run_)
        u->inRun_ = true;
    dirty_.clear();
    timers_.clear();
    for (StreamBase *s : allStreams_)
    {
        s->inDirty_ = false;
        s->armedAt_ = kNeverCycle;
        streamDirty(s);
    }
    // The memory phase polls itself back to quiescence.
    memBusy_ = mem_ != nullptr;
    memWork_ = false;
}

void
Scheduler::streamDirty(StreamBase *s)
{
    if (s->inDirty_)
        return;
    s->inDirty_ = true;
    dirty_.push_back(s);
}

namespace
{
struct TimerAfter
{
    bool
    operator()(const std::pair<Cycles, StreamBase *> &a,
               const std::pair<Cycles, StreamBase *> &b) const
    {
        return a.first > b.first;
    }
};
} // namespace

void
Scheduler::scheduleArrival(Cycles cycle, StreamBase *s)
{
    if (s->armedAt_ == cycle)
        return;
    s->armedAt_ = cycle;
    timers_.emplace_back(cycle, s);
    std::push_heap(timers_.begin(), timers_.end(), TimerAfter{});
}

void
Scheduler::applyWakes()
{
    if (wakePending_.empty())
        return;
    bool added = false;
    for (SimObject *u : wakePending_) {
        u->wakeQueued_ = false;
        if (!u->inRun_) {
            u->inRun_ = true;
            run_.push_back(u);
            added = true;
        }
    }
    wakePending_.clear();
    if (added) {
        std::sort(run_.begin(), run_.end(),
                  [](const SimObject *a, const SimObject *b) {
                      return a->seq_ < b->seq_;
                  });
    }
}

void
Scheduler::runCycle(Cycles now)
{
    curCycle_ = now;

    // Due arrival timers feed this cycle's commit phase.
    while (!timers_.empty() && timers_.front().first <= now) {
        std::pop_heap(timers_.begin(), timers_.end(), TimerAfter{});
        auto [cycle, s] = timers_.back();
        timers_.pop_back();
        if (s->armedAt_ == cycle)
            s->armedAt_ = kNeverCycle;
        streamDirty(s);
    }

    // Phase 1: evaluate awake units in deterministic order. A unit is
    // dropped from the active set the moment it reports kBlocked; wake
    // events queued during its own evaluate (memory-submit retry) are
    // honored via wakeQueued_.
    progress_ = false;
    size_t keep = 0;
    for (size_t i = 0; i < run_.size(); ++i) {
        SimObject *u = run_[i];
        u->inRun_ = false;
        Activity a = u->evaluate(now);
        if (a == Activity::kActive) {
            u->inRun_ = true;
            run_[keep++] = u;
            progress_ = true;
        } else {
            traceInstant(trace_, u->traceTrack(), TraceName::kSleep, now);
        }
    }
    run_.resize(keep);

    // Phase 2: the memory system (coalescing units + DRAM timing) runs
    // on submit cycles and then polls itself while non-quiescent.
    if (mem_ && (memBusy_ || memWork_)) {
        memWork_ = false;
        memBusy_ = (mem_->evaluate(now) == Activity::kActive);
        if (memBusy_)
            progress_ = true;
    }

    // Phase 3: commit dirty streams; route wakes. Dirt created from
    // here on (e.g. host-sink pops) belongs to the next cycle.
    deliveredHost_.clear();
    commitRun_.swap(dirty_);
    for (StreamBase *s : commitRun_)
        s->inDirty_ = false;
    for (StreamBase *s : commitRun_) {
        CommitResult r = s->commit(now);
        if (r.delivered) {
            if (s->consumer_)
                wakeUnit(s->consumer_);
            if (s->hostSlot_ >= 0)
                deliveredHost_.push_back(s);
        }
        if (r.drained && s->producer_)
            wakeUnit(s->producer_);
        if (r.nextArrival != kNeverCycle)
            scheduleArrival(r.nextArrival, s);
    }
    commitRun_.clear();

    applyWakes();

    if (trace_ && run_.size() != lastActiveSet_) {
        lastActiveSet_ = run_.size();
        trace_->counter(traceTrack_, TraceName::kActiveSet, now,
                        run_.size());
    }
}

bool
Scheduler::idle() const
{
    return run_.empty() && wakePending_.empty() && dirty_.empty() &&
           timers_.empty() && !memBusy_ && !memWork_;
}

bool
Scheduler::canFastForward() const
{
    return run_.empty() && wakePending_.empty() && dirty_.empty() &&
           !memBusy_ && !memWork_ && !timers_.empty();
}

Cycles
Scheduler::nextEventCycle() const
{
    return timers_.empty() ? kNeverCycle : timers_.front().first;
}

} // namespace plast
