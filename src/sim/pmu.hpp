/**
 * @file
 * Cycle-level model of a Pattern Memory Unit (Figure 4): a banked
 * scratchpad plus two access ports — a write port programmed with the
 * producer pattern's address calculation and a read port programmed
 * with the consumer's (§3.2). Each port owns a counter chain and a
 * scalar address datapath; gather/scatter ports take per-lane addresses
 * from a vector input and pay bank-conflict cycles per the banking mode.
 */

#ifndef PLAST_SIM_PMU_HPP
#define PLAST_SIM_PMU_HPP

#include <vector>

#include "arch/config.hpp"
#include "arch/params.hpp"
#include "sim/execplan.hpp"
#include "sim/scratchpad.hpp"
#include "sim/unitcommon.hpp"

namespace plast
{

class PmuSim : public SimUnit
{
  public:
    PmuSim(const ArchParams &params, uint32_t index, const PmuCfg &cfg,
           SimMode mode = SimMode::kInterp);

    void step(Cycles now) override;
    bool busy() const override;

    /** Work counters; cycle accounting lives in SimUnit::acct(). */
    struct Stats
    {
        uint64_t writeRuns = 0, readRuns = 0;
        uint64_t reads = 0, writes = 0; ///< vector accesses
        uint64_t wordsRead = 0, wordsWritten = 0;
    };
    const Stats &stats() const { return stats_; }
    const std::string &name() const { return cfg_.name; }

    /** Per-port trace tracks: read/write port runs overlap in time, so
     *  each port gets its own display track. */
    void
    bindPortTracks(uint16_t write, uint16_t write2, uint16_t read)
    {
        write_.track = write;
        write2_.track = write2;
        read_.track = read;
    }

    /** Test access to storage (checked against references in tests). */
    const Scratchpad &scratch() const { return scratch_; }
    /** Mutable access for ECC control and fault injection. */
    Scratchpad &scratch() { return scratch_; }

    template <class Ar>
    void
    serializeState(Ar &ar)
    {
        serializeUnitBase(ar);
        io(ar, scratch_);
        write_.serializeState(ar);
        write2_.serializeState(ar);
        read_.serializeState(ar);
        io(ar, stats_.writeRuns);
        io(ar, stats_.readRuns);
        io(ar, stats_.reads);
        io(ar, stats_.writes);
        io(ar, stats_.wordsRead);
        io(ar, stats_.wordsWritten);
    }

  private:
    /** Runtime state of one access port. */
    struct Port
    {
        const PmuPortCfg *cfg = nullptr;
        bool isWrite = false;
        enum class State { kIdle, kFilling, kRunning } state = State::kIdle;
        bool selfStarted = false;
        ChainState chain;
        uint32_t fill = 0;       ///< pipeline-fill countdown at run start
        uint32_t busy = 0;       ///< bank-conflict busy cycles remaining
        uint32_t bufIdx = 0;     ///< N-buffer pointer
        uint64_t runCount = 0;   ///< completed runs (swap/clear cadence)
        uint32_t appendCursor = 0; ///< FlatMap append position
        uint16_t track = 0;      ///< trace track of this port
        Cycles runStart = 0;     ///< cycle this run's tokens fired
        std::vector<uint8_t> scalarRefs;
        /** Issue/address staging reused across accesses so the hot
         *  path never allocates. Fully re-derived per access (a port's
         *  config fixes which fields each access writes before any
         *  read), so none of it is checkpointed. */
        Wavefront wfScratch;
        std::vector<uint32_t> addrScratch;
        std::vector<uint32_t> activeScratch;
        /** Lowered address path (derived, rebuilt on construction). */
        PmuPortPlan plan;
        /** PmuAddrPlan slot values for the current run. Evaluated
         *  lazily on first access — run start and checkpoint restore
         *  just clear the valid flag — so they are never on the tape
         *  and restore needs no stream-ordering guarantees. */
        std::vector<Word> runConsts;
        bool runConstsValid = false;

        template <class Ar>
        void
        serializeState(Ar &ar)
        {
            io(ar, state);
            io(ar, selfStarted);
            io(ar, chain);
            io(ar, fill);
            io(ar, busy);
            io(ar, bufIdx);
            io(ar, runCount);
            io(ar, appendCursor);
            io(ar, runStart);
            if constexpr (!Ar::kSaving)
                runConstsValid = false;
        }
    };

    bool stepPort(Port &port, Cycles now);
    bool portAccess(Port &port);
    bool portAccessPlanned(Port &port);

    ArchParams params_;
    uint32_t index_;
    PmuCfg cfg_;
    uint32_t lanes_;
    SimMode mode_;

    Scratchpad scratch_;
    Port write_, write2_, read_;
    Stats stats_;
};

} // namespace plast

#endif // PLAST_SIM_PMU_HPP
