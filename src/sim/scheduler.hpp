/**
 * @file
 * Activity-driven cycle scheduler. Instead of densely ticking every
 * unit and stream each cycle, the scheduler keeps an active set:
 *
 *  - units evaluate only while they report kActive; a kBlocked unit
 *    sleeps until a stream attached to one of its ports delivers
 *    (consumer wake) or drains (producer wake), or the memory system
 *    wakes it directly;
 *  - the memory system runs on cycles where an AG submitted a command
 *    and then polls itself while non-quiescent (DRAM timing is
 *    cycle-driven);
 *  - streams commit only on cycles where traffic was staged or an
 *    in-flight element is due; each in-flight element schedules its
 *    own arrival cycle, so fully idle regions cost zero per-cycle
 *    work and can be skipped wholesale (fast-forward).
 *
 * Deadlock detection falls out of the design: an empty active set
 * (no runnable unit, quiet memory, no dirty stream, no pending
 * arrival) while the root controller is incomplete IS the deadlock
 * condition — no windowed no-progress scan required.
 *
 * Determinism: units evaluate in registration order, which the fabric
 * keeps identical to the dense tick order (PCUs, PMUs, AGs, boxes), so
 * order-sensitive interactions (e.g. two AGs racing for one coalescing
 * unit) resolve exactly as under dense ticking. Cycle-level results
 * are bit-identical to the dense-tick baseline.
 */

#ifndef PLAST_SIM_SCHEDULER_HPP
#define PLAST_SIM_SCHEDULER_HPP

#include <utility>
#include <vector>

#include "base/trace.hpp"
#include "sim/simobject.hpp"

namespace plast
{

class StreamBase;

class Scheduler
{
  public:
    // ---- registration (fabric construction) --------------------------
    /** Register a unit; starts awake. Registration order defines the
     *  deterministic evaluation order. */
    void addUnit(SimObject *u);
    /** Register the memory-phase object (evaluated after all units). */
    void addMem(SimObject *m);
    /** Register a routed stream (commit phase). */
    void addStream(StreamBase *s);

    // ---- wake rules --------------------------------------------------
    /** Evaluate `u` starting next cycle. Inline: this is the hottest
     *  scheduler entry point (every stream delivery and every rejected
     *  memory submit lands here). */
    void
    wakeUnit(SimObject *u)
    {
        if (u->inRun_ || u->wakeQueued_)
            return;
        u->wakeQueued_ = true;
        wakePending_.push_back(u);
        traceInstant(trace_, u->traceTrack(), TraceName::kWake,
                     curCycle_);
    }
    /** The memory phase must run this cycle (an AG submitted). */
    void memWork() { memWork_ = true; }
    /** Commit `s` at the next commit phase. */
    void streamDirty(StreamBase *s);

    /** One full cycle: evaluate awake units in order, run the memory
     *  phase if needed, commit dirty streams and route wakes. */
    void runCycle(Cycles now);

    // ---- queries -----------------------------------------------------
    /** True when nothing can ever happen again without external input:
     *  no awake unit, no pending wake, quiet memory, no dirty stream,
     *  no scheduled arrival. */
    bool idle() const;
    /** True when the only pending work is a future stream arrival, so
     *  the clock can jump straight to nextEventCycle(). */
    bool canFastForward() const;
    /** Earliest scheduled arrival commit (kNeverCycle when none). */
    Cycles nextEventCycle() const;
    /** Did the last runCycle see unit or memory activity? (Equivalent
     *  of the dense tick's anyProgress().) */
    bool progressLastCycle() const { return progress_; }
    /** Host-bound streams that delivered during the last runCycle. */
    const std::vector<StreamBase *> &deliveredHost() const
    {
        return deliveredHost_;
    }
    /** Awake-unit count (diagnostics). */
    size_t awakeUnits() const { return run_.size(); }

    /**
     * Re-arm everything after a checkpoint restore or a fault
     * injection: every unit re-enters the active set and every stream
     * is queued for commit (re-arming its own arrival timer). Waking a
     * unit that is architecturally blocked is a no-op by construction
     * (it evaluates once, reports kBlocked and sleeps again), so this
     * is always safe — it trades a few evaluations for not having to
     * checkpoint the scheduler's transient bookkeeping at all.
     */
    void rearmAll();

    /** Attach the fabric's trace sink: sleep/wake instants land on each
     *  unit's own track, the active-set counter on `ownTrack`. */
    void
    setTrace(TraceSink *sink, uint16_t ownTrack)
    {
        trace_ = sink;
        traceTrack_ = ownTrack;
    }

  private:
    void scheduleArrival(Cycles cycle, StreamBase *s);
    void applyWakes();

    uint32_t nextSeq_ = 0;
    std::vector<SimObject *> run_;         ///< awake units, seq-sorted
    std::vector<SimObject *> wakePending_; ///< wakes for next cycle
    std::vector<SimObject *> allUnits_;    ///< every registered unit
    std::vector<StreamBase *> allStreams_; ///< every registered stream
    SimObject *mem_ = nullptr;
    bool memBusy_ = false; ///< memory phase polls while non-quiescent
    bool memWork_ = false; ///< memory phase forced this cycle
    std::vector<StreamBase *> dirty_;      ///< commit next commit phase
    std::vector<StreamBase *> commitRun_;  ///< scratch for runCycle
    /** Min-heap of pending arrival commits (cycle, stream). Entries
     *  are lazily invalidated: a stream re-armed to a different cycle
     *  leaves its old entry behind, which fires as a harmless no-op
     *  commit — exactly the semantics the old per-cycle map had. */
    std::vector<std::pair<Cycles, StreamBase *>> timers_;
    std::vector<StreamBase *> deliveredHost_;
    bool progress_ = false;

    TraceSink *trace_ = nullptr;
    uint16_t traceTrack_ = 0;
    Cycles curCycle_ = 0;       ///< timestamp for wake instants
    size_t lastActiveSet_ = ~size_t{0};
};

inline void
SimObject::requestWake()
{
    if (sched_)
        sched_->wakeUnit(this);
}

} // namespace plast

#endif // PLAST_SIM_SCHEDULER_HPP
