#include "sim/memsys.hpp"

#include <algorithm>

#include "base/logging.hpp"
#include "sim/scheduler.hpp"

namespace plast
{

// ====================================================================
// AgSim
// ====================================================================

AgSim::AgSim(const ArchParams &params, uint32_t index, const AgCfg &cfg,
             MemSystem &mem, SimMode mode)
    : params_(params), index_(index), cfg_(cfg), lanes_(params.pcu.lanes),
      mem_(mem), mode_(mode)
{
    // AG datapaths mirror the PMU scalar datapath (§3.4).
    ports.size(params.pmu.scalarIns, 2, 32, 1, 1, 32);
    chain_.configure(cfg_.chain, lanes_);
    trialChain_.configure(cfg_.chain, lanes_);
    std::vector<uint8_t> vecs;
    stageRefs(cfg_.addrStages, scalarRefs_, vecs);
    for (uint8_t ref : chainScalarRefs(cfg_.chain))
        scalarRefs_.push_back(ref);
    std::sort(scalarRefs_.begin(), scalarRefs_.end());
    scalarRefs_.erase(std::unique(scalarRefs_.begin(), scalarRefs_.end()),
                      scalarRefs_.end());
}

void
AgSim::step(Cycles now)
{
    progress_ = false;
    drainResponses(now);

    switch (state_) {
      case State::kIdle:
        if (tryStart(now))
            progress_ = true;
        return;
      case State::kRunning: {
        if (fill_ > 0) {
            --fill_;
            progress_ = true;
            return;
        }
        if (chain_.done()) {
            state_ = State::kDrainOut;
            progress_ = true;
            return;
        }
        bool issued = (cfg_.mode == AgMode::kDenseLoad ||
                       cfg_.mode == AgMode::kDenseStore)
                          ? issueDense(now)
                          : issueSparse(now);
        if (issued)
            progress_ = true;
        return;
      }
      case State::kDrainOut: {
        if (sparsePendingMask_ != 0) {
            if (retrySparse())
                progress_ = true;
            else
                classify(CycleClass::kDramWait);
            return;
        }
        if (dense_.empty() && sparse_.empty() && outstandingWrites_ == 0) {
            if (finishRun(now))
                progress_ = true;
            else
                classify(CycleClass::kOutputBackpressure);
        } else {
            classify(CycleClass::kDramWait);
        }
        return;
      }
    }
}

bool
AgSim::tryStart(Cycles now)
{
    if (!tokensReady(cfg_.ctrl, ports, selfStarted_)) {
        if (!cfg_.ctrl.tokenIns.empty())
            classify(CycleClass::kCreditBlocked);
        return false;
    }
    if (!scalarsReady(scalarRefs_, ports)) {
        classify(CycleClass::kInputStarved);
        return false;
    }
    consumeTokens(cfg_.ctrl, ports);
    selfStarted_ = true;
    chain_.reset(resolveBounds(cfg_.chain, ports));
    trialValid_ = false; // new run: scalars and chain position changed
    fill_ = static_cast<uint32_t>(cfg_.addrStages.size());
    state_ = State::kRunning;
    runStart_ = now;
    if (!cfg_.ctrl.tokenIns.empty())
        traceInstant(trace_, traceTrack_, TraceName::kTokens, now);
    ++stats_.runs;
    return true;
}

bool
AgSim::issueDense(Cycles now)
{
    const bool write = (cfg_.mode == AgMode::kDenseStore);
    if (write &&
        (cfg_.dataVecIn < 0 || !ports.vecIn[cfg_.dataVecIn].canPop())) {
        classify(CycleClass::kInputStarved);
        return false;
    }

    // Compute the command address from a copy of the chain; commit the
    // advance only if the coalescing unit accepts the command. The
    // specialized engine memoizes the trial: between a rejection and
    // the retry nothing the address depends on (chain position,
    // run-constant scalars) can change, so re-submits skip the stage
    // interpretation. The interpreter re-evaluates every attempt.
    if (mode_ != SimMode::kSpecialized || !trialValid_) {
        trialChain_.copyRunStateFrom(chain_);
        Wavefront &wf = wfScratch_;
        trialChain_.issueInto(wf);
        ScalarRegs regs;
        Word word_idx = evalScalarStages(cfg_.addrStages, cfg_.addrReg,
                                         wf, ports, regs);
        trialByteAddr_ = cfg_.base + static_cast<Addr>(word_idx) * 4;
        trialValid_ = true;
    }
    const Addr byte_addr = trialByteAddr_;

    uint64_t id = nextCmdId_;
    if (write) {
        const Vec &dv = ports.vecIn[cfg_.dataVecIn].front();
        uint32_t count = 0;
        std::array<Word, kMaxLanes> buf{};
        for (uint32_t l = 0; l < lanes_; ++l) {
            if (dv.valid(l))
                buf[count++] = dv.lane[l];
        }
        if (count == 0)
            count = 1; // degenerate all-masked store keeps the flow going
        if (!mem_.submitDense(cfg_.channel, this, id, byte_addr, count,
                              true, buf.data())) {
            classify(CycleClass::kDramWait);
            return false;
        }
        ports.vecIn[cfg_.dataVecIn].pop();
        outstandingWrites_ += count;
        stats_.wordsStored += count;
    } else {
        if (!mem_.submitDense(cfg_.channel, this, id, byte_addr,
                              cfg_.wordsPerCmd, false, nullptr)) {
            classify(CycleClass::kDramWait);
            return false;
        }
        DenseCmd cmd;
        cmd.id = id;
        cmd.words = cfg_.wordsPerCmd;
        cmd.issuedAt = now;
        if (!dataPool_.empty()) {
            cmd.data = std::move(dataPool_.back());
            dataPool_.pop_back();
        }
        cmd.data.assign(cfg_.wordsPerCmd, 0);
        dense_.push_back(std::move(cmd));
        stats_.wordsLoaded += cfg_.wordsPerCmd;
    }
    ++nextCmdId_;
    ++stats_.denseCmds;
    chain_.copyRunStateFrom(trialChain_);
    trialValid_ = false; // chain advanced: next command, new address
    return true;
}

bool
AgSim::issueSparse(Cycles now)
{
    if (sparsePendingMask_ != 0) {
        if (retrySparse())
            return true;
        classify(CycleClass::kDramWait);
        return false;
    }

    const bool write = (cfg_.mode == AgMode::kSparseStore);
    if (cfg_.addrVecIn < 0 || !ports.vecIn[cfg_.addrVecIn].canPop()) {
        classify(CycleClass::kInputStarved);
        return false;
    }
    if (write &&
        (cfg_.dataVecIn < 0 || !ports.vecIn[cfg_.dataVecIn].canPop())) {
        classify(CycleClass::kInputStarved);
        return false;
    }

    trialChain_.copyRunStateFrom(chain_);
    Wavefront &wf = wfScratch_;
    trialChain_.issueInto(wf);

    const Vec &av = ports.vecIn[cfg_.addrVecIn].front();
    uint32_t mask = wf.mask & av.mask;
    Vec byte_addrs;
    byte_addrs.mask = mask;
    for (uint32_t l = 0; l < lanes_; ++l) {
        byte_addrs.lane[l] = static_cast<Word>(
            cfg_.base + static_cast<Addr>(av.lane[l]) * 4);
    }

    uint64_t id = nextCmdId_++;
    ++stats_.sparseVecs;
    chain_.copyRunStateFrom(trialChain_);

    if (write) {
        const Vec &dv = ports.vecIn[cfg_.dataVecIn].front();
        Vec payload = dv;
        payload.mask = mask & dv.mask;
        byte_addrs.mask = payload.mask;
        ports.vecIn[cfg_.addrVecIn].pop();
        ports.vecIn[cfg_.dataVecIn].pop();
        outstandingWrites_ += __builtin_popcount(payload.mask);
        stats_.wordsStored += __builtin_popcount(payload.mask);
        sparsePendingWrite_ = true;
        sparsePendingAddrs_ = byte_addrs;
        sparsePendingData_ = payload;
        sparsePendingMask_ = payload.mask;
        sparsePendingId_ = id;
    } else {
        ports.vecIn[cfg_.addrVecIn].pop();
        SparseCmd cmd;
        cmd.id = id;
        cmd.mask = mask;
        cmd.remaining = __builtin_popcount(mask);
        cmd.data.mask = mask;
        cmd.issuedAt = now;
        sparse_.push_back(cmd);
        stats_.wordsLoaded += cmd.remaining;
        sparsePendingWrite_ = false;
        sparsePendingAddrs_ = byte_addrs;
        sparsePendingMask_ = mask;
        sparsePendingId_ = id;
    }
    return retrySparse() || true;
}

bool
AgSim::retrySparse()
{
    Vec attempt = sparsePendingAddrs_;
    attempt.mask = sparsePendingMask_;
    Vec payload = sparsePendingData_;
    payload.mask = sparsePendingMask_;
    uint32_t accepted = mem_.submitSparse(
        cfg_.channel, this, sparsePendingId_, attempt, lanes_,
        sparsePendingWrite_, sparsePendingWrite_ ? &payload : nullptr);
    sparsePendingMask_ &= ~accepted;
    return accepted != 0;
}

void
AgSim::drainResponses(Cycles now)
{
    if (cfg_.mode == AgMode::kDenseLoad && !dense_.empty()) {
        DenseCmd &front = dense_.front();
        if (front.received == front.words && cfg_.dataVecOut >= 0) {
            if (!ports.vecOut[cfg_.dataVecOut].canPush()) {
                classify(CycleClass::kOutputBackpressure);
                return;
            }
            // Emit the next vector of this command (one per cycle).
            static_assert(kMaxLanes <= 32, "mask width");
            uint32_t pushed = front.pushed;
            uint32_t n = std::min(lanes_, front.words - pushed);
            Vec v;
            for (uint32_t l = 0; l < n; ++l) {
                v.lane[l] = front.data[pushed + l];
                v.setValid(l);
            }
            ports.vecOut[cfg_.dataVecOut].push(v);
            front.pushed += n;
            progress_ = true;
            if (front.pushed >= front.words) {
                traceAsync(trace_, traceTrack_, TraceName::kDramCmd,
                           front.issuedAt, now + 1, front.id);
                dataPool_.push_back(std::move(front.data));
                dense_.pop_front();
            }
        }
    } else if (cfg_.mode == AgMode::kSparseLoad && !sparse_.empty()) {
        SparseCmd &front = sparse_.front();
        if (front.remaining == 0 && cfg_.dataVecOut >= 0) {
            if (!ports.vecOut[cfg_.dataVecOut].canPush()) {
                classify(CycleClass::kOutputBackpressure);
                return;
            }
            ports.vecOut[cfg_.dataVecOut].push(front.data);
            traceAsync(trace_, traceTrack_, TraceName::kDramCmd,
                       front.issuedAt, now + 1, front.id);
            sparse_.pop_front();
            progress_ = true;
        }
    }
}

bool
AgSim::finishRun(Cycles now)
{
    if (!canPushDone(cfg_.ctrl, ports))
        return false;
    popScalars(scalarRefs_, ports);
    pushDone(cfg_.ctrl, ports);
    traceSpan(trace_, traceTrack_, TraceName::kRun, runStart_, now + 1);
    traceInstant(trace_, traceTrack_, TraceName::kDone, now);
    state_ = State::kIdle;
    return true;
}

void
AgSim::deliverWords(uint64_t cmdId, uint32_t wordOffset, const Word *data,
                    uint32_t count)
{
    // Commands are queued in id order (ids allocate monotonically and
    // retire from the front), so the scan is a binary search.
    auto it = std::lower_bound(
        dense_.begin(), dense_.end(), cmdId,
        [](const DenseCmd &cmd, uint64_t id) { return cmd.id < id; });
    panic_if(it == dense_.end() || it->id != cmdId,
             "AG %u: deliverWords for unknown command %llu", index_,
             static_cast<unsigned long long>(cmdId));
    DenseCmd &cmd = *it;
    panic_if(wordOffset + count > cmd.words,
             "AG %u: burst overflows command", index_);
    std::copy(data, data + count, cmd.data.begin() + wordOffset);
    cmd.received += count;
    requestWake();
}

void
AgSim::deliverLane(uint64_t cmdId, uint32_t lane, Word data)
{
    auto it = std::lower_bound(
        sparse_.begin(), sparse_.end(), cmdId,
        [](const SparseCmd &cmd, uint64_t id) { return cmd.id < id; });
    panic_if(it == sparse_.end() || it->id != cmdId,
             "AG %u: deliverLane for unknown command %llu", index_,
             static_cast<unsigned long long>(cmdId));
    SparseCmd &cmd = *it;
    cmd.data.lane[lane] = data;
    panic_if(cmd.remaining == 0, "AG %u: extra lane delivery", index_);
    --cmd.remaining;
    requestWake();
}

void
AgSim::ackWrite(uint64_t cmdId, uint32_t count)
{
    (void)cmdId;
    panic_if(outstandingWrites_ < count, "AG %u: spurious write ack",
             index_);
    outstandingWrites_ -= count;
    requestWake();
}

// ====================================================================
// MemSystem
// ====================================================================

MemSystem::MemSystem(const ArchParams &params)
    : params_(params), dram_(params.dram), cus_(params.dram.channels)
{
}

uint64_t
MemSystem::allocBurst(Addr lineAddr, bool write)
{
    uint64_t id = nextBurst_++;
    bursts_[id] = Burst{lineAddr, write, false, {}};
    return id;
}

bool
MemSystem::submitDense(uint32_t cu, AgSim *ag, uint64_t cmdId,
                       Addr byteAddr, uint32_t words, bool write,
                       const Word *data)
{
    // A submit means the memory system has work this cycle, and a
    // rejected AG must poll again next cycle (it gets no other event).
    if (sched())
        sched()->memWork();
    CuState &c = cus_.at(cu);
    if (c.acceptedThisCycle) {
        ag->requestWake();
        return false;
    }
    const Addr first_line = byteAddr / kBurstBytes;
    const Addr last_line = (byteAddr + words * 4 - 1) / kBurstBytes;
    const uint32_t n_bursts = static_cast<uint32_t>(last_line - first_line
                                                    + 1);
    panic_if(n_bursts > params_.coalescerMaxOutstanding,
             "dense command of %u bursts can never satisfy the "
             "outstanding budget (%u)",
             n_bursts, params_.coalescerMaxOutstanding);
    if (c.outstanding + n_bursts > params_.coalescerMaxOutstanding) {
        ag->requestWake();
        return false;
    }
    c.acceptedThisCycle = true;
    c.outstanding += n_bursts;
    ++stats_.denseCmds;

    dram_.reserve(byteAddr + static_cast<Addr>(words) * 4);
    if (write) {
        for (uint32_t w = 0; w < words; ++w)
            dram_.writeWord(byteAddr + static_cast<Addr>(w) * 4, data[w]);
        stats_.bytesWritten += static_cast<uint64_t>(words) * 4;
    } else {
        stats_.bytesRead += static_cast<uint64_t>(words) * 4;
    }

    for (Addr line = first_line; line <= last_line; ++line) {
        Addr line_byte = line * kBurstBytes;
        Addr startB = std::max<Addr>(line_byte, byteAddr);
        Addr endB = std::min<Addr>(line_byte + kBurstBytes,
                                   byteAddr + static_cast<Addr>(words) * 4);
        uint64_t id = allocBurst(line_byte, write);
        Waiter w{};
        w.ag = ag;
        w.cmdId = cmdId;
        w.sparse = false;
        w.wordOffset = static_cast<uint32_t>((startB - byteAddr) / 4);
        w.wordCount = static_cast<uint32_t>((endB - startB) / 4);
        w.lineOffset = startB;
        bursts_[id].waiters.push_back(w);
        bursts_[id].cu = cu;
        c.issueQueue.push_back(id);
    }
    return true;
}

uint32_t
MemSystem::submitSparse(uint32_t cu, AgSim *ag, uint64_t cmdId,
                        const Vec &addrs, uint32_t lanes, bool write,
                        const Vec *data)
{
    if (sched())
        sched()->memWork();
    CuState &c = cus_.at(cu);
    if (c.acceptedThisCycle) {
        ag->requestWake();
        return 0;
    }

    uint32_t accepted = 0;
    for (uint32_t l = 0; l < lanes; ++l) {
        if (!addrs.valid(l))
            continue;
        Addr byte_addr = addrs.lane[l];
        Addr line = (byte_addr / kBurstBytes) * kBurstBytes;

        // Merge with a pending burst when possible.
        auto it = c.mergeTable.find(line);
        bool mergeable = false;
        if (it != c.mergeTable.end()) {
            auto bit = bursts_.find(it->second);
            if (bit != bursts_.end() && bit->second.write == write &&
                !(write && bit->second.issued))
                mergeable = true;
        }
        if (!mergeable &&
            (c.mergeTable.size() >= params_.coalescerCacheLines ||
             c.outstanding >= params_.coalescerMaxOutstanding)) {
            continue; // this lane waits for a free cache entry
        }

        dram_.reserve(line + kBurstBytes);
        if (write) {
            dram_.writeWord(byte_addr, data->lane[l]);
            stats_.bytesWritten += 4;
        } else {
            stats_.bytesRead += 4;
        }

        uint64_t id;
        if (mergeable) {
            id = it->second;
            ++stats_.coalescedLanes;
        } else {
            id = allocBurst(line, write);
            bursts_[id].cu = cu;
            c.mergeTable[line] = id;
            c.issueQueue.push_back(id);
            ++c.outstanding;
        }
        Waiter w{};
        w.ag = ag;
        w.cmdId = cmdId;
        w.sparse = true;
        w.lane = l;
        w.byteAddr = byte_addr;
        w.wordCount = 1;
        bursts_[id].waiters.push_back(w);
        accepted |= (1u << l);
    }
    if (accepted) {
        c.acceptedThisCycle = true;
        ++stats_.sparseCmds;
    } else {
        ag->requestWake();
    }
    return accepted;
}

void
MemSystem::step(Cycles now)
{
    for (auto &c : cus_)
        c.acceptedThisCycle = false;

    // Each coalescing unit issues at most one burst per cycle.
    for (auto &c : cus_) {
        if (c.issueQueue.empty())
            continue;
        uint64_t id = c.issueQueue.front();
        Burst &b = bursts_.at(id);
        if (b.notBefore > now)
            continue; // error-retry backoff window still open
        DramChannel &ch = dram_.channel(dram_.channelOf(b.lineAddr));
        if (!ch.canSubmit())
            continue;
        ch.submit(DramReq{b.lineAddr, b.write, id}, now);
        b.issued = true;
        b.issuedAt = now;
        c.issueQueue.pop_front();
        ++stats_.bursts;
    }

    completed_.clear();
    dram_.step(now, completed_);

    for (const DramReq &req : completed_) {
        auto it = bursts_.find(req.tag);
        panic_if(it == bursts_.end(), "DRAM completed unknown burst");
        Burst &b = it->second;

        // Consult the fault model on read responses. Write data rides
        // the command path (CRC-protected, committed at submit), so
        // only read bursts can return corrupted.
        uint32_t corruptWord = ~0u, corruptBit = 0;
        if (faultHook_ && !b.write) {
            MemFaultHook::BurstFault f =
                faultHook_->onBurstResponse(b.lineAddr, now);
            switch (f.action) {
              case MemFaultHook::BurstAction::kClean:
                break;
              case MemFaultHook::BurstAction::kCorrected:
                ++stats_.dramCorrected;
                break;
              case MemFaultHook::BurstAction::kCorrupt:
                corruptWord = (f.bit / 32) % (kBurstBytes / 4);
                corruptBit = f.bit % 32;
                break;
              case MemFaultHook::BurstAction::kRetry: {
                // Detected-uncorrectable response: drop the data and
                // re-issue the burst after an exponential backoff.
                ++stats_.dramRetries;
                b.issued = false;
                b.notBefore =
                    now + (Cycles{params_.dram.tBurst} << std::min(
                                                            b.retries, 8u));
                ++b.retries;
                cus_.at(b.cu).issueQueue.push_back(req.tag);
                continue;
              }
            }
        }
        const Addr corruptByte =
            b.lineAddr + static_cast<Addr>(corruptWord) * 4;

        for (const Waiter &w : b.waiters) {
            if (b.write) {
                w.ag->ackWrite(w.cmdId, w.wordCount);
            } else if (w.sparse) {
                Word data = dram_.readWord(w.byteAddr);
                if (corruptWord != ~0u && w.byteAddr == corruptByte)
                    data ^= Word{1} << corruptBit;
                w.ag->deliverLane(w.cmdId, w.lane, data);
            } else {
                std::array<Word, kBurstBytes / 4> buf;
                panic_if(w.wordCount > buf.size(),
                         "burst waiter wider than a line");
                for (uint32_t i = 0; i < w.wordCount; ++i) {
                    Addr a = w.lineOffset + static_cast<Addr>(i) * 4;
                    buf[i] = dram_.readWord(a);
                    if (corruptWord != ~0u && a == corruptByte)
                        buf[i] ^= Word{1} << corruptBit;
                }
                w.ag->deliverWords(w.cmdId, w.wordOffset, buf.data(),
                                   w.wordCount);
            }
        }
        CuState &c = cus_.at(b.cu);
        panic_if(c.outstanding == 0, "coalescer outstanding underflow");
        --c.outstanding;
        if (b.cu < cuTracks_.size())
            traceAsync(trace_, cuTracks_[b.cu], TraceName::kBurst,
                       b.issuedAt, now + 1, req.tag);
        auto mit = c.mergeTable.find(b.lineAddr);
        if (mit != c.mergeTable.end() && mit->second == req.tag)
            c.mergeTable.erase(mit);
        bursts_.erase(it);
    }

    // Outstanding-burst counter per coalescing unit, on change only.
    if (!cuTracks_.empty()) {
        lastOutstanding_.resize(cus_.size(), 0);
        for (size_t i = 0; i < cus_.size(); ++i) {
            if (cus_[i].outstanding != lastOutstanding_[i]) {
                lastOutstanding_[i] = cus_[i].outstanding;
                traceCounter(trace_, cuTracks_[i], TraceName::kOutstanding,
                             now, cus_[i].outstanding);
            }
        }
    }
}

bool
MemSystem::quiescent() const
{
    if (!bursts_.empty())
        return false;
    for (const auto &c : cus_) {
        if (!c.issueQueue.empty() || c.outstanding != 0)
            return false;
    }
    return dram_.quiescent();
}

} // namespace plast
