#include "sim/wavefront.hpp"

#include <algorithm>

namespace plast
{

void
ChainState::issueInto(Wavefront &wf)
{
    wf.mask = 0;
    wf.firstLevels = 0;
    wf.lastLevels = 0;
    wf.vecCtr = -1;
    wf.vecStep = 1;

    const size_t n = cfg_.ctrs.size();
    // Define the full counter snapshot, not just the configured depth:
    // issue targets may be recycled pool wavefronts (sim/pcu.cpp), and
    // a fresh Wavefront zero-initialises ctr — reuse must match. The
    // live slots are overwritten below, so only the tail needs zeroing.
    std::fill(wf.ctr.begin() + static_cast<long>(n), wf.ctr.end(), 0);

    if (n == 0) {
        // Empty chain: one wavefront per run, single "lane 0" index.
        panic_if(oneshotFired_, "empty chain issued twice");
        wf.mask = 1;
        wf.firstLevels = 0xffff;
        wf.lastLevels = 0xffff;
        oneshotFired_ = true;
        done_ = true;
        return;
    }

    panic_if(done_, "issue on completed chain");

    for (size_t i = 0; i < n; ++i)
        wf.ctr[i] = cur_[i];

    // Lane validity: non-vectorized chains issue a full wavefront whose
    // every lane sees the same indices; vectorized chains mask lanes at
    // or beyond the innermost bound.
    const CounterCfg &inner = cfg_.ctrs[n - 1];
    const uint32_t full = lanes_ >= 32 ? ~0u : (1u << lanes_) - 1;
    if (inner.vectorized) {
        wf.vecCtr = static_cast<int8_t>(n - 1);
        wf.vecStep = inner.step;
        if (inner.step > 0) {
            // Valid lanes are the contiguous prefix where
            // cur + l*step < bound: ceil((bound - cur) / step) lanes.
            int64_t left = bounds_[n - 1] - cur_[n - 1];
            if (left > 0) {
                int64_t k = (left + inner.step - 1) / inner.step;
                wf.mask = k >= lanes_ ? full
                                      : (1u << static_cast<uint32_t>(k)) - 1;
            }
        } else {
            for (uint32_t l = 0; l < lanes_; ++l) {
                int64_t v =
                    cur_[n - 1] + static_cast<int64_t>(l) * inner.step;
                if (v < bounds_[n - 1])
                    wf.setValid(l);
            }
        }
    } else {
        wf.mask = full;
    }

    // First/last flags per level: level k is "first" when counters
    // k..n-1 are all at their starting value, "last" when this is the
    // final wavefront for counters k..n-1.
    bool first_inner = true, last_inner = true;
    std::array<bool, kMaxCtrs> first{}, last{};
    for (size_t i = n; i-- > 0;) {
        const CounterCfg &cc = cfg_.ctrs[i];
        int64_t per = (cc.vectorized ? cc.step * lanes_ : cc.step);
        bool at_min = cur_[i] == cc.min;
        bool at_last = cur_[i] + per >= bounds_[i];
        first[i] = at_min && first_inner;
        last[i] = at_last && last_inner;
        first_inner = first[i];
        last_inner = last[i];
    }
    for (size_t i = 0; i < n; ++i) {
        if (first[i])
            wf.firstLevels |= (1u << i);
        if (last[i])
            wf.lastLevels |= (1u << i);
    }

    // Advance the chain (innermost fastest).
    for (size_t i = n; i-- > 0;) {
        const CounterCfg &cc = cfg_.ctrs[i];
        int64_t per = (cc.vectorized ? cc.step * lanes_ : cc.step);
        cur_[i] += per;
        if (cur_[i] < bounds_[i])
            return;
        cur_[i] = cc.min;
    }
    done_ = true;
}

namespace
{
// Ensure Wavefront helpers referenced above are instantiated.
} // namespace

} // namespace plast
