/**
 * @file
 * Counter-chain runtime state and the wavefront record that travels down
 * a PCU pipeline: one wavefront per issued vector of pattern indices.
 */

#ifndef PLAST_SIM_WAVEFRONT_HPP
#define PLAST_SIM_WAVEFRONT_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "arch/config.hpp"
#include "base/logging.hpp"
#include "base/stateio.hpp"
#include "base/types.hpp"

namespace plast
{

constexpr uint32_t kMaxRegs = 16;
constexpr uint32_t kMaxCtrs = 8;
constexpr uint32_t kMaxVecPorts = 10;

/**
 * A wavefront: the pipeline-register contents of one index vector as it
 * moves through the stages, plus the counter snapshot and fold-boundary
 * flags captured at issue.
 */
struct Wavefront
{
    /** Pipeline registers, regs x lanes. */
    std::array<std::array<Word, kMaxLanes>, kMaxRegs> regs{};
    /** Per-lane validity (partial last vectors, FlatMap filtering). */
    uint32_t mask = 0;
    /** Scalar counter snapshot; lane l of a vectorized counter sees
     *  ctr[i] + l*step. */
    std::array<int64_t, kMaxCtrs> ctr{};
    int64_t vecStep = 1;    ///< step of the vectorized innermost counter
    int8_t vecCtr = -1;     ///< which counter is vectorized (-1: none)
    /** Bit k set: counters k..innermost are at their first iteration. */
    uint16_t firstLevels = 0;
    /** Bit k set: counters k..innermost are at their final iteration. */
    uint16_t lastLevels = 0;
    /** Data popped from vector inputs for this wavefront. */
    std::array<Vec, kMaxVecPorts> vecIn{};
    /** Issue cycle, for retire-time trace intervals. */
    Cycles issuedAt = 0;

    bool firstAtLevel(uint8_t lvl) const { return (firstLevels >> lvl) & 1; }
    bool lastAtLevel(uint8_t lvl) const { return (lastLevels >> lvl) & 1; }
    bool valid(uint32_t lane) const { return (mask >> lane) & 1u; }
    void setValid(uint32_t lane) { mask |= (1u << lane); }
    void clearValid(uint32_t lane) { mask &= ~(1u << lane); }
    uint32_t popcountValid() const { return __builtin_popcount(mask); }

    /** Value of counter `idx` as seen by `lane`. */
    int64_t
    ctrLane(uint8_t idx, uint32_t lane) const
    {
        if (static_cast<int8_t>(idx) == vecCtr)
            return ctr[idx] + static_cast<int64_t>(lane) * vecStep;
        return ctr[idx];
    }

    template <class Ar>
    void
    serializeState(Ar &ar)
    {
        io(ar, regs);
        io(ar, mask);
        io(ar, ctr);
        io(ar, vecStep);
        io(ar, vecCtr);
        io(ar, firstLevels);
        io(ar, lastLevels);
        io(ar, vecIn);
        io(ar, issuedAt);
    }
};

/**
 * Runtime state of a configured counter chain. Dynamic bounds
 * (CounterCfg::maxFromScalarIn) are resolved by the owning unit when a
 * run starts and passed to reset().
 */
class ChainState
{
  public:
    void
    configure(const ChainCfg &cfg, uint32_t lanes)
    {
        cfg_ = cfg;
        lanes_ = lanes;
        panic_if(cfg.ctrs.size() > kMaxCtrs, "counter chain too deep");
    }

    /** Begin a run; `bounds` are the resolved per-counter maxima. */
    void
    reset(const std::vector<int64_t> &bounds)
    {
        bounds_ = bounds;
        cur_.assign(cfg_.ctrs.size(), 0);
        for (size_t i = 0; i < cfg_.ctrs.size(); ++i)
            cur_[i] = cfg_.ctrs[i].min;
        done_ = cfg_.ctrs.empty() ? false : trips() == 0;
        oneshotFired_ = false;
    }

    bool done() const { return done_; }

    size_t depth() const { return cfg_.ctrs.size(); }

    /**
     * Capture the current chain position into a wavefront (counter
     * values, per-level first/last flags, lane validity) and advance.
     */
    void issueInto(Wavefront &wf);

    /** Copy another identically-configured chain's run position without
     *  touching configuration. Reuses vector capacity, so the AG's
     *  speculative trial-issue does not allocate per attempt. */
    void
    copyRunStateFrom(const ChainState &o)
    {
        cur_.assign(o.cur_.begin(), o.cur_.end());
        bounds_.assign(o.bounds_.begin(), o.bounds_.end());
        done_ = o.done_;
        oneshotFired_ = o.oneshotFired_;
    }

    /** Checkpoint the run-position state (cfg_/lanes_ are rebuilt from
     *  the FabricConfig and never serialized). */
    template <class Ar>
    void
    serializeState(Ar &ar)
    {
        io(ar, cur_);
        io(ar, bounds_);
        io(ar, done_);
        io(ar, oneshotFired_);
    }

  private:
    int64_t
    trips() const
    {
        int64_t t = 1;
        for (size_t i = 0; i < cfg_.ctrs.size(); ++i)
            t *= cfg_.ctrs[i].trips(bounds_[i], lanes_);
        return t;
    }

    ChainCfg cfg_;
    uint32_t lanes_ = 1;
    std::vector<int64_t> cur_;
    std::vector<int64_t> bounds_;
    bool done_ = true;
    bool oneshotFired_ = false;
};

} // namespace plast

#endif // PLAST_SIM_WAVEFRONT_HPP
