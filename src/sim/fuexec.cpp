#include "sim/fuexec.hpp"

#include <algorithm>
#include <cmath>

#include "base/logging.hpp"

namespace plast
{

Word
fuExec(FuOp op, Word a, Word b, Word c)
{
    switch (op) {
      case FuOp::kNop:
        return a;
      case FuOp::kIAdd:
        return intToWord(wordToInt(a) + wordToInt(b));
      case FuOp::kISub:
        return intToWord(wordToInt(a) - wordToInt(b));
      case FuOp::kIMul:
        return intToWord(wordToInt(a) * wordToInt(b));
      case FuOp::kIDiv:
        return wordToInt(b) == 0 ? 0
                                 : intToWord(wordToInt(a) / wordToInt(b));
      case FuOp::kIMod:
        return wordToInt(b) == 0 ? 0
                                 : intToWord(wordToInt(a) % wordToInt(b));
      case FuOp::kIMin:
        return intToWord(std::min(wordToInt(a), wordToInt(b)));
      case FuOp::kIMax:
        return intToWord(std::max(wordToInt(a), wordToInt(b)));
      case FuOp::kIAbs:
        return intToWord(std::abs(wordToInt(a)));
      case FuOp::kAnd:
        return a & b;
      case FuOp::kOr:
        return a | b;
      case FuOp::kXor:
        return a ^ b;
      case FuOp::kNot:
        return ~a;
      case FuOp::kShl:
        return a << (b & 31u);
      case FuOp::kShr:
        return a >> (b & 31u);
      case FuOp::kILt:
        return wordToInt(a) < wordToInt(b) ? 1 : 0;
      case FuOp::kILe:
        return wordToInt(a) <= wordToInt(b) ? 1 : 0;
      case FuOp::kIGt:
        return wordToInt(a) > wordToInt(b) ? 1 : 0;
      case FuOp::kIGe:
        return wordToInt(a) >= wordToInt(b) ? 1 : 0;
      case FuOp::kIEq:
        return a == b ? 1 : 0;
      case FuOp::kINe:
        return a != b ? 1 : 0;
      case FuOp::kFAdd:
        return floatToWord(wordToFloat(a) + wordToFloat(b));
      case FuOp::kFSub:
        return floatToWord(wordToFloat(a) - wordToFloat(b));
      case FuOp::kFMul:
        return floatToWord(wordToFloat(a) * wordToFloat(b));
      case FuOp::kFDiv:
        return floatToWord(wordToFloat(a) / wordToFloat(b));
      case FuOp::kFMin:
        return floatToWord(std::min(wordToFloat(a), wordToFloat(b)));
      case FuOp::kFMax:
        return floatToWord(std::max(wordToFloat(a), wordToFloat(b)));
      case FuOp::kFAbs:
        return floatToWord(std::fabs(wordToFloat(a)));
      case FuOp::kFNeg:
        return floatToWord(-wordToFloat(a));
      case FuOp::kFLt:
        return wordToFloat(a) < wordToFloat(b) ? 1 : 0;
      case FuOp::kFLe:
        return wordToFloat(a) <= wordToFloat(b) ? 1 : 0;
      case FuOp::kFGt:
        return wordToFloat(a) > wordToFloat(b) ? 1 : 0;
      case FuOp::kFGe:
        return wordToFloat(a) >= wordToFloat(b) ? 1 : 0;
      case FuOp::kFEq:
        return wordToFloat(a) == wordToFloat(b) ? 1 : 0;
      case FuOp::kFNe:
        return wordToFloat(a) != wordToFloat(b) ? 1 : 0;
      case FuOp::kFExp:
        return floatToWord(std::exp(wordToFloat(a)));
      case FuOp::kFLog:
        return floatToWord(std::log(wordToFloat(a)));
      case FuOp::kFSqrt:
        return floatToWord(std::sqrt(wordToFloat(a)));
      case FuOp::kFRecip:
        return floatToWord(1.0f / wordToFloat(a));
      case FuOp::kI2F:
        return floatToWord(static_cast<float>(wordToInt(a)));
      case FuOp::kF2I:
        return intToWord(static_cast<int32_t>(wordToFloat(a)));
      case FuOp::kMux:
        return a != 0 ? b : c;
      case FuOp::kFMA:
        return floatToWord(wordToFloat(a) * wordToFloat(b) +
                           wordToFloat(c));
      case FuOp::kIMA:
        return intToWord(wordToInt(a) * wordToInt(b) + wordToInt(c));
      default:
        panic("fuExec: unknown op %d", static_cast<int>(op));
    }
}

} // namespace plast
