#include "sim/fuexec.hpp"

// fuApply/fuExec are fully inline (fuexec.hpp) so interpreter loops
// and monomorphic kernels pay no call; this TU just compiles the
// header standalone as a sanity check.
