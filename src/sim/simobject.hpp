/**
 * @file
 * The unified component interface of the activity-driven simulation
 * core. Every ticked component — compute/memory units, the off-chip
 * memory system, and the routed streams — is a SimObject with a
 * two-phase tick:
 *
 *   evaluate(now)  reads committed state, performs this cycle's work
 *                  and stages stream pushes/pops (units and the memory
 *                  system implement this phase);
 *   commit(now)    makes staged state visible to the next cycle
 *                  (streams implement this phase).
 *
 * The activity contract: evaluate() returns kActive when the object
 * did work this cycle or can still do work next cycle without new
 * input, and kBlocked when nothing can change until an external wake
 * event (an input arrival, an output drain, or a memory-system
 * callback). The Scheduler uses that report to drop blocked objects
 * from the per-cycle active set; wake events re-arm them.
 */

#ifndef PLAST_SIM_SIMOBJECT_HPP
#define PLAST_SIM_SIMOBJECT_HPP

#include <cstdint>

#include "base/trace.hpp"
#include "base/types.hpp"

namespace plast
{

class Scheduler;

/** Sentinel cycle value: "no pending event". */
inline constexpr Cycles kNeverCycle = ~Cycles{0};

enum class Activity : uint8_t
{
    kBlocked, ///< did nothing; cannot progress until an external wake
    kActive,  ///< did work, or may do work next cycle without new input
};

/** Outcome of a stream commit, used by the scheduler to route wakes. */
struct CommitResult
{
    /** >= 1 element became visible to the consumer this cycle. */
    bool delivered = false;
    /** >= 1 staged pop was applied (producer-side space freed). */
    bool drained = false;
    /** Earliest cycle at which this object must commit again for an
     *  in-flight element to arrive on time (kNeverCycle when none). */
    Cycles nextArrival = kNeverCycle;
};

class SimObject
{
  public:
    virtual ~SimObject() = default;

    /** Phase 1: do this cycle's work, staging stream traffic. */
    virtual Activity evaluate(Cycles now)
    {
        (void)now;
        return Activity::kBlocked;
    }

    /** Phase 2: make staged state architecturally visible. */
    virtual CommitResult commit(Cycles now)
    {
        (void)now;
        return {};
    }

    /** Ask the scheduler (when attached) to evaluate this object next
     *  cycle. No-op under dense ticking. Used by the memory system to
     *  wake AGs on response delivery and submit-retry. */
    void requestWake();

    /** Attach the fabric's trace sink (null = tracing off). */
    void
    bindTrace(TraceSink *sink, uint16_t track)
    {
        trace_ = sink;
        traceTrack_ = track;
    }
    uint16_t traceTrack() const { return traceTrack_; }

  protected:
    Scheduler *sched() const { return sched_; }

    TraceSink *trace_ = nullptr; ///< null when tracing is off
    uint16_t traceTrack_ = 0;

  private:
    friend class Scheduler;
    Scheduler *sched_ = nullptr;
    uint32_t seq_ = 0;          ///< deterministic evaluation order
    bool inRun_ = false;        ///< member of the current active set
    bool wakeQueued_ = false;   ///< pending wake for the next cycle
};

} // namespace plast

#endif // PLAST_SIM_SIMOBJECT_HPP
