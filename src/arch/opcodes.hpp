/**
 * @file
 * Functional-unit opcode set.
 *
 * PCU functional units perform 32-bit word-level arithmetic and binary
 * operations, including floating point and integer operations (§3.1).
 * Transcendentals (exp/log/sqrt) are included as pipelined special
 * functions; they occupy one logical stage like every other FU op.
 */

#ifndef PLAST_ARCH_OPCODES_HPP
#define PLAST_ARCH_OPCODES_HPP

#include <cstdint>
#include <string>

namespace plast
{

enum class FuOp : uint8_t
{
    kNop = 0,     ///< dst = a (copy / register move)
    // Integer arithmetic
    kIAdd, kISub, kIMul, kIDiv, kIMod,
    kIMin, kIMax, kIAbs,
    // Bitwise / shifts
    kAnd, kOr, kXor, kNot, kShl, kShr,
    // Integer compares (produce 0/1)
    kILt, kILe, kIGt, kIGe, kIEq, kINe,
    // Float arithmetic
    kFAdd, kFSub, kFMul, kFDiv,
    kFMin, kFMax, kFAbs, kFNeg,
    // Float compares (produce 0/1)
    kFLt, kFLe, kFGt, kFGe, kFEq, kFNe,
    // Special functions
    kFExp, kFLog, kFSqrt, kFRecip,
    // Conversions
    kI2F, kF2I,
    // Ternary select: dst = a ? b : c
    kMux,
    // Fused multiply-add: dst = a * b + c (float)
    kFMA,
    // Integer multiply-add: dst = a * b + c (affine addressing)
    kIMA,
    kNumOps
};

/** True for ops whose reduction identity/semantics are floating point. */
bool fuOpIsFloat(FuOp op);

/** Number of register-operand inputs the op consumes (1, 2, or 3). */
int fuOpArity(FuOp op);

/** Mnemonic for printing configurations. */
std::string fuOpName(FuOp op);

/**
 * Identity element for using this op as a reduction combiner
 * (kFAdd -> 0.0f, kIAdd -> 0, kFMin -> +inf, ...). Panics for
 * non-associative ops.
 */
uint32_t fuOpIdentity(FuOp op);

/** True if the op is associative and usable as a reduce combiner. */
bool fuOpIsReducible(FuOp op);

} // namespace plast

#endif // PLAST_ARCH_OPCODES_HPP
