#include "arch/disasm.hpp"

#include "base/logging.hpp"

namespace plast
{

namespace
{

std::string
chainDesc(const ChainCfg &chain)
{
    if (chain.ctrs.empty())
        return "once";
    std::string out;
    for (size_t i = 0; i < chain.ctrs.size(); ++i) {
        const CounterCfg &c = chain.ctrs[i];
        if (i)
            out += " x ";
        if (c.maxFromScalarIn >= 0)
            out += strfmt("[%lld:si%d*%d:%lld]",
                          static_cast<long long>(c.min),
                          c.maxFromScalarIn, c.boundScale,
                          static_cast<long long>(c.step));
        else
            out += strfmt("[%lld:%lld:%lld]",
                          static_cast<long long>(c.min),
                          static_cast<long long>(c.max),
                          static_cast<long long>(c.step));
        if (c.vectorized)
            out += "v";
    }
    return out;
}

std::string
ctrlDesc(const ControlCfg &ctrl)
{
    if (ctrl.tokenIns.empty() && ctrl.doneOuts.empty())
        return "self-start";
    std::string out = "tok[";
    for (size_t i = 0; i < ctrl.tokenIns.size(); ++i)
        out += strfmt("%s%u", i ? "," : "", ctrl.tokenIns[i]);
    out += "] done[";
    for (size_t i = 0; i < ctrl.doneOuts.size(); ++i)
        out += strfmt("%s%u", i ? "," : "", ctrl.doneOuts[i]);
    return out + "]";
}

std::string
emitDesc(const EmitCond &cond)
{
    return cond.always ? "every" : strfmt("last@%u", cond.level);
}

} // namespace

std::string
disasmPcu(const PcuCfg &cfg, uint32_t index)
{
    std::string out =
        strfmt("pcu%-3u %-24s ctr %s  %s\n", index, cfg.name.c_str(),
               chainDesc(cfg.chain).c_str(), ctrlDesc(cfg.ctrl).c_str());
    for (size_t s = 0; s < cfg.stages.size(); ++s)
        out += strfmt("    s%zu: %s\n", s, cfg.stages[s].describe().c_str());
    for (size_t p = 0; p < cfg.vecOuts.size(); ++p) {
        if (!cfg.vecOuts[p].enabled)
            continue;
        out += strfmt("    vo%zu <- r%u (%s)%s\n", p,
                      cfg.vecOuts[p].srcReg,
                      emitDesc(cfg.vecOuts[p].cond).c_str(),
                      cfg.vecOuts[p].coalesce ? " coalesce" : "");
    }
    for (size_t p = 0; p < cfg.scalOuts.size(); ++p) {
        const ScalOutCfg &so = cfg.scalOuts[p];
        if (!so.enabled)
            continue;
        if (so.countOfVecOut >= 0)
            out += strfmt("    so%zu <- count(vo%d)\n", p,
                          so.countOfVecOut);
        else
            out += strfmt("    so%zu <- r%u (%s)\n", p, so.srcReg,
                          emitDesc(so.cond).c_str());
    }
    return out;
}

namespace
{

std::string
portDesc(const char *label, const PmuPortCfg &port)
{
    if (!port.enabled)
        return "";
    std::string out = strfmt("    %s: ctr %s  %s", label,
                             chainDesc(port.chain).c_str(),
                             ctrlDesc(port.ctrl).c_str());
    if (port.appendMode)
        out += " append";
    if (port.vecLinear)
        out += " vec-linear";
    if (port.broadcast)
        out += " broadcast";
    if (port.addrVecIn >= 0)
        out += strfmt(" addr<-vi%d", port.addrVecIn);
    if (port.dataVecIn >= 0)
        out += strfmt(" data<-vi%d", port.dataVecIn);
    if (port.dataVecOut >= 0)
        out += strfmt(" data->vo%d", port.dataVecOut);
    if (port.accumulate)
        out += strfmt(" rmw(%s)", fuOpName(port.accumOp).c_str());
    if (port.swapEvery)
        out += strfmt(" swap/%u", port.swapEvery);
    if (port.clearEvery)
        out += strfmt(" clear/%u", port.clearEvery);
    out += "\n";
    for (size_t s = 0; s < port.addrStages.size(); ++s)
        out += strfmt("        a%zu: %s\n", s,
                      port.addrStages[s].describe().c_str());
    return out;
}

} // namespace

std::string
disasmPmu(const PmuCfg &cfg, uint32_t index)
{
    std::string out = strfmt(
        "pmu%-3u %-24s %s %u words x %u bufs\n", index, cfg.name.c_str(),
        bankingModeName(cfg.scratch.mode).c_str(), cfg.scratch.sizeWords,
        cfg.scratch.numBufs);
    out += portDesc("wr ", cfg.write);
    out += portDesc("wr2", cfg.write2);
    out += portDesc("rd ", cfg.read);
    return out;
}

std::string
disasmAg(const AgCfg &cfg, uint32_t index)
{
    std::string out = strfmt(
        "ag%-4u %-24s %s ch%u base=0x%llx ctr %s  %s\n", index,
        cfg.name.c_str(), agModeName(cfg.mode).c_str(), cfg.channel,
        static_cast<unsigned long long>(cfg.base),
        chainDesc(cfg.chain).c_str(), ctrlDesc(cfg.ctrl).c_str());
    if (cfg.mode == AgMode::kDenseLoad)
        out += strfmt("    words/cmd=%u -> vo%d\n", cfg.wordsPerCmd,
                      cfg.dataVecOut);
    for (size_t s = 0; s < cfg.addrStages.size(); ++s)
        out += strfmt("    a%zu: %s\n", s,
                      cfg.addrStages[s].describe().c_str());
    return out;
}

std::string
disasmBox(const ControlBoxCfg &cfg, uint32_t index)
{
    std::string out = strfmt(
        "box%-3u %-24s %s depth=%u ctr %s  %s\n", index,
        cfg.name.c_str(), ctrlSchemeName(cfg.scheme).c_str(), cfg.depth,
        chainDesc(cfg.chain).c_str(), ctrlDesc(cfg.ctrl).c_str());
    out += strfmt("    starts=%zu dones=%zu", cfg.childStartOuts.size(),
                  cfg.childDoneIns.size());
    for (const auto &ex : cfg.exports)
        out += strfmt(" export c%u->so%u", ex.ctrIdx, ex.scalarOutPort);
    out += "\n";
    return out;
}

std::string
disasmFabric(const FabricConfig &cfg)
{
    std::string out = cfg.describe() + "\n\n";
    for (size_t i = 0; i < cfg.pcus.size(); ++i) {
        if (cfg.pcus[i].used)
            out += disasmPcu(cfg.pcus[i], static_cast<uint32_t>(i));
    }
    for (size_t i = 0; i < cfg.pmus.size(); ++i) {
        if (cfg.pmus[i].used)
            out += disasmPmu(cfg.pmus[i], static_cast<uint32_t>(i));
    }
    for (size_t i = 0; i < cfg.ags.size(); ++i) {
        if (cfg.ags[i].used)
            out += disasmAg(cfg.ags[i], static_cast<uint32_t>(i));
    }
    for (size_t i = 0; i < cfg.boxes.size(); ++i) {
        if (cfg.boxes[i].used)
            out += disasmBox(cfg.boxes[i], static_cast<uint32_t>(i));
    }
    out += "\nchannels:\n";
    for (const ChannelCfg &ch : cfg.channels)
        out += "  " + ch.describe() + "\n";
    return out;
}

} // namespace plast
