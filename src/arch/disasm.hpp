/**
 * @file
 * Configuration disassembler: renders a FabricConfig as the textual
 * "assembly" the paper describes (§3.6: "a Plasticine configuration
 * description, akin to an assembly language, which is used to generate
 * a static configuration bitstream"). Useful for debugging mappings
 * and for documenting what the compiler produced.
 */

#ifndef PLAST_ARCH_DISASM_HPP
#define PLAST_ARCH_DISASM_HPP

#include <string>

#include "arch/config.hpp"

namespace plast
{

/** Disassemble one unit. */
std::string disasmPcu(const PcuCfg &cfg, uint32_t index);
std::string disasmPmu(const PmuCfg &cfg, uint32_t index);
std::string disasmAg(const AgCfg &cfg, uint32_t index);
std::string disasmBox(const ControlBoxCfg &cfg, uint32_t index);

/** Disassemble the whole configured fabric (used units + channels). */
std::string disasmFabric(const FabricConfig &cfg);

} // namespace plast

#endif // PLAST_ARCH_DISASM_HPP
