#include "arch/params.hpp"

#include "base/logging.hpp"

namespace plast
{

std::string
ArchParams::describe() const
{
    return strfmt(
        "Plasticine %ux%u (%u PCUs, %u PMUs), PCU[%u lanes, %u stages, "
        "%u regs, %u/%u scal io, %u/%u vec io], PMU[%u banks x %u KB, "
        "%u stages], DRAM[%u ch, %.1f GB/s peak], %u AGs",
        gridCols, gridRows, numPcus(), numPmus(), pcu.lanes, pcu.stages,
        pcu.regsPerStage, pcu.scalarIns, pcu.scalarOuts, pcu.vectorIns,
        pcu.vectorOuts, pmu.banks, pmu.bankKilobytes, pmu.stages,
        dram.channels, dram.peakBytesPerCycle(),
        numAgs);
}

} // namespace plast
