/**
 * @file
 * Physical layout of the Plasticine chip (Figure 5): a gridCols x gridRows
 * checkerboard of PCUs and PMUs, a (gridCols+1) x (gridRows+1) mesh of
 * switches, and address generators attached to the switch rows on the
 * left and right chip edges.
 */

#ifndef PLAST_ARCH_GEOMETRY_HPP
#define PLAST_ARCH_GEOMETRY_HPP

#include <cstdint>
#include <cstdlib>

#include "arch/config.hpp"
#include "arch/params.hpp"

namespace plast
{

/** Switch-grid coordinate. */
struct SwitchCoord
{
    int col = 0;
    int row = 0;

    bool
    operator==(const SwitchCoord &o) const
    {
        return col == o.col && row == o.row;
    }
};

/** Chip geometry helper: maps unit indices to grid sites. */
class Geometry
{
  public:
    explicit Geometry(const ArchParams &params) : p_(params) {}

    uint32_t cols() const { return p_.gridCols; }
    uint32_t rows() const { return p_.gridRows; }

    /**
     * Checkerboard: site (c, r) holds a PCU when (c + r) is even, a PMU
     * otherwise; this yields a 1:1 PCU:PMU ratio with every PCU adjacent
     * to PMUs on all sides.
     */
    bool
    siteIsPcu(uint32_t c, uint32_t r) const
    {
        return ((c + r) & 1u) == 0;
    }

    /** Dense per-class index of the unit at a site. */
    uint32_t unitIndexAt(uint32_t c, uint32_t r) const;

    /** Grid site of the idx'th PCU (or PMU). */
    void siteOf(UnitClass cls, uint32_t idx, uint32_t &c, uint32_t &r) const;

    /**
     * The switch nearest a unit's output corner; units connect to the
     * four surrounding switches, we canonicalize to the top-left one.
     */
    SwitchCoord
    switchOf(UnitClass cls, uint32_t idx) const;

    /** Switch site an AG is attached to (left/right edges, §3.4). */
    SwitchCoord agSwitch(uint32_t agIdx) const;

    /** DRAM channel an AG is bound to (round-robin over edges). */
    uint32_t agChannel(uint32_t agIdx) const;

    /** Manhattan distance between two switches (route length bound). */
    static uint32_t
    manhattan(const SwitchCoord &a, const SwitchCoord &b)
    {
        return static_cast<uint32_t>(std::abs(a.col - b.col) +
                                     std::abs(a.row - b.row));
    }

  private:
    ArchParams p_;
};

} // namespace plast

#endif // PLAST_ARCH_GEOMETRY_HPP
