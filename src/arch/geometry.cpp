#include "arch/geometry.hpp"

#include "base/logging.hpp"

namespace plast
{

uint32_t
Geometry::unitIndexAt(uint32_t c, uint32_t r) const
{
    panic_if(c >= cols() || r >= rows(), "site (%u,%u) out of grid", c, r);
    // Count same-class sites scanning row-major up to (c, r).
    uint32_t idx = 0;
    bool want_pcu = siteIsPcu(c, r);
    for (uint32_t rr = 0; rr <= r; ++rr) {
        uint32_t cmax = (rr == r) ? c : cols();
        for (uint32_t cc = 0; cc < cmax; ++cc) {
            if (siteIsPcu(cc, rr) == want_pcu)
                ++idx;
        }
    }
    return idx;
}

void
Geometry::siteOf(UnitClass cls, uint32_t idx, uint32_t &c, uint32_t &r) const
{
    bool want_pcu = (cls == UnitClass::kPcu);
    uint32_t seen = 0;
    for (uint32_t rr = 0; rr < rows(); ++rr) {
        for (uint32_t cc = 0; cc < cols(); ++cc) {
            if (siteIsPcu(cc, rr) == want_pcu) {
                if (seen == idx) {
                    c = cc;
                    r = rr;
                    return;
                }
                ++seen;
            }
        }
    }
    panic("siteOf: %s index %u out of range", unitClassName(cls).c_str(),
          idx);
}

SwitchCoord
Geometry::switchOf(UnitClass cls, uint32_t idx) const
{
    switch (cls) {
      case UnitClass::kPcu:
      case UnitClass::kPmu: {
        uint32_t c = 0, r = 0;
        siteOf(cls, idx, c, r);
        return {static_cast<int>(c), static_cast<int>(r)};
      }
      case UnitClass::kAg:
        return agSwitch(idx);
      case UnitClass::kBox:
        // Boxes are placed by the compiler; their index encodes the
        // switch site directly: idx = row * switchCols + col.
        return {static_cast<int>(idx % (cols() + 1)),
                static_cast<int>(idx / (cols() + 1))};
      case UnitClass::kHost:
        return {0, 0};
    }
    return {0, 0};
}

SwitchCoord
Geometry::agSwitch(uint32_t agIdx) const
{
    // AGs alternate left/right edges, walking down the switch rows.
    uint32_t side = agIdx & 1u;
    uint32_t slot = agIdx / 2;
    uint32_t row = slot % (rows() + 1);
    int col = side == 0 ? 0 : static_cast<int>(cols());
    return {col, static_cast<int>(row)};
}

uint32_t
Geometry::agChannel(uint32_t agIdx) const
{
    return agIdx % p_.dram.channels;
}

} // namespace plast
