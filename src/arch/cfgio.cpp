#include "arch/cfgio.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "base/logging.hpp"

namespace plast
{

namespace
{

// --------------------------------------------------------------------
// Writer: fixed field order, one logical record per line. The parser
// below consumes the exact same token sequence ('#' to end of line is
// a comment), which makes write -> read -> write a string fixpoint.
// --------------------------------------------------------------------

/** Unit names come from PIR node names; keep them one token. */
std::string
token(const std::string &s)
{
    if (s.empty())
        return "-";
    std::string t = s;
    for (char &c : t)
        if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
            c = '_';
    return t;
}

void
writeOperand(std::ostream &os, const Operand &o)
{
    os << ' ' << static_cast<int>(o.kind) << ' '
       << static_cast<int>(o.index) << ' ' << o.imm;
}

void
writeStage(std::ostream &os, const StageCfg &s)
{
    os << "    stage " << static_cast<int>(s.kind) << ' '
       << static_cast<int>(s.op);
    writeOperand(os, s.a);
    writeOperand(os, s.b);
    writeOperand(os, s.c);
    os << ' ' << static_cast<int>(s.dstReg) << ' ' << (s.setsMask ? 1 : 0)
       << ' ' << static_cast<int>(s.reduceDist) << ' '
       << static_cast<int>(s.accLevel) << ' '
       << static_cast<int>(s.shiftAmt) << '\n';
}

void
writeChain(std::ostream &os, const ChainCfg &c)
{
    os << "   chain " << c.ctrs.size() << '\n';
    for (const CounterCfg &k : c.ctrs)
        os << "    ctr " << k.min << ' ' << k.step << ' ' << k.max << ' '
           << (k.vectorized ? 1 : 0) << ' '
           << static_cast<int>(k.maxFromScalarIn) << ' ' << k.boundScale
           << '\n';
}

void
writeStages(std::ostream &os, const char *label,
            const std::vector<StageCfg> &stages)
{
    os << "   " << label << ' ' << stages.size() << '\n';
    for (const StageCfg &s : stages)
        writeStage(os, s);
}

void
writeCtrl(std::ostream &os, const ControlCfg &c)
{
    os << "   ctrl " << c.tokenIns.size();
    for (uint8_t t : c.tokenIns)
        os << ' ' << static_cast<int>(t);
    os << ' ' << c.doneOuts.size();
    for (uint8_t t : c.doneOuts)
        os << ' ' << static_cast<int>(t);
    os << '\n';
}

void
writeCond(std::ostream &os, const EmitCond &c)
{
    os << ' ' << (c.always ? 1 : 0) << ' ' << static_cast<int>(c.level);
}

void
writePort(std::ostream &os, const char *label, const PmuPortCfg &p)
{
    os << "  " << label << ' ' << (p.enabled ? 1 : 0) << ' '
       << static_cast<int>(p.addrReg) << ' '
       << static_cast<int>(p.addrVecIn) << ' '
       << static_cast<int>(p.dataVecIn) << ' '
       << static_cast<int>(p.dataVecOut) << ' '
       << (p.accumulate ? 1 : 0) << ' ' << static_cast<int>(p.accumOp)
       << ' ' << p.swapEvery << ' ' << (p.vecLinear ? 1 : 0) << ' '
       << p.clearEvery << ' ' << (p.broadcast ? 1 : 0) << ' '
       << (p.appendMode ? 1 : 0) << '\n';
    writeChain(os, p.chain);
    writeStages(os, "addrstages", p.addrStages);
    writeCtrl(os, p.ctrl);
}

void
writeEndpoint(std::ostream &os, const Endpoint &e)
{
    os << ' ' << static_cast<int>(e.unit.cls) << ' ' << e.unit.index
       << ' ' << static_cast<int>(e.port);
}

// --------------------------------------------------------------------
// Reader
// --------------------------------------------------------------------

struct Reader
{
    std::istream &is;
    std::string err;

    explicit Reader(std::istream &s) : is(s) {}

    bool
    fail(const std::string &msg)
    {
        if (err.empty())
            err = msg;
        return false;
    }

    /** Next token; skips '#' comments to end of line. */
    bool
    tok(std::string &out)
    {
        while (is >> out) {
            if (out[0] == '#') {
                std::string rest;
                std::getline(is, rest);
                continue;
            }
            return true;
        }
        return fail("unexpected end of input");
    }

    bool
    expect(const char *kw)
    {
        std::string t;
        if (!tok(t))
            return false;
        if (t != kw)
            return fail(strfmt("expected '%s', got '%s'", kw, t.c_str()));
        return true;
    }

    template <typename T>
    bool
    num(T &out)
    {
        std::string t;
        if (!tok(t))
            return false;
        std::istringstream ss(t);
        int64_t v = 0;
        if (!(ss >> v) || !ss.eof())
            return fail(strfmt("expected number, got '%s'", t.c_str()));
        out = static_cast<T>(v);
        return true;
    }

    bool
    u64(uint64_t &out)
    {
        std::string t;
        if (!tok(t))
            return false;
        std::istringstream ss(t);
        if (!(ss >> out) || !ss.eof())
            return fail(strfmt("expected number, got '%s'", t.c_str()));
        return true;
    }

    bool
    flag(bool &out)
    {
        int v = 0;
        if (!num(v))
            return false;
        out = v != 0;
        return true;
    }

    bool
    name(std::string &out)
    {
        if (!tok(out))
            return false;
        if (out == "-")
            out.clear();
        return true;
    }

    bool
    operand(Operand &o)
    {
        int kind = 0, index = 0;
        if (!num(kind) || !num(index) || !num(o.imm))
            return false;
        if (kind < 0 || kind > static_cast<int>(OperandKind::kLaneId))
            return fail("operand kind out of range");
        o.kind = static_cast<OperandKind>(kind);
        o.index = static_cast<uint8_t>(index);
        return true;
    }

    bool
    stage(StageCfg &s)
    {
        if (!expect("stage"))
            return false;
        int kind = 0, op = 0, dst = 0, mask = 0, dist = 0, lvl = 0,
            shift = 0;
        if (!num(kind) || !num(op) || !operand(s.a) || !operand(s.b) ||
            !operand(s.c) || !num(dst) || !num(mask) || !num(dist) ||
            !num(lvl) || !num(shift))
            return false;
        if (kind < 0 || kind > static_cast<int>(StageKind::kShift))
            return fail("stage kind out of range");
        if (op < 0 || op >= static_cast<int>(FuOp::kNumOps))
            return fail("stage op out of range");
        s.kind = static_cast<StageKind>(kind);
        s.op = static_cast<FuOp>(op);
        s.dstReg = static_cast<uint8_t>(dst);
        s.setsMask = mask != 0;
        s.reduceDist = static_cast<uint8_t>(dist);
        s.accLevel = static_cast<uint8_t>(lvl);
        s.shiftAmt = static_cast<int8_t>(shift);
        return true;
    }

    bool
    chain(ChainCfg &c)
    {
        size_t n = 0;
        if (!expect("chain") || !num(n))
            return false;
        c.ctrs.assign(n, CounterCfg{});
        for (CounterCfg &k : c.ctrs) {
            int vec = 0, dyn = 0;
            if (!expect("ctr") || !num(k.min) || !num(k.step) ||
                !num(k.max) || !num(vec) || !num(dyn) ||
                !num(k.boundScale))
                return false;
            k.vectorized = vec != 0;
            k.maxFromScalarIn = static_cast<int8_t>(dyn);
        }
        return true;
    }

    bool
    stages(const char *label, std::vector<StageCfg> &out)
    {
        size_t n = 0;
        if (!expect(label) || !num(n))
            return false;
        out.assign(n, StageCfg{});
        for (StageCfg &s : out)
            if (!stage(s))
                return false;
        return true;
    }

    bool
    ctrl(ControlCfg &c)
    {
        size_t n = 0;
        if (!expect("ctrl") || !num(n))
            return false;
        c.tokenIns.assign(n, 0);
        for (uint8_t &t : c.tokenIns) {
            int v = 0;
            if (!num(v))
                return false;
            t = static_cast<uint8_t>(v);
        }
        if (!num(n))
            return false;
        c.doneOuts.assign(n, 0);
        for (uint8_t &t : c.doneOuts) {
            int v = 0;
            if (!num(v))
                return false;
            t = static_cast<uint8_t>(v);
        }
        return true;
    }

    bool
    cond(EmitCond &c)
    {
        int lvl = 0;
        if (!flag(c.always) || !num(lvl))
            return false;
        c.level = static_cast<uint8_t>(lvl);
        return true;
    }

    bool
    port(const char *label, PmuPortCfg &p)
    {
        int areg = 0, avin = 0, dvin = 0, dvout = 0, aop = 0;
        if (!expect(label) || !flag(p.enabled) || !num(areg) ||
            !num(avin) || !num(dvin) || !num(dvout) ||
            !flag(p.accumulate) || !num(aop) || !num(p.swapEvery) ||
            !flag(p.vecLinear) || !num(p.clearEvery) ||
            !flag(p.broadcast) || !flag(p.appendMode))
            return false;
        if (aop < 0 || aop >= static_cast<int>(FuOp::kNumOps))
            return fail("port accumOp out of range");
        p.addrReg = static_cast<uint8_t>(areg);
        p.addrVecIn = static_cast<int8_t>(avin);
        p.dataVecIn = static_cast<int8_t>(dvin);
        p.dataVecOut = static_cast<int8_t>(dvout);
        p.accumOp = static_cast<FuOp>(aop);
        return chain(p.chain) && stages("addrstages", p.addrStages) &&
               ctrl(p.ctrl);
    }

    bool
    endpoint(Endpoint &e)
    {
        int cls = 0, idx = 0, prt = 0;
        if (!num(cls) || !num(idx) || !num(prt))
            return false;
        if (cls < 0 || cls > static_cast<int>(UnitClass::kHost))
            return fail("endpoint class out of range");
        e.unit.cls = static_cast<UnitClass>(cls);
        e.unit.index = static_cast<uint16_t>(idx);
        e.port = static_cast<uint8_t>(prt);
        return true;
    }
};

void
writeParams(std::ostream &os, const ArchParams &p)
{
    os << "params " << p.gridCols << ' ' << p.gridRows << ' ' << p.numAgs
       << ' ' << p.coalescerCacheLines << ' '
       << p.coalescerMaxOutstanding << ' ' << p.vectorTracks << ' '
       << p.scalarTracks << ' ' << p.controlTracks << '\n';
    const PcuParams &c = p.pcu;
    os << "pcu_params " << c.lanes << ' ' << c.stages << ' '
       << c.regsPerStage << ' ' << c.scalarIns << ' ' << c.scalarOuts
       << ' ' << c.vectorIns << ' ' << c.vectorOuts << ' ' << c.counters
       << ' ' << c.fifoDepth << '\n';
    const PmuParams &m = p.pmu;
    os << "pmu_params " << m.banks << ' ' << m.bankKilobytes << ' '
       << m.stages << ' ' << m.regsPerStage << ' ' << m.scalarIns << ' '
       << m.scalarOuts << ' ' << m.vectorIns << ' ' << m.vectorOuts
       << ' ' << m.counters << ' ' << m.fifoDepth << ' '
       << (m.ecc ? 1 : 0) << '\n';
    const DramParams &d = p.dram;
    os << "dram_params " << d.channels << ' ' << d.burstBytes << ' '
       << d.banksPerChannel << ' ' << d.rowBytes << ' ' << d.tRcd << ' '
       << d.tCas << ' ' << d.tRp << ' ' << d.tRas << ' ' << d.tBurst
       << ' ' << d.queueDepth << ' ' << (d.ecc ? 1 : 0) << '\n';
}

bool
readParams(Reader &r, ArchParams &p)
{
    PcuParams &c = p.pcu;
    PmuParams &m = p.pmu;
    DramParams &d = p.dram;
    int pmuEcc = 0, dramEcc = 0;
    bool ok = r.expect("params") && r.num(p.gridCols) &&
           r.num(p.gridRows) && r.num(p.numAgs) &&
           r.num(p.coalescerCacheLines) &&
           r.num(p.coalescerMaxOutstanding) && r.num(p.vectorTracks) &&
           r.num(p.scalarTracks) && r.num(p.controlTracks) &&
           r.expect("pcu_params") && r.num(c.lanes) && r.num(c.stages) &&
           r.num(c.regsPerStage) && r.num(c.scalarIns) &&
           r.num(c.scalarOuts) && r.num(c.vectorIns) &&
           r.num(c.vectorOuts) && r.num(c.counters) &&
           r.num(c.fifoDepth) && r.expect("pmu_params") &&
           r.num(m.banks) && r.num(m.bankKilobytes) && r.num(m.stages) &&
           r.num(m.regsPerStage) && r.num(m.scalarIns) &&
           r.num(m.scalarOuts) && r.num(m.vectorIns) &&
           r.num(m.vectorOuts) && r.num(m.counters) &&
           r.num(m.fifoDepth) && r.num(pmuEcc) &&
           r.expect("dram_params") &&
           r.num(d.channels) && r.num(d.burstBytes) &&
           r.num(d.banksPerChannel) && r.num(d.rowBytes) &&
           r.num(d.tRcd) && r.num(d.tCas) && r.num(d.tRp) &&
           r.num(d.tRas) && r.num(d.tBurst) && r.num(d.queueDepth) &&
           r.num(dramEcc);
    m.ecc = pmuEcc != 0;
    d.ecc = dramEcc != 0;
    return ok;
}

} // namespace

void
writeConfig(std::ostream &os, const FabricConfig &cfg)
{
    os << "fabriccfg 1\n";
    writeParams(os, cfg.params);
    os << "rootbox " << cfg.rootBox << '\n';
    os << "hostargouts " << cfg.hostArgOuts << '\n';

    size_t used = 0;
    for (const PcuCfg &u : cfg.pcus)
        used += u.used ? 1 : 0;
    os << "pcus " << cfg.pcus.size() << ' ' << used << '\n';
    for (size_t i = 0; i < cfg.pcus.size(); ++i) {
        const PcuCfg &u = cfg.pcus[i];
        if (!u.used)
            continue;
        os << " pcu " << i << ' ' << token(u.name) << '\n';
        writeChain(os, u.chain);
        writeStages(os, "stages", u.stages);
        os << "   vecouts " << u.vecOuts.size() << '\n';
        for (const VecOutCfg &v : u.vecOuts) {
            os << "    vecout " << (v.enabled ? 1 : 0) << ' '
               << static_cast<int>(v.srcReg);
            writeCond(os, v.cond);
            os << ' ' << (v.coalesce ? 1 : 0) << '\n';
        }
        os << "   scalouts " << u.scalOuts.size() << '\n';
        for (const ScalOutCfg &v : u.scalOuts) {
            os << "    scalout " << (v.enabled ? 1 : 0) << ' '
               << static_cast<int>(v.srcReg);
            writeCond(os, v.cond);
            os << ' ' << static_cast<int>(v.countOfVecOut) << '\n';
        }
        writeCtrl(os, u.ctrl);
    }

    used = 0;
    for (const PmuCfg &u : cfg.pmus)
        used += u.used ? 1 : 0;
    os << "pmus " << cfg.pmus.size() << ' ' << used << '\n';
    for (size_t i = 0; i < cfg.pmus.size(); ++i) {
        const PmuCfg &u = cfg.pmus[i];
        if (!u.used)
            continue;
        os << " pmu " << i << ' ' << token(u.name) << '\n';
        os << "  scratch " << static_cast<int>(u.scratch.mode) << ' '
           << static_cast<int>(u.scratch.numBufs) << ' '
           << u.scratch.sizeWords << '\n';
        writePort(os, "write", u.write);
        writePort(os, "write2", u.write2);
        writePort(os, "read", u.read);
    }

    used = 0;
    for (const AgCfg &u : cfg.ags)
        used += u.used ? 1 : 0;
    os << "ags " << cfg.ags.size() << ' ' << used << '\n';
    for (size_t i = 0; i < cfg.ags.size(); ++i) {
        const AgCfg &u = cfg.ags[i];
        if (!u.used)
            continue;
        os << " ag " << i << ' ' << token(u.name) << ' '
           << static_cast<int>(u.mode) << ' '
           << static_cast<int>(u.addrReg) << ' ' << u.base << ' '
           << u.wordsPerCmd << ' ' << static_cast<int>(u.addrVecIn)
           << ' ' << static_cast<int>(u.dataVecIn) << ' '
           << static_cast<int>(u.dataVecOut) << ' '
           << static_cast<int>(u.channel) << '\n';
        writeChain(os, u.chain);
        writeStages(os, "addrstages", u.addrStages);
        writeCtrl(os, u.ctrl);
    }

    used = 0;
    for (const ControlBoxCfg &u : cfg.boxes)
        used += u.used ? 1 : 0;
    os << "boxes " << cfg.boxes.size() << ' ' << used << '\n';
    for (size_t i = 0; i < cfg.boxes.size(); ++i) {
        const ControlBoxCfg &u = cfg.boxes[i];
        if (!u.used)
            continue;
        os << " box " << i << ' ' << token(u.name) << ' '
           << static_cast<int>(u.scheme) << ' ' << u.depth << '\n';
        writeChain(os, u.chain);
        writeCtrl(os, u.ctrl);
        os << "   starts " << u.childStartOuts.size();
        for (uint8_t t : u.childStartOuts)
            os << ' ' << static_cast<int>(t);
        os << '\n';
        os << "   dones " << u.childDoneIns.size();
        for (uint8_t t : u.childDoneIns)
            os << ' ' << static_cast<int>(t);
        os << '\n';
        os << "   exports " << u.exports.size() << '\n';
        for (const ControlBoxCfg::CtrExport &e : u.exports)
            os << "    export " << static_cast<int>(e.ctrIdx) << ' '
               << static_cast<int>(e.scalarOutPort) << '\n';
    }

    os << "channels " << cfg.channels.size() << '\n';
    for (const ChannelCfg &c : cfg.channels) {
        os << " channel " << static_cast<int>(c.kind);
        writeEndpoint(os, c.src);
        writeEndpoint(os, c.dst);
        os << ' ' << c.latency << ' ' << c.initialTokens << ' '
           << c.capacity << ' ' << c.dstPopEvery << '\n';
    }

    os << "constants " << cfg.constants.size() << '\n';
    for (const ConstScalar &c : cfg.constants) {
        os << " constant";
        writeEndpoint(os, c.dst);
        os << ' ' << c.value << '\n';
    }
    os << "end\n";
}

std::string
configToText(const FabricConfig &cfg)
{
    std::ostringstream os;
    writeConfig(os, cfg);
    return os.str();
}

bool
readConfig(std::istream &is, FabricConfig &out, std::string *err)
{
    Reader r(is);
    FabricConfig cfg;
    auto done = [&](bool ok) {
        if (!ok && err)
            *err = r.err.empty() ? "parse error" : r.err;
        if (ok)
            out = std::move(cfg);
        return ok;
    };

    int version = 0;
    if (!r.expect("fabriccfg") || !r.num(version))
        return done(false);
    if (version != 1)
        return done(r.fail(strfmt("unsupported version %d", version)));
    if (!readParams(r, cfg.params))
        return done(false);
    if (!r.expect("rootbox") || !r.num(cfg.rootBox) ||
        !r.expect("hostargouts") || !r.num(cfg.hostArgOuts))
        return done(false);

    size_t total = 0, used = 0;
    if (!r.expect("pcus") || !r.num(total) || !r.num(used))
        return done(false);
    cfg.pcus.assign(total, PcuCfg{});
    for (size_t k = 0; k < used; ++k) {
        size_t idx = 0;
        if (!r.expect("pcu") || !r.num(idx))
            return done(false);
        if (idx >= total)
            return done(r.fail("pcu index out of range"));
        PcuCfg &u = cfg.pcus[idx];
        u.used = true;
        size_t n = 0;
        if (!r.name(u.name) || !r.chain(u.chain) ||
            !r.stages("stages", u.stages))
            return done(false);
        if (!r.expect("vecouts") || !r.num(n))
            return done(false);
        u.vecOuts.assign(n, VecOutCfg{});
        for (VecOutCfg &v : u.vecOuts) {
            int reg = 0;
            if (!r.expect("vecout") || !r.flag(v.enabled) ||
                !r.num(reg) || !r.cond(v.cond) || !r.flag(v.coalesce))
                return done(false);
            v.srcReg = static_cast<uint8_t>(reg);
        }
        if (!r.expect("scalouts") || !r.num(n))
            return done(false);
        u.scalOuts.assign(n, ScalOutCfg{});
        for (ScalOutCfg &v : u.scalOuts) {
            int reg = 0, cnt = 0;
            if (!r.expect("scalout") || !r.flag(v.enabled) ||
                !r.num(reg) || !r.cond(v.cond) || !r.num(cnt))
                return done(false);
            v.srcReg = static_cast<uint8_t>(reg);
            v.countOfVecOut = static_cast<int8_t>(cnt);
        }
        if (!r.ctrl(u.ctrl))
            return done(false);
    }

    if (!r.expect("pmus") || !r.num(total) || !r.num(used))
        return done(false);
    cfg.pmus.assign(total, PmuCfg{});
    for (size_t k = 0; k < used; ++k) {
        size_t idx = 0;
        if (!r.expect("pmu") || !r.num(idx))
            return done(false);
        if (idx >= total)
            return done(r.fail("pmu index out of range"));
        PmuCfg &u = cfg.pmus[idx];
        u.used = true;
        int mode = 0, nbufs = 0;
        if (!r.name(u.name) || !r.expect("scratch") || !r.num(mode) ||
            !r.num(nbufs) || !r.num(u.scratch.sizeWords))
            return done(false);
        if (mode < 0 || mode > static_cast<int>(BankingMode::kDup))
            return done(r.fail("banking mode out of range"));
        u.scratch.mode = static_cast<BankingMode>(mode);
        u.scratch.numBufs = static_cast<uint8_t>(nbufs);
        if (!r.port("write", u.write) || !r.port("write2", u.write2) ||
            !r.port("read", u.read))
            return done(false);
    }

    if (!r.expect("ags") || !r.num(total) || !r.num(used))
        return done(false);
    cfg.ags.assign(total, AgCfg{});
    for (size_t k = 0; k < used; ++k) {
        size_t idx = 0;
        if (!r.expect("ag") || !r.num(idx))
            return done(false);
        if (idx >= total)
            return done(r.fail("ag index out of range"));
        AgCfg &u = cfg.ags[idx];
        u.used = true;
        int mode = 0, areg = 0, avin = 0, dvin = 0, dvout = 0, chan = 0;
        if (!r.name(u.name) || !r.num(mode) || !r.num(areg) ||
            !r.u64(u.base) || !r.num(u.wordsPerCmd) || !r.num(avin) ||
            !r.num(dvin) || !r.num(dvout) || !r.num(chan))
            return done(false);
        if (mode < 0 || mode > static_cast<int>(AgMode::kSparseStore))
            return done(r.fail("ag mode out of range"));
        u.mode = static_cast<AgMode>(mode);
        u.addrReg = static_cast<uint8_t>(areg);
        u.addrVecIn = static_cast<int8_t>(avin);
        u.dataVecIn = static_cast<int8_t>(dvin);
        u.dataVecOut = static_cast<int8_t>(dvout);
        u.channel = static_cast<uint8_t>(chan);
        if (!r.chain(u.chain) ||
            !r.stages("addrstages", u.addrStages) || !r.ctrl(u.ctrl))
            return done(false);
    }

    if (!r.expect("boxes") || !r.num(total) || !r.num(used))
        return done(false);
    cfg.boxes.assign(total, ControlBoxCfg{});
    for (size_t k = 0; k < used; ++k) {
        size_t idx = 0;
        if (!r.expect("box") || !r.num(idx))
            return done(false);
        if (idx >= total)
            return done(r.fail("box index out of range"));
        ControlBoxCfg &u = cfg.boxes[idx];
        u.used = true;
        int scheme = 0;
        size_t n = 0;
        if (!r.name(u.name) || !r.num(scheme) || !r.num(u.depth))
            return done(false);
        if (scheme < 0 || scheme > static_cast<int>(CtrlScheme::kStream))
            return done(r.fail("ctrl scheme out of range"));
        u.scheme = static_cast<CtrlScheme>(scheme);
        if (!r.chain(u.chain) || !r.ctrl(u.ctrl))
            return done(false);
        if (!r.expect("starts") || !r.num(n))
            return done(false);
        u.childStartOuts.assign(n, 0);
        for (uint8_t &t : u.childStartOuts) {
            int v = 0;
            if (!r.num(v))
                return done(false);
            t = static_cast<uint8_t>(v);
        }
        if (!r.expect("dones") || !r.num(n))
            return done(false);
        u.childDoneIns.assign(n, 0);
        for (uint8_t &t : u.childDoneIns) {
            int v = 0;
            if (!r.num(v))
                return done(false);
            t = static_cast<uint8_t>(v);
        }
        if (!r.expect("exports") || !r.num(n))
            return done(false);
        u.exports.assign(n, ControlBoxCfg::CtrExport{0, 0});
        for (ControlBoxCfg::CtrExport &e : u.exports) {
            int ci = 0, po = 0;
            if (!r.expect("export") || !r.num(ci) || !r.num(po))
                return done(false);
            e.ctrIdx = static_cast<uint8_t>(ci);
            e.scalarOutPort = static_cast<uint8_t>(po);
        }
    }

    size_t n = 0;
    if (!r.expect("channels") || !r.num(n))
        return done(false);
    cfg.channels.assign(n, ChannelCfg{});
    for (ChannelCfg &c : cfg.channels) {
        int kind = 0;
        if (!r.expect("channel") || !r.num(kind) || !r.endpoint(c.src) ||
            !r.endpoint(c.dst) || !r.num(c.latency) ||
            !r.num(c.initialTokens) || !r.num(c.capacity) ||
            !r.num(c.dstPopEvery))
            return done(false);
        if (kind < 0 || kind > static_cast<int>(NetKind::kControl))
            return done(r.fail("channel kind out of range"));
        c.kind = static_cast<NetKind>(kind);
    }

    if (!r.expect("constants") || !r.num(n))
        return done(false);
    cfg.constants.assign(n, ConstScalar{});
    for (ConstScalar &c : cfg.constants) {
        if (!r.expect("constant") || !r.endpoint(c.dst) ||
            !r.num(c.value))
            return done(false);
    }
    if (!r.expect("end"))
        return done(false);
    return done(true);
}

} // namespace plast
