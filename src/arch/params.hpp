/**
 * @file
 * Architecture parameters (Table 3 of the paper): the tunable design space
 * and the final selected Plasticine configuration. Every knob swept by
 * Figure 7 lives here so the tuning harness and the final architecture
 * share one code path.
 */

#ifndef PLAST_ARCH_PARAMS_HPP
#define PLAST_ARCH_PARAMS_HPP

#include <cstdint>
#include <string>

namespace plast
{

/** Parameters of a Pattern Compute Unit. */
struct PcuParams
{
    uint32_t lanes = 16;        ///< SIMD lanes (swept 4,8,16,32)
    uint32_t stages = 6;        ///< pipeline stages (swept 1-16)
    uint32_t regsPerStage = 6;  ///< pipeline registers per FU (swept 2-16)
    uint32_t scalarIns = 6;     ///< scalar inputs (swept 1-16)
    uint32_t scalarOuts = 5;    ///< scalar outputs (swept 1-6)
    uint32_t vectorIns = 3;     ///< vector inputs (swept 1-10)
    uint32_t vectorOuts = 3;    ///< vector outputs (swept 1-6)
    uint32_t counters = 4;      ///< counter-chain depth
    uint32_t fifoDepth = 16;    ///< input FIFO depth (words / vectors)
};

/** Parameters of a Pattern Memory Unit. */
struct PmuParams
{
    uint32_t banks = 16;        ///< SRAM banks (= PCU lanes)
    uint32_t bankKilobytes = 16;///< per-bank capacity (swept 4-64 KB)
    uint32_t stages = 4;        ///< scalar address-datapath stages
    uint32_t regsPerStage = 6;
    uint32_t scalarIns = 4;
    uint32_t scalarOuts = 0;    ///< PMUs never use scalar outputs (§3.7)
    uint32_t vectorIns = 3;
    uint32_t vectorOuts = 1;
    uint32_t counters = 4;
    uint32_t fifoDepth = 16;
    /** SECDED ECC on the scratchpad banks: single-bit upsets are
     *  corrected (and scrubbed) on read, double-bit upsets are detected
     *  as uncorrectable. Costs 7 check bits per 32-bit word (39/32 SRAM
     *  area) plus encode/decode logic; see model/area.cpp. */
    bool ecc = false;

    uint32_t totalBytes() const { return banks * bankKilobytes * 1024; }
    uint32_t totalWords() const { return totalBytes() / 4; }
};

/** DRAM system parameters: 4x DDR3-1600 (51.2 GB/s peak, §4.2). */
struct DramParams
{
    uint32_t channels = 4;
    uint32_t burstBytes = 64;       ///< one burst = one 16-word vector
    uint32_t banksPerChannel = 8;
    uint32_t rowBytes = 8192;       ///< row-buffer size per bank
    // Timing in 1 GHz fabric cycles (DDR3-1600: ~13.75 ns CL/RCD/RP).
    uint32_t tRcd = 14;
    uint32_t tCas = 14;
    uint32_t tRp = 14;
    uint32_t tRas = 35;
    uint32_t tBurst = 5;            ///< 64 B on a 12.8 GB/s channel
    uint32_t queueDepth = 32;       ///< per-channel command queue
    /** SECDED ECC on DRAM bursts (x72 DIMM: 8 check bits per 64 data
     *  bits). Single-bit response errors are corrected in the memory
     *  controller; double-bit errors are detected and retried. */
    bool ecc = false;
    double
    peakBytesPerCycle() const
    {
        return static_cast<double>(channels * burstBytes) / tBurst;
    }
};

/** Whole-fabric parameters. */
struct ArchParams
{
    uint32_t gridCols = 16;     ///< unit columns (16 x 8 = 128 units)
    uint32_t gridRows = 8;      ///< unit rows
    PcuParams pcu;
    PmuParams pmu;
    DramParams dram;
    uint32_t numAgs = 34;       ///< address generators (Table 5)
    uint32_t coalescerCacheLines = 32;  ///< coalescing-cache entries
    uint32_t coalescerMaxOutstanding = 64;
    uint32_t vectorTracks = 4;  ///< routable vector buses per switch link
    uint32_t scalarTracks = 8;
    uint32_t controlTracks = 32;

    /** Units are laid out as a PCU/PMU checkerboard: site (c, r) is a
     *  PCU when (c + r) is even, so odd x odd grids hold one more PCU
     *  than PMU — the counts here must match Geometry::siteIsPcu. */
    uint32_t numUnits() const { return gridCols * gridRows; }
    uint32_t numPcus() const { return (numUnits() + 1) / 2; }
    uint32_t numPmus() const { return numUnits() - numPcus(); }
    uint32_t switchCols() const { return gridCols + 1; }
    uint32_t switchRows() const { return gridRows + 1; }

    /** The paper's final configuration (Table 3). */
    static ArchParams plasticineFinal() { return ArchParams{}; }

    std::string describe() const;
};

} // namespace plast

#endif // PLAST_ARCH_PARAMS_HPP
