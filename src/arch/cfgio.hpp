/**
 * @file
 * Textual serialization of FabricConfig — the human-readable form of
 * the configuration "bitstream". Every field of every structure in
 * arch/config.hpp round-trips: write -> read -> write is a string
 * fixpoint (property-tested over the compiled benchmarks), so saved
 * configurations can be diffed, archived and reloaded exactly.
 */

#ifndef PLAST_ARCH_CFGIO_HPP
#define PLAST_ARCH_CFGIO_HPP

#include <iosfwd>
#include <string>

#include "arch/config.hpp"

namespace plast
{

/** Write `cfg` as a .pcfg text document. */
void writeConfig(std::ostream &os, const FabricConfig &cfg);

/** Convenience: writeConfig into a string. */
std::string configToText(const FabricConfig &cfg);

/** Parse a .pcfg document. Returns true on success; on failure
 *  returns false and, when `err` is non-null, stores a diagnostic. */
bool readConfig(std::istream &is, FabricConfig &out,
                std::string *err = nullptr);

} // namespace plast

#endif // PLAST_ARCH_CFGIO_HPP
