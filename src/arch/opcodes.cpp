#include "arch/opcodes.hpp"

#include <limits>

#include "base/logging.hpp"
#include "base/types.hpp"

namespace plast
{

bool
fuOpIsFloat(FuOp op)
{
    switch (op) {
      case FuOp::kFAdd: case FuOp::kFSub: case FuOp::kFMul:
      case FuOp::kFDiv: case FuOp::kFMin: case FuOp::kFMax:
      case FuOp::kFAbs: case FuOp::kFNeg:
      case FuOp::kFLt: case FuOp::kFLe: case FuOp::kFGt:
      case FuOp::kFGe: case FuOp::kFEq: case FuOp::kFNe:
      case FuOp::kFExp: case FuOp::kFLog: case FuOp::kFSqrt:
      case FuOp::kFRecip: case FuOp::kFMA:
        return true;
      default:
        return false;
    }
}

int
fuOpArity(FuOp op)
{
    switch (op) {
      case FuOp::kNop: case FuOp::kIAbs: case FuOp::kNot:
      case FuOp::kFAbs: case FuOp::kFNeg: case FuOp::kFExp:
      case FuOp::kFLog: case FuOp::kFSqrt: case FuOp::kFRecip:
      case FuOp::kI2F: case FuOp::kF2I:
        return 1;
      case FuOp::kMux: case FuOp::kFMA: case FuOp::kIMA:
        return 3;
      default:
        return 2;
    }
}

std::string
fuOpName(FuOp op)
{
    switch (op) {
      case FuOp::kNop: return "nop";
      case FuOp::kIAdd: return "iadd";
      case FuOp::kISub: return "isub";
      case FuOp::kIMul: return "imul";
      case FuOp::kIDiv: return "idiv";
      case FuOp::kIMod: return "imod";
      case FuOp::kIMin: return "imin";
      case FuOp::kIMax: return "imax";
      case FuOp::kIAbs: return "iabs";
      case FuOp::kAnd: return "and";
      case FuOp::kOr: return "or";
      case FuOp::kXor: return "xor";
      case FuOp::kNot: return "not";
      case FuOp::kShl: return "shl";
      case FuOp::kShr: return "shr";
      case FuOp::kILt: return "ilt";
      case FuOp::kILe: return "ile";
      case FuOp::kIGt: return "igt";
      case FuOp::kIGe: return "ige";
      case FuOp::kIEq: return "ieq";
      case FuOp::kINe: return "ine";
      case FuOp::kFAdd: return "fadd";
      case FuOp::kFSub: return "fsub";
      case FuOp::kFMul: return "fmul";
      case FuOp::kFDiv: return "fdiv";
      case FuOp::kFMin: return "fmin";
      case FuOp::kFMax: return "fmax";
      case FuOp::kFAbs: return "fabs";
      case FuOp::kFNeg: return "fneg";
      case FuOp::kFLt: return "flt";
      case FuOp::kFLe: return "fle";
      case FuOp::kFGt: return "fgt";
      case FuOp::kFGe: return "fge";
      case FuOp::kFEq: return "feq";
      case FuOp::kFNe: return "fne";
      case FuOp::kFExp: return "fexp";
      case FuOp::kFLog: return "flog";
      case FuOp::kFSqrt: return "fsqrt";
      case FuOp::kFRecip: return "frecip";
      case FuOp::kI2F: return "i2f";
      case FuOp::kF2I: return "f2i";
      case FuOp::kMux: return "mux";
      case FuOp::kFMA: return "fma";
      case FuOp::kIMA: return "ima";
      default: return "op?";
    }
}

bool
fuOpIsReducible(FuOp op)
{
    switch (op) {
      case FuOp::kIAdd: case FuOp::kIMul: case FuOp::kIMin:
      case FuOp::kIMax: case FuOp::kAnd: case FuOp::kOr:
      case FuOp::kXor: case FuOp::kFAdd: case FuOp::kFMul:
      case FuOp::kFMin: case FuOp::kFMax:
        return true;
      default:
        return false;
    }
}

uint32_t
fuOpIdentity(FuOp op)
{
    switch (op) {
      case FuOp::kIAdd: case FuOp::kXor: case FuOp::kOr:
        return 0;
      case FuOp::kIMul:
        return 1;
      case FuOp::kAnd:
        return 0xffffffffu;
      case FuOp::kIMin:
        return intToWord(std::numeric_limits<int32_t>::max());
      case FuOp::kIMax:
        return intToWord(std::numeric_limits<int32_t>::min());
      case FuOp::kFAdd:
        return floatToWord(0.0f);
      case FuOp::kFMul:
        return floatToWord(1.0f);
      case FuOp::kFMin:
        return floatToWord(std::numeric_limits<float>::infinity());
      case FuOp::kFMax:
        return floatToWord(-std::numeric_limits<float>::infinity());
      default:
        panic("fuOpIdentity: op %s is not a reduction combiner",
              fuOpName(op).c_str());
    }
}

} // namespace plast
