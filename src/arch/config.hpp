/**
 * @file
 * Static configuration structures — the "bitstream" of the Plasticine
 * fabric. The compiler (src/compiler) emits a FabricConfig; the simulator
 * (src/sim) executes exactly what these structures describe and nothing
 * else. The fields mirror the microarchitecture of §3 of the paper:
 *
 *  - PcuCfg:  counter chain + SIMD pipeline stages + IO ports + control
 *  - PmuCfg:  banked scratchpad + write/read address ports + control
 *  - AgCfg:   dense/sparse DRAM address generation
 *  - ControlBoxCfg: outer-controller logic hosted in switches (§3.3, §3.5)
 *  - ChannelCfg: statically routed point-to-point buses on the scalar /
 *    vector / control networks; tokens and credits are control channels
 *    with initial token counts (credits are tokens on a reverse channel).
 */

#ifndef PLAST_ARCH_CONFIG_HPP
#define PLAST_ARCH_CONFIG_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "arch/opcodes.hpp"
#include "arch/params.hpp"
#include "base/types.hpp"

namespace plast
{

// --------------------------------------------------------------------
// Operands and pipeline stages
// --------------------------------------------------------------------

enum class OperandKind : uint8_t
{
    kNone = 0,
    kReg,       ///< pipeline register `index` of the current lane
    kCounter,   ///< value of counter `index` (innermost may be vectorized)
    kScalarIn,  ///< head of scalar input FIFO `index` (broadcast)
    kVectorIn,  ///< current element of vector input FIFO `index` (per lane)
    kImm,       ///< immediate word
    kLaneId,    ///< this lane's index (0..lanes-1)
};

struct Operand
{
    OperandKind kind = OperandKind::kNone;
    uint8_t index = 0;
    Word imm = 0;

    static Operand none() { return {}; }
    static Operand reg(uint8_t r) { return {OperandKind::kReg, r, 0}; }
    static Operand ctr(uint8_t c) { return {OperandKind::kCounter, c, 0}; }
    static Operand scalarIn(uint8_t s)
    {
        return {OperandKind::kScalarIn, s, 0};
    }
    static Operand vectorIn(uint8_t v)
    {
        return {OperandKind::kVectorIn, v, 0};
    }
    static Operand immWord(Word w) { return {OperandKind::kImm, 0, w}; }
    static Operand immInt(int32_t v)
    {
        return {OperandKind::kImm, 0, intToWord(v)};
    }
    static Operand immFloat(float f)
    {
        return {OperandKind::kImm, 0, floatToWord(f)};
    }
    static Operand laneId() { return {OperandKind::kLaneId, 0, 0}; }
};

enum class StageKind : uint8_t
{
    kMap,        ///< dst[l] = op(a[l], b[l], c[l]) on all valid lanes
    kReduceStep, ///< cross-lane tree step at distance `reduceDist`
    kAccum,      ///< dst = op(dst, a); reset/emit at counter boundaries
    kShift,      ///< dst[l] = a[l - shiftAmt] (cross-lane shift network)
};

/**
 * One pipeline stage of a PCU (SIMD across lanes) or of a PMU/AG scalar
 * datapath (single lane). Each stage is one FU executing one configured
 * operation; results land in pipeline register `dstReg`.
 */
struct StageCfg
{
    StageKind kind = StageKind::kMap;
    FuOp op = FuOp::kNop;
    Operand a, b, c;
    uint8_t dstReg = 0;
    bool setsMask = false;   ///< kMap: AND nonzero-result into valid mask
    uint8_t reduceDist = 1;  ///< kReduceStep: partner distance
    uint8_t accLevel = 0;    ///< kAccum: counter level framing the fold
    int8_t shiftAmt = 0;     ///< kShift: lane shift distance

    std::string describe() const;
};

// --------------------------------------------------------------------
// Counter chains
// --------------------------------------------------------------------

/**
 * One programmable counter. Iterates min, min+step, ... while < max.
 * The innermost counter of a chain may be vectorized: lane l observes
 * value + l*step and the counter advances by lanes*step per wavefront;
 * lanes at or beyond max are issued with their valid-mask bit cleared.
 */
struct CounterCfg
{
    int64_t min = 0;
    int64_t step = 1;
    int64_t max = 1;
    bool vectorized = false;
    int8_t maxFromScalarIn = -1; ///< >=0: bound read from scalar input
    int32_t boundScale = 1;     ///< dynamic bound multiplier

    int64_t
    trips(int64_t bound, uint32_t lanes) const
    {
        int64_t span = bound - min;
        if (span <= 0)
            return 0;
        int64_t per = vectorized ? step * lanes : step;
        return (span + per - 1) / per;
    }
};

/** Counter chain, outermost first. */
struct ChainCfg
{
    std::vector<CounterCfg> ctrs;

    bool empty() const { return ctrs.empty(); }
};

// --------------------------------------------------------------------
// Unit IO and control
// --------------------------------------------------------------------

/** When an output port emits: every wavefront, or only when the counter
 *  at `level` (and everything inner to it) completes. */
struct EmitCond
{
    bool always = true;
    uint8_t level = 0;

    static EmitCond everyWavefront() { return {true, 0}; }
    static EmitCond lastAtLevel(uint8_t lvl) { return {false, lvl}; }
};

struct VecOutCfg
{
    bool enabled = false;
    uint8_t srcReg = 0;
    EmitCond cond;
    bool coalesce = false; ///< FlatMap: pack valid words across wavefronts
};

struct ScalOutCfg
{
    bool enabled = false;
    uint8_t srcReg = 0;
    EmitCond cond;
    /**
     * >= 0: instead of a register, emit the total number of valid words
     * a coalescing vector-output port produced this run (emitted at run
     * end; used by FlatMap consumers to learn dynamic sizes).
     */
    int8_t countOfVecOut = -1;
};

/**
 * Token gating for one execution "run" (one full counter-chain sweep).
 * The unit consumes one token from each listed control input to begin a
 * run and pulses each listed control output when the run completes.
 * Credits (§3.5) are expressed as tokens on reverse channels with
 * nonzero initial counts. A unit with no token inputs self-starts once.
 */
struct ControlCfg
{
    std::vector<uint8_t> tokenIns;
    std::vector<uint8_t> doneOuts;
};

// --------------------------------------------------------------------
// Pattern Compute Unit
// --------------------------------------------------------------------

struct PcuCfg
{
    bool used = false;
    std::string name;
    ChainCfg chain;
    std::vector<StageCfg> stages;
    std::vector<VecOutCfg> vecOuts;   ///< sized to params.pcu.vectorOuts
    std::vector<ScalOutCfg> scalOuts; ///< sized to params.pcu.scalarOuts
    ControlCfg ctrl;
};

// --------------------------------------------------------------------
// Pattern Memory Unit
// --------------------------------------------------------------------

enum class BankingMode : uint8_t
{
    kStrided,    ///< word w lives in bank w % banks (dense linear access)
    kFifo,       ///< streaming queue semantics
    kLineBuffer, ///< circular row buffer for sliding windows
    kDup,        ///< contents duplicated per bank: parallel random reads
};

std::string bankingModeName(BankingMode mode);

struct ScratchCfg
{
    BankingMode mode = BankingMode::kStrided;
    uint8_t numBufs = 1;     ///< N-buffering depth
    uint32_t sizeWords = 0;  ///< logical words per buffer
};

/**
 * One PMU access port (write side fed by the producer pattern, read side
 * driven by the consumer pattern, §3.2). The port owns a counter chain
 * and a scalar address pipeline; alternatively addresses arrive per-lane
 * on a vector input (gather/scatter within the scratchpad).
 */
struct PmuPortCfg
{
    bool enabled = false;
    ChainCfg chain;
    std::vector<StageCfg> addrStages; ///< scalar pipeline; final addr word
    uint8_t addrReg = 0;              ///< register holding the address
    int8_t addrVecIn = -1;  ///< >=0: per-lane word addresses from vector in
    int8_t dataVecIn = -1;  ///< write port: data vector input index
    int8_t dataVecOut = -1; ///< read port: data vector output index
    bool accumulate = false;     ///< write port RMW (dense HashReduce)
    FuOp accumOp = FuOp::kFAdd;
    ControlCfg ctrl;
    /** Advance the N-buffer pointer every `swapEvery` run completions
     *  (0 = never). Lets a producer accumulate in place across an
     *  inner loop and rotate buffers at an outer loop boundary. */
    uint32_t swapEvery = 0;
    bool vecLinear = false;  ///< scalar addr covers `lanes` consecutive words
    /** Zero the target buffer at the start of every `clearEvery`-th run
     *  (0 = never): in-place reduction initialisation (HashReduce /
     *  tile accumulators). */
    uint32_t clearEvery = 0;
    /** Read port: single-word read replicated across all lanes
     *  (duplication-mode broadcast of loop-invariant operands). */
    bool broadcast = false;
    /** Write port: FlatMap append — incoming valid words are packed at
     *  a run-local cursor (ignores addrStages). */
    bool appendMode = false;
};

struct PmuCfg
{
    bool used = false;
    std::string name;
    ScratchCfg scratch;
    PmuPortCfg write;
    /** Secondary write port (e.g. one-time initialisation alongside a
     *  per-iteration producer). Shares the scratchpad storage. */
    PmuPortCfg write2;
    PmuPortCfg read;
};

// --------------------------------------------------------------------
// Address generators & DRAM
// --------------------------------------------------------------------

enum class AgMode : uint8_t
{
    kDenseLoad,
    kDenseStore,
    kSparseLoad,  ///< gather
    kSparseStore, ///< scatter
};

std::string agModeName(AgMode mode);

struct AgCfg
{
    bool used = false;
    std::string name;
    AgMode mode = AgMode::kDenseLoad;
    ChainCfg chain;                   ///< dense: one command per iteration
    std::vector<StageCfg> addrStages; ///< scalar pipeline -> word index
    uint8_t addrReg = 0;
    Addr base = 0;           ///< byte base of the DRAM region
    uint32_t wordsPerCmd = 16; ///< dense: contiguous words per command
    int8_t addrVecIn = -1;   ///< sparse: per-lane word indices
    int8_t dataVecIn = -1;   ///< stores: data input
    int8_t dataVecOut = -1;  ///< loads: data output
    ControlCfg ctrl;
    uint8_t channel = 0;     ///< DRAM channel binding
};

// --------------------------------------------------------------------
// Outer controllers (control boxes in switches)
// --------------------------------------------------------------------

enum class CtrlScheme : uint8_t
{
    kSequential, ///< one iteration in flight
    kMetapipe,   ///< up to `depth` iterations in flight (tokens+credits)
    kStream,     ///< children run concurrently, FIFO flow control
};

std::string ctrlSchemeName(CtrlScheme scheme);

struct ControlBoxCfg
{
    bool used = false;
    std::string name;
    CtrlScheme scheme = CtrlScheme::kSequential;
    ChainCfg chain;                      ///< outer loop counters
    ControlCfg ctrl;                     ///< parent-facing tokens
    std::vector<uint8_t> childStartOuts; ///< control outs to head children
    std::vector<uint8_t> childDoneIns;   ///< control ins from tail children
    uint32_t depth = 1;                  ///< metapipe iterations in flight

    /** Counter values exported on the scalar network each iteration. */
    struct CtrExport
    {
        uint8_t ctrIdx;
        uint8_t scalarOutPort;
    };
    std::vector<CtrExport> exports;
};

// --------------------------------------------------------------------
// Channels (statically routed buses)
// --------------------------------------------------------------------

enum class NetKind : uint8_t { kScalar, kVector, kControl };

std::string netKindName(NetKind kind);

enum class UnitClass : uint8_t { kPcu, kPmu, kAg, kBox, kHost };

std::string unitClassName(UnitClass cls);

struct UnitRef
{
    UnitClass cls = UnitClass::kHost;
    uint16_t index = 0;

    bool
    operator==(const UnitRef &o) const
    {
        return cls == o.cls && index == o.index;
    }
    std::string describe() const;
};

struct Endpoint
{
    UnitRef unit;
    uint8_t port = 0;
};

/**
 * A statically routed point-to-point bus. `latency` is the hop count of
 * the placed route (pipelined switches, §3.3). Control channels may
 * carry `initialTokens` (credits). A src port may feed several channels
 * (multicast through switches).
 */
struct ChannelCfg
{
    NetKind kind = NetKind::kScalar;
    Endpoint src, dst;
    uint32_t latency = 1;
    uint32_t initialTokens = 0;
    uint32_t capacity = 16; ///< receiver FIFO depth
    /** Scalar channels: consumer pops every Nth run (see ScalarInPort). */
    uint32_t dstPopEvery = 1;

    std::string describe() const;
};

/** A scalar input pinned to a constant (host argument registers). */
struct ConstScalar
{
    Endpoint dst;
    Word value;
};

// --------------------------------------------------------------------
// Whole-fabric configuration
// --------------------------------------------------------------------

struct FabricConfig
{
    ArchParams params;
    std::vector<PcuCfg> pcus;
    std::vector<PmuCfg> pmus;
    std::vector<AgCfg> ags;
    std::vector<ControlBoxCfg> boxes;
    std::vector<ChannelCfg> channels;
    std::vector<ConstScalar> constants;
    /** Box whose done pulse terminates the application. */
    int rootBox = -1;
    /** Number of host scalar-output slots (argOut registers). */
    uint32_t hostArgOuts = 0;

    uint32_t usedPcus() const;
    uint32_t usedPmus() const;
    uint32_t usedAgs() const;
    std::string describe() const;
};

// --------------------------------------------------------------------
// Reachability / deadness analysis
// --------------------------------------------------------------------

/**
 * What a mapped PCU configuration can actually exercise. Computed once
 * per config; the specializer (sim/execplan.hpp) uses it to elide the
 * machinery a config provably cannot touch from the per-cycle path:
 * only `touchedRegs` lane arrays are reset per issue, only the live
 * output ports are scanned at retire, and coalescing/run-count logic
 * is skipped entirely when no port uses it.
 *
 * Conservatism contract: every register the datapath may read or write
 * during a run is in `touchedRegs`, and every enabled output port is
 * live — analysis may over-approximate (extra resets are harmless,
 * they match the interpreter's zero-initialised wavefronts) but never
 * under-approximate.
 */
struct PcuLiveness
{
    uint32_t readRegs = 0;    ///< bitmask: regs any operand or srcReg reads
    uint32_t writtenRegs = 0; ///< bitmask: regs any stage dstReg writes
    uint32_t touchedRegs = 0; ///< readRegs | writtenRegs
    std::vector<uint8_t> liveVecOuts;   ///< indices of enabled vector outs
    std::vector<uint8_t> liveScalOuts;  ///< enabled register scalar outs
    std::vector<uint8_t> countScalOuts; ///< enabled FlatMap-count outs
    std::vector<uint8_t> vecInRefs;     ///< vector inputs any stage reads
    bool anyCoalesce = false; ///< some live vector out coalesces
    bool anySetsMask = false; ///< some map stage filters the lane mask
};

PcuLiveness analyzePcu(const PcuCfg &cfg);

/** Per-unit liveness for a whole mapped fabric, plus cross-checks that
 *  only make sense with channel routing in view. */
struct FabricLiveness
{
    std::vector<PcuLiveness> pcus; ///< indexed like FabricConfig::pcus
    /** Enabled PCU output ports with no routed channel: data the unit
     *  computes but the fabric provably drops (suspicious mappings). */
    uint32_t unroutedPcuOuts = 0;
};

FabricLiveness analyzeFabric(const FabricConfig &cfg);

} // namespace plast

#endif // PLAST_ARCH_CONFIG_HPP
