#include "arch/config.hpp"

#include <algorithm>

#include "base/logging.hpp"

namespace plast
{

namespace
{

std::string
operandDesc(const Operand &op)
{
    switch (op.kind) {
      case OperandKind::kNone: return "-";
      case OperandKind::kReg: return strfmt("r%u", op.index);
      case OperandKind::kCounter: return strfmt("c%u", op.index);
      case OperandKind::kScalarIn: return strfmt("si%u", op.index);
      case OperandKind::kVectorIn: return strfmt("vi%u", op.index);
      case OperandKind::kImm: return strfmt("#%u", op.imm);
      case OperandKind::kLaneId: return "lane";
    }
    return "?";
}

} // namespace

std::string
StageCfg::describe() const
{
    switch (kind) {
      case StageKind::kMap:
        return strfmt("r%u = %s(%s, %s, %s)%s", dstReg,
                      fuOpName(op).c_str(), operandDesc(a).c_str(),
                      operandDesc(b).c_str(), operandDesc(c).c_str(),
                      setsMask ? " [mask]" : "");
      case StageKind::kReduceStep:
        return strfmt("r%u = reduce.%s dist=%u (%s)", dstReg,
                      fuOpName(op).c_str(), reduceDist,
                      operandDesc(a).c_str());
      case StageKind::kAccum:
        return strfmt("r%u = acc.%s lvl=%u (%s)", dstReg,
                      fuOpName(op).c_str(), accLevel,
                      operandDesc(a).c_str());
      case StageKind::kShift:
        return strfmt("r%u = shift %d (%s)", dstReg, shiftAmt,
                      operandDesc(a).c_str());
    }
    return "?";
}

std::string
bankingModeName(BankingMode mode)
{
    switch (mode) {
      case BankingMode::kStrided: return "strided";
      case BankingMode::kFifo: return "fifo";
      case BankingMode::kLineBuffer: return "linebuffer";
      case BankingMode::kDup: return "dup";
    }
    return "?";
}

std::string
agModeName(AgMode mode)
{
    switch (mode) {
      case AgMode::kDenseLoad: return "dense-load";
      case AgMode::kDenseStore: return "dense-store";
      case AgMode::kSparseLoad: return "sparse-load";
      case AgMode::kSparseStore: return "sparse-store";
    }
    return "?";
}

std::string
ctrlSchemeName(CtrlScheme scheme)
{
    switch (scheme) {
      case CtrlScheme::kSequential: return "sequential";
      case CtrlScheme::kMetapipe: return "metapipe";
      case CtrlScheme::kStream: return "stream";
    }
    return "?";
}

std::string
netKindName(NetKind kind)
{
    switch (kind) {
      case NetKind::kScalar: return "scalar";
      case NetKind::kVector: return "vector";
      case NetKind::kControl: return "control";
    }
    return "?";
}

std::string
unitClassName(UnitClass cls)
{
    switch (cls) {
      case UnitClass::kPcu: return "pcu";
      case UnitClass::kPmu: return "pmu";
      case UnitClass::kAg: return "ag";
      case UnitClass::kBox: return "box";
      case UnitClass::kHost: return "host";
    }
    return "?";
}

std::string
UnitRef::describe() const
{
    return strfmt("%s%u", unitClassName(cls).c_str(), index);
}

std::string
ChannelCfg::describe() const
{
    return strfmt("%s: %s.%u -> %s.%u lat=%u tok=%u",
                  netKindName(kind).c_str(), src.unit.describe().c_str(),
                  src.port, dst.unit.describe().c_str(), dst.port, latency,
                  initialTokens);
}

uint32_t
FabricConfig::usedPcus() const
{
    uint32_t n = 0;
    for (const auto &p : pcus)
        n += p.used ? 1 : 0;
    return n;
}

uint32_t
FabricConfig::usedPmus() const
{
    uint32_t n = 0;
    for (const auto &p : pmus)
        n += p.used ? 1 : 0;
    return n;
}

uint32_t
FabricConfig::usedAgs() const
{
    uint32_t n = 0;
    for (const auto &a : ags)
        n += a.used ? 1 : 0;
    return n;
}

std::string
FabricConfig::describe() const
{
    uint32_t used_boxes = 0;
    for (const auto &b : boxes)
        used_boxes += b.used ? 1 : 0;
    return strfmt("fabric: %u/%zu PCUs, %u/%zu PMUs, %u/%zu AGs, "
                  "%u boxes, %zu channels",
                  usedPcus(), pcus.size(), usedPmus(), pmus.size(),
                  usedAgs(), ags.size(), used_boxes, channels.size());
}

// --------------------------------------------------------------------
// Reachability / deadness analysis
// --------------------------------------------------------------------

namespace
{

void
noteOperand(const Operand &op, PcuLiveness &lv)
{
    if (op.kind == OperandKind::kReg)
        lv.readRegs |= 1u << op.index;
    if (op.kind == OperandKind::kVectorIn &&
        std::find(lv.vecInRefs.begin(), lv.vecInRefs.end(), op.index) ==
            lv.vecInRefs.end())
        lv.vecInRefs.push_back(op.index);
}

} // namespace

PcuLiveness
analyzePcu(const PcuCfg &cfg)
{
    PcuLiveness lv;
    for (const StageCfg &st : cfg.stages) {
        // Conservative: count every operand slot, not just the op's
        // arity — a dead slot left pointing at a register still makes
        // that register part of the reset set.
        noteOperand(st.a, lv);
        noteOperand(st.b, lv);
        noteOperand(st.c, lv);
        lv.writtenRegs |= 1u << st.dstReg;
        if (st.kind == StageKind::kMap && st.setsMask)
            lv.anySetsMask = true;
    }
    for (size_t p = 0; p < cfg.vecOuts.size(); ++p) {
        const VecOutCfg &vo = cfg.vecOuts[p];
        if (!vo.enabled)
            continue;
        lv.liveVecOuts.push_back(static_cast<uint8_t>(p));
        lv.readRegs |= 1u << vo.srcReg;
        lv.anyCoalesce |= vo.coalesce;
    }
    for (size_t p = 0; p < cfg.scalOuts.size(); ++p) {
        const ScalOutCfg &so = cfg.scalOuts[p];
        if (!so.enabled)
            continue;
        if (so.countOfVecOut >= 0) {
            lv.countScalOuts.push_back(static_cast<uint8_t>(p));
        } else {
            lv.liveScalOuts.push_back(static_cast<uint8_t>(p));
            lv.readRegs |= 1u << so.srcReg;
        }
    }
    lv.touchedRegs = lv.readRegs | lv.writtenRegs;
    return lv;
}

FabricLiveness
analyzeFabric(const FabricConfig &cfg)
{
    FabricLiveness fl;
    fl.pcus.reserve(cfg.pcus.size());
    for (const PcuCfg &pcu : cfg.pcus)
        fl.pcus.push_back(analyzePcu(pcu));

    auto routed = [&cfg](NetKind kind, uint16_t pcu, uint8_t port) {
        UnitRef self{UnitClass::kPcu, pcu};
        for (const ChannelCfg &ch : cfg.channels) {
            if (ch.kind == kind && ch.src.unit == self &&
                ch.src.port == port)
                return true;
        }
        return false;
    };
    for (size_t i = 0; i < cfg.pcus.size(); ++i) {
        if (!cfg.pcus[i].used)
            continue;
        uint16_t idx = static_cast<uint16_t>(i);
        for (uint8_t p : fl.pcus[i].liveVecOuts)
            fl.unroutedPcuOuts += routed(NetKind::kVector, idx, p) ? 0 : 1;
        for (uint8_t p : fl.pcus[i].liveScalOuts)
            fl.unroutedPcuOuts += routed(NetKind::kScalar, idx, p) ? 0 : 1;
        for (uint8_t p : fl.pcus[i].countScalOuts)
            fl.unroutedPcuOuts += routed(NetKind::kScalar, idx, p) ? 0 : 1;
    }
    return fl;
}

} // namespace plast
