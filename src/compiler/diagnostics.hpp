/**
 * @file
 * Structured compile diagnostics: the machine-readable report every
 * compile attempt produces, successful or not. Instead of a bare error
 * string, callers (the fuzzer, fault-recovery, design-space sweeps,
 * bench_mapper) get the feasibility checks that ran, the binding
 * resource when one failed, every placement/routing attempt with its
 * congestion outcome, the spill actions taken, and the final routing
 * quality — enough to answer "why did this design fail?" and "how
 * close to capacity is this design?" without re-running the compiler.
 */

#ifndef PLAST_COMPILER_DIAGNOSTICS_HPP
#define PLAST_COMPILER_DIAGNOSTICS_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "arch/config.hpp"

namespace plast::compiler
{

/** One feasibility comparison: demand for a resource vs. capacity. */
struct ResourceCheck
{
    std::string resource; ///< e.g. "pcu", "pmu", "ag", "pmu.scratchpad"
    uint64_t demand = 0;
    uint64_t capacity = 0;
    bool over = false;
    std::string detail; ///< the offending entity, when per-entity

    std::string describe() const;
};

/** A switch-to-switch link whose track demand exceeded capacity. */
struct CongestionHotspot
{
    int fromCol = 0, fromRow = 0;
    int toCol = 0, toRow = 0;
    NetKind kind = NetKind::kVector;
    uint32_t demand = 0;   ///< nets wanting the link in the final round
    uint32_t capacity = 0; ///< tracks of this kind per link

    std::string describe() const;
};

/** Outcome of one placement attempt's routing run. */
struct RouteAttempt
{
    uint32_t placement = 0;     ///< placement attempt index (0 = greedy)
    uint32_t rounds = 0;        ///< negotiation rounds consumed
    uint32_t overusedLinks = 0; ///< links still over capacity at the end
    uint64_t routedHops = 0;    ///< sum of per-channel hops
    bool routed = false;
};

/** One capacity spill the compiler applied instead of failing. */
struct SpillAction
{
    std::string memory;    ///< PIR memory spilled
    std::string node;      ///< metapipe controller whose depth dropped
    uint32_t fromBufs = 0; ///< N-buffer depth before the spill
    uint32_t toBufs = 0;   ///< depth that fits the scratchpad

    std::string describe() const;
};

/**
 * The full compile report. `feasible` mirrors MappingReport::ok;
 * `binding` names the resource that blocked compilation ("" when the
 * design mapped). All vectors are populated best-effort: a design
 * rejected by the pre-checker has checks but no attempts; a routable
 * design has attempts but no hotspots.
 */
struct CompileDiagnostics
{
    bool feasible = false;
    std::string binding;

    std::vector<ResourceCheck> checks;
    std::vector<RouteAttempt> attempts;
    std::vector<CongestionHotspot> hotspots;
    std::vector<SpillAction> spills;

    uint32_t placementAttempts = 0; ///< total placements tried
    uint32_t routeRounds = 0;       ///< rounds of the successful attempt
    uint64_t routedHops = 0;

    /** Used track-links / available track-links, per network. */
    double vectorTrackUtil = 0;
    double scalarTrackUtil = 0;
    double controlTrackUtil = 0;

    /** Human-readable multi-line report. */
    std::string summary() const;

    /** Machine-readable dump (stable key names; see DESIGN.md). */
    void dumpJson(std::ostream &os) const;
};

} // namespace plast::compiler

#endif // PLAST_COMPILER_DIAGNOSTICS_HPP
