/**
 * @file
 * Switch-network routing (§3.4): assign every logical channel a path
 * over the (gridCols+1) x (gridRows+1) switch mesh under per-link,
 * per-network track capacities.
 *
 * Two algorithms share one entry point:
 *
 *  - kGreedy: the original one-shot first-fit BFS, kept as the QoR
 *    baseline. Nets route once, in order, over capacity-free links
 *    only; the first net with no feasible path fails the whole map.
 *
 *  - kNegotiated: PathFinder-style negotiated congestion. Every net
 *    routes every round — overuse is allowed mid-flight — and rounds
 *    iterate rip-up-and-reroute with an escalating present-congestion
 *    penalty plus an accumulating per-link history cost until no link
 *    is oversubscribed (or the round budget runs out, reporting the
 *    surviving hotspots).
 *
 * Multicast: nets carrying the same `group` id fan out from one source
 * port, so a switch forks the bus instead of spending extra tracks —
 * they are routed as one Steiner-ish tree whose links count once.
 */

#ifndef PLAST_COMPILER_ROUTER_HPP
#define PLAST_COMPILER_ROUTER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "arch/geometry.hpp"
#include "compiler/diagnostics.hpp"

namespace plast::compiler
{

/** One channel to route between two switches. */
struct RouterNet
{
    SwitchCoord src;
    SwitchCoord dst;
    NetKind kind = NetKind::kVector;
    /** Nets sharing a group id fan out from the same (unit, port) and
     *  share routed tracks; ids must be unique per (source port, kind). */
    uint32_t group = 0;
    /** Output: path length in links (0 when src == dst). */
    uint32_t hops = 0;
};

/** Switch-mesh dimensions and per-kind track capacities. */
struct RouterGrid
{
    int cols = 0;
    int rows = 0;
    uint32_t vectorTracks = 0;
    uint32_t scalarTracks = 0;
    uint32_t controlTracks = 0;

    uint32_t trackCap(NetKind k) const
    {
        switch (k) {
          case NetKind::kScalar: return scalarTracks;
          case NetKind::kVector: return vectorTracks;
          case NetKind::kControl: return controlTracks;
        }
        return 1;
    }

    /** Directed switch-to-switch links in the mesh. */
    uint64_t
    directedLinks() const
    {
        if (cols <= 0 || rows <= 0)
            return 0;
        return 2ull * static_cast<uint64_t>(cols - 1) * rows +
               2ull * static_cast<uint64_t>(cols) * (rows - 1);
    }
};

enum class RouterMode : uint8_t
{
    kGreedy,     ///< legacy one-shot first-fit BFS
    kNegotiated, ///< PathFinder rip-up-and-reroute
};

struct RouterOptions
{
    RouterMode mode = RouterMode::kNegotiated;
    /** Negotiation round budget (>= 1). */
    uint32_t maxRounds = 24;
    /** Reserved for tie-break perturbation; the router is fully
     *  deterministic for a given seed. */
    uint64_t seed = 0;
};

struct RouteOutcome
{
    bool routed = false;
    uint32_t rounds = 0;        ///< rounds consumed (greedy: 1)
    uint32_t overusedLinks = 0; ///< links still over capacity at the end
    uint64_t totalHops = 0;     ///< sum of per-net hops
    /** Greedy mode: index of the net that found no path (-1 otherwise). */
    int failedNet = -1;
    /** Worst oversubscribed links of the final round (negotiated). */
    std::vector<CongestionHotspot> hotspots;
    /** Claimed track-links per network kind (utilization numerator). */
    uint64_t linkLoad[3] = {0, 0, 0};

    double
    utilization(NetKind k, const RouterGrid &grid) const
    {
        uint64_t avail = grid.directedLinks() * grid.trackCap(k);
        return avail ? static_cast<double>(linkLoad[static_cast<int>(k)]) /
                           static_cast<double>(avail)
                     : 0.0;
    }
};

/**
 * Route all nets; fills each net's `hops` on success. Deterministic:
 * identical inputs (and seed) produce identical paths.
 */
RouteOutcome routeNets(std::vector<RouterNet> &nets,
                       const RouterGrid &grid,
                       const RouterOptions &opts);

} // namespace plast::compiler

#endif // PLAST_COMPILER_ROUTER_HPP
