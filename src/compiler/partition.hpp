/**
 * @file
 * Virtual-PCU partitioning (§3.6): split a virtual unit's pipeline
 * schedule into chunks that each fit one physical PCU — bounded stages,
 * live registers, scalar inputs, and vector IO. Values crossing a cut
 * travel on vector buses (one output on the producer, one input on the
 * consumer); gather loads force the consumer into a later chunk so the
 * address can round-trip through a PMU.
 *
 * The same cost model drives the Figure 7 design-space sweeps: the
 * paper's "normalized area overhead" is (#PCUs x PCU area) relative to
 * the minimum over the swept space, and infeasible parameter choices
 * (x marks in the figure) are partitions that return !ok here.
 */

#ifndef PLAST_COMPILER_PARTITION_HPP
#define PLAST_COMPILER_PARTITION_HPP

#include "arch/params.hpp"
#include "compiler/vleaf.hpp"

namespace plast::compiler
{

struct ChunkMetrics
{
    uint32_t stages = 0;
    uint32_t regs = 0;      ///< peak live op results
    uint32_t scalarIns = 0;
    uint32_t scalarOuts = 0;
    uint32_t vectorIns = 0;
    uint32_t vectorOuts = 0;
};

struct Chunk
{
    int32_t firstOp = 0;
    int32_t lastOp = -1; ///< inclusive
    ChunkMetrics metrics;
};

struct PartitionResult
{
    bool ok = false;
    std::string error;
    std::vector<Chunk> chunks;

    uint32_t numChunks() const
    {
        return static_cast<uint32_t>(chunks.size());
    }
};

/** Partition one virtual leaf under the given PCU parameters. */
PartitionResult partitionLeaf(const VirtualLeaf &leaf,
                              const PcuParams &params);

/** Chunk index containing op `opIdx` (result must be ok). */
int32_t chunkOfOp(const PartitionResult &part, int32_t opIdx);

} // namespace plast::compiler

#endif // PLAST_COMPILER_PARTITION_HPP
